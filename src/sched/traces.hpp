// Synthetic job traces for the cluster simulator: Poisson arrivals,
// power-of-two node requests, lognormal durations — the standard shape of
// HPC batch workloads, used to study how HPO campaigns coexist with a
// production queue (claim C4's "HPC architectures that can support these
// large-scale intelligent search methods").
#pragma once

#include <vector>

#include "runtime/rng.hpp"
#include "sched/cluster.hpp"

namespace candle::sched {

struct TraceConfig {
  Index jobs = 200;
  double arrivals_per_hour = 30.0;  // Poisson rate
  Index max_nodes = 4096;           // node requests: 2^k <= max_nodes
  double mean_duration_hours = 1.0;  // lognormal mean
  double duration_sigma = 1.0;       // lognormal shape
  std::uint64_t seed = 0;
};

struct TraceJob {
  Index nodes = 1;
  double duration_s = 0.0;
  double submit_s = 0.0;
};

/// Generate a batch trace (deterministic in the seed).
std::vector<TraceJob> generate_trace(const TraceConfig& cfg);

/// Submit every trace job to a simulator.
void submit_trace(ClusterSim& sim, const std::vector<TraceJob>& trace);

/// Summary statistics of a completed simulation, for comparisons.
struct TraceStats {
  double makespan_s = 0.0;
  double utilization = 0.0;
  double mean_wait_s = 0.0;
  double p95_wait_s = 0.0;
};

TraceStats run_trace(Index cluster_nodes, SchedulePolicy policy,
                     const std::vector<TraceJob>& trace);

}  // namespace candle::sched

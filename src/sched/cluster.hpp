// Discrete-event cluster simulator for *search parallelism* (claim C4):
// hyperparameter campaigns schedule thousands of training jobs over a fixed
// machine allocation, and the paper argues HPC architectures must support
// this mode alongside single-model training.
//
// Jobs request a node count and a duration; the simulator plays FIFO or
// EASY-backfill scheduling and reports makespan + utilization.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "runtime/error.hpp"

namespace candle::sched {

using Index = std::int64_t;

enum class SchedulePolicy { Fifo, Backfill };

std::string schedule_policy_name(SchedulePolicy p);

struct Job {
  Index id = -1;
  Index nodes = 1;
  double duration_s = 0.0;
  double submit_s = 0.0;
  double start_s = -1.0;   // filled by run()
  double finish_s = -1.0;  // filled by run()

  bool completed() const { return finish_s >= 0.0; }
  double wait_s() const { return start_s - submit_s; }
};

class ClusterSim {
 public:
  ClusterSim(Index total_nodes, SchedulePolicy policy);

  Index total_nodes() const { return total_nodes_; }

  /// Queue a job; returns its id.  Must be called before run().
  Index submit(Index nodes, double duration_s, double submit_s = 0.0);

  /// Play the schedule to completion.
  void run();

  const Job& job(Index id) const;
  const std::vector<Job>& jobs() const { return jobs_; }

  /// Time the last job finishes.
  double makespan() const;

  /// Busy node-seconds / (total_nodes * makespan).
  double utilization() const;

  /// Mean queue wait across jobs.
  double mean_wait_s() const;

 private:
  Index total_nodes_;
  SchedulePolicy policy_;
  std::vector<Job> jobs_;
  bool ran_ = false;
};

}  // namespace candle::sched

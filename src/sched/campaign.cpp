#include "sched/campaign.hpp"

#include <algorithm>
#include <limits>
#include <queue>

namespace candle::sched {

double CampaignResult::best_at_time(double time_s) const {
  double best = std::numeric_limits<double>::infinity();
  for (const BestPoint& p : trajectory) {
    if (p.time_s <= time_s) best = std::min(best, p.objective);
  }
  return best;
}

namespace {

struct Slot {
  double finish_s = 0.0;
  UnitConfig config;
  Index epochs = 0;
  hpo::SuccessiveHalving::Task task;  // ASHA only
};

struct SlotOrder {
  bool operator()(const Slot& a, const Slot& b) const {
    return a.finish_s > b.finish_s;
  }
};

void validate(const CampaignOptions& options) {
  CANDLE_CHECK(options.slots >= 1 && options.max_trials >= 1 &&
                   options.epochs >= 1,
               "invalid campaign options");
}

void record(CampaignResult& result, double now, double objective,
            const UnitConfig& config) {
  ++result.trials;
  if (result.trajectory.empty() ||
      objective < result.best_objective) {
    result.best_objective = objective;
    result.best_config = config;
  }
  result.trajectory.push_back({now, result.trials, result.best_objective});
  result.makespan_s = now;
}

}  // namespace

CampaignResult run_campaign(hpo::Searcher& searcher,
                            const hpo::Objective& objective,
                            const DurationModel& duration,
                            const CampaignOptions& options) {
  validate(options);
  CampaignResult result;
  std::priority_queue<Slot, std::vector<Slot>, SlotOrder> running;
  Index launched = 0;

  auto launch = [&](double now) {
    Slot s;
    s.config = searcher.suggest();
    s.epochs = options.epochs;
    s.finish_s = now + duration(s.config, options.epochs);
    CANDLE_CHECK(s.finish_s > now, "duration model returned non-positive time");
    running.push(std::move(s));
    ++launched;
  };

  const Index initial = std::min(options.slots, options.max_trials);
  for (Index i = 0; i < initial; ++i) launch(0.0);

  while (!running.empty()) {
    Slot done = running.top();
    running.pop();
    const double obj = objective(done.config);
    searcher.observe(done.config, obj);
    record(result, done.finish_s, obj, done.config);
    if (launched < options.max_trials) launch(done.finish_s);
  }
  return result;
}

CampaignResult run_asha_campaign(hpo::SuccessiveHalving& asha,
                                 const BudgetedObjective& objective,
                                 const DurationModel& duration,
                                 const CampaignOptions& options) {
  validate(options);
  CampaignResult result;
  std::priority_queue<Slot, std::vector<Slot>, SlotOrder> running;
  Index launched = 0;

  auto launch = [&](double now) {
    Slot s;
    s.task = asha.suggest();
    s.config = s.task.config;
    s.epochs = s.task.budget;
    s.finish_s = now + duration(s.config, s.task.budget);
    CANDLE_CHECK(s.finish_s > now, "duration model returned non-positive time");
    running.push(std::move(s));
    ++launched;
  };

  const Index initial = std::min(options.slots, options.max_trials);
  for (Index i = 0; i < initial; ++i) launch(0.0);

  while (!running.empty()) {
    Slot done = running.top();
    running.pop();
    const double obj = objective(done.config, done.epochs);
    asha.observe(done.task, obj);
    record(result, done.finish_s, obj, done.config);
    if (launched < options.max_trials) launch(done.finish_s);
  }
  // For ASHA, report the scheduler's notion of best (full-budget preferred).
  const hpo::Observation best = asha.best();
  result.best_objective = best.objective;
  result.best_config = best.config;
  return result;
}

}  // namespace candle::sched

// Asynchronous HPO campaign driver: couples a search strategy to a set of
// concurrent trial slots on a (simulated) machine allocation — the "search
// parallelism" dimension of claim C4.
//
// The campaign advances simulated time: `slots` trials run concurrently;
// whenever one finishes, its objective is observed and the searcher
// immediately proposes a replacement (fully asynchronous, no generation
// barrier).  The trial *objective* comes from a real evaluation (e.g. a
// TrainObjective actually training models); the trial *duration* comes
// from a caller-supplied duration model (e.g. hpcsim::estimate_step x
// steps), so campaigns over thousands of node-hours replay in milliseconds.
#pragma once

#include <functional>
#include <memory>
#include <vector>

#include "hpo/objectives.hpp"
#include "hpo/searchers.hpp"

namespace candle::sched {

using hpo::UnitConfig;

/// Simulated duration (seconds) of a trial at a given epoch budget.
using DurationModel = std::function<double(const UnitConfig&, Index epochs)>;

struct CampaignOptions {
  Index slots = 8;        // concurrent trials (nodes / nodes-per-trial)
  Index max_trials = 64;  // total configurations to evaluate
  Index epochs = 8;       // full budget per trial (single-fidelity)
};

/// A point on the best-so-far trajectory.
struct BestPoint {
  double time_s = 0.0;     // simulated campaign time
  Index trials = 0;        // trials completed by then
  double objective = 0.0;  // best objective so far
};

struct CampaignResult {
  std::vector<BestPoint> trajectory;  // one entry per completed trial
  double makespan_s = 0.0;
  Index trials = 0;
  double best_objective = 0.0;
  UnitConfig best_config;

  /// Best objective at or before `time_s` (inf before the first finish).
  double best_at_time(double time_s) const;
};

/// Run a single-fidelity asynchronous campaign.
CampaignResult run_campaign(hpo::Searcher& searcher,
                            const hpo::Objective& objective,
                            const DurationModel& duration,
                            const CampaignOptions& options);

/// Run an ASHA campaign: same slots, but trials carry rung budgets and the
/// halving scheduler promotes survivors.  `evaluate(config, epochs)` must
/// honour the epoch budget (e.g. TrainObjective::evaluate).
using BudgetedObjective = std::function<double(const UnitConfig&, Index)>;

CampaignResult run_asha_campaign(hpo::SuccessiveHalving& asha,
                                 const BudgetedObjective& objective,
                                 const DurationModel& duration,
                                 const CampaignOptions& options);

}  // namespace candle::sched

#include "sched/cluster.hpp"

#include <algorithm>
#include <cmath>
#include <limits>
#include <queue>

namespace candle::sched {

std::string schedule_policy_name(SchedulePolicy p) {
  switch (p) {
    case SchedulePolicy::Fifo: return "fifo";
    case SchedulePolicy::Backfill: return "backfill";
  }
  CANDLE_FAIL("unknown SchedulePolicy");
}

ClusterSim::ClusterSim(Index total_nodes, SchedulePolicy policy)
    : total_nodes_(total_nodes), policy_(policy) {
  CANDLE_CHECK(total_nodes >= 1, "cluster needs at least one node");
}

Index ClusterSim::submit(Index nodes, double duration_s, double submit_s) {
  CANDLE_CHECK(!ran_, "cannot submit after run()");
  CANDLE_CHECK(nodes >= 1 && nodes <= total_nodes_,
               "job node request exceeds the machine");
  CANDLE_CHECK(duration_s > 0.0 && submit_s >= 0.0, "invalid job timing");
  Job j;
  j.id = static_cast<Index>(jobs_.size());
  j.nodes = nodes;
  j.duration_s = duration_s;
  j.submit_s = submit_s;
  jobs_.push_back(j);
  return j.id;
}

void ClusterSim::run() {
  CANDLE_CHECK(!ran_, "run() already called");
  ran_ = true;
  if (jobs_.empty()) return;

  // Waiting queue ordered by submit time (stable by id = FIFO order).
  std::vector<Index> waiting(jobs_.size());
  for (std::size_t i = 0; i < jobs_.size(); ++i) {
    waiting[i] = static_cast<Index>(i);
  }
  std::stable_sort(waiting.begin(), waiting.end(), [&](Index a, Index b) {
    return jobs_[static_cast<std::size_t>(a)].submit_s <
           jobs_[static_cast<std::size_t>(b)].submit_s;
  });

  // Running set: min-heap on finish time.
  using Running = std::pair<double, Index>;  // (finish, id)
  std::priority_queue<Running, std::vector<Running>, std::greater<>> running;
  Index free_nodes = total_nodes_;
  double now = 0.0;

  auto try_start = [&](Index id, double t) {
    Job& j = jobs_[static_cast<std::size_t>(id)];
    j.start_s = t;
    j.finish_s = t + j.duration_s;
    free_nodes -= j.nodes;
    running.emplace(j.finish_s, id);
  };

  while (!waiting.empty() || !running.empty()) {
    // Complete everything finishing by `now`.
    while (!running.empty() && running.top().first <= now) {
      free_nodes += jobs_[static_cast<std::size_t>(running.top().second)].nodes;
      running.pop();
    }

    // Launch from the queue.
    bool launched = false;
    for (std::size_t qi = 0; qi < waiting.size();) {
      Job& j = jobs_[static_cast<std::size_t>(waiting[qi])];
      if (j.submit_s > now) break;  // not yet submitted (queue is time-sorted)
      if (j.nodes <= free_nodes) {
        try_start(waiting[qi], now);
        waiting.erase(waiting.begin() + static_cast<std::ptrdiff_t>(qi));
        launched = true;
        continue;  // same qi now holds the next job
      }
      if (policy_ == SchedulePolicy::Fifo) break;  // strict head-of-line

      // EASY backfill: the head job reserves its earliest start (shadow
      // time); later jobs may run now only if they finish by then or use
      // nodes the head job doesn't need.
      if (qi == 0) {
        // Compute the shadow time: when enough nodes free up for the head.
        auto probe = running;
        Index avail = free_nodes;
        double shadow = now;
        while (avail < j.nodes && !probe.empty()) {
          shadow = probe.top().first;
          avail += jobs_[static_cast<std::size_t>(probe.top().second)].nodes;
          probe.pop();
        }
        const Index spare_at_shadow = avail - j.nodes;
        // Scan the rest of the queue for a backfill candidate.
        bool filled = false;
        for (std::size_t bi = 1; bi < waiting.size(); ++bi) {
          Job& c = jobs_[static_cast<std::size_t>(waiting[bi])];
          if (c.submit_s > now || c.nodes > free_nodes) continue;
          const bool fits_before_shadow = now + c.duration_s <= shadow;
          const bool fits_beside_head = c.nodes <= spare_at_shadow;
          if (fits_before_shadow || fits_beside_head) {
            try_start(waiting[bi], now);
            waiting.erase(waiting.begin() + static_cast<std::ptrdiff_t>(bi));
            filled = true;
            break;
          }
        }
        if (filled) {
          launched = true;
          continue;  // re-scan from the head
        }
      }
      break;  // nothing startable now
    }
    if (launched) continue;
    if (waiting.empty() && running.empty()) break;  // all work drained

    // Advance time to the next event: a completion or a future submission.
    double next_event = std::numeric_limits<double>::infinity();
    if (!running.empty()) next_event = running.top().first;
    for (Index id : waiting) {
      const double s = jobs_[static_cast<std::size_t>(id)].submit_s;
      if (s > now) {
        next_event = std::min(next_event, s);
        break;
      }
    }
    CANDLE_CHECK(std::isfinite(next_event),
                 "scheduler deadlock: no startable job and no pending event");
    now = next_event;
  }
}

const Job& ClusterSim::job(Index id) const {
  CANDLE_CHECK(id >= 0 && id < static_cast<Index>(jobs_.size()),
               "job id out of range");
  return jobs_[static_cast<std::size_t>(id)];
}

double ClusterSim::makespan() const {
  CANDLE_CHECK(ran_, "run() first");
  double m = 0.0;
  for (const Job& j : jobs_) m = std::max(m, j.finish_s);
  return m;
}

double ClusterSim::utilization() const {
  CANDLE_CHECK(ran_, "run() first");
  const double span = makespan();
  if (span <= 0.0) return 0.0;
  double busy = 0.0;
  for (const Job& j : jobs_) {
    busy += static_cast<double>(j.nodes) * j.duration_s;
  }
  return busy / (static_cast<double>(total_nodes_) * span);
}

double ClusterSim::mean_wait_s() const {
  CANDLE_CHECK(ran_, "run() first");
  if (jobs_.empty()) return 0.0;
  double w = 0.0;
  for (const Job& j : jobs_) w += j.wait_s();
  return w / static_cast<double>(jobs_.size());
}

}  // namespace candle::sched

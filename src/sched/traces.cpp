#include "sched/traces.hpp"

#include <algorithm>
#include <cmath>

namespace candle::sched {

std::vector<TraceJob> generate_trace(const TraceConfig& cfg) {
  CANDLE_CHECK(cfg.jobs >= 1 && cfg.arrivals_per_hour > 0.0 &&
                   cfg.max_nodes >= 1 && cfg.mean_duration_hours > 0.0 &&
                   cfg.duration_sigma > 0.0,
               "invalid trace config");
  Pcg32 rng(cfg.seed, 0x7ace);
  std::vector<TraceJob> trace;
  trace.reserve(static_cast<std::size_t>(cfg.jobs));

  // Power-of-two request ladder up to max_nodes.
  std::vector<Index> ladder;
  for (Index n = 1; n <= cfg.max_nodes; n *= 2) ladder.push_back(n);

  // Lognormal parameterized so E[duration] = mean: mu = ln(mean) - s^2/2.
  const double mu = std::log(cfg.mean_duration_hours * 3600.0) -
                    0.5 * cfg.duration_sigma * cfg.duration_sigma;

  double clock = 0.0;
  const double mean_gap_s = 3600.0 / cfg.arrivals_per_hour;
  for (Index j = 0; j < cfg.jobs; ++j) {
    TraceJob job;
    // Exponential inter-arrival times.
    double u = rng.next_double();
    if (u < 1e-12) u = 1e-12;
    clock += -mean_gap_s * std::log(u);
    job.submit_s = clock;
    // Small jobs are more common: geometric choice over the ladder.
    std::size_t rung = 0;
    while (rung + 1 < ladder.size() && rng.next_float() < 0.5f) ++rung;
    job.nodes = ladder[rung];
    job.duration_s =
        std::max(1.0, std::exp(mu + cfg.duration_sigma * rng.normal()));
    trace.push_back(job);
  }
  return trace;
}

void submit_trace(ClusterSim& sim, const std::vector<TraceJob>& trace) {
  for (const TraceJob& j : trace) {
    sim.submit(std::min(j.nodes, sim.total_nodes()), j.duration_s,
               j.submit_s);
  }
}

TraceStats run_trace(Index cluster_nodes, SchedulePolicy policy,
                     const std::vector<TraceJob>& trace) {
  ClusterSim sim(cluster_nodes, policy);
  submit_trace(sim, trace);
  sim.run();
  TraceStats stats;
  stats.makespan_s = sim.makespan();
  stats.utilization = sim.utilization();
  stats.mean_wait_s = sim.mean_wait_s();
  std::vector<double> waits;
  waits.reserve(sim.jobs().size());
  for (const Job& j : sim.jobs()) waits.push_back(j.wait_s());
  std::sort(waits.begin(), waits.end());
  stats.p95_wait_s =
      waits[static_cast<std::size_t>(0.95 * static_cast<double>(waits.size()))];
  return stats;
}

}  // namespace candle::sched

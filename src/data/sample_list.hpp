// Sharded sample lists: the deterministic "what does rank r train on at
// (epoch, step)?" function behind the ingest layer.
//
// The per-epoch permutation is a *pure function of (seed, epoch)* — computed
// by an explicit Fisher–Yates walk over a Pcg32 stream keyed by both — so
// any thread, any prefetch depth, and any restart reproduce the identical
// sample order with no coordination and no replay.  Contrast BatchIterator
// (nn/dataset), whose shuffle RNG is stateful across epochs: correct for a
// single synchronous consumer, but a background pipeline that must *seek*
// (restart from a checkpointed cursor, refill after a recovery) would have
// to replay every prior epoch to reconstruct the stream.  Here a stream
// position is just a (epoch, step) pair, and repositioning is O(n) for the
// one permutation rebuild instead of O(epochs * n).
//
// Sharding: epoch e's permutation is cut into steps_per_epoch() full global
// batches of replicas * batch_per_replica indices; replica r's shard of
// step s is the r-th contiguous window of batch s.  The tail of the
// permutation that does not fill a full global batch is *dropped* — exactly
// the silent truncation the legacy path performed, except here it is
// counted and surfaced (dropped_tail_samples) instead of vanishing.
#pragma once

#include <cstdint>
#include <span>
#include <vector>

#include "core/tensor.hpp"

namespace candle::data {

/// Position of the NEXT batch in a sample stream.  (epoch, step) fully
/// determines the batch contents given the list's (seed, width), which is
/// what makes the cursor checkpointable: restart at the cursor and the
/// stream continues bit-identically.
struct StreamCursor {
  Index epoch = 0;
  Index step = 0;  // step within `epoch`, in [0, steps_per_epoch)

  friend bool operator==(const StreamCursor&, const StreamCursor&) = default;
};

/// Fill `out` with epoch `epoch`'s permutation of [0, n).  Pure function of
/// (n, seed, epoch, shuffle): the Pcg32 stream is keyed by splitmix64(seed,
/// epoch) and the swaps are an explicit Fisher–Yates walk — NOT
/// std::shuffle, whose draw pattern is implementation-defined and would
/// break bit-stability across toolchains.  shuffle=false yields identity.
/// Reuses `out`'s capacity (no allocation once it has reached n).
void epoch_permutation(Index n, std::uint64_t seed, Index epoch, bool shuffle,
                       std::vector<Index>& out);

/// Deterministic sharded view over a dataset's sample indices.
///
/// Not thread-safe: each consumer owns its own list (the permutation cache
/// is per-instance scratch).  Determinism across consumers comes from the
/// pure permutation function, not from sharing.
class ShardedSampleList {
 public:
  ShardedSampleList(Index samples, Index replicas, Index batch_per_replica,
                    bool shuffle, std::uint64_t seed);

  Index samples() const { return samples_; }
  Index replicas() const { return replicas_; }
  Index batch_per_replica() const { return batch_; }
  Index global_batch() const { return replicas_ * batch_; }
  /// Full global batches per epoch (the tail is dropped, not trained).
  Index steps_per_epoch() const { return samples_ / global_batch(); }
  /// Samples per epoch that never reach any replica (the permutation tail
  /// shorter than one global batch).  Up to global_batch() - 1.
  Index dropped_tail_samples() const {
    return samples_ - steps_per_epoch() * global_batch();
  }

  /// Sample indices replica `replica` consumes at (epoch, step): a view
  /// into the cached epoch permutation, valid until the next shard() call.
  /// Rebuilds the cached permutation only when `epoch` changes (no
  /// allocation at steady state).
  std::span<const Index> shard(Index epoch, Index step, Index replica);

  /// The whole global batch at (epoch, step), in replica order.
  std::span<const Index> global(Index epoch, Index step);

  /// Cursor arithmetic: position after consuming one batch at `c`.
  StreamCursor next(StreamCursor c) const {
    if (++c.step >= steps_per_epoch()) {
      c.step = 0;
      ++c.epoch;
    }
    return c;
  }

  /// Flat stream position (batches since (0,0)) <-> cursor.
  Index position(StreamCursor c) const {
    return c.epoch * steps_per_epoch() + c.step;
  }
  StreamCursor cursor_at(Index position) const {
    return {position / steps_per_epoch(), position % steps_per_epoch()};
  }

 private:
  void ensure_epoch(Index epoch);

  Index samples_;
  Index replicas_;
  Index batch_;
  bool shuffle_;
  std::uint64_t seed_;
  Index cached_epoch_ = -1;
  std::vector<Index> perm_;
};

}  // namespace candle::data

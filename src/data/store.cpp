#include "data/store.hpp"

#include <algorithm>
#include <cstring>

#include "biodata/staging_io.hpp"
#include "runtime/timer.hpp"

namespace candle::data {

// ---- DatasetSource ----------------------------------------------------------

DatasetSource::DatasetSource(const Dataset& dataset, double synthetic_cost_s)
    : dataset_(&dataset), synthetic_cost_s_(synthetic_cost_s) {
  CANDLE_CHECK(dataset.size() >= 1, "empty dataset source");
  CANDLE_CHECK(synthetic_cost_s >= 0.0, "negative synthetic fetch cost");
  x_elems_ = dataset.x.numel() / dataset.size();
  y_elems_ = dataset.y.numel() / dataset.size();
}

Shape DatasetSource::x_sample_shape() const {
  Shape s = dataset_->x.shape();
  s.erase(s.begin());
  return s;
}

Shape DatasetSource::y_sample_shape() const {
  Shape s = dataset_->y.shape();
  s.erase(s.begin());
  return s;
}

void DatasetSource::fetch(Index sample, std::span<float> x,
                          std::span<float> y) {
  CANDLE_CHECK(sample >= 0 && sample < dataset_->size(),
               "sample index out of range");
  CANDLE_CHECK(static_cast<Index>(x.size()) == x_elems_ &&
                   static_cast<Index>(y.size()) == y_elems_,
               "fetch buffer size mismatch");
  if (synthetic_cost_s_ > 0.0) {
    // Busy-spin, not sleep: an expensive generator burns CPU, and the
    // overlap the prefetch pipeline claims must be won against real work.
    Stopwatch w;
    while (w.seconds() < synthetic_cost_s_) {
    }
  }
  std::memcpy(x.data(), dataset_->x.data() + sample * x_elems_,
              static_cast<std::size_t>(x_elems_) * sizeof(float));
  std::memcpy(y.data(), dataset_->y.data() + sample * y_elems_,
              static_cast<std::size_t>(y_elems_) * sizeof(float));
}

// ---- StagedSource -----------------------------------------------------------

struct StagedSource::Impl {
  explicit Impl(const std::string& path) : reader(path, /*batch=*/1) {}
  biodata::StagedReader reader;
  std::mutex mu;  // one underlying stream; reads serialize
};

StagedSource::StagedSource(const std::string& path)
    : impl_(new Impl(path)) {}

StagedSource::~StagedSource() { delete impl_; }

Index StagedSource::size() const { return impl_->reader.rows(); }

Shape StagedSource::x_sample_shape() const {
  return impl_->reader.sample_shape();
}

Shape StagedSource::y_sample_shape() const {
  return impl_->reader.y_sample_shape();
}

void StagedSource::fetch(Index sample, std::span<float> x,
                         std::span<float> y) {
  std::lock_guard<std::mutex> lock(impl_->mu);
  impl_->reader.read_row(sample, x, y);
}

// ---- SampleStore ------------------------------------------------------------

SampleStore::SampleStore(SampleSource& source,
                         const SampleStoreOptions& options)
    : source_(&source), options_(options) {
  CANDLE_CHECK(options.fetch_threads >= 0, "negative fetch thread count");
  x_elems_ = source.x_elems();
  y_elems_ = source.y_elems();
  entry_bytes_ =
      static_cast<std::size_t>(x_elems_ + y_elems_) * sizeof(float);
  CANDLE_CHECK(entry_bytes_ > 0, "source has zero-byte samples");
  fetchers_.reserve(static_cast<std::size_t>(options.fetch_threads));
  for (Index i = 0; i < options.fetch_threads; ++i) {
    fetchers_.emplace_back([this] { fetcher_loop(); });
  }
}

SampleStore::~SampleStore() {
  {
    std::lock_guard<std::mutex> lock(mu_);
    stop_ = true;
  }
  work_cv_.notify_all();
  for (auto& t : fetchers_) t.join();
}

std::vector<float> SampleStore::take_buffer_locked() {
  if (!free_.empty()) {
    std::vector<float> buf = std::move(free_.back());
    free_.pop_back();
    return buf;
  }
  return std::vector<float>(static_cast<std::size_t>(x_elems_ + y_elems_));
}

void SampleStore::insert_locked(Index sample, std::vector<float>&& payload) {
  auto [it, fresh] = cache_.try_emplace(sample);
  if (!fresh) {
    // A racing fetch already cached it; recycle our buffer.
    free_.push_back(std::move(payload));
    return;
  }
  lru_.push_front(sample);
  it->second.xy = std::move(payload);
  it->second.lru_it = lru_.begin();
  ++stats_.inserts;
  stats_.bytes_cached += entry_bytes_;
  stats_.entries = cache_.size();
  // Evict LRU entries beyond the byte budget, but never the entry just
  // inserted (a budget below one sample still serves correctly).
  while (stats_.bytes_cached > options_.byte_budget && cache_.size() > 1) {
    const Index victim = lru_.back();
    lru_.pop_back();
    auto vit = cache_.find(victim);
    free_.push_back(std::move(vit->second.xy));
    cache_.erase(vit);
    ++stats_.evictions;
    stats_.bytes_cached -= entry_bytes_;
    stats_.entries = cache_.size();
  }
}

void SampleStore::get(Index sample, std::span<float> x, std::span<float> y) {
  CANDLE_CHECK(static_cast<Index>(x.size()) == x_elems_ &&
                   static_cast<Index>(y.size()) == y_elems_,
               "get buffer size mismatch");
  std::unique_lock<std::mutex> lock(mu_);
  for (;;) {
    auto it = cache_.find(sample);
    if (it != cache_.end()) {
      ++stats_.hits;
      lru_.splice(lru_.begin(), lru_, it->second.lru_it);
      const float* src = it->second.xy.data();
      std::memcpy(x.data(), src,
                  static_cast<std::size_t>(x_elems_) * sizeof(float));
      std::memcpy(y.data(), src + x_elems_,
                  static_cast<std::size_t>(y_elems_) * sizeof(float));
      return;
    }
    if (in_flight_.count(sample) != 0) {
      // A background fetcher has it; wait rather than fetching twice.
      done_cv_.wait(lock);
      continue;
    }
    ++stats_.misses;
    in_flight_.insert(sample);
    std::vector<float> buf = take_buffer_locked();
    lock.unlock();
    source_->fetch(sample, std::span<float>(buf.data(),
                                            static_cast<std::size_t>(x_elems_)),
                   std::span<float>(buf.data() + x_elems_,
                                    static_cast<std::size_t>(y_elems_)));
    std::memcpy(x.data(), buf.data(),
                static_cast<std::size_t>(x_elems_) * sizeof(float));
    std::memcpy(y.data(), buf.data() + x_elems_,
                static_cast<std::size_t>(y_elems_) * sizeof(float));
    lock.lock();
    insert_locked(sample, std::move(buf));
    in_flight_.erase(sample);
    done_cv_.notify_all();
    return;
  }
}

void SampleStore::get_x(Index sample, std::span<float> x) {
  // The y half rides along in the cache entry; only the copy-out differs.
  // A miss still fetches the full sample (sources produce whole rows).
  CANDLE_CHECK(static_cast<Index>(x.size()) == x_elems_,
               "get_x buffer size mismatch");
  std::unique_lock<std::mutex> lock(mu_);
  for (;;) {
    auto it = cache_.find(sample);
    if (it != cache_.end()) {
      ++stats_.hits;
      lru_.splice(lru_.begin(), lru_, it->second.lru_it);
      std::memcpy(x.data(), it->second.xy.data(),
                  static_cast<std::size_t>(x_elems_) * sizeof(float));
      return;
    }
    if (in_flight_.count(sample) != 0) {
      done_cv_.wait(lock);
      continue;
    }
    ++stats_.misses;
    in_flight_.insert(sample);
    std::vector<float> buf = take_buffer_locked();
    lock.unlock();
    source_->fetch(sample, std::span<float>(buf.data(),
                                            static_cast<std::size_t>(x_elems_)),
                   std::span<float>(buf.data() + x_elems_,
                                    static_cast<std::size_t>(y_elems_)));
    std::memcpy(x.data(), buf.data(),
                static_cast<std::size_t>(x_elems_) * sizeof(float));
    lock.lock();
    insert_locked(sample, std::move(buf));
    in_flight_.erase(sample);
    done_cv_.notify_all();
    return;
  }
}

void SampleStore::prefetch(std::span<const Index> samples) {
  if (fetchers_.empty()) return;  // synchronous configuration
  bool queued_any = false;
  {
    std::lock_guard<std::mutex> lock(mu_);
    for (const Index s : samples) {
      if (cache_.count(s) != 0 || in_flight_.count(s) != 0 ||
          queued_.count(s) != 0) {
        continue;
      }
      queued_.insert(s);
      queue_.push_back(s);
      queued_any = true;
    }
  }
  if (queued_any) work_cv_.notify_all();
}

void SampleStore::fetcher_loop() {
  std::unique_lock<std::mutex> lock(mu_);
  for (;;) {
    work_cv_.wait(lock, [&] { return stop_ || !queue_.empty(); });
    if (stop_) return;
    const Index sample = queue_.front();
    queue_.pop_front();
    queued_.erase(sample);
    if (cache_.count(sample) != 0 || in_flight_.count(sample) != 0) {
      continue;  // raced with a get() or another fetcher
    }
    in_flight_.insert(sample);
    std::vector<float> buf = take_buffer_locked();
    lock.unlock();
    source_->fetch(sample, std::span<float>(buf.data(),
                                            static_cast<std::size_t>(x_elems_)),
                   std::span<float>(buf.data() + x_elems_,
                                    static_cast<std::size_t>(y_elems_)));
    lock.lock();
    ++stats_.prefetched;
    insert_locked(sample, std::move(buf));
    in_flight_.erase(sample);
    done_cv_.notify_all();
  }
}

void SampleStore::drain() {
  std::unique_lock<std::mutex> lock(mu_);
  done_cv_.wait(lock, [&] { return queue_.empty() && in_flight_.empty(); });
}

SampleStoreStats SampleStore::stats() const {
  std::lock_guard<std::mutex> lock(mu_);
  return stats_;
}

}  // namespace candle::data

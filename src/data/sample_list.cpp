#include "data/sample_list.hpp"

#include <numeric>
#include <utility>

#include "runtime/rng.hpp"

namespace candle::data {

namespace {

/// splitmix64 finalizer: decorrelates (seed, epoch) pairs into one RNG key.
std::uint64_t mix_seed_epoch(std::uint64_t seed, Index epoch) {
  std::uint64_t z =
      seed + 0x9e3779b97f4a7c15ULL * (static_cast<std::uint64_t>(epoch) + 1);
  z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
  z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
  return z ^ (z >> 31);
}

}  // namespace

void epoch_permutation(Index n, std::uint64_t seed, Index epoch, bool shuffle,
                       std::vector<Index>& out) {
  CANDLE_CHECK(n >= 1, "cannot permute an empty sample set");
  CANDLE_CHECK(epoch >= 0, "negative epoch");
  out.resize(static_cast<std::size_t>(n));
  std::iota(out.begin(), out.end(), Index{0});
  if (!shuffle) return;
  Pcg32 rng(mix_seed_epoch(seed, epoch), 0x5a3b7e1ULL);
  // Explicit Fisher–Yates: the draw sequence (one next_below per position,
  // high to low) is part of the determinism contract.
  for (Index i = n - 1; i > 0; --i) {
    const Index j = static_cast<Index>(
        rng.next_below(static_cast<std::uint32_t>(i + 1)));
    std::swap(out[static_cast<std::size_t>(i)],
              out[static_cast<std::size_t>(j)]);
  }
}

ShardedSampleList::ShardedSampleList(Index samples, Index replicas,
                                     Index batch_per_replica, bool shuffle,
                                     std::uint64_t seed)
    : samples_(samples),
      replicas_(replicas),
      batch_(batch_per_replica),
      shuffle_(shuffle),
      seed_(seed) {
  CANDLE_CHECK(replicas_ >= 1, "need at least one replica");
  CANDLE_CHECK(batch_ >= 1, "empty replica batch");
  CANDLE_CHECK(samples_ >= global_batch(),
               "dataset smaller than one global batch");
}

void ShardedSampleList::ensure_epoch(Index epoch) {
  if (epoch == cached_epoch_) return;
  epoch_permutation(samples_, seed_, epoch, shuffle_, perm_);
  cached_epoch_ = epoch;
}

std::span<const Index> ShardedSampleList::shard(Index epoch, Index step,
                                                Index replica) {
  CANDLE_CHECK(replica >= 0 && replica < replicas_, "replica out of range");
  const std::span<const Index> g = global(epoch, step);
  return g.subspan(static_cast<std::size_t>(replica * batch_),
                   static_cast<std::size_t>(batch_));
}

std::span<const Index> ShardedSampleList::global(Index epoch, Index step) {
  CANDLE_CHECK(epoch >= 0, "negative epoch");
  CANDLE_CHECK(step >= 0 && step < steps_per_epoch(), "step out of range");
  ensure_epoch(epoch);
  return {perm_.data() + step * global_batch(),
          static_cast<std::size_t>(global_batch())};
}

}  // namespace candle::data

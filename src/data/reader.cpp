#include "data/reader.hpp"

#include <cstring>

#include "runtime/timer.hpp"

namespace candle::data {

namespace {

Shape batched_shape(Index batch, const Shape& sample) {
  Shape s;
  s.reserve(sample.size() + 1);
  s.push_back(batch);
  s.insert(s.end(), sample.begin(), sample.end());
  return s;
}

}  // namespace

IngestReader::IngestReader(SampleStore& store, const ReaderOptions& options)
    : store_(&store),
      options_(options),
      list_(store.source().size(), options.replicas, options.batch_per_replica,
            options.shuffle, options.seed) {
  CANDLE_CHECK(options.prefetch_depth >= 1, "prefetch_depth must be >= 1");
  const Shape xs =
      batched_shape(options_.batch_per_replica, store.source().x_sample_shape());
  const Shape ys =
      batched_shape(options_.batch_per_replica, store.source().y_sample_shape());
  slots_.resize(static_cast<std::size_t>(options_.prefetch_depth));
  for (StepBatch& slot : slots_) {
    slot.shards.reserve(static_cast<std::size_t>(options_.replicas));
    for (Index r = 0; r < options_.replicas; ++r) {
      slot.shards.push_back(ReplicaShard{Tensor(xs), Tensor(ys)});
    }
  }
  start_producer();
}

IngestReader::~IngestReader() { stop_producer(); }

void IngestReader::start_producer() {
  if (options_.prefetch_depth < 2) return;
  stop_ = false;
  producer_ = std::thread([this] { producer_loop(); });
}

void IngestReader::stop_producer() {
  if (!producer_.joinable()) return;
  {
    std::lock_guard<std::mutex> lock(mu_);
    stop_ = true;
  }
  slot_cv_.notify_all();
  producer_.join();
}

void IngestReader::assemble(StepBatch& slot, StreamCursor c) {
  const Index x_elems = store_->x_elems();
  const Index y_elems = store_->y_elems();
  // Fan the whole step's misses out to the store's fetch threads before the
  // row-by-row copy loop starts waiting on individual samples.
  const std::span<const Index> g = list_.global(c.epoch, c.step);
  store_->prefetch(g);
  for (Index r = 0; r < options_.replicas; ++r) {
    const std::span<const Index> shard =
        g.subspan(static_cast<std::size_t>(r * options_.batch_per_replica),
                  static_cast<std::size_t>(options_.batch_per_replica));
    ReplicaShard& out = slot.shards[static_cast<std::size_t>(r)];
    for (Index j = 0; j < options_.batch_per_replica; ++j) {
      store_->get(shard[static_cast<std::size_t>(j)],
                  std::span<float>(out.x.data() + j * x_elems,
                                   static_cast<std::size_t>(x_elems)),
                  std::span<float>(out.y.data() + j * y_elems,
                                   static_cast<std::size_t>(y_elems)));
    }
  }
  slot.cursor = c;
}

void IngestReader::producer_loop() {
  std::unique_lock<std::mutex> lock(mu_);
  for (;;) {
    slot_cv_.wait(lock, [&] {
      return stop_ || produce_seq_ - consume_seq_ < options_.prefetch_depth;
    });
    if (stop_) return;
    const Index seq = produce_seq_;
    StepBatch& slot = slots_[static_cast<std::size_t>(
        seq % options_.prefetch_depth)];
    const StreamCursor c = list_.cursor_at(base_pos_ + seq);
    lock.unlock();
    Stopwatch w;
    assemble(slot, c);
    const double busy = w.seconds();
    lock.lock();
    assemble_busy_s_ += busy;
    produce_seq_ = seq + 1;
    ready_cv_.notify_all();
  }
}

StreamCursor IngestReader::cursor() const {
  std::lock_guard<std::mutex> lock(mu_);
  return list_.cursor_at(base_pos_ + consume_seq_ + (acquired_ ? 1 : 0));
}

const StepBatch& IngestReader::acquire() {
  std::unique_lock<std::mutex> lock(mu_);
  CANDLE_CHECK(!acquired_, "acquire() while a batch is already held");
  acquired_ = true;
  if (options_.prefetch_depth < 2) {
    // Synchronous mode: assemble inline; all of it is exposed.
    StepBatch& slot = slots_[0];
    const StreamCursor c = list_.cursor_at(base_pos_ + consume_seq_);
    lock.unlock();
    Stopwatch w;
    assemble(slot, c);
    const double busy = w.seconds();
    lock.lock();
    assemble_busy_s_ += busy;
    exposed_wait_s_ += busy;
    produce_seq_ = consume_seq_ + 1;
    return slot;
  }
  Stopwatch w;
  ready_cv_.wait(lock, [&] { return produce_seq_ > consume_seq_; });
  exposed_wait_s_ += w.seconds();
  return slots_[static_cast<std::size_t>(consume_seq_ %
                                         options_.prefetch_depth)];
}

void IngestReader::release() {
  {
    std::lock_guard<std::mutex> lock(mu_);
    CANDLE_CHECK(acquired_, "release() without acquire()");
    acquired_ = false;
    ++consume_seq_;
  }
  slot_cv_.notify_all();
}

void IngestReader::seek(StreamCursor c) {
  stop_producer();
  {
    std::lock_guard<std::mutex> lock(mu_);
    CANDLE_CHECK(!acquired_, "seek() while a batch is held");
    CANDLE_CHECK(c.epoch >= 0 && c.step >= 0 &&
                     c.step < list_.steps_per_epoch(),
                 "seek cursor out of range");
    base_pos_ = list_.position(c);
    produce_seq_ = 0;
    consume_seq_ = 0;
  }
  start_producer();
}

double IngestReader::exposed_wait_s() const {
  std::lock_guard<std::mutex> lock(mu_);
  return exposed_wait_s_;
}

double IngestReader::assemble_busy_s() const {
  std::lock_guard<std::mutex> lock(mu_);
  return assemble_busy_s_;
}

}  // namespace candle::data

// Double-buffered ingest reader: the pipeline stage that turns the
// deterministic sample stream (sample_list) and the concurrent store
// (store) into ready-to-train per-replica batch tensors.
//
// A ring of `prefetch_depth` batch slots is assembled by a background
// producer thread while the consumer trains on the current slot:
//
//   producer:  ... assemble slot (s+1) ... assemble slot (s+2) ...
//   consumer:  acquire(s) -> train -> release(s) -> acquire(s+1) -> ...
//
// At steady state the consumer's acquire() returns immediately (exposed
// ingest time ~0) whenever per-step assembly cost <= per-step compute cost —
// the same drain law as PR 4's comm/compute overlap, modeled analytically
// in hpcsim::ingest_exposed_s_per_step and pinned in bench_e13_ingest.
//
// Determinism: a slot's contents are a pure function of its stream sequence
// number — slot seq holds batch cursor_at(base + seq), whose sample indices
// come from the (seed, epoch)-pure permutation.  Prefetch depth, fetch
// thread count, and thread timing change only *when* a slot is filled,
// never *what* it holds, so training loss is bit-identical to the
// synchronous configuration (prefetch_depth = 1, fetch_threads = 0).
//
// Allocation freedom: every slot's tensors are allocated once at
// construction and refilled in place; the epoch permutation and the store's
// payload freelist reuse their buffers likewise.  Steady-state batch
// assembly performs no heap allocation (asserted in test_ingest via
// workspace_stats and stable data() pointers).
//
// seek() repositions the stream to an arbitrary StreamCursor in O(1) slot
// bookkeeping (plus one permutation rebuild on next assembly) — this is
// what lets parallel/resilient resume a checkpointed stream position
// bit-identically without replaying prior epochs.
#pragma once

#include <condition_variable>
#include <cstdint>
#include <mutex>
#include <thread>
#include <vector>

#include "data/sample_list.hpp"
#include "data/store.hpp"

namespace candle::data {

struct ReaderOptions {
  Index replicas = 1;
  Index batch_per_replica = 32;
  bool shuffle = true;
  std::uint64_t seed = 0;
  /// Batch slots in the ring.  1 = fully synchronous: no producer thread,
  /// acquire() assembles inline (the baseline configuration).  2 = classic
  /// double buffering; deeper rings absorb burstier assembly times.
  Index prefetch_depth = 2;
};

/// One replica's slice of a step: [batch_per_replica, sample dims...].
struct ReplicaShard {
  Tensor x, y;
};

/// One assembled global step: `replicas` shards plus the stream position
/// they were cut at.
struct StepBatch {
  StreamCursor cursor;
  std::vector<ReplicaShard> shards;
};

class IngestReader {
 public:
  IngestReader(SampleStore& store, const ReaderOptions& options);
  ~IngestReader();
  IngestReader(const IngestReader&) = delete;
  IngestReader& operator=(const IngestReader&) = delete;

  const ShardedSampleList& list() const { return list_; }
  Index steps_per_epoch() const { return list_.steps_per_epoch(); }
  Index dropped_tail_samples() const { return list_.dropped_tail_samples(); }

  /// Stream position of the batch the next acquire() will return.
  StreamCursor cursor() const;

  /// Block until the next batch slot is assembled and return it.  The
  /// reference stays valid until release().  No acquire() may be issued
  /// while a batch is held.
  const StepBatch& acquire();

  /// Hand the held slot back to the producer for reuse.
  void release();

  /// Reposition the stream so the next acquire() returns the batch at `c`.
  /// Stops and restarts the producer; in-progress slots are discarded.
  void seek(StreamCursor c);

  /// Total consumer time blocked in acquire() (plus inline assembly when
  /// prefetch_depth == 1): the *exposed* ingest cost.
  double exposed_wait_s() const;
  /// Total wall time spent assembling slots, wherever it ran: the ingest
  /// *work*.  overlap = 1 - exposed / busy.
  double assemble_busy_s() const;

 private:
  void assemble(StepBatch& slot, StreamCursor c);
  void producer_loop();
  void start_producer();
  void stop_producer();

  SampleStore* store_;
  ReaderOptions options_;
  ShardedSampleList list_;
  std::vector<StepBatch> slots_;

  mutable std::mutex mu_;
  std::condition_variable ready_cv_;  // consumer: a slot is filled
  std::condition_variable slot_cv_;   // producer: a slot freed / stop
  Index base_pos_ = 0;    // stream position of sequence number 0
  Index produce_seq_ = 0; // slots filled since seek
  Index consume_seq_ = 0; // slots released since seek
  bool acquired_ = false;
  bool stop_ = false;
  double exposed_wait_s_ = 0.0;
  double assemble_busy_s_ = 0.0;
  std::thread producer_;
};

}  // namespace candle::data

// Concurrent in-memory sample store: the bounded cache between sample
// sources (synthetic generators, staged on-disk datasets) and the batch
// assembly of the ingest reader / the feature-fetch path of the serving
// engine.
//
// Sources can be expensive per sample (generation, decompression,
// augmentation, a disk seek); the store hides that cost two ways:
//   * caching — a fetched sample stays resident until LRU eviction pushes
//     it out of the byte budget, so hot samples (every epoch re-visits the
//     whole set; serving re-scores hot ids) cost one fetch ever;
//   * background fetchers — prefetch() queues upcoming indices to a small
//     fetch-thread pool, so misses resolve concurrently with the caller's
//     own assembly work instead of serializing in front of it.
//
// Steady-state allocation freedom: every cache entry for one source has the
// same payload size (x_elems + y_elems floats), so evicted buffers park on
// a freelist and are reused verbatim by the next insert — once warm, the
// store performs zero heap allocations even while evicting.
//
// Thread-safety: every public method may be called from any thread.  The
// store never hands out internal pointers; get() copies into caller
// buffers under the lock, which keeps eviction trivially safe.
#pragma once

#include <condition_variable>
#include <cstdint>
#include <deque>
#include <list>
#include <mutex>
#include <span>
#include <string>
#include <thread>
#include <unordered_map>
#include <unordered_set>
#include <vector>

#include "nn/dataset.hpp"

namespace candle::data {

/// Random-access sample producer the store fetches through.  fetch() may be
/// called concurrently from multiple fetch threads; implementations either
/// are naturally reentrant (in-memory rows) or serialize internally (a
/// single on-disk stream).
class SampleSource {
 public:
  virtual ~SampleSource() = default;

  virtual Index size() const = 0;
  /// Per-sample shapes (without the leading sample dim; may be empty for
  /// scalar-per-sample targets).
  virtual Shape x_sample_shape() const = 0;
  virtual Shape y_sample_shape() const = 0;
  /// Copy sample `sample`'s features/targets into the caller's buffers
  /// (sized x_elems()/y_elems()).
  virtual void fetch(Index sample, std::span<float> x,
                     std::span<float> y) = 0;

  Index x_elems() const { return shape_numel(x_sample_shape()); }
  Index y_elems() const { return shape_numel(y_sample_shape()); }
};

/// In-memory dataset as a sample source.  `synthetic_cost_s` busy-spins per
/// fetch to model an expensive generator / decompression / augmentation
/// stage — the benchmarking hook that makes ingest cost non-trivial on a
/// host where the real datasets are tiny.  Reentrant (const rows).
class DatasetSource final : public SampleSource {
 public:
  explicit DatasetSource(const Dataset& dataset,
                         double synthetic_cost_s = 0.0);

  Index size() const override { return dataset_->size(); }
  Shape x_sample_shape() const override;
  Shape y_sample_shape() const override;
  void fetch(Index sample, std::span<float> x, std::span<float> y) override;

 private:
  const Dataset* dataset_;
  double synthetic_cost_s_;
  Index x_elems_, y_elems_;
};

/// Staged on-disk dataset (biodata/staging_io format) as a sample source.
/// Row reads seek within one stream, serialized by an internal mutex — the
/// disk is the bottleneck, not the lock.
class StagedSource final : public SampleSource {
 public:
  explicit StagedSource(const std::string& path);
  ~StagedSource() override;
  StagedSource(const StagedSource&) = delete;
  StagedSource& operator=(const StagedSource&) = delete;

  Index size() const override;
  Shape x_sample_shape() const override;
  Shape y_sample_shape() const override;
  void fetch(Index sample, std::span<float> x, std::span<float> y) override;

 private:
  struct Impl;
  Impl* impl_;
};

struct SampleStoreOptions {
  /// Cache payload budget in bytes; at least one entry is always kept.
  std::size_t byte_budget = std::size_t{64} << 20;
  /// Background fetch threads serving prefetch().  0 = no background
  /// fetching: prefetch() is a no-op and every miss resolves inline in
  /// get() — the fully synchronous configuration benchmarks compare
  /// against.
  Index fetch_threads = 1;
};

struct SampleStoreStats {
  std::uint64_t hits = 0;        ///< get()/get_x() served from cache
  std::uint64_t misses = 0;      ///< fetched inline by the caller
  std::uint64_t prefetched = 0;  ///< fetched by a background fetcher
  std::uint64_t evictions = 0;   ///< entries pushed out by the byte budget
  std::uint64_t inserts = 0;     ///< cache entries ever created
  std::size_t bytes_cached = 0;  ///< current resident payload bytes
  std::size_t entries = 0;       ///< current resident entry count
};

class SampleStore {
 public:
  SampleStore(SampleSource& source, const SampleStoreOptions& options);
  ~SampleStore();
  SampleStore(const SampleStore&) = delete;
  SampleStore& operator=(const SampleStore&) = delete;

  Index x_elems() const { return x_elems_; }
  Index y_elems() const { return y_elems_; }
  SampleSource& source() { return *source_; }

  /// Copy sample `sample` into the caller's buffers: cache hit copies under
  /// the lock; a miss fetches through the source (waiting instead if a
  /// background fetcher already has it in flight) and caches the result.
  void get(Index sample, std::span<float> x, std::span<float> y);

  /// Features only (the serving feature-fetch path; targets stay cached).
  void get_x(Index sample, std::span<float> x);

  /// Queue upcoming samples for the background fetchers.  Already-cached,
  /// in-flight, and already-queued indices are skipped.  No-op when
  /// fetch_threads == 0.
  void prefetch(std::span<const Index> samples);

  /// Block until the prefetch queue and all in-flight fetches drain.
  void drain();

  SampleStoreStats stats() const;

 private:
  struct Entry {
    std::vector<float> xy;  // x_elems then y_elems floats
    std::list<Index>::iterator lru_it;
  };

  void fetcher_loop();
  /// Insert `payload` (moved) as `sample`'s entry and evict down to the
  /// byte budget.  Caller holds `mu_`.
  void insert_locked(Index sample, std::vector<float>&& payload);
  std::vector<float> take_buffer_locked();

  SampleSource* source_;
  SampleStoreOptions options_;
  Index x_elems_, y_elems_;
  std::size_t entry_bytes_;

  mutable std::mutex mu_;
  std::condition_variable work_cv_;   // fetchers: queue non-empty or stop
  std::condition_variable done_cv_;   // waiters: fetch completed / drained
  std::unordered_map<Index, Entry> cache_;
  std::list<Index> lru_;              // front = most recently used
  std::unordered_set<Index> in_flight_;
  std::unordered_set<Index> queued_;
  std::deque<Index> queue_;
  std::vector<std::vector<float>> free_;  // evicted payload buffers
  SampleStoreStats stats_;
  bool stop_ = false;
  std::vector<std::thread> fetchers_;
};

}  // namespace candle::data

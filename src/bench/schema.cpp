#include "bench/schema.hpp"

#include <algorithm>
#include <cctype>
#include <charconv>
#include <cmath>
#include <cstdio>
#include <cstdlib>
#include <ostream>
#include <sstream>

#include "runtime/error.hpp"

namespace candle::bench {

// ---- JSON writing -----------------------------------------------------------

namespace {

/// Shortest round-trip decimal form of a double (std::to_chars): two equal
/// doubles always serialize to the same bytes, which is what the bit-
/// identical-JSON determinism contract rests on.
std::string fmt(double v) {
  char buf[32];
  const auto res = std::to_chars(buf, buf + sizeof(buf), v);
  CANDLE_CHECK(res.ec == std::errc());
  return std::string(buf, res.ptr);
}

std::string quote(const std::string& s) {
  std::string out = "\"";
  for (const char c : s) {
    switch (c) {
      case '"': out += "\\\""; break;
      case '\\': out += "\\\\"; break;
      case '\n': out += "\\n"; break;
      case '\t': out += "\\t"; break;
      case '\r': out += "\\r"; break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof(buf), "\\u%04x", c);
          out += buf;
        } else {
          out += c;
        }
    }
  }
  out += '"';
  return out;
}

}  // namespace

void write_json(const SuiteReport& r, std::ostream& out) {
  out << "{\n"
      << "  \"schema\": " << quote(r.schema) << ",\n"
      << "  \"repeats\": " << r.repeats << ",\n"
      << "  \"base_seed\": " << r.base_seed << ",\n"
      << "  \"smoke\": " << (r.smoke ? "true" : "false") << ",\n"
      << "  \"host_cores\": " << r.host_cores << ",\n"
      << "  \"benchmarks\": [";
  for (std::size_t i = 0; i < r.benchmarks.size(); ++i) {
    const BenchmarkReport& b = r.benchmarks[i];
    out << (i == 0 ? "\n" : ",\n");
    out << "    {\n"
        << "      \"name\": " << quote(b.name) << ",\n"
        << "      \"metric\": " << quote(b.metric) << ",\n"
        << "      \"unit\": " << quote(b.unit) << ",\n"
        << "      \"direction\": " << quote(direction_name(b.direction))
        << ",\n"
        << "      \"seeds\": [";
    for (std::size_t j = 0; j < b.seeds.size(); ++j) {
      out << (j ? ", " : "") << b.seeds[j];
    }
    out << "],\n      \"values\": [";
    for (std::size_t j = 0; j < b.values.size(); ++j) {
      out << (j ? ", " : "") << fmt(b.values[j]);
    }
    out << "],\n      \"stats\": {\"mean\": " << fmt(b.stats.mean)
        << ", \"min\": " << fmt(b.stats.min) << ", \"max\": " << fmt(b.stats.max)
        << ", \"stddev\": " << fmt(b.stats.stddev)
        << ", \"rel_spread\": " << fmt(b.stats.rel_spread) << "},\n"
        << "      \"model_pin_ratio\": " << fmt(b.model_pin_ratio) << ",\n"
        << "      \"perf_gate_active\": "
        << (b.perf_gate_active ? "true" : "false") << ",\n"
        << "      \"honesty_note\": " << quote(b.honesty_note) << ",\n"
        << "      \"aux\": {";
    bool first_aux = true;
    for (const auto& [k, v] : b.aux) {
      out << (first_aux ? "" : ", ") << quote(k) << ": " << fmt(v);
      first_aux = false;
    }
    // wall_s sits alone on its line: strip_wallclock_fields() drops whole
    // lines, which only works while this stays the line's only field.
    out << "},\n"
        << "      \"wall_s\": " << fmt(b.wall_s) << "\n"
        << "    }";
  }
  out << "\n  ],\n"
      << "  \"total_wall_s\": " << fmt(r.total_wall_s) << "\n"
      << "}\n";
}

std::string to_json(const SuiteReport& report) {
  std::ostringstream os;
  write_json(report, os);
  return os.str();
}

std::string strip_wallclock_fields(const std::string& json_text) {
  std::string out;
  out.reserve(json_text.size());
  std::size_t pos = 0;
  while (pos < json_text.size()) {
    std::size_t eol = json_text.find('\n', pos);
    if (eol == std::string::npos) eol = json_text.size() - 1;
    const std::string line = json_text.substr(pos, eol - pos + 1);
    if (line.find("\"wall_s\"") == std::string::npos &&
        line.find("\"total_wall_s\"") == std::string::npos) {
      out += line;
    }
    pos = eol + 1;
  }
  return out;
}

// ---- JSON parsing -----------------------------------------------------------
// A minimal recursive-descent parser (objects, arrays, strings, numbers,
// bools, null) — just enough to read our own artifact and a baseline from a
// prior commit.  No external dependency: the container image has none.

namespace {

struct JsonValue {
  enum class Kind { Null, Bool, Number, String, Array, Object };
  Kind kind = Kind::Null;
  bool boolean = false;
  double number = 0.0;
  std::string string;
  std::vector<JsonValue> array;
  std::vector<std::pair<std::string, JsonValue>> object;  // preserves order

  const JsonValue* find(const std::string& key) const {
    for (const auto& [k, v] : object) {
      if (k == key) return &v;
    }
    return nullptr;
  }
};

class JsonParser {
 public:
  explicit JsonParser(const std::string& text) : text_(text) {}

  JsonValue parse() {
    JsonValue v = value();
    skip_ws();
    if (pos_ != text_.size()) fail("trailing characters after document");
    return v;
  }

 private:
  [[noreturn]] void fail(const std::string& why) {
    throw Error("JSON parse error at offset " + std::to_string(pos_) + ": " +
                why);
  }

  void skip_ws() {
    while (pos_ < text_.size() &&
           (text_[pos_] == ' ' || text_[pos_] == '\n' || text_[pos_] == '\t' ||
            text_[pos_] == '\r')) {
      ++pos_;
    }
  }

  char peek() {
    skip_ws();
    if (pos_ >= text_.size()) fail("unexpected end of input");
    return text_[pos_];
  }

  void expect(char c) {
    if (peek() != c) fail(std::string("expected '") + c + "'");
    ++pos_;
  }

  bool consume_literal(const char* lit) {
    const std::size_t n = std::char_traits<char>::length(lit);
    if (text_.compare(pos_, n, lit) == 0) {
      pos_ += n;
      return true;
    }
    return false;
  }

  JsonValue value() {
    const char c = peek();
    JsonValue v;
    switch (c) {
      case '{': return object();
      case '[': return array();
      case '"':
        v.kind = JsonValue::Kind::String;
        v.string = string();
        return v;
      case 't':
        if (!consume_literal("true")) fail("bad literal");
        v.kind = JsonValue::Kind::Bool;
        v.boolean = true;
        return v;
      case 'f':
        if (!consume_literal("false")) fail("bad literal");
        v.kind = JsonValue::Kind::Bool;
        v.boolean = false;
        return v;
      case 'n':
        if (!consume_literal("null")) fail("bad literal");
        return v;
      default: return number();
    }
  }

  JsonValue object() {
    expect('{');
    JsonValue v;
    v.kind = JsonValue::Kind::Object;
    if (peek() == '}') {
      ++pos_;
      return v;
    }
    for (;;) {
      if (peek() != '"') fail("object key must be a string");
      std::string key = string();
      expect(':');
      v.object.emplace_back(std::move(key), value());
      const char c = peek();
      ++pos_;
      if (c == '}') return v;
      if (c != ',') fail("expected ',' or '}' in object");
    }
  }

  JsonValue array() {
    expect('[');
    JsonValue v;
    v.kind = JsonValue::Kind::Array;
    if (peek() == ']') {
      ++pos_;
      return v;
    }
    for (;;) {
      v.array.push_back(value());
      const char c = peek();
      ++pos_;
      if (c == ']') return v;
      if (c != ',') fail("expected ',' or ']' in array");
    }
  }

  std::string string() {
    expect('"');
    std::string out;
    while (pos_ < text_.size()) {
      const char c = text_[pos_++];
      if (c == '"') return out;
      if (c == '\\') {
        if (pos_ >= text_.size()) fail("dangling escape");
        const char e = text_[pos_++];
        switch (e) {
          case '"': out += '"'; break;
          case '\\': out += '\\'; break;
          case '/': out += '/'; break;
          case 'n': out += '\n'; break;
          case 't': out += '\t'; break;
          case 'r': out += '\r'; break;
          case 'u': {
            if (pos_ + 4 > text_.size()) fail("truncated \\u escape");
            const unsigned code = static_cast<unsigned>(
                std::strtoul(text_.substr(pos_, 4).c_str(), nullptr, 16));
            pos_ += 4;
            // Sufficient for the control characters our writer emits.
            out += static_cast<char>(code & 0x7f);
            break;
          }
          default: fail("unsupported escape");
        }
      } else {
        out += c;
      }
    }
    fail("unterminated string");
  }

  JsonValue number() {
    const std::size_t start = pos_;
    while (pos_ < text_.size() &&
           (std::isdigit(static_cast<unsigned char>(text_[pos_])) != 0 ||
            text_[pos_] == '-' || text_[pos_] == '+' || text_[pos_] == '.' ||
            text_[pos_] == 'e' || text_[pos_] == 'E')) {
      ++pos_;
    }
    if (pos_ == start) fail("expected a value");
    JsonValue v;
    v.kind = JsonValue::Kind::Number;
    const std::string tok = text_.substr(start, pos_ - start);
    char* end = nullptr;
    v.number = std::strtod(tok.c_str(), &end);
    if (end == nullptr || *end != '\0') fail("malformed number '" + tok + "'");
    return v;
  }

  const std::string& text_;
  std::size_t pos_ = 0;
};

const JsonValue& require(const JsonValue& obj, const std::string& key,
                         JsonValue::Kind kind, const std::string& where) {
  CANDLE_CHECK(obj.kind == JsonValue::Kind::Object,
               where + " must be an object");
  const JsonValue* v = obj.find(key);
  if (v == nullptr) throw Error(where + " is missing \"" + key + "\"");
  if (v->kind != kind) {
    throw Error(where + " field \"" + key + "\" has the wrong type");
  }
  return *v;
}

double num(const JsonValue& obj, const std::string& key,
           const std::string& where) {
  return require(obj, key, JsonValue::Kind::Number, where).number;
}

std::string str(const JsonValue& obj, const std::string& key,
                const std::string& where) {
  return require(obj, key, JsonValue::Kind::String, where).string;
}

Direction parse_direction(const std::string& s, const std::string& where) {
  if (s == "higher") return Direction::HigherIsBetter;
  if (s == "lower") return Direction::LowerIsBetter;
  throw Error(where + " has unknown direction \"" + s + "\"");
}

}  // namespace

SuiteReport parse_suite_json(const std::string& text) {
  const JsonValue doc = JsonParser(text).parse();
  if (doc.kind != JsonValue::Kind::Object) {
    throw Error("suite report must be a JSON object");
  }
  SuiteReport r;
  r.schema = str(doc, "schema", "suite report");
  r.repeats = static_cast<int>(num(doc, "repeats", "suite report"));
  r.base_seed =
      static_cast<std::uint64_t>(num(doc, "base_seed", "suite report"));
  r.smoke = require(doc, "smoke", JsonValue::Kind::Bool, "suite report").boolean;
  r.host_cores = static_cast<int>(num(doc, "host_cores", "suite report"));
  r.total_wall_s = num(doc, "total_wall_s", "suite report");
  const JsonValue& benches =
      require(doc, "benchmarks", JsonValue::Kind::Array, "suite report");
  for (const JsonValue& jb : benches.array) {
    BenchmarkReport b;
    const std::string where =
        "benchmark \"" + (jb.find("name") != nullptr &&
                                  jb.find("name")->kind ==
                                      JsonValue::Kind::String
                              ? jb.find("name")->string
                              : std::string("?")) +
        "\"";
    b.name = str(jb, "name", where);
    b.metric = str(jb, "metric", where);
    b.unit = str(jb, "unit", where);
    b.direction = parse_direction(str(jb, "direction", where), where);
    for (const JsonValue& s :
         require(jb, "seeds", JsonValue::Kind::Array, where).array) {
      if (s.kind != JsonValue::Kind::Number) {
        throw Error(where + " seeds must be numbers");
      }
      b.seeds.push_back(static_cast<std::uint64_t>(s.number));
    }
    for (const JsonValue& v :
         require(jb, "values", JsonValue::Kind::Array, where).array) {
      if (v.kind != JsonValue::Kind::Number) {
        throw Error(where + " values must be numbers");
      }
      b.values.push_back(v.number);
    }
    const JsonValue& stats =
        require(jb, "stats", JsonValue::Kind::Object, where);
    b.stats.n = static_cast<int>(b.values.size());
    b.stats.mean = num(stats, "mean", where);
    b.stats.min = num(stats, "min", where);
    b.stats.max = num(stats, "max", where);
    b.stats.stddev = num(stats, "stddev", where);
    b.stats.rel_spread = num(stats, "rel_spread", where);
    b.model_pin_ratio = num(jb, "model_pin_ratio", where);
    b.perf_gate_active =
        require(jb, "perf_gate_active", JsonValue::Kind::Bool, where).boolean;
    b.honesty_note = str(jb, "honesty_note", where);
    const JsonValue& aux = require(jb, "aux", JsonValue::Kind::Object, where);
    for (const auto& [k, v] : aux.object) {
      if (v.kind != JsonValue::Kind::Number) {
        throw Error(where + " aux values must be numbers");
      }
      b.aux[k] = v.number;
    }
    b.wall_s = num(jb, "wall_s", where);
    r.benchmarks.push_back(std::move(b));
  }
  return r;
}

// ---- validation -------------------------------------------------------------

std::string validate(const SuiteReport& r) {
  if (r.schema != kSuiteSchema) {
    return "unexpected schema \"" + r.schema + "\" (want \"" + kSuiteSchema +
           "\")";
  }
  if (r.repeats < 1) return "repeats must be >= 1";
  if (r.benchmarks.empty()) return "suite carries no benchmarks";
  for (std::size_t i = 0; i < r.benchmarks.size(); ++i) {
    const BenchmarkReport& b = r.benchmarks[i];
    const std::string where = "benchmark \"" + b.name + "\"";
    if (b.name.empty()) return "benchmark with empty name";
    if (b.metric.empty()) return where + " has an empty metric";
    for (std::size_t j = 0; j < i; ++j) {
      if (r.benchmarks[j].name == b.name) {
        return "duplicate benchmark name \"" + b.name + "\"";
      }
    }
    if (static_cast<int>(b.seeds.size()) != r.repeats) {
      return where + " carries " + std::to_string(b.seeds.size()) +
             " seeds for " + std::to_string(r.repeats) + " repeats";
    }
    if (b.values.size() != b.seeds.size()) {
      return where + " has mismatched seed/value counts";
    }
    for (const double v : b.values) {
      if (!std::isfinite(v)) return where + " has a non-finite value";
    }
    const RepeatStats want = summarize(b.values);
    const auto close = [](double a, double c) {
      const double scale = std::max({std::abs(a), std::abs(c), 1.0});
      return std::abs(a - c) <= 1e-9 * scale;
    };
    if (!close(want.mean, b.stats.mean) || !close(want.min, b.stats.min) ||
        !close(want.max, b.stats.max) ||
        !close(want.rel_spread, b.stats.rel_spread)) {
      return where + " stats do not match its values";
    }
    if (!std::isfinite(b.model_pin_ratio) || b.model_pin_ratio < 0.0) {
      return where + " has an invalid model_pin_ratio";
    }
  }
  return "";
}

}  // namespace candle::bench

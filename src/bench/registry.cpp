#include "bench/registry.hpp"

#include "runtime/error.hpp"

namespace candle::bench {

const char* direction_name(Direction d) {
  return d == Direction::HigherIsBetter ? "higher" : "lower";
}

namespace {

class LambdaBenchmark final : public Benchmark {
 public:
  LambdaBenchmark(BenchmarkInfo info,
                  std::function<RunResult(const RunContext&)> fn)
      : info_(std::move(info)), fn_(std::move(fn)) {}

  BenchmarkInfo info() const override { return info_; }
  RunResult run(const RunContext& ctx) override { return fn_(ctx); }

 private:
  BenchmarkInfo info_;
  std::function<RunResult(const RunContext&)> fn_;
};

}  // namespace

std::unique_ptr<Benchmark> make_benchmark(
    BenchmarkInfo info, std::function<RunResult(const RunContext&)> fn) {
  CANDLE_CHECK(static_cast<bool>(fn), "benchmark function must be callable");
  return std::make_unique<LambdaBenchmark>(std::move(info), std::move(fn));
}

void Registry::add(std::unique_ptr<Benchmark> benchmark) {
  CANDLE_CHECK(benchmark != nullptr, "null benchmark");
  const BenchmarkInfo info = benchmark->info();
  CANDLE_CHECK(!info.name.empty(), "benchmark name must be non-empty");
  CANDLE_CHECK(!info.metric.empty(),
               "benchmark metric must be non-empty: " + info.name);
  for (const auto& existing : benchmarks_) {
    CANDLE_CHECK(existing->info().name != info.name,
                 "duplicate benchmark name: " + info.name);
  }
  benchmarks_.push_back(std::move(benchmark));
}

std::vector<std::string> Registry::names() const {
  std::vector<std::string> out;
  out.reserve(benchmarks_.size());
  for (const auto& b : benchmarks_) out.push_back(b->info().name);
  return out;
}

}  // namespace candle::bench

// Shared command-line parser for the bench binaries.  Every bench_e* main
// used to hand-roll the same strncmp("--json=", ...) loop with slightly
// different bugs (silently ignored unknown flags, accepted empty paths);
// this is the one parser they all share, with the error cases pinned by
// tests/test_bench_harness.cpp.
//
// Three flag kinds:
//   * flag(name)               -- boolean `--name`; a value is an error.
//   * option(name, default)    -- `--name=VALUE`; bare `--name` or an empty
//                                 value is an error; absent uses the default.
//   * soft_option(name, bare)  -- `--name` engages with `bare` as the value
//                                 (how `--json` and `--mitigation` behave in
//                                 the e3/e10 binaries); `--name=VALUE`
//                                 overrides it.
//
// Any flag given twice is an error.  Unknown arguments are errors unless
// allow_unknown() is set, in which case they are collected in unparsed()
// (the google-benchmark binaries forward them to benchmark::Initialize).
#pragma once

#include <map>
#include <string>
#include <vector>

namespace candle::bench {

class Args {
 public:
  Args& flag(const std::string& name);
  Args& option(const std::string& name, std::string default_value);
  Args& soft_option(const std::string& name, std::string bare_value);
  Args& allow_unknown();

  /// Parse argv[1..argc).  Returns false on the first error; error() then
  /// holds a human-readable message and the flag state is unspecified.
  bool parse(int argc, const char* const* argv);

  const std::string& error() const { return error_; }

  /// True when the flag/option appeared on the command line.
  bool has(const std::string& name) const;

  /// The parsed value (or the declared default when absent).  It is a
  /// logic error to ask for a name that was never declared.
  const std::string& get(const std::string& name) const;

  /// Arguments not matching any declared flag (allow_unknown() mode only).
  const std::vector<std::string>& unparsed() const { return unparsed_; }

 private:
  enum class Kind { Flag, Option, SoftOption };
  struct Spec {
    Kind kind = Kind::Flag;
    std::string value;      // current value (default until parsed)
    std::string bare_value; // soft_option: value a bare `--name` engages
    bool seen = false;
  };

  Args& declare(const std::string& name, Kind kind, std::string value,
                std::string bare_value);
  bool fail(const std::string& message);

  std::map<std::string, Spec> specs_;
  std::vector<std::string> unparsed_;
  std::string error_;
  bool allow_unknown_ = false;
};

}  // namespace candle::bench

#include "bench/gate.hpp"

#include <algorithm>
#include <cmath>

namespace candle::bench {

const char* gate_status_name(GateStatus s) {
  switch (s) {
    case GateStatus::Ok: return "ok";
    case GateStatus::Improved: return "improved";
    case GateStatus::Regressed: return "REGRESSED";
    case GateStatus::New: return "new";
    case GateStatus::Missing: return "MISSING";
    case GateStatus::Informational: return "informational";
  }
  return "?";
}

GateReport gate_against_baseline(const SuiteReport& current,
                                 const SuiteReport& baseline,
                                 const GateOptions& opts) {
  GateReport report;
  const auto find_current = [&](const std::string& name)
      -> const BenchmarkReport* {
    for (const BenchmarkReport& b : current.benchmarks) {
      if (b.name == name) return &b;
    }
    return nullptr;
  };

  for (const BenchmarkReport& base : baseline.benchmarks) {
    GateFinding f;
    f.name = base.name;
    f.baseline_mean = base.stats.mean;
    const BenchmarkReport* cur = find_current(base.name);
    if (cur == nullptr) {
      // A benchmark silently dropped from the suite is a gate failure: the
      // trajectory it tracked would otherwise vanish without a trace.
      f.status = GateStatus::Missing;
      f.note = "present in baseline, absent from current artifact";
      ++report.missing;
      report.findings.push_back(std::move(f));
      continue;
    }
    f.current_mean = cur->stats.mean;
    if (cur->metric != base.metric || cur->direction != base.direction) {
      f.status = GateStatus::New;
      f.note = "metric definition changed; treated as a new benchmark";
      report.findings.push_back(std::move(f));
      continue;
    }
    if (!cur->perf_gate_active || !base.perf_gate_active) {
      f.status = GateStatus::Informational;
      f.note = !cur->perf_gate_active ? cur->honesty_note : base.honesty_note;
      if (f.note.empty()) f.note = "perf gate inactive (honesty flag)";
      report.findings.push_back(std::move(f));
      continue;
    }
    const double denom = std::max(std::abs(base.stats.mean), 1e-300);
    const double delta = (cur->stats.mean - base.stats.mean) / denom;
    f.rel_change =
        base.direction == Direction::LowerIsBetter ? delta : -delta;
    f.allowed = std::max(
        opts.min_rel_margin,
        opts.envelope_k *
            std::max(base.stats.rel_spread, cur->stats.rel_spread));
    if (f.rel_change > f.allowed) {
      f.status = GateStatus::Regressed;
      ++report.regressions;
    } else if (f.rel_change < -f.allowed) {
      f.status = GateStatus::Improved;
    } else {
      f.status = GateStatus::Ok;
    }
    report.findings.push_back(std::move(f));
  }

  for (const BenchmarkReport& cur : current.benchmarks) {
    bool in_baseline = false;
    for (const BenchmarkReport& base : baseline.benchmarks) {
      if (base.name == cur.name) {
        in_baseline = true;
        break;
      }
    }
    if (!in_baseline) {
      GateFinding f;
      f.name = cur.name;
      f.status = GateStatus::New;
      f.current_mean = cur.stats.mean;
      f.note = "no baseline entry (first run of this benchmark)";
      report.findings.push_back(std::move(f));
    }
  }
  return report;
}

}  // namespace candle::bench

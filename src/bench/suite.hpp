// Suite runner: executes every registered benchmark N times over a seeded
// repeat schedule, assembles the consolidated SuiteReport, and provides the
// full driver (flag parsing, artifact writing, self-check, baseline gate)
// that bench_suite's main() delegates to — so tests can drive the identical
// code path with toy registries and pin the exit-code contract.
#pragma once

#include <iosfwd>
#include <string>

#include "bench/gate.hpp"
#include "bench/registry.hpp"
#include "bench/schema.hpp"

namespace candle::bench {

struct SuiteOptions {
  int repeats = 3;                  // seeded repeats per benchmark (>= 1)
  std::uint64_t base_seed = 8061;   // repeat r runs with seed base_seed + r
  bool smoke = false;               // shrink problem sizes (CI tier)
  std::string filter;               // substring filter on benchmark names
};

/// Run the registry under the options.  Benchmarks whose names do not
/// contain `filter` are skipped (empty filter = run everything).  When
/// `log` is non-null a human-readable table is streamed to it as results
/// arrive.
SuiteReport run_suite(Registry& registry, const SuiteOptions& options,
                      std::ostream* log = nullptr);

/// Exit codes of the driver (and of bench_suite):
///   0 = suite ran, self-check passed, no gated regression (or no baseline);
///   1 = a regression/missing benchmark outside the variance envelope, or a
///       self-check failure;
///   2 = usage error (bad flags) or an unreadable/malformed baseline.
/// A `--baseline` path that does not exist prints a "no baseline" note and
/// exits 0 — that is how the very first CI run passes before any artifact
/// exists.
inline constexpr int kExitOk = 0;
inline constexpr int kExitRegression = 1;
inline constexpr int kExitUsage = 2;

/// Full driver: flags are
///   --smoke             shrink problem sizes
///   --seeds=N           repeats per benchmark (default 3)
///   --seed=S            base seed (default 8061)
///   --filter=SUBSTR     run only matching benchmarks
///   --json=PATH         artifact path (default BENCH_suite.ci.json)
///   --baseline=PATH     gate against a prior artifact
///   --selfcheck         re-read the artifact and verify it parses,
///                       validates, and carries every benchmark that ran
///                       exactly once, then gate it against itself
/// Streams progress to `out` and returns the process exit code.
int suite_main(Registry& registry, int argc, const char* const* argv,
               std::ostream& out, std::ostream& err);

void print_gate_report(const GateReport& report, std::ostream& out);

}  // namespace candle::bench

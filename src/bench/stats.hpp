// Run-to-run statistics for seeded benchmark repeats: the MLPerf-HPC
// discipline reports every timed result as mean/min/max over N seeded runs
// plus a dispersion measure, and the regression gate judges changes against
// that measured dispersion instead of a bare threshold.
#pragma once

#include <vector>

namespace candle::bench {

struct RepeatStats {
  int n = 0;
  double mean = 0.0;
  double min = 0.0;
  double max = 0.0;
  /// Sample standard deviation (n-1 denominator); 0 when n < 2.
  double stddev = 0.0;
  /// Run-to-run variance envelope: (max - min) / |mean|, 0 when mean == 0.
  /// This is the quantity the regression gate widens its threshold by.
  double rel_spread = 0.0;
};

/// Summarize one metric's seeded repeats.  Empty input yields a zero struct.
RepeatStats summarize(const std::vector<double>& values);

}  // namespace candle::bench

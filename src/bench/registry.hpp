// Benchmark registry: the one interface every experiment adapter implements
// so the suite driver (bench_suite) can run them all under the same metric
// discipline — N seeded repeats, variance reporting, one consolidated
// artifact — instead of fourteen binaries emitting disconnected JSONs.
#pragma once

#include <cstdint>
#include <functional>
#include <map>
#include <memory>
#include <string>
#include <vector>

namespace candle::bench {

enum class Direction {
  HigherIsBetter,  // throughput-style metrics (GFLOP/s, req/s, samples/s)
  LowerIsBetter,   // time-style metrics (time-to-accuracy, step time)
};

const char* direction_name(Direction d);  // "higher" | "lower"

struct BenchmarkInfo {
  std::string name;    // unique registry key, e.g. "tta_blob_classifier"
  std::string metric;  // primary metric name, e.g. "time_to_accuracy_s"
  std::string unit;    // human unit, e.g. "s", "gflops", "req/s"
  Direction direction = Direction::LowerIsBetter;
};

/// One seeded repeat's context.  The seed is the only source of randomness
/// a benchmark may use; smoke shrinks problem sizes for CI.
struct RunContext {
  std::uint64_t seed = 0;
  int rep = 0;
  bool smoke = false;
};

/// One seeded repeat's result.
struct RunResult {
  double metric = 0.0;
  /// Modeled-vs-measured pin for benchmarks that close the loop against an
  /// hpcsim estimate (ratio ~1 when the model holds).  0 = no model pin.
  double model_pin_ratio = 0.0;
  /// False when the host cannot physically exhibit the effect being timed
  /// (e.g. fewer cores than worker threads) — the suite still records the
  /// numbers but the regression gate treats the benchmark as informational.
  bool perf_gate_active = true;
  std::string honesty_note;  // why the gate is informational, when it is
  /// Named auxiliary scalars (sub-metrics), recorded from the last repeat.
  std::map<std::string, double> aux;
};

class Benchmark {
 public:
  virtual ~Benchmark() = default;
  virtual BenchmarkInfo info() const = 0;
  virtual RunResult run(const RunContext& ctx) = 0;
};

/// Wrap a lambda as a Benchmark (how bench_suite registers its adapters).
std::unique_ptr<Benchmark> make_benchmark(
    BenchmarkInfo info, std::function<RunResult(const RunContext&)> fn);

class Registry {
 public:
  /// Register a benchmark.  Empty or duplicate names throw: a silent
  /// overwrite is exactly the "benchmark dropped from the artifact" failure
  /// the suite exists to prevent.
  void add(std::unique_ptr<Benchmark> benchmark);

  std::size_t size() const { return benchmarks_.size(); }
  const std::vector<std::unique_ptr<Benchmark>>& benchmarks() const {
    return benchmarks_;
  }
  std::vector<std::string> names() const;

 private:
  std::vector<std::unique_ptr<Benchmark>> benchmarks_;
};

}  // namespace candle::bench

// The consolidated BENCH_suite.ci.json schema: one artifact per commit that
// carries, for every registered benchmark, the primary metric over N seeded
// repeats with run-to-run variance, the model-pin ratio where an hpcsim
// estimate closes the loop, and the honesty flags for core-starved hosts.
// The regression gate (bench/gate.hpp) consumes two of these artifacts.
//
// Determinism contract: with deterministic benchmarks, the serialized JSON
// is bit-identical across runs at equal seeds *except* for the wall-clock
// bookkeeping fields ("wall_s", "total_wall_s"), which the writer keeps on
// dedicated lines so strip_wallclock_fields() can drop them for comparison.
#pragma once

#include <cstdint>
#include <iosfwd>
#include <map>
#include <string>
#include <vector>

#include "bench/registry.hpp"
#include "bench/stats.hpp"

namespace candle::bench {

inline constexpr const char* kSuiteSchema = "candle-bench-suite/v1";

struct BenchmarkReport {
  std::string name;
  std::string metric;
  std::string unit;
  Direction direction = Direction::LowerIsBetter;
  std::vector<std::uint64_t> seeds;  // one per repeat, in run order
  std::vector<double> values;        // primary metric per repeat
  RepeatStats stats;                 // derived from values (validated)
  double model_pin_ratio = 0.0;      // 0 = benchmark has no model pin
  bool perf_gate_active = true;      // false = informational (honesty flag)
  std::string honesty_note;
  std::map<std::string, double> aux; // last repeat's auxiliary scalars
  double wall_s = 0.0;               // wall clock over all repeats (excluded
                                     // from the determinism contract)
};

struct SuiteReport {
  std::string schema = kSuiteSchema;
  int repeats = 0;
  std::uint64_t base_seed = 0;
  bool smoke = false;
  int host_cores = 0;
  std::vector<BenchmarkReport> benchmarks;
  double total_wall_s = 0.0;  // excluded from the determinism contract
};

void write_json(const SuiteReport& report, std::ostream& out);
std::string to_json(const SuiteReport& report);

/// Parse a serialized suite report.  Throws candle::Error on malformed JSON
/// or a document that does not carry the expected fields.
SuiteReport parse_suite_json(const std::string& text);

/// Structural validation beyond parsing: schema version, non-empty suite,
/// unique names, per-benchmark seed/value counts matching `repeats`, finite
/// values, and stats consistent with the recorded values.  Returns the
/// first problem found, or an empty string when the report is well-formed.
std::string validate(const SuiteReport& report);

/// Drop the wall-clock bookkeeping lines from a serialized report so two
/// runs of deterministic benchmarks can be compared bit-for-bit.
std::string strip_wallclock_fields(const std::string& json_text);

}  // namespace candle::bench

#include "bench/suite.hpp"

#include <algorithm>
#include <cstdio>
#include <fstream>
#include <ostream>
#include <sstream>
#include <thread>

#include "bench/args.hpp"
#include "runtime/error.hpp"
#include "runtime/timer.hpp"

namespace candle::bench {

SuiteReport run_suite(Registry& registry, const SuiteOptions& options,
                      std::ostream* log) {
  CANDLE_CHECK(options.repeats >= 1, "suite needs at least one repeat");
  SuiteReport report;
  report.repeats = options.repeats;
  report.base_seed = options.base_seed;
  report.smoke = options.smoke;
  report.host_cores =
      static_cast<int>(std::max(1u, std::thread::hardware_concurrency()));
  Stopwatch total;
  for (const auto& benchmark : registry.benchmarks()) {
    const BenchmarkInfo info = benchmark->info();
    if (!options.filter.empty() &&
        info.name.find(options.filter) == std::string::npos) {
      continue;
    }
    BenchmarkReport b;
    b.name = info.name;
    b.metric = info.metric;
    b.unit = info.unit;
    b.direction = info.direction;
    Stopwatch wall;
    for (int rep = 0; rep < options.repeats; ++rep) {
      RunContext ctx;
      ctx.seed = options.base_seed + static_cast<std::uint64_t>(rep);
      ctx.rep = rep;
      ctx.smoke = options.smoke;
      const RunResult result = benchmark->run(ctx);
      b.seeds.push_back(ctx.seed);
      b.values.push_back(result.metric);
      // Pin/honesty/aux come from the last repeat: they describe the
      // benchmark's configuration on this host, not a per-seed draw.
      b.model_pin_ratio = result.model_pin_ratio;
      b.perf_gate_active = result.perf_gate_active;
      b.honesty_note = result.honesty_note;
      b.aux = result.aux;
    }
    b.wall_s = wall.seconds();
    b.stats = summarize(b.values);
    if (log != nullptr) {
      char line[256];
      std::snprintf(line, sizeof(line),
                    "%-24s %-22s mean %11.4g  min %11.4g  max %11.4g  "
                    "spread %5.1f%%",
                    b.name.c_str(),
                    (b.metric + " (" + b.unit + ")").c_str(), b.stats.mean,
                    b.stats.min, b.stats.max, b.stats.rel_spread * 100.0);
      *log << line;
      if (b.model_pin_ratio > 0.0) {
        std::snprintf(line, sizeof(line), "  pin %.3f", b.model_pin_ratio);
        *log << line;
      }
      if (!b.perf_gate_active) *log << "  [informational]";
      *log << "\n";
    }
    report.benchmarks.push_back(std::move(b));
  }
  report.total_wall_s = total.seconds();
  return report;
}

void print_gate_report(const GateReport& report, std::ostream& out) {
  for (const GateFinding& f : report.findings) {
    char line[320];
    std::snprintf(line, sizeof(line),
                  "  %-24s %-14s base %11.4g  cur %11.4g  change %+6.1f%%  "
                  "allowed %5.1f%%  %s",
                  f.name.c_str(), gate_status_name(f.status), f.baseline_mean,
                  f.current_mean, f.rel_change * 100.0, f.allowed * 100.0,
                  f.note.c_str());
    out << line << "\n";
  }
  out << "gate: " << (report.pass() ? "PASS" : "FAIL") << " ("
      << report.regressions << " regressed, " << report.missing
      << " missing)\n";
}

namespace {

/// Self-check: the artifact on disk must parse, validate, carry exactly the
/// benchmarks that ran (no silent drops, no duplicates), and gate cleanly
/// against itself.  Returns an empty string on success.
std::string selfcheck_artifact(const std::string& path,
                               const SuiteReport& ran) {
  std::ifstream in(path);
  if (!in) return "cannot reopen artifact " + path;
  std::ostringstream buf;
  buf << in.rdbuf();
  SuiteReport parsed;
  try {
    parsed = parse_suite_json(buf.str());
  } catch (const Error& e) {
    return std::string("artifact does not parse: ") + e.what();
  }
  const std::string invalid = validate(parsed);
  if (!invalid.empty()) return "artifact invalid: " + invalid;
  if (parsed.benchmarks.size() != ran.benchmarks.size()) {
    return "artifact carries " + std::to_string(parsed.benchmarks.size()) +
           " benchmarks, expected " + std::to_string(ran.benchmarks.size());
  }
  for (const BenchmarkReport& want : ran.benchmarks) {
    int found = 0;
    for (const BenchmarkReport& got : parsed.benchmarks) {
      if (got.name == want.name) ++found;
    }
    if (found != 1) {
      return "benchmark \"" + want.name + "\" appears " +
             std::to_string(found) + " times in the artifact (want exactly 1)";
    }
  }
  const GateReport self = gate_against_baseline(parsed, parsed);
  if (!self.pass()) return "artifact does not gate cleanly against itself";
  return "";
}

}  // namespace

int suite_main(Registry& registry, int argc, const char* const* argv,
               std::ostream& out, std::ostream& err) {
  Args args;
  args.flag("smoke")
      .flag("selfcheck")
      .option("seeds", "3")
      .option("seed", "8061")
      .option("filter", "")
      .option("json", "BENCH_suite.ci.json")
      .option("baseline", "");
  if (!args.parse(argc, argv)) {
    err << "bench_suite: " << args.error() << "\n";
    return kExitUsage;
  }

  SuiteOptions options;
  options.smoke = args.has("smoke");
  options.filter = args.get("filter");
  try {
    options.repeats = std::stoi(args.get("seeds"));
    options.base_seed = std::stoull(args.get("seed"));
  } catch (const std::exception&) {
    err << "bench_suite: --seeds/--seed must be numeric\n";
    return kExitUsage;
  }
  if (options.repeats < 1) {
    err << "bench_suite: --seeds must be >= 1\n";
    return kExitUsage;
  }

  out << "=== bench_suite: " << registry.size() << " registered, "
      << options.repeats << " seeded repeats each"
      << (options.smoke ? " (smoke)" : "") << " ===\n";
  const SuiteReport report = run_suite(registry, options, &out);
  if (report.benchmarks.empty()) {
    err << "bench_suite: no benchmark matches filter \"" << options.filter
        << "\"\n";
    return kExitUsage;
  }

  const std::string json_path = args.get("json");
  {
    std::ofstream json(json_path);
    if (!json) {
      err << "bench_suite: cannot write " << json_path << "\n";
      return kExitUsage;
    }
    write_json(report, json);
  }
  out << "wrote " << json_path << "\n";

  if (args.has("selfcheck")) {
    const std::string problem = selfcheck_artifact(json_path, report);
    if (!problem.empty()) {
      err << "bench_suite: SELF-CHECK FAILED: " << problem << "\n";
      return kExitRegression;
    }
    out << "self-check: artifact parses, validates, and carries all "
        << report.benchmarks.size() << " benchmarks exactly once\n";
  }

  const std::string baseline_path = args.get("baseline");
  if (args.has("baseline")) {
    std::ifstream in(baseline_path);
    if (!in) {
      // First CI run: nothing to compare against yet.  The artifact just
      // written becomes the next run's baseline.
      out << "no baseline artifact at " << baseline_path
          << " — regression gate skipped (first run passes)\n";
      return kExitOk;
    }
    std::ostringstream buf;
    buf << in.rdbuf();
    SuiteReport baseline;
    try {
      baseline = parse_suite_json(buf.str());
    } catch (const Error& e) {
      err << "bench_suite: baseline " << baseline_path
          << " is malformed: " << e.what() << "\n";
      return kExitUsage;
    }
    const std::string invalid = validate(baseline);
    if (!invalid.empty()) {
      err << "bench_suite: baseline " << baseline_path
          << " is invalid: " << invalid << "\n";
      return kExitUsage;
    }
    out << "regression gate vs " << baseline_path << ":\n";
    const GateReport gate = gate_against_baseline(report, baseline);
    print_gate_report(gate, out);
    if (!gate.pass()) return kExitRegression;
  }
  return kExitOk;
}

}  // namespace candle::bench

// CI regression gate: compare the current suite artifact against a prior
// one and fail on regressions that fall outside the measured run-to-run
// variance envelope.  The envelope is what keeps the gate honest on noisy
// shared CI runners: a change only counts as a regression when it exceeds
// both the fixed floor and the dispersion the seeded repeats actually
// measured on either side of the comparison.
#pragma once

#include <string>
#include <vector>

#include "bench/schema.hpp"

namespace candle::bench {

struct GateOptions {
  /// Regressions below this relative floor always pass (measurement noise
  /// on a quiet host still wiggles a few percent run to run).
  double min_rel_margin = 0.05;
  /// The variance envelope: allowed = max(min_rel_margin,
  /// envelope_k * max(baseline.rel_spread, current.rel_spread)).  With zero
  /// measured variance on both sides the floor alone applies.
  double envelope_k = 2.0;
};

enum class GateStatus {
  Ok,             // within the envelope
  Improved,       // better by more than the envelope (reported, passes)
  Regressed,      // worse by more than the envelope -> FAIL
  New,            // in current but not baseline (or metric changed) -> pass
  Missing,        // in baseline but silently absent from current -> FAIL
  Informational,  // honesty flag off on either side: reported, never gates
};

const char* gate_status_name(GateStatus s);

struct GateFinding {
  std::string name;
  GateStatus status = GateStatus::Ok;
  double baseline_mean = 0.0;
  double current_mean = 0.0;
  /// Direction-normalized relative change: positive = worse.
  double rel_change = 0.0;
  /// Envelope the change was judged against.
  double allowed = 0.0;
  std::string note;
};

struct GateReport {
  std::vector<GateFinding> findings;
  int regressions = 0;
  int missing = 0;

  bool pass() const { return regressions == 0 && missing == 0; }
};

/// Compare `current` against `baseline` benchmark by benchmark (matched by
/// name).  Every baseline benchmark yields a finding; current-only
/// benchmarks are reported as New.
GateReport gate_against_baseline(const SuiteReport& current,
                                 const SuiteReport& baseline,
                                 const GateOptions& opts = {});

}  // namespace candle::bench

#include "bench/args.hpp"

#include "runtime/error.hpp"

namespace candle::bench {

Args& Args::declare(const std::string& name, Kind kind, std::string value,
                    std::string bare_value) {
  CANDLE_CHECK(!name.empty(), "flag name must be non-empty");
  CANDLE_CHECK(name.rfind("--", 0) != 0, "declare names without the -- prefix");
  Spec spec;
  spec.kind = kind;
  spec.value = std::move(value);
  spec.bare_value = std::move(bare_value);
  const bool inserted = specs_.emplace(name, std::move(spec)).second;
  CANDLE_CHECK(inserted, "flag declared twice: " + name);
  return *this;
}

Args& Args::flag(const std::string& name) {
  return declare(name, Kind::Flag, "", "");
}

Args& Args::option(const std::string& name, std::string default_value) {
  return declare(name, Kind::Option, std::move(default_value), "");
}

Args& Args::soft_option(const std::string& name, std::string bare_value) {
  std::string value = bare_value;
  return declare(name, Kind::SoftOption, std::move(value),
                 std::move(bare_value));
}

Args& Args::allow_unknown() {
  allow_unknown_ = true;
  return *this;
}

bool Args::fail(const std::string& message) {
  error_ = message;
  return false;
}

bool Args::parse(int argc, const char* const* argv) {
  error_.clear();
  unparsed_.clear();
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    if (arg.rfind("--", 0) != 0) {
      if (allow_unknown_) {
        unparsed_.push_back(arg);
        continue;
      }
      return fail("unexpected argument '" + arg + "'");
    }
    const std::size_t eq = arg.find('=');
    const std::string name = arg.substr(2, eq == std::string::npos
                                               ? std::string::npos
                                               : eq - 2);
    const auto it = specs_.find(name);
    if (it == specs_.end()) {
      if (allow_unknown_) {
        unparsed_.push_back(arg);
        continue;
      }
      return fail("unknown flag '--" + name + "'");
    }
    Spec& spec = it->second;
    if (spec.seen) return fail("flag '--" + name + "' given twice");
    const bool has_value = eq != std::string::npos;
    const std::string value = has_value ? arg.substr(eq + 1) : "";
    switch (spec.kind) {
      case Kind::Flag:
        if (has_value) {
          return fail("flag '--" + name + "' takes no value");
        }
        break;
      case Kind::Option:
        if (!has_value || value.empty()) {
          return fail("missing value for '--" + name + "' (use --" + name +
                      "=VALUE)");
        }
        spec.value = value;
        break;
      case Kind::SoftOption:
        if (has_value && value.empty()) {
          return fail("missing value for '--" + name + "' (use --" + name +
                      "=VALUE or bare --" + name + ")");
        }
        spec.value = has_value ? value : spec.bare_value;
        break;
    }
    spec.seen = true;
  }
  return true;
}

bool Args::has(const std::string& name) const {
  const auto it = specs_.find(name);
  CANDLE_CHECK(it != specs_.end(), "undeclared flag queried: " + name);
  return it->second.seen;
}

const std::string& Args::get(const std::string& name) const {
  const auto it = specs_.find(name);
  CANDLE_CHECK(it != specs_.end(), "undeclared flag queried: " + name);
  return it->second.value;
}

}  // namespace candle::bench

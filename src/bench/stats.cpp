#include "bench/stats.hpp"

#include <algorithm>
#include <cmath>

namespace candle::bench {

RepeatStats summarize(const std::vector<double>& values) {
  RepeatStats s;
  if (values.empty()) return s;
  s.n = static_cast<int>(values.size());
  s.min = *std::min_element(values.begin(), values.end());
  s.max = *std::max_element(values.begin(), values.end());
  double sum = 0.0;
  for (const double v : values) sum += v;
  s.mean = sum / static_cast<double>(s.n);
  if (s.n > 1) {
    double ss = 0.0;
    for (const double v : values) ss += (v - s.mean) * (v - s.mean);
    s.stddev = std::sqrt(ss / static_cast<double>(s.n - 1));
  }
  if (s.mean != 0.0) s.rel_spread = (s.max - s.min) / std::abs(s.mean);
  return s;
}

}  // namespace candle::bench

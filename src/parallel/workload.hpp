// Bridge from an executable nn::Model to the hpcsim analytic workload
// description, so measured models drive the scaling/energy projections.
#pragma once

#include "hpcsim/perfmodel.hpp"
#include "nn/model.hpp"

namespace candle::parallel {

/// Extract the analytic workload of `model`: FLOPs and parameters from the
/// layer metadata, activation footprint by probing a single-sample forward
/// pass, input record size from the model's input shape.
hpcsim::TrainingWorkload workload_from_model(Model& model,
                                             const std::string& name);

}  // namespace candle::parallel

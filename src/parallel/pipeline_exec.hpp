// Executable pipeline parallelism: each stage of a StagePlan runs on its
// own thread; microbatches flow through bounded FIFO queues between
// stages.  Unlike estimate_pipeline (which prices a GPipe schedule on the
// machine model), this actually executes the schedule, so tests can verify
// that pipelined outputs are bit-identical to the serial forward and that
// all stages genuinely overlap on distinct microbatches.
#pragma once

#include "parallel/model_parallel.hpp"

namespace candle::parallel {

struct PipelineRunStats {
  Index microbatches = 0;
  Index stages = 0;
  double seconds = 0.0;
};

/// Run a pipelined forward pass of `x` (batch dim first) through the model
/// under `plan`, with `microbatch` rows per microbatch.  Inference mode.
/// Returns the assembled output, identical to model.forward(x).
Tensor pipeline_forward(Model& model, const StagePlan& plan, const Tensor& x,
                        Index microbatch, PipelineRunStats* stats = nullptr);

}  // namespace candle::parallel

#include "parallel/compression.hpp"

#include <algorithm>
#include <cmath>
#include <numeric>

namespace candle::parallel {

void SparseGradient::add_to(std::span<float> dense) const {
  CANDLE_CHECK(static_cast<Index>(dense.size()) == dense_size,
               "sparse gradient size mismatch");
  for (std::size_t i = 0; i < indices.size(); ++i) {
    dense[static_cast<std::size_t>(indices[i])] += values[i];
  }
}

SparseGradient top_k_sparsify(std::span<const float> grad, double fraction) {
  CANDLE_CHECK(fraction > 0.0 && fraction <= 1.0,
               "sparsification fraction must be in (0,1]");
  CANDLE_CHECK(!grad.empty(), "empty gradient");
  const auto n = static_cast<Index>(grad.size());
  CANDLE_CHECK(n < kMaxSparseDenseSize,
               "gradient too large for the uint32 sparse index wire format");
  const auto k = std::max<Index>(
      1, static_cast<Index>(std::llround(fraction * static_cast<double>(n))));

  std::vector<Index> order(grad.size());
  std::iota(order.begin(), order.end(), 0);
  std::nth_element(order.begin(), order.begin() + (k - 1), order.end(),
                   [&](Index a, Index b) {
                     return std::abs(grad[static_cast<std::size_t>(a)]) >
                            std::abs(grad[static_cast<std::size_t>(b)]);
                   });
  order.resize(static_cast<std::size_t>(k));
  std::sort(order.begin(), order.end());  // deterministic output order

  SparseGradient s;
  s.dense_size = n;
  s.indices = std::move(order);
  s.values.reserve(static_cast<std::size_t>(k));
  for (Index i : s.indices) {
    s.values.push_back(grad[static_cast<std::size_t>(i)]);
  }
  return s;
}

ErrorFeedbackCompressor::ErrorFeedbackCompressor(Index size, double fraction)
    : fraction_(fraction) {
  CANDLE_CHECK(size >= 1, "compressor needs a positive size");
  CANDLE_CHECK(size < kMaxSparseDenseSize,
               "gradient too large for the uint32 sparse index wire format");
  CANDLE_CHECK(fraction > 0.0 && fraction <= 1.0,
               "sparsification fraction must be in (0,1]");
  residual_.assign(static_cast<std::size_t>(size), 0.0f);
}

SparseGradient ErrorFeedbackCompressor::compress(std::span<const float> grad) {
  CANDLE_CHECK(grad.size() == residual_.size(),
               "gradient size changed under the compressor");
  // Accumulate: corrected = grad + residual.
  std::vector<float> corrected(grad.size());
  for (std::size_t i = 0; i < grad.size(); ++i) {
    corrected[i] = grad[i] + residual_[i];
  }
  SparseGradient s = top_k_sparsify(corrected, fraction_);
  // New residual = corrected - sent.
  residual_ = std::move(corrected);
  for (std::size_t i = 0; i < s.indices.size(); ++i) {
    residual_[static_cast<std::size_t>(s.indices[i])] = 0.0f;
  }
  return s;
}

double ErrorFeedbackCompressor::residual_norm() const {
  double acc = 0.0;
  for (float v : residual_) acc += static_cast<double>(v) * v;
  return std::sqrt(acc);
}

std::vector<float> quantize_gradient_int8(std::span<const float> grad,
                                          double* wire_bytes) {
  const QuantizedTensor q = quantize_int8(grad);
  std::vector<float> out(grad.size());
  dequantize_int8(q, out);
  if (wire_bytes != nullptr) {
    *wire_bytes = static_cast<double>(grad.size()) + 4.0;  // 1B/entry + scale
  }
  return out;
}

}  // namespace candle::parallel

// Asynchronous parameter-server training (Hogwild-with-a-server style, the
// other half of the 2016/2017 distributed-DL design space next to
// synchronous all-reduce).  Workers pull a possibly-stale weight snapshot,
// compute a gradient on their own shard, and push it to the server, which
// applies the optimizer step under a lock.  No barriers: throughput does
// not degrade with stragglers, at the price of gradient staleness.
//
// This module is executable (real threads, real gradients); the interest
// for the paper's claims is the sync-vs-async convergence/throughput
// trade-off exercised by bench_e3 and the tests.
#pragma once

#include "nn/dataset.hpp"
#include "nn/model.hpp"
#include "parallel/data_parallel.hpp"

namespace candle::parallel {

struct ParamServerOptions {
  Index workers = 4;
  Index epochs = 5;       // passes over the full dataset (across workers)
  Index batch_size = 32;  // per worker step
  std::uint64_t seed = 0;
};

struct ParamServerResult {
  Index steps = 0;                // total pushed updates
  std::vector<float> epoch_loss;  // mean worker-reported loss per epoch
  double measured_seconds = 0.0;
  double mean_staleness = 0.0;  // server-steps between a worker's pull & push
};

/// Run asynchronous parameter-server training.  The trained weights land in
/// `out_model` if provided.  `factory` must produce identically-built
/// models (the server and every worker replica share the architecture).
ParamServerResult train_param_server(const ModelFactory& factory,
                                     const OptimizerFactory& opt_factory,
                                     const Dataset& train, const Loss& loss,
                                     const ParamServerOptions& options,
                                     Model* out_model = nullptr);

}  // namespace candle::parallel

// Asynchronous parameter-server training (Hogwild-with-a-server style, the
// other half of the 2016/2017 distributed-DL design space next to
// synchronous all-reduce).  Workers pull a possibly-stale weight snapshot,
// compute a gradient on their own shard, and push it to the server, which
// applies the optimizer step under a lock.  No barriers: throughput does
// not degrade with stragglers, at the price of gradient staleness.
//
// This module is executable (real threads, real gradients); the interest
// for the paper's claims is the sync-vs-async convergence/throughput
// trade-off exercised by bench_e3 and the tests.
#pragma once

#include "nn/dataset.hpp"
#include "nn/model.hpp"
#include "parallel/data_parallel.hpp"

namespace candle::parallel {

/// Staleness bookkeeping shared by the asynchronous parameter server and the
/// bounded-staleness mitigation mode of the resilient trainer: one record per
/// applied update, where `staleness` is the number of global steps committed
/// between the gradient's weight snapshot (pull / stall start) and its
/// application (push / rejoin).  Not thread-safe; callers serialize access.
class StalenessMeter {
 public:
  void record(Index staleness) {
    sum_ += static_cast<double>(staleness);
    if (staleness > max_) max_ = staleness;
    ++n_;
  }

  Index updates() const { return n_; }
  Index max_staleness() const { return max_; }

  /// Mean staleness over the recorded updates; 0.0 when nothing was
  /// recorded (the zero-step division guard, pinned by test_straggler).
  double mean() const {
    return n_ > 0 ? sum_ / static_cast<double>(n_) : 0.0;
  }

 private:
  Index n_ = 0;
  Index max_ = 0;
  double sum_ = 0.0;
};

struct ParamServerOptions {
  Index workers = 4;
  Index epochs = 5;       // passes over the full dataset (across workers)
  Index batch_size = 32;  // per worker step
  std::uint64_t seed = 0;
};

struct ParamServerResult {
  Index steps = 0;                // total pushed updates
  std::vector<float> epoch_loss;  // mean worker-reported loss per epoch
  double measured_seconds = 0.0;
  double mean_staleness = 0.0;  // server-steps between a worker's pull & push
  Index max_staleness = 0;      // worst pull-to-push lag observed
};

/// Run asynchronous parameter-server training.  The trained weights land in
/// `out_model` if provided.  `factory` must produce identically-built
/// models (the server and every worker replica share the architecture).
ParamServerResult train_param_server(const ModelFactory& factory,
                                     const OptimizerFactory& opt_factory,
                                     const Dataset& train, const Loss& loss,
                                     const ParamServerOptions& options,
                                     Model* out_model = nullptr);

}  // namespace candle::parallel

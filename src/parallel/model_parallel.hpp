// Model parallelism: partition a network's layers into pipeline stages.
//
// Numerics: a staged forward pass is layer-by-layer identical to the
// monolithic forward (verified by tests), so correctness is exact by
// construction.  What model parallelism changes is *where* layers run and
// what crosses the wire; this module extracts the stage plan (balanced by
// FLOPs), the boundary activation traffic, and a GPipe-style pipeline
// timing estimate with the standard (m + k - 1)/m bubble term — the
// quantities claim C6 is about.
#pragma once

#include <vector>

#include "hpcsim/fabric.hpp"
#include "hpcsim/machine.hpp"
#include "nn/model.hpp"

namespace candle::parallel {

/// Assignment of each layer to a pipeline stage (contiguous, ascending).
struct StagePlan {
  Index stages = 1;
  std::vector<Index> stage_of_layer;  // size = model.num_layers()

  /// Layers [first, last) of stage s.
  std::pair<Index, Index> stage_range(Index s) const;
};

/// Greedy FLOPs-balanced contiguous partition of the model's layers into
/// `stages` stages.  Stateless layers (activations, dropout) ride along
/// with their neighbours.
StagePlan balance_stages(Model& model, Index stages);

/// Forward a batch stage by stage, recording the boundary activation bytes
/// leaving each stage.  Returns the final output (identical to
/// model.forward) and fills `boundary_bytes` with stages-1 entries.
Tensor forward_staged(Model& model, const Tensor& x, const StagePlan& plan,
                      std::vector<double>* boundary_bytes = nullptr);

/// Pipeline timing estimate for one training step.
struct PipelineEstimate {
  std::vector<double> stage_seconds;  // math time per stage (fwd+bwd)
  double bubble_fraction = 0.0;       // (k-1)/(m+k-1)
  double comm_seconds = 0.0;          // boundary activation exchange
  double step_seconds = 0.0;          // pipelined total
  double serial_seconds = 0.0;        // same work on one node
  double speedup = 1.0;               // serial / pipelined
};

/// Estimate a GPipe-style schedule: `microbatches` microbatches flow
/// through `plan.stages` stages on `node` with boundaries crossing
/// `fabric`.  Work per stage is priced by the machine model from layer
/// FLOPs; batch = microbatches * microbatch_size.
PipelineEstimate estimate_pipeline(Model& model, const StagePlan& plan,
                                   Index microbatches, Index microbatch_size,
                                   const hpcsim::NodeSpec& node,
                                   const hpcsim::Fabric& fabric,
                                   Precision prec = Precision::FP32);

}  // namespace candle::parallel

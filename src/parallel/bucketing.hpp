// DDP-style gradient bucketing for comm/compute overlap.
//
// The bucket assignment is STATIC and DETERMINISTIC: it is computed once at
// startup from the layer gradient shapes, never from the order in which
// gradients happen to arrive at run time.  Every replica therefore launches
// the same buckets in the same order, which is what keeps overlapped runs
// bit-reproducible (the determinism contract documented in DESIGN.md
// "Overlapped collectives").
//
// Buckets are packed walking the layers in REVERSE order — the order in
// which backward produces gradients — so bucket 0 covers the deepest layers
// and is ready first.  Each bucket is a contiguous run of layers, hence a
// contiguous span of the flat gradient vector (which stays in forward-layer
// order, matching Model::copy_grads_to), so a bucket's all-reduce operates
// directly on a window of the fused gradient buffer with no gather/scatter.
#pragma once

#include <cstdint>
#include <vector>

#include "runtime/error.hpp"

namespace candle::parallel {

using Index = std::int64_t;

/// One bucket: a contiguous run of layers covering a contiguous window of
/// the flat gradient vector.
struct GradBucket {
  Index first_layer = 0;  // lowest layer index in the bucket
  Index last_layer = 0;   // highest layer index in the bucket (inclusive)
  Index offset = 0;       // window start in the flat gradient (elements)
  Index numel = 0;        // window length (elements, > 0)
};

/// Static bucket assignment for one model.  `buckets` is in LAUNCH order:
/// bucket 0 covers the deepest layers, whose gradients backward produces
/// first.
struct BucketPlan {
  std::vector<GradBucket> buckets;
  std::vector<Index> layer_offset;     // flat offset of each layer's grads
  std::vector<Index> layer_numel;      // gradient elements per layer
  std::vector<Index> bucket_of_layer;  // -1 for parameter-less layers
  Index total_numel = 0;

  Index num_buckets() const { return static_cast<Index>(buckets.size()); }
};

/// Pack layers (given their flat gradient element counts, forward order)
/// into size-targeted buckets: walking from the last layer backwards, a
/// bucket closes once it holds at least `bucket_bytes` of fp32 gradient, so
/// every bucket except possibly the shallowest meets the size target.
/// Deterministic in its inputs; requires at least one parameter.
BucketPlan plan_buckets(const std::vector<Index>& layer_grad_numel,
                        Index bucket_bytes);

/// Tracks which buckets are complete as backward reports layer gradients.
/// Completion is defined purely by the static plan: a bucket is complete
/// when every parameter-carrying layer assigned to it has reported, no
/// matter the report order.
class BucketAssembler {
 public:
  explicit BucketAssembler(const BucketPlan& plan);

  /// Mark `layer`'s gradient as produced.  Returns the index of the bucket
  /// this completes, or -1 (layer parameter-less, or bucket still waiting
  /// on other layers).  A layer must not be marked twice per round.
  Index mark_ready(Index layer);

  bool all_complete() const { return complete_ == plan_->num_buckets(); }

  /// Start the next round (all buckets pending again).
  void reset();

 private:
  const BucketPlan* plan_;
  std::vector<Index> waiting_;  // per bucket: param layers not yet reported
  Index complete_ = 0;
};

}  // namespace candle::parallel

#include "parallel/tensor_parallel.hpp"

#include <thread>

#include "core/kernels.hpp"

namespace candle::parallel {

ShardedDense::ShardedDense(const Dense& source, Index shards) {
  const Tensor& w = source.weights();
  const Tensor& b = source.bias();
  CANDLE_CHECK(w.ndim() == 2, "source Dense must be built");
  in_ = w.dim(0);
  out_ = w.dim(1);
  CANDLE_CHECK(shards >= 1 && shards <= out_,
               "shard count must be in [1, out_features]");
  slices_.resize(static_cast<std::size_t>(shards));
  for (Index s = 0; s < shards; ++s) {
    Slice& slice = slices_[static_cast<std::size_t>(s)];
    slice.out_begin = s * out_ / shards;
    slice.out_end = (s + 1) * out_ / shards;
    const Index width = slice.out_end - slice.out_begin;
    CANDLE_CHECK(width >= 1, "empty shard slice");
    slice.w = Tensor({in_, width});
    slice.b = Tensor({width});
    slice.dw = Tensor({in_, width});
    slice.db = Tensor({width});
    for (Index i = 0; i < in_; ++i) {
      for (Index j = 0; j < width; ++j) {
        slice.w.at(i, j) = w.at(i, slice.out_begin + j);
      }
    }
    for (Index j = 0; j < width; ++j) slice.b[j] = b[slice.out_begin + j];
  }
}

Tensor ShardedDense::forward(const Tensor& x) {
  CANDLE_CHECK(x.ndim() == 2 && x.dim(1) == in_,
               "ShardedDense forward shape mismatch");
  x_cache_ = x;
  const Index batch = x.dim(0);
  Tensor y({batch, out_});
  for (const Slice& slice : slices_) {
    const Index width = slice.out_end - slice.out_begin;
    Tensor ys({batch, width});
    matmul_into(ys, x, Op::None, slice.w, Op::None);
    for (Index i = 0; i < batch; ++i) {
      for (Index j = 0; j < width; ++j) {
        y.at(i, slice.out_begin + j) = ys.at(i, j) + slice.b[j];
      }
    }
  }
  return y;
}

Tensor ShardedDense::backward(const Tensor& dy) {
  CANDLE_CHECK(dy.ndim() == 2 && dy.dim(1) == out_,
               "ShardedDense backward shape mismatch");
  const Index batch = dy.dim(0);
  CANDLE_CHECK(x_cache_.dim(0) == batch, "backward before forward");
  Tensor dx({batch, in_});  // zero: shards accumulate into it
  for (Slice& slice : slices_) {
    const Index width = slice.out_end - slice.out_begin;
    // Slice of dy owned by this shard.
    Tensor dys({batch, width});
    for (Index i = 0; i < batch; ++i) {
      for (Index j = 0; j < width; ++j) {
        dys.at(i, j) = dy.at(i, slice.out_begin + j);
      }
    }
    // dW_s = x^T dy_s ; db_s = column sums ; dx += dy_s W_s^T.
    matmul_into(slice.dw, x_cache_, Op::Transpose, dys, Op::None);
    slice.db.fill(0.0f);
    for (Index i = 0; i < batch; ++i) {
      for (Index j = 0; j < width; ++j) slice.db[j] += dys.at(i, j);
    }
    matmul_into(dx, dys, Op::None, slice.w, Op::Transpose, 1.0f, 1.0f);
  }
  return dx;
}

double ShardedDense::forward_wire_bytes(Index batch) const {
  // All-gather: each shard contributes its activation slice once.
  const double total_activation = 4.0 * static_cast<double>(batch) * out_;
  const double own_share = total_activation / static_cast<double>(shards());
  return total_activation - own_share;  // bytes received per shard
}

double ShardedDense::backward_wire_bytes(Index batch) const {
  // Sum-reduce of full dx partials across shards (ring: 2(p-1)/p * n).
  const double n = 4.0 * static_cast<double>(batch) * in_;
  const double p = static_cast<double>(shards());
  return p > 1 ? 2.0 * (p - 1.0) / p * n : 0.0;
}

const Tensor& ShardedDense::weight_grad(Index shard) const {
  CANDLE_CHECK(shard >= 0 && shard < shards(), "shard index out of range");
  return slices_[static_cast<std::size_t>(shard)].dw;
}

const Tensor& ShardedDense::bias_grad(Index shard) const {
  CANDLE_CHECK(shard >= 0 && shard < shards(), "shard index out of range");
  return slices_[static_cast<std::size_t>(shard)].db;
}

Tensor sharded_dense_forward_threaded(ShardedDense& layer, const Tensor& x) {
  const Index p = layer.shards();
  const Index batch = x.dim(0);
  const Index out = layer.out_features();
  // Each shard thread computes its slice into a shared row-major buffer
  // organized as per-shard slices, then an all-gather-style barrier makes
  // the assembled activation visible to everyone.
  Tensor y({batch, out});
  ShmCommunicator comm(p);
  std::vector<std::thread> threads;
  // Reuse the single-threaded slice math by re-running forward() once on
  // thread 0 and slicing: the point of this harness is the schedule +
  // barrier discipline, exercised by the communicator.
  Tensor full = layer.forward(x);
  for (Index r = 0; r < p; ++r) {
    threads.emplace_back([&, r] {
      const Index begin = r * out / p;
      const Index end = (r + 1) * out / p;
      for (Index i = 0; i < batch; ++i) {
        for (Index j = begin; j < end; ++j) y.at(i, j) = full.at(i, j);
      }
      comm.barrier();  // all slices written
    });
  }
  for (auto& t : threads) t.join();
  return y;
}

}  // namespace candle::parallel

#include "parallel/bucketing.hpp"

#include <algorithm>

namespace candle::parallel {

BucketPlan plan_buckets(const std::vector<Index>& layer_grad_numel,
                        Index bucket_bytes) {
  CANDLE_CHECK(bucket_bytes >= 1, "bucket size must be positive");
  const Index layers = static_cast<Index>(layer_grad_numel.size());
  CANDLE_CHECK(layers >= 1, "bucket plan needs at least one layer");

  BucketPlan plan;
  plan.layer_numel = layer_grad_numel;
  plan.layer_offset.resize(layer_grad_numel.size());
  plan.bucket_of_layer.assign(layer_grad_numel.size(), -1);
  for (Index l = 0; l < layers; ++l) {
    const auto i = static_cast<std::size_t>(l);
    CANDLE_CHECK(layer_grad_numel[i] >= 0, "negative layer gradient size");
    plan.layer_offset[i] = plan.total_numel;
    plan.total_numel += layer_grad_numel[i];
  }
  CANDLE_CHECK(plan.total_numel >= 1, "model has no parameters to bucket");

  // Walk layers in reverse (gradient-production) order, closing a bucket as
  // soon as it holds the byte target.  The element target rounds up so a
  // bucket never closes below bucket_bytes.
  const Index target_numel =
      (bucket_bytes + static_cast<Index>(sizeof(float)) - 1) /
      static_cast<Index>(sizeof(float));
  GradBucket current;
  bool open = false;
  for (Index l = layers - 1; l >= 0; --l) {
    const auto i = static_cast<std::size_t>(l);
    if (layer_grad_numel[i] == 0) continue;  // joins the enclosing bucket
    if (!open) {
      current = GradBucket{};
      current.last_layer = l;
      open = true;
    }
    current.first_layer = l;
    current.numel += layer_grad_numel[i];
    plan.bucket_of_layer[i] = static_cast<Index>(plan.buckets.size());
    if (current.numel >= target_numel) {
      current.offset = plan.layer_offset[static_cast<std::size_t>(l)];
      plan.buckets.push_back(current);
      open = false;
    }
  }
  if (open) {
    current.offset =
        plan.layer_offset[static_cast<std::size_t>(current.first_layer)];
    plan.buckets.push_back(current);
  }
  return plan;
}

BucketAssembler::BucketAssembler(const BucketPlan& plan) : plan_(&plan) {
  waiting_.resize(static_cast<std::size_t>(plan.num_buckets()));
  reset();
}

void BucketAssembler::reset() {
  std::fill(waiting_.begin(), waiting_.end(), 0);
  for (std::size_t l = 0; l < plan_->bucket_of_layer.size(); ++l) {
    const Index b = plan_->bucket_of_layer[l];
    if (b >= 0) ++waiting_[static_cast<std::size_t>(b)];
  }
  complete_ = 0;
}

Index BucketAssembler::mark_ready(Index layer) {
  CANDLE_CHECK(
      layer >= 0 &&
          layer < static_cast<Index>(plan_->bucket_of_layer.size()),
      "layer index out of range");
  const Index b = plan_->bucket_of_layer[static_cast<std::size_t>(layer)];
  if (b < 0) return -1;
  auto& waiting = waiting_[static_cast<std::size_t>(b)];
  CANDLE_CHECK(waiting > 0, "layer gradient marked ready twice");
  if (--waiting == 0) {
    ++complete_;
    return b;
  }
  return -1;
}

}  // namespace candle::parallel

// Executable collectives among "virtual nodes" (threads).  Gradient *values*
// move for real — the ring all-reduce below is the actual chunked
// reduce-scatter + all-gather algorithm, not a shortcut — so numerical
// results of distributed training are genuine.  Wall-clock at scale comes
// from the hpcsim fabric model instead (see DESIGN.md).
#pragma once

#include <barrier>
#include <cstdint>
#include <memory>
#include <span>
#include <vector>

#include "runtime/error.hpp"

namespace candle::parallel {

using Index = std::int64_t;

/// Communicator for `ranks` participants.  Every collective must be entered
/// by all ranks (from distinct threads, or sequentially rank-by-rank only
/// for the registration phase).  Buffers are registered per operation.
class ShmCommunicator {
 public:
  explicit ShmCommunicator(Index ranks);

  Index ranks() const { return ranks_; }

  /// Block until all ranks arrive.
  void barrier();

  /// Sum-all-reduce using the bandwidth-optimal ring algorithm: p-1
  /// reduce-scatter steps followed by p-1 all-gather steps over p chunks.
  /// `data` spans must all have the same length across ranks.
  void allreduce_ring(Index rank, std::span<float> data);

  /// Sum-all-reduce via a flat gather at rank 0 + broadcast.  Same result,
  /// different schedule; used to cross-check the ring implementation.
  void allreduce_flat(Index rank, std::span<float> data);

  /// Broadcast rank 0's buffer to every rank.
  void broadcast(Index rank, std::span<float> data);

 private:
  void register_buffer(Index rank, std::span<float> data);

  Index ranks_;
  std::barrier<> barrier_;
  std::vector<std::span<float>> buffers_;
};

}  // namespace candle::parallel

// Executable collectives among "virtual nodes" (threads).  Gradient *values*
// move for real — the ring all-reduce below is the actual chunked
// reduce-scatter + all-gather algorithm, not a shortcut — so numerical
// results of distributed training are genuine.  Wall-clock at scale comes
// from the hpcsim fabric model instead (see DESIGN.md).
//
// Failure awareness: collectives never hang on a dead rank.  A crashing rank
// announces death with mark_failed(), or is suspected when the internal
// barrier times out waiting for it; either way every surviving rank exits the
// collective with a typed runtime::RankFailure instead of blocking forever,
// and shrink() rebuilds a dense working communicator over the survivors
// (ULFM-style shrink semantics, scaled down to threads).
#pragma once

#include <chrono>
#include <condition_variable>
#include <cstdint>
#include <memory>
#include <mutex>
#include <span>
#include <vector>

#include "runtime/error.hpp"
#include "runtime/fault.hpp"

namespace candle::parallel {

using Index = std::int64_t;
using runtime::RankFailure;

/// Communicator for `ranks` participants.  Every collective must be entered
/// by all live ranks (from distinct threads, or sequentially rank-by-rank
/// only for the registration phase).  Buffers are registered per operation.
///
/// Failure contract: once any rank is marked failed (explicitly or by
/// timeout suspicion), every collective on this communicator — including
/// ones already in flight — throws RankFailure on all surviving ranks.  The
/// communicator is then permanently poisoned; recover by calling shrink()
/// and continuing on the returned communicator, or by constructing a fresh
/// full-size one (restart semantics).
class ShmCommunicator {
 public:
  explicit ShmCommunicator(Index ranks);

  Index ranks() const { return ranks_; }

  /// Dead-rank suspicion window: a barrier that waits longer than this for a
  /// missing participant declares it failed.  Generous by default so healthy
  /// but heavily oversubscribed runs (sanitizers, loaded CI) are never
  /// falsely accused; fault-injection tests dial it down.
  void set_timeout(std::chrono::milliseconds timeout);
  std::chrono::milliseconds timeout() const;

  /// Block until all live ranks arrive (anonymous arrival: timeouts cannot
  /// attribute blame, so suspicion reports an empty rank list).
  void barrier();

  /// Block until all live ranks arrive, identifying the caller so a timeout
  /// can name the ranks that never showed up.
  void barrier(Index rank);

  /// Announce that `rank` is dead (cooperative crash notification: the dying
  /// replica's thread calls this before exiting, like an MPI error handler
  /// broadcasting failure).  Wakes every rank blocked in a collective.
  void mark_failed(Index rank);

  bool has_failures() const;
  std::vector<Index> failed_ranks() const;
  std::vector<Index> alive_ranks() const;

  /// Sum-all-reduce using the bandwidth-optimal ring algorithm: p-1
  /// reduce-scatter steps followed by p-1 all-gather steps over p chunks.
  /// `data` spans must all have the same length across ranks (validated
  /// before any reduction runs; every rank throws together on a mismatch).
  void allreduce_ring(Index rank, std::span<float> data);

  /// Sum-all-reduce via a flat gather at rank 0 + broadcast.  Same result,
  /// different schedule; used to cross-check the ring implementation.
  void allreduce_flat(Index rank, std::span<float> data);

  /// Partial (quorum) sum-all-reduce for straggler mitigation: every live
  /// rank enters (so nobody blocks on a mitigated straggler), but only the
  /// ranks entering with `contributing == true` are summed.  The reduced
  /// vector lands in every rank's buffer — non-contributors receive the
  /// committed gradient too, which is what keeps backup-worker and
  /// bounded-staleness replicas bit-synchronized with the quorum.
  ///
  /// Determinism contract: contributions are accumulated in ascending rank
  /// order by the lowest live rank, so for a fixed participant set the
  /// result is bit-reproducible regardless of thread scheduling.  The
  /// participant set itself must be decided deterministically by the caller
  /// (e.g. from a seeded fault schedule), not by arrival order.
  ///
  /// Returns the number of contributing ranks.  At least one rank must
  /// contribute; an empty quorum throws on every rank together.
  Index allreduce_quorum(Index rank, std::span<float> data, bool contributing);

  /// Broadcast rank 0's buffer to every rank.
  void broadcast(Index rank, std::span<float> data);

  /// A communicator rebuilt over the surviving ranks, plus the old rank each
  /// new rank had (old_rank[new] = old, ascending).
  struct Shrunk {
    std::shared_ptr<ShmCommunicator> comm;
    std::vector<Index> old_rank;
  };

  /// Rebuild a dense communicator over the surviving ranks.  Call after all
  /// participant threads have observed the RankFailure and unwound.
  Shrunk shrink() const;

 private:
  /// Arrive at the internal barrier as `rank` (-1 = anonymous).  Throws
  /// RankFailure on announced failures and on timeout suspicion.
  void arrive(Index rank);
  [[noreturn]] void throw_failed_locked() const;
  void register_buffer(Index rank, std::span<float> data);

  Index ranks_;
  std::chrono::milliseconds timeout_{30000};

  mutable std::mutex mu_;
  std::condition_variable cv_;
  std::vector<char> alive_;         // by rank
  Index alive_count_;
  std::vector<Index> failed_;       // announced or suspected, in order
  bool poisoned_ = false;           // any failure (even unattributed) seen
  std::uint64_t generation_ = 0;    // completed barrier rounds
  Index arrived_ = 0;               // arrivals in the current round
  std::vector<char> arrived_mask_;  // identified arrivals this round
  bool anonymous_arrival_ = false;  // this round saw a rank-less arrival

  std::vector<std::span<float>> buffers_;
  std::vector<char> contrib_mask_;  // quorum membership of the current op
};

}  // namespace candle::parallel

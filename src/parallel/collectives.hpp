// Executable collectives among "virtual nodes" (threads).  Gradient *values*
// move for real — the ring all-reduce below is the actual chunked
// reduce-scatter + all-gather algorithm, not a shortcut — so numerical
// results of distributed training are genuine.  Wall-clock at scale comes
// from the hpcsim fabric model instead (see DESIGN.md).
//
// Failure awareness: collectives never hang on a dead rank.  A crashing rank
// announces death with mark_failed(), or is suspected when the internal
// barrier times out waiting for it; either way every surviving rank exits the
// collective with a typed runtime::RankFailure instead of blocking forever,
// and shrink() rebuilds a dense working communicator over the survivors
// (ULFM-style shrink semantics, scaled down to threads).
#pragma once

#include <chrono>
#include <condition_variable>
#include <cstdint>
#include <deque>
#include <memory>
#include <mutex>
#include <span>
#include <thread>
#include <vector>

#include "runtime/error.hpp"
#include "runtime/fault.hpp"

namespace candle::parallel {

using Index = std::int64_t;
using runtime::RankFailure;

/// Handle to one in-flight nonblocking collective started with
/// ShmCommunicator::allreduce_ring_start.  Copyable (shared state); the
/// default-constructed handle is invalid.
class PendingCollective {
 public:
  PendingCollective() = default;

  bool valid() const { return state_ != nullptr; }

  /// Block until the operation completes, then rethrow its failure if it
  /// had one (RankFailure when a rank died while the op was in flight).
  /// Idempotent: waiting again on a completed op returns (or rethrows)
  /// immediately.  Never hangs: dead ranks surface via the communicator's
  /// timeout suspicion exactly as in the blocking collectives.
  void wait();

  /// Completed (successfully or not) without blocking?
  bool done() const;

  /// Seconds the comm engine spent executing this op, including time spent
  /// waiting for peer ranks inside the collective (0 until done).  This is
  /// the measured "wire time" of the bucket in the virtual-node runtime.
  double busy_seconds() const;

 private:
  friend class ShmCommunicator;
  struct State;
  std::shared_ptr<State> state_;
};

/// Communicator for `ranks` participants.  Every collective must be entered
/// by all live ranks (from distinct threads, or sequentially rank-by-rank
/// only for the registration phase).  Buffers are registered per operation.
///
/// Failure contract: once any rank is marked failed (explicitly or by
/// timeout suspicion), every collective on this communicator — including
/// ones already in flight — throws RankFailure on all surviving ranks.  The
/// communicator is then permanently poisoned; recover by calling shrink()
/// and continuing on the returned communicator, or by constructing a fresh
/// full-size one (restart semantics).
class ShmCommunicator {
 public:
  explicit ShmCommunicator(Index ranks);

  /// Drains and joins the per-rank comm engine threads (if any nonblocking
  /// operation was ever started).  Operations still queued at destruction
  /// are completed or failed first — callers should wait() their handles
  /// before dropping the communicator.
  ~ShmCommunicator();

  ShmCommunicator(const ShmCommunicator&) = delete;
  ShmCommunicator& operator=(const ShmCommunicator&) = delete;

  Index ranks() const { return ranks_; }

  /// Dead-rank suspicion window: a barrier that waits longer than this for a
  /// missing participant declares it failed.  Generous by default so healthy
  /// but heavily oversubscribed runs (sanitizers, loaded CI) are never
  /// falsely accused; fault-injection tests dial it down.
  void set_timeout(std::chrono::milliseconds timeout);
  std::chrono::milliseconds timeout() const;

  /// Block until all live ranks arrive (anonymous arrival: timeouts cannot
  /// attribute blame, so suspicion reports an empty rank list).
  void barrier();

  /// Block until all live ranks arrive, identifying the caller so a timeout
  /// can name the ranks that never showed up.
  void barrier(Index rank);

  /// Announce that `rank` is dead (cooperative crash notification: the dying
  /// replica's thread calls this before exiting, like an MPI error handler
  /// broadcasting failure).  Wakes every rank blocked in a collective.
  void mark_failed(Index rank);

  bool has_failures() const;
  std::vector<Index> failed_ranks() const;
  std::vector<Index> alive_ranks() const;

  /// Sum-all-reduce using the bandwidth-optimal ring algorithm: p-1
  /// reduce-scatter steps followed by p-1 all-gather steps over p chunks.
  /// `data` spans must all have the same length across ranks (validated
  /// before any reduction runs; every rank throws together on a mismatch).
  void allreduce_ring(Index rank, std::span<float> data);

  /// Ring all-reduce of a WINDOW of a larger conceptual vector: `data`
  /// holds elements [global_offset, global_offset + data.size()) of a
  /// vector of `global_numel` elements, and the ring chunk boundaries are
  /// derived from the GLOBAL extents (chunk c spans global positions
  /// [c*N/p, (c+1)*N/p), intersected with the window).
  ///
  /// Consequence — the bucket bit-identity guarantee: every element's
  /// summation order depends only on its global position, so reducing a
  /// gradient in one monolithic call or as any partition into windows
  /// produces bit-identical results.  This is what lets the bucketed
  /// overlapped all-reduce reproduce the monolithic path exactly.
  ///
  /// All ranks must pass the same (global_offset, global_numel) — the
  /// bucket plan is static, so this holds by construction.
  void allreduce_ring(Index rank, std::span<float> data, Index global_offset,
                      Index global_numel);

  /// Nonblocking ring all-reduce: enqueue the window on this rank's comm
  /// engine thread and return a handle immediately; the reduction runs
  /// concurrently with the caller (comm/compute overlap).  Multiple
  /// operations may be in flight at once; every rank must start the same
  /// operations in the same order (FIFO matching, like MPI nonblocking
  /// collectives).  While any operation is in flight, no blocking
  /// collective may be entered on this communicator.
  ///
  /// Failure contract (same as the blocking collectives): a dead rank
  /// poisons every in-flight and subsequently started operation, and
  /// wait() throws RankFailure on all survivors — no hangs.
  PendingCollective allreduce_ring_start(Index rank, std::span<float> data,
                                         Index global_offset,
                                         Index global_numel);

  /// Convenience overload: the window is the whole vector.
  PendingCollective allreduce_ring_start(Index rank, std::span<float> data);

  /// Sum-all-reduce via a flat gather at rank 0 + broadcast.  Same result,
  /// different schedule; used to cross-check the ring implementation.
  void allreduce_flat(Index rank, std::span<float> data);

  /// Partial (quorum) sum-all-reduce for straggler mitigation: every live
  /// rank enters (so nobody blocks on a mitigated straggler), but only the
  /// ranks entering with `contributing == true` are summed.  The reduced
  /// vector lands in every rank's buffer — non-contributors receive the
  /// committed gradient too, which is what keeps backup-worker and
  /// bounded-staleness replicas bit-synchronized with the quorum.
  ///
  /// Determinism contract: contributions are accumulated in ascending rank
  /// order by the lowest live rank, so for a fixed participant set the
  /// result is bit-reproducible regardless of thread scheduling.  The
  /// participant set itself must be decided deterministically by the caller
  /// (e.g. from a seeded fault schedule), not by arrival order.
  ///
  /// Returns the number of contributing ranks.  At least one rank must
  /// contribute; an empty quorum throws on every rank together.
  Index allreduce_quorum(Index rank, std::span<float> data, bool contributing);

  /// Broadcast rank 0's buffer to every rank.
  void broadcast(Index rank, std::span<float> data);

  /// A communicator rebuilt over the surviving ranks, plus the old rank each
  /// new rank had (old_rank[new] = old, ascending).
  struct Shrunk {
    std::shared_ptr<ShmCommunicator> comm;
    std::vector<Index> old_rank;
  };

  /// Rebuild a dense communicator over the surviving ranks.  Call after all
  /// participant threads have observed the RankFailure and unwound.
  Shrunk shrink() const;

 private:
  /// Arrive at the internal barrier as `rank` (-1 = anonymous).  Throws
  /// RankFailure on announced failures and on timeout suspicion.
  void arrive(Index rank);
  [[noreturn]] void throw_failed_locked() const;
  void register_buffer(Index rank, std::span<float> data);

  Index ranks_;
  std::chrono::milliseconds timeout_{30000};

  mutable std::mutex mu_;
  std::condition_variable cv_;
  std::vector<char> alive_;         // by rank
  Index alive_count_;
  std::vector<Index> failed_;       // announced or suspected, in order
  bool poisoned_ = false;           // any failure (even unattributed) seen
  std::uint64_t generation_ = 0;    // completed barrier rounds
  Index arrived_ = 0;               // arrivals in the current round
  std::vector<char> arrived_mask_;  // identified arrivals this round
  bool anonymous_arrival_ = false;  // this round saw a rank-less arrival

  std::vector<std::span<float>> buffers_;
  std::vector<char> contrib_mask_;  // quorum membership of the current op

  // ---- nonblocking engine ----------------------------------------------------
  // One lazily spawned worker thread per rank executes that rank's queued
  // operations in FIFO order.  Matching across ranks is by queue position:
  // every rank enqueues the same ops in the same order (the caller's
  // contract), so the k-th barrier arrival of each worker belongs to the
  // same operation and the blocking ring code runs unchanged underneath.
  struct Channel;
  Channel& channel(Index rank);
  std::vector<std::unique_ptr<Channel>> channels_;
  std::mutex channels_mu_;  // guards lazy channel creation only
};

}  // namespace candle::parallel

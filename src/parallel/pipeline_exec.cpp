#include "parallel/pipeline_exec.hpp"

#include <condition_variable>
#include <deque>
#include <mutex>
#include <optional>
#include <thread>

#include "runtime/timer.hpp"

namespace candle::parallel {

namespace {

/// Bounded single-producer single-consumer tensor queue.  A disengaged
/// optional is the end-of-stream sentinel.
class TensorQueue {
 public:
  explicit TensorQueue(std::size_t capacity) : capacity_(capacity) {}

  void push(std::optional<Tensor> item) {
    std::unique_lock<std::mutex> lock(mu_);
    cv_space_.wait(lock, [&] { return items_.size() < capacity_; });
    items_.push_back(std::move(item));
    cv_data_.notify_one();
  }

  std::optional<Tensor> pop() {
    std::unique_lock<std::mutex> lock(mu_);
    cv_data_.wait(lock, [&] { return !items_.empty(); });
    std::optional<Tensor> item = std::move(items_.front());
    items_.pop_front();
    cv_space_.notify_one();
    return item;
  }

 private:
  std::size_t capacity_;
  std::mutex mu_;
  std::condition_variable cv_data_, cv_space_;
  std::deque<std::optional<Tensor>> items_;
};

}  // namespace

Tensor pipeline_forward(Model& model, const StagePlan& plan, const Tensor& x,
                        Index microbatch, PipelineRunStats* stats) {
  CANDLE_CHECK(model.built(), "pipeline_forward needs a built model");
  CANDLE_CHECK(static_cast<Index>(plan.stage_of_layer.size()) ==
                   model.num_layers(),
               "plan does not match model");
  CANDLE_CHECK(microbatch >= 1, "microbatch must be positive");
  CANDLE_CHECK(x.ndim() >= 2, "input needs a batch dimension");
  const Index batch = x.dim(0);
  const Index k = plan.stages;
  Stopwatch clock;

  // Queues between stages: q[0] feeds stage 0, q[s+1] carries its output.
  std::vector<std::unique_ptr<TensorQueue>> queues;
  for (Index q = 0; q <= k; ++q) {
    queues.push_back(std::make_unique<TensorQueue>(4));
  }

  // Stage threads.
  std::vector<std::thread> threads;
  std::vector<std::exception_ptr> errors(static_cast<std::size_t>(k));
  for (Index s = 0; s < k; ++s) {
    threads.emplace_back([&, s] {
      try {
        const auto [first, last] = plan.stage_range(s);
        for (;;) {
          std::optional<Tensor> item =
              queues[static_cast<std::size_t>(s)]->pop();
          if (!item.has_value()) break;  // end of stream
          Tensor h = std::move(*item);
          for (Index i = first; i < last; ++i) {
            h = model.layer(i).forward(h, /*training=*/false);
          }
          queues[static_cast<std::size_t>(s + 1)]->push(std::move(h));
        }
        queues[static_cast<std::size_t>(s + 1)]->push(std::nullopt);
      } catch (...) {
        errors[static_cast<std::size_t>(s)] = std::current_exception();
        // Unblock downstream so the collector finishes...
        queues[static_cast<std::size_t>(s + 1)]->push(std::nullopt);
        // ...and drain upstream so producers never block on a full queue.
        while (queues[static_cast<std::size_t>(s)]->pop().has_value()) {
        }
      }
    });
  }

  // Feed microbatches from a dedicated thread: the main thread must be
  // free to drain the output queue, or bounded queues deadlock once the
  // microbatch count exceeds the total pipeline buffering.
  const Index row_elems = x.numel() / batch;
  const Index count = (batch + microbatch - 1) / microbatch;
  std::thread feeder([&] {
    Index fed = 0;
    while (fed < batch) {
      const Index hi = std::min(batch, fed + microbatch);
      Shape mb_shape = x.shape();
      mb_shape[0] = hi - fed;
      Tensor mb(mb_shape,
                std::vector<float>(x.data() + fed * row_elems,
                                   x.data() + hi * row_elems));
      queues[0]->push(std::move(mb));
      fed = hi;
    }
    queues[0]->push(std::nullopt);
  });

  // Collect in order from the final queue.
  std::vector<Tensor> outputs;
  for (;;) {
    std::optional<Tensor> item = queues[static_cast<std::size_t>(k)]->pop();
    if (!item.has_value()) break;
    outputs.push_back(std::move(*item));
  }
  feeder.join();
  for (auto& t : threads) t.join();
  for (const auto& err : errors) {
    if (err) std::rethrow_exception(err);
  }
  CANDLE_CHECK(static_cast<Index>(outputs.size()) == count,
               "pipeline lost microbatches");

  // Assemble.
  Shape out_shape = outputs.front().shape();
  out_shape[0] = batch;
  Tensor out(out_shape);
  const Index out_row = out.numel() / batch;
  Index row = 0;
  for (const Tensor& mb : outputs) {
    std::copy(mb.data(), mb.data() + mb.numel(), out.data() + row * out_row);
    row += mb.dim(0);
  }
  if (stats != nullptr) {
    stats->microbatches = count;
    stats->stages = k;
    stats->seconds = clock.seconds();
  }
  return out;
}

}  // namespace candle::parallel

#include "parallel/param_server.hpp"

#include <atomic>
#include <mutex>
#include <thread>

#include "runtime/timer.hpp"

namespace candle::parallel {

ParamServerResult train_param_server(const ModelFactory& factory,
                                     const OptimizerFactory& opt_factory,
                                     const Dataset& train, const Loss& loss,
                                     const ParamServerOptions& options,
                                     Model* out_model) {
  CANDLE_CHECK(options.workers >= 1, "need at least one worker");
  CANDLE_CHECK(options.epochs >= 1 && options.batch_size >= 1,
               "invalid training options");
  CANDLE_CHECK(train.size() >= options.batch_size * options.workers,
               "dataset smaller than one step per worker");

  // The server: canonical weights + optimizer, guarded by one lock (the
  // real system's RPC serialization point).
  Model server = factory();
  CANDLE_CHECK(server.built(), "model factory must return a built model");
  auto server_opt = opt_factory();
  std::mutex server_mu;
  std::atomic<Index> server_steps{0};

  const Index weights_n = server.num_params();
  const Index total_steps =
      options.epochs * (train.size() / options.batch_size);
  const Index steps_per_epoch = total_steps / options.epochs;

  std::vector<double> epoch_loss_acc(
      static_cast<std::size_t>(options.epochs), 0.0);
  std::vector<Index> epoch_loss_n(static_cast<std::size_t>(options.epochs),
                                  0);
  std::mutex stats_mu;
  std::atomic<Index> step_counter{0};
  StalenessMeter staleness;

  Stopwatch clock;
  std::vector<std::thread> threads;
  for (Index wkr = 0; wkr < options.workers; ++wkr) {
    threads.emplace_back([&, wkr] {
      Model replica = factory();
      // Each worker samples its own shuffled stream of the full dataset.
      BatchIterator batches(train, options.batch_size, /*shuffle=*/true,
                            options.seed ^ (0x9e3779b9ull * (wkr + 1)));
      std::vector<float> weights(static_cast<std::size_t>(weights_n));
      std::vector<float> grads(static_cast<std::size_t>(weights_n));
      for (;;) {
        const Index my_step = step_counter.fetch_add(1);
        if (my_step >= total_steps) break;
        // PULL: snapshot the server weights.
        Index pulled_at = 0;
        {
          std::lock_guard<std::mutex> lock(server_mu);
          server.copy_weights_to(weights);
          pulled_at = server_steps.load();
        }
        replica.set_weights_from(weights);
        // COMPUTE: gradient on the next local batch.
        const Dataset batch = batches.next();
        const Tensor pred = replica.forward(batch.x, /*training=*/true);
        const float l = loss.value(pred, batch.y);
        replica.backward(loss.grad(pred, batch.y));
        replica.copy_grads_to(grads);
        // PUSH: apply at the server with whatever weights are there now.
        {
          std::lock_guard<std::mutex> lock(server_mu);
          server.set_grads_from(grads);
          const auto ps = server.params();
          const auto gs = server.grads();
          server_opt->step(ps, gs);
          const Index now = server_steps.fetch_add(1) + 1;
          std::lock_guard<std::mutex> stats(stats_mu);
          staleness.record(now - 1 - pulled_at);
        }
        const auto epoch = static_cast<std::size_t>(
            std::min(options.epochs - 1, my_step / steps_per_epoch));
        {
          std::lock_guard<std::mutex> stats(stats_mu);
          epoch_loss_acc[epoch] += static_cast<double>(l);
          ++epoch_loss_n[epoch];
        }
      }
    });
  }
  for (auto& t : threads) t.join();

  ParamServerResult result;
  result.steps = server_steps.load();
  result.measured_seconds = clock.seconds();
  result.mean_staleness = staleness.mean();
  result.max_staleness = staleness.max_staleness();
  for (std::size_t e = 0; e < epoch_loss_acc.size(); ++e) {
    result.epoch_loss.push_back(static_cast<float>(
        epoch_loss_acc[e] / std::max<Index>(1, epoch_loss_n[e])));
  }
  if (out_model != nullptr) {
    *out_model = factory();
    std::vector<float> weights(static_cast<std::size_t>(weights_n));
    server.copy_weights_to(weights);
    out_model->set_weights_from(weights);
  }
  return result;
}

}  // namespace candle::parallel

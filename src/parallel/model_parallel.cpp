#include "parallel/model_parallel.hpp"

#include <algorithm>
#include <cmath>
#include <numeric>

#include "hpcsim/perfmodel.hpp"

namespace candle::parallel {

std::pair<Index, Index> StagePlan::stage_range(Index s) const {
  CANDLE_CHECK(s >= 0 && s < stages, "stage index out of range");
  Index first = -1, last = -1;
  for (Index i = 0; i < static_cast<Index>(stage_of_layer.size()); ++i) {
    if (stage_of_layer[static_cast<std::size_t>(i)] == s) {
      if (first < 0) first = i;
      last = i + 1;
    }
  }
  CANDLE_CHECK(first >= 0, "stage has no layers");
  return {first, last};
}

StagePlan balance_stages(Model& model, Index stages) {
  CANDLE_CHECK(model.built(), "balance_stages needs a built model");
  const Index n = model.num_layers();
  CANDLE_CHECK(stages >= 1 && stages <= n,
               "stage count must be in [1, num_layers]");
  StagePlan plan;
  plan.stages = stages;
  plan.stage_of_layer.resize(static_cast<std::size_t>(n));

  const double total = std::max(1.0, model.flops_per_sample());
  const double per_stage = total / static_cast<double>(stages);
  double acc = 0.0;
  Index stage = 0;
  for (Index i = 0; i < n; ++i) {
    plan.stage_of_layer[static_cast<std::size_t>(i)] = stage;
    acc += model.layer(i).flops_per_sample();
    // Advance once this stage holds its share — but keep enough layers for
    // the remaining stages.
    const Index layers_left = n - i - 1;
    const Index stages_left = stages - stage - 1;
    if (stage < stages - 1 &&
        (acc >= per_stage * static_cast<double>(stage + 1) ||
         layers_left <= stages_left)) {
      ++stage;
    }
  }
  CANDLE_CHECK(plan.stage_of_layer.back() == stages - 1,
               "stage balancing failed to reach final stage");
  return plan;
}

Tensor forward_staged(Model& model, const Tensor& x, const StagePlan& plan,
                      std::vector<double>* boundary_bytes) {
  CANDLE_CHECK(static_cast<Index>(plan.stage_of_layer.size()) ==
                   model.num_layers(),
               "plan does not match model");
  if (boundary_bytes != nullptr) boundary_bytes->clear();
  Tensor h = x;
  for (Index s = 0; s < plan.stages; ++s) {
    const auto [first, last] = plan.stage_range(s);
    for (Index i = first; i < last; ++i) {
      h = model.layer(i).forward(h, /*training=*/false);
    }
    if (boundary_bytes != nullptr && s + 1 < plan.stages) {
      boundary_bytes->push_back(static_cast<double>(h.numel()) * 4.0);
    }
  }
  return h;
}

PipelineEstimate estimate_pipeline(Model& model, const StagePlan& plan,
                                   Index microbatches, Index microbatch_size,
                                   const hpcsim::NodeSpec& node,
                                   const hpcsim::Fabric& fabric,
                                   Precision prec) {
  CANDLE_CHECK(microbatches >= 1 && microbatch_size >= 1,
               "invalid microbatch configuration");
  PipelineEstimate e;

  // Math time per stage per microbatch: 3x forward flops through the node
  // peak at the GEMM efficiency of the microbatch size.
  const double eff = hpcsim::gemm_efficiency(microbatch_size);
  const double peak = node.peak_gflops(prec) * 1e9 * std::max(1e-6, eff);
  e.stage_seconds.resize(static_cast<std::size_t>(plan.stages), 0.0);
  for (Index i = 0; i < model.num_layers(); ++i) {
    const auto s =
        static_cast<std::size_t>(plan.stage_of_layer[static_cast<std::size_t>(i)]);
    e.stage_seconds[s] += 3.0 * model.layer(i).flops_per_sample() *
                          static_cast<double>(microbatch_size) / peak;
  }
  const double max_stage =
      *std::max_element(e.stage_seconds.begin(), e.stage_seconds.end());
  const double sum_stage =
      std::accumulate(e.stage_seconds.begin(), e.stage_seconds.end(), 0.0);

  // Boundary traffic: probe with one sample to get activation sizes.
  std::vector<double> boundary_bytes;
  Shape probe_shape = model.input_shape();
  probe_shape.insert(probe_shape.begin(), 1);
  forward_staged(model, Tensor(probe_shape), plan, &boundary_bytes);
  const double alpha = fabric.message_latency_s(1.0);  // adjacent stages
  for (double b : boundary_bytes) {
    // Forward activation + backward gradient per microbatch.
    e.comm_seconds += static_cast<double>(microbatches) * 2.0 *
                      (alpha + b * static_cast<double>(microbatch_size) *
                                   fabric.seconds_per_byte());
  }

  // GPipe schedule: m microbatches through k stages takes (m + k - 1) slots
  // of the slowest stage.
  const double m = static_cast<double>(microbatches);
  const double k = static_cast<double>(plan.stages);
  e.bubble_fraction = (k - 1.0) / (m + k - 1.0);
  e.step_seconds = (m + k - 1.0) * max_stage + e.comm_seconds;
  e.serial_seconds = m * sum_stage;
  e.speedup = e.serial_seconds / e.step_seconds;
  return e;
}

}  // namespace candle::parallel

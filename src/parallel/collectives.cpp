#include "parallel/collectives.hpp"

#include <algorithm>

namespace candle::parallel {

ShmCommunicator::ShmCommunicator(Index ranks)
    : ranks_(ranks), barrier_(static_cast<std::ptrdiff_t>(ranks)) {
  CANDLE_CHECK(ranks >= 1, "communicator needs at least one rank");
  buffers_.resize(static_cast<std::size_t>(ranks));
}

void ShmCommunicator::barrier() { barrier_.arrive_and_wait(); }

void ShmCommunicator::register_buffer(Index rank, std::span<float> data) {
  CANDLE_CHECK(rank >= 0 && rank < ranks_, "rank out of range");
  buffers_[static_cast<std::size_t>(rank)] = data;
  barrier();
  // Validate ALL buffers on EVERY rank after the barrier: on a mismatch all
  // ranks throw together, so no rank is left blocked at a later barrier.
  for (Index r = 0; r < ranks_; ++r) {
    CANDLE_CHECK(buffers_[static_cast<std::size_t>(r)].size() == data.size(),
                 "collective buffer sizes differ across ranks");
  }
}

void ShmCommunicator::allreduce_ring(Index rank, std::span<float> data) {
  register_buffer(rank, data);
  if (ranks_ == 1) {
    barrier();
    return;
  }
  const Index p = ranks_;
  const Index n = static_cast<Index>(data.size());
  // Chunk c covers [c*n/p, (c+1)*n/p).
  auto chunk_begin = [&](Index c) { return c * n / p; };
  auto chunk_end = [&](Index c) { return (c + 1) * n / p; };
  const Index left = (rank - 1 + p) % p;

  // Reduce-scatter: at step s, rank r accumulates its neighbour's partial
  // for chunk (r - s - 1 mod p).  After p-1 steps rank r owns the fully
  // reduced chunk (r + 1 mod p).
  for (Index s = 0; s < p - 1; ++s) {
    const Index c = ((rank - s - 1) % p + p) % p;
    const std::span<float> src = buffers_[static_cast<std::size_t>(left)];
    for (Index i = chunk_begin(c); i < chunk_end(c); ++i) {
      data[static_cast<std::size_t>(i)] += src[static_cast<std::size_t>(i)];
    }
    barrier();  // everyone finished step s before buffers mutate further
  }
  // All-gather: rank r starts with reduced chunk (r + 1); at step s it
  // copies chunk (r - s + 1) from its left neighbour (standard ring).
  for (Index s = 0; s < p - 1; ++s) {
    const Index c = ((rank - s) % p + p) % p;
    const std::span<float> src = buffers_[static_cast<std::size_t>(left)];
    std::copy(src.begin() + chunk_begin(c), src.begin() + chunk_end(c),
              data.begin() + chunk_begin(c));
    barrier();
  }
  barrier();  // release buffer registrations coherently
}

void ShmCommunicator::allreduce_flat(Index rank, std::span<float> data) {
  register_buffer(rank, data);
  if (ranks_ == 1) {
    barrier();
    return;
  }
  if (rank == 0) {
    for (Index r = 1; r < ranks_; ++r) {
      const std::span<float> src = buffers_[static_cast<std::size_t>(r)];
      for (std::size_t i = 0; i < data.size(); ++i) data[i] += src[i];
    }
  }
  barrier();  // sum complete
  if (rank != 0) {
    const std::span<float> root = buffers_[0];
    std::copy(root.begin(), root.end(), data.begin());
  }
  barrier();
}

void ShmCommunicator::broadcast(Index rank, std::span<float> data) {
  register_buffer(rank, data);
  if (rank != 0) {
    const std::span<float> root = buffers_[0];
    std::copy(root.begin(), root.end(), data.begin());
  }
  barrier();
}

}  // namespace candle::parallel

#include "parallel/collectives.hpp"

#include <algorithm>
#include <sstream>

namespace candle::parallel {

ShmCommunicator::ShmCommunicator(Index ranks) : ranks_(ranks) {
  CANDLE_CHECK(ranks >= 1, "communicator needs at least one rank");
  alive_.assign(static_cast<std::size_t>(ranks), 1);
  alive_count_ = ranks;
  arrived_mask_.assign(static_cast<std::size_t>(ranks), 0);
  buffers_.resize(static_cast<std::size_t>(ranks));
  contrib_mask_.assign(static_cast<std::size_t>(ranks), 0);
}

void ShmCommunicator::set_timeout(std::chrono::milliseconds timeout) {
  CANDLE_CHECK(timeout.count() > 0, "timeout must be positive");
  std::lock_guard<std::mutex> lock(mu_);
  timeout_ = timeout;
}

std::chrono::milliseconds ShmCommunicator::timeout() const {
  std::lock_guard<std::mutex> lock(mu_);
  return timeout_;
}

void ShmCommunicator::throw_failed_locked() const {
  std::ostringstream os;
  os << "rank failure detected (" << failed_.size() << " dead rank"
     << (failed_.size() == 1 ? "" : "s") << ":";
  if (failed_.empty()) {
    os << " unattributed barrier timeout";
  } else {
    for (Index r : failed_) os << ' ' << r;
  }
  os << ") — collective aborted; shrink() or rebuild the communicator";
  throw RankFailure(failed_, os.str());
}

void ShmCommunicator::arrive(Index rank) {
  std::unique_lock<std::mutex> lock(mu_);
  if (poisoned_) throw_failed_locked();
  const std::uint64_t gen = generation_;
  ++arrived_;
  if (rank >= 0) {
    arrived_mask_[static_cast<std::size_t>(rank)] = 1;
  } else {
    anonymous_arrival_ = true;
  }
  if (arrived_ >= alive_count_) {
    arrived_ = 0;
    std::fill(arrived_mask_.begin(), arrived_mask_.end(), 0);
    anonymous_arrival_ = false;
    ++generation_;
    cv_.notify_all();
    return;
  }
  while (generation_ == gen && !poisoned_) {
    if (cv_.wait_for(lock, timeout_) == std::cv_status::timeout) {
      if (generation_ != gen || poisoned_) break;
      // Nobody released the round within the suspicion window: declare the
      // live ranks that never arrived dead.  Anonymous arrivals cannot be
      // attributed, so in that case the communicator is poisoned without
      // naming ranks.
      if (!anonymous_arrival_) {
        for (Index r = 0; r < ranks_; ++r) {
          const auto i = static_cast<std::size_t>(r);
          if (alive_[i] && !arrived_mask_[i]) {
            alive_[i] = 0;
            --alive_count_;
            failed_.push_back(r);
          }
        }
      }
      poisoned_ = true;
      cv_.notify_all();
      throw_failed_locked();
    }
  }
  if (poisoned_) throw_failed_locked();
}

void ShmCommunicator::barrier() { arrive(-1); }

void ShmCommunicator::barrier(Index rank) {
  CANDLE_CHECK(rank >= 0 && rank < ranks_, "rank out of range");
  arrive(rank);
}

void ShmCommunicator::mark_failed(Index rank) {
  CANDLE_CHECK(rank >= 0 && rank < ranks_, "rank out of range");
  std::lock_guard<std::mutex> lock(mu_);
  const auto i = static_cast<std::size_t>(rank);
  if (alive_[i]) {
    alive_[i] = 0;
    --alive_count_;
    failed_.push_back(rank);
  }
  poisoned_ = true;
  cv_.notify_all();
}

bool ShmCommunicator::has_failures() const {
  std::lock_guard<std::mutex> lock(mu_);
  return poisoned_;
}

std::vector<Index> ShmCommunicator::failed_ranks() const {
  std::lock_guard<std::mutex> lock(mu_);
  return failed_;
}

std::vector<Index> ShmCommunicator::alive_ranks() const {
  std::lock_guard<std::mutex> lock(mu_);
  std::vector<Index> out;
  for (Index r = 0; r < ranks_; ++r) {
    if (alive_[static_cast<std::size_t>(r)]) out.push_back(r);
  }
  return out;
}

ShmCommunicator::Shrunk ShmCommunicator::shrink() const {
  std::vector<Index> survivors = alive_ranks();
  CANDLE_CHECK(!survivors.empty(), "cannot shrink: no surviving ranks");
  Shrunk out;
  out.comm = std::make_shared<ShmCommunicator>(
      static_cast<Index>(survivors.size()));
  out.comm->set_timeout(timeout());
  out.old_rank = std::move(survivors);
  return out;
}

void ShmCommunicator::register_buffer(Index rank, std::span<float> data) {
  CANDLE_CHECK(rank >= 0 && rank < ranks_, "rank out of range");
  {
    std::lock_guard<std::mutex> lock(mu_);
    if (poisoned_) throw_failed_locked();
    buffers_[static_cast<std::size_t>(rank)] = data;
  }
  arrive(rank);
  // Validate ALL live buffers on EVERY rank after the barrier: the check is
  // deterministic over shared state, so on a mismatch all ranks throw
  // together before any reduction touches a span — no rank is left blocked
  // at a later barrier and no out-of-bounds access happens mid-collective.
  std::vector<std::size_t> sizes;
  {
    std::lock_guard<std::mutex> lock(mu_);
    for (Index r = 0; r < ranks_; ++r) {
      const auto i = static_cast<std::size_t>(r);
      if (alive_[i]) sizes.push_back(buffers_[i].size());
    }
  }
  for (std::size_t s : sizes) {
    CANDLE_CHECK(s == data.size(),
                 "collective buffer sizes differ across ranks");
  }
}

void ShmCommunicator::allreduce_ring(Index rank, std::span<float> data) {
  register_buffer(rank, data);
  if (ranks_ == 1) {
    arrive(rank);
    return;
  }
  const Index p = ranks_;
  const Index n = static_cast<Index>(data.size());
  // Chunk c covers [c*n/p, (c+1)*n/p).
  auto chunk_begin = [&](Index c) { return c * n / p; };
  auto chunk_end = [&](Index c) { return (c + 1) * n / p; };
  const Index left = (rank - 1 + p) % p;

  // Reduce-scatter: at step s, rank r accumulates its neighbour's partial
  // for chunk (r - s - 1 mod p).  After p-1 steps rank r owns the fully
  // reduced chunk (r + 1 mod p).
  for (Index s = 0; s < p - 1; ++s) {
    const Index c = ((rank - s - 1) % p + p) % p;
    const std::span<float> src = buffers_[static_cast<std::size_t>(left)];
    for (Index i = chunk_begin(c); i < chunk_end(c); ++i) {
      data[static_cast<std::size_t>(i)] += src[static_cast<std::size_t>(i)];
    }
    arrive(rank);  // everyone finished step s before buffers mutate further
  }
  // All-gather: rank r starts with reduced chunk (r + 1); at step s it
  // copies chunk (r - s + 1) from its left neighbour (standard ring).
  for (Index s = 0; s < p - 1; ++s) {
    const Index c = ((rank - s) % p + p) % p;
    const std::span<float> src = buffers_[static_cast<std::size_t>(left)];
    std::copy(src.begin() + chunk_begin(c), src.begin() + chunk_end(c),
              data.begin() + chunk_begin(c));
    arrive(rank);
  }
  arrive(rank);  // release buffer registrations coherently
}

void ShmCommunicator::allreduce_flat(Index rank, std::span<float> data) {
  register_buffer(rank, data);
  if (ranks_ == 1) {
    arrive(rank);
    return;
  }
  if (rank == 0) {
    for (Index r = 1; r < ranks_; ++r) {
      const std::span<float> src = buffers_[static_cast<std::size_t>(r)];
      for (std::size_t i = 0; i < data.size(); ++i) data[i] += src[i];
    }
  }
  arrive(rank);  // sum complete
  if (rank != 0) {
    const std::span<float> root = buffers_[0];
    std::copy(root.begin(), root.end(), data.begin());
  }
  arrive(rank);
}

Index ShmCommunicator::allreduce_quorum(Index rank, std::span<float> data,
                                        bool contributing) {
  CANDLE_CHECK(rank >= 0 && rank < ranks_, "rank out of range");
  {
    std::lock_guard<std::mutex> lock(mu_);
    if (poisoned_) throw_failed_locked();
    buffers_[static_cast<std::size_t>(rank)] = data;
    contrib_mask_[static_cast<std::size_t>(rank)] = contributing ? 1 : 0;
  }
  arrive(rank);  // buffers and quorum membership frozen for this op
  // Validate sizes and count contributors identically on every rank from the
  // now-frozen shared state: on misuse all ranks throw together before any
  // reduction touches a span.
  Index contributors = 0;
  Index root = -1;  // lowest live rank performs the deterministic sum
  std::vector<std::size_t> sizes;
  {
    std::lock_guard<std::mutex> lock(mu_);
    for (Index r = 0; r < ranks_; ++r) {
      const auto i = static_cast<std::size_t>(r);
      if (!alive_[i]) continue;
      if (root < 0) root = r;
      sizes.push_back(buffers_[i].size());
      contributors += contrib_mask_[i] != 0;
    }
  }
  for (std::size_t s : sizes) {
    CANDLE_CHECK(s == data.size(),
                 "collective buffer sizes differ across ranks");
  }
  CANDLE_CHECK(contributors >= 1,
               "quorum all-reduce needs at least one contributing rank");
  if (rank == root) {
    // Accumulate contributing buffers in ascending rank order: a fixed
    // summation order keeps the reduced vector bit-reproducible for a fixed
    // participant set, independent of thread scheduling.
    bool seeded = false;
    for (Index r = 0; r < ranks_; ++r) {
      const auto i = static_cast<std::size_t>(r);
      if (!alive_[i] || !contrib_mask_[i]) continue;
      const std::span<float> src = buffers_[i];
      if (!seeded) {
        if (r != root) std::copy(src.begin(), src.end(), data.begin());
        seeded = true;
      } else {
        for (std::size_t j = 0; j < data.size(); ++j) data[j] += src[j];
      }
    }
  }
  arrive(rank);  // quorum sum complete in the root buffer
  if (rank != root) {
    const std::span<float> src = buffers_[static_cast<std::size_t>(root)];
    std::copy(src.begin(), src.end(), data.begin());
  }
  arrive(rank);  // release buffer registrations coherently
  return contributors;
}

void ShmCommunicator::broadcast(Index rank, std::span<float> data) {
  register_buffer(rank, data);
  if (rank != 0) {
    const std::span<float> root = buffers_[0];
    std::copy(root.begin(), root.end(), data.begin());
  }
  arrive(rank);
}

}  // namespace candle::parallel

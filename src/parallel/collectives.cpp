#include "parallel/collectives.hpp"

#include <algorithm>
#include <sstream>

#include "runtime/timer.hpp"

namespace candle::parallel {

// ---- nonblocking handles ------------------------------------------------------

struct PendingCollective::State {
  // Completion latch, written once by the comm engine worker.
  std::mutex mu;
  std::condition_variable cv;
  bool done = false;
  std::exception_ptr error;
  double busy_s = 0.0;

  // Operation description (immutable after enqueue).
  Index rank = 0;
  std::span<float> data;
  Index global_offset = 0;
  Index global_numel = 0;
};

void PendingCollective::wait() {
  CANDLE_CHECK(state_ != nullptr, "wait() on an invalid collective handle");
  std::unique_lock<std::mutex> lock(state_->mu);
  state_->cv.wait(lock, [&] { return state_->done; });
  if (state_->error) std::rethrow_exception(state_->error);
}

bool PendingCollective::done() const {
  CANDLE_CHECK(state_ != nullptr, "done() on an invalid collective handle");
  std::lock_guard<std::mutex> lock(state_->mu);
  return state_->done;
}

double PendingCollective::busy_seconds() const {
  CANDLE_CHECK(state_ != nullptr,
               "busy_seconds() on an invalid collective handle");
  std::lock_guard<std::mutex> lock(state_->mu);
  return state_->done ? state_->busy_s : 0.0;
}

/// One rank's comm engine: a worker thread draining a FIFO of operations.
/// Spawned lazily on the first allreduce_ring_start from that rank, so
/// purely blocking users pay nothing.
struct ShmCommunicator::Channel {
  std::thread worker;
  std::mutex mu;
  std::condition_variable cv;
  std::deque<std::shared_ptr<PendingCollective::State>> queue;
  bool quit = false;
};

ShmCommunicator::ShmCommunicator(Index ranks) : ranks_(ranks) {
  CANDLE_CHECK(ranks >= 1, "communicator needs at least one rank");
  alive_.assign(static_cast<std::size_t>(ranks), 1);
  alive_count_ = ranks;
  arrived_mask_.assign(static_cast<std::size_t>(ranks), 0);
  buffers_.resize(static_cast<std::size_t>(ranks));
  contrib_mask_.assign(static_cast<std::size_t>(ranks), 0);
}

void ShmCommunicator::set_timeout(std::chrono::milliseconds timeout) {
  CANDLE_CHECK(timeout.count() > 0, "timeout must be positive");
  std::lock_guard<std::mutex> lock(mu_);
  timeout_ = timeout;
}

std::chrono::milliseconds ShmCommunicator::timeout() const {
  std::lock_guard<std::mutex> lock(mu_);
  return timeout_;
}

void ShmCommunicator::throw_failed_locked() const {
  std::ostringstream os;
  os << "rank failure detected (" << failed_.size() << " dead rank"
     << (failed_.size() == 1 ? "" : "s") << ":";
  if (failed_.empty()) {
    os << " unattributed barrier timeout";
  } else {
    for (Index r : failed_) os << ' ' << r;
  }
  os << ") — collective aborted; shrink() or rebuild the communicator";
  throw RankFailure(failed_, os.str());
}

void ShmCommunicator::arrive(Index rank) {
  std::unique_lock<std::mutex> lock(mu_);
  if (poisoned_) throw_failed_locked();
  const std::uint64_t gen = generation_;
  ++arrived_;
  if (rank >= 0) {
    arrived_mask_[static_cast<std::size_t>(rank)] = 1;
  } else {
    anonymous_arrival_ = true;
  }
  if (arrived_ >= alive_count_) {
    arrived_ = 0;
    std::fill(arrived_mask_.begin(), arrived_mask_.end(), 0);
    anonymous_arrival_ = false;
    ++generation_;
    cv_.notify_all();
    return;
  }
  while (generation_ == gen && !poisoned_) {
    if (cv_.wait_for(lock, timeout_) == std::cv_status::timeout) {
      if (generation_ != gen || poisoned_) break;
      // Nobody released the round within the suspicion window: declare the
      // live ranks that never arrived dead.  Anonymous arrivals cannot be
      // attributed, so in that case the communicator is poisoned without
      // naming ranks.
      if (!anonymous_arrival_) {
        for (Index r = 0; r < ranks_; ++r) {
          const auto i = static_cast<std::size_t>(r);
          if (alive_[i] && !arrived_mask_[i]) {
            alive_[i] = 0;
            --alive_count_;
            failed_.push_back(r);
          }
        }
      }
      poisoned_ = true;
      cv_.notify_all();
      throw_failed_locked();
    }
  }
  if (poisoned_) throw_failed_locked();
}

void ShmCommunicator::barrier() { arrive(-1); }

void ShmCommunicator::barrier(Index rank) {
  CANDLE_CHECK(rank >= 0 && rank < ranks_, "rank out of range");
  arrive(rank);
}

void ShmCommunicator::mark_failed(Index rank) {
  CANDLE_CHECK(rank >= 0 && rank < ranks_, "rank out of range");
  std::lock_guard<std::mutex> lock(mu_);
  const auto i = static_cast<std::size_t>(rank);
  if (alive_[i]) {
    alive_[i] = 0;
    --alive_count_;
    failed_.push_back(rank);
  }
  poisoned_ = true;
  cv_.notify_all();
}

bool ShmCommunicator::has_failures() const {
  std::lock_guard<std::mutex> lock(mu_);
  return poisoned_;
}

std::vector<Index> ShmCommunicator::failed_ranks() const {
  std::lock_guard<std::mutex> lock(mu_);
  return failed_;
}

std::vector<Index> ShmCommunicator::alive_ranks() const {
  std::lock_guard<std::mutex> lock(mu_);
  std::vector<Index> out;
  for (Index r = 0; r < ranks_; ++r) {
    if (alive_[static_cast<std::size_t>(r)]) out.push_back(r);
  }
  return out;
}

ShmCommunicator::Shrunk ShmCommunicator::shrink() const {
  std::vector<Index> survivors = alive_ranks();
  CANDLE_CHECK(!survivors.empty(), "cannot shrink: no surviving ranks");
  Shrunk out;
  out.comm = std::make_shared<ShmCommunicator>(
      static_cast<Index>(survivors.size()));
  out.comm->set_timeout(timeout());
  out.old_rank = std::move(survivors);
  return out;
}

void ShmCommunicator::register_buffer(Index rank, std::span<float> data) {
  CANDLE_CHECK(rank >= 0 && rank < ranks_, "rank out of range");
  {
    std::lock_guard<std::mutex> lock(mu_);
    if (poisoned_) throw_failed_locked();
    buffers_[static_cast<std::size_t>(rank)] = data;
  }
  arrive(rank);
  // Validate ALL live buffers on EVERY rank after the barrier: the check is
  // deterministic over shared state, so on a mismatch all ranks throw
  // together before any reduction touches a span — no rank is left blocked
  // at a later barrier and no out-of-bounds access happens mid-collective.
  std::vector<std::size_t> sizes;
  {
    std::lock_guard<std::mutex> lock(mu_);
    for (Index r = 0; r < ranks_; ++r) {
      const auto i = static_cast<std::size_t>(r);
      if (alive_[i]) sizes.push_back(buffers_[i].size());
    }
  }
  for (std::size_t s : sizes) {
    CANDLE_CHECK(s == data.size(),
                 "collective buffer sizes differ across ranks");
  }
}

void ShmCommunicator::allreduce_ring(Index rank, std::span<float> data) {
  allreduce_ring(rank, data, 0, static_cast<Index>(data.size()));
}

void ShmCommunicator::allreduce_ring(Index rank, std::span<float> data,
                                     Index global_offset, Index global_numel) {
  const Index n = static_cast<Index>(data.size());
  CANDLE_CHECK(global_offset >= 0 && global_offset + n <= global_numel,
               "collective window out of range of the global vector");
  register_buffer(rank, data);
  if (ranks_ == 1) {
    arrive(rank);
    return;
  }
  const Index p = ranks_;
  const Index N = global_numel;
  // Chunk c covers GLOBAL positions [c*N/p, (c+1)*N/p); within this window
  // that intersection is the clamped range below (possibly empty — the step
  // still runs its barrier so every rank performs the same arrive count).
  // Anchoring chunk boundaries to the global extents rather than the window
  // length makes each element's summation order a function of its global
  // position alone, so any partition of a vector into windows reduces
  // bit-identically to one monolithic call (see header).
  auto local = [&](Index g) {
    return std::clamp(g - global_offset, Index{0}, n);
  };
  auto chunk_begin = [&](Index c) { return local(c * N / p); };
  auto chunk_end = [&](Index c) { return local((c + 1) * N / p); };
  const Index left = (rank - 1 + p) % p;

  // Reduce-scatter: at step s, rank r accumulates its neighbour's partial
  // for chunk (r - s - 1 mod p).  After p-1 steps rank r owns the fully
  // reduced chunk (r + 1 mod p).
  for (Index s = 0; s < p - 1; ++s) {
    const Index c = ((rank - s - 1) % p + p) % p;
    const std::span<float> src = buffers_[static_cast<std::size_t>(left)];
    for (Index i = chunk_begin(c); i < chunk_end(c); ++i) {
      data[static_cast<std::size_t>(i)] += src[static_cast<std::size_t>(i)];
    }
    arrive(rank);  // everyone finished step s before buffers mutate further
  }
  // All-gather: rank r starts with reduced chunk (r + 1); at step s it
  // copies chunk (r - s + 1) from its left neighbour (standard ring).
  for (Index s = 0; s < p - 1; ++s) {
    const Index c = ((rank - s) % p + p) % p;
    const std::span<float> src = buffers_[static_cast<std::size_t>(left)];
    std::copy(src.begin() + chunk_begin(c), src.begin() + chunk_end(c),
              data.begin() + chunk_begin(c));
    arrive(rank);
  }
  arrive(rank);  // release buffer registrations coherently
}

ShmCommunicator::Channel& ShmCommunicator::channel(Index rank) {
  std::lock_guard<std::mutex> lock(channels_mu_);
  if (channels_.empty()) channels_.resize(static_cast<std::size_t>(ranks_));
  auto& slot = channels_[static_cast<std::size_t>(rank)];
  if (!slot) {
    slot = std::make_unique<Channel>();
    Channel* ch = slot.get();
    ch->worker = std::thread([this, ch] {
      for (;;) {
        std::shared_ptr<PendingCollective::State> op;
        {
          std::unique_lock<std::mutex> lk(ch->mu);
          ch->cv.wait(lk, [&] { return ch->quit || !ch->queue.empty(); });
          if (ch->queue.empty()) return;  // quit requested, queue drained
          op = ch->queue.front();
          ch->queue.pop_front();
        }
        // Execute the blocking windowed ring on behalf of the caller.  A
        // failure (RankFailure from a dead peer, contract violations) is
        // captured and rethrown from wait() — the engine itself never dies,
        // so later queued ops still complete (each observing the poisoned
        // communicator and failing promptly rather than hanging).
        Stopwatch sw;
        std::exception_ptr err;
        try {
          allreduce_ring(op->rank, op->data, op->global_offset,
                         op->global_numel);
        } catch (...) {
          err = std::current_exception();
        }
        {
          std::lock_guard<std::mutex> lk(op->mu);
          op->busy_s = sw.seconds();
          op->error = err;
          op->done = true;
        }
        op->cv.notify_all();
      }
    });
  }
  return *slot;
}

PendingCollective ShmCommunicator::allreduce_ring_start(Index rank,
                                                        std::span<float> data,
                                                        Index global_offset,
                                                        Index global_numel) {
  CANDLE_CHECK(rank >= 0 && rank < ranks_, "rank out of range");
  const Index n = static_cast<Index>(data.size());
  CANDLE_CHECK(global_offset >= 0 && global_offset + n <= global_numel,
               "collective window out of range of the global vector");
  auto st = std::make_shared<PendingCollective::State>();
  st->rank = rank;
  st->data = data;
  st->global_offset = global_offset;
  st->global_numel = global_numel;
  Channel& ch = channel(rank);
  {
    std::lock_guard<std::mutex> lock(ch.mu);
    ch.queue.push_back(st);
  }
  ch.cv.notify_one();
  PendingCollective handle;
  handle.state_ = std::move(st);
  return handle;
}

PendingCollective ShmCommunicator::allreduce_ring_start(Index rank,
                                                        std::span<float> data) {
  return allreduce_ring_start(rank, data, 0,
                              static_cast<Index>(data.size()));
}

ShmCommunicator::~ShmCommunicator() {
  for (auto& ch : channels_) {
    if (!ch) continue;
    {
      std::lock_guard<std::mutex> lock(ch->mu);
      ch->quit = true;
    }
    ch->cv.notify_all();
  }
  for (auto& ch : channels_) {
    if (ch && ch->worker.joinable()) ch->worker.join();
  }
}

void ShmCommunicator::allreduce_flat(Index rank, std::span<float> data) {
  register_buffer(rank, data);
  if (ranks_ == 1) {
    arrive(rank);
    return;
  }
  if (rank == 0) {
    for (Index r = 1; r < ranks_; ++r) {
      const std::span<float> src = buffers_[static_cast<std::size_t>(r)];
      for (std::size_t i = 0; i < data.size(); ++i) data[i] += src[i];
    }
  }
  arrive(rank);  // sum complete
  if (rank != 0) {
    const std::span<float> root = buffers_[0];
    std::copy(root.begin(), root.end(), data.begin());
  }
  arrive(rank);
}

Index ShmCommunicator::allreduce_quorum(Index rank, std::span<float> data,
                                        bool contributing) {
  CANDLE_CHECK(rank >= 0 && rank < ranks_, "rank out of range");
  {
    std::lock_guard<std::mutex> lock(mu_);
    if (poisoned_) throw_failed_locked();
    buffers_[static_cast<std::size_t>(rank)] = data;
    contrib_mask_[static_cast<std::size_t>(rank)] = contributing ? 1 : 0;
  }
  arrive(rank);  // buffers and quorum membership frozen for this op
  // Validate sizes and count contributors identically on every rank from the
  // now-frozen shared state: on misuse all ranks throw together before any
  // reduction touches a span.
  Index contributors = 0;
  Index root = -1;  // lowest live rank performs the deterministic sum
  std::vector<std::size_t> sizes;
  {
    std::lock_guard<std::mutex> lock(mu_);
    for (Index r = 0; r < ranks_; ++r) {
      const auto i = static_cast<std::size_t>(r);
      if (!alive_[i]) continue;
      if (root < 0) root = r;
      sizes.push_back(buffers_[i].size());
      contributors += contrib_mask_[i] != 0;
    }
  }
  for (std::size_t s : sizes) {
    CANDLE_CHECK(s == data.size(),
                 "collective buffer sizes differ across ranks");
  }
  CANDLE_CHECK(contributors >= 1,
               "quorum all-reduce needs at least one contributing rank");
  if (rank == root) {
    // Accumulate contributing buffers in ascending rank order: a fixed
    // summation order keeps the reduced vector bit-reproducible for a fixed
    // participant set, independent of thread scheduling.
    bool seeded = false;
    for (Index r = 0; r < ranks_; ++r) {
      const auto i = static_cast<std::size_t>(r);
      if (!alive_[i] || !contrib_mask_[i]) continue;
      const std::span<float> src = buffers_[i];
      if (!seeded) {
        if (r != root) std::copy(src.begin(), src.end(), data.begin());
        seeded = true;
      } else {
        for (std::size_t j = 0; j < data.size(); ++j) data[j] += src[j];
      }
    }
  }
  arrive(rank);  // quorum sum complete in the root buffer
  if (rank != root) {
    const std::span<float> src = buffers_[static_cast<std::size_t>(root)];
    std::copy(src.begin(), src.end(), data.begin());
  }
  arrive(rank);  // release buffer registrations coherently
  return contributors;
}

void ShmCommunicator::broadcast(Index rank, std::span<float> data) {
  register_buffer(rank, data);
  if (rank != 0) {
    const std::span<float> root = buffers_[0];
    std::copy(root.begin(), root.end(), data.begin());
  }
  arrive(rank);
}

}  // namespace candle::parallel

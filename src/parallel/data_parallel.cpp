#include "parallel/data_parallel.hpp"

#include <atomic>
#include <thread>

#include "parallel/collectives.hpp"
#include "parallel/compression.hpp"
#include "runtime/timer.hpp"

namespace candle::parallel {

DataParallelResult train_data_parallel(const ModelFactory& factory,
                                       const OptimizerFactory& opt_factory,
                                       const Dataset& train, const Loss& loss,
                                       const DataParallelOptions& options,
                                       Model* out_model) {
  CANDLE_CHECK(options.replicas >= 1, "need at least one replica");
  CANDLE_CHECK(options.epochs >= 1, "need at least one epoch");
  CANDLE_CHECK(options.batch_per_replica >= 1, "empty replica batch");
  const Index p = options.replicas;
  const Index global_batch = p * options.batch_per_replica;
  CANDLE_CHECK(train.size() >= global_batch,
               "dataset smaller than one global batch");

  // Build replicas (identical by deterministic construction).
  std::vector<Model> replicas;
  std::vector<std::unique_ptr<Optimizer>> optimizers;
  replicas.reserve(static_cast<std::size_t>(p));
  for (Index r = 0; r < p; ++r) {
    replicas.push_back(factory());
    CANDLE_CHECK(replicas.back().built(),
                 "model factory must return a built model");
    replicas.back().set_compute_precision(options.precision.compute);
    optimizers.push_back(opt_factory());
    optimizers.back()->set_update_precision(
        {options.precision.weight_storage,
         options.precision.stochastic_weight_rounding,
         options.seed ^ 0xf00d});
  }
  const Index grad_size = replicas[0].grad_size();
  const bool compress = options.gradient_topk_fraction < 1.0;
  CANDLE_CHECK(options.gradient_topk_fraction > 0.0 &&
                   options.gradient_topk_fraction <= 1.0,
               "top-k fraction must be in (0,1]");
  std::vector<ErrorFeedbackCompressor> compressors;
  if (compress) {
    for (Index r = 0; r < p; ++r) {
      compressors.emplace_back(grad_size, options.gradient_topk_fraction);
    }
  }

  // Global batch stream; each global batch is sliced into replica shards.
  BatchIterator batches(train, global_batch, options.shuffle, options.seed);
  const Index steps_per_epoch = train.size() / global_batch;
  CANDLE_CHECK(steps_per_epoch >= 1, "no full global batch available");

  DataParallelResult result;
  result.grad_bytes_per_step =
      compress ? 8.0 * options.gradient_topk_fraction *
                     static_cast<double>(grad_size)  // 4B index + 4B value
               : 4.0 * static_cast<double>(grad_size);

  ShmCommunicator comm(p);
  Stopwatch clock;

  for (Index epoch = 0; epoch < options.epochs; ++epoch) {
    std::atomic<double> epoch_loss{0.0};
    for (Index step = 0; step < steps_per_epoch; ++step) {
      const Dataset global = batches.next();
      // Launch one thread per replica for fwd/bwd + all-reduce.
      std::vector<std::thread> threads;
      threads.reserve(static_cast<std::size_t>(p));
      std::vector<std::vector<float>> grad_bufs(
          static_cast<std::size_t>(p),
          std::vector<float>(static_cast<std::size_t>(grad_size)));
      for (Index r = 0; r < p; ++r) {
        threads.emplace_back([&, r] {
          const Index lo = r * options.batch_per_replica;
          const Index hi = lo + options.batch_per_replica;
          const Dataset shard = slice(global, lo, hi);
          Model& m = replicas[static_cast<std::size_t>(r)];
          const Tensor pred = m.forward(shard.x, /*training=*/true);
          const float l = loss.value(pred, shard.y);
          Tensor dy = loss.grad(pred, shard.y);
          if (options.precision.loss_scale != 1.0f) {
            dy.scale(options.precision.loss_scale);
          }
          m.backward(dy);
          auto& buf = grad_bufs[static_cast<std::size_t>(r)];
          m.copy_grads_to(buf);
          if (compress) {
            // Each replica contributes only its top-k entries; the dropped
            // mass rides the error-feedback residual into the next step.
            const SparseGradient sparse =
                compressors[static_cast<std::size_t>(r)].compress(buf);
            std::fill(buf.begin(), buf.end(), 0.0f);
            sparse.add_to(buf);
          }
          // Average gradients across replicas: real ring all-reduce.
          comm.allreduce_ring(r, buf);
          const float scale =
              1.0f / (static_cast<float>(p) * options.precision.loss_scale);
          for (float& v : buf) v *= scale;
          m.set_grads_from(buf);
          const auto ps = m.params();
          const auto gs = m.grads();
          optimizers[static_cast<std::size_t>(r)]->step(ps, gs);
          // Accumulate the global loss (pre-scaling) for reporting.
          double expected = epoch_loss.load();
          while (!epoch_loss.compare_exchange_weak(
              expected, expected + static_cast<double>(l))) {
          }
        });
      }
      for (auto& t : threads) t.join();
      ++result.steps;
    }
    result.epoch_loss.push_back(static_cast<float>(
        epoch_loss.load() / static_cast<double>(steps_per_epoch * p)));
  }
  result.measured_seconds = clock.seconds();

  if (out_model != nullptr) {
    *out_model = factory();
    std::vector<float> weights(
        static_cast<std::size_t>(replicas[0].num_params()));
    replicas[0].copy_weights_to(weights);
    out_model->set_weights_from(weights);
  }
  return result;
}

double modeled_allreduce_seconds(const hpcsim::Fabric& fabric,
                                 hpcsim::AllReduceAlgo algo,
                                 Index participants, double grad_bytes) {
  CANDLE_CHECK(participants >= 1, "need at least one participant");
  return hpcsim::allreduce_time_s(fabric, algo, participants, grad_bytes);
}

void annotate_with_fabric(DataParallelResult& result,
                          const hpcsim::Fabric& fabric,
                          hpcsim::AllReduceAlgo algo, Index replicas) {
  result.modeled_comm_seconds_per_step = modeled_allreduce_seconds(
      fabric, algo, replicas, result.grad_bytes_per_step);
}

}  // namespace candle::parallel

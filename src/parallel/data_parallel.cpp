#include "parallel/data_parallel.hpp"

#include <algorithm>
#include <atomic>
#include <cmath>
#include <cstdio>
#include <memory>
#include <thread>

#include "data/reader.hpp"
#include "parallel/bucketing.hpp"
#include "parallel/collectives.hpp"
#include "parallel/compression.hpp"
#include "runtime/timer.hpp"

namespace candle::parallel {

DataParallelResult train_data_parallel(const ModelFactory& factory,
                                       const OptimizerFactory& opt_factory,
                                       const Dataset& train, const Loss& loss,
                                       const DataParallelOptions& options,
                                       Model* out_model) {
  CANDLE_CHECK(options.replicas >= 1, "need at least one replica");
  CANDLE_CHECK(options.epochs >= 1, "need at least one epoch");
  CANDLE_CHECK(options.batch_per_replica >= 1, "empty replica batch");
  const Index p = options.replicas;
  const Index global_batch = p * options.batch_per_replica;
  CANDLE_CHECK(train.size() >= global_batch,
               "dataset smaller than one global batch");

  // Build replicas (identical by deterministic construction).
  std::vector<Model> replicas;
  std::vector<std::unique_ptr<Optimizer>> optimizers;
  replicas.reserve(static_cast<std::size_t>(p));
  for (Index r = 0; r < p; ++r) {
    replicas.push_back(factory());
    CANDLE_CHECK(replicas.back().built(),
                 "model factory must return a built model");
    replicas.back().set_compute_precision(options.precision.compute);
    optimizers.push_back(opt_factory());
    optimizers.back()->set_update_precision(
        {options.precision.weight_storage,
         options.precision.stochastic_weight_rounding,
         options.seed ^ 0xf00d});
  }
  const Index grad_size = replicas[0].grad_size();
  const bool compress = options.gradient_topk_fraction < 1.0;
  CANDLE_CHECK(options.gradient_topk_fraction > 0.0 &&
                   options.gradient_topk_fraction <= 1.0,
               "top-k fraction must be in (0,1]");

  const bool bucketed = options.bucket_bytes > 0;
  CANDLE_CHECK(!options.overlap_comm || bucketed,
               "overlap_comm requires bucket_bytes > 0");
  BucketPlan plan;
  std::vector<Model::GradExtent> extents;
  if (bucketed) {
    extents = replicas[0].grad_extents();
    std::vector<Index> layer_numel;
    layer_numel.reserve(extents.size());
    for (const auto& e : extents) layer_numel.push_back(e.numel);
    plan = plan_buckets(layer_numel, options.bucket_bytes);
    CANDLE_CHECK(plan.total_numel == grad_size, "bucket plan size mismatch");
  }

  // One compressor per (replica, reduction unit): the unit is the whole
  // gradient monolithically, or each bucket when bucketing — the residual
  // must live at the granularity that gets sparsified.
  std::vector<ErrorFeedbackCompressor> compressors;
  std::vector<std::vector<ErrorFeedbackCompressor>> bucket_compressors;
  if (compress) {
    if (bucketed) {
      bucket_compressors.resize(static_cast<std::size_t>(p));
      for (auto& per_replica : bucket_compressors) {
        per_replica.reserve(plan.buckets.size());
        for (const auto& b : plan.buckets) {
          per_replica.emplace_back(b.numel, options.gradient_topk_fraction);
        }
      }
    } else {
      for (Index r = 0; r < p; ++r) {
        compressors.emplace_back(grad_size, options.gradient_topk_fraction);
      }
    }
  }

  const Index steps_per_epoch = train.size() / global_batch;
  CANDLE_CHECK(steps_per_epoch >= 1, "no full global batch available");

  DataParallelResult result;
  // Samples that never fill a full global batch are excluded each epoch.
  // This was always true; now it is counted and announced instead of silent.
  result.dropped_tail_samples = train.size() - steps_per_epoch * global_batch;
  if (result.dropped_tail_samples > 0) {
    std::fprintf(stderr,
                 "[data_parallel] dropping %lld of %lld samples per epoch "
                 "(tail smaller than the global batch of %lld)\n",
                 static_cast<long long>(result.dropped_tail_samples),
                 static_cast<long long>(train.size()),
                 static_cast<long long>(global_batch));
  }

  // Batch source: either the legacy synchronous BatchIterator stream
  // (preserved exactly — existing studies pin its sample order) or the
  // ingest pipeline (sharded pure-permutation stream, background assembly).
  const bool use_ingest = options.ingest.enabled;
  std::unique_ptr<BatchIterator> batches;
  std::vector<Dataset> shard_bufs;  // legacy: persistent per-replica shards
  std::unique_ptr<data::DatasetSource> ingest_source;
  std::unique_ptr<data::SampleStore> ingest_store;
  std::unique_ptr<data::IngestReader> ingest_reader;
  if (use_ingest) {
    ingest_source = std::make_unique<data::DatasetSource>(
        train, options.ingest.synthetic_fetch_cost_s);
    data::SampleStoreOptions so;
    so.byte_budget = options.ingest.store_byte_budget;
    so.fetch_threads = options.ingest.fetch_threads;
    ingest_store = std::make_unique<data::SampleStore>(*ingest_source, so);
    data::ReaderOptions ro;
    ro.replicas = p;
    ro.batch_per_replica = options.batch_per_replica;
    ro.shuffle = options.shuffle;
    ro.seed = options.seed;
    ro.prefetch_depth = options.ingest.prefetch_depth;
    ingest_reader = std::make_unique<data::IngestReader>(*ingest_store, ro);
  } else {
    batches = std::make_unique<BatchIterator>(train, global_batch,
                                              options.shuffle, options.seed);
    // Refilled in place by gather_into each step; replaces the per-step
    // slice() Dataset allocations of the old loop.
    Shape xs = train.x.shape();
    xs[0] = options.batch_per_replica;
    Shape ys = train.y.shape();
    ys[0] = options.batch_per_replica;
    shard_bufs.reserve(static_cast<std::size_t>(p));
    for (Index r = 0; r < p; ++r) {
      shard_bufs.push_back(Dataset{Tensor(xs), Tensor(ys)});
    }
  }
  // Exact per-step wire bytes: top-k keeps max(1, round(f*numel)) entries
  // per reduction unit (whole gradient, or each bucket), 8B each on the
  // wire; dense sends 4B per element regardless of bucketing.
  auto topk_entries = [&](Index numel) {
    return std::max<Index>(
        1, static_cast<Index>(std::llround(options.gradient_topk_fraction *
                                           static_cast<double>(numel))));
  };
  if (compress) {
    Index entries = 0;
    if (bucketed) {
      for (const auto& b : plan.buckets) entries += topk_entries(b.numel);
    } else {
      entries = topk_entries(grad_size);
    }
    result.grad_bytes_per_step =
        SparseGradient::kWireBytesPerEntry * static_cast<double>(entries);
  } else {
    result.grad_bytes_per_step = 4.0 * static_cast<double>(grad_size);
  }
  result.buckets_per_step = bucketed ? plan.num_buckets() : 1;

  // Rank-0 instrumentation accumulators: written only by rank 0's thread,
  // read after the join, divided into per-step means at the end.
  double backward_acc = 0.0, busy_acc = 0.0, exposed_acc = 0.0;
  // Legacy-path ingest accounting (inline assembly: busy == exposed).
  double ingest_busy_acc = 0.0, ingest_exposed_acc = 0.0;

  // Gradient buffers persist across steps (fully overwritten each step), so
  // the steady-state loop does not touch the heap for them.
  std::vector<std::vector<float>> grad_bufs(
      static_cast<std::size_t>(p),
      std::vector<float>(static_cast<std::size_t>(grad_size)));

  ShmCommunicator comm(p);
  Stopwatch clock;

  for (Index epoch = 0; epoch < options.epochs; ++epoch) {
    std::atomic<double> epoch_loss{0.0};
    for (Index step = 0; step < steps_per_epoch; ++step) {
      const data::StepBatch* step_batch = nullptr;
      if (use_ingest) {
        step_batch = &ingest_reader->acquire();
      } else {
        Stopwatch ingest_clock;
        const std::span<const Index> idx = batches->next_indices();
        for (Index r = 0; r < p; ++r) {
          gather_into(
              train,
              idx.subspan(
                  static_cast<std::size_t>(r * options.batch_per_replica),
                  static_cast<std::size_t>(options.batch_per_replica)),
              shard_bufs[static_cast<std::size_t>(r)]);
        }
        const double s = ingest_clock.seconds();
        ingest_busy_acc += s;
        ingest_exposed_acc += s;
      }
      // Launch one thread per replica for fwd/bwd + all-reduce.
      std::vector<std::thread> threads;
      threads.reserve(static_cast<std::size_t>(p));
      for (Index r = 0; r < p; ++r) {
        threads.emplace_back([&, r] {
          const auto sri = static_cast<std::size_t>(r);
          const Tensor& shard_x = use_ingest ? step_batch->shards[sri].x
                                             : shard_bufs[sri].x;
          const Tensor& shard_y = use_ingest ? step_batch->shards[sri].y
                                             : shard_bufs[sri].y;
          Model& m = replicas[static_cast<std::size_t>(r)];
          const Tensor pred = m.forward(shard_x, /*training=*/true);
          const float l = loss.value(pred, shard_y);
          Tensor dy = loss.grad(pred, shard_y);
          if (options.precision.loss_scale != 1.0f) {
            dy.scale(options.precision.loss_scale);
          }
          const auto ri = static_cast<std::size_t>(r);
          auto& buf = grad_bufs[ri];
          double bwd_s = 0.0, busy_s = 0.0, exposed_s = 0.0;
          if (!bucketed) {
            Stopwatch bwd_clock;
            m.backward(dy);
            m.copy_grads_to(buf);
            if (compress) {
              // Each replica contributes only its top-k entries; the dropped
              // mass rides the error-feedback residual into the next step.
              const SparseGradient sparse = compressors[ri].compress(buf);
              std::fill(buf.begin(), buf.end(), 0.0f);
              sparse.add_to(buf);
            }
            bwd_s = bwd_clock.seconds();
            // Average gradients across replicas: real ring all-reduce.
            Stopwatch comm_clock;
            comm.allreduce_ring(r, buf);
            busy_s = exposed_s = comm_clock.seconds();
          } else {
            // Stream buckets out as backward produces them.  Each completed
            // bucket is (optionally compressed and) all-reduced over its
            // window of the flat gradient; with overlap_comm the reduction
            // runs on the comm engine while backward keeps computing.
            BucketAssembler assembler(plan);
            std::vector<PendingCollective> handles(
                static_cast<std::size_t>(plan.num_buckets()));
            double hook_comm_s = 0.0;
            auto launch = [&](Index b) {
              const GradBucket& bk = plan.buckets[static_cast<std::size_t>(b)];
              const std::span<float> window(
                  buf.data() + bk.offset, static_cast<std::size_t>(bk.numel));
              if (compress) {
                const SparseGradient sparse =
                    bucket_compressors[ri][static_cast<std::size_t>(b)]
                        .compress(window);
                std::fill(window.begin(), window.end(), 0.0f);
                sparse.add_to(window);
              }
              if (options.overlap_comm) {
                handles[static_cast<std::size_t>(b)] =
                    comm.allreduce_ring_start(r, window, bk.offset, grad_size);
              } else {
                Stopwatch comm_clock;
                comm.allreduce_ring(r, window, bk.offset, grad_size);
                hook_comm_s += comm_clock.seconds();
              }
            };
            Stopwatch bwd_clock;
            m.backward(dy, [&](Index layer) {
              const auto& e = extents[static_cast<std::size_t>(layer)];
              if (e.numel > 0) {
                m.copy_layer_grads_to(
                    layer, std::span<float>(buf.data() + e.offset,
                                            static_cast<std::size_t>(e.numel)));
              }
              const Index b = assembler.mark_ready(layer);
              if (b >= 0) launch(b);
            });
            bwd_s = bwd_clock.seconds() - hook_comm_s;
            if (options.overlap_comm) {
              Stopwatch wait_clock;
              for (auto& h : handles) h.wait();
              exposed_s = wait_clock.seconds();
              for (auto& h : handles) busy_s += h.busy_seconds();
            } else {
              busy_s = exposed_s = hook_comm_s;
            }
          }
          if (r == 0) {
            backward_acc += bwd_s;
            busy_acc += busy_s;
            exposed_acc += exposed_s;
          }
          const float scale =
              1.0f / (static_cast<float>(p) * options.precision.loss_scale);
          for (float& v : buf) v *= scale;
          m.set_grads_from(buf);
          const auto ps = m.params();
          const auto gs = m.grads();
          optimizers[static_cast<std::size_t>(r)]->step(ps, gs);
          // Accumulate the global loss (pre-scaling) for reporting.
          double expected = epoch_loss.load();
          while (!epoch_loss.compare_exchange_weak(
              expected, expected + static_cast<double>(l))) {
          }
        });
      }
      for (auto& t : threads) t.join();
      if (use_ingest) ingest_reader->release();
      ++result.steps;
    }
    result.epoch_loss.push_back(static_cast<float>(
        epoch_loss.load() / static_cast<double>(steps_per_epoch * p)));
  }
  result.measured_seconds = clock.seconds();
  if (use_ingest) {
    ingest_busy_acc = ingest_reader->assemble_busy_s();
    ingest_exposed_acc = ingest_reader->exposed_wait_s();
  }
  if (result.steps > 0) {
    const double steps = static_cast<double>(result.steps);
    result.measured_backward_s = backward_acc / steps;
    result.measured_comm_busy_s = busy_acc / steps;
    result.measured_exposed_comm_s = exposed_acc / steps;
    result.measured_overlap_fraction =
        busy_acc > 0.0
            ? std::clamp(1.0 - exposed_acc / busy_acc, 0.0, 1.0)
            : 0.0;
    result.measured_ingest_busy_s = ingest_busy_acc / steps;
    result.measured_exposed_ingest_s = ingest_exposed_acc / steps;
    result.measured_ingest_overlap_fraction =
        ingest_busy_acc > 0.0
            ? std::clamp(1.0 - ingest_exposed_acc / ingest_busy_acc, 0.0, 1.0)
            : 0.0;
  }

  if (out_model != nullptr) {
    *out_model = factory();
    std::vector<float> weights(
        static_cast<std::size_t>(replicas[0].num_params()));
    replicas[0].copy_weights_to(weights);
    out_model->set_weights_from(weights);
  }
  return result;
}

double modeled_allreduce_seconds(const hpcsim::Fabric& fabric,
                                 hpcsim::AllReduceAlgo algo,
                                 Index participants, double grad_bytes) {
  CANDLE_CHECK(participants >= 1, "need at least one participant");
  return hpcsim::allreduce_time_s(fabric, algo, participants, grad_bytes);
}

void annotate_with_fabric(DataParallelResult& result,
                          const hpcsim::Fabric& fabric,
                          hpcsim::AllReduceAlgo algo, Index replicas) {
  result.modeled_comm_seconds_per_step = modeled_allreduce_seconds(
      fabric, algo, replicas, result.grad_bytes_per_step);
}

}  // namespace candle::parallel

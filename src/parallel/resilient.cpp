#include "parallel/resilient.hpp"

#include <algorithm>
#include <atomic>
#include <cmath>
#include <cstdio>
#include <fstream>
#include <limits>
#include <memory>
#include <thread>

#include "data/reader.hpp"
#include "nn/serialize.hpp"
#include "parallel/bucketing.hpp"
#include "parallel/collectives.hpp"
#include "parallel/param_server.hpp"
#include "runtime/timer.hpp"

namespace candle::parallel {

namespace {

using runtime::FaultKind;

/// Flags shared by the replica threads of one step attempt.
struct AttemptOutcome {
  std::atomic<Index> crashed{0};           // replicas that died this attempt
  std::atomic<bool> collective_failed{false};
  std::atomic<bool> corrupt{false};
};

/// What one rank does in one mitigated step attempt (decided on the main
/// thread from the deterministic fault schedule, never from arrival order).
enum class StepRole {
  Fresh,         // compute a fresh gradient and contribute it at weight 1
  StaleCapture,  // compute a fresh gradient, save it for a later stale push
  StalePush,     // contribute the saved stale gradient, staleness-weighted
  Stalled,       // neither compute nor contribute; receive the quorum result
};

bool computes(StepRole r) {
  return r == StepRole::Fresh || r == StepRole::StaleCapture;
}

bool contributes(StepRole r) {
  return r == StepRole::Fresh || r == StepRole::StalePush;
}

bool all_finite(const std::vector<float>& v) {
  for (float x : v) {
    if (!std::isfinite(x)) return false;
  }
  return true;
}

}  // namespace

const char* mitigation_mode_name(MitigationMode mode) {
  switch (mode) {
    case MitigationMode::None:             return "none";
    case MitigationMode::Backup:           return "backup";
    case MitigationMode::BoundedStaleness: return "stale";
  }
  return "unknown";
}

ResilientResult train_resilient(const ModelFactory& factory,
                                const OptimizerFactory& opt_factory,
                                const Dataset& train, const Loss& loss,
                                const ResilientOptions& options,
                                Model* out_model) {
  const DataParallelOptions& t = options.train;
  CANDLE_CHECK(t.replicas >= 1, "need at least one replica");
  CANDLE_CHECK(t.epochs >= 1, "need at least one epoch");
  CANDLE_CHECK(t.batch_per_replica >= 1, "empty replica batch");
  CANDLE_CHECK(!options.checkpoint_path.empty(),
               "resilient training needs a checkpoint path");
  CANDLE_CHECK(options.step_seconds > 0.0, "step_seconds must be positive");
  CANDLE_CHECK(options.checkpoint_write_retries >= 0,
               "checkpoint_write_retries must be non-negative");
  CANDLE_CHECK(options.checkpoint_retry_backoff_s >= 0.0,
               "checkpoint_retry_backoff_s must be non-negative");
  // Bit-exact restore requires every piece of training state to live in the
  // checkpoint; two features keep state elsewhere and are rejected here.
  CANDLE_CHECK(t.gradient_topk_fraction == 1.0,
               "resilient trainer requires dense gradients: the top-k "
               "error-feedback residual is per-replica state that "
               "checkpoints do not capture");
  CANDLE_CHECK(!t.precision.stochastic_weight_rounding,
               "stochastic-rounding RNG stream is not checkpointed");
  const MitigationMode mode = options.mitigation;
  if (mode == MitigationMode::Backup) {
    CANDLE_CHECK(options.backup_workers >= 1 &&
                     options.backup_workers < t.replicas,
                 "backup workers must leave a non-empty quorum");
  }
  if (mode == MitigationMode::BoundedStaleness) {
    CANDLE_CHECK(options.staleness_bound >= 1,
                 "staleness bound must allow at least one step of lag");
  }

  const Index p0 = t.replicas;
  const Index b = t.batch_per_replica;
  CANDLE_CHECK(train.size() >= p0 * b, "dataset smaller than one global batch");
  const Index steps_per_epoch = train.size() / (p0 * b);
  CANDLE_CHECK(steps_per_epoch >= 1, "no full global batch available");
  const Index planned = t.epochs * steps_per_epoch;

  Index k = options.checkpoint_every_steps;
  if (k <= 0) {
    // Young/Daly interval from the machine model, mapped to steps by the
    // nominal step cost.
    const double interval_s =
        hpcsim::optimal_checkpoint_interval_s(options.resilience);
    k = std::clamp<Index>(
        static_cast<Index>(std::llround(interval_s / options.step_seconds)),
        1, planned);
  }

  runtime::FaultInjector injector(options.faults);
  ResilientResult result;
  result.planned_steps = planned;
  result.checkpoint_interval_steps = k;
  result.rank_stall_s.assign(static_cast<std::size_t>(p0), 0.0);
  result.dropped_tail_samples = train.size() - steps_per_epoch * (p0 * b);
  if (result.dropped_tail_samples > 0) {
    std::fprintf(stderr,
                 "[resilient] dropping %lld of %lld samples per epoch "
                 "(tail smaller than the global batch of %lld)\n",
                 static_cast<long long>(result.dropped_tail_samples),
                 static_cast<long long>(train.size()),
                 static_cast<long long>(p0 * b));
  }

  // ---- live training state --------------------------------------------------
  Index live_p = p0;
  std::vector<Model> replicas;
  std::vector<std::unique_ptr<Optimizer>> optimizers;
  auto build_replica = [&] {
    Model m = factory();
    CANDLE_CHECK(m.built(), "model factory must return a built model");
    m.set_compute_precision(t.precision.compute);
    return m;
  };
  auto build_optimizer = [&] {
    auto o = opt_factory();
    o->set_update_precision({t.precision.weight_storage,
                             t.precision.stochastic_weight_rounding,
                             t.seed ^ 0xf00d});
    return o;
  };
  auto rebuild_fleet = [&] {
    replicas.clear();
    optimizers.clear();
    for (Index r = 0; r < live_p; ++r) {
      replicas.push_back(build_replica());
      optimizers.push_back(build_optimizer());
    }
  };
  rebuild_fleet();
  const Index grad_size = replicas[0].grad_size();

  // Bucketed / overlapped gradient all-reduce composes with the crash and
  // corruption recovery paths (a failed in-flight bucket never updated any
  // weight, so restart and shrink semantics are unchanged) but not with the
  // quorum-based mitigation modes, whose partial collective has no windowed
  // form.  The plan depends only on layer shapes, so it survives fleet
  // rebuilds and elastic shrinks untouched.
  const bool bucketed = t.bucket_bytes > 0;
  CANDLE_CHECK(!t.overlap_comm || bucketed,
               "overlap_comm requires bucket_bytes > 0");
  CANDLE_CHECK(!bucketed || mode == MitigationMode::None,
               "bucketed gradient all-reduce requires MitigationMode::None: "
               "the quorum collective of the mitigation modes has no "
               "windowed (bucketed) form");
  BucketPlan plan;
  std::vector<Model::GradExtent> extents;
  if (bucketed) {
    extents = replicas[0].grad_extents();
    std::vector<Index> layer_numel;
    layer_numel.reserve(extents.size());
    for (const auto& e : extents) layer_numel.push_back(e.numel);
    plan = plan_buckets(layer_numel, t.bucket_bytes);
    CANDLE_CHECK(plan.total_numel == grad_size, "bucket plan size mismatch");
  }

  auto fresh_comm = [&] {
    auto c = std::make_shared<ShmCommunicator>(live_p);
    c->set_timeout(options.collective_timeout);
    return c;
  };
  std::shared_ptr<ShmCommunicator> comm = fresh_comm();
  const double grad_bytes =
      static_cast<double>(grad_size) * static_cast<double>(sizeof(float));

  // ---- straggler-mitigation state -------------------------------------------
  // All of it is derived from the deterministic schedule on the main thread;
  // replica threads only read the per-step roles.  Cleared on every recovery
  // (the rebuilt fleet starts step-aligned, like a relaunched job).
  std::vector<Index> stall_left;     // steps a rank remains stalled
  std::vector<Index> stale_age;      // commits since a pending stale capture
  std::vector<char> stale_pending;   // rank holds an unapplied stale gradient
  std::vector<std::vector<float>> stale_grad;
  StalenessMeter staleness;
  auto reset_mitigation_state = [&] {
    stall_left.assign(static_cast<std::size_t>(live_p), 0);
    stale_age.assign(static_cast<std::size_t>(live_p), 0);
    stale_pending.assign(static_cast<std::size_t>(live_p), 0);
    stale_grad.assign(static_cast<std::size_t>(live_p), {});
  };
  reset_mitigation_state();

  // ---- deterministic batch stream -------------------------------------------
  // The stream is a pure function of (seed, batch size); replay after a
  // restore re-consumes the exact same batches, which is what makes
  // checkpoint recovery bit-identical to the failure-free run.
  //
  // Two implementations share that contract:
  //  * legacy BatchIterator — stateful shuffle RNG, so repositioning means
  //    replaying every batch from the stream anchor (O(steps));
  //  * ingest reader (t.ingest.enabled) — (seed, epoch)-pure permutations,
  //    so a stream position is just a cursor and repositioning is an O(1)
  //    seek.  The cursor (epoch, step, stream seed) is recorded in the v3
  //    checkpoint, so a restore resumes the sample stream bit-identically
  //    without replay.
  const bool use_ingest = t.ingest.enabled;
  std::uint64_t iter_seed = t.seed;
  Index iter_base = 0;   // committed step at which the current stream started
  Index committed = 0;
  std::unique_ptr<BatchIterator> batches;
  std::unique_ptr<data::DatasetSource> ingest_source;
  std::unique_ptr<data::SampleStore> ingest_store;
  std::unique_ptr<data::IngestReader> reader;
  if (use_ingest) {
    ingest_source = std::make_unique<data::DatasetSource>(
        train, t.ingest.synthetic_fetch_cost_s);
    data::SampleStoreOptions so;
    so.byte_budget = t.ingest.store_byte_budget;
    so.fetch_threads = t.ingest.fetch_threads;
    ingest_store = std::make_unique<data::SampleStore>(*ingest_source, so);
  }
  // The iterator yields a short tail batch when the global batch does not
  // divide the dataset (the norm after an elastic shrink re-shards at p-1
  // width).  Short batches are skipped deterministically, so the stream of
  // full batches is still a pure function of (seed, width) and replay after
  // a restore stays aligned.  (The ingest reader never emits short batches:
  // its sample list drops the tail by construction.)
  auto next_full = [&]() -> Dataset {
    for (;;) {
      Dataset g = batches->next();
      if (g.size() == live_p * b) return g;
    }
  };
  // Current stream position of the NEXT batch, as a flat count of full
  // batches since the stream anchor.
  auto stream_position = [&] { return committed - iter_base; };
  auto reset_stream = [&] {
    if (use_ingest) {
      // (Re)build the reader at the current width/seed — width changes only
      // on elastic shrink, which passes through here — then O(1)-seek to
      // the current stream position.
      data::ReaderOptions ro;
      ro.replicas = live_p;
      ro.batch_per_replica = b;
      ro.shuffle = t.shuffle;
      ro.seed = iter_seed;
      ro.prefetch_depth = t.ingest.prefetch_depth;
      reader = std::make_unique<data::IngestReader>(*ingest_store, ro);
      reader->seek(reader->list().cursor_at(stream_position()));
      return;
    }
    batches = std::make_unique<BatchIterator>(train, live_p * b, t.shuffle,
                                              iter_seed);
    for (Index s = iter_base; s < committed; ++s) (void)next_full();
  };
  reset_stream();

  std::vector<float> step_loss;  // mean loss of each committed step
  float last_step_loss = 0.0f;   // fallback when no rank computed this step
  Index last_ckpt_step = -1;
  Index next_ckpt = 0;  // write the initial checkpoint before step 0
  Index recoveries = 0;

  auto write_checkpoint = [&] {
    // A failed write is retried (bounded, exponential backoff) before the
    // interval is declared lost: a transient writer fault costs one retry
    // instead of a whole checkpoint interval of replay.  Each attempt polls
    // the injector independently, so one scheduled CheckpointWriteFail
    // models a transient fault (the retry succeeds) and retries+1 scheduled
    // at the same step model a persistent one (the interval is lost).
    const Index attempts = 1 + options.checkpoint_write_retries;
    for (Index attempt = 0; attempt < attempts; ++attempt) {
      if (injector.checkpoint_should_fail(committed)) {
        // Simulate a writer killed mid-checkpoint: leave a truncated temp
        // file behind and never rename — the previous good checkpoint stays
        // in place (this is exactly what the atomic writer guarantees).
        std::ofstream junk(options.checkpoint_path + ".tmp",
                           std::ios::binary | std::ios::trunc);
        junk << "truncated by injected fault";
        if (attempt + 1 < attempts) {
          ++result.checkpoint_retries;
          injector.record(committed, -1, FaultKind::CheckpointWriteFail,
                          "retried",
                          "checkpoint write failed; retrying (attempt " +
                              std::to_string(attempt + 2) + "/" +
                              std::to_string(attempts) + ")");
          if (options.checkpoint_retry_backoff_s > 0.0) {
            std::this_thread::sleep_for(std::chrono::duration<double>(
                options.checkpoint_retry_backoff_s *
                std::pow(2.0, static_cast<double>(attempt))));
          }
          continue;
        }
        ++result.checkpoint_failures;
        injector.record(committed, -1, FaultKind::CheckpointWriteFail,
                        "injected",
                        "checkpoint write failed after " +
                            std::to_string(attempts) +
                            " attempts; previous checkpoint kept");
        return;
      }
      if (use_ingest) {
        // v3: record the ingest stream position of the next batch so a
        // restore can seek instead of replaying from the stream anchor.
        const data::StreamCursor c =
            reader->list().cursor_at(stream_position());
        save_checkpoint(replicas[0], optimizers[0].get(), committed, c.epoch,
                        c.step, iter_seed, options.checkpoint_path);
      } else {
        save_checkpoint(replicas[0], optimizers[0].get(), committed,
                        options.checkpoint_path);
      }
      last_ckpt_step = committed;
      ++result.checkpoints_written;
      return;
    }
  };

  auto restore_checkpoint = [&](FaultKind why) {
    rebuild_fleet();
    bool have_cursor = false;
    data::StreamCursor ckpt_cursor;
    std::uint64_t ckpt_seed = 0;
    if (last_ckpt_step < 0) {
      // No durable checkpoint yet: cold restart from the deterministic
      // factory state (still bit-identical — same factory, same seed).
      committed = 0;
    } else {
      for (Index r = 0; r < live_p; ++r) {
        const CheckpointMeta meta = load_checkpoint(
            replicas[r], optimizers[r].get(), options.checkpoint_path);
        committed = meta.step;
        if (meta.has_cursor) {
          have_cursor = true;
          ckpt_cursor = {meta.cursor_epoch, meta.cursor_step};
          ckpt_seed = meta.stream_seed;
        }
      }
    }
    step_loss.resize(static_cast<std::size_t>(committed));
    if (use_ingest && have_cursor && ckpt_seed == iter_seed) {
      // O(1) resume: seek straight to the checkpointed cursor — no epoch
      // replay.  (Seed mismatch means the stream was re-anchored by a
      // shrink after this checkpoint; fall through to the rebuild below.)
      iter_base = committed - reader->list().position(ckpt_cursor);
      reader->seek(ckpt_cursor);
    } else {
      if (committed < iter_base) iter_base = committed;  // re-anchor stream
      reset_stream();
    }
    reset_mitigation_state();  // the relaunched fleet starts step-aligned
    next_ckpt = committed + k;
    ++result.restarts;
    injector.record(committed, -1, why, "recovered",
                    "restored checkpoint; resuming at step " +
                        std::to_string(committed) + " with " +
                        std::to_string(live_p) + " replicas");
  };

  Stopwatch clock;
  while (committed < planned) {
    CANDLE_CHECK(recoveries <= options.max_recoveries,
                 "recovery limit exceeded — runaway fault schedule?");
    if (committed >= next_ckpt) {
      write_checkpoint();
      next_ckpt = committed + k;
    }

    Dataset global;
    const data::StepBatch* step_batch = nullptr;
    if (use_ingest) {
      step_batch = &reader->acquire();
    } else {
      global = next_full();
    }
    ++result.executed_steps;
    AttemptOutcome outcome;
    std::vector<float> rank_loss(static_cast<std::size_t>(live_p), 0.0f);
    std::vector<std::vector<float>> grad_bufs(
        static_cast<std::size_t>(live_p),
        std::vector<float>(static_cast<std::size_t>(grad_size)));

    // ---- role assignment (main thread, from the deterministic schedule) -----
    // Participant sets are a pure function of the seeded fault schedule,
    // never of thread arrival order, so mitigated runs replay bit-identically.
    std::vector<StepRole> roles(static_cast<std::size_t>(live_p),
                                StepRole::Fresh);
    std::vector<float> push_weight(static_cast<std::size_t>(live_p), 1.0f);
    std::vector<double> none_delay(static_cast<std::size_t>(live_p), 0.0);
    std::vector<Index> push_corrupt(static_cast<std::size_t>(live_p), 0);
    float divisor = static_cast<float>(live_p);
    Index contributors = live_p;
    if (mode != MitigationMode::None) {
      std::vector<char> capture_now(static_cast<std::size_t>(live_p), 0);
      for (Index r = 0; r < live_p; ++r) {
        const auto i = static_cast<std::size_t>(r);
        if (auto ev = injector.poll(FaultKind::Straggler, committed, r)) {
          const Index sigma = std::max<Index>(
              1,
              static_cast<Index>(std::ceil(ev->delay_s / options.step_seconds)));
          ++result.stragglers;
          result.straggler_delay_s += ev->delay_s;
          result.rank_stall_s[i] += ev->delay_s;
          injector.record(committed, r, FaultKind::Straggler, "injected",
                          "stalled " + std::to_string(ev->delay_s) + " s (" +
                              std::to_string(sigma) + " steps; mode " +
                              mitigation_mode_name(mode) + ")");
          if (mode == MitigationMode::BoundedStaleness && stall_left[i] == 0 &&
              stale_pending[i] == 0) {
            capture_now[i] = 1;  // compute now, push staleness-weighted later
          }
          stall_left[i] += sigma;
        }
      }
      if (mode == MitigationMode::Backup) {
        // The quorum commits at live_p - k arrivals.  With more than k ranks
        // stalled the step cannot commit, so everyone waits (modeled time)
        // until enough stalls drain — the residual cost mitigation can't hide.
        const Index quorum =
            std::max<Index>(1, live_p - options.backup_workers);
        auto fresh_count = [&] {
          Index n = 0;
          for (const Index s : stall_left) {
            if (s == 0) ++n;
          }
          return n;
        };
        while (fresh_count() < quorum) {
          result.modeled_stall_s += options.step_seconds;
          for (auto& s : stall_left) {
            if (s > 0) --s;
          }
        }
      } else {
        // Bounded staleness: a pending rank at the bound forces the quorum
        // to wait out its remaining stall (SSP semantics — staleness never
        // exceeds the bound)...
        for (Index r = 0; r < live_p; ++r) {
          const auto i = static_cast<std::size_t>(r);
          if (stale_pending[i] != 0 && stall_left[i] > 0 &&
              stale_age[i] >= options.staleness_bound) {
            result.modeled_stall_s +=
                static_cast<double>(stall_left[i]) * options.step_seconds;
            stall_left[i] = 0;
            ++result.stale_clamped;
          }
        }
        // ...and if literally every rank is stalled, modeled time passes
        // until one of them can contribute again.  A rank capturing its
        // stale gradient this step does not contribute to this commit —
        // unless the whole fleet stalled and the wait below drained its own
        // stall: then there is nothing left to defer, so it is demoted to a
        // fresh contributor.  (Without the demotion, a step where every
        // live rank straggles from a fresh state could never commit: the
        // drain loop decrements stall_left but capture flags never change.)
        auto any_contributor = [&] {
          bool any = false;
          for (Index r = 0; r < live_p; ++r) {
            const auto i = static_cast<std::size_t>(r);
            if (stall_left[i] != 0) continue;
            if (capture_now[i] != 0) capture_now[i] = 0;  // stall waited out
            any = true;
          }
          return any;
        };
        while (!any_contributor()) {
          result.modeled_stall_s += options.step_seconds;
          for (auto& s : stall_left) {
            if (s > 0) --s;
          }
        }
      }
      double wsum = 0.0;
      contributors = 0;
      for (Index r = 0; r < live_p; ++r) {
        const auto i = static_cast<std::size_t>(r);
        if (capture_now[i] != 0) {
          roles[i] = StepRole::StaleCapture;
        } else if (stall_left[i] > 0) {
          roles[i] = StepRole::Stalled;
        } else if (mode == MitigationMode::BoundedStaleness &&
                   stale_pending[i] != 0) {
          roles[i] = StepRole::StalePush;
          push_weight[i] = 1.0f / (1.0f + static_cast<float>(stale_age[i]));
        } else {
          roles[i] = StepRole::Fresh;
        }
        if (contributes(roles[i])) {
          ++contributors;
          wsum += static_cast<double>(push_weight[i]);
        }
      }
      CANDLE_CHECK(contributors >= 1, "mitigation left an empty quorum");
      divisor = static_cast<float>(wsum);
      // Corruption events targeting ranks that compute no fresh gradient
      // this step are consumed here (the thread-side poll only runs for
      // computing roles), so composed schedules stay truthful and the
      // injector drains.  A stale push is a live contribution: the
      // corruption lands on the pushed buffer and is detected collectively
      // after the reduce like any other.  A stalled rank has no gradient at
      // all this step, so its event is recorded as skipped.
      for (Index r = 0; r < live_p; ++r) {
        const auto i = static_cast<std::size_t>(r);
        if (computes(roles[i])) continue;
        if (auto ev =
                injector.poll(FaultKind::GradientCorruption, committed, r)) {
          if (roles[i] == StepRole::StalePush) {
            push_corrupt[i] = std::min<Index>(
                std::max<Index>(ev->corrupt_count, 1), grad_size);
            injector.record(committed, r, FaultKind::GradientCorruption,
                            "injected",
                            std::to_string(push_corrupt[i]) +
                                " stale-push gradient entries corrupted");
          } else {
            ++result.corruptions_skipped;
            injector.record(committed, r, FaultKind::GradientCorruption,
                            "skipped",
                            "rank stalled this step; no gradient to corrupt");
          }
        }
      }
    }

    std::vector<std::thread> threads;
    threads.reserve(static_cast<std::size_t>(live_p));
    for (Index r = 0; r < live_p; ++r) {
      threads.emplace_back([&, r] {
        const auto i = static_cast<std::size_t>(r);
        if (auto ev = injector.poll(FaultKind::ReplicaCrash, committed, r)) {
          outcome.crashed.fetch_add(1);
          injector.record(committed, r, FaultKind::ReplicaCrash, "injected",
                          ev->announce
                              ? "announced crash"
                              : "silent crash (left for timeout detection)");
          if (ev->announce) comm->mark_failed(r);
          return;  // the replica dies here, mid-step
        }
        if (mode == MitigationMode::None) {
          // Synchronous tolerance: the straggler really sleeps and every
          // other rank waits for it inside the collective.
          if (auto ev = injector.poll(FaultKind::Straggler, committed, r)) {
            none_delay[i] = ev->delay_s;
            injector.record(committed, r, FaultKind::Straggler, "injected",
                            "stalled " + std::to_string(ev->delay_s) + " s");
            std::this_thread::sleep_for(
                std::chrono::duration<double>(ev->delay_s));
          }
        }
        Model& m = replicas[i];
        auto& buf = grad_bufs[i];
        const StepRole role = roles[i];
        if (computes(role)) {
          // Shard source: the ingest reader hands each rank its assembled
          // slot tensors (read-only, shared with no one); the legacy path
          // still slices the gathered global batch.
          Dataset legacy_shard;
          const Tensor* sx;
          const Tensor* sy;
          if (use_ingest) {
            sx = &step_batch->shards[i].x;
            sy = &step_batch->shards[i].y;
          } else {
            const Index lo = r * b;
            legacy_shard = slice(global, lo, lo + b);
            sx = &legacy_shard.x;
            sy = &legacy_shard.y;
          }
          const Tensor pred = m.forward(*sx, /*training=*/true);
          rank_loss[i] = loss.value(pred, *sy);
          Tensor dy = loss.grad(pred, *sy);
          if (t.precision.loss_scale != 1.0f) dy.scale(t.precision.loss_scale);
          if (!bucketed) {
            m.backward(dy);
            m.copy_grads_to(buf);
            if (auto ev = injector.poll(FaultKind::GradientCorruption,
                                        committed, r)) {
              const Index n = std::min<Index>(
                  std::max<Index>(ev->corrupt_count, 1), grad_size);
              for (Index j = 0; j < n; ++j) {
                buf[static_cast<std::size_t>(j)] =
                    std::numeric_limits<float>::quiet_NaN();
              }
              injector.record(committed, r, FaultKind::GradientCorruption,
                              "injected",
                              std::to_string(n) +
                                  " gradient entries corrupted");
            }
          } else {
            // Bucketed path (mode None only, so every live rank is here).
            // A corruption event must land BEFORE its bucket ships, so it is
            // polled up front and poisoned into each layer segment as the
            // hook copies it out — the same flat prefix [0, n) the
            // monolithic path poisons, just injected stream-side.
            Index corrupt_n = 0;
            if (auto ev = injector.poll(FaultKind::GradientCorruption,
                                        committed, r)) {
              corrupt_n = std::min<Index>(
                  std::max<Index>(ev->corrupt_count, 1), grad_size);
              injector.record(committed, r, FaultKind::GradientCorruption,
                              "injected",
                              std::to_string(corrupt_n) +
                                  " gradient entries corrupted");
            }
            BucketAssembler assembler(plan);
            std::vector<PendingCollective> handles(
                static_cast<std::size_t>(plan.num_buckets()));
            try {
              m.backward(dy, [&](Index layer) {
                const auto& e = extents[static_cast<std::size_t>(layer)];
                if (e.numel > 0) {
                  m.copy_layer_grads_to(
                      layer,
                      std::span<float>(buf.data() + e.offset,
                                       static_cast<std::size_t>(e.numel)));
                  for (Index j = e.offset;
                       j < std::min(e.offset + e.numel, corrupt_n); ++j) {
                    buf[static_cast<std::size_t>(j)] =
                        std::numeric_limits<float>::quiet_NaN();
                  }
                }
                const Index bk = assembler.mark_ready(layer);
                if (bk >= 0) {
                  const GradBucket& gb =
                      plan.buckets[static_cast<std::size_t>(bk)];
                  const std::span<float> window(
                      buf.data() + gb.offset,
                      static_cast<std::size_t>(gb.numel));
                  if (t.overlap_comm) {
                    handles[static_cast<std::size_t>(bk)] =
                        comm->allreduce_ring_start(r, window, gb.offset,
                                                   grad_size);
                  } else {
                    comm->allreduce_ring(r, window, gb.offset, grad_size);
                  }
                }
              });
              if (t.overlap_comm) {
                for (auto& h : handles) h.wait();
              }
            } catch (const RankFailure&) {
              outcome.collective_failed.store(true);
              return;  // recovery happens on the main thread, as monolithic
            }
          }
        }
        if (role == StepRole::StaleCapture) {
          // Save this step's gradient for the staleness-weighted push on
          // rejoin; this step's quorum commits without it.  A corruption
          // injected into the capture rides along and is detected
          // collectively at push time by the post-reduce finiteness check.
          stale_grad[i] = buf;
        } else if (role == StepRole::StalePush) {
          const float w = push_weight[i];
          const auto& saved = stale_grad[i];
          for (std::size_t j = 0; j < buf.size(); ++j) buf[j] = saved[j] * w;
          for (Index j = 0; j < push_corrupt[i]; ++j) {
            buf[static_cast<std::size_t>(j)] =
                std::numeric_limits<float>::quiet_NaN();
          }
        }
        try {
          if (mode == MitigationMode::None) {
            // The bucketed path already reduced every window above.
            if (!bucketed) comm->allreduce_ring(r, buf);
          } else {
            comm->allreduce_quorum(r, buf, contributes(role));
          }
        } catch (const RankFailure&) {
          outcome.collective_failed.store(true);
          return;  // unwound cleanly; recovery happens on the main thread
        }
        // The reduced vector is identical on every rank, so this check is
        // collective: either all live ranks commit or none do.
        if (!all_finite(buf)) {
          outcome.corrupt.store(true);
          return;
        }
        const float scale = 1.0f / (divisor * t.precision.loss_scale);
        for (float& v : buf) v *= scale;
        // Every live rank — contributing or not — applies the identical
        // committed update, which is what keeps the fleet bit-synchronized.
        m.set_grads_from(buf);
        const auto ps = m.params();
        const auto gs = m.grads();
        optimizers[i]->step(ps, gs);
      });
    }
    for (auto& th : threads) th.join();
    // Hand the slot back before any recovery path runs: a seek() during
    // recovery requires no batch to be held.
    if (use_ingest) reader->release();
    if (mode == MitigationMode::None) {
      double worst = 0.0;
      for (Index r = 0; r < live_p; ++r) {
        const double d = none_delay[static_cast<std::size_t>(r)];
        if (d > 0.0) {
          ++result.stragglers;
          result.straggler_delay_s += d;
          result.rank_stall_s[static_cast<std::size_t>(r)] += d;
          worst = std::max(worst, d);
        }
      }
      // Synchronous tolerance: the whole fleet waits out the slowest rank.
      result.modeled_stall_s += worst;
    }

    const bool rank_died = outcome.crashed.load() > 0 ||
                           outcome.collective_failed.load() ||
                           comm->has_failures();
    if (rank_died) {
      result.crashes += outcome.crashed.load();
      ++recoveries;
      const std::vector<Index> alive = comm->alive_ranks();
      {
        std::string dead;
        for (Index r : comm->failed_ranks()) dead += " " + std::to_string(r);
        injector.record(committed, -1, FaultKind::ReplicaCrash, "detected",
                        dead.empty() ? "replica death (no survivors to attribute)"
                                     : "dead ranks:" + dead);
      }
      const bool can_shrink = options.policy == RecoveryPolicy::Shrink &&
                              static_cast<Index>(alive.size()) < live_p &&
                              !alive.empty();
      if (can_shrink) {
        // Elastic continue on the survivors: they all hold the weights of
        // the last committed step (the failed collective never completed,
        // so nobody applied an update), which keeps them consistent.
        ShmCommunicator::Shrunk shrunk = comm->shrink();
        std::vector<Model> kept;
        std::vector<std::unique_ptr<Optimizer>> kept_opt;
        for (Index old : shrunk.old_rank) {
          kept.push_back(std::move(replicas[static_cast<std::size_t>(old)]));
          kept_opt.push_back(
              std::move(optimizers[static_cast<std::size_t>(old)]));
        }
        replicas = std::move(kept);
        optimizers = std::move(kept_opt);
        live_p = shrunk.comm->ranks();
        comm = std::move(shrunk.comm);
        ++result.shrinks;
        reset_mitigation_state();  // survivor ranks are renumbered
        // The batch stream re-shards at the new width from here on.
        iter_seed = t.seed ^ (0x51AB0000ULL +
                              static_cast<std::uint64_t>(result.shrinks));
        iter_base = committed;
        reset_stream();
        injector.record(committed, -1, FaultKind::ReplicaCrash, "recovered",
                        "elastic shrink to " + std::to_string(live_p) +
                            " replicas");
        // Post-recovery checkpoint so later rollbacks stay within the
        // current stream epoch.
        write_checkpoint();
        next_ckpt = committed + k;
      } else {
        comm = fresh_comm();
        restore_checkpoint(FaultKind::ReplicaCrash);
      }
      continue;
    }
    if (outcome.corrupt.load()) {
      ++result.corruptions;
      ++recoveries;
      injector.record(committed, -1, FaultKind::GradientCorruption,
                      "detected", "non-finite gradient after all-reduce");
      restore_checkpoint(FaultKind::GradientCorruption);
      continue;
    }

    // Commit: deterministic reduction, in rank order, of the losses of the
    // ranks that actually computed this step (all of them in None mode).
    double lsum = 0.0;
    Index lcount = 0;
    for (Index r = 0; r < live_p; ++r) {
      const auto i = static_cast<std::size_t>(r);
      if (computes(roles[i])) {
        lsum += static_cast<double>(rank_loss[i]);
        ++lcount;
      }
    }
    const float mean_loss =
        lcount > 0 ? static_cast<float>(lsum / static_cast<double>(lcount))
                   : last_step_loss;
    last_step_loss = mean_loss;
    step_loss.push_back(mean_loss);

    // Wire time of the committed gradient collective, priced at the quorum
    // size (partial collectives are cheaper than full-width ones).
    result.modeled_comm_s += modeled_allreduce_seconds(
        options.fabric, options.allreduce_algo, contributors, grad_bytes);
    if (contributors < live_p) ++result.quorum_commits;

    if (mode == MitigationMode::Backup) {
      for (Index r = 0; r < live_p; ++r) {
        if (roles[static_cast<std::size_t>(r)] == StepRole::Stalled) {
          ++result.late_discards;  // its gradient for this step arrives late
        }
      }
    } else if (mode == MitigationMode::BoundedStaleness) {
      for (Index r = 0; r < live_p; ++r) {
        const auto i = static_cast<std::size_t>(r);
        if (roles[i] == StepRole::StalePush) {
          staleness.record(stale_age[i]);
          ++result.stale_applied;
          stale_pending[i] = 0;
          stale_age[i] = 0;
          stale_grad[i].clear();
        } else if (roles[i] == StepRole::StaleCapture) {
          stale_pending[i] = 1;
          stale_age[i] = 1;  // this commit already passed the capture by
        } else if (stale_pending[i] != 0) {
          ++stale_age[i];
        }
      }
    }
    if (mode != MitigationMode::None) {
      // One committed step of global time drains one step of every stall.
      for (auto& s : stall_left) {
        if (s > 0) --s;
      }
    }
    ++committed;
  }
  result.measured_seconds = clock.seconds();
  result.committed_steps = committed;
  result.final_replicas = live_p;
  result.mean_staleness = staleness.mean();
  result.max_staleness = staleness.max_staleness();

  // Per-epoch means over the committed step losses.
  for (Index e = 0; e < t.epochs; ++e) {
    double sum = 0.0;
    for (Index s = e * steps_per_epoch; s < (e + 1) * steps_per_epoch; ++s) {
      sum += static_cast<double>(step_loss[static_cast<std::size_t>(s)]);
    }
    result.epoch_loss.push_back(
        static_cast<float>(sum / static_cast<double>(steps_per_epoch)));
  }

  // Modeled accounting at nominal costs, against the analytic closed form.
  const double work_s = static_cast<double>(planned) * options.step_seconds;
  const double ckpt_s = hpcsim::checkpoint_cost_s(options.resilience);
  result.modeled_ideal_s = work_s;
  result.modeled_actual_s =
      static_cast<double>(result.executed_steps) * options.step_seconds +
      static_cast<double>(result.checkpoints_written +
                          result.checkpoint_failures +
                          result.checkpoint_retries) *
          ckpt_s +
      static_cast<double>(result.restarts + result.shrinks) *
          options.resilience.restart_overhead_s;
  result.analytic_expected_s = hpcsim::expected_runtime_s(
      options.resilience, work_s, static_cast<double>(k) * options.step_seconds);
  result.analytic_overhead_factor = result.analytic_expected_s / work_s;

  result.log = injector.log();

  if (out_model != nullptr) {
    *out_model = factory();
    std::vector<float> weights(
        static_cast<std::size_t>(replicas[0].num_params()));
    replicas[0].copy_weights_to(weights);
    out_model->set_weights_from(weights);
  }
  return result;
}

}  // namespace candle::parallel

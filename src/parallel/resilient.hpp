// Fault-tolerant synchronous data-parallel training.
//
// Wraps the data-parallel step loop with the full recovery stack the paper's
// 4096-node campaigns needed operationally: training state (weights AND
// optimizer state) is checkpointed at the Young/Daly interval computed from
// hpcsim::resilience, deterministic faults from runtime::FaultInjector are
// injected into the real replica threads, dead ranks surface as typed
// RankFailure from the failure-aware collectives, and recovery either
//
//   * RESTARTS: every replica reloads the last checkpoint and the batch
//     stream is replayed from it — bit-identical to a failure-free run,
//     because checkpoints capture complete state and fault events are
//     one-shot (the node that died stays dead); or
//   * SHRINKS: the communicator is rebuilt over the p-1 survivors
//     (ULFM-style), gradient averaging is rescaled, and training continues
//     elastically — statistically equivalent, not bit-identical.
//
// Transient gradient corruption is detected after the all-reduce (the
// reduced vector is identical on every rank, so detection is collective and
// divergence-free) and repaired by rolling back to the last checkpoint.
// Every fault, detection, and recovery is appended to the structured log.
//
// The result carries both measured wall-clock and a modeled accounting
// (executed steps, checkpoint writes, recoveries, each at their nominal
// cost) so the measured overhead factor can be pinned against the analytic
// expected_runtime_s closed form — the Young/Daly model validated by the
// executable system it was written for.
#pragma once

#include <chrono>
#include <string>

#include "hpcsim/resilience.hpp"
#include "parallel/data_parallel.hpp"
#include "runtime/fault.hpp"

namespace candle::parallel {

/// What to do when a replica dies.
enum class RecoveryPolicy {
  Restart,  // reload last checkpoint at full width (bit-identical)
  Shrink,   // continue on the survivors with rescaled averaging (elastic)
};

/// How the step loop absorbs injected stragglers (node-level performance
/// variability, distinct from crashes).
///
///   None             — synchronous tolerance: every rank waits out the
///                      slowest one (the tail-latency pathology).
///   Backup           — k = backup_workers redundant replicas per step: the
///                      quorum all-reduce commits as soon as replicas - k
///                      gradient sets are in; a straggler's late gradient is
///                      discarded, and the stalled replica stays
///                      bit-synchronized by receiving the committed quorum
///                      gradient and applying the same optimizer step.
///   BoundedStaleness — a straggling rank may fall up to staleness_bound
///                      steps behind; its gradient (captured at the stall
///                      step's weights) is aggregated on rejoin with weight
///                      1/(1+staleness).  If the stall would exceed the
///                      bound, the quorum waits out the remainder (SSP
///                      semantics), so staleness never exceeds the bound.
///
/// Both mitigation modes derive the per-step participant set from the
/// deterministic fault schedule — never from thread arrival order — so runs
/// replay bit-identically from a fixed seed.
enum class MitigationMode {
  None,
  Backup,
  BoundedStaleness,
};

const char* mitigation_mode_name(MitigationMode mode);

struct ResilientOptions {
  DataParallelOptions train;

  /// Deterministic fault schedule (empty = failure-free run).
  runtime::FaultSchedule faults;

  /// Machine model used to derive the Young/Daly checkpoint interval and
  /// the nominal checkpoint/restart costs in the modeled accounting.
  hpcsim::ResilienceConfig resilience;

  /// Nominal modeled cost of one training step, the time unit that maps
  /// step counts onto the resilience model's seconds.
  double step_seconds = 1.0;

  /// Checkpoint every this many committed steps; 0 derives the interval
  /// from optimal_checkpoint_interval_s(resilience) / step_seconds.
  Index checkpoint_every_steps = 0;

  /// Checkpoint file (written atomically; see nn/serialize).  Required.
  std::string checkpoint_path;

  /// A failed checkpoint write is retried this many times (with exponential
  /// backoff, below) before the interval is declared lost and the previous
  /// durable checkpoint kept.  Transient writer faults (full disk blip, I/O
  /// hiccup) then cost a retry, not a whole checkpoint interval of replay.
  Index checkpoint_write_retries = 2;

  /// Initial delay before the first checkpoint retry; doubles per attempt.
  /// 0 retries immediately (tests; real deployments should back off).
  double checkpoint_retry_backoff_s = 0.0;

  RecoveryPolicy policy = RecoveryPolicy::Restart;

  /// Dead-rank suspicion window for the collectives (keep well above the
  /// longest healthy step, including injected straggler delays).
  std::chrono::milliseconds collective_timeout{2000};

  /// Abort if more than this many recoveries fire (runaway guard).
  Index max_recoveries = 64;

  /// Straggler execution discipline (see MitigationMode).
  MitigationMode mitigation = MitigationMode::None;

  /// Backup mode: number of redundant replicas per step (quorum commits at
  /// replicas - backup_workers arrivals).  Must leave a non-empty quorum.
  Index backup_workers = 1;

  /// BoundedStaleness mode: maximum steps a rank may lag before the quorum
  /// waits for it (and the largest staleness a stale gradient can carry).
  Index staleness_bound = 4;

  /// Fabric model pricing the per-step gradient collective in the modeled
  /// accounting; partial (quorum) collectives are priced at the participant
  /// count, full ones at the live width.
  hpcsim::Fabric fabric = hpcsim::fat_tree_fabric();
  hpcsim::AllReduceAlgo allreduce_algo = hpcsim::AllReduceAlgo::Ring;
};

struct ResilientResult {
  std::vector<float> epoch_loss;   // per-epoch mean loss over committed steps
  /// Samples per epoch (at the initial width) that do not fill a full
  /// global batch and are never trained (surfaced, logged once).
  Index dropped_tail_samples = 0;
  Index planned_steps = 0;         // optimizer steps the run must commit
  Index committed_steps = 0;       // equals planned_steps on success
  Index executed_steps = 0;        // attempts, including lost/replayed work
  Index checkpoint_interval_steps = 0;
  Index checkpoints_written = 0;
  Index checkpoint_failures = 0;   // intervals lost: every attempt failed
                                   // (old durable file kept)
  Index checkpoint_retries = 0;    // failed attempts that were retried
  Index crashes = 0;               // replica crashes injected
  Index stragglers = 0;            // straggler delays injected
  Index corruptions = 0;           // gradient corruptions detected
  Index corruptions_skipped = 0;   // corruption events aimed at a stalled
                                   // rank (no gradient existed to corrupt;
                                   // logged as "skipped", never silently
                                   // dropped)
  Index restarts = 0;              // checkpoint-restore recoveries
  Index shrinks = 0;               // elastic p -> p-1 recoveries
  Index final_replicas = 0;
  double measured_seconds = 0.0;   // wall-clock of the threaded run
  double straggler_delay_s = 0.0;  // total injected stall time

  /// Per-rank injected stall time, indexed by the rank id current when the
  /// stall was injected (sized to the initial replica count; after an
  /// elastic shrink, survivor ids are the renumbered dense ranks).  Lets the
  /// straggler harness assert exactly which rank was mitigated.
  std::vector<double> rank_stall_s;

  // ---- straggler-mitigation accounting --------------------------------------
  Index quorum_commits = 0;   // steps committed without full participation
  Index late_discards = 0;    // backup mode: stale gradient sets dropped
  Index stale_applied = 0;    // stale mode: weighted stale gradients merged
  Index stale_clamped = 0;    // stale mode: stalls cut short by the bound
  double mean_staleness = 0.0;  // mean steps-behind of applied stale grads
  Index max_staleness = 0;      // worst applied staleness

  /// Modeled accounting at nominal costs (step_seconds, checkpoint_cost_s,
  /// restart_overhead_s): ideal = planned work only; actual adds lost work,
  /// checkpoint writes, and recovery overheads.
  double modeled_ideal_s = 0.0;
  double modeled_actual_s = 0.0;
  double overhead_factor() const {
    return modeled_ideal_s > 0.0 ? modeled_actual_s / modeled_ideal_s : 1.0;
  }

  /// Straggler stall on the modeled critical path: in None mode the per-step
  /// maximum injected delay (everyone waits for the slowest rank); in the
  /// mitigation modes only the waits the discipline could not hide (quorum
  /// short of replicas - k, or a stall clamped at the staleness bound).
  double modeled_stall_s = 0.0;

  /// Modeled wire time of the committed gradient collectives on
  /// `options.fabric` — partial collectives priced at their quorum size.
  double modeled_comm_s = 0.0;

  /// Modeled end-to-end wall-clock: modeled_actual_s (work + checkpoints +
  /// recoveries) plus stall and wire time.  This is the number the
  /// straggler harness compares across mitigation modes.
  double modeled_wallclock_s() const {
    return modeled_actual_s + modeled_stall_s + modeled_comm_s;
  }

  /// Closed-form prediction for the same work at the same interval from
  /// hpcsim::expected_runtime_s, and its overhead factor.
  double analytic_expected_s = 0.0;
  double analytic_overhead_factor = 0.0;

  /// Structured fault/detection/recovery event log.
  std::vector<runtime::FaultRecord> log;
};

/// Run fault-tolerant synchronous data-parallel training.  Final weights
/// (of replica 0; replicas stay in sync) land in `out_model` when given.
///
/// Determinism contract: with RecoveryPolicy::Restart the final weights are
/// bit-identical to the same configuration run without faults.  Requires
/// dense gradients (no top-k compression: the error-feedback residual is
/// per-replica state a checkpoint does not capture) and deterministic
/// weight rounding (the stochastic-rounding stream is not checkpointed).
///
/// Bucketed / overlapped gradient all-reduce (train.bucket_bytes > 0,
/// optionally train.overlap_comm) composes with crash, corruption, and
/// shrink recovery — a failed in-flight bucket never updated any weight —
/// and preserves bit-identity with the monolithic path because ring chunks
/// are anchored to global gradient positions.  It requires
/// MitigationMode::None (the quorum collective has no windowed form).
ResilientResult train_resilient(const ModelFactory& factory,
                                const OptimizerFactory& opt_factory,
                                const Dataset& train, const Loss& loss,
                                const ResilientOptions& options,
                                Model* out_model = nullptr);

}  // namespace candle::parallel

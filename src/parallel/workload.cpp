#include "parallel/workload.hpp"

namespace candle::parallel {

hpcsim::TrainingWorkload workload_from_model(Model& model,
                                             const std::string& name) {
  CANDLE_CHECK(model.built(), "workload_from_model needs a built model");
  hpcsim::TrainingWorkload w;
  w.name = name;
  w.flops_per_sample = model.flops_per_sample();
  w.parameters = static_cast<double>(model.num_params());
  w.bytes_per_sample =
      static_cast<double>(shape_numel(model.input_shape())) * 4.0;

  // Probe activations with one sample: sum of all inter-layer outputs.
  Shape probe = model.input_shape();
  probe.insert(probe.begin(), 1);
  Tensor h(probe);
  double act_bytes = 0.0;
  for (Index i = 0; i < model.num_layers(); ++i) {
    h = model.layer(i).forward(h, /*training=*/false);
    act_bytes += static_cast<double>(h.numel()) * 4.0;
  }
  w.activation_bytes_per_sample = act_bytes;
  return w;
}

}  // namespace candle::parallel

// Synchronous data-parallel training over virtual nodes (threads).
//
// Each replica owns a full model copy (built from the same seed, hence
// bit-identical), consumes its shard of every global batch, and the
// replicas average gradients with a *real* ring all-reduce before applying
// identical optimizer steps.  This is exactly the synchronous SGD the
// CANDLE benchmarks ran over MPI; the fabric wall-clock at scale is
// reported alongside from the hpcsim model, while the numerics here are
// measured, not modeled.
#pragma once

#include <functional>
#include <vector>

#include "hpcsim/fabric.hpp"
#include "hpcsim/machine.hpp"
#include "nn/dataset.hpp"
#include "nn/model.hpp"
#include "nn/trainer.hpp"

namespace candle::parallel {

/// Builds one model replica; must be deterministic (same layers, same
/// build seed) so replicas start in sync.
using ModelFactory = std::function<Model()>;
/// Builds one optimizer instance per replica (identical hyperparameters).
using OptimizerFactory = std::function<std::unique_ptr<Optimizer>()>;

struct DataParallelOptions {
  Index replicas = 4;
  Index epochs = 5;
  Index batch_per_replica = 32;  // global batch = replicas * this
  std::uint64_t seed = 0;
  PrecisionPolicy precision;
  bool shuffle = true;
  /// Top-k gradient sparsification with error feedback: each replica sends
  /// only this fraction of its gradient entries per step (1.0 = dense).
  /// With bucketing, compression runs per bucket (each bucket keeps its top
  /// fraction and carries its own residual).
  double gradient_topk_fraction = 1.0;
  /// DDP-style gradient bucketing: pack layers (in reverse, gradient-
  /// production order) into buckets of at least this many bytes and
  /// all-reduce each bucket separately over the matching window of the flat
  /// gradient.  0 = monolithic (one all-reduce of the whole gradient after
  /// backward).  Dense results are bit-identical either way — ring chunks
  /// are anchored to global gradient positions (see collectives.hpp).
  Index bucket_bytes = 0;
  /// Launch each bucket's all-reduce the moment backward finishes producing
  /// it (nonblocking ring), overlapping communication with the remaining
  /// backward compute.  Requires bucket_bytes > 0.
  bool overlap_comm = false;
};

struct DataParallelResult {
  std::vector<float> epoch_loss;   // global mean training loss per epoch
  Index steps = 0;                 // optimizer steps executed
  double measured_seconds = 0.0;   // wall-clock of the threaded run
  double grad_bytes_per_step = 0.0;  // wire bytes (after compression)
  /// Modeled per-step wire time of the gradient all-reduce at this replica
  /// count on `fabric` (filled by annotate_with_fabric, 0 otherwise).
  double modeled_comm_seconds_per_step = 0.0;

  // Measured overlap instrumentation (rank-0 per-step means).  busy is the
  // comm engine's execution time; exposed is the part not hidden behind
  // backward compute (what the step actually waits for).  For monolithic
  // and non-overlapped runs busy == exposed and the overlap fraction is 0.
  Index buckets_per_step = 1;
  double measured_backward_s = 0.0;      // backward compute, comm excluded
  double measured_comm_busy_s = 0.0;     // total all-reduce execution
  double measured_exposed_comm_s = 0.0;  // comm the critical path waited on
  double measured_overlap_fraction = 0.0;  // 1 - exposed/busy, in [0,1]
};

/// Run synchronous data-parallel training.  Returns per-epoch global loss.
/// Replica models remain in sync; the final weights land in `out_model`
/// (built via `factory` and overwritten with the trained weights).
DataParallelResult train_data_parallel(const ModelFactory& factory,
                                       const OptimizerFactory& opt_factory,
                                       const Dataset& train, const Loss& loss,
                                       const DataParallelOptions& options,
                                       Model* out_model = nullptr);

/// Modeled wire time of one gradient all-reduce among `participants` ranks
/// (0 when a single rank participates).  The partial-collective case
/// (participants < replicas) prices the quorum commit of the resilient
/// trainer's backup-worker and bounded-staleness modes.
double modeled_allreduce_seconds(const hpcsim::Fabric& fabric,
                                 hpcsim::AllReduceAlgo algo,
                                 Index participants, double grad_bytes);

/// Fill `result.modeled_comm_seconds_per_step` for the given fabric/algo.
void annotate_with_fabric(DataParallelResult& result,
                          const hpcsim::Fabric& fabric,
                          hpcsim::AllReduceAlgo algo, Index replicas);

}  // namespace candle::parallel

// Synchronous data-parallel training over virtual nodes (threads).
//
// Each replica owns a full model copy (built from the same seed, hence
// bit-identical), consumes its shard of every global batch, and the
// replicas average gradients with a *real* ring all-reduce before applying
// identical optimizer steps.  This is exactly the synchronous SGD the
// CANDLE benchmarks ran over MPI; the fabric wall-clock at scale is
// reported alongside from the hpcsim model, while the numerics here are
// measured, not modeled.
#pragma once

#include <functional>
#include <vector>

#include "hpcsim/fabric.hpp"
#include "hpcsim/machine.hpp"
#include "nn/dataset.hpp"
#include "nn/model.hpp"
#include "nn/trainer.hpp"

namespace candle::parallel {

/// Builds one model replica; must be deterministic (same layers, same
/// build seed) so replicas start in sync.
using ModelFactory = std::function<Model()>;
/// Builds one optimizer instance per replica (identical hyperparameters).
using OptimizerFactory = std::function<std::unique_ptr<Optimizer>()>;

/// Opt-in parallel ingest (src/data): (seed, epoch)-pure sharded sample
/// lists, a concurrent bounded sample store with background fetchers, and a
/// double-buffered prefetch reader that assembles the next global batch
/// while the current step computes.  Off by default: the legacy path keeps
/// the exact BatchIterator stream existing tests and studies pin.  The
/// ingest stream uses its own pure permutation, so enabling it changes the
/// sample order (but the order is then identical across prefetch depths,
/// fetch-thread counts, and checkpoint restarts).
struct IngestOptions {
  bool enabled = false;
  /// Batch slots assembled ahead (1 = synchronous assembly, no producer
  /// thread — the baseline bench_e13 compares against).
  Index prefetch_depth = 2;
  /// Background store fetch threads (0 = every miss resolves inline).
  Index fetch_threads = 1;
  /// Sample-store cache budget in bytes.
  std::size_t store_byte_budget = std::size_t{64} << 20;
  /// Per-sample busy-spin modeling an expensive generator/decompressor
  /// (benchmarking hook; 0 for real workloads).
  double synthetic_fetch_cost_s = 0.0;
};

struct DataParallelOptions {
  Index replicas = 4;
  Index epochs = 5;
  Index batch_per_replica = 32;  // global batch = replicas * this
  std::uint64_t seed = 0;
  PrecisionPolicy precision;
  bool shuffle = true;
  /// Top-k gradient sparsification with error feedback: each replica sends
  /// only this fraction of its gradient entries per step (1.0 = dense).
  /// With bucketing, compression runs per bucket (each bucket keeps its top
  /// fraction and carries its own residual).
  double gradient_topk_fraction = 1.0;
  /// DDP-style gradient bucketing: pack layers (in reverse, gradient-
  /// production order) into buckets of at least this many bytes and
  /// all-reduce each bucket separately over the matching window of the flat
  /// gradient.  0 = monolithic (one all-reduce of the whole gradient after
  /// backward).  Dense results are bit-identical either way — ring chunks
  /// are anchored to global gradient positions (see collectives.hpp).
  Index bucket_bytes = 0;
  /// Launch each bucket's all-reduce the moment backward finishes producing
  /// it (nonblocking ring), overlapping communication with the remaining
  /// backward compute.  Requires bucket_bytes > 0.
  bool overlap_comm = false;
  /// Parallel ingest configuration (disabled = legacy BatchIterator path).
  IngestOptions ingest;
};

struct DataParallelResult {
  std::vector<float> epoch_loss;   // global mean training loss per epoch
  Index steps = 0;                 // optimizer steps executed
  double measured_seconds = 0.0;   // wall-clock of the threaded run
  double grad_bytes_per_step = 0.0;  // wire bytes (after compression)
  /// Modeled per-step wire time of the gradient all-reduce at this replica
  /// count on `fabric` (filled by annotate_with_fabric, 0 otherwise).
  double modeled_comm_seconds_per_step = 0.0;

  // Measured overlap instrumentation (rank-0 per-step means).  busy is the
  // comm engine's execution time; exposed is the part not hidden behind
  // backward compute (what the step actually waits for).  For monolithic
  // and non-overlapped runs busy == exposed and the overlap fraction is 0.
  Index buckets_per_step = 1;
  double measured_backward_s = 0.0;      // backward compute, comm excluded
  double measured_comm_busy_s = 0.0;     // total all-reduce execution
  double measured_exposed_comm_s = 0.0;  // comm the critical path waited on
  double measured_overlap_fraction = 0.0;  // 1 - exposed/busy, in [0,1]

  /// Samples per epoch silently excluded because they do not fill a full
  /// global batch (up to global_batch - 1; also logged once when non-zero).
  Index dropped_tail_samples = 0;

  // Ingest instrumentation (per-step means).  busy is total batch-assembly
  // work wherever it ran; exposed is the part the step loop actually waited
  // on.  On the legacy synchronous path busy == exposed (assembly runs
  // inline on the training thread).
  double measured_ingest_busy_s = 0.0;
  double measured_exposed_ingest_s = 0.0;
  double measured_ingest_overlap_fraction = 0.0;  // 1 - exposed/busy
};

/// Run synchronous data-parallel training.  Returns per-epoch global loss.
/// Replica models remain in sync; the final weights land in `out_model`
/// (built via `factory` and overwritten with the trained weights).
DataParallelResult train_data_parallel(const ModelFactory& factory,
                                       const OptimizerFactory& opt_factory,
                                       const Dataset& train, const Loss& loss,
                                       const DataParallelOptions& options,
                                       Model* out_model = nullptr);

/// Modeled wire time of one gradient all-reduce among `participants` ranks
/// (0 when a single rank participates).  The partial-collective case
/// (participants < replicas) prices the quorum commit of the resilient
/// trainer's backup-worker and bounded-staleness modes.
double modeled_allreduce_seconds(const hpcsim::Fabric& fabric,
                                 hpcsim::AllReduceAlgo algo,
                                 Index participants, double grad_bytes);

/// Fill `result.modeled_comm_seconds_per_step` for the given fabric/algo.
void annotate_with_fabric(DataParallelResult& result,
                          const hpcsim::Fabric& fabric,
                          hpcsim::AllReduceAlgo algo, Index replicas);

}  // namespace candle::parallel

// Gradient compression for data-parallel training: top-k sparsification
// with error feedback (deep-gradient-compression style) and int8
// quantization of the dense vector.
//
// This operationalizes the paper's observation that "future DNNs may rely
// less on dense communication patterns": the gradient all-reduce of claim
// C3 is the scaling bottleneck, and sending the top fraction of entries
// (with the residual fed back into the next step) cuts wire bytes by
// 10-100x at negligible accuracy cost.  Executable here; the wire-byte
// savings feed the fabric model.
#pragma once

#include <cstdint>
#include <span>
#include <vector>

#include "core/formats.hpp"
#include "runtime/error.hpp"

namespace candle::parallel {

using Index = std::int64_t;

/// A sparsified gradient: indices + values of the entries that survived.
struct SparseGradient {
  std::vector<Index> indices;
  std::vector<float> values;
  Index dense_size = 0;

  Index nnz() const { return static_cast<Index>(indices.size()); }
  /// Bytes on the wire: 4B value + 4B index per entry.
  double wire_bytes() const { return 8.0 * static_cast<double>(nnz()); }

  /// Scatter into a dense buffer (which must be zeroed by the caller if
  /// accumulation is not wanted).
  void add_to(std::span<float> dense) const;
};

/// Keep the `fraction` largest-magnitude entries of `grad` (at least one).
SparseGradient top_k_sparsify(std::span<const float> grad, double fraction);

/// Top-k compressor with error feedback: the dropped residual is carried
/// into the next round so no gradient mass is ever lost, only delayed.
class ErrorFeedbackCompressor {
 public:
  ErrorFeedbackCompressor(Index size, double fraction);

  /// Compress `grad` (+ carried residual); updates the residual in place.
  SparseGradient compress(std::span<const float> grad);

  /// L2 norm of the residual currently being carried.
  double residual_norm() const;
  double fraction() const { return fraction_; }

 private:
  double fraction_;
  std::vector<float> residual_;
};

/// Dense int8 gradient quantization round-trip (value-level emulation of an
/// int8 wire format): returns the dequantized gradient and reports the wire
/// bytes (1B per entry + scale).
std::vector<float> quantize_gradient_int8(std::span<const float> grad,
                                          double* wire_bytes = nullptr);

}  // namespace candle::parallel

// Gradient compression for data-parallel training: top-k sparsification
// with error feedback (deep-gradient-compression style) and int8
// quantization of the dense vector.
//
// This operationalizes the paper's observation that "future DNNs may rely
// less on dense communication patterns": the gradient all-reduce of claim
// C3 is the scaling bottleneck, and sending the top fraction of entries
// (with the residual fed back into the next step) cuts wire bytes by
// 10-100x at negligible accuracy cost.  Executable here; the wire-byte
// savings feed the fabric model.
#pragma once

#include <cstdint>
#include <span>
#include <vector>

#include "core/formats.hpp"
#include "runtime/error.hpp"

namespace candle::parallel {

using Index = std::int64_t;

/// Largest dense vector a SparseGradient may index.  The wire format (see
/// SparseGradient::wire_bytes) encodes indices as unsigned 32-bit, so dense
/// gradients must stay below 2^31 elements — comfortably above any model
/// this runtime trains (2^31 fp32 gradients alone would be 8 GiB), checked
/// explicitly so a silent index truncation can never happen.
inline constexpr Index kMaxSparseDenseSize = Index{1} << 31;

/// A sparsified gradient: indices + values of the entries that survived.
///
/// Wire format (what wire_bytes() accounts for, and what a network
/// implementation would serialize): per surviving entry, a 4-byte uint32
/// element index followed by a 4-byte IEEE-754 fp32 value — 8 bytes per
/// entry, kWireBytesPerEntry.  Indices are carried as Index (int64) in
/// memory for arithmetic convenience, but every producer guarantees
/// dense_size < kMaxSparseDenseSize so each index round-trips through
/// uint32 exactly.
struct SparseGradient {
  static constexpr double kWireBytesPerEntry = 8.0;  // 4B uint32 + 4B fp32

  std::vector<Index> indices;
  std::vector<float> values;
  Index dense_size = 0;

  Index nnz() const { return static_cast<Index>(indices.size()); }
  /// Bytes on the wire under the uint32-index + fp32-value encoding above.
  double wire_bytes() const {
    return kWireBytesPerEntry * static_cast<double>(nnz());
  }

  /// Scatter into a dense buffer (which must be zeroed by the caller if
  /// accumulation is not wanted).
  void add_to(std::span<float> dense) const;
};

/// Keep the `fraction` largest-magnitude entries of `grad` (at least one).
SparseGradient top_k_sparsify(std::span<const float> grad, double fraction);

/// Top-k compressor with error feedback: the dropped residual is carried
/// into the next round so no gradient mass is ever lost, only delayed.
class ErrorFeedbackCompressor {
 public:
  ErrorFeedbackCompressor(Index size, double fraction);

  /// Compress `grad` (+ carried residual); updates the residual in place.
  SparseGradient compress(std::span<const float> grad);

  /// L2 norm of the residual currently being carried.
  double residual_norm() const;
  double fraction() const { return fraction_; }

 private:
  double fraction_;
  std::vector<float> residual_;
};

/// Dense int8 gradient quantization round-trip (value-level emulation of an
/// int8 wire format): returns the dequantized gradient and reports the wire
/// bytes (1B per entry + scale).
std::vector<float> quantize_gradient_int8(std::span<const float> grad,
                                          double* wire_bytes = nullptr);

}  // namespace candle::parallel

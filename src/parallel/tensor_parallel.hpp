// Executable intra-layer (tensor) model parallelism: a Dense layer's
// output dimension is split across shards; each shard holds a weight slice
// and computes its activation slice; an all-gather reassembles the full
// activation.  This is the Megatron-style column partitioning, executed
// for real on virtual-node threads — the concrete mechanism behind claim
// C6's "network model parallelism".
//
// Numerics are exactly those of the unsharded layer (verified by tests);
// the wire traffic per step (activations fwd, gradient slices bwd) is
// what the fabric model prices.
#pragma once

#include <memory>
#include <vector>

#include "nn/model.hpp"
#include "parallel/collectives.hpp"

namespace candle::parallel {

/// A Dense layer split column-wise over `shards` slices.
///   forward : each shard computes y_s = x W_s + b_s (its output slice),
///             then slices are all-gathered into the full y.
///   backward: each shard computes its dW_s, db_s from the dy slice and a
///             partial dx; partial dx's are sum-reduced across shards.
class ShardedDense {
 public:
  /// Split a built Dense layer's parameters into `shards` column slices.
  /// The source layer is only read; the sharded copy owns its slices.
  ShardedDense(const Dense& source, Index shards);

  Index shards() const { return static_cast<Index>(slices_.size()); }
  Index in_features() const { return in_; }
  Index out_features() const { return out_; }

  /// Forward a batch through all shards (serially over the slices —
  /// the wall-clock story belongs to the fabric model, the numerics here).
  /// Returns the full (batch, out) activation, identical to the source
  /// layer's forward.
  Tensor forward(const Tensor& x);

  /// Backward: given dLoss/dy (batch, out), fills per-shard weight grads
  /// and returns the full dLoss/dx (sum of shard partials).
  Tensor backward(const Tensor& dy);

  /// Bytes all-gathered per forward for a given batch (activations) and
  /// bytes reduced per backward (dx partials) — the claim-C6 wire traffic.
  double forward_wire_bytes(Index batch) const;
  double backward_wire_bytes(Index batch) const;

  /// Per-shard weight gradient (for optimizer steps / test inspection).
  const Tensor& weight_grad(Index shard) const;
  const Tensor& bias_grad(Index shard) const;

 private:
  struct Slice {
    Tensor w;   // (in, out_slice)
    Tensor b;   // (out_slice)
    Tensor dw;
    Tensor db;
    Index out_begin = 0;
    Index out_end = 0;
  };

  Index in_ = 0, out_ = 0;
  std::vector<Slice> slices_;
  Tensor x_cache_;
};

/// Threaded execution harness: run the sharded forward with one thread per
/// shard exchanging slices through a ShmCommunicator all-gather, verifying
/// the distributed schedule end to end.  Returns the assembled activation.
Tensor sharded_dense_forward_threaded(ShardedDense& layer, const Tensor& x);

}  // namespace candle::parallel

// Dynamic batching with admission control: the queueing heart of the
// serving engine.
//
// Policy (DESIGN.md "Serving"):
//  * Coalescing — a batch closes when `max_batch` requests are queued or
//    the oldest queued request has waited `max_wait_s`, whichever comes
//    first.  Low load pays at most the wait window; high load fills whole
//    batches and the window never expires.
//  * Bounded queue — at most `queue_capacity` requests wait.  Arrivals
//    beyond that are shed immediately (ShedQueueFull): overload degrades to
//    explicit rejections, never to unbounded latency.
//  * Deadline-aware shedding — on arrival, the predicted sojourn is
//      ceil((depth + 1) / max_batch) * (ewma_row_service_s * max_batch)
//        / workers
//    i.e. how many batch services stand between this request and its
//    response, priced at the EWMA-estimated batch service time spread over
//    the worker pool.  If that already exceeds the request's deadline the
//    request is shed on arrival (ShedDeadline) — serving it would waste a
//    batch slot on an answer the client has given up on.  The EWMA is fed
//    by the engine's measured per-batch service times.
//
// Shed requests resolve their future immediately; admitted requests resolve
// when their batch completes.  All accounting is exact: submitted ==
// completed + shed (asserted by tests/test_serve.cpp).
#pragma once

#include <chrono>
#include <condition_variable>
#include <cstdint>
#include <deque>
#include <future>
#include <mutex>
#include <vector>

#include "serve/request.hpp"

namespace candle::serve {

struct BatchPolicy {
  Index max_batch = 32;          ///< batch closes at this many rows
  double max_wait_s = 2e-3;      ///< ... or when the oldest row waited this
  Index queue_capacity = 1024;   ///< bounded queue; beyond = ShedQueueFull
  bool deadline_admission = true;  ///< enable predicted-wait shedding
  double service_ewma_alpha = 0.2;  ///< smoothing of the service estimate
};

class DynamicBatcher {
 public:
  using Clock = std::chrono::steady_clock;

  /// One admitted, queued request.
  struct Pending {
    Request request;
    std::promise<Response> promise;
    Clock::time_point enqueued;
  };

  /// `workers` is the number of engine threads consuming batches; it prices
  /// the predicted wait (the queue drains `workers` batches concurrently).
  DynamicBatcher(BatchPolicy policy, Index workers);

  /// Producer side: admission-controlled enqueue.  The returned future
  /// resolves with the model output (Completed) or immediately with a shed
  /// outcome.  Thread-safe.
  std::future<Response> submit(Request req);

  /// Consumer side: block until a batch is ready per the coalescing policy
  /// (or until drain).  Returns the coalesced requests in arrival order;
  /// empty means the batcher is drained and shut down.  Thread-safe —
  /// multiple engine workers pull concurrently.
  std::vector<Pending> next_batch();

  /// Feed back one measured batch execution (rows, seconds) into the EWMA
  /// per-row service estimate the admission controller prices waits with.
  void record_service(Index rows, double seconds);

  /// Stop admitting (subsequent submits shed with ShedShutdown) and wake
  /// consumers so queued work finishes; next_batch returns empty once the
  /// queue is empty.  Idempotent.
  void start_drain();

  /// Predicted sojourn (seconds) a request admitted right now would see.
  double predicted_wait_s() const;

  Index depth() const;

  struct Counters {
    std::uint64_t submitted = 0;
    std::uint64_t admitted = 0;
    std::uint64_t shed_queue_full = 0;
    std::uint64_t shed_deadline = 0;
    std::uint64_t shed_shutdown = 0;
    std::int64_t peak_queue_depth = 0;
    double ewma_row_service_s = 0.0;
  };
  Counters counters() const;

  const BatchPolicy& policy() const { return policy_; }

 private:
  double predicted_wait_locked(Index depth) const;
  static Response shed_response(const Request& req, Outcome outcome);

  const BatchPolicy policy_;
  const Index workers_;

  mutable std::mutex mu_;
  std::condition_variable cv_consumer_;
  std::deque<Pending> queue_;
  bool draining_ = false;
  Counters counters_;
};

}  // namespace candle::serve

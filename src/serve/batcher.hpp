// Dynamic batching with admission control: the queueing heart of the
// serving engine.
//
// Policy (DESIGN.md "Serving"):
//  * Coalescing — a batch closes when `max_batch` requests are queued or
//    the oldest queued request has waited `max_wait_s`, whichever comes
//    first.  Low load pays at most the wait window; high load fills whole
//    batches and the window never expires.
//  * Bounded queue — at most `queue_capacity` requests wait.  Arrivals
//    beyond that are shed immediately (ShedQueueFull): overload degrades to
//    explicit rejections, never to unbounded latency.
//  * Deadline-aware shedding — on arrival, the predicted sojourn is
//      ceil((depth + 1) / max_batch) * (ewma_row_service_s * max_batch)
//        / live_workers
//    i.e. how many batch services stand between this request and its
//    response, priced at the EWMA-estimated batch service time spread over
//    the *live* worker pool.  If that already exceeds the request's
//    deadline the request is shed on arrival (ShedDeadline) — serving it
//    would waste a batch slot on an answer the client has given up on.
//    Under continuous batching (BatchPolicy::continuous) the sojourn is
//    priced from slot availability instead — every in-flight and queued row
//    ahead of this one at the per-row service rate over the live pool —
//    because rows drain one at a time, not in whole-batch quanta.
//  * Brownout (DESIGN.md "Serving failure model") — when the supervisor
//    detects sustained overload or a shrunken pool it flips brownout mode:
//    the effective queue shrinks to `brownout_queue_frac * queue_capacity`
//    and deadline-less requests are priced at `brownout_deadline_s`, so
//    admission tightens (explicit ShedBrownout rejections) instead of the
//    tail latency collapsing.
//
// Requests admitted once can be *re-dispatched*: the queue trades in
// shared `Pending` handles whose promise is resolved exactly once through
// an atomic guard (`try_resolve`), which is what makes crash re-enqueues
// and hedged duplicate dispatches safe — whoever finishes first wins, every
// later result is discarded and accounted, and the exact-accounting
// invariant `submitted == completed + shed + failed` survives duplication.
#pragma once

#include <atomic>
#include <chrono>
#include <condition_variable>
#include <cstdint>
#include <deque>
#include <future>
#include <memory>
#include <mutex>
#include <vector>

#include "serve/request.hpp"

namespace candle::serve {

struct BatchPolicy {
  Index max_batch = 32;          ///< batch closes at this many rows
  double max_wait_s = 2e-3;      ///< ... or when the oldest row waited this
  Index queue_capacity = 1024;   ///< bounded queue; beyond = ShedQueueFull
  bool deadline_admission = true;  ///< enable predicted-wait shedding
  double service_ewma_alpha = 0.2;  ///< smoothing of the service estimate

  /// Continuous batching (DESIGN.md "Continuous batching"): workers admit
  /// queued rows into free batch slots at every engine iteration via
  /// acquire_rows() and evict finished rows individually, instead of
  /// coalescing whole batches through next_batch().  max_wait_s is ignored
  /// (there is no fill window to wait out) and the predicted sojourn is
  /// priced from slot availability — (inflight + depth + 1) rows ahead at
  /// the EWMA per-row service rate over the live pool — rather than the
  /// whole-batch ceil((depth + 1) / max_batch) quantization.
  bool continuous = false;

  /// Brownout tightening: effective queue capacity becomes
  /// `ceil(brownout_queue_frac * queue_capacity)` while brownout is active.
  double brownout_queue_frac = 0.5;
  /// Brownout deadline assumed for requests with no finite deadline of
  /// their own (0 disables that pricing — deadline-less requests then only
  /// feel the shrunken queue).
  double brownout_deadline_s = 0.0;
};

class DynamicBatcher {
 public:
  using Clock = std::chrono::steady_clock;

  /// One admitted request.  Shared between the queue, the worker executing
  /// its batch, and any duplicate dispatches (crash re-enqueue, hedge); the
  /// promise resolves exactly once via `try_resolve`.
  struct Pending {
    Request request;
    std::promise<Response> promise;
    Clock::time_point enqueued;
    std::atomic<bool> resolved{false};
    std::atomic<Index> crashes{0};  ///< dispatches lost to worker crashes
    std::atomic<bool> hedged{false};  ///< a duplicate dispatch exists

    /// First caller wins and fulfils the promise; later callers get false
    /// and must discard their result (hedge loser / stale duplicate).
    bool try_resolve(Response&& r) {
      bool expected = false;
      if (!resolved.compare_exchange_strong(expected, true,
                                            std::memory_order_acq_rel)) {
        return false;
      }
      promise.set_value(std::move(r));
      return true;
    }
  };
  using PendingPtr = std::shared_ptr<Pending>;

  /// `workers` is the number of engine threads consuming batches; it prices
  /// the predicted wait (the queue drains `workers` batches concurrently).
  /// The supervisor reprices a shrunken pool via set_live_workers.
  DynamicBatcher(BatchPolicy policy, Index workers);

  /// Producer side: admission-controlled enqueue.  The returned future
  /// resolves with the model output (Completed) or immediately with a shed
  /// outcome.  Thread-safe.
  std::future<Response> submit(Request req);

  /// Consumer side: block until a batch is ready per the coalescing policy
  /// (or until drain).  Returns the coalesced requests in arrival order,
  /// skipping entries already resolved elsewhere (won hedges); empty means
  /// the batcher is drained and shut down.  Thread-safe — multiple engine
  /// workers pull concurrently.
  std::vector<PendingPtr> next_batch();

  /// Continuous-mode consumer: move up to `want` queued rows into `out`
  /// (appended in arrival order), skipping entries already resolved
  /// elsewhere.  When `block` is set and the queue is empty the call waits
  /// for work (or drain); otherwise it returns immediately, possibly
  /// appending nothing — a worker holding live slots polls, an idle worker
  /// blocks.  Returns false when the batcher is draining and the queue is
  /// empty — no new admissions will ever arrive, and a worker with no
  /// occupied slots should exit (requeues can still refill the queue during
  /// drain; the watchdog's replacement workers serve those).
  ///
  /// Every row handed out here is counted in-flight until the consumer
  /// returns it through exactly one release_rows() unit — when the row is
  /// resolved and evicted, lost a resolve race, or was dissolved from a
  /// dead worker's flight by the watchdog.
  bool acquire_rows(Index want, std::vector<PendingPtr>& out, bool block);

  /// Return `n` in-flight rows (see acquire_rows).  Thread-safe.
  void release_rows(Index n);

  /// Rows acquired and not yet released — the slot-availability half of the
  /// continuous-mode predicted wait.
  Index inflight_rows() const;

  /// Put already-admitted requests back at the *front* of the queue (crash
  /// recovery and hedged duplicates re-dispatch ahead of new arrivals —
  /// they have been waiting longest).  Bypasses admission: the requests
  /// were admitted once and counters must not double-count them.  Works
  /// during drain (recovered work still gets served).
  void requeue(std::vector<PendingPtr> batch);

  /// Empty the queue immediately (terminal failure path: no live workers
  /// and no restart budget).  The caller owns resolving the entries.
  std::vector<PendingPtr> take_all();

  /// Feed back one measured batch execution (rows, seconds) into the EWMA
  /// per-row service estimate the admission controller prices waits with.
  void record_service(Index rows, double seconds);

  /// Reprice admission for a changed worker pool (crashes shrink it,
  /// restarts regrow it).  Clamped to >= 1 so pricing stays finite; a pool
  /// that is actually empty is the supervisor's problem, not admission's.
  void set_live_workers(Index live);
  Index live_workers() const;

  /// Flip brownout-tightened admission on/off (see BatchPolicy).
  void set_brownout(bool on);
  bool brownout() const;

  /// Stop admitting (subsequent submits shed with ShedShutdown) and wake
  /// consumers so queued work finishes; next_batch returns empty once the
  /// queue is empty.  Idempotent.
  void start_drain();

  /// Predicted sojourn (seconds) a request admitted right now would see.
  double predicted_wait_s() const;

  Index depth() const;

  struct Counters {
    std::uint64_t submitted = 0;
    std::uint64_t admitted = 0;
    std::uint64_t shed_queue_full = 0;
    std::uint64_t shed_deadline = 0;
    std::uint64_t shed_shutdown = 0;
    std::uint64_t shed_brownout = 0;
    std::uint64_t requeued = 0;  ///< re-dispatches (crash recovery + hedges)
    std::int64_t peak_queue_depth = 0;
    Index inflight_rows = 0;  ///< acquired, not yet released (continuous)
    double ewma_row_service_s = 0.0;
    Index live_workers = 0;
    bool brownout = false;
  };
  Counters counters() const;

  const BatchPolicy& policy() const { return policy_; }

 private:
  double predicted_wait_locked(Index depth) const;
  static Response shed_response(const Request& req, Outcome outcome);

  const BatchPolicy policy_;

  mutable std::mutex mu_;
  std::condition_variable cv_consumer_;
  std::deque<PendingPtr> queue_;
  bool draining_ = false;
  Index live_workers_ = 1;
  bool brownout_ = false;
  Index inflight_rows_ = 0;
  Counters counters_;
};

}  // namespace candle::serve

// Streaming serving statistics: an HDR-style log-bucketed latency histogram
// plus the shed/queue counters that make overload auditable.
//
// The histogram is the serving counterpart of the training-side modeled
// accounting: fixed memory (one counter per log-spaced bucket), wait-free
// concurrent recording (relaxed atomic increments from every engine
// worker), and quantiles read from a consistent snapshot.  Buckets are
// geometric with 24 per decade spanning 1 µs .. 10⁴ s, so any reported
// quantile is within ~10% (10^(1/24) ≈ 1.10) of the true value — the same
// resolution HDR histograms are typically run at, at a fraction of the
// code.  p50/p95/p99/p99.9 of a million-request run cost 240 * 8 bytes.
//
// Snapshot consistency: record() is wait-free (it never blocks and never
// retries), so a snapshot racing a hammering producer cannot lock the
// counters.  Instead, snapshot() brackets its copy with begin/end operation
// counters: if no record was in flight across the copy, the snapshot is
// exact (count/sum consistent to the last bit).  Under sustained concurrent
// recording it retries a bounded number of times, then falls back to
// clamping the sum into the envelope the copied counts imply
// (Σ count·lower_edge .. Σ count·upper_edge) — so a torn read can never
// produce an impossible mean (outside the recorded value range) or a
// quantile inconsistent with its own counts.  Asserted by the hammering
// test in tests/test_serve.cpp.
#pragma once

#include <array>
#include <atomic>
#include <cstdint>
#include <vector>

#include "core/tensor.hpp"
#include "runtime/error.hpp"

namespace candle::serve {

class LatencyHistogram {
 public:
  static constexpr double kMinSeconds = 1e-6;   // bucket 0 lower edge
  static constexpr int kBucketsPerDecade = 24;  // ~10% relative resolution
  static constexpr int kDecades = 10;           // 1 µs .. 10^4 s
  static constexpr int kBuckets = kBucketsPerDecade * kDecades;
  static constexpr int kSnapshotRetries = 64;   // stability-loop bound

  /// Record one latency (seconds).  Wait-free; callable from any thread.
  /// Values below 1 µs land in bucket 0, values beyond 10^4 s in the last.
  void record(double seconds);

  /// Bucket index a value falls into (exposed for tests).
  static int bucket_of(double seconds);
  /// Upper edge of a bucket — the value quantile() reports for it.
  static double bucket_upper_edge(int bucket);
  /// Lower edge of a bucket (the previous bucket's upper edge; 0 for
  /// bucket 0) — the floor of the snapshot sum envelope.
  static double bucket_lower_edge(int bucket);

  /// Consistent point-in-time copy for quantile reads.
  struct Snapshot {
    std::array<std::uint64_t, kBuckets> counts{};
    std::uint64_t total = 0;
    double sum_s = 0.0;
    bool exact = true;  ///< false when the bounded stability loop gave up
                        ///< and sum_s was envelope-clamped

    /// Latency at quantile q in [0, 1]: upper edge of the bucket holding
    /// the ceil(q * total)-th ordered sample (0 when empty).
    double quantile(double q) const;
    double mean_s() const {
      return total > 0 ? sum_s / static_cast<double>(total) : 0.0;
    }
  };

  Snapshot snapshot() const;
  std::uint64_t total() const {
    return finished_.load(std::memory_order_relaxed);
  }

 private:
  std::array<std::atomic<std::uint64_t>, kBuckets> counts_{};
  std::atomic<double> sum_s_{0.0};
  // Operation brackets for snapshot stability detection: a record
  // increments started_ before touching the counters and finished_ after.
  // snapshot() saw a quiescent window iff started_ == finished_ before the
  // copy and started_ is unchanged after it.
  std::atomic<std::uint64_t> started_{0};
  std::atomic<std::uint64_t> finished_{0};
};

/// Aggregate engine counters + latency distribution, as returned by
/// serve::Engine::stats() and serve::SupervisedEngine::stats().  Invariant
/// (checked by tests) once the engine has drained:
///   submitted == completed + shed_total() + failed
/// — every request is accounted for exactly once, including requests that
/// were re-dispatched after a worker crash or raced by a hedged duplicate.
/// The base Engine never fails requests and runs no supervisor, so its
/// resilience counters are identically zero and the invariant reduces to
/// the original submitted == completed + shed_total().
struct EngineStats {
  std::uint64_t submitted = 0;
  std::uint64_t admitted = 0;
  std::uint64_t completed = 0;
  std::uint64_t failed = 0;       ///< crash-abandoned past the retry budget
  std::uint64_t shed_queue_full = 0;
  std::uint64_t shed_deadline = 0;
  std::uint64_t shed_shutdown = 0;
  std::uint64_t shed_brownout = 0;
  std::uint64_t batches = 0;      ///< coalesced batches / iterations executed
  std::int64_t peak_queue_depth = 0;
  /// Continuous mode: rows acquired by workers and not yet released back.
  /// Exactly zero after drain() — every acquired row is returned by its
  /// worker's evict, a lost resolve race, or the watchdog's crash sweep.
  Index inflight_rows = 0;
  double ewma_row_service_s = 0.0;  ///< admission controller's estimate

  // ---- supervision / resilience (SupervisedEngine only) ---------------------
  std::uint64_t requeued = 0;          ///< rows re-enqueued after crashes
  std::uint64_t worker_crashes = 0;    ///< workers that died mid-batch
  std::uint64_t worker_hangs = 0;      ///< workers the watchdog declared hung
  std::uint64_t worker_restarts = 0;   ///< replacements actually spawned
  std::uint64_t hedges_launched = 0;   ///< duplicate batch dispatches
  std::uint64_t hedge_wins = 0;        ///< hedged rows resolved (first copy)
  std::uint64_t hedge_losses = 0;      ///< duplicate results discarded
  std::uint64_t corruption_retries = 0;  ///< NaN-poisoned batches recomputed
  std::uint64_t brownout_entries = 0;  ///< times brownout mode engaged
  Index live_workers = 0;              ///< pool size when stats were taken

  // Completed-request latency decomposes into the time spent waiting to
  // join a batch and the time spent being served:
  //   latency ~= queue_wait + service   (per request, exactly; the
  // histograms quantize each term independently).  The split is what makes
  // the continuous scheduler's fill-wait cut directly observable: switching
  // a low-load deployment from coalescing to continuous collapses
  // queue_wait (no max_wait_s window to sit out) while service stays the
  // per-iteration compute time.
  LatencyHistogram::Snapshot latency;      ///< submit -> response
  LatencyHistogram::Snapshot queue_wait;   ///< submit -> batch close / admit
  LatencyHistogram::Snapshot service;      ///< batch close / admit -> response

  std::uint64_t shed_total() const {
    return shed_queue_full + shed_deadline + shed_shutdown + shed_brownout;
  }
  /// The exact-accounting left-over: zero after drain.
  std::int64_t accounting_gap() const {
    return static_cast<std::int64_t>(submitted) -
           static_cast<std::int64_t>(completed + shed_total() + failed);
  }
  double mean_batch_rows() const {
    return batches > 0
               ? static_cast<double>(completed) / static_cast<double>(batches)
               : 0.0;
  }
};

}  // namespace candle::serve

// Streaming serving statistics: an HDR-style log-bucketed latency histogram
// plus the shed/queue counters that make overload auditable.
//
// The histogram is the serving counterpart of the training-side modeled
// accounting: fixed memory (one counter per log-spaced bucket), wait-free
// concurrent recording (relaxed atomic increments from every engine
// worker), and quantiles read from a consistent snapshot.  Buckets are
// geometric with 24 per decade spanning 1 µs .. 10⁴ s, so any reported
// quantile is within ~10% (10^(1/24) ≈ 1.10) of the true value — the same
// resolution HDR histograms are typically run at, at a fraction of the
// code.  p50/p95/p99/p99.9 of a million-request run cost 240 * 8 bytes.
#pragma once

#include <array>
#include <atomic>
#include <cstdint>
#include <vector>

#include "runtime/error.hpp"

namespace candle::serve {

class LatencyHistogram {
 public:
  static constexpr double kMinSeconds = 1e-6;   // bucket 0 lower edge
  static constexpr int kBucketsPerDecade = 24;  // ~10% relative resolution
  static constexpr int kDecades = 10;           // 1 µs .. 10^4 s
  static constexpr int kBuckets = kBucketsPerDecade * kDecades;

  /// Record one latency (seconds).  Wait-free; callable from any thread.
  /// Values below 1 µs land in bucket 0, values beyond 10^4 s in the last.
  void record(double seconds);

  /// Bucket index a value falls into (exposed for tests).
  static int bucket_of(double seconds);
  /// Upper edge of a bucket — the value quantile() reports for it.
  static double bucket_upper_edge(int bucket);

  /// Consistent point-in-time copy for quantile reads.
  struct Snapshot {
    std::array<std::uint64_t, kBuckets> counts{};
    std::uint64_t total = 0;
    double sum_s = 0.0;

    /// Latency at quantile q in [0, 1]: upper edge of the bucket holding
    /// the ceil(q * total)-th ordered sample (0 when empty).
    double quantile(double q) const;
    double mean_s() const {
      return total > 0 ? sum_s / static_cast<double>(total) : 0.0;
    }
  };

  Snapshot snapshot() const;
  std::uint64_t total() const {
    return total_.load(std::memory_order_relaxed);
  }

 private:
  std::array<std::atomic<std::uint64_t>, kBuckets> counts_{};
  std::atomic<std::uint64_t> total_{0};
  std::atomic<double> sum_s_{0.0};
};

/// Aggregate engine counters + latency distribution, as returned by
/// serve::Engine::stats().  Invariant (checked by tests): submitted ==
/// completed + shed_queue_full + shed_deadline + shed_shutdown once the
/// engine has drained — every request is accounted for exactly once.
struct EngineStats {
  std::uint64_t submitted = 0;
  std::uint64_t admitted = 0;
  std::uint64_t completed = 0;
  std::uint64_t shed_queue_full = 0;
  std::uint64_t shed_deadline = 0;
  std::uint64_t shed_shutdown = 0;
  std::uint64_t batches = 0;      ///< coalesced batches executed
  std::int64_t peak_queue_depth = 0;
  double ewma_row_service_s = 0.0;  ///< admission controller's estimate
  LatencyHistogram::Snapshot latency;      ///< submit -> response
  LatencyHistogram::Snapshot queue_wait;   ///< submit -> batch close

  std::uint64_t shed_total() const {
    return shed_queue_full + shed_deadline + shed_shutdown;
  }
  double mean_batch_rows() const {
    return batches > 0
               ? static_cast<double>(completed) / static_cast<double>(batches)
               : 0.0;
  }
};

}  // namespace candle::serve

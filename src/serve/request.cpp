#include "serve/request.hpp"

#include <cmath>

#include "runtime/rng.hpp"

namespace candle::serve {

const char* outcome_name(Outcome o) {
  switch (o) {
    case Outcome::Completed: return "completed";
    case Outcome::ShedQueueFull: return "shed_queue_full";
    case Outcome::ShedDeadline: return "shed_deadline";
    case Outcome::ShedShutdown: return "shed_shutdown";
    case Outcome::ShedBrownout: return "shed_brownout";
    case Outcome::Failed: return "failed";
  }
  CANDLE_FAIL("unknown Outcome");
}

namespace {

/// Exponential draw with the given mean; guards u == 0 so log stays finite.
double exponential(Pcg32& rng, double mean) {
  double u = rng.next_double();
  if (u < 1e-300) u = 1e-300;
  return -mean * std::log(u);
}

}  // namespace

ArrivalTrace poisson_trace(double rate_rps, double duration_s,
                           std::uint64_t seed) {
  CANDLE_CHECK(rate_rps > 0.0, "arrival rate must be positive");
  CANDLE_CHECK(duration_s > 0.0, "trace duration must be positive");
  Pcg32 rng(seed, 0x5e12e);
  ArrivalTrace trace;
  trace.duration_s = duration_s;
  double t = exponential(rng, 1.0 / rate_rps);
  while (t < duration_s) {
    trace.at_s.push_back(t);
    t += exponential(rng, 1.0 / rate_rps);
  }
  return trace;
}

ArrivalTrace mmpp_trace(const BurstyTraffic& traffic, double duration_s,
                        std::uint64_t seed) {
  CANDLE_CHECK(traffic.base_rps > 0.0 && traffic.burst_rps > 0.0,
               "MMPP rates must be positive");
  CANDLE_CHECK(traffic.mean_base_dwell_s > 0.0 &&
                   traffic.mean_burst_dwell_s > 0.0,
               "MMPP dwell times must be positive");
  CANDLE_CHECK(duration_s > 0.0, "trace duration must be positive");
  // Independent streams for state dwells and within-state arrivals so the
  // burst phase boundaries do not shift when a rate changes.
  Pcg32 dwell_rng = Pcg32(seed, 0x3322).split(1);
  Pcg32 gap_rng = Pcg32(seed, 0x3322).split(2);
  ArrivalTrace trace;
  trace.duration_s = duration_s;
  bool burst = false;
  double t = 0.0;
  while (t < duration_s) {
    const double dwell = exponential(
        dwell_rng,
        burst ? traffic.mean_burst_dwell_s : traffic.mean_base_dwell_s);
    const double state_end = std::min(t + dwell, duration_s);
    const double rate = burst ? traffic.burst_rps : traffic.base_rps;
    double a = t + exponential(gap_rng, 1.0 / rate);
    while (a < state_end) {
      trace.at_s.push_back(a);
      a += exponential(gap_rng, 1.0 / rate);
    }
    t = state_end;
    burst = !burst;
  }
  return trace;
}

}  // namespace candle::serve

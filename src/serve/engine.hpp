// Multi-worker inference serving engine.
//
// Turns a trained nn::Model into a request server: N worker threads pull
// coalesced batches from one DynamicBatcher, assemble them through a
// per-worker BatchAssembler, and run the model's const infer() path.  The
// design points (DESIGN.md "Serving"):
//
//  * Shared immutable weights — workers do not copy the model.  infer() is
//    const and touches no layer state, so every worker replica is the same
//    Model object; the weight working set stays resident once instead of
//    once per worker.
//  * Per-worker scratch reuse — batch assembly cycles through one buffer
//    per worker (BatchAssembler + Tensor::resize_dim0) and the GEMMs inside
//    infer() pack into the worker's thread-local workspace arena
//    (runtime/workspace), so the steady-state request path performs no
//    heap allocation in assembly or compute scratch.
//  * Graceful drain — drain() stops admission (late submits resolve as
//    ShedShutdown), lets workers finish every queued request, and joins
//    them.  The destructor drains, so an Engine can never leak threads.
//
//  * Two scheduling modes — coalescing (the default: workers pull whole
//    batches closed by the max_batch count / max_wait_s window) and
//    *continuous* (BatchPolicy::continuous: each worker owns a
//    RowSlotAssembler and admits queued rows into free slots at every
//    iteration, evicting finished rows individually).  Continuous batching
//    has no fill window, so low-load latency collapses to the
//    per-iteration service time; see DESIGN.md "Continuous batching".
//
// The caller owns the Model and must keep it alive and *unmodified* while
// the engine runs — training concurrently with serving is a data race by
// construction, not a supported mode.
#pragma once

#include <atomic>
#include <future>
#include <mutex>
#include <thread>
#include <vector>

#include "nn/model.hpp"
#include "serve/batcher.hpp"
#include "serve/stats.hpp"

namespace candle::serve {

/// One-shot cold-start calibration: time a full-max_batch infer() on a
/// zeros batch and seed `batcher`'s per-row service EWMA with it, so
/// deadline admission prices the very first window instead of admitting
/// everything at a zero estimate.  Run from the engine constructors before
/// any worker serves a request.
void run_calibration_probe(const Model& model, DynamicBatcher& batcher);

struct EngineOptions {
  Index workers = 2;  ///< serving threads (each a shared-weight replica)
  BatchPolicy batch;
  /// Seed the admission controller's service-time EWMA from a one-shot
  /// full-batch inference probe run in the constructor, before any request
  /// is admitted.  Without it the first window is priced at zero (EWMA
  /// uncalibrated), so deadline admission cannot shed hopeless requests
  /// until the first batch completes — the cold-start mispricing window.
  bool calibration_probe = false;
};

class Engine {
 public:
  /// The model must be built; it is borrowed, not copied.
  explicit Engine(const Model& model, EngineOptions options = {});
  ~Engine();

  Engine(const Engine&) = delete;
  Engine& operator=(const Engine&) = delete;

  /// Submit one request.  Resolves with the prediction, or immediately with
  /// a shed outcome (queue full / deadline hopeless / draining).  The input
  /// must hold exactly one flattened sample.  Thread-safe.
  std::future<Response> submit(Request req);

  /// Stop admitting, serve everything already queued, join the workers.
  /// Idempotent; also run by the destructor.  Safe to race with submit():
  /// a submit that loses the race resolves ShedShutdown, and drain waits
  /// for every in-flight submit to land before declaring the accounting
  /// final — after drain() returns, stats() is exact.
  void drain();

  /// Point-in-time statistics.  After drain(), the accounting is exact:
  /// submitted == completed + shed_total().
  EngineStats stats() const;

  const EngineOptions& options() const { return options_; }
  Index sample_numel() const { return sample_numel_; }

 private:
  void worker_main();
  void worker_coalescing();
  void worker_continuous();

  const Model& model_;
  const EngineOptions options_;
  const Index sample_numel_;
  const Index output_numel_;
  DynamicBatcher batcher_;

  LatencyHistogram latency_;
  LatencyHistogram queue_wait_;
  LatencyHistogram service_;
  std::atomic<std::uint64_t> completed_{0};
  std::atomic<std::uint64_t> batches_{0};
  std::atomic<std::uint64_t> active_submits_{0};

  std::mutex drain_mu_;
  bool drained_ = false;
  std::vector<std::thread> threads_;
};

}  // namespace candle::serve

// Typed inference requests and seeded open-loop arrival generation.
//
// The serving half of the CANDLE story (drug-response scoring, treatment-
// strategy queries, AMR surveillance lookups) is a stream of small latency-
// bounded queries, not an epoch over a dataset.  This header defines the
// request/response types the engine trades in, and deterministic arrival-
// trace generators for benchmarking it open-loop: arrivals are generated
// ahead of time from a seed (Poisson for steady load, a two-state MMPP for
// bursty load), so a load sweep is replayable bit-for-bit — the same
// determinism contract the training-side fault schedules follow.
#pragma once

#include <cstdint>
#include <limits>
#include <string>
#include <vector>

#include "core/tensor.hpp"

namespace candle::serve {

/// One inference query: a flattened feature vector plus a latency budget.
struct Request {
  std::uint64_t id = 0;
  /// Per-sample features, flattened to the model's input sample numel.
  std::vector<float> input;
  /// Relative latency budget from submit time.  The admission controller
  /// sheds the request on arrival when its predicted sojourn already
  /// exceeds this budget; infinity = never shed on deadline.
  double deadline_s = std::numeric_limits<double>::infinity();
};

/// Why a request left the engine.
enum class Outcome {
  Completed,      ///< served; `output` holds the model prediction
  ShedQueueFull,  ///< rejected on arrival: bounded queue at capacity
  ShedDeadline,   ///< rejected on arrival: predicted wait exceeds deadline
  ShedShutdown,   ///< rejected: submitted after drain began
  ShedBrownout,   ///< rejected on arrival by brownout-tightened admission
                  ///< (shrunken effective queue / default-priced deadline)
  Failed,         ///< admitted but lost: its batch was abandoned by crashed
                  ///< workers more times than the retry budget allows
};

const char* outcome_name(Outcome o);

/// The engine's answer.  Shed requests resolve immediately with their shed
/// outcome and an empty output, so overload degrades to explicit rejections
/// the client observes, never to unbounded latency.
struct Response {
  std::uint64_t id = 0;
  Outcome outcome = Outcome::ShedShutdown;
  std::vector<float> output;
  double queue_wait_s = 0.0;  ///< submit -> batch close / slot admit
  double latency_s = 0.0;     ///< submit -> response ready (admitted only)
  double service_s = 0.0;     ///< batch close / slot admit -> response ready
  Index batch_rows = 0;       ///< rows in the batch/iteration it rode in
};

// ---- open-loop arrival traces -----------------------------------------------

/// A replayable arrival schedule: offsets (seconds, nondecreasing) from the
/// start of the run at which requests enter the engine.
struct ArrivalTrace {
  double duration_s = 0.0;
  std::vector<double> at_s;

  double offered_rps() const {
    return duration_s > 0.0
               ? static_cast<double>(at_s.size()) / duration_s
               : 0.0;
  }
};

/// Homogeneous Poisson arrivals at `rate_rps` over `duration_s`, i.i.d.
/// exponential gaps drawn from Pcg32(seed) — identical traces for identical
/// (rate, duration, seed).
ArrivalTrace poisson_trace(double rate_rps, double duration_s,
                           std::uint64_t seed);

/// Two-state Markov-modulated Poisson process: dwell times in the base and
/// burst states are exponential with the given means, and arrivals within a
/// state are Poisson at that state's rate.  Models the flash-crowd traffic
/// a clinical scoring service sees, with the same seeded determinism.
struct BurstyTraffic {
  double base_rps = 100.0;
  double burst_rps = 1000.0;
  double mean_base_dwell_s = 0.5;
  double mean_burst_dwell_s = 0.1;
};

ArrivalTrace mmpp_trace(const BurstyTraffic& traffic, double duration_s,
                        std::uint64_t seed);

}  // namespace candle::serve

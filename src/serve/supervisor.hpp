// Supervised serving: the resilience layer over the inference engine.
//
// The base serve::Engine assumes its workers are immortal.  This module
// drops that assumption (DESIGN.md "Serving failure model"): a
// SupervisedEngine runs the same shared-weight worker pool under a
// heartbeat watchdog that
//
//  * detects crashed workers (thread died mid-batch, real or injected via
//    runtime::FaultInjector), re-enqueues the batch they abandoned at the
//    front of the queue, and replaces them from the shared const model —
//    replacement is cheap because workers own no weights, only a scratch
//    assembler.  Restarts draw on a bounded budget with exponential
//    backoff; a pool that burns the whole budget collapses explicitly
//    (queued work resolves Outcome::Failed) instead of hanging clients.
//  * detects hung/straggling workers: a batch in flight past a
//    multiple of the EWMA batch service time is first *hedged* (a
//    duplicate dispatch races the straggler, first result wins through the
//    batcher's exactly-once promise guard, the loser is discarded and
//    accounted), and past a larger multiple the worker is *superseded* —
//    its rows re-dispatched, a replacement spawned, and the sleeper left
//    to finish its last batch and exit.  "The worker that hung stays
//    retired": replacements get fresh worker ids, so one-shot fault
//    schedules never re-fire (same contract as training-side crashes).
//  * detects NaN-poisoned inference outputs (silent corruption in flight)
//    by a finiteness scan and recomputes the batch once before letting
//    results out — the serving analogue of the training-side gradient
//    corruption retry.
//  * degrades gracefully under overload or a shrunken pool via *brownout*:
//    when the non-brownout shed fraction's EWMA crosses a threshold or
//    workers are down, admission tightens (smaller effective queue,
//    default-priced deadlines — see BatchPolicy) so clients see fast
//    explicit ShedBrownout rejections at reduced capacity instead of a
//    collapsing tail.
//
// All of it acts at *row* granularity: flights track per-row admit times
// and hedge flags, so under the continuous scheduler
// (BatchPolicy::continuous — per-iteration slot admit/evict, see DESIGN.md
// "Continuous batching") crash re-enqueue, hedging, and NaN recompute
// target exactly the rows affected rather than a whole coalesced batch.
// In coalescing mode every row of a flight shares one admit time and the
// behavior reduces to the original whole-batch semantics.
//
// Accounting stays exact through all of it: after drain(),
//   submitted == completed + shed_total() + failed
// with hedged duplicates and crash re-dispatches resolving each request
// exactly once.  The chaos suites (tests/test_serve_resilience.cpp,
// tests/test_serve_continuous.cpp) pin this under seeded fault schedules
// and TSan.
#pragma once

#include <atomic>
#include <condition_variable>
#include <future>
#include <memory>
#include <mutex>
#include <thread>
#include <unordered_map>
#include <vector>

#include "nn/model.hpp"
#include "runtime/fault.hpp"
#include "serve/batcher.hpp"
#include "serve/stats.hpp"

namespace candle::serve {

/// Watchdog, hedging, restart and brownout knobs.  Time constants default
/// small because tests and benches drive millisecond-scale models; a real
/// deployment scales them with its batch service time.
struct SupervisorPolicy {
  double tick_s = 1e-3;  ///< watchdog cadence

  // Hedged execution: a flight older than
  //   max(hedge_latency_mult * EWMA batch service, hedge_min_age_s)
  // gets a duplicate dispatch; first result wins.
  bool hedging = true;
  double hedge_latency_mult = 3.0;
  double hedge_min_age_s = 5e-3;

  // Hang declaration: a flight older than
  //   max(hang_latency_mult * EWMA batch service, hang_min_age_s)
  // retires its worker (supersede + replace + re-dispatch).  Must dominate
  // the hedge threshold — hedging races first, retirement is the escalation.
  double hang_latency_mult = 12.0;
  double hang_min_age_s = 50e-3;

  // Restart budget: total replacements (crash + hang) the supervisor may
  // spawn over the engine's lifetime, spaced by exponential backoff.
  Index max_restarts = 16;
  double restart_backoff_s = 1e-3;      ///< first restart delay
  double restart_backoff_mult = 2.0;
  double restart_backoff_max_s = 50e-3;

  /// How many times one request may be crash-abandoned before it resolves
  /// Outcome::Failed instead of being re-enqueued.
  Index max_request_crashes = 2;

  // Brownout controller: engage when the pool is degraded or the EWMA of
  // the organic shed fraction (queue-full + deadline sheds, *not* brownout
  // sheds — those would feed back) crosses enter; release with hysteresis.
  bool brownout_on_shrunken_pool = true;
  double brownout_enter_shed_frac = 0.5;
  double brownout_exit_shed_frac = 0.1;
  double brownout_shed_ewma_alpha = 0.3;
};

struct SupervisedOptions {
  Index workers = 2;
  BatchPolicy batch;
  SupervisorPolicy supervise;
  /// Seed the service EWMA with a one-shot full-batch probe before serving
  /// (see EngineOptions::calibration_probe): cold-start deadline admission
  /// prices the first window instead of admitting everything at zero.
  bool calibration_probe = false;
};

class SupervisedEngine {
 public:
  using Clock = DynamicBatcher::Clock;

  /// The model is borrowed (shared const weights, like serve::Engine).  The
  /// injector is optional and borrowed; it must outlive the engine.  Worker
  /// w polls serving fault kinds at (its own batch ordinal, its stable
  /// worker id w); replacements take ids N, N+1, ... so scheduled faults
  /// for a dead worker never re-fire.
  explicit SupervisedEngine(const Model& model, SupervisedOptions options = {},
                            runtime::FaultInjector* injector = nullptr);
  ~SupervisedEngine();

  SupervisedEngine(const SupervisedEngine&) = delete;
  SupervisedEngine& operator=(const SupervisedEngine&) = delete;

  /// Submit one request (thread-safe).  Resolves with the prediction, a
  /// shed outcome, or Outcome::Failed if its batch was crash-abandoned past
  /// the retry budget.
  std::future<Response> submit(Request req);

  /// Stop admitting, recover/serve everything already admitted (the
  /// watchdog keeps running crash recovery and restarts during the drain),
  /// join all workers.  Every admitted request is resolved before this
  /// returns; afterwards stats() satisfies the exact invariant.  Idempotent;
  /// also run by the destructor; safe to race with submit().
  void drain();

  EngineStats stats() const;

  Index live_workers() const { return batcher_.live_workers(); }
  bool brownout() const { return batcher_.brownout(); }
  const SupervisedOptions& options() const { return options_; }
  Index sample_numel() const { return sample_numel_; }

 private:
  // Worker lifecycle, written by the worker thread, read by the watchdog.
  static constexpr int kRunning = 0;
  static constexpr int kCrashed = 1;  // injected death; flight abandoned
  static constexpr int kExited = 2;   // clean exit (drain or superseded)

  struct WorkerSlot {
    Index id = 0;
    std::thread thread;
    std::atomic<int> state{kRunning};
    std::atomic<bool> superseded{false};  // watchdog retired this worker
    /// Continuous mode: rows acquired from the batcher and not yet released
    /// by this worker.  The watchdog releases the residue when the worker
    /// crashes (exchange(0)), so the batcher's in-flight count stays exact
    /// whatever interleaving of crash detection and hang retirement wins.
    std::atomic<Index> inflight{0};
    bool crash_handled = false;           // watchdog-side bookkeeping
    bool joined = false;
  };

  /// One row of a flight: the request, when it was admitted onto a worker
  /// slot (batch close time in coalescing mode), and whether the watchdog
  /// has already launched a duplicate for it.  Row-level granularity is
  /// what lets hedging, hang re-dispatch, and crash recovery act on
  /// individual rows under the continuous scheduler; in coalescing mode
  /// every row of a flight shares one admit time and the behavior reduces
  /// to the original whole-batch semantics.
  struct FlightRow {
    DynamicBatcher::PendingPtr row;
    Clock::time_point admitted{};
    bool hedged = false;
  };

  /// The rows in flight on one worker, registered before any fault can
  /// fire so the watchdog always sees what a dying worker held.
  struct Flight {
    std::vector<FlightRow> rows;
  };

  void worker_main(WorkerSlot* slot);
  void worker_coalescing(WorkerSlot* slot);
  void worker_continuous(WorkerSlot* slot);
  void supervisor_main();

  /// One watchdog pass: join/recover crashed workers, hedge and retire
  /// stragglers, spawn due restarts, reprice the live pool, run the
  /// brownout controller, collapse if the pool is dead with no budget.
  /// Called from the supervisor thread, and inline from drain() after that
  /// thread stops — never concurrently.
  void tick();

  void spawn_worker();
  void handle_crash(WorkerSlot& slot);
  void schedule_restart();
  void resolve_failed(const std::vector<DynamicBatcher::PendingPtr>& rows);
  void collapse();
  double batch_service_estimate_s() const;
  Index serving_live() const;
  void update_brownout(Index live);

  const Model& model_;
  const SupervisedOptions options_;
  const Index sample_numel_;
  const Index output_numel_;
  runtime::FaultInjector* injector_;
  DynamicBatcher batcher_;

  LatencyHistogram latency_;
  LatencyHistogram queue_wait_;
  LatencyHistogram service_;
  std::atomic<std::uint64_t> completed_{0};
  std::atomic<std::uint64_t> failed_{0};
  std::atomic<std::uint64_t> batches_{0};
  std::atomic<std::uint64_t> worker_crashes_{0};
  std::atomic<std::uint64_t> worker_hangs_{0};
  std::atomic<std::uint64_t> worker_restarts_{0};
  std::atomic<std::uint64_t> hedges_launched_{0};
  std::atomic<std::uint64_t> hedge_wins_{0};
  std::atomic<std::uint64_t> hedge_losses_{0};
  std::atomic<std::uint64_t> corruption_retries_{0};
  std::atomic<std::uint64_t> brownout_entries_{0};
  std::atomic<std::uint64_t> active_submits_{0};

  std::mutex flights_mu_;
  std::unordered_map<Index, Flight> flights_;

  // Slots and restart state are touched only by the watchdog (supervisor
  // thread, then the drain loop after it is joined) — serialized by
  // construction, no lock needed.
  std::vector<std::unique_ptr<WorkerSlot>> slots_;
  Index next_worker_id_ = 0;
  Index restarts_budgeted_ = 0;   // budget consumed (scheduled or spawned)
  Index pending_restarts_ = 0;    // scheduled, waiting out backoff
  Clock::time_point next_restart_at_{};
  double backoff_s_ = 0.0;
  bool collapsed_ = false;

  // Brownout controller state (watchdog-only).
  std::uint64_t last_submitted_ = 0;
  std::uint64_t last_organic_shed_ = 0;
  double shed_frac_ewma_ = 0.0;

  std::mutex sup_mu_;
  std::condition_variable sup_cv_;
  bool stop_supervisor_ = false;
  std::thread supervisor_;

  std::mutex drain_mu_;
  bool drained_ = false;
};

}  // namespace candle::serve

#include "serve/supervisor.hpp"

#include <algorithm>
#include <chrono>
#include <cmath>
#include <limits>
#include <utility>

#include "nn/batching.hpp"
#include "serve/engine.hpp"

namespace candle::serve {

namespace {

double seconds_between(SupervisedEngine::Clock::time_point a,
                       SupervisedEngine::Clock::time_point b) {
  return std::chrono::duration<double>(b - a).count();
}

}  // namespace

SupervisedEngine::SupervisedEngine(const Model& model,
                                   SupervisedOptions options,
                                   runtime::FaultInjector* injector)
    : model_(model),
      options_(options),
      sample_numel_(shape_numel(model.input_shape())),
      output_numel_(shape_numel(model.output_shape())),
      injector_(injector),
      batcher_(options.batch, options.workers) {
  CANDLE_CHECK(model_.built(), "SupervisedEngine needs a built model");
  CANDLE_CHECK(options_.workers >= 1, "engine needs at least one worker");
  const SupervisorPolicy& p = options_.supervise;
  CANDLE_CHECK(p.tick_s > 0.0, "tick_s must be positive");
  CANDLE_CHECK(p.hedge_latency_mult > 0.0 && p.hedge_min_age_s > 0.0,
               "hedge thresholds must be positive");
  CANDLE_CHECK(p.hang_latency_mult >= p.hedge_latency_mult &&
                   p.hang_min_age_s >= p.hedge_min_age_s,
               "hang threshold must dominate the hedge threshold");
  CANDLE_CHECK(p.max_restarts >= 0, "max_restarts must be non-negative");
  CANDLE_CHECK(p.restart_backoff_s > 0.0 && p.restart_backoff_mult >= 1.0 &&
                   p.restart_backoff_max_s >= p.restart_backoff_s,
               "restart backoff must be positive and nondecreasing");
  CANDLE_CHECK(p.max_request_crashes >= 0,
               "max_request_crashes must be non-negative");
  CANDLE_CHECK(p.brownout_enter_shed_frac > p.brownout_exit_shed_frac,
               "brownout thresholds need hysteresis (enter > exit)");
  CANDLE_CHECK(p.brownout_shed_ewma_alpha > 0.0 &&
                   p.brownout_shed_ewma_alpha <= 1.0,
               "brownout_shed_ewma_alpha must be in (0, 1]");
  if (options_.calibration_probe) run_calibration_probe(model_, batcher_);
  slots_.reserve(static_cast<std::size_t>(options_.workers));
  for (Index w = 0; w < options_.workers; ++w) spawn_worker();
  supervisor_ = std::thread([this] { supervisor_main(); });
}

SupervisedEngine::~SupervisedEngine() { drain(); }

void SupervisedEngine::spawn_worker() {
  auto slot = std::make_unique<WorkerSlot>();
  slot->id = next_worker_id_++;
  WorkerSlot* raw = slot.get();
  slots_.push_back(std::move(slot));
  raw->thread = std::thread([this, raw] { worker_main(raw); });
}

std::future<Response> SupervisedEngine::submit(Request req) {
  CANDLE_CHECK(static_cast<Index>(req.input.size()) == sample_numel_,
               "request input must hold exactly one flattened sample");
  active_submits_.fetch_add(1, std::memory_order_acq_rel);
  std::future<Response> f = batcher_.submit(std::move(req));
  active_submits_.fetch_sub(1, std::memory_order_acq_rel);
  return f;
}

void SupervisedEngine::worker_main(WorkerSlot* slot) {
  if (options_.batch.continuous) {
    worker_continuous(slot);
  } else {
    worker_coalescing(slot);
  }
}

void SupervisedEngine::worker_coalescing(WorkerSlot* slot) {
  using runtime::FaultKind;
  BatchAssembler assembler(model_.input_shape(), options_.batch.max_batch);
  std::vector<float> out;
  Index ordinal = 0;  // this worker's own batch counter; fault-schedule key
  while (!slot->superseded.load(std::memory_order_acquire)) {
    std::vector<DynamicBatcher::PendingPtr> batch = batcher_.next_batch();
    if (batch.empty()) break;  // drained
    const auto closed_at = Clock::now();
    // Register the flight before any fault can fire: whatever kills this
    // worker from here on, the watchdog sees exactly which rows it held.
    // Coalescing mode: every row shares the batch close as its admit time.
    {
      Flight flight;
      flight.rows.reserve(batch.size());
      for (const auto& p : batch) {
        flight.rows.push_back(FlightRow{p, closed_at, false});
      }
      std::lock_guard<std::mutex> lk(flights_mu_);
      flights_[slot->id] = std::move(flight);
    }
    if (injector_) {
      if (injector_->poll(FaultKind::WorkerCrash, ordinal, slot->id)) {
        injector_->record(ordinal, slot->id, FaultKind::WorkerCrash,
                          "injected", "worker died mid-batch");
        slot->state.store(kCrashed, std::memory_order_release);
        return;  // flight left registered; the watchdog recovers it
      }
      if (auto ev =
              injector_->poll(FaultKind::WorkerHang, ordinal, slot->id)) {
        injector_->record(ordinal, slot->id, FaultKind::WorkerHang, "injected",
                          "worker stalled mid-batch");
        std::this_thread::sleep_for(
            std::chrono::duration<double>(ev->delay_s));
      }
    }
    // Service time is measured from here, after any injected stall: the
    // EWMA must track *normal* service so hedge/hang thresholds derived
    // from it keep flagging stalls instead of absorbing them.
    const auto exec_start = Clock::now();
    const Index rows = static_cast<Index>(batch.size());
    assembler.begin(rows);
    for (Index i = 0; i < rows; ++i) {
      assembler.set_row(i, batch[static_cast<std::size_t>(i)]->request.input);
    }
    const Tensor y = model_.infer(assembler.batch());
    out.assign(y.data(), y.data() + rows * output_numel_);
    if (injector_) {
      if (auto ev = injector_->poll(FaultKind::BatchCorruption, ordinal,
                                    slot->id)) {
        const Index n = std::min<Index>(ev->corrupt_count,
                                        static_cast<Index>(out.size()));
        for (Index k = 0; k < n; ++k) {
          out[static_cast<std::size_t>(k)] =
              std::numeric_limits<float>::quiet_NaN();
        }
        injector_->record(ordinal, slot->id, FaultKind::BatchCorruption,
                          "injected", "inference output NaN-poisoned");
      }
    }
    // Silent-corruption gate: no non-finite value leaves the engine.  One
    // recompute clears a transient (injected faults are one-shot, matching
    // a bit flip in flight, not a broken model).
    bool poisoned = false;
    for (float v : out) {
      if (!std::isfinite(v)) {
        poisoned = true;
        break;
      }
    }
    if (poisoned) {
      corruption_retries_.fetch_add(1, std::memory_order_relaxed);
      const Tensor y2 = model_.infer(assembler.batch());
      out.assign(y2.data(), y2.data() + rows * output_numel_);
      if (injector_) {
        injector_->record(ordinal, slot->id, FaultKind::BatchCorruption,
                          "recovered", "poisoned batch recomputed");
      }
    }
    const auto finished_at = Clock::now();
    batcher_.record_service(rows, seconds_between(exec_start, finished_at));
    batches_.fetch_add(1, std::memory_order_relaxed);
    for (Index i = 0; i < rows; ++i) {
      DynamicBatcher::Pending& p = *batch[static_cast<std::size_t>(i)];
      Response r;
      r.id = p.request.id;
      r.outcome = Outcome::Completed;
      r.output.assign(out.begin() + i * output_numel_,
                      out.begin() + (i + 1) * output_numel_);
      const double queue_wait_s = seconds_between(p.enqueued, closed_at);
      const double service_s = seconds_between(closed_at, finished_at);
      const double latency_s = seconds_between(p.enqueued, finished_at);
      r.queue_wait_s = queue_wait_s;
      r.service_s = service_s;
      r.latency_s = latency_s;
      r.batch_rows = rows;
      if (p.try_resolve(std::move(r))) {
        queue_wait_.record(queue_wait_s);
        service_.record(service_s);
        latency_.record(latency_s);
        completed_.fetch_add(1, std::memory_order_relaxed);
        if (p.hedged.load(std::memory_order_acquire)) {
          hedge_wins_.fetch_add(1, std::memory_order_relaxed);
        }
      } else {
        // A duplicate dispatch (hedge twin or crash re-dispatch racing a
        // superseded straggler) got there first: discard, account, move on.
        hedge_losses_.fetch_add(1, std::memory_order_relaxed);
      }
    }
    {
      std::lock_guard<std::mutex> lk(flights_mu_);
      flights_.erase(slot->id);  // no-op if the watchdog stole it (hang)
    }
    ++ordinal;
  }
  slot->state.store(kExited, std::memory_order_release);
}

void SupervisedEngine::worker_continuous(WorkerSlot* slot) {
  using runtime::FaultKind;
  // Continuous scheduler under supervision: the same per-iteration slot
  // admit/evict loop as Engine::worker_continuous, with the flight registry
  // tracking exactly the rows this worker's slots hold so crash recovery,
  // hedging, and NaN recompute act at row scope.  All buffers are sized
  // once; the steady-state iteration allocates nothing beyond the response
  // payloads.
  const Index capacity = options_.batch.max_batch;
  RowSlotAssembler slots(model_.input_shape(), capacity);
  std::vector<DynamicBatcher::PendingPtr> holders(
      static_cast<std::size_t>(capacity));
  std::vector<Clock::time_point> admitted(static_cast<std::size_t>(capacity));
  std::vector<DynamicBatcher::PendingPtr> incoming;
  incoming.reserve(static_cast<std::size_t>(capacity));
  std::vector<Index> order;  // slot backing each gathered row
  order.reserve(static_cast<std::size_t>(capacity));
  std::vector<Index> poisoned_rows;   // gathered row indices to recompute
  std::vector<Index> poisoned_slots;  // their backing slots
  poisoned_rows.reserve(static_cast<std::size_t>(capacity));
  poisoned_slots.reserve(static_cast<std::size_t>(capacity));
  std::vector<float> out;
  Index ordinal = 0;  // this worker's iteration counter; fault-schedule key
  // Rows this worker acquired and has not yet released are mirrored on the
  // slot so the watchdog can return a dead worker's residue exactly (see
  // WorkerSlot::inflight).
  const auto release = [&](Index n) {
    if (n == 0) return;
    batcher_.release_rows(n);
    slot->inflight.fetch_sub(n, std::memory_order_acq_rel);
  };
  while (!slot->superseded.load(std::memory_order_acquire)) {
    incoming.clear();
    const bool block = slots.occupied() == 0;
    const bool open =
        batcher_.acquire_rows(slots.free_slots(), incoming, block);
    if (!open && incoming.empty() && slots.occupied() == 0) break;  // drained
    if (!incoming.empty()) {
      slot->inflight.fetch_add(static_cast<Index>(incoming.size()),
                               std::memory_order_acq_rel);
    }
    const auto admitted_at = Clock::now();
    for (auto& p : incoming) {
      const Index s = slots.admit(p->request.input);
      admitted[static_cast<std::size_t>(s)] = admitted_at;
      holders[static_cast<std::size_t>(s)] = std::move(p);
    }
    // Rows resolved elsewhere since acquisition (a hedge twin or crash
    // re-dispatch won the race before we computed) leave their slots before
    // the gather — the row-scope evict that keeps slots free for new work.
    Index evicted = 0;
    for (Index s = 0; s < capacity; ++s) {
      auto& h = holders[static_cast<std::size_t>(s)];
      if (h && h->resolved.load(std::memory_order_acquire)) {
        h.reset();
        slots.evict(s);
        ++evicted;
      }
    }
    release(evicted);
    if (slots.occupied() == 0) continue;
    // Register the flight before any fault can fire: whatever kills this
    // worker from here on, the watchdog sees exactly which rows it held.
    {
      Flight flight;
      flight.rows.reserve(static_cast<std::size_t>(slots.occupied()));
      for (Index s = 0; s < capacity; ++s) {
        const auto& h = holders[static_cast<std::size_t>(s)];
        if (h) {
          flight.rows.push_back(
              FlightRow{h, admitted[static_cast<std::size_t>(s)], false});
        }
      }
      std::lock_guard<std::mutex> lk(flights_mu_);
      flights_[slot->id] = std::move(flight);
    }
    if (injector_) {
      if (injector_->poll(FaultKind::WorkerCrash, ordinal, slot->id)) {
        injector_->record(ordinal, slot->id, FaultKind::WorkerCrash,
                          "injected", "worker died mid-iteration");
        slot->state.store(kCrashed, std::memory_order_release);
        return;  // flight left registered; the watchdog recovers it
      }
      if (auto ev =
              injector_->poll(FaultKind::WorkerHang, ordinal, slot->id)) {
        injector_->record(ordinal, slot->id, FaultKind::WorkerHang, "injected",
                          "worker stalled mid-iteration");
        std::this_thread::sleep_for(
            std::chrono::duration<double>(ev->delay_s));
      }
    }
    // EWMA from here, after any injected stall (see worker_coalescing).
    const auto exec_start = Clock::now();
    const Index rows = slots.occupied();
    const Tensor& y = model_.infer(slots.gather());
    out.assign(y.data(), y.data() + rows * output_numel_);
    order.assign(slots.gathered_slots().begin(), slots.gathered_slots().end());
    if (injector_) {
      if (auto ev = injector_->poll(FaultKind::BatchCorruption, ordinal,
                                    slot->id)) {
        const Index n = std::min<Index>(ev->corrupt_count,
                                        static_cast<Index>(out.size()));
        for (Index k = 0; k < n; ++k) {
          out[static_cast<std::size_t>(k)] =
              std::numeric_limits<float>::quiet_NaN();
        }
        injector_->record(ordinal, slot->id, FaultKind::BatchCorruption,
                          "injected", "inference output NaN-poisoned");
      }
    }
    // Row-scope silent-corruption gate: recompute only the poisoned rows
    // (clean rows' outputs are already final — bit-identical by row
    // independence of the forward GEMMs), instead of redoing the batch.
    poisoned_rows.clear();
    poisoned_slots.clear();
    for (Index i = 0; i < rows; ++i) {
      bool bad = false;
      for (Index k = i * output_numel_; k < (i + 1) * output_numel_; ++k) {
        if (!std::isfinite(out[static_cast<std::size_t>(k)])) {
          bad = true;
          break;
        }
      }
      if (bad) {
        poisoned_rows.push_back(i);
        poisoned_slots.push_back(order[static_cast<std::size_t>(i)]);
      }
    }
    if (!poisoned_rows.empty()) {
      corruption_retries_.fetch_add(1, std::memory_order_relaxed);
      const Tensor& y2 = model_.infer(slots.gather(poisoned_slots));
      for (std::size_t j = 0; j < poisoned_rows.size(); ++j) {
        const Index i = poisoned_rows[j];
        std::copy(y2.data() + static_cast<Index>(j) * output_numel_,
                  y2.data() + static_cast<Index>(j + 1) * output_numel_,
                  out.begin() + i * output_numel_);
      }
      if (injector_) {
        injector_->record(ordinal, slot->id, FaultKind::BatchCorruption,
                          "recovered", "poisoned rows recomputed");
      }
    }
    const auto finished_at = Clock::now();
    batcher_.record_service(rows, seconds_between(exec_start, finished_at));
    batches_.fetch_add(1, std::memory_order_relaxed);
    for (Index i = 0; i < rows; ++i) {
      const Index s = order[static_cast<std::size_t>(i)];
      DynamicBatcher::PendingPtr& p = holders[static_cast<std::size_t>(s)];
      Response r;
      r.id = p->request.id;
      r.outcome = Outcome::Completed;
      r.output.assign(out.begin() + i * output_numel_,
                      out.begin() + (i + 1) * output_numel_);
      const double queue_wait_s =
          seconds_between(p->enqueued, admitted[static_cast<std::size_t>(s)]);
      const double service_s = seconds_between(
          admitted[static_cast<std::size_t>(s)], finished_at);
      const double latency_s = seconds_between(p->enqueued, finished_at);
      r.queue_wait_s = queue_wait_s;
      r.service_s = service_s;
      r.latency_s = latency_s;
      r.batch_rows = rows;
      if (p->try_resolve(std::move(r))) {
        queue_wait_.record(queue_wait_s);
        service_.record(service_s);
        latency_.record(latency_s);
        completed_.fetch_add(1, std::memory_order_relaxed);
        if (p->hedged.load(std::memory_order_acquire)) {
          hedge_wins_.fetch_add(1, std::memory_order_relaxed);
        }
      } else {
        hedge_losses_.fetch_add(1, std::memory_order_relaxed);
      }
      p.reset();
      slots.evict(s);
    }
    release(rows);
    {
      std::lock_guard<std::mutex> lk(flights_mu_);
      flights_.erase(slot->id);  // no-op if the watchdog stole it (hang)
    }
    ++ordinal;
  }
  slot->state.store(kExited, std::memory_order_release);
}

void SupervisedEngine::resolve_failed(
    const std::vector<DynamicBatcher::PendingPtr>& rows) {
  for (const auto& p : rows) {
    if (!p) continue;
    Response r;
    r.id = p->request.id;
    r.outcome = Outcome::Failed;
    if (p->try_resolve(std::move(r))) {
      failed_.fetch_add(1, std::memory_order_relaxed);
    }
  }
}

void SupervisedEngine::schedule_restart() {
  if (collapsed_ ||
      restarts_budgeted_ >= options_.supervise.max_restarts) {
    return;  // no budget left; the collapse check decides what happens next
  }
  ++restarts_budgeted_;
  ++pending_restarts_;
  backoff_s_ = backoff_s_ <= 0.0
                   ? options_.supervise.restart_backoff_s
                   : std::min(backoff_s_ * options_.supervise.restart_backoff_mult,
                              options_.supervise.restart_backoff_max_s);
  next_restart_at_ =
      Clock::now() + std::chrono::duration_cast<Clock::duration>(
                         std::chrono::duration<double>(backoff_s_));
}

void SupervisedEngine::handle_crash(WorkerSlot& slot) {
  slot.crash_handled = true;
  worker_crashes_.fetch_add(1, std::memory_order_relaxed);
  if (slot.thread.joinable()) {
    slot.thread.join();
    slot.joined = true;
  }
  Flight flight;
  bool had_flight = false;
  {
    std::lock_guard<std::mutex> lk(flights_mu_);
    auto it = flights_.find(slot.id);
    if (it != flights_.end()) {
      flight = std::move(it->second);
      flights_.erase(it);
      had_flight = true;
    }
  }
  // Return whatever the dead worker still held acquired: a continuous
  // worker releases rows as it evicts them, and a crashed one never got
  // there.  The count lives on the slot (not the flight) so the release
  // stays exact even if the hang path consumed the flight first.
  if (options_.batch.continuous) {
    batcher_.release_rows(slot.inflight.exchange(0, std::memory_order_acq_rel));
  }
  if (had_flight) {
    std::vector<DynamicBatcher::PendingPtr> survivors;
    std::vector<DynamicBatcher::PendingPtr> casualties;
    for (auto& fr : flight.rows) {
      auto& p = fr.row;
      if (!p || p->resolved.load(std::memory_order_acquire)) continue;
      const Index crashes =
          p->crashes.fetch_add(1, std::memory_order_acq_rel) + 1;
      if (crashes > options_.supervise.max_request_crashes) {
        casualties.push_back(std::move(p));
      } else {
        survivors.push_back(std::move(p));
      }
    }
    resolve_failed(casualties);
    batcher_.requeue(std::move(survivors));
  }
  if (injector_) {
    injector_->record(-1, slot.id, runtime::FaultKind::WorkerCrash,
                      "detected", "watchdog recovered abandoned batch");
  }
  schedule_restart();
}

double SupervisedEngine::batch_service_estimate_s() const {
  return batcher_.counters().ewma_row_service_s *
         static_cast<double>(options_.batch.max_batch);
}

Index SupervisedEngine::serving_live() const {
  Index live = 0;
  for (const auto& s : slots_) {
    if (s->state.load(std::memory_order_acquire) == kRunning &&
        !s->superseded.load(std::memory_order_acquire)) {
      ++live;
    }
  }
  return live;
}

void SupervisedEngine::update_brownout(Index live) {
  const SupervisorPolicy& p = options_.supervise;
  const DynamicBatcher::Counters c = batcher_.counters();
  const std::uint64_t organic_shed = c.shed_queue_full + c.shed_deadline;
  const std::uint64_t ds = c.submitted - last_submitted_;
  const std::uint64_t dshed = organic_shed - last_organic_shed_;
  last_submitted_ = c.submitted;
  last_organic_shed_ = organic_shed;
  if (ds > 0) {
    const double frac =
        static_cast<double>(dshed) / static_cast<double>(ds);
    shed_frac_ewma_ = (1.0 - p.brownout_shed_ewma_alpha) * shed_frac_ewma_ +
                      p.brownout_shed_ewma_alpha * frac;
  }
  const bool degraded_pool =
      p.brownout_on_shrunken_pool && live < options_.workers;
  const bool on = batcher_.brownout();
  if (!on && (degraded_pool || shed_frac_ewma_ >= p.brownout_enter_shed_frac)) {
    brownout_entries_.fetch_add(1, std::memory_order_relaxed);
    batcher_.set_brownout(true);
  } else if (on && !degraded_pool &&
             shed_frac_ewma_ <= p.brownout_exit_shed_frac) {
    batcher_.set_brownout(false);
  }
}

void SupervisedEngine::collapse() {
  if (collapsed_) return;
  collapsed_ = true;
  // No live workers and no budget to make one: shedding the queue as
  // explicit failures beats futures that never resolve.  Late submits shed
  // ShedShutdown from here on.
  batcher_.start_drain();
  resolve_failed(batcher_.take_all());
  if (injector_) {
    injector_->record(-1, -1, runtime::FaultKind::WorkerCrash, "detected",
                      "pool collapsed: no live workers, restart budget spent");
  }
}

void SupervisedEngine::tick() {
  const SupervisorPolicy& p = options_.supervise;
  // 1. Crashed workers: join, recover the abandoned batch, budget a restart.
  for (auto& s : slots_) {
    if (!s->crash_handled &&
        s->state.load(std::memory_order_acquire) == kCrashed) {
      handle_crash(*s);
    }
  }
  // 2. Reap cleanly exited superseded workers (their last batch finished).
  for (auto& s : slots_) {
    if (!s->joined && s->superseded.load(std::memory_order_acquire) &&
        s->state.load(std::memory_order_acquire) == kExited &&
        s->thread.joinable()) {
      s->thread.join();
      s->joined = true;
    }
  }
  // 3. Stragglers: hedge first, retire on escalation.
  const auto now = Clock::now();
  const double est = batch_service_estimate_s();
  const double hedge_after =
      std::max(p.hedge_latency_mult * est, p.hedge_min_age_s);
  const double hang_after =
      std::max(p.hang_latency_mult * est, p.hang_min_age_s);
  std::vector<DynamicBatcher::PendingPtr> duplicates;
  std::vector<Index> hung_ids;
  {
    std::lock_guard<std::mutex> lk(flights_mu_);
    for (auto& [id, flight] : flights_) {
      // Row-scope straggler detection: ages are per row (one shared admit
      // time in coalescing mode, per-iteration admits in continuous mode).
      // The *oldest row* declares the hang — resolved or not: a hedge twin
      // resolving the rows does not unstick the worker, which still
      // occupies a pool slot and must be retired.  Hedging below does skip
      // resolved rows (duplicating a finished row is pure waste).
      bool hung = false;
      for (const auto& fr : flight.rows) {
        if (!fr.row) continue;
        if (seconds_between(fr.admitted, now) >= hang_after) {
          hung = true;
          break;
        }
      }
      if (hung) {
        hung_ids.push_back(id);
        continue;
      }
      if (!p.hedging) continue;
      bool launched = false;
      for (auto& fr : flight.rows) {
        if (fr.hedged || !fr.row ||
            fr.row->resolved.load(std::memory_order_acquire)) {
          continue;
        }
        if (seconds_between(fr.admitted, now) >= hedge_after) {
          fr.hedged = true;
          fr.row->hedged.store(true, std::memory_order_release);
          duplicates.push_back(fr.row);
          launched = true;
        }
      }
      if (launched) {
        hedges_launched_.fetch_add(1, std::memory_order_relaxed);
      }
    }
    for (Index id : hung_ids) {
      auto it = flights_.find(id);
      if (it == flights_.end()) continue;
      for (auto& fr : it->second.rows) {
        auto& row = fr.row;
        if (!row || row->resolved.load(std::memory_order_acquire)) continue;
        // The retired straggler may still finish its batch; its result
        // races the re-dispatch through the exactly-once guard, so mark
        // the row hedged for loser accounting.
        row->hedged.store(true, std::memory_order_release);
        duplicates.push_back(row);
      }
      flights_.erase(it);
    }
  }
  if (!duplicates.empty()) batcher_.requeue(std::move(duplicates));
  for (Index id : hung_ids) {
    for (auto& s : slots_) {
      if (s->id != id || s->superseded.load(std::memory_order_acquire)) {
        continue;
      }
      s->superseded.store(true, std::memory_order_release);
      worker_hangs_.fetch_add(1, std::memory_order_relaxed);
      if (injector_) {
        injector_->record(-1, id, runtime::FaultKind::WorkerHang, "detected",
                          "watchdog retired straggler, batch re-dispatched");
      }
      schedule_restart();
    }
  }
  // 4. Spawn restarts whose backoff elapsed.
  while (pending_restarts_ > 0 && Clock::now() >= next_restart_at_ &&
         !collapsed_) {
    --pending_restarts_;
    spawn_worker();
    worker_restarts_.fetch_add(1, std::memory_order_relaxed);
    if (pending_restarts_ > 0) {
      next_restart_at_ =
          Clock::now() + std::chrono::duration_cast<Clock::duration>(
                             std::chrono::duration<double>(backoff_s_));
    }
  }
  // 5. Reprice admission for the current pool; run the brownout controller.
  const Index live = serving_live();
  batcher_.set_live_workers(live);
  update_brownout(live);
  // 6. Dead pool, empty budget: fail explicitly rather than hang clients.
  if (live == 0 && pending_restarts_ == 0 &&
      restarts_budgeted_ >= p.max_restarts) {
    collapse();
  }
}

void SupervisedEngine::supervisor_main() {
  std::unique_lock<std::mutex> lk(sup_mu_);
  for (;;) {
    sup_cv_.wait_for(lk,
                     std::chrono::duration_cast<Clock::duration>(
                         std::chrono::duration<double>(
                             options_.supervise.tick_s)),
                     [&] { return stop_supervisor_; });
    if (stop_supervisor_) return;
    lk.unlock();
    tick();
    lk.lock();
  }
}

void SupervisedEngine::drain() {
  std::lock_guard<std::mutex> lk(drain_mu_);
  if (drained_) return;
  batcher_.start_drain();
  while (active_submits_.load(std::memory_order_acquire) != 0) {
    std::this_thread::yield();
  }
  {
    std::lock_guard<std::mutex> slk(sup_mu_);
    stop_supervisor_ = true;
  }
  sup_cv_.notify_all();
  if (supervisor_.joinable()) supervisor_.join();
  // Drain is not a truce: keep ticking inline so crashes during the drain
  // are still recovered and re-dispatched until every admitted row is out
  // of the queue and out of flight.
  for (;;) {
    tick();
    bool flights_empty;
    {
      std::lock_guard<std::mutex> flk(flights_mu_);
      flights_empty = flights_.empty();
    }
    if (batcher_.depth() == 0 && flights_empty) break;
    std::this_thread::sleep_for(std::chrono::microseconds(200));
  }
  // Queue empty + drain flag -> every worker's next next_batch() returns
  // empty and the thread exits; superseded stragglers finish their last
  // batch first.  Join them all.
  for (auto& s : slots_) {
    if (s->thread.joinable()) {
      s->thread.join();
      s->joined = true;
    }
  }
  // A worker that crashed after the final tick left its batch behind with
  // nobody to recover it: resolve those rows (and anything it re-queued
  // too late to serve) as Failed so the exact accounting still closes.
  std::vector<DynamicBatcher::PendingPtr> leftovers;
  {
    std::lock_guard<std::mutex> flk(flights_mu_);
    for (auto& [id, flight] : flights_) {
      for (auto& fr : flight.rows) leftovers.push_back(std::move(fr.row));
    }
    flights_.clear();
  }
  resolve_failed(leftovers);
  resolve_failed(batcher_.take_all());
  // Continuous mode: workers that died after the final tick never released
  // their acquired rows; with every thread joined, sweep the residue so the
  // batcher's in-flight count drains to exactly zero.
  if (options_.batch.continuous) {
    for (auto& s : slots_) {
      batcher_.release_rows(s->inflight.exchange(0, std::memory_order_acq_rel));
    }
  }
  drained_ = true;
}

EngineStats SupervisedEngine::stats() const {
  const DynamicBatcher::Counters c = batcher_.counters();
  EngineStats s;
  s.submitted = c.submitted;
  s.admitted = c.admitted;
  s.completed = completed_.load(std::memory_order_relaxed);
  s.failed = failed_.load(std::memory_order_relaxed);
  s.shed_queue_full = c.shed_queue_full;
  s.shed_deadline = c.shed_deadline;
  s.shed_shutdown = c.shed_shutdown;
  s.shed_brownout = c.shed_brownout;
  s.batches = batches_.load(std::memory_order_relaxed);
  s.peak_queue_depth = c.peak_queue_depth;
  s.inflight_rows = c.inflight_rows;
  s.ewma_row_service_s = c.ewma_row_service_s;
  s.requeued = c.requeued;
  s.worker_crashes = worker_crashes_.load(std::memory_order_relaxed);
  s.worker_hangs = worker_hangs_.load(std::memory_order_relaxed);
  s.worker_restarts = worker_restarts_.load(std::memory_order_relaxed);
  s.hedges_launched = hedges_launched_.load(std::memory_order_relaxed);
  s.hedge_wins = hedge_wins_.load(std::memory_order_relaxed);
  s.hedge_losses = hedge_losses_.load(std::memory_order_relaxed);
  s.corruption_retries = corruption_retries_.load(std::memory_order_relaxed);
  s.brownout_entries = brownout_entries_.load(std::memory_order_relaxed);
  s.live_workers = c.live_workers;
  s.latency = latency_.snapshot();
  s.queue_wait = queue_wait_.snapshot();
  s.service = service_.snapshot();
  return s;
}

}  // namespace candle::serve

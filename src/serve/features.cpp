#include "serve/features.hpp"

namespace candle::serve {

FeatureService::FeatureService(data::SampleStore& store)
    : store_(&store), dim_(store.x_elems()) {
  CANDLE_CHECK(dim_ >= 1, "feature source has empty samples");
}

Index FeatureService::sample_count() const {
  return store_->source().size();
}

void FeatureService::fetch_features(Index sample, std::span<float> out) {
  store_->get_x(sample, out);
}

Request FeatureService::make_request(std::uint64_t id, Index sample,
                                     double deadline_s) {
  Request req;
  req.id = id;
  req.deadline_s = deadline_s;
  req.input.resize(static_cast<std::size_t>(dim_));
  store_->get_x(sample, std::span<float>(req.input.data(), req.input.size()));
  return req;
}

void FeatureService::warm(std::span<const Index> samples) {
  store_->prefetch(samples);
  store_->drain();
}

}  // namespace candle::serve

#include "serve/batcher.hpp"

#include <algorithm>
#include <cmath>
#include <limits>
#include <utility>

namespace candle::serve {

DynamicBatcher::DynamicBatcher(BatchPolicy policy, Index workers)
    : policy_(policy), live_workers_(workers) {
  CANDLE_CHECK(policy_.max_batch >= 1, "max_batch must be positive");
  CANDLE_CHECK(policy_.max_wait_s >= 0.0, "max_wait_s must be non-negative");
  CANDLE_CHECK(policy_.queue_capacity >= 1,
               "queue_capacity must be positive");
  CANDLE_CHECK(policy_.service_ewma_alpha > 0.0 &&
                   policy_.service_ewma_alpha <= 1.0,
               "service_ewma_alpha must be in (0, 1]");
  CANDLE_CHECK(policy_.brownout_queue_frac > 0.0 &&
                   policy_.brownout_queue_frac <= 1.0,
               "brownout_queue_frac must be in (0, 1]");
  CANDLE_CHECK(policy_.brownout_deadline_s >= 0.0,
               "brownout_deadline_s must be non-negative");
  CANDLE_CHECK(live_workers_ >= 1, "batcher needs at least one worker");
  counters_.live_workers = live_workers_;
}

Response DynamicBatcher::shed_response(const Request& req, Outcome outcome) {
  Response r;
  r.id = req.id;
  r.outcome = outcome;
  return r;
}

double DynamicBatcher::predicted_wait_locked(Index depth) const {
  if (counters_.ewma_row_service_s <= 0.0) return 0.0;  // not yet calibrated
  if (policy_.continuous) {
    // Slot-availability pricing: rows drain individually, so the sojourn is
    // every row ahead of this one (in flight on worker slots + queued) plus
    // itself, at the EWMA per-row rate over the live pool.  No whole-batch
    // quantization: admitting row max_batch+1 costs one row more, not one
    // batch more.
    const double rows_ahead =
        static_cast<double>(inflight_rows_ + depth + 1);
    return rows_ahead * counters_.ewma_row_service_s /
           static_cast<double>(live_workers_);
  }
  const double batch_service_s =
      counters_.ewma_row_service_s * static_cast<double>(policy_.max_batch);
  const double batches_ahead = std::ceil(
      static_cast<double>(depth + 1) / static_cast<double>(policy_.max_batch));
  return batches_ahead * batch_service_s / static_cast<double>(live_workers_);
}

double DynamicBatcher::predicted_wait_s() const {
  std::lock_guard<std::mutex> lk(mu_);
  return predicted_wait_locked(static_cast<Index>(queue_.size()));
}

std::future<Response> DynamicBatcher::submit(Request req) {
  auto pending = std::make_shared<Pending>();
  std::future<Response> future = pending->promise.get_future();
  std::lock_guard<std::mutex> lk(mu_);
  ++counters_.submitted;
  if (draining_) {
    pending->promise.set_value(shed_response(req, Outcome::ShedShutdown));
    ++counters_.shed_shutdown;
    return future;
  }
  const Index depth = static_cast<Index>(queue_.size());
  // Brownout shrinks the effective queue: the tighter bound sheds first
  // (ShedBrownout), the configured capacity stays the hard ceiling
  // (ShedQueueFull) so the two rejection causes remain distinguishable.
  if (depth >= policy_.queue_capacity) {
    pending->promise.set_value(shed_response(req, Outcome::ShedQueueFull));
    ++counters_.shed_queue_full;
    return future;
  }
  if (brownout_) {
    const Index effective = std::max<Index>(
        1, static_cast<Index>(std::ceil(
               policy_.brownout_queue_frac *
               static_cast<double>(policy_.queue_capacity))));
    if (depth >= effective) {
      pending->promise.set_value(shed_response(req, Outcome::ShedBrownout));
      ++counters_.shed_brownout;
      return future;
    }
  }
  if (policy_.deadline_admission) {
    double deadline = req.deadline_s;
    bool brownout_priced = false;
    if (brownout_ && policy_.brownout_deadline_s > 0.0 &&
        !(deadline < std::numeric_limits<double>::infinity())) {
      deadline = policy_.brownout_deadline_s;
      brownout_priced = true;
    }
    if (predicted_wait_locked(depth) > deadline) {
      const Outcome o =
          brownout_priced ? Outcome::ShedBrownout : Outcome::ShedDeadline;
      pending->promise.set_value(shed_response(req, o));
      if (brownout_priced) {
        ++counters_.shed_brownout;
      } else {
        ++counters_.shed_deadline;
      }
      return future;
    }
  }
  ++counters_.admitted;
  counters_.peak_queue_depth =
      std::max(counters_.peak_queue_depth, static_cast<std::int64_t>(depth + 1));
  pending->request = std::move(req);
  pending->enqueued = Clock::now();
  queue_.push_back(std::move(pending));
  cv_consumer_.notify_one();
  return future;
}

std::vector<DynamicBatcher::PendingPtr> DynamicBatcher::next_batch() {
  std::unique_lock<std::mutex> lk(mu_);
  for (;;) {
    // Entries resolved elsewhere (a hedge or crash duplicate whose twin
    // already won) are dead weight: drop them before they shape the
    // coalescing decision.  They were accounted when resolved.
    while (!queue_.empty() &&
           queue_.front()->resolved.load(std::memory_order_acquire)) {
      queue_.pop_front();
    }
    if (queue_.empty()) {
      if (draining_) return {};
      cv_consumer_.wait(lk, [&] { return !queue_.empty() || draining_; });
      continue;
    }
    const auto close_at =
        queue_.front()->enqueued +
        std::chrono::duration_cast<Clock::duration>(
            std::chrono::duration<double>(policy_.max_wait_s));
    if (static_cast<Index>(queue_.size()) >= policy_.max_batch ||
        Clock::now() >= close_at || draining_) {
      std::vector<PendingPtr> batch;
      batch.reserve(static_cast<std::size_t>(policy_.max_batch));
      while (!queue_.empty() &&
             static_cast<Index>(batch.size()) < policy_.max_batch) {
        PendingPtr p = std::move(queue_.front());
        queue_.pop_front();
        if (p->resolved.load(std::memory_order_acquire)) continue;
        batch.push_back(std::move(p));
      }
      if (batch.empty()) continue;  // everything popped was already resolved
      // More rows may remain (burst beyond max_batch): hand them to a
      // sibling worker instead of letting them wait out a fresh window.
      if (!queue_.empty()) cv_consumer_.notify_one();
      return batch;
    }
    cv_consumer_.wait_until(lk, close_at);
  }
}

bool DynamicBatcher::acquire_rows(Index want, std::vector<PendingPtr>& out,
                                  bool block) {
  CANDLE_CHECK(policy_.continuous,
               "acquire_rows is the continuous-mode consumer");
  CANDLE_CHECK(want >= 0, "negative row request");
  std::unique_lock<std::mutex> lk(mu_);
  for (;;) {
    // Entries resolved elsewhere (hedge twin already won) are dead weight;
    // drop them before they count against `want`.
    while (!queue_.empty() &&
           queue_.front()->resolved.load(std::memory_order_acquire)) {
      queue_.pop_front();
    }
    if (queue_.empty()) {
      if (draining_) return false;
      if (!block || want == 0) return true;
      cv_consumer_.wait(lk, [&] { return !queue_.empty() || draining_; });
      continue;
    }
    Index taken = 0;
    while (!queue_.empty() && taken < want) {
      PendingPtr p = std::move(queue_.front());
      queue_.pop_front();
      if (p->resolved.load(std::memory_order_acquire)) continue;
      out.push_back(std::move(p));
      ++taken;
    }
    inflight_rows_ += taken;
    // Rows beyond this worker's free slots stay queued: wake a sibling so
    // they don't wait for this worker's next iteration.
    if (!queue_.empty()) cv_consumer_.notify_one();
    return true;
  }
}

void DynamicBatcher::release_rows(Index n) {
  if (n <= 0) return;
  std::lock_guard<std::mutex> lk(mu_);
  CANDLE_CHECK(inflight_rows_ >= n, "releasing more rows than in flight");
  inflight_rows_ -= n;
}

Index DynamicBatcher::inflight_rows() const {
  std::lock_guard<std::mutex> lk(mu_);
  return inflight_rows_;
}

void DynamicBatcher::requeue(std::vector<PendingPtr> batch) {
  if (batch.empty()) return;
  std::lock_guard<std::mutex> lk(mu_);
  // Reverse push_front keeps the batch's arrival order at the queue head.
  for (auto it = batch.rbegin(); it != batch.rend(); ++it) {
    if (!*it) continue;
    ++counters_.requeued;
    queue_.push_front(std::move(*it));
  }
  cv_consumer_.notify_all();
}

std::vector<DynamicBatcher::PendingPtr> DynamicBatcher::take_all() {
  std::lock_guard<std::mutex> lk(mu_);
  std::vector<PendingPtr> all(std::make_move_iterator(queue_.begin()),
                              std::make_move_iterator(queue_.end()));
  queue_.clear();
  return all;
}

void DynamicBatcher::record_service(Index rows, double seconds) {
  if (rows <= 0 || !(seconds >= 0.0)) return;
  const double per_row = seconds / static_cast<double>(rows);
  std::lock_guard<std::mutex> lk(mu_);
  counters_.ewma_row_service_s =
      counters_.ewma_row_service_s <= 0.0
          ? per_row
          : (1.0 - policy_.service_ewma_alpha) * counters_.ewma_row_service_s +
                policy_.service_ewma_alpha * per_row;
}

void DynamicBatcher::set_live_workers(Index live) {
  std::lock_guard<std::mutex> lk(mu_);
  live_workers_ = std::max<Index>(1, live);
  counters_.live_workers = live_workers_;
}

Index DynamicBatcher::live_workers() const {
  std::lock_guard<std::mutex> lk(mu_);
  return live_workers_;
}

void DynamicBatcher::set_brownout(bool on) {
  std::lock_guard<std::mutex> lk(mu_);
  brownout_ = on;
  counters_.brownout = on;
}

bool DynamicBatcher::brownout() const {
  std::lock_guard<std::mutex> lk(mu_);
  return brownout_;
}

void DynamicBatcher::start_drain() {
  std::lock_guard<std::mutex> lk(mu_);
  draining_ = true;
  cv_consumer_.notify_all();
}

Index DynamicBatcher::depth() const {
  std::lock_guard<std::mutex> lk(mu_);
  return static_cast<Index>(queue_.size());
}

DynamicBatcher::Counters DynamicBatcher::counters() const {
  std::lock_guard<std::mutex> lk(mu_);
  Counters c = counters_;
  c.inflight_rows = inflight_rows_;
  return c;
}

}  // namespace candle::serve

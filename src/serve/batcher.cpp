#include "serve/batcher.hpp"

#include <algorithm>
#include <cmath>
#include <utility>

namespace candle::serve {

DynamicBatcher::DynamicBatcher(BatchPolicy policy, Index workers)
    : policy_(policy), workers_(workers) {
  CANDLE_CHECK(policy_.max_batch >= 1, "max_batch must be positive");
  CANDLE_CHECK(policy_.max_wait_s >= 0.0, "max_wait_s must be non-negative");
  CANDLE_CHECK(policy_.queue_capacity >= 1,
               "queue_capacity must be positive");
  CANDLE_CHECK(policy_.service_ewma_alpha > 0.0 &&
                   policy_.service_ewma_alpha <= 1.0,
               "service_ewma_alpha must be in (0, 1]");
  CANDLE_CHECK(workers_ >= 1, "batcher needs at least one worker");
}

Response DynamicBatcher::shed_response(const Request& req, Outcome outcome) {
  Response r;
  r.id = req.id;
  r.outcome = outcome;
  return r;
}

double DynamicBatcher::predicted_wait_locked(Index depth) const {
  if (counters_.ewma_row_service_s <= 0.0) return 0.0;  // not yet calibrated
  const double batch_service_s =
      counters_.ewma_row_service_s * static_cast<double>(policy_.max_batch);
  const double batches_ahead = std::ceil(
      static_cast<double>(depth + 1) / static_cast<double>(policy_.max_batch));
  return batches_ahead * batch_service_s / static_cast<double>(workers_);
}

double DynamicBatcher::predicted_wait_s() const {
  std::lock_guard<std::mutex> lk(mu_);
  return predicted_wait_locked(static_cast<Index>(queue_.size()));
}

std::future<Response> DynamicBatcher::submit(Request req) {
  std::promise<Response> promise;
  std::future<Response> future = promise.get_future();
  std::lock_guard<std::mutex> lk(mu_);
  ++counters_.submitted;
  if (draining_) {
    promise.set_value(shed_response(req, Outcome::ShedShutdown));
    ++counters_.shed_shutdown;
    return future;
  }
  const Index depth = static_cast<Index>(queue_.size());
  if (depth >= policy_.queue_capacity) {
    promise.set_value(shed_response(req, Outcome::ShedQueueFull));
    ++counters_.shed_queue_full;
    return future;
  }
  if (policy_.deadline_admission &&
      predicted_wait_locked(depth) > req.deadline_s) {
    promise.set_value(shed_response(req, Outcome::ShedDeadline));
    ++counters_.shed_deadline;
    return future;
  }
  ++counters_.admitted;
  counters_.peak_queue_depth =
      std::max(counters_.peak_queue_depth, static_cast<std::int64_t>(depth + 1));
  queue_.push_back(Pending{std::move(req), std::move(promise), Clock::now()});
  cv_consumer_.notify_one();
  return future;
}

std::vector<DynamicBatcher::Pending> DynamicBatcher::next_batch() {
  std::unique_lock<std::mutex> lk(mu_);
  for (;;) {
    if (queue_.empty()) {
      if (draining_) return {};
      cv_consumer_.wait(lk, [&] { return !queue_.empty() || draining_; });
      continue;
    }
    const auto close_at =
        queue_.front().enqueued +
        std::chrono::duration_cast<Clock::duration>(
            std::chrono::duration<double>(policy_.max_wait_s));
    if (static_cast<Index>(queue_.size()) >= policy_.max_batch ||
        Clock::now() >= close_at || draining_) {
      const Index rows = std::min(static_cast<Index>(queue_.size()),
                                  policy_.max_batch);
      std::vector<Pending> batch;
      batch.reserve(static_cast<std::size_t>(rows));
      for (Index i = 0; i < rows; ++i) {
        batch.push_back(std::move(queue_.front()));
        queue_.pop_front();
      }
      // More rows may remain (burst beyond max_batch): hand them to a
      // sibling worker instead of letting them wait out a fresh window.
      if (!queue_.empty()) cv_consumer_.notify_one();
      return batch;
    }
    cv_consumer_.wait_until(lk, close_at);
  }
}

void DynamicBatcher::record_service(Index rows, double seconds) {
  if (rows <= 0 || !(seconds >= 0.0)) return;
  const double per_row = seconds / static_cast<double>(rows);
  std::lock_guard<std::mutex> lk(mu_);
  counters_.ewma_row_service_s =
      counters_.ewma_row_service_s <= 0.0
          ? per_row
          : (1.0 - policy_.service_ewma_alpha) * counters_.ewma_row_service_s +
                policy_.service_ewma_alpha * per_row;
}

void DynamicBatcher::start_drain() {
  std::lock_guard<std::mutex> lk(mu_);
  draining_ = true;
  cv_consumer_.notify_all();
}

Index DynamicBatcher::depth() const {
  std::lock_guard<std::mutex> lk(mu_);
  return static_cast<Index>(queue_.size());
}

DynamicBatcher::Counters DynamicBatcher::counters() const {
  std::lock_guard<std::mutex> lk(mu_);
  return counters_;
}

}  // namespace candle::serve

#include "serve/stats.hpp"

#include <algorithm>
#include <cmath>

namespace candle::serve {

int LatencyHistogram::bucket_of(double seconds) {
  if (!(seconds > kMinSeconds)) return 0;
  const int b = static_cast<int>(std::floor(
      std::log10(seconds / kMinSeconds) * kBucketsPerDecade));
  return std::clamp(b, 0, kBuckets - 1);
}

double LatencyHistogram::bucket_upper_edge(int bucket) {
  CANDLE_CHECK(bucket >= 0 && bucket < kBuckets, "bucket out of range");
  return kMinSeconds *
         std::pow(10.0, static_cast<double>(bucket + 1) /
                            static_cast<double>(kBucketsPerDecade));
}

double LatencyHistogram::bucket_lower_edge(int bucket) {
  CANDLE_CHECK(bucket >= 0 && bucket < kBuckets, "bucket out of range");
  // Bucket 0 also absorbs sub-µs values, so its envelope floor is 0.
  return bucket == 0 ? 0.0 : bucket_upper_edge(bucket - 1);
}

void LatencyHistogram::record(double seconds) {
  // Seqlock-style write bracket: started_ ticks before the counter writes,
  // finished_ after.  No retry, no wait — record() stays wait-free; only
  // snapshot() pays for consistency.
  started_.fetch_add(1, std::memory_order_seq_cst);
  counts_[static_cast<std::size_t>(bucket_of(seconds))].fetch_add(
      1, std::memory_order_relaxed);
  sum_s_.fetch_add(seconds, std::memory_order_relaxed);
  finished_.fetch_add(1, std::memory_order_seq_cst);
}

LatencyHistogram::Snapshot LatencyHistogram::snapshot() const {
  Snapshot s;
  for (int attempt = 0; attempt < kSnapshotRetries; ++attempt) {
    const std::uint64_t before = finished_.load(std::memory_order_seq_cst);
    s.total = 0;
    for (int b = 0; b < kBuckets; ++b) {
      s.counts[static_cast<std::size_t>(b)] =
          counts_[static_cast<std::size_t>(b)].load(std::memory_order_relaxed);
      s.total += s.counts[static_cast<std::size_t>(b)];
    }
    s.sum_s = sum_s_.load(std::memory_order_relaxed);
    // Stable iff no record was in flight anywhere across the copy: every
    // record that finished before the copy started, and none started since.
    const std::uint64_t after = started_.load(std::memory_order_seq_cst);
    if (before == after) {
      s.exact = true;
      return s;
    }
  }
  // Sustained concurrent recording: the last copy stands, but its sum may
  // be torn relative to its counts.  Clamp the sum into the envelope the
  // counts imply so derived statistics (mean, and any count/sum cross
  // check) can never leave the range of values actually recorded.
  double lo = 0.0;
  double hi = 0.0;
  for (int b = 0; b < kBuckets; ++b) {
    const double n = static_cast<double>(s.counts[static_cast<std::size_t>(b)]);
    lo += n * bucket_lower_edge(b);
    hi += n * bucket_upper_edge(b);
  }
  s.sum_s = std::clamp(s.sum_s, lo, hi);
  s.exact = false;
  return s;
}

double LatencyHistogram::Snapshot::quantile(double q) const {
  CANDLE_CHECK(q >= 0.0 && q <= 1.0, "quantile must be in [0, 1]");
  if (total == 0) return 0.0;
  const std::uint64_t rank = std::max<std::uint64_t>(
      1, static_cast<std::uint64_t>(
             std::ceil(q * static_cast<double>(total))));
  std::uint64_t seen = 0;
  for (int b = 0; b < kBuckets; ++b) {
    seen += counts[static_cast<std::size_t>(b)];
    if (seen >= rank) return bucket_upper_edge(b);
  }
  return bucket_upper_edge(kBuckets - 1);
}

}  // namespace candle::serve

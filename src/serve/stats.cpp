#include "serve/stats.hpp"

#include <algorithm>
#include <cmath>

namespace candle::serve {

int LatencyHistogram::bucket_of(double seconds) {
  if (!(seconds > kMinSeconds)) return 0;
  const int b = static_cast<int>(std::floor(
      std::log10(seconds / kMinSeconds) * kBucketsPerDecade));
  return std::clamp(b, 0, kBuckets - 1);
}

double LatencyHistogram::bucket_upper_edge(int bucket) {
  CANDLE_CHECK(bucket >= 0 && bucket < kBuckets, "bucket out of range");
  return kMinSeconds *
         std::pow(10.0, static_cast<double>(bucket + 1) /
                            static_cast<double>(kBucketsPerDecade));
}

void LatencyHistogram::record(double seconds) {
  counts_[static_cast<std::size_t>(bucket_of(seconds))].fetch_add(
      1, std::memory_order_relaxed);
  total_.fetch_add(1, std::memory_order_relaxed);
  sum_s_.fetch_add(seconds, std::memory_order_relaxed);
}

LatencyHistogram::Snapshot LatencyHistogram::snapshot() const {
  Snapshot s;
  for (int b = 0; b < kBuckets; ++b) {
    s.counts[static_cast<std::size_t>(b)] =
        counts_[static_cast<std::size_t>(b)].load(std::memory_order_relaxed);
    s.total += s.counts[static_cast<std::size_t>(b)];
  }
  s.sum_s = sum_s_.load(std::memory_order_relaxed);
  return s;
}

double LatencyHistogram::Snapshot::quantile(double q) const {
  CANDLE_CHECK(q >= 0.0 && q <= 1.0, "quantile must be in [0, 1]");
  if (total == 0) return 0.0;
  const std::uint64_t rank = std::max<std::uint64_t>(
      1, static_cast<std::uint64_t>(
             std::ceil(q * static_cast<double>(total))));
  std::uint64_t seen = 0;
  for (int b = 0; b < kBuckets; ++b) {
    seen += counts[static_cast<std::size_t>(b)];
    if (seen >= rank) return bucket_upper_edge(b);
  }
  return bucket_upper_edge(kBuckets - 1);
}

}  // namespace candle::serve

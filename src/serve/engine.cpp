#include "serve/engine.hpp"

#include <chrono>
#include <thread>
#include <utility>

#include "nn/batching.hpp"

namespace candle::serve {

namespace {

double seconds_between(DynamicBatcher::Clock::time_point a,
                       DynamicBatcher::Clock::time_point b) {
  return std::chrono::duration<double>(b - a).count();
}

}  // namespace

void run_calibration_probe(const Model& model, DynamicBatcher& batcher) {
  const Index rows = batcher.policy().max_batch;
  Shape shape = model.input_shape();
  shape.insert(shape.begin(), rows);
  const Tensor probe(std::move(shape));
  const auto t0 = DynamicBatcher::Clock::now();
  const Tensor y = model.infer(probe);
  const auto t1 = DynamicBatcher::Clock::now();
  (void)y;
  batcher.record_service(rows, seconds_between(t0, t1));
}

Engine::Engine(const Model& model, EngineOptions options)
    : model_(model),
      options_(options),
      sample_numel_(shape_numel(model.input_shape())),
      output_numel_(shape_numel(model.output_shape())),
      batcher_(options.batch, options.workers) {
  CANDLE_CHECK(model_.built(), "serve::Engine needs a built model");
  CANDLE_CHECK(options_.workers >= 1, "engine needs at least one worker");
  // The probe runs before any worker exists, so the first submitted request
  // is already priced against a calibrated EWMA.
  if (options_.calibration_probe) run_calibration_probe(model_, batcher_);
  threads_.reserve(static_cast<std::size_t>(options_.workers));
  for (Index w = 0; w < options_.workers; ++w) {
    threads_.emplace_back([this] { worker_main(); });
  }
}

Engine::~Engine() { drain(); }

std::future<Response> Engine::submit(Request req) {
  CANDLE_CHECK(static_cast<Index>(req.input.size()) == sample_numel_,
               "request input must hold exactly one flattened sample");
  active_submits_.fetch_add(1, std::memory_order_acq_rel);
  std::future<Response> f = batcher_.submit(std::move(req));
  active_submits_.fetch_sub(1, std::memory_order_acq_rel);
  return f;
}

void Engine::drain() {
  std::lock_guard<std::mutex> lk(drain_mu_);
  if (drained_) return;
  batcher_.start_drain();
  // Submits racing the drain either got admitted before it (workers below
  // will serve them) or resolve ShedShutdown inside the batcher; either
  // way, wait for them to finish ticking counters so the post-drain
  // accounting is final.
  while (active_submits_.load(std::memory_order_acquire) != 0) {
    std::this_thread::yield();
  }
  for (auto& t : threads_) t.join();
  drained_ = true;
}

void Engine::worker_main() {
  if (options_.batch.continuous) {
    worker_continuous();
  } else {
    worker_coalescing();
  }
}

void Engine::worker_coalescing() {
  // One assembly buffer per worker, sized once for the largest batch; the
  // worker's thread-local workspace arena warms on the first batch and the
  // steady-state loop allocates nothing.
  BatchAssembler assembler(model_.input_shape(), options_.batch.max_batch);
  for (;;) {
    std::vector<DynamicBatcher::PendingPtr> batch = batcher_.next_batch();
    if (batch.empty()) return;  // drained
    const auto closed_at = DynamicBatcher::Clock::now();
    const Index rows = static_cast<Index>(batch.size());
    assembler.begin(rows);
    for (Index i = 0; i < rows; ++i) {
      assembler.set_row(i, batch[static_cast<std::size_t>(i)]->request.input);
    }
    const Tensor y = model_.infer(assembler.batch());
    const auto finished_at = DynamicBatcher::Clock::now();
    batcher_.record_service(rows, seconds_between(closed_at, finished_at));
    batches_.fetch_add(1, std::memory_order_relaxed);
    for (Index i = 0; i < rows; ++i) {
      DynamicBatcher::Pending& p = *batch[static_cast<std::size_t>(i)];
      Response r;
      r.id = p.request.id;
      r.outcome = Outcome::Completed;
      r.output.assign(y.data() + i * output_numel_,
                      y.data() + (i + 1) * output_numel_);
      const double queue_wait_s = seconds_between(p.enqueued, closed_at);
      const double service_s = seconds_between(closed_at, finished_at);
      const double latency_s = seconds_between(p.enqueued, finished_at);
      r.queue_wait_s = queue_wait_s;
      r.service_s = service_s;
      r.latency_s = latency_s;
      r.batch_rows = rows;
      // Only the resolving dispatch records: a duplicate that lost the
      // race (not possible in the base engine, but the invariant is the
      // batcher's, not the engine's) must leave no statistical trace.
      if (p.try_resolve(std::move(r))) {
        queue_wait_.record(queue_wait_s);
        service_.record(service_s);
        latency_.record(latency_s);
        completed_.fetch_add(1, std::memory_order_relaxed);
      }
    }
  }
}

void Engine::worker_continuous() {
  // Continuous scheduler: a fixed-capacity slot matrix per worker.  Every
  // iteration admits queued rows into free slots (blocking only when the
  // worker is idle), computes the occupied slots as one compact batch, and
  // evicts each finished row individually — there is no fill window, so a
  // single low-load request is served the moment a worker is free.  All
  // buffers (slots, gather target, holder/admit arrays, acquire scratch)
  // are sized once here: the steady-state iteration allocates nothing.
  const Index capacity = options_.batch.max_batch;
  RowSlotAssembler slots(model_.input_shape(), capacity);
  std::vector<DynamicBatcher::PendingPtr> holders(
      static_cast<std::size_t>(capacity));
  std::vector<DynamicBatcher::Clock::time_point> admitted(
      static_cast<std::size_t>(capacity));
  std::vector<DynamicBatcher::PendingPtr> incoming;
  incoming.reserve(static_cast<std::size_t>(capacity));
  for (;;) {
    incoming.clear();
    const bool block = slots.occupied() == 0;
    const bool open =
        batcher_.acquire_rows(slots.free_slots(), incoming, block);
    if (!open && incoming.empty() && slots.occupied() == 0) {
      return;  // drained, nothing queued, nothing held
    }
    const auto admitted_at = DynamicBatcher::Clock::now();
    for (auto& p : incoming) {
      const Index s = slots.admit(p->request.input);
      admitted[static_cast<std::size_t>(s)] = admitted_at;
      holders[static_cast<std::size_t>(s)] = std::move(p);
    }
    // Rows resolved elsewhere since acquisition (impossible in the base
    // engine, where nothing duplicates dispatches, but the slot lifecycle
    // is shared with the supervised engine) are evicted before compute.
    Index evicted = 0;
    for (Index s = 0; s < capacity; ++s) {
      auto& h = holders[static_cast<std::size_t>(s)];
      if (h && h->resolved.load(std::memory_order_acquire)) {
        h.reset();
        slots.evict(s);
        ++evicted;
      }
    }
    if (evicted > 0) batcher_.release_rows(evicted);
    if (slots.occupied() == 0) continue;
    const Index rows = slots.occupied();
    const Tensor& y = model_.infer(slots.gather());
    const auto finished_at = DynamicBatcher::Clock::now();
    batcher_.record_service(rows, seconds_between(admitted_at, finished_at));
    batches_.fetch_add(1, std::memory_order_relaxed);
    const std::span<const Index> order = slots.gathered_slots();
    for (Index i = 0; i < rows; ++i) {
      const Index s = order[static_cast<std::size_t>(i)];
      DynamicBatcher::PendingPtr& p = holders[static_cast<std::size_t>(s)];
      Response r;
      r.id = p->request.id;
      r.outcome = Outcome::Completed;
      r.output.assign(y.data() + i * output_numel_,
                      y.data() + (i + 1) * output_numel_);
      const double queue_wait_s =
          seconds_between(p->enqueued, admitted[static_cast<std::size_t>(s)]);
      const double service_s = seconds_between(
          admitted[static_cast<std::size_t>(s)], finished_at);
      const double latency_s = seconds_between(p->enqueued, finished_at);
      r.queue_wait_s = queue_wait_s;
      r.service_s = service_s;
      r.latency_s = latency_s;
      r.batch_rows = rows;
      if (p->try_resolve(std::move(r))) {
        queue_wait_.record(queue_wait_s);
        service_.record(service_s);
        latency_.record(latency_s);
        completed_.fetch_add(1, std::memory_order_relaxed);
      }
      p.reset();
      slots.evict(s);
    }
    batcher_.release_rows(rows);
  }
}

EngineStats Engine::stats() const {
  const DynamicBatcher::Counters c = batcher_.counters();
  EngineStats s;
  s.submitted = c.submitted;
  s.admitted = c.admitted;
  s.completed = completed_.load(std::memory_order_relaxed);
  s.shed_queue_full = c.shed_queue_full;
  s.shed_deadline = c.shed_deadline;
  s.shed_shutdown = c.shed_shutdown;
  s.shed_brownout = c.shed_brownout;
  s.requeued = c.requeued;
  s.live_workers = c.live_workers;
  s.batches = batches_.load(std::memory_order_relaxed);
  s.peak_queue_depth = c.peak_queue_depth;
  s.inflight_rows = c.inflight_rows;
  s.ewma_row_service_s = c.ewma_row_service_s;
  s.latency = latency_.snapshot();
  s.queue_wait = queue_wait_.snapshot();
  s.service = service_.snapshot();
  return s;
}

}  // namespace candle::serve

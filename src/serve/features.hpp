// Feature-fetch path for the serving engine, backed by the ingest layer's
// concurrent sample store (src/data).
//
// A scoring request often arrives as a sample *id* (a drug/cell-line pair,
// a sequence record) rather than a materialized feature vector; the feature
// payload lives wherever training data lives — a generator, or a staged
// on-disk dataset.  FeatureService turns ids into request-ready feature
// vectors through the same SampleStore training ingestion uses, so serving
// inherits its properties for free: hot ids are cached under the byte
// budget, cold ids fetch through the source exactly once even under
// concurrent lookups, and warm() pre-faults an expected working set through
// the background fetchers before the load arrives.
#pragma once

#include <span>

#include "data/store.hpp"
#include "serve/request.hpp"

namespace candle::serve {

class FeatureService {
 public:
  /// The store (and its source) must outlive the service.
  explicit FeatureService(data::SampleStore& store);

  /// Flattened feature length of one sample (Request::input size).
  Index feature_dim() const { return dim_; }
  /// Ids in [0, sample_count()) are fetchable.
  Index sample_count() const;

  /// Copy sample `sample`'s features into `out` (sized feature_dim()).
  /// Thread-safe; concurrent lookups of one cold id fetch it once.
  void fetch_features(Index sample, std::span<float> out);

  /// Build a ready-to-submit request for `sample` with its features
  /// materialized from the store.
  Request make_request(std::uint64_t id, Index sample, double deadline_s);

  /// Pre-fault an expected working set through the store's background
  /// fetchers and wait for it to land (no-op queueing when the store runs
  /// without fetch threads).
  void warm(std::span<const Index> samples);

  data::SampleStoreStats store_stats() const { return store_->stats(); }

 private:
  data::SampleStore* store_;
  Index dim_;
};

}  // namespace candle::serve

#include "hpcsim/machine.hpp"

#include <algorithm>

namespace candle::hpcsim {

double NodeSpec::peak_gflops(Precision p) const {
  switch (p) {
    case Precision::FP64: return peak_fp64_gflops;
    case Precision::FP32: return peak_fp32_gflops;
    case Precision::BF16: return peak_bf16_gflops;
    case Precision::FP16: return peak_fp16_gflops;
    case Precision::INT8: return peak_int8_gops;
  }
  CANDLE_FAIL("unknown Precision");
}

const MemoryTier& NodeSpec::tier_named(const std::string& tier_name) const {
  for (const MemoryTier& t : tiers) {
    if (t.name == tier_name) return t;
  }
  throw Error("node '" + name + "' has no memory tier named '" + tier_name +
              "'");
}

KernelEstimate roofline(const NodeSpec& node, double flops, double bytes,
                        Precision prec, std::size_t tier_index) {
  CANDLE_CHECK(flops >= 0.0 && bytes >= 0.0, "negative work in roofline");
  const MemoryTier& mem = node.tier(tier_index);
  const double peak = node.peak_gflops(prec) * 1e9;
  CANDLE_CHECK(peak > 0.0, "node has zero peak for " + precision_name(prec));

  KernelEstimate e;
  e.compute_s = flops / peak;
  e.memory_s = bytes / (mem.bandwidth_gbs * 1e9) + mem.latency_us * 1e-6;
  e.time_s = std::max(e.compute_s, e.memory_s);
  e.memory_bound = e.memory_s > e.compute_s;
  e.energy_j = flops * node.pj_per_flop(prec) * 1e-12 +
               bytes * mem.pj_per_byte * 1e-12;
  e.achieved_gflops = e.time_s > 0.0 ? flops / e.time_s / 1e9 : 0.0;
  return e;
}

double ridge_intensity(const NodeSpec& node, Precision prec,
                       std::size_t tier_index) {
  const MemoryTier& mem = node.tier(tier_index);
  return node.peak_gflops(prec) / mem.bandwidth_gbs;
}

NodeSpec titan_node() {
  return NodeSpec{
      .name = "titan-k20x",
      .peak_fp64_gflops = 1310.0,
      .peak_fp32_gflops = 3935.0,
      .peak_bf16_gflops = 3935.0,  // no reduced-precision units: fp32 rate
      .peak_fp16_gflops = 3935.0,
      .peak_int8_gops = 3935.0,
      .pj_per_fp32_flop = 30.0,
      .tiers = {{"GDDR5", 250.0, 0.5, 6.0, 25.0},
                {"DDR", 50.0, 0.2, 32.0, 30.0},
                {"PFS", 2.0, 5000.0, 1.0e6, 500.0}}};
}

NodeSpec summit_node() {
  return NodeSpec{
      .name = "summit-v100",
      .peak_fp64_gflops = 7800.0,
      .peak_fp32_gflops = 15700.0,
      .peak_bf16_gflops = 31400.0,   // 2x via half-rate paths
      .peak_fp16_gflops = 125000.0,  // tensor cores
      .peak_int8_gops = 62800.0,
      .pj_per_fp32_flop = 12.0,
      .tiers = {{"HBM", 900.0, 0.3, 16.0, 7.0},
                {"DDR", 135.0, 0.15, 512.0, 20.0},
                {"NVRAM", 6.0, 50.0, 1600.0, 100.0},
                {"PFS", 2.5, 5000.0, 1.0e6, 500.0}}};
}

NodeSpec future_node() {
  return NodeSpec{
      .name = "future-exa",
      .peak_fp64_gflops = 30000.0,
      .peak_fp32_gflops = 60000.0,
      .peak_bf16_gflops = 240000.0,
      .peak_fp16_gflops = 240000.0,
      .peak_int8_gops = 480000.0,
      .pj_per_fp32_flop = 5.0,
      .tiers = {{"HBM", 3000.0, 0.2, 96.0, 4.0},
                {"DDR", 400.0, 0.1, 1024.0, 15.0},
                {"NVRAM", 25.0, 20.0, 4096.0, 60.0},
                {"PFS", 4.0, 3000.0, 1.0e7, 400.0}}};
}

std::vector<NodeSpec> all_node_presets() {
  return {titan_node(), summit_node(), future_node()};
}

}  // namespace candle::hpcsim

// NVRAM data-staging model (claim C7: "training data ... made available or
// generated at each node, thus providing opportunities for NVRAM").
//
// Three strategies for delivering an epoch's worth of training data to
// every node of a data-parallel job:
//   * PfsEveryEpoch  — stream the shard from the parallel filesystem every
//     epoch (the 2016 status quo; PFS bandwidth is shared by all nodes).
//   * NvramCached    — epoch 0 streams from PFS into node-local NVRAM;
//     later epochs re-read locally.  Spills to PFS if the shard exceeds
//     NVRAM capacity.
//   * GenerateOnNode — synthesize data in place at a compute-rate-limited
//     generation bandwidth (the simulation-coupled workloads in the paper).
#pragma once

#include <string>
#include <vector>

#include "hpcsim/machine.hpp"

namespace candle::hpcsim {

using Index = std::int64_t;

enum class StagingStrategy { PfsEveryEpoch, NvramCached, GenerateOnNode };

std::string staging_strategy_name(StagingStrategy s);

struct StagingConfig {
  double dataset_gb = 512.0;       // global training set size
  Index nodes = 128;               // data-parallel width
  double pfs_aggregate_gbs = 200.0;  // shared PFS read bandwidth
  double pfs_per_node_cap_gbs = 2.0; // injection limit per node
  double nvram_node_gbs = 6.0;     // node-local NVRAM read bandwidth
  double nvram_capacity_gb = 1600.0;
  double generate_gbs = 1.0;       // on-node synthesis rate
  Index epochs = 10;
};

/// Seconds to deliver one epoch's shard to every node (critical path =
/// slowest node; shards are dataset_gb / nodes).
double epoch_ingest_time_s(StagingStrategy strategy, const StagingConfig& cfg,
                           Index epoch);

/// Total ingest seconds across the whole campaign.
double campaign_ingest_time_s(StagingStrategy strategy,
                              const StagingConfig& cfg);

/// Data-motion energy of the campaign (J), using the tier energies of
/// `node` ("PFS" and "NVRAM" tiers must exist).
double campaign_ingest_energy_j(StagingStrategy strategy,
                                const StagingConfig& cfg,
                                const NodeSpec& node);

/// The strategy with the lowest campaign time.
StagingStrategy best_staging_strategy(const StagingConfig& cfg);

}  // namespace candle::hpcsim

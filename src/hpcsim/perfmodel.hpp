// Training-step performance model: combines the node roofline, the fabric
// collective model, and a parallel decomposition into a per-step time /
// energy / efficiency estimate at any scale.
//
// This is the instrument behind experiments E1 (modeled speedups), E3
// (strong vs weak scaling), E4 (hybrid model+data+search decompositions)
// and E5 (data-motion energy).  The key structural facts it encodes:
//
//   * Compute shrinks with the local batch, but GEMM efficiency also
//     *drops* with the local batch (small matrices can't fill the machine)
//     — the first mechanism behind "DNNs do not have good strong scaling".
//   * Data-parallel gradient all-reduce cost is independent of the batch,
//     so at fixed global batch the communication fraction grows with p —
//     the second mechanism.
//   * Model parallelism exchanges activations (which shrink with shard
//     count) inside small groups, trading parameter traffic for latency-
//     sensitive fine-grained messages — why the paper wants high-bandwidth
//     fabric between "modest scale groups".
#pragma once

#include "hpcsim/fabric.hpp"
#include "hpcsim/machine.hpp"
#include "hpcsim/resilience.hpp"

namespace candle::hpcsim {

/// Static description of one training workload (extracted from an nn::Model
/// via `workload_from_model` in src/parallel, or filled by hand).
struct TrainingWorkload {
  std::string name;
  double flops_per_sample = 0.0;       // forward MACs*2
  double parameters = 0.0;             // trainable scalar count
  double bytes_per_sample = 0.0;       // input record size
  double activation_bytes_per_sample = 0.0;  // peak inter-layer activations
};

/// A parallel decomposition of one training job.
struct ParallelPlan {
  Index data_replicas = 1;   // gradient-averaged copies
  Index model_shards = 1;    // layer/tensor shards per replica
  Index batch_per_replica = 32;
  Precision precision = Precision::FP32;
  AllReduceAlgo allreduce = AllReduceAlgo::Ring;
  /// Bytes per gradient element on the wire (2 = fp16-compressed comms).
  double gradient_wire_bytes = 4.0;
  /// DDP-style bucketed all-reduce with comm/compute overlap: the gradient
  /// ships in ceil(grad_bytes / bucket_bytes) buckets, each launched as the
  /// backward pass produces it, so wire time hides behind the remaining
  /// backward compute and only the unhidden remainder is exposed on the
  /// step's critical path (StepEstimate::dp_comm_exposed_s).  0 = the
  /// monolithic synchronous all-reduce (fully exposed), the default.
  double bucket_bytes = 0.0;

  Index total_nodes() const { return data_replicas * model_shards; }
};

/// Per-step estimate at the modeled scale.
struct StepEstimate {
  double compute_s = 0.0;   // GEMM time on the critical path
  double memory_s = 0.0;    // weight/activation traffic time
  double dp_comm_s = 0.0;   // data-parallel gradient all-reduce (wire time)
  /// The part of dp_comm_s the step actually waits for.  Equal to dp_comm_s
  /// for the monolithic all-reduce; with bucketing (plan.bucket_bytes > 0)
  /// it is max(0, bucket wire time - remaining overlappable backward
  /// compute), from the drain simulation in overlapped_exposed_comm_s.
  double dp_comm_exposed_s = 0.0;
  /// Fraction of dp_comm_s hidden behind backward compute, in [0,1].
  double overlap_fraction = 0.0;
  double mp_comm_s = 0.0;   // model-parallel activation exchange
  /// Per-step batch-assembly (ingest) work and the part of it the step
  /// actually waits for.  Zero unless filled by estimate_step_with_ingest;
  /// the defaults keep plain estimate_step results bit-identical.
  double ingest_s = 0.0;
  double ingest_exposed_s = 0.0;
  double step_s = 0.0;      // total (compute/memory overlap, comm exposed)
  double energy_j = 0.0;    // whole-machine energy for the step
  double samples_per_s = 0.0;
  double flops_utilization = 0.0;  // achieved / peak over all nodes
  /// True when the per-shard working set (weights x3 for master/grad/opt +
  /// activations) exceeds the nearest tier's capacity: traffic is then
  /// priced at the next tier's bandwidth (capacity-induced spill).
  bool spills_nearest_tier = false;
};

/// Exposed communication time of a bucketed all-reduce overlapped with the
/// backward pass, by discrete drain simulation: bucket i of `buckets`
/// becomes ready at backward_s * (i+1)/buckets (gradients are produced
/// roughly uniformly through backward), a single serial comm engine
/// processes each bucket in `bucket_comm_s`, and the exposed time is how
/// long the engine keeps running after backward finishes.  Monotone in
/// bucket_comm_s; 0 when the wire time fully hides behind compute.
double overlapped_exposed_comm_s(Index buckets, double bucket_comm_s,
                                 double backward_s);

/// Exposed ingest time per step of a double-buffered prefetch pipeline
/// (src/data), under the same drain law as overlapped_exposed_comm_s but
/// running *ahead* of the consumer instead of behind the producer: a single
/// background assembler spends `assemble_s` per batch, a ring of `depth`
/// slots decouples it from the consumer (slot i is reusable once batch
/// i-depth finishes computing), and each step's exposed ingest is how long
/// the consumer waits for its slot beyond the previous step's compute.
/// Returns the mean over `steps` steps (the first batch is always fully
/// exposed — the pipeline fill — so the mean approaches the steady state
/// from above as steps grows).  Closed forms the tests pin:
///   depth == 1            ->  assemble_s every step (synchronous);
///   depth >= 2, steady    ->  max(0, assemble_s - compute_s).
double ingest_exposed_s_per_step(double assemble_s, double compute_s,
                                 Index depth, Index steps);

/// Ingest configuration for estimate_step_with_ingest.
struct IngestModel {
  double assemble_s_per_step = 0.0;  ///< batch-assembly work per step
  Index prefetch_depth = 2;          ///< slot ring depth (1 = synchronous)
  Index steps = 256;                 ///< steps simulated (amortizes fill)
};

/// GEMM efficiency as a function of the per-shard batch: saturating curve
/// eff = b / (b + b_half), calibrated so batch 256 reaches ~89% of peak.
/// Exposed so tests can pin the curve's shape.
double gemm_efficiency(Index local_batch);

/// Estimate one synchronous training step (fwd + bwd + update + gradient
/// reduction) for the workload under the plan on the machine.
StepEstimate estimate_step(const NodeSpec& node, const Fabric& fabric,
                           const TrainingWorkload& workload,
                           const ParallelPlan& plan);

/// estimate_step plus the ingest pipeline: the compute/comm step from
/// estimate_step is the consumer, the ingest drain law prices how much of
/// the per-step assembly work stays exposed, and step_s grows by exactly
/// that exposed part.  bench_e13 pins this against the measured reader.
StepEstimate estimate_step_with_ingest(const NodeSpec& node,
                                       const Fabric& fabric,
                                       const TrainingWorkload& workload,
                                       const ParallelPlan& plan,
                                       const IngestModel& ingest);

/// One row of a scaling study.
struct ScalingPoint {
  Index nodes = 1;
  double step_s = 0.0;
  double speedup = 1.0;     // vs 1 node
  double efficiency = 1.0;  // speedup / nodes
  double comm_fraction = 0.0;
  double samples_per_s = 0.0;
};

/// Strong scaling: fixed global batch, replicas = nodes (data parallel).
std::vector<ScalingPoint> strong_scaling(const NodeSpec& node,
                                         const Fabric& fabric,
                                         const TrainingWorkload& workload,
                                         Index global_batch,
                                         const std::vector<Index>& node_counts,
                                         Precision prec = Precision::FP32);

/// Weak scaling: fixed per-replica batch, global batch grows with nodes.
std::vector<ScalingPoint> weak_scaling(const NodeSpec& node,
                                       const Fabric& fabric,
                                       const TrainingWorkload& workload,
                                       Index batch_per_replica,
                                       const std::vector<Index>& node_counts,
                                       Precision prec = Precision::FP32);

/// A scaling sweep re-anchored on a single measured point: the MLPerf-HPC
/// discipline of reporting modeled multi-node numbers only relative to a
/// wall-clock measurement on the hardware at hand.
struct AnchoredScaling {
  /// measured_anchor_step_s / modeled step at the anchor point.  The whole
  /// sweep's step times are multiplied by this ratio (throughputs divided),
  /// so the anchor row reproduces the measurement exactly while speedup,
  /// efficiency and comm_fraction keep their modeled shape (the ratio
  /// cancels out of every step-time quotient).
  double anchor_ratio = 1.0;
  std::vector<ScalingPoint> points;
};

/// strong_scaling re-anchored so the node_counts.front() row's step time
/// equals `measured_anchor_step_s` (a wall-clock measurement at that scale).
AnchoredScaling anchored_strong_scaling(
    const NodeSpec& node, const Fabric& fabric,
    const TrainingWorkload& workload, Index global_batch,
    const std::vector<Index>& node_counts, double measured_anchor_step_s,
    Precision prec = Precision::FP32);

/// weak_scaling re-anchored the same way.
AnchoredScaling anchored_weak_scaling(
    const NodeSpec& node, const Fabric& fabric,
    const TrainingWorkload& workload, Index batch_per_replica,
    const std::vector<Index>& node_counts, double measured_anchor_step_s,
    Precision prec = Precision::FP32);

/// Expected per-step time of the workload under the plan when ranks stall
/// per the heavy-tailed `straggler` model, for a given mitigation mode: the
/// fabric-modeled synchronous step (estimate_step) stretched by the tail
/// expectation from hpcsim::resilience.  This is the planning-level view of
/// what the executable `parallel/resilient` mitigation modes measure.
double estimate_step_with_stragglers(const NodeSpec& node, const Fabric& fabric,
                                     const TrainingWorkload& workload,
                                     const ParallelPlan& plan,
                                     const StragglerModel& straggler,
                                     StragglerMitigation mode,
                                     Index backup_workers,
                                     Index staleness_bound);

/// Search over (data_replicas, model_shards) factorizations of `nodes` for
/// the plan with the highest samples/s; used by E4 together with search
/// parallelism (splitting `nodes` across concurrent HPO trainings).
ParallelPlan best_hybrid_plan(const NodeSpec& node, const Fabric& fabric,
                              const TrainingWorkload& workload, Index nodes,
                              Index global_batch,
                              Precision prec = Precision::FP32);

// ---- inference serving ------------------------------------------------------

/// Deployment description for the serving estimator — mirrors
/// serve::EngineOptions + serve::BatchPolicy so a modeled configuration maps
/// one-to-one onto a runnable engine.
struct ServingPlan {
  Index workers = 2;
  Index max_batch = 32;
  double batch_timeout_s = 2e-3;
  Index queue_capacity = 1024;
  Precision precision = Precision::FP32;
  /// Measured seconds to serve one full `max_batch` batch.  When > 0 it
  /// replaces the roofline estimate — this is how the bench pins the model
  /// against the real engine (the same calibrate-then-project idiom as
  /// calibrate_host for training).  0 = derive from the node roofline.
  double measured_batch_service_s = 0.0;
};

/// Modeled behaviour of a serving deployment at one offered load.
struct ServingEstimate {
  double batch_service_s = 0.0;  ///< one full-batch forward pass
  double capacity_rps = 0.0;     ///< workers * max_batch / batch_service_s
  double utilization = 0.0;      ///< offered / capacity (rho, may exceed 1)
  double batch_fill_wait_s = 0.0;  ///< mean coalescing wait at this load
  double queue_wait_s = 0.0;     ///< mean queueing delay (saturates at cap)
  double mean_latency_s = 0.0;   ///< fill wait + queue wait + service
  double shed_fraction = 0.0;    ///< arrivals rejected once rho > 1
  double throughput_rps = 0.0;   ///< goodput: min(offered, capacity)
};

/// Estimate a serving deployment (forward-only inference, dynamic batching
/// as in serve::DynamicBatcher) at `offered_rps` open-loop load.  Capacity
/// comes from the full-batch service time — roofline-derived, or the
/// measured override; waiting time combines the batch-coalescing window
/// with an M/D/c-style congestion term that saturates at the bounded
/// queue's worth of delay once rho >= 1.
ServingEstimate estimate_serving(const NodeSpec& node,
                                 const TrainingWorkload& workload,
                                 const ServingPlan& plan, double offered_rps);

/// Modeled behaviour of a *continuous-batching* deployment
/// (serve::BatchPolicy::continuous: per-iteration row admit/evict into a
/// fixed slot matrix) at one offered load.  Capacity is identical to the
/// coalescing estimator — continuous batching changes *when* rows join a
/// batch, not how fast a full batch computes — but the latency structure
/// differs: there is no fill-wait term at all (batch_timeout_s never enters
/// this model), and iterations run at the modeled slot occupancy instead of
/// the full max_batch.
struct ContinuousServingEstimate {
  double batch_service_s = 0.0;  ///< one full-capacity iteration
  double row_service_s = 0.0;    ///< batch_service_s / max_batch
  double mean_batch_rows = 0.0;  ///< modeled slot occupancy per iteration
  double iteration_s = 0.0;      ///< mean_batch_rows * row_service_s
  double capacity_rps = 0.0;     ///< workers * max_batch / batch_service_s
  double utilization = 0.0;      ///< offered / capacity (rho, may exceed 1)
  double admit_wait_s = 0.0;     ///< wait for the in-progress iteration
  double queue_wait_s = 0.0;     ///< congestion (saturates at full queue)
  double mean_latency_s = 0.0;   ///< admit + queue + iteration
  double shed_fraction = 0.0;    ///< arrivals rejected once rho > 1
  double throughput_rps = 0.0;   ///< goodput: min(offered, capacity)
};

/// Estimate a continuous-batching deployment at `offered_rps` open-loop
/// load.  Shares the full-batch service time (roofline or measured
/// override) with estimate_serving, so the two estimators are directly
/// comparable at the same ServingPlan; the serving bench pins the low-load
/// latency gap between them against the measured engine in both modes.
ContinuousServingEstimate estimate_serving_continuous(
    const NodeSpec& node, const TrainingWorkload& workload,
    const ServingPlan& plan, double offered_rps);

/// estimate_serving under failures: the pool's delivered capacity is priced
/// by the serving fault model (crash/MTTR availability, hang drag, hedging
/// duplicate work — see hpcsim/resilience.hpp) with `failed_workers` dead
/// and not yet replaced.
struct DegradedServingEstimate {
  ServingEstimate base;         ///< queueing estimate at degraded capacity
  double availability = 1.0;    ///< per-slot live fraction mtbf/(mtbf+mttr)
  double efficiency = 1.0;      ///< per-slot useful fraction (hang/hedge)
  double capacity_ratio = 1.0;  ///< delivered / nominal capacity
};

/// Model a serving deployment with `failed_workers` of `plan.workers` dead
/// and the survivors degraded per `faults`.  The healthy batch service time
/// comes from `plan` (measured or roofline, as estimate_serving); the fault
/// model's own batch_service_s is overwritten with it so the two stay
/// consistent.  bench_e12 pins the capacity_ratio of this estimate against
/// the measured chaos engine.
DegradedServingEstimate estimate_degraded_serving(
    const NodeSpec& node, const TrainingWorkload& workload,
    const ServingPlan& plan, double offered_rps, ServingFaultModel faults,
    Index failed_workers = 0);

}  // namespace candle::hpcsim

#include "hpcsim/resilience.hpp"

#include <algorithm>
#include <cmath>
#include <vector>

#include "runtime/error.hpp"
#include "runtime/rng.hpp"

namespace candle::hpcsim {

namespace {
void validate(const ResilienceConfig& cfg) {
  CANDLE_CHECK(cfg.nodes >= 1 && cfg.node_mtbf_hours > 0.0 &&
                   cfg.checkpoint_state_gb > 0.0 &&
                   cfg.checkpoint_bandwidth_gbs > 0.0 &&
                   cfg.restart_overhead_s >= 0.0,
               "invalid resilience config");
}
}  // namespace

double job_mtbf_s(const ResilienceConfig& cfg) {
  validate(cfg);
  return cfg.node_mtbf_hours * 3600.0 / static_cast<double>(cfg.nodes);
}

double checkpoint_cost_s(const ResilienceConfig& cfg) {
  validate(cfg);
  return cfg.checkpoint_state_gb / cfg.checkpoint_bandwidth_gbs;
}

double optimal_checkpoint_interval_s(const ResilienceConfig& cfg) {
  return std::sqrt(2.0 * checkpoint_cost_s(cfg) * job_mtbf_s(cfg));
}

double expected_runtime_s(const ResilienceConfig& cfg, double work_s,
                          double interval_s) {
  validate(cfg);
  CANDLE_CHECK(work_s > 0.0 && interval_s > 0.0, "invalid runtime query");
  const double mtbf = job_mtbf_s(cfg);
  const double c = checkpoint_cost_s(cfg);
  // Time per completed interval including its checkpoint.
  const double segment = interval_s + c;
  const double segments = work_s / interval_s;
  const double base = segments * segment;
  // Expected failures over the run; each costs half a segment of lost work
  // plus the restart overhead.
  const double failures = base / mtbf;
  const double loss_per_failure = 0.5 * segment + cfg.restart_overhead_s;
  return base + failures * loss_per_failure;
}

double optimal_overhead_factor(const ResilienceConfig& cfg, double work_s) {
  const double interval =
      std::min(optimal_checkpoint_interval_s(cfg), work_s);
  return expected_runtime_s(cfg, work_s, interval) / work_s;
}

double simulate_runtime_s(const ResilienceConfig& cfg, double work_s,
                          double interval_s, Index trials,
                          std::uint64_t seed) {
  validate(cfg);
  CANDLE_CHECK(work_s > 0.0 && interval_s > 0.0 && trials >= 1,
               "invalid simulation query");
  const double mtbf = job_mtbf_s(cfg);
  const double c = checkpoint_cost_s(cfg);
  Pcg32 rng(seed, 0xda1e);
  double total = 0.0;
  for (Index t = 0; t < trials; ++t) {
    double clock = 0.0;
    double done = 0.0;      // checkpointed work
    double segment = 0.0;   // uncheckpointed progress in this interval
    // Draw the next failure time; redraw after every failure.
    auto draw_failure = [&] {
      double u = rng.next_double();
      if (u < 1e-15) u = 1e-15;
      return -mtbf * std::log(u);
    };
    double until_failure = draw_failure();
    while (done < work_s) {
      const double want = std::min(interval_s, work_s - done) - segment;
      if (until_failure <= want) {
        // Failure mid-interval: lose the segment, pay restart.
        clock += until_failure + cfg.restart_overhead_s;
        segment = 0.0;
        until_failure = draw_failure();
        continue;
      }
      // Interval (or the final partial one) completes; checkpoint it.
      clock += want;
      until_failure -= want;
      segment += want;
      if (until_failure <= c) {
        // Failure during the checkpoint write: interval not committed.
        clock += until_failure + cfg.restart_overhead_s;
        segment = 0.0;
        until_failure = draw_failure();
        continue;
      }
      clock += c;
      until_failure -= c;
      done += segment;
      segment = 0.0;
    }
    total += clock;
  }
  return total / static_cast<double>(trials);
}

// ---- straggler / tail-latency model -----------------------------------------

namespace {

void validate(const StragglerModel& m, double step_s, Index ranks,
              Index backup_workers, Index staleness_bound) {
  CANDLE_CHECK(m.prob >= 0.0 && m.prob <= 1.0, "straggle prob in [0, 1]");
  CANDLE_CHECK(m.pareto_alpha > 1.0, "Pareto tail index must exceed 1");
  CANDLE_CHECK(m.min_delay_s > 0.0, "Pareto scale must be positive");
  CANDLE_CHECK(step_s > 0.0 && ranks >= 1, "invalid step/rank arguments");
  CANDLE_CHECK(backup_workers >= 0 && backup_workers < ranks,
               "backup workers must leave a non-empty quorum");
  CANDLE_CHECK(staleness_bound >= 0, "staleness bound must be >= 0");
}

/// log C(n, j) via lgamma.
double log_choose(Index n, Index j) {
  return std::lgamma(static_cast<double>(n) + 1.0) -
         std::lgamma(static_cast<double>(j) + 1.0) -
         std::lgamma(static_cast<double>(n - j) + 1.0);
}

/// P(exactly j of n ranks straggle) for the binomial mixture.
double binom_pmf(Index n, Index j, double q) {
  if (q <= 0.0) return j == 0 ? 1.0 : 0.0;
  if (q >= 1.0) return j == n ? 1.0 : 0.0;
  const double lp = log_choose(n, j) + static_cast<double>(j) * std::log(q) +
                    static_cast<double>(n - j) * std::log1p(-q);
  return std::exp(lp);
}

/// E[r-th smallest of j iid Pareto(alpha, m) draws]:
///   m * Gamma(j+1) Gamma(j-r+1-1/alpha) / (Gamma(j-r+1) Gamma(j+1-1/alpha)).
double pareto_order_stat_mean(Index j, Index r, double alpha, double m) {
  const double inv = 1.0 / alpha;
  const double jd = static_cast<double>(j);
  const double rd = static_cast<double>(r);
  return m * std::exp(std::lgamma(jd + 1.0) + std::lgamma(jd - rd + 1.0 - inv) -
                      std::lgamma(jd - rd + 1.0) - std::lgamma(jd + 1.0 - inv));
}

}  // namespace

const char* straggler_mitigation_name(StragglerMitigation mode) {
  switch (mode) {
    case StragglerMitigation::Synchronous:      return "synchronous";
    case StragglerMitigation::BackupWorkers:    return "backup-workers";
    case StragglerMitigation::BoundedStaleness: return "bounded-staleness";
  }
  return "unknown";
}

double expected_straggler_step_s(const StragglerModel& model,
                                 StragglerMitigation mode, double step_s,
                                 Index ranks, Index backup_workers,
                                 Index staleness_bound) {
  validate(model, step_s, ranks, backup_workers, staleness_bound);
  const double q = model.prob;
  const double alpha = model.pareto_alpha;
  const double m = model.min_delay_s;
  double extra = 0.0;
  switch (mode) {
    case StragglerMitigation::Synchronous:
      // E[max over j stragglers], mixed over j ~ Binomial(ranks, q).
      for (Index j = 1; j <= ranks; ++j) {
        extra += binom_pmf(ranks, j, q) * pareto_order_stat_mean(j, j, alpha, m);
      }
      break;
    case StragglerMitigation::BackupWorkers:
      // Quorum ranks-k commits once all but k stragglers arrived: with j > k
      // concurrent stragglers the step waits for the (j-k)-th smallest stall.
      for (Index j = backup_workers + 1; j <= ranks; ++j) {
        extra += binom_pmf(ranks, j, q) *
                 pareto_order_stat_mean(j, j - backup_workers, alpha, m);
      }
      break;
    case StragglerMitigation::BoundedStaleness: {
      // A straggler lags sigma = ceil(D / step) steps; the quorum only waits
      // for the part beyond the bound: E[(sigma - s)+] = sum_{i>=s} P(D > i*step)
      // (per straggler, first-order additive over the ranks*q events/step).
      double tail_sum = 0.0;
      for (Index i = staleness_bound;; ++i) {
        const double x = static_cast<double>(i) * step_s;
        const double p_tail = x <= m ? 1.0 : std::pow(m / x, alpha);
        tail_sum += p_tail;
        if (p_tail < 1e-12) break;
        CANDLE_CHECK(i < 100000000, "staleness tail sum failed to converge");
      }
      extra = static_cast<double>(ranks) * q * step_s * tail_sum;
      break;
    }
  }
  return step_s + extra;
}

double expected_straggler_runtime_s(const StragglerModel& model,
                                    StragglerMitigation mode, double step_s,
                                    Index ranks, Index backup_workers,
                                    Index staleness_bound, Index steps) {
  CANDLE_CHECK(steps >= 1, "need at least one step");
  return static_cast<double>(steps) *
         expected_straggler_step_s(model, mode, step_s, ranks, backup_workers,
                                   staleness_bound);
}

double simulate_straggler_runtime_s(const StragglerModel& model,
                                    StragglerMitigation mode, double step_s,
                                    Index ranks, Index backup_workers,
                                    Index staleness_bound, Index steps,
                                    Index trials, std::uint64_t seed) {
  validate(model, step_s, ranks, backup_workers, staleness_bound);
  CANDLE_CHECK(steps >= 1 && trials >= 1, "invalid simulation query");
  Pcg32 rng(seed, 0x57a6);
  const double inv_alpha = 1.0 / model.pareto_alpha;
  std::vector<double> delays;
  double total = 0.0;
  for (Index t = 0; t < trials; ++t) {
    double clock = 0.0;
    for (Index s = 0; s < steps; ++s) {
      delays.clear();
      for (Index r = 0; r < ranks; ++r) {
        if (rng.next_double() >= model.prob) continue;
        double u = rng.next_double();
        if (u < 1e-12) u = 1e-12;
        delays.push_back(model.min_delay_s * std::pow(u, -inv_alpha));
      }
      double extra = 0.0;
      const auto j = static_cast<Index>(delays.size());
      switch (mode) {
        case StragglerMitigation::Synchronous:
          for (double d : delays) extra = std::max(extra, d);
          break;
        case StragglerMitigation::BackupWorkers:
          if (j > backup_workers) {
            std::sort(delays.begin(), delays.end());
            extra = delays[static_cast<std::size_t>(j - backup_workers - 1)];
          }
          break;
        case StragglerMitigation::BoundedStaleness:
          for (double d : delays) {
            const double sigma = std::ceil(d / step_s);
            extra += std::max(0.0, sigma - static_cast<double>(staleness_bound)) *
                     step_s;
          }
          break;
      }
      clock += step_s + extra;
    }
    total += clock;
  }
  return total / static_cast<double>(trials);
}

// ---- serving availability / degraded-capacity model -------------------------

namespace {

void validate(const ServingFaultModel& m, Index failed_workers) {
  CANDLE_CHECK(m.workers >= 1, "serving pool needs at least one worker");
  CANDLE_CHECK(m.worker_mtbf_s > 0.0 && m.worker_mttr_s >= 0.0,
               "worker MTBF must be positive, MTTR non-negative");
  CANDLE_CHECK(m.batch_service_s > 0.0, "batch service time must be positive");
  CANDLE_CHECK(m.hang_prob >= 0.0 && m.hang_prob <= 1.0,
               "hang probability must be in [0, 1]");
  CANDLE_CHECK(m.hang_prob == 0.0 || m.hang_mean_s > 0.0,
               "hang mean must be positive when hangs are possible");
  CANDLE_CHECK(m.hedge_latency_mult > 0.0 &&
                   m.hang_latency_mult >= m.hedge_latency_mult,
               "hang timeout must dominate the hedge timeout");
  CANDLE_CHECK(failed_workers >= 0 && failed_workers <= m.workers,
               "failed workers must be within the pool");
}

}  // namespace

double serving_availability(const ServingFaultModel& m) {
  validate(m, 0);
  return m.worker_mtbf_s / (m.worker_mtbf_s + m.worker_mttr_s);
}

double expected_batch_cost_s(const ServingFaultModel& m) {
  validate(m, 0);
  const double s = m.batch_service_s;
  if (m.hang_prob <= 0.0) return s;
  if (!m.hedging) return s + m.hang_prob * m.hang_mean_s;
  // Hedged: the stuck slot is reclaimed at the hang-declaration timeout H
  // (E[min(d, H)] = mean * (1 - exp(-H/mean)) for exponential d), and a
  // duplicate batch of work is spent whenever the stall outlives the hedge
  // timeout h (P(d > h) = exp(-h/mean)).
  const double h = m.hedge_latency_mult * s;
  const double H = m.hang_latency_mult * s;
  const double blocked = m.hang_mean_s * (1.0 - std::exp(-H / m.hang_mean_s));
  const double duplicate = std::exp(-h / m.hang_mean_s) * s;
  return s + m.hang_prob * (blocked + duplicate);
}

double serving_efficiency(const ServingFaultModel& m) {
  return m.batch_service_s / expected_batch_cost_s(m);
}

double degraded_serving_capacity_bps(const ServingFaultModel& m,
                                     Index failed_workers) {
  validate(m, failed_workers);
  const double live = static_cast<double>(m.workers - failed_workers);
  return live * serving_availability(m) * serving_efficiency(m) /
         m.batch_service_s;
}

double simulate_serving_capacity_bps(const ServingFaultModel& m,
                                     Index failed_workers, double duration_s,
                                     Index trials, std::uint64_t seed) {
  validate(m, failed_workers);
  CANDLE_CHECK(duration_s > 0.0 && trials >= 1, "invalid simulation query");
  Pcg32 rng(seed, 0x5e8fa);
  auto exp_draw = [&](double mean) {
    double u = rng.next_double();
    if (u < 1e-15) u = 1e-15;
    return -mean * std::log(u);
  };
  const double s = m.batch_service_s;
  const double h = m.hedge_latency_mult * s;
  const double H = m.hang_latency_mult * s;
  double total_batches = 0.0;
  for (Index t = 0; t < trials; ++t) {
    // Saturated pool: each live slot serves back-to-back batches; slots are
    // independent renewal processes, so simulate them one at a time.
    for (Index w = 0; w < m.workers - failed_workers; ++w) {
      double clock = 0.0;
      double until_crash = exp_draw(m.worker_mtbf_s);
      while (clock < duration_s) {
        if (until_crash <= 0.0) {
          clock += m.worker_mttr_s;  // down: detect + backoff + respawn
          until_crash = exp_draw(m.worker_mtbf_s);
          continue;
        }
        // One batch: base service, plus a stall with probability hang_prob.
        double cost = s;
        if (m.hang_prob > 0.0 && rng.next_double() < m.hang_prob) {
          const double d = exp_draw(m.hang_mean_s);
          if (m.hedging) {
            // Slot blocked until the stall ends or the watchdog reclaims
            // it; a duplicate batch is spent if the hedge timer fired.
            cost = s + std::min(d, H) + (d > h ? s : 0.0);
          } else {
            cost = s + d;
          }
        }
        if (clock + cost > duration_s) break;  // partial batch doesn't count
        clock += cost;
        until_crash -= cost;
        if (until_crash > 0.0) total_batches += 1.0;
        // else: the crash landed inside this batch — it is lost (the real
        // engine re-dispatches it on another worker, whose slot time the
        // duplicate consumes; dropping it here keeps the ledger equivalent).
      }
    }
  }
  return total_batches / (duration_s * static_cast<double>(trials));
}

}  // namespace candle::hpcsim

#include "hpcsim/resilience.hpp"

#include <algorithm>
#include <cmath>

#include "runtime/error.hpp"
#include "runtime/rng.hpp"

namespace candle::hpcsim {

namespace {
void validate(const ResilienceConfig& cfg) {
  CANDLE_CHECK(cfg.nodes >= 1 && cfg.node_mtbf_hours > 0.0 &&
                   cfg.checkpoint_state_gb > 0.0 &&
                   cfg.checkpoint_bandwidth_gbs > 0.0 &&
                   cfg.restart_overhead_s >= 0.0,
               "invalid resilience config");
}
}  // namespace

double job_mtbf_s(const ResilienceConfig& cfg) {
  validate(cfg);
  return cfg.node_mtbf_hours * 3600.0 / static_cast<double>(cfg.nodes);
}

double checkpoint_cost_s(const ResilienceConfig& cfg) {
  validate(cfg);
  return cfg.checkpoint_state_gb / cfg.checkpoint_bandwidth_gbs;
}

double optimal_checkpoint_interval_s(const ResilienceConfig& cfg) {
  return std::sqrt(2.0 * checkpoint_cost_s(cfg) * job_mtbf_s(cfg));
}

double expected_runtime_s(const ResilienceConfig& cfg, double work_s,
                          double interval_s) {
  validate(cfg);
  CANDLE_CHECK(work_s > 0.0 && interval_s > 0.0, "invalid runtime query");
  const double mtbf = job_mtbf_s(cfg);
  const double c = checkpoint_cost_s(cfg);
  // Time per completed interval including its checkpoint.
  const double segment = interval_s + c;
  const double segments = work_s / interval_s;
  const double base = segments * segment;
  // Expected failures over the run; each costs half a segment of lost work
  // plus the restart overhead.
  const double failures = base / mtbf;
  const double loss_per_failure = 0.5 * segment + cfg.restart_overhead_s;
  return base + failures * loss_per_failure;
}

double optimal_overhead_factor(const ResilienceConfig& cfg, double work_s) {
  const double interval =
      std::min(optimal_checkpoint_interval_s(cfg), work_s);
  return expected_runtime_s(cfg, work_s, interval) / work_s;
}

double simulate_runtime_s(const ResilienceConfig& cfg, double work_s,
                          double interval_s, Index trials,
                          std::uint64_t seed) {
  validate(cfg);
  CANDLE_CHECK(work_s > 0.0 && interval_s > 0.0 && trials >= 1,
               "invalid simulation query");
  const double mtbf = job_mtbf_s(cfg);
  const double c = checkpoint_cost_s(cfg);
  Pcg32 rng(seed, 0xda1e);
  double total = 0.0;
  for (Index t = 0; t < trials; ++t) {
    double clock = 0.0;
    double done = 0.0;      // checkpointed work
    double segment = 0.0;   // uncheckpointed progress in this interval
    // Draw the next failure time; redraw after every failure.
    auto draw_failure = [&] {
      double u = rng.next_double();
      if (u < 1e-15) u = 1e-15;
      return -mtbf * std::log(u);
    };
    double until_failure = draw_failure();
    while (done < work_s) {
      const double want = std::min(interval_s, work_s - done) - segment;
      if (until_failure <= want) {
        // Failure mid-interval: lose the segment, pay restart.
        clock += until_failure + cfg.restart_overhead_s;
        segment = 0.0;
        until_failure = draw_failure();
        continue;
      }
      // Interval (or the final partial one) completes; checkpoint it.
      clock += want;
      until_failure -= want;
      segment += want;
      if (until_failure <= c) {
        // Failure during the checkpoint write: interval not committed.
        clock += until_failure + cfg.restart_overhead_s;
        segment = 0.0;
        until_failure = draw_failure();
        continue;
      }
      clock += c;
      until_failure -= c;
      done += segment;
      segment = 0.0;
    }
    total += clock;
  }
  return total / static_cast<double>(trials);
}

}  // namespace candle::hpcsim

#include "hpcsim/calibrate.hpp"

#include <vector>

#include "core/kernels.hpp"
#include "runtime/timer.hpp"

namespace candle::hpcsim {

CalibrationResult calibrate_host(Index gemm_size, Index gemv_size) {
  CANDLE_CHECK(gemm_size >= 32 && gemv_size >= 32,
               "calibration sizes too small to be meaningful");
  CalibrationResult result;
  Stopwatch total;
  Pcg32 rng(0xca11b);

  {
    const Index n = gemm_size;
    Tensor a = Tensor::randn({n, n}, rng);
    Tensor b = Tensor::randn({n, n}, rng);
    Tensor c({n, n});
    // Warm up, then time enough reps for ~100 ms.
    gemm(Op::None, Op::None, n, n, n, 1.0f, a.data(), n, b.data(), n, 0.0f,
         c.data(), n);
    const double flop = 2.0 * static_cast<double>(n) * n * n;
    Index reps = 1;
    double secs = 0.0;
    for (;;) {
      Stopwatch sw;
      for (Index r = 0; r < reps; ++r) {
        gemm(Op::None, Op::None, n, n, n, 1.0f, a.data(), n, b.data(), n,
             0.0f, c.data(), n);
      }
      secs = sw.seconds();
      if (secs > 0.1 || reps > 1024) break;
      reps *= 2;
    }
    result.gemm_gflops = flop * static_cast<double>(reps) / secs / 1e9;
  }

  {
    const Index n = gemv_size;
    Tensor a = Tensor::randn({n, n}, rng);
    Tensor x = Tensor::randn({n}, rng);
    Tensor y({n});
    const double flop = 2.0 * static_cast<double>(n) * n;
    const double bytes = 4.0 * static_cast<double>(n) * n;  // A dominates
    Index reps = 4;
    double secs = 0.0;
    for (;;) {
      Stopwatch sw;
      for (Index r = 0; r < reps; ++r) {
        gemv(Op::None, n, n, 1.0f, a.data(), n, x.data(), 0.0f, y.data());
      }
      secs = sw.seconds();
      if (secs > 0.05 || reps > 4096) break;
      reps *= 2;
    }
    result.gemv_gflops = flop * static_cast<double>(reps) / secs / 1e9;
    result.stream_gbs = bytes * static_cast<double>(reps) / secs / 1e9;
  }

  result.seconds_spent = total.seconds();
  return result;
}

NodeSpec calibrated_host_node(const CalibrationResult& calibration) {
  CANDLE_CHECK(calibration.gemm_gflops > 0.0 && calibration.stream_gbs > 0.0,
               "calibration has not been run");
  NodeSpec node;
  node.name = "calibrated-host";
  node.peak_fp32_gflops = calibration.gemm_gflops;
  node.peak_fp64_gflops = calibration.gemm_gflops / 2.0;
  node.peak_bf16_gflops = calibration.gemm_gflops;  // no hardware units
  node.peak_fp16_gflops = calibration.gemm_gflops;
  node.peak_int8_gops = calibration.gemm_gflops;
  node.pj_per_fp32_flop = 20.0;  // server-CPU class
  node.tiers = {{"DRAM", calibration.stream_gbs, 0.1, 64.0, 20.0},
                {"SSD", 2.0, 100.0, 1000.0, 150.0},
                {"PFS", 1.0, 5000.0, 1.0e6, 500.0}};
  return node;
}

}  // namespace candle::hpcsim

// Host calibration: build a NodeSpec from rates measured on THIS machine by
// the library's own kernels, so the machine model's projections are
// anchored in executed reality rather than only in spec sheets.
#pragma once

#include "hpcsim/machine.hpp"

namespace candle::hpcsim {

using Index = std::int64_t;

struct CalibrationResult {
  double gemm_gflops = 0.0;    // large blocked GEMM rate (fp32)
  double gemv_gflops = 0.0;    // memory-bound rate
  double stream_gbs = 0.0;     // effective streaming bandwidth (from GEMV)
  double seconds_spent = 0.0;  // calibration cost
};

/// Time the library's kernels (a few hundred ms) and report host rates.
CalibrationResult calibrate_host(Index gemm_size = 384,
                                 Index gemv_size = 2048);

/// A NodeSpec describing this host: fp32 peak = measured GEMM rate, one
/// memory tier with the measured streaming bandwidth, reduced-precision
/// peaks equal to fp32 (no special units — emulation is software here).
/// Energy constants are taken from typical server-CPU figures and only
/// matter for relative comparisons.
NodeSpec calibrated_host_node(const CalibrationResult& calibration);

}  // namespace candle::hpcsim

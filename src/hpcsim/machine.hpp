// Analytic machine model: nodes with per-precision compute peaks and a
// tiered memory system (HBM / DDR / NVRAM / PFS share).  This is the
// substitute for the leadership-class hardware the paper targets (see the
// substitution table in DESIGN.md): scaling, data-motion and energy claims
// are evaluated against this model, calibrated where possible by measured
// kernel rates from bench_kernels.
//
// Energy accounting follows the standard pJ/op + pJ/byte decomposition used
// in the exascale-report literature: moving a byte from far memory costs
// an order of magnitude more than computing on it, which is precisely the
// paper's claim C5 ("high-bandwidth memory physically close to arithmetic
// units to reduce costs of data motion").
#pragma once

#include <string>
#include <vector>

#include "core/formats.hpp"
#include "runtime/error.hpp"

namespace candle::hpcsim {

/// One level of the memory hierarchy.
struct MemoryTier {
  std::string name;        // "HBM", "DDR", "NVRAM", "PFS"
  double bandwidth_gbs;    // sustained GB/s per node
  double latency_us;       // access latency
  double capacity_gb;      // per-node capacity
  double pj_per_byte;      // energy to move one byte to the core
};

/// A compute node: peak dense-GEMM rates per numeric format + memory tiers
/// ordered nearest-first.
struct NodeSpec {
  std::string name;
  double peak_fp64_gflops;
  double peak_fp32_gflops;
  double peak_bf16_gflops;
  double peak_fp16_gflops;
  double peak_int8_gops;
  double pj_per_fp32_flop;       // compute energy at fp32
  std::vector<MemoryTier> tiers; // [0] is nearest to the ALUs

  /// Peak rate for a format, in GFLOP/s (GOP/s for int8).
  double peak_gflops(Precision p) const;

  /// Energy per op at a format: scales with operand width relative to fp32
  /// (narrower datapaths move and switch fewer bits).
  double pj_per_flop(Precision p) const {
    return pj_per_fp32_flop * static_cast<double>(precision_bits(p)) / 32.0;
  }

  const MemoryTier& tier(std::size_t i) const {
    CANDLE_CHECK(i < tiers.size(), "memory tier index out of range");
    return tiers[i];
  }
  const MemoryTier& nearest() const { return tier(0); }

  /// Find a tier by name; throws if absent.
  const MemoryTier& tier_named(const std::string& tier_name) const;
};

/// Roofline estimate for one kernel on one node.
struct KernelEstimate {
  double compute_s;  // flops / peak
  double memory_s;   // bytes / tier bandwidth
  double time_s;     // max of the two (perfect overlap assumption)
  double energy_j;   // compute + data-motion energy
  double achieved_gflops;
  bool memory_bound;
};

/// Time+energy for `flops` operations touching `bytes` of traffic resident
/// in memory tier `tier_index`, at numeric format `prec`.
KernelEstimate roofline(const NodeSpec& node, double flops, double bytes,
                        Precision prec, std::size_t tier_index = 0);

/// Arithmetic intensity (flops per byte) at which a format transitions from
/// memory-bound to compute-bound on the given tier.
double ridge_intensity(const NodeSpec& node, Precision prec,
                       std::size_t tier_index = 0);

// ---- presets -------------------------------------------------------------------
//
// Three generations bracketing the paper's timeline.  Numbers are public
// spec-sheet figures (sustained ~= peak here; the model's comparisons are
// relative so absolute calibration washes out).

/// 2013-era Titan node: K20X GPU, GDDR5, no reduced-precision speedup.
NodeSpec titan_node();

/// 2018-era Summit node: V100, HBM2, fp16 tensor cores, NVMe burst buffer.
NodeSpec summit_node();

/// Speculative exascale-class node of the kind the paper argues for:
/// wide low-precision units, HBM close to ALUs, large NVRAM.
NodeSpec future_node();

/// All presets, for sweeps.
std::vector<NodeSpec> all_node_presets();

}  // namespace candle::hpcsim

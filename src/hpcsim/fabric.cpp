#include "hpcsim/fabric.hpp"

#include <algorithm>
#include <cmath>

namespace candle::hpcsim {

std::string topology_name(Topology t) {
  switch (t) {
    case Topology::FatTree: return "fat-tree";
    case Topology::Torus3D: return "torus3d";
    case Topology::Dragonfly: return "dragonfly";
  }
  CANDLE_FAIL("unknown Topology");
}

std::string allreduce_algo_name(AllReduceAlgo a) {
  switch (a) {
    case AllReduceAlgo::Ring: return "ring";
    case AllReduceAlgo::BinomialTree: return "tree";
    case AllReduceAlgo::HalvingDoubling: return "halving-doubling";
  }
  CANDLE_FAIL("unknown AllReduceAlgo");
}

double Fabric::average_hops(Index p) const {
  CANDLE_CHECK(p >= 1, "fabric needs at least one rank");
  if (p == 1) return 0.0;
  const double pd = static_cast<double>(p);
  switch (topology) {
    case Topology::FatTree: {
      // Up-down route through ceil(log_radix p) switch levels.
      const double levels =
          std::ceil(std::log(pd) / std::log(static_cast<double>(radix)));
      return 2.0 * std::max(1.0, levels);
    }
    case Topology::Torus3D: {
      // Average Manhattan distance on a k x k x k torus: k/4 per dimension.
      const double k = std::cbrt(pd);
      return std::max(1.0, 3.0 * k / 4.0);
    }
    case Topology::Dragonfly:
      // Minimal routing: local -> global -> local.
      return 3.0;
  }
  CANDLE_FAIL("unknown Topology");
}

namespace {

double ring_chunk_term(const Fabric& f, Index p, double bytes) {
  const double pd = static_cast<double>(p);
  return 2.0 * (pd - 1.0) / pd * bytes * f.seconds_per_byte();
}

}  // namespace

double allreduce_time_s(const Fabric& fabric, AllReduceAlgo algo, Index p,
                        double bytes) {
  CANDLE_CHECK(p >= 1 && bytes >= 0.0, "invalid all-reduce arguments");
  if (p == 1) return 0.0;
  const double pd = static_cast<double>(p);
  const double alpha_nbr = fabric.message_latency_s(1.0);
  const double alpha_avg = fabric.message_latency_s(fabric.average_hops(p));
  switch (algo) {
    case AllReduceAlgo::Ring:
      return 2.0 * (pd - 1.0) * alpha_nbr + ring_chunk_term(fabric, p, bytes);
    case AllReduceAlgo::BinomialTree: {
      const double rounds = 2.0 * std::ceil(std::log2(pd));
      return rounds * (alpha_avg + bytes * fabric.seconds_per_byte());
    }
    case AllReduceAlgo::HalvingDoubling: {
      const double rounds = 2.0 * std::ceil(std::log2(pd));
      return rounds * alpha_avg + ring_chunk_term(fabric, p, bytes);
    }
  }
  CANDLE_FAIL("unknown AllReduceAlgo");
}

double allgather_time_s(const Fabric& fabric, Index p,
                        double bytes_per_rank) {
  CANDLE_CHECK(p >= 1 && bytes_per_rank >= 0.0, "invalid all-gather args");
  if (p == 1) return 0.0;
  const double pd = static_cast<double>(p);
  return (pd - 1.0) * fabric.message_latency_s(1.0) +
         (pd - 1.0) * bytes_per_rank * fabric.seconds_per_byte();
}

double broadcast_time_s(const Fabric& fabric, Index p, double bytes) {
  CANDLE_CHECK(p >= 1 && bytes >= 0.0, "invalid broadcast args");
  if (p == 1) return 0.0;
  const double rounds = std::ceil(std::log2(static_cast<double>(p)));
  return rounds * (fabric.message_latency_s(fabric.average_hops(p)) +
                   bytes * fabric.seconds_per_byte());
}

double reduce_scatter_time_s(const Fabric& fabric, Index p, double bytes) {
  CANDLE_CHECK(p >= 1 && bytes >= 0.0, "invalid reduce-scatter args");
  if (p == 1) return 0.0;
  const double pd = static_cast<double>(p);
  return (pd - 1.0) * fabric.message_latency_s(1.0) +
         (pd - 1.0) / pd * bytes * fabric.seconds_per_byte();
}

double allreduce_bytes_on_wire(AllReduceAlgo algo, Index p, double bytes) {
  if (p <= 1) return 0.0;
  const double pd = static_cast<double>(p);
  switch (algo) {
    case AllReduceAlgo::Ring:
    case AllReduceAlgo::HalvingDoubling:
      return 2.0 * (pd - 1.0) / pd * bytes;  // per rank, bandwidth-optimal
    case AllReduceAlgo::BinomialTree:
      return 2.0 * std::ceil(std::log2(pd)) * bytes;
  }
  CANDLE_FAIL("unknown AllReduceAlgo");
}

AllReduceAlgo best_allreduce_algo(const Fabric& fabric, Index p,
                                  double bytes) {
  AllReduceAlgo best = AllReduceAlgo::Ring;
  double best_t = allreduce_time_s(fabric, best, p, bytes);
  for (AllReduceAlgo a :
       {AllReduceAlgo::BinomialTree, AllReduceAlgo::HalvingDoubling}) {
    const double t = allreduce_time_s(fabric, a, p, bytes);
    if (t < best_t) {
      best = a;
      best_t = t;
    }
  }
  return best;
}

Fabric fat_tree_fabric() {
  Fabric f;
  f.topology = Topology::FatTree;
  f.link_bandwidth_gbs = 12.5;
  f.link_latency_us = 0.5;
  f.software_overhead_us = 1.0;
  f.radix = 36;
  f.pj_per_byte = 60.0;
  return f;
}

Fabric torus_fabric() {
  Fabric f;
  f.topology = Topology::Torus3D;
  f.link_bandwidth_gbs = 5.0;
  f.link_latency_us = 0.25;
  f.software_overhead_us = 1.5;
  f.radix = 6;
  f.pj_per_byte = 40.0;
  return f;
}

Fabric dragonfly_fabric() {
  Fabric f;
  f.topology = Topology::Dragonfly;
  f.link_bandwidth_gbs = 25.0;
  f.link_latency_us = 0.3;
  f.software_overhead_us = 0.8;
  f.radix = 32;
  f.pj_per_byte = 50.0;
  return f;
}

std::vector<Fabric> all_fabric_presets() {
  return {fat_tree_fabric(), torus_fabric(), dragonfly_fabric()};
}

}  // namespace candle::hpcsim

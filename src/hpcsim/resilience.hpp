// Checkpoint/restart model for long training campaigns: at the 4096-node
// scales the paper targets, the machine's MTBF per job drops to hours, and
// the checkpoint interval becomes a first-order term in time-to-solution.
// Standard Young/Daly analysis applied to training-state checkpoints
// (weights + optimizer state written to the burst buffer or PFS).
#pragma once

#include <cmath>
#include <string>

#include "hpcsim/machine.hpp"

namespace candle::hpcsim {

using Index = std::int64_t;

struct ResilienceConfig {
  Index nodes = 4096;
  double node_mtbf_hours = 20000.0;  // per-node mean time between failures
  double checkpoint_state_gb = 1.0;  // weights + optimizer state
  double checkpoint_bandwidth_gbs = 50.0;  // aggregate write rate
  double restart_overhead_s = 60.0;  // relaunch + reload time
};

/// Job-level MTBF in seconds: node MTBF / nodes (independent exponential
/// failures).
double job_mtbf_s(const ResilienceConfig& cfg);

/// Seconds to write one checkpoint.
double checkpoint_cost_s(const ResilienceConfig& cfg);

/// Young/Daly near-optimal checkpoint interval: sqrt(2 * C * MTBF).
double optimal_checkpoint_interval_s(const ResilienceConfig& cfg);

/// Expected wall-clock to complete `work_s` seconds of failure-free work
/// when checkpointing every `interval_s` seconds (first-order exponential
/// failure model: each failure loses on average half an interval plus the
/// restart overhead).
double expected_runtime_s(const ResilienceConfig& cfg, double work_s,
                          double interval_s);

/// Overhead factor (expected runtime / ideal runtime) at the optimal
/// interval.
double optimal_overhead_factor(const ResilienceConfig& cfg, double work_s);

/// Monte-Carlo validation of the analytic model: simulate `trials` runs
/// with exponential failures (seeded), checkpointing every `interval_s`,
/// and return the mean wall-clock.  Used by tests to pin the closed form
/// against an executable discrete-event simulation.
double simulate_runtime_s(const ResilienceConfig& cfg, double work_s,
                          double interval_s, Index trials,
                          std::uint64_t seed);

// ---- straggler / tail-latency model -----------------------------------------
//
// Node-level performance variability: each rank independently stalls with
// probability `prob` per step, for a heavy-tailed Pareto(alpha, min_delay_s)
// duration.  Synchronous training pays the *maximum* stall per step (the
// MLPerf-HPC tail-latency pathology); backup workers pay an order statistic
// (commit once n-k gradient sets arrived); bounded staleness pays only when
// a rank falls further than `staleness_bound` steps behind.

struct StragglerModel {
  double prob = 0.01;          // per rank-step straggle probability
  double pareto_alpha = 2.5;   // tail index (> 1 for a finite mean)
  double min_delay_s = 1.0;    // Pareto scale (smallest stall)
};

/// Execution discipline under stragglers.
enum class StragglerMitigation {
  Synchronous,      // every step waits for the slowest rank
  BackupWorkers,    // commit with the first ranks - backup_workers arrivals
  BoundedStaleness, // stragglers may lag up to staleness_bound steps
};

const char* straggler_mitigation_name(StragglerMitigation mode);

/// Expected time of one training step of nominal cost `step_s` over `ranks`
/// ranks under `model`, for the given mitigation mode.  Exact closed forms
/// from Pareto order statistics (binomial mixture over the straggler count):
///   Synchronous:     step + E[max of the stragglers' delays]
///   BackupWorkers:   step + E[(j-k)-th smallest delay | j > k stragglers]
///   BoundedStaleness:step + ranks*prob*step*E[(ceil(D/step) - s)+]
/// `backup_workers` (k) is used by BackupWorkers, `staleness_bound` (s) by
/// BoundedStaleness; both ignored otherwise.
double expected_straggler_step_s(const StragglerModel& model,
                                 StragglerMitigation mode, double step_s,
                                 Index ranks, Index backup_workers,
                                 Index staleness_bound);

/// Expected wall-clock of `steps` steps: steps * expected_straggler_step_s.
double expected_straggler_runtime_s(const StragglerModel& model,
                                    StragglerMitigation mode, double step_s,
                                    Index ranks, Index backup_workers,
                                    Index staleness_bound, Index steps);

/// Monte-Carlo validation of the straggler closed forms: simulate `trials`
/// runs of `steps` steps with seeded per-rank Pareto stalls and the given
/// mitigation discipline, and return the mean wall-clock.  Tests pin
/// expected_straggler_runtime_s against this executable simulation.
double simulate_straggler_runtime_s(const StragglerModel& model,
                                    StragglerMitigation mode, double step_s,
                                    Index ranks, Index backup_workers,
                                    Index staleness_bound, Index steps,
                                    Index trials, std::uint64_t seed);

}  // namespace candle::hpcsim

// Checkpoint/restart model for long training campaigns: at the 4096-node
// scales the paper targets, the machine's MTBF per job drops to hours, and
// the checkpoint interval becomes a first-order term in time-to-solution.
// Standard Young/Daly analysis applied to training-state checkpoints
// (weights + optimizer state written to the burst buffer or PFS).
#pragma once

#include <cmath>
#include <string>

#include "hpcsim/machine.hpp"

namespace candle::hpcsim {

using Index = std::int64_t;

struct ResilienceConfig {
  Index nodes = 4096;
  double node_mtbf_hours = 20000.0;  // per-node mean time between failures
  double checkpoint_state_gb = 1.0;  // weights + optimizer state
  double checkpoint_bandwidth_gbs = 50.0;  // aggregate write rate
  double restart_overhead_s = 60.0;  // relaunch + reload time
};

/// Job-level MTBF in seconds: node MTBF / nodes (independent exponential
/// failures).
double job_mtbf_s(const ResilienceConfig& cfg);

/// Seconds to write one checkpoint.
double checkpoint_cost_s(const ResilienceConfig& cfg);

/// Young/Daly near-optimal checkpoint interval: sqrt(2 * C * MTBF).
double optimal_checkpoint_interval_s(const ResilienceConfig& cfg);

/// Expected wall-clock to complete `work_s` seconds of failure-free work
/// when checkpointing every `interval_s` seconds (first-order exponential
/// failure model: each failure loses on average half an interval plus the
/// restart overhead).
double expected_runtime_s(const ResilienceConfig& cfg, double work_s,
                          double interval_s);

/// Overhead factor (expected runtime / ideal runtime) at the optimal
/// interval.
double optimal_overhead_factor(const ResilienceConfig& cfg, double work_s);

/// Monte-Carlo validation of the analytic model: simulate `trials` runs
/// with exponential failures (seeded), checkpointing every `interval_s`,
/// and return the mean wall-clock.  Used by tests to pin the closed form
/// against an executable discrete-event simulation.
double simulate_runtime_s(const ResilienceConfig& cfg, double work_s,
                          double interval_s, Index trials,
                          std::uint64_t seed);

}  // namespace candle::hpcsim

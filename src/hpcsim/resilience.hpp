// Checkpoint/restart model for long training campaigns: at the 4096-node
// scales the paper targets, the machine's MTBF per job drops to hours, and
// the checkpoint interval becomes a first-order term in time-to-solution.
// Standard Young/Daly analysis applied to training-state checkpoints
// (weights + optimizer state written to the burst buffer or PFS).
#pragma once

#include <cmath>
#include <string>

#include "hpcsim/machine.hpp"

namespace candle::hpcsim {

using Index = std::int64_t;

struct ResilienceConfig {
  Index nodes = 4096;
  double node_mtbf_hours = 20000.0;  // per-node mean time between failures
  double checkpoint_state_gb = 1.0;  // weights + optimizer state
  double checkpoint_bandwidth_gbs = 50.0;  // aggregate write rate
  double restart_overhead_s = 60.0;  // relaunch + reload time
};

/// Job-level MTBF in seconds: node MTBF / nodes (independent exponential
/// failures).
double job_mtbf_s(const ResilienceConfig& cfg);

/// Seconds to write one checkpoint.
double checkpoint_cost_s(const ResilienceConfig& cfg);

/// Young/Daly near-optimal checkpoint interval: sqrt(2 * C * MTBF).
double optimal_checkpoint_interval_s(const ResilienceConfig& cfg);

/// Expected wall-clock to complete `work_s` seconds of failure-free work
/// when checkpointing every `interval_s` seconds (first-order exponential
/// failure model: each failure loses on average half an interval plus the
/// restart overhead).
double expected_runtime_s(const ResilienceConfig& cfg, double work_s,
                          double interval_s);

/// Overhead factor (expected runtime / ideal runtime) at the optimal
/// interval.
double optimal_overhead_factor(const ResilienceConfig& cfg, double work_s);

/// Monte-Carlo validation of the analytic model: simulate `trials` runs
/// with exponential failures (seeded), checkpointing every `interval_s`,
/// and return the mean wall-clock.  Used by tests to pin the closed form
/// against an executable discrete-event simulation.
double simulate_runtime_s(const ResilienceConfig& cfg, double work_s,
                          double interval_s, Index trials,
                          std::uint64_t seed);

// ---- straggler / tail-latency model -----------------------------------------
//
// Node-level performance variability: each rank independently stalls with
// probability `prob` per step, for a heavy-tailed Pareto(alpha, min_delay_s)
// duration.  Synchronous training pays the *maximum* stall per step (the
// MLPerf-HPC tail-latency pathology); backup workers pay an order statistic
// (commit once n-k gradient sets arrived); bounded staleness pays only when
// a rank falls further than `staleness_bound` steps behind.

struct StragglerModel {
  double prob = 0.01;          // per rank-step straggle probability
  double pareto_alpha = 2.5;   // tail index (> 1 for a finite mean)
  double min_delay_s = 1.0;    // Pareto scale (smallest stall)
};

/// Execution discipline under stragglers.
enum class StragglerMitigation {
  Synchronous,      // every step waits for the slowest rank
  BackupWorkers,    // commit with the first ranks - backup_workers arrivals
  BoundedStaleness, // stragglers may lag up to staleness_bound steps
};

const char* straggler_mitigation_name(StragglerMitigation mode);

/// Expected time of one training step of nominal cost `step_s` over `ranks`
/// ranks under `model`, for the given mitigation mode.  Exact closed forms
/// from Pareto order statistics (binomial mixture over the straggler count):
///   Synchronous:     step + E[max of the stragglers' delays]
///   BackupWorkers:   step + E[(j-k)-th smallest delay | j > k stragglers]
///   BoundedStaleness:step + ranks*prob*step*E[(ceil(D/step) - s)+]
/// `backup_workers` (k) is used by BackupWorkers, `staleness_bound` (s) by
/// BoundedStaleness; both ignored otherwise.
double expected_straggler_step_s(const StragglerModel& model,
                                 StragglerMitigation mode, double step_s,
                                 Index ranks, Index backup_workers,
                                 Index staleness_bound);

/// Expected wall-clock of `steps` steps: steps * expected_straggler_step_s.
double expected_straggler_runtime_s(const StragglerModel& model,
                                    StragglerMitigation mode, double step_s,
                                    Index ranks, Index backup_workers,
                                    Index staleness_bound, Index steps);

/// Monte-Carlo validation of the straggler closed forms: simulate `trials`
/// runs of `steps` steps with seeded per-rank Pareto stalls and the given
/// mitigation discipline, and return the mean wall-clock.  Tests pin
/// expected_straggler_runtime_s against this executable simulation.
double simulate_straggler_runtime_s(const StragglerModel& model,
                                    StragglerMitigation mode, double step_s,
                                    Index ranks, Index backup_workers,
                                    Index staleness_bound, Index steps,
                                    Index trials, std::uint64_t seed);

// ---- serving availability / degraded-capacity model -------------------------
//
// The serving counterpart of Young/Daly: what a supervised inference pool
// (serve::SupervisedEngine) actually delivers when workers crash, hang and
// get replaced.  Three effects are priced:
//   * availability  — each worker slot alternates exponential(mtbf) uptime
//     with `mttr` of detection + backoff + respawn, so the long-run live
//     fraction is the renewal-reward ratio A = mtbf / (mtbf + mttr);
//   * hang drag     — with probability `hang_prob` a batch stalls for an
//     exponential(hang_mean_s) duration.  Without hedging the slot eats the
//     whole stall; with hedging a duplicate dispatch (one extra batch of
//     work) races it and the stuck slot is reclaimed at the hang-declaration
//     timeout, trading stall time for bounded duplicate work;
//   * dead workers  — capacity scales with the (workers - k) slots actually
//     live when k are administratively failed and not yet replaced.
// The closed forms are pinned against simulate_serving_capacity_bps (seeded
// renewal simulation) in tests, and against the real engine in bench_e12.

struct ServingFaultModel {
  Index workers = 4;
  double worker_mtbf_s = 3600.0;   // per-worker mean time between crashes
  double worker_mttr_s = 1.0;      // detect + backoff + respawn one worker
  double batch_service_s = 1e-3;   // healthy full-batch service time
  double hang_prob = 0.0;          // per-batch stall probability
  double hang_mean_s = 0.05;       // mean stall duration (exponential)
  bool hedging = true;             // duplicate dispatch races stalls
  double hedge_latency_mult = 3.0;  // hedge fires at mult * batch service
  double hang_latency_mult = 12.0;  // stuck slot reclaimed at mult * service
};

/// Long-run live fraction of one worker slot: mtbf / (mtbf + mttr).
double serving_availability(const ServingFaultModel& m);

/// Expected slot-seconds consumed per successfully served batch, including
/// hang stalls and (when hedging) duplicate work:
///   no hedging: s + p * hang_mean
///   hedging:    s + p * (E[min(d, H)] + P(d > h) * s)
/// with h/H the hedge and hang-declaration timeouts and d ~ Exp(hang_mean).
double expected_batch_cost_s(const ServingFaultModel& m);

/// Fraction of nominal capacity actually delivered per live slot:
/// batch_service_s / expected_batch_cost_s.  1.0 when nothing hangs.
double serving_efficiency(const ServingFaultModel& m);

/// Delivered pool capacity in batches/s with `failed_workers` of the pool
/// dead (not yet replaced):
///   (workers - k) * availability * efficiency / batch_service_s.
double degraded_serving_capacity_bps(const ServingFaultModel& m,
                                     Index failed_workers = 0);

/// Monte-Carlo validation of the closed form: simulate `trials` runs of
/// `duration_s` of a saturated pool with seeded exponential crash and hang
/// processes and return the mean delivered batches/s.  Tests pin
/// degraded_serving_capacity_bps against this executable simulation.
double simulate_serving_capacity_bps(const ServingFaultModel& m,
                                     Index failed_workers, double duration_s,
                                     Index trials, std::uint64_t seed);

}  // namespace candle::hpcsim

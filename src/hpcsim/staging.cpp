#include "hpcsim/staging.hpp"

#include <algorithm>

namespace candle::hpcsim {

std::string staging_strategy_name(StagingStrategy s) {
  switch (s) {
    case StagingStrategy::PfsEveryEpoch: return "pfs-every-epoch";
    case StagingStrategy::NvramCached: return "nvram-cached";
    case StagingStrategy::GenerateOnNode: return "generate-on-node";
  }
  CANDLE_FAIL("unknown StagingStrategy");
}

namespace {

void validate(const StagingConfig& cfg) {
  CANDLE_CHECK(cfg.dataset_gb > 0.0 && cfg.nodes >= 1 && cfg.epochs >= 1,
               "invalid staging config");
  CANDLE_CHECK(cfg.pfs_aggregate_gbs > 0.0 && cfg.nvram_node_gbs > 0.0 &&
                   cfg.generate_gbs > 0.0 && cfg.pfs_per_node_cap_gbs > 0.0,
               "staging bandwidths must be positive");
}

/// Seconds to pull the full dataset from PFS with all nodes reading their
/// shards concurrently: limited by the shared aggregate OR per-node cap.
double pfs_epoch_time(const StagingConfig& cfg) {
  const double shard_gb = cfg.dataset_gb / static_cast<double>(cfg.nodes);
  const double per_node_rate =
      std::min(cfg.pfs_per_node_cap_gbs,
               cfg.pfs_aggregate_gbs / static_cast<double>(cfg.nodes));
  return shard_gb / per_node_rate;
}

}  // namespace

double epoch_ingest_time_s(StagingStrategy strategy, const StagingConfig& cfg,
                           Index epoch) {
  validate(cfg);
  CANDLE_CHECK(epoch >= 0 && epoch < cfg.epochs, "epoch out of range");
  const double shard_gb = cfg.dataset_gb / static_cast<double>(cfg.nodes);
  switch (strategy) {
    case StagingStrategy::PfsEveryEpoch:
      return pfs_epoch_time(cfg);
    case StagingStrategy::NvramCached: {
      const double cached_gb = std::min(shard_gb, cfg.nvram_capacity_gb);
      const double spilled_gb = shard_gb - cached_gb;
      if (epoch == 0) {
        // Populate the cache (reads stream through the node once).
        return pfs_epoch_time(cfg);
      }
      const double local = cached_gb / cfg.nvram_node_gbs;
      const double spill =
          spilled_gb > 0.0
              ? spilled_gb / std::min(cfg.pfs_per_node_cap_gbs,
                                      cfg.pfs_aggregate_gbs /
                                          static_cast<double>(cfg.nodes))
              : 0.0;
      return local + spill;
    }
    case StagingStrategy::GenerateOnNode:
      return shard_gb / cfg.generate_gbs;
  }
  CANDLE_FAIL("unknown StagingStrategy");
}

double campaign_ingest_time_s(StagingStrategy strategy,
                              const StagingConfig& cfg) {
  validate(cfg);
  double total = 0.0;
  for (Index e = 0; e < cfg.epochs; ++e) {
    total += epoch_ingest_time_s(strategy, cfg, e);
  }
  return total;
}

double campaign_ingest_energy_j(StagingStrategy strategy,
                                const StagingConfig& cfg,
                                const NodeSpec& node) {
  validate(cfg);
  const double dataset_bytes = cfg.dataset_gb * 1e9;
  const double pfs_pj = node.tier_named("PFS").pj_per_byte;
  switch (strategy) {
    case StagingStrategy::PfsEveryEpoch:
      return static_cast<double>(cfg.epochs) * dataset_bytes * pfs_pj * 1e-12;
    case StagingStrategy::NvramCached: {
      const double nvram_pj = node.tier_named("NVRAM").pj_per_byte;
      const double shard_gb = cfg.dataset_gb / static_cast<double>(cfg.nodes);
      const double cached_fraction =
          std::min(1.0, cfg.nvram_capacity_gb / shard_gb);
      const double first = dataset_bytes * pfs_pj;
      const double later =
          static_cast<double>(cfg.epochs - 1) * dataset_bytes *
          (cached_fraction * nvram_pj + (1.0 - cached_fraction) * pfs_pj);
      return (first + later) * 1e-12;
    }
    case StagingStrategy::GenerateOnNode: {
      // Synthesis writes + reads through near memory only.
      const double near_pj = node.nearest().pj_per_byte;
      return static_cast<double>(cfg.epochs) * dataset_bytes * 2.0 * near_pj *
             1e-12;
    }
  }
  CANDLE_FAIL("unknown StagingStrategy");
}

StagingStrategy best_staging_strategy(const StagingConfig& cfg) {
  StagingStrategy best = StagingStrategy::PfsEveryEpoch;
  double best_t = campaign_ingest_time_s(best, cfg);
  for (StagingStrategy s :
       {StagingStrategy::NvramCached, StagingStrategy::GenerateOnNode}) {
    const double t = campaign_ingest_time_s(s, cfg);
    if (t < best_t) {
      best = s;
      best_t = t;
    }
  }
  return best;
}

}  // namespace candle::hpcsim

#include "hpcsim/perfmodel.hpp"

#include <algorithm>
#include <cmath>

namespace candle::hpcsim {

double overlapped_exposed_comm_s(Index buckets, double bucket_comm_s,
                                 double backward_s) {
  CANDLE_CHECK(buckets >= 1, "need at least one bucket");
  CANDLE_CHECK(bucket_comm_s >= 0.0 && backward_s >= 0.0,
               "negative time in overlap model");
  // Drain simulation: the engine can start bucket i once backward has
  // produced it AND the previous bucket finished; the exposed tail is
  // whatever runs past the end of backward.
  double engine_free = 0.0;
  for (Index i = 0; i < buckets; ++i) {
    const double ready = backward_s * static_cast<double>(i + 1) /
                         static_cast<double>(buckets);
    engine_free = std::max(engine_free, ready) + bucket_comm_s;
  }
  return std::max(0.0, engine_free - backward_s);
}

double ingest_exposed_s_per_step(double assemble_s, double compute_s,
                                 Index depth, Index steps) {
  CANDLE_CHECK(depth >= 1, "need at least one prefetch slot");
  CANDLE_CHECK(steps >= 1, "need at least one step");
  CANDLE_CHECK(assemble_s >= 0.0 && compute_s >= 0.0,
               "negative time in ingest model");
  // Drain simulation, mirror image of overlapped_exposed_comm_s: the
  // assembler runs ahead of the consumer, gated by slot reuse (batch i's
  // slot frees when batch i-depth finishes computing), and each step's
  // exposed ingest is the gap between the previous compute ending and the
  // next batch being ready.
  std::vector<double> consume_end(static_cast<std::size_t>(steps), 0.0);
  double assembler_free = 0.0;
  double exposed = 0.0;
  for (Index i = 0; i < steps; ++i) {
    const double slot_free =
        i >= depth ? consume_end[static_cast<std::size_t>(i - depth)] : 0.0;
    const double ready =
        std::max(assembler_free, slot_free) + assemble_s;
    assembler_free = ready;
    const double prev_end =
        i > 0 ? consume_end[static_cast<std::size_t>(i - 1)] : 0.0;
    exposed += std::max(0.0, ready - prev_end);
    consume_end[static_cast<std::size_t>(i)] =
        std::max(ready, prev_end) + compute_s;
  }
  return exposed / static_cast<double>(steps);
}

StepEstimate estimate_step_with_ingest(const NodeSpec& node,
                                       const Fabric& fabric,
                                       const TrainingWorkload& workload,
                                       const ParallelPlan& plan,
                                       const IngestModel& ingest) {
  StepEstimate e = estimate_step(node, fabric, workload, plan);
  e.ingest_s = ingest.assemble_s_per_step;
  e.ingest_exposed_s = ingest_exposed_s_per_step(
      ingest.assemble_s_per_step, e.step_s, ingest.prefetch_depth,
      ingest.steps);
  e.step_s += e.ingest_exposed_s;
  return e;
}

double gemm_efficiency(Index local_batch) {
  CANDLE_CHECK(local_batch >= 0, "negative batch");
  if (local_batch == 0) return 0.0;
  const double b = static_cast<double>(local_batch);
  const double b_half = 32.0;  // batch at 50% of peak
  return b / (b + b_half);
}

StepEstimate estimate_step(const NodeSpec& node, const Fabric& fabric,
                           const TrainingWorkload& workload,
                           const ParallelPlan& plan) {
  CANDLE_CHECK(plan.data_replicas >= 1 && plan.model_shards >= 1,
               "invalid parallel plan");
  CANDLE_CHECK(plan.batch_per_replica >= 1, "empty replica batch");
  CANDLE_CHECK(workload.flops_per_sample > 0.0 && workload.parameters > 0.0,
               "workload not populated");

  StepEstimate e;
  const double b = static_cast<double>(plan.batch_per_replica);
  const double shards = static_cast<double>(plan.model_shards);
  const double replicas = static_cast<double>(plan.data_replicas);

  // --- compute: fwd + 2 backward GEMMs = 3x forward flops; work divides
  // across model shards; efficiency depends on per-shard batch volume.
  const double step_flops = 3.0 * workload.flops_per_sample * b / shards;
  const double eff = gemm_efficiency(plan.batch_per_replica);
  const double peak = node.peak_gflops(plan.precision) * 1e9;
  e.compute_s = step_flops / (peak * std::max(1e-6, eff));

  // --- memory: weights read 3x (fwd, bwd, update) + activations written
  // and re-read once each; from the nearest tier unless the resident
  // working set (weights + grads + optimizer state + activations) exceeds
  // its capacity, in which case traffic spills to the next tier.
  const double weight_bytes = workload.parameters / shards * 4.0 * 3.0;
  const double act_bytes = workload.activation_bytes_per_sample * b / shards * 2.0;
  const double input_bytes = workload.bytes_per_sample * b;
  const double mem_bytes = weight_bytes + act_bytes + input_bytes;
  const double resident_gb =
      (workload.parameters / shards * 4.0 * 3.0 +
       workload.activation_bytes_per_sample * b / shards) /
      1e9;
  std::size_t tier_index = 0;
  if (resident_gb > node.nearest().capacity_gb && node.tiers.size() > 1) {
    tier_index = 1;
    e.spills_nearest_tier = true;
  }
  e.memory_s = mem_bytes / (node.tier(tier_index).bandwidth_gbs * 1e9);

  // --- data-parallel gradient all-reduce across replicas.
  const double grad_bytes =
      workload.parameters / shards * plan.gradient_wire_bytes;
  e.dp_comm_s = plan.data_replicas > 1
                    ? allreduce_time_s(fabric, plan.allreduce,
                                       plan.data_replicas, grad_bytes)
                    : 0.0;

  // --- model-parallel activation exchange: each of the shard boundaries
  // passes the boundary activations forward and gradients back, with
  // latency paid per microbatch message inside the (modest) group.
  if (plan.model_shards > 1) {
    const double boundary_bytes =
        workload.activation_bytes_per_sample * b / shards;
    const double alpha = fabric.message_latency_s(1.0);  // tight group
    const double per_boundary =
        2.0 * (alpha + boundary_bytes * fabric.seconds_per_byte());
    e.mp_comm_s = (shards - 1.0) * per_boundary;
  }

  // --- assembly: compute overlaps memory (roofline max).  Monolithic
  // collectives are fully exposed (synchronous SGD); with bucketing the
  // gradient ships in size-targeted buckets launched as backward produces
  // them, and only the drain tail past the end of backward is exposed.
  // Backward is ~2/3 of the math time (2 of the 3 GEMM passes), the window
  // the bucket stream can hide behind.
  const double math_s = std::max(e.compute_s, e.memory_s);
  e.dp_comm_exposed_s = e.dp_comm_s;
  if (plan.bucket_bytes > 0.0 && plan.data_replicas > 1) {
    const double nb_d = std::ceil(grad_bytes / plan.bucket_bytes);
    const Index nb = std::max<Index>(1, static_cast<Index>(nb_d));
    const double bucket_comm_s = allreduce_time_s(
        fabric, plan.allreduce, plan.data_replicas,
        grad_bytes / static_cast<double>(nb));
    e.dp_comm_s = static_cast<double>(nb) * bucket_comm_s;
    const double backward_s = math_s * (2.0 / 3.0);
    e.dp_comm_exposed_s =
        overlapped_exposed_comm_s(nb, bucket_comm_s, backward_s);
  }
  e.overlap_fraction =
      e.dp_comm_s > 0.0
          ? std::clamp(1.0 - e.dp_comm_exposed_s / e.dp_comm_s, 0.0, 1.0)
          : 0.0;
  e.step_s = math_s + e.dp_comm_exposed_s + e.mp_comm_s;

  // --- energy across the whole allocation.
  const double nodes = replicas * shards;
  const double flop_energy = step_flops * shards *  // per-replica total
                             node.pj_per_flop(plan.precision) * 1e-12;
  const double mem_energy = mem_bytes * shards *
                            node.nearest().pj_per_byte * 1e-12;
  const double wire_bytes =
      allreduce_bytes_on_wire(plan.allreduce, plan.data_replicas, grad_bytes) +
      (plan.model_shards > 1
           ? 2.0 * (shards - 1.0) * workload.activation_bytes_per_sample * b /
                 shards
           : 0.0);
  const double net_energy = fabric.transfer_energy_j(wire_bytes);
  e.energy_j = replicas * (flop_energy + mem_energy) + replicas * net_energy;

  const double global_batch = b * replicas;
  e.samples_per_s = global_batch / e.step_s;
  const double total_peak = peak * nodes;
  e.flops_utilization =
      (3.0 * workload.flops_per_sample * global_batch / e.step_s) / total_peak;
  return e;
}

namespace {

ScalingPoint make_point(const StepEstimate& est, Index nodes,
                        double base_step_s, double base_nodes_ratio) {
  ScalingPoint p;
  p.nodes = nodes;
  p.step_s = est.step_s;
  p.speedup = base_step_s / est.step_s * base_nodes_ratio;
  p.efficiency = p.speedup / static_cast<double>(nodes);
  p.comm_fraction = (est.dp_comm_s + est.mp_comm_s) / est.step_s;
  p.samples_per_s = est.samples_per_s;
  return p;
}

}  // namespace

std::vector<ScalingPoint> strong_scaling(
    const NodeSpec& node, const Fabric& fabric,
    const TrainingWorkload& workload, Index global_batch,
    const std::vector<Index>& node_counts, Precision prec) {
  CANDLE_CHECK(global_batch >= 1, "empty global batch");
  std::vector<ScalingPoint> out;
  double base_step = 0.0;
  for (Index n : node_counts) {
    CANDLE_CHECK(n >= 1, "invalid node count");
    ParallelPlan plan;
    plan.data_replicas = n;
    plan.batch_per_replica = std::max<Index>(1, global_batch / n);
    plan.precision = prec;
    const StepEstimate est = estimate_step(node, fabric, workload, plan);
    if (out.empty()) base_step = est.step_s;
    out.push_back(make_point(est, n, base_step,
                             static_cast<double>(node_counts.front())));
  }
  return out;
}

std::vector<ScalingPoint> weak_scaling(const NodeSpec& node,
                                       const Fabric& fabric,
                                       const TrainingWorkload& workload,
                                       Index batch_per_replica,
                                       const std::vector<Index>& node_counts,
                                       Precision prec) {
  std::vector<ScalingPoint> out;
  double base_step = 0.0;
  for (Index n : node_counts) {
    CANDLE_CHECK(n >= 1, "invalid node count");
    ParallelPlan plan;
    plan.data_replicas = n;
    plan.batch_per_replica = batch_per_replica;
    plan.precision = prec;
    const StepEstimate est = estimate_step(node, fabric, workload, plan);
    if (out.empty()) base_step = est.step_s;
    // Weak-scaling speedup counts the growing work: speedup = n * t1/tn.
    ScalingPoint p;
    p.nodes = n;
    p.step_s = est.step_s;
    p.speedup = static_cast<double>(n) * base_step / est.step_s *
                static_cast<double>(node_counts.front());
    p.efficiency = base_step / est.step_s;
    p.comm_fraction = (est.dp_comm_s + est.mp_comm_s) / est.step_s;
    p.samples_per_s = est.samples_per_s;
    out.push_back(p);
  }
  return out;
}

namespace {

AnchoredScaling anchor_sweep(std::vector<ScalingPoint> points,
                             double measured_anchor_step_s) {
  CANDLE_CHECK(!points.empty(), "empty scaling sweep");
  CANDLE_CHECK(measured_anchor_step_s > 0.0,
               "anchor step time must be positive");
  AnchoredScaling out;
  out.anchor_ratio = measured_anchor_step_s / points.front().step_s;
  // Speedup/efficiency/comm_fraction are step-time quotients, so the
  // constant ratio cancels: only absolute step times and throughputs move.
  for (ScalingPoint& p : points) {
    p.step_s *= out.anchor_ratio;
    p.samples_per_s /= out.anchor_ratio;
  }
  out.points = std::move(points);
  return out;
}

}  // namespace

AnchoredScaling anchored_strong_scaling(
    const NodeSpec& node, const Fabric& fabric,
    const TrainingWorkload& workload, Index global_batch,
    const std::vector<Index>& node_counts, double measured_anchor_step_s,
    Precision prec) {
  return anchor_sweep(
      strong_scaling(node, fabric, workload, global_batch, node_counts, prec),
      measured_anchor_step_s);
}

AnchoredScaling anchored_weak_scaling(
    const NodeSpec& node, const Fabric& fabric,
    const TrainingWorkload& workload, Index batch_per_replica,
    const std::vector<Index>& node_counts, double measured_anchor_step_s,
    Precision prec) {
  return anchor_sweep(weak_scaling(node, fabric, workload, batch_per_replica,
                                   node_counts, prec),
                      measured_anchor_step_s);
}

ParallelPlan best_hybrid_plan(const NodeSpec& node, const Fabric& fabric,
                              const TrainingWorkload& workload, Index nodes,
                              Index global_batch, Precision prec) {
  CANDLE_CHECK(nodes >= 1, "invalid node count");
  ParallelPlan best;
  double best_rate = -1.0;
  for (Index shards = 1; shards <= nodes; shards *= 2) {
    if (nodes % shards != 0) continue;
    const Index replicas = nodes / shards;
    if (replicas > global_batch) continue;  // cannot split the batch further
    ParallelPlan plan;
    plan.data_replicas = replicas;
    plan.model_shards = shards;
    plan.batch_per_replica = std::max<Index>(1, global_batch / replicas);
    plan.precision = prec;
    plan.allreduce = best_allreduce_algo(
        fabric, replicas, workload.parameters / static_cast<double>(shards) *
                              plan.gradient_wire_bytes);
    const StepEstimate est = estimate_step(node, fabric, workload, plan);
    if (est.samples_per_s > best_rate) {
      best_rate = est.samples_per_s;
      best = plan;
    }
  }
  CANDLE_CHECK(best_rate > 0.0, "no feasible hybrid plan");
  return best;
}

double estimate_step_with_stragglers(const NodeSpec& node, const Fabric& fabric,
                                     const TrainingWorkload& workload,
                                     const ParallelPlan& plan,
                                     const StragglerModel& straggler,
                                     StragglerMitigation mode,
                                     Index backup_workers,
                                     Index staleness_bound) {
  const StepEstimate est = estimate_step(node, fabric, workload, plan);
  return expected_straggler_step_s(straggler, mode, est.step_s,
                                   plan.data_replicas, backup_workers,
                                   staleness_bound);
}

namespace {

// Full-max_batch forward service time shared by both serving estimators:
// the measured engine calibration when provided, else the forward-only
// roofline (1x the forward flops, weights read once, activations
// written+read once).
double serving_batch_service_s(const NodeSpec& node,
                               const TrainingWorkload& workload,
                               const ServingPlan& plan) {
  if (plan.measured_batch_service_s > 0.0) {
    return plan.measured_batch_service_s;
  }
  CANDLE_CHECK(workload.flops_per_sample > 0.0, "workload not populated");
  const double b = static_cast<double>(plan.max_batch);
  const double flops = workload.flops_per_sample * b;
  const double eff = gemm_efficiency(plan.max_batch);
  const double peak = node.peak_gflops(plan.precision) * 1e9;
  const double compute_s = flops / (peak * std::max(1e-6, eff));
  const double mem_bytes = workload.parameters * 4.0 +
                           workload.activation_bytes_per_sample * b * 2.0 +
                           workload.bytes_per_sample * b;
  const double memory_s = mem_bytes / (node.nearest().bandwidth_gbs * 1e9);
  return std::max(compute_s, memory_s);
}

}  // namespace

ServingEstimate estimate_serving(const NodeSpec& node,
                                 const TrainingWorkload& workload,
                                 const ServingPlan& plan, double offered_rps) {
  CANDLE_CHECK(plan.workers >= 1 && plan.max_batch >= 1,
               "invalid serving plan");
  CANDLE_CHECK(plan.batch_timeout_s >= 0.0 && plan.queue_capacity >= 1,
               "invalid serving plan");
  CANDLE_CHECK(offered_rps >= 0.0, "negative offered load");

  ServingEstimate e;
  const double b = static_cast<double>(plan.max_batch);
  e.batch_service_s = serving_batch_service_s(node, workload, plan);

  e.capacity_rps = static_cast<double>(plan.workers) * b / e.batch_service_s;
  e.utilization = offered_rps > 0.0 ? offered_rps / e.capacity_rps : 0.0;

  // --- batch coalescing wait: an average admitted request sits out half
  // the time the window takes to fill, capped by the batcher's timeout (low
  // load closes batches on the clock, not the count).  Batches fill at the
  // *admitted* rate — above capacity the surplus is shed on arrival and
  // never joins a batch.
  const double fill_rps = std::min(offered_rps, e.capacity_rps);
  e.batch_fill_wait_s =
      fill_rps > 0.0
          ? std::min(plan.batch_timeout_s, (b - 1.0) / (2.0 * fill_rps))
          : 0.0;

  // --- congestion: M/D/c-style mean wait rho/(1-rho) * service/(2*workers),
  // saturating at a full bounded queue's worth of sojourn once rho -> 1
  // (beyond that the admission controller sheds instead of queueing).
  const double full_queue_wait_s =
      std::ceil(static_cast<double>(plan.queue_capacity) / b) *
      e.batch_service_s / static_cast<double>(plan.workers);
  if (e.utilization < 1.0) {
    const double rho = e.utilization;
    const double mdc_wait = rho / (1.0 - rho) * e.batch_service_s /
                            (2.0 * static_cast<double>(plan.workers));
    e.queue_wait_s = std::min(mdc_wait, full_queue_wait_s);
  } else {
    e.queue_wait_s = full_queue_wait_s;
  }
  e.mean_latency_s = e.batch_fill_wait_s + e.queue_wait_s + e.batch_service_s;

  e.throughput_rps = std::min(offered_rps, e.capacity_rps);
  e.shed_fraction =
      offered_rps > 0.0
          ? std::max(0.0, 1.0 - e.capacity_rps / offered_rps)
          : 0.0;
  return e;
}

ContinuousServingEstimate estimate_serving_continuous(
    const NodeSpec& node, const TrainingWorkload& workload,
    const ServingPlan& plan, double offered_rps) {
  CANDLE_CHECK(plan.workers >= 1 && plan.max_batch >= 1,
               "invalid serving plan");
  CANDLE_CHECK(plan.queue_capacity >= 1, "invalid serving plan");
  CANDLE_CHECK(offered_rps >= 0.0, "negative offered load");

  ContinuousServingEstimate e;
  const double b = static_cast<double>(plan.max_batch);
  e.batch_service_s = serving_batch_service_s(node, workload, plan);
  e.row_service_s = e.batch_service_s / b;
  e.capacity_rps = static_cast<double>(plan.workers) * b / e.batch_service_s;
  e.utilization = offered_rps > 0.0 ? offered_rps / e.capacity_rps : 0.0;

  // --- slot occupancy: the scheduler admits whatever is queued into free
  // slots at every iteration, so mean occupancy tracks utilization (rho of
  // the capacity slots busy) — never below the one row being served, never
  // above the slot matrix.
  const double rho = std::min(1.0, e.utilization);
  e.mean_batch_rows = std::clamp(rho * b, 1.0, b);
  e.iteration_s = e.mean_batch_rows * e.row_service_s;

  // --- admit wait: there is NO fill window (the defining cut vs the
  // coalescing estimator — batch_timeout_s never enters this model).  An
  // arrival finding every worker mid-iteration waits on average half an
  // iteration for the next admit point; with probability ~(1 - rho) some
  // worker is idle and admits immediately.
  e.admit_wait_s = rho * e.iteration_s / 2.0;

  // --- congestion beyond the admit point: the same M/D/c shape as the
  // coalescing estimator at iteration granularity, saturating at the
  // bounded queue's sojourn — queued rows drain one row at a time across
  // the pool, not a batch at a time.
  const double full_queue_wait_s = static_cast<double>(plan.queue_capacity) *
                                   e.row_service_s /
                                   static_cast<double>(plan.workers);
  if (e.utilization < 1.0) {
    const double mdc_wait = e.utilization / (1.0 - e.utilization) *
                            e.iteration_s /
                            (2.0 * static_cast<double>(plan.workers));
    e.queue_wait_s = std::min(mdc_wait, full_queue_wait_s);
  } else {
    e.queue_wait_s = full_queue_wait_s;
  }
  e.mean_latency_s = e.admit_wait_s + e.queue_wait_s + e.iteration_s;

  e.throughput_rps = std::min(offered_rps, e.capacity_rps);
  e.shed_fraction =
      offered_rps > 0.0
          ? std::max(0.0, 1.0 - e.capacity_rps / offered_rps)
          : 0.0;
  return e;
}

DegradedServingEstimate estimate_degraded_serving(
    const NodeSpec& node, const TrainingWorkload& workload,
    const ServingPlan& plan, double offered_rps, ServingFaultModel faults,
    Index failed_workers) {
  CANDLE_CHECK(failed_workers >= 0 && failed_workers < plan.workers,
               "failed workers must leave a non-empty pool");
  // Healthy service time first (measured or roofline), so the fault model
  // prices hangs/hedges relative to the same batch the queue model uses.
  const ServingEstimate healthy =
      estimate_serving(node, workload, plan, offered_rps);
  faults.workers = plan.workers;
  faults.batch_service_s = healthy.batch_service_s;

  DegradedServingEstimate d;
  d.availability = serving_availability(faults);
  d.efficiency = serving_efficiency(faults);
  const double live =
      static_cast<double>(plan.workers - failed_workers) /
      static_cast<double>(plan.workers);
  d.capacity_ratio = live * d.availability * d.efficiency;

  // Re-run the queueing estimate with the degradation folded into an
  // effective (slower) batch service over the shrunken pool: capacity and
  // congestion then degrade together, the way the real engine's admission
  // controller sees it.
  ServingPlan degraded = plan;
  degraded.workers = plan.workers - failed_workers;
  degraded.measured_batch_service_s =
      healthy.batch_service_s / (d.availability * d.efficiency);
  d.base = estimate_serving(node, workload, degraded, offered_rps);
  return d;
}

}  // namespace candle::hpcsim

// Interconnect model: topologies + alpha-beta collective cost models.
//
// Claim C6 ("a high-bandwidth communication fabric between perhaps modest
// scale groups of processors to support network model parallelism") and the
// communication half of claim C3 (poor strong scaling) are evaluated on
// this model.  Collective costs are the standard closed forms from the
// Thakur/Rabenseifner literature; they are unit-tested against those forms
// and against an executable shared-memory ring all-reduce (src/parallel).
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "runtime/error.hpp"

namespace candle::hpcsim {

using Index = std::int64_t;

enum class Topology { FatTree, Torus3D, Dragonfly };

std::string topology_name(Topology t);

/// Interconnect description.  alpha/beta terms:
///   * `link_latency_us` per hop, `software_overhead_us` per message;
///   * `link_bandwidth_gbs` per link per direction.
struct Fabric {
  Topology topology = Topology::FatTree;
  double link_bandwidth_gbs = 12.5;  // ~100 Gb/s EDR-class
  double link_latency_us = 0.5;
  double software_overhead_us = 1.0;
  Index radix = 16;                  // switch radix (fat-tree) / group size
  double pj_per_byte = 60.0;         // network data-motion energy

  /// Average switch hops between two random endpoints among `p` ranks.
  double average_hops(Index p) const;

  /// Latency (seconds) of one message over d hops.
  double message_latency_s(double hops) const {
    return software_overhead_us * 1e-6 + hops * link_latency_us * 1e-6;
  }

  /// Seconds per byte on one link.
  double seconds_per_byte() const { return 1.0 / (link_bandwidth_gbs * 1e9); }

  /// Point-to-point time for `bytes` over the average distance among p ranks.
  double p2p_time_s(Index p, double bytes) const {
    return message_latency_s(average_hops(p)) + bytes * seconds_per_byte();
  }

  /// Energy of moving `bytes` across the fabric once.
  double transfer_energy_j(double bytes) const {
    return bytes * pj_per_byte * 1e-12;
  }
};

/// Collective algorithms modeled for gradient reduction.
enum class AllReduceAlgo { Ring, BinomialTree, HalvingDoubling };

std::string allreduce_algo_name(AllReduceAlgo a);

/// Time for an all-reduce of `bytes` across `p` ranks.
///   Ring:            2(p-1) neighbour steps, bandwidth-optimal:
///                    2(p-1)*alpha_nbr + 2 (p-1)/p * n * beta
///   BinomialTree:    reduce + broadcast, latency-optimal for small n:
///                    2 ceil(log2 p) * (alpha_avg + n*beta)
///   HalvingDoubling: reduce-scatter + all-gather:
///                    2 log2 p * alpha_avg + 2 (p-1)/p * n * beta
double allreduce_time_s(const Fabric& fabric, AllReduceAlgo algo, Index p,
                        double bytes);

/// Time for an all-gather of `bytes` per rank across `p` ranks (ring).
double allgather_time_s(const Fabric& fabric, Index p, double bytes_per_rank);

/// Time for a broadcast of `bytes` from one rank to p-1 others (binomial).
double broadcast_time_s(const Fabric& fabric, Index p, double bytes);

/// Time for a reduce-scatter of `bytes` across `p` ranks (ring).
double reduce_scatter_time_s(const Fabric& fabric, Index p, double bytes);

/// Total bytes a rank injects during an all-reduce (for energy accounting).
double allreduce_bytes_on_wire(AllReduceAlgo algo, Index p, double bytes);

/// Pick the cheaper of the modeled algorithms for a message size/scale.
AllReduceAlgo best_allreduce_algo(const Fabric& fabric, Index p, double bytes);

// ---- presets -------------------------------------------------------------------

/// Full-bisection EDR fat-tree (Summit-like).
Fabric fat_tree_fabric();

/// 3-D torus (Titan/BlueGene-like): cheap links, more hops.
Fabric torus_fabric();

/// Dragonfly (Aurora/Slingshot-like): low diameter, high link rate.
Fabric dragonfly_fabric();

std::vector<Fabric> all_fabric_presets();

}  // namespace candle::hpcsim

// Population-based training (Jaderberg et al. 2017 — contemporaneous with
// the keynote): a population of trainings runs in parallel; periodically
// the stragglers EXPLOIT (copy weights + hyperparameters from a top
// performer) and EXPLORE (perturb the copied hyperparameters).  PBT fuses
// the paper's data parallelism and search parallelism into one schedule —
// the search happens *during* training instead of between trainings.
//
// This implementation is executable: population members are real models
// trained on real data; only the fleet wall-clock belongs to hpcsim.
#pragma once

#include <functional>
#include <memory>
#include <vector>

#include "nn/dataset.hpp"
#include "nn/model.hpp"
#include "nn/trainer.hpp"

namespace candle::hpo {

struct PbtOptions {
  Index population = 8;
  Index rounds = 6;             // exploit/explore cycles
  Index epochs_per_round = 2;
  Index batch_size = 32;
  double exploit_fraction = 0.25;  // bottom fraction copies a top member
  float perturb_factor = 1.3f;     // lr multiplied/divided on explore
  float lr_min = 1e-5f;
  float lr_max = 1.0f;
  std::uint64_t seed = 0;
};

struct PbtMember {
  Index id = 0;
  float lr = 1e-3f;
  float val_loss = 0.0f;
  Index exploits = 0;  // times this slot copied another member
};

struct PbtResult {
  std::vector<PbtMember> final_population;  // sorted best-first
  std::vector<float> best_loss_per_round;
  Index total_exploits = 0;

  const PbtMember& best() const { return final_population.front(); }
};

/// Run PBT over learning rates for models produced by `factory` (each
/// member gets its own replica; members must be architecture-identical).
/// Returns the population trajectory; the best member's weights land in
/// `out_model` if provided.
PbtResult population_based_training(
    const std::function<Model()>& factory, const Dataset& train,
    const Dataset& val, const Loss& loss, const PbtOptions& options,
    Model* out_model = nullptr);

}  // namespace candle::hpo

#include "hpo/space.hpp"

#include <algorithm>
#include <cmath>
#include <sstream>

namespace candle::hpo {

SearchSpace& SearchSpace::add_categorical(std::string name,
                                          std::vector<std::string> values) {
  CANDLE_CHECK(!values.empty(), "categorical parameter needs values");
  Param p;
  p.name = std::move(name);
  p.kind = ParamKind::Categorical;
  p.categories = std::move(values);
  params_.push_back(std::move(p));
  return *this;
}

SearchSpace& SearchSpace::add_int(std::string name, Index lo, Index hi) {
  CANDLE_CHECK(lo <= hi, "empty integer range");
  Param p;
  p.name = std::move(name);
  p.kind = ParamKind::Int;
  p.lo = static_cast<double>(lo);
  p.hi = static_cast<double>(hi);
  params_.push_back(std::move(p));
  return *this;
}

SearchSpace& SearchSpace::add_float(std::string name, double lo, double hi) {
  CANDLE_CHECK(lo < hi, "empty float range");
  Param p;
  p.name = std::move(name);
  p.kind = ParamKind::Float;
  p.lo = lo;
  p.hi = hi;
  params_.push_back(std::move(p));
  return *this;
}

SearchSpace& SearchSpace::add_log_float(std::string name, double lo,
                                        double hi) {
  CANDLE_CHECK(0.0 < lo && lo < hi, "log range requires 0 < lo < hi");
  Param p;
  p.name = std::move(name);
  p.kind = ParamKind::LogFloat;
  p.lo = lo;
  p.hi = hi;
  params_.push_back(std::move(p));
  return *this;
}

const Param& SearchSpace::param(Index i) const {
  CANDLE_CHECK(i >= 0 && i < dims(), "parameter index out of range");
  return params_[static_cast<std::size_t>(i)];
}

Index SearchSpace::index_of(const std::string& name) const {
  for (Index i = 0; i < dims(); ++i) {
    if (params_[static_cast<std::size_t>(i)].name == name) return i;
  }
  throw Error("no parameter named '" + name + "'");
}

const Param& SearchSpace::named(const std::string& name) const {
  return param(index_of(name));
}

UnitConfig SearchSpace::sample(Pcg32& rng) const {
  UnitConfig c(static_cast<std::size_t>(dims()));
  for (double& v : c) v = rng.next_double();
  return c;
}

void SearchSpace::clamp(UnitConfig& config) const {
  CANDLE_CHECK(static_cast<Index>(config.size()) == dims(),
               "config dimensionality mismatch");
  for (double& v : config) {
    v = std::clamp(v, 0.0, std::nextafter(1.0, 0.0));
  }
}

double SearchSpace::coordinate(const UnitConfig& config,
                               const Param& p) const {
  CANDLE_CHECK(static_cast<Index>(config.size()) == dims(),
               "config dimensionality mismatch");
  const auto i = static_cast<std::size_t>(&p - params_.data());
  const double u = config[i];
  CANDLE_CHECK(u >= 0.0 && u < 1.0,
               "coordinate for '" + p.name + "' outside [0,1)");
  return u;
}

double SearchSpace::decode_float(const UnitConfig& config,
                                 const std::string& name) const {
  const Param& p = named(name);
  const double u = coordinate(config, p);
  switch (p.kind) {
    case ParamKind::Float:
      return p.lo + (p.hi - p.lo) * u;
    case ParamKind::LogFloat:
      return p.lo * std::pow(p.hi / p.lo, u);
    case ParamKind::Int:
      return static_cast<double>(decode_int(config, name));
    case ParamKind::Categorical:
      throw Error("'" + name + "' is categorical; use decode_categorical");
  }
  CANDLE_FAIL("unknown ParamKind");
}

Index SearchSpace::decode_int(const UnitConfig& config,
                              const std::string& name) const {
  const Param& p = named(name);
  CANDLE_CHECK(p.kind == ParamKind::Int,
               "'" + name + "' is not an integer parameter");
  const double u = coordinate(config, p);
  const double span = p.hi - p.lo + 1.0;
  return static_cast<Index>(p.lo + std::floor(u * span));
}

const std::string& SearchSpace::decode_categorical(
    const UnitConfig& config, const std::string& name) const {
  const Param& p = named(name);
  CANDLE_CHECK(p.kind == ParamKind::Categorical,
               "'" + name + "' is not categorical");
  const double u = coordinate(config, p);
  const auto bin = static_cast<std::size_t>(
      u * static_cast<double>(p.categories.size()));
  return p.categories[std::min(bin, p.categories.size() - 1)];
}

std::string SearchSpace::describe(const UnitConfig& config) const {
  std::ostringstream os;
  for (Index i = 0; i < dims(); ++i) {
    const Param& p = params_[static_cast<std::size_t>(i)];
    if (i > 0) os << ", ";
    os << p.name << '=';
    switch (p.kind) {
      case ParamKind::Categorical:
        os << decode_categorical(config, p.name);
        break;
      case ParamKind::Int:
        os << decode_int(config, p.name);
        break;
      case ParamKind::Float:
      case ParamKind::LogFloat:
        os << decode_float(config, p.name);
        break;
    }
  }
  return os.str();
}

double SearchSpace::cardinality(Index continuous_levels) const {
  double card = 1.0;
  for (const Param& p : params_) {
    switch (p.kind) {
      case ParamKind::Categorical:
        card *= static_cast<double>(p.categories.size());
        break;
      case ParamKind::Int:
        card *= p.hi - p.lo + 1.0;
        break;
      case ParamKind::Float:
      case ParamKind::LogFloat:
        card *= static_cast<double>(continuous_levels);
        break;
    }
  }
  return card;
}

}  // namespace candle::hpo

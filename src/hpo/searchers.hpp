// Hyperparameter search strategies (claim C8: "Naive searches are
// outperformed by various intelligent searching strategies, including new
// approaches that use generative neural networks to manage the search
// space").
//
// All searchers share one ask/tell interface over the unit hypercube; the
// objective is minimized.  The roster covers the 2017 landscape:
//   * GridSearcher / RandomSearcher / LatinHypercubeSearcher — the "naive"
//     baselines;
//   * EvolutionSearcher — regularized evolution (tournament + 1-coordinate
//     mutation, oldest-out population);
//   * SurrogateSearcher — Bayesian-style: an RBF (kernel-regression)
//     surrogate with a distance-based uncertainty term scores a candidate
//     pool by a lower-confidence-bound acquisition;
//   * GenerativeSearcher — the paper's generative-NN idea: a small MLP
//     generator (latent z -> config) trained IMLE-style on the elite set
//     each round proposes new configurations near the elite manifold;
//   * SuccessiveHalving (ASHA) — multi-fidelity wrapper that promotes
//     configurations through epoch rungs, implemented over any base
//     searcher.
#pragma once

#include <deque>
#include <memory>
#include <string>
#include <vector>

#include "hpo/space.hpp"
#include "nn/model.hpp"

namespace candle::hpo {

/// One evaluated configuration.
struct Observation {
  UnitConfig config;
  double objective = 0.0;  // lower is better
};

/// Ask/tell searcher interface (single fidelity).
class Searcher {
 public:
  virtual ~Searcher() = default;
  virtual std::string name() const = 0;

  /// Propose the next configuration to evaluate.
  virtual UnitConfig suggest() = 0;

  /// Report the objective of a previously suggested configuration.
  virtual void observe(const UnitConfig& config, double objective);

  /// Best observation so far.
  const Observation& best() const;
  Index num_observed() const { return static_cast<Index>(history_.size()); }
  const std::vector<Observation>& history() const { return history_; }

 protected:
  explicit Searcher(const SearchSpace& space) : space_(&space) {}
  const SearchSpace& space() const { return *space_; }

  std::vector<Observation> history_;

 private:
  const SearchSpace* space_;
  Index best_index_ = -1;
};

/// Full-factorial lattice with per-dimension resolution chosen to cover at
/// least `budget` points; cycles if asked for more.
class GridSearcher : public Searcher {
 public:
  GridSearcher(const SearchSpace& space, Index budget);
  std::string name() const override { return "grid"; }
  UnitConfig suggest() override;

  Index points_per_dim() const { return resolution_; }

 private:
  Index resolution_;
  Index cursor_ = 0;
};

/// I.i.d. uniform sampling.
class RandomSearcher : public Searcher {
 public:
  RandomSearcher(const SearchSpace& space, std::uint64_t seed);
  std::string name() const override { return "random"; }
  UnitConfig suggest() override;

 private:
  Pcg32 rng_;
};

/// Latin hypercube: a fresh stratified block of `block` samples at a time.
class LatinHypercubeSearcher : public Searcher {
 public:
  LatinHypercubeSearcher(const SearchSpace& space, Index block,
                         std::uint64_t seed);
  std::string name() const override { return "lhs"; }
  UnitConfig suggest() override;

 private:
  void refill();

  Index block_;
  Pcg32 rng_;
  std::deque<UnitConfig> pending_;
};

/// Regularized evolution (Real et al. 2019, already folklore in 2017 HPO):
/// keep a sliding population, mutate a tournament winner, retire oldest.
class EvolutionSearcher : public Searcher {
 public:
  EvolutionSearcher(const SearchSpace& space, Index population,
                    std::uint64_t seed, double mutation_sigma = 0.15);
  std::string name() const override { return "evolution"; }
  UnitConfig suggest() override;
  void observe(const UnitConfig& config, double objective) override;

 private:
  Index population_size_;
  double sigma_;
  Pcg32 rng_;
  std::deque<Observation> population_;
};

/// RBF-surrogate search with LCB acquisition over a random candidate pool.
class SurrogateSearcher : public Searcher {
 public:
  SurrogateSearcher(const SearchSpace& space, std::uint64_t seed,
                    Index candidate_pool = 256, double kappa = 1.0,
                    Index warmup = 8);
  std::string name() const override { return "surrogate"; }
  UnitConfig suggest() override;

 private:
  /// Kernel-regression mean and a nearest-distance uncertainty proxy.
  void predict(const UnitConfig& x, double* mean, double* sigma) const;

  Pcg32 rng_;
  Index pool_;
  double kappa_;
  Index warmup_;
  double bandwidth_ = 0.2;
};

/// Generative-NN-managed search: an MLP generator G: z -> config is
/// retrained (IMLE-style nearest-sample matching) on the elite fraction of
/// observations every `retrain_every` suggestions; proposals are G(z) plus
/// exploration noise that decays as evidence accumulates.
class GenerativeSearcher : public Searcher {
 public:
  GenerativeSearcher(const SearchSpace& space, std::uint64_t seed,
                     Index latent_dim = 4, double elite_fraction = 0.25,
                     Index warmup = 12, Index retrain_every = 8);
  std::string name() const override { return "generative"; }
  UnitConfig suggest() override;

 private:
  void retrain();
  UnitConfig generate();

  Pcg32 rng_;
  Index latent_dim_;
  double elite_fraction_;
  Index warmup_;
  Index retrain_every_;
  Index since_retrain_ = 0;
  bool trained_ = false;
  Model generator_;  // latent -> unit config
};

/// Asynchronous successive halving over epoch rungs.  Drives any base
/// searcher: configurations start at `min_budget` epochs; the top
/// 1/reduction fraction of each rung is promoted to the next (budget x
/// reduction) until `max_budget`.
class SuccessiveHalving {
 public:
  SuccessiveHalving(std::unique_ptr<Searcher> base, Index min_budget,
                    Index max_budget, Index reduction = 3);

  std::string name() const { return "asha(" + base_->name() + ")"; }

  struct Task {
    UnitConfig config;
    Index budget = 0;  // epochs to train for (cumulative)
    Index rung = 0;
  };

  /// Next (config, budget) to evaluate.
  Task suggest();

  /// Report objective for a task (at its budget).
  void observe(const Task& task, double objective);

  /// Best full-budget observation (falls back to best at any budget).
  Observation best() const;
  Index num_observed() const { return observed_; }
  Index num_rungs() const { return static_cast<Index>(rungs_.size()); }

 private:
  struct RungEntry {
    UnitConfig config;
    double objective;
    bool promoted = false;  // this exact entry has been sent up a rung
  };

  std::unique_ptr<Searcher> base_;
  Index min_budget_, max_budget_, reduction_;
  std::vector<std::vector<RungEntry>> rungs_;
  Index observed_ = 0;
  Observation best_full_;
  bool has_full_ = false;
  Observation best_any_;
  bool has_any_ = false;
};

/// Hyperband (Li et al. 2017 — contemporaneous with the paper): a portfolio
/// of successive-halving brackets with different exploration/exploitation
/// trade-offs (aggressive brackets start many configs at tiny budgets;
/// conservative ones run fewer configs at full budget).  suggest() cycles
/// the brackets round-robin.
class Hyperband {
 public:
  Hyperband(const SearchSpace& space, std::uint64_t seed, Index max_budget,
            Index reduction = 3);

  std::string name() const { return "hyperband"; }
  Index num_brackets() const { return static_cast<Index>(brackets_.size()); }

  struct Task {
    SuccessiveHalving::Task inner;
    Index bracket = 0;
    Index budget() const { return inner.budget; }
    const UnitConfig& config() const { return inner.config; }
  };

  Task suggest();
  void observe(const Task& task, double objective);
  Observation best() const;
  Index num_observed() const;

 private:
  std::vector<std::unique_ptr<SuccessiveHalving>> brackets_;
  Index cursor_ = 0;
};

/// Factory for the single-fidelity strategies benchmarked in E7.
std::unique_ptr<Searcher> make_searcher(const std::string& name,
                                        const SearchSpace& space,
                                        std::uint64_t seed, Index budget);

}  // namespace candle::hpo

// Objectives for hyperparameter search: cheap synthetic landscapes for
// strategy benchmarking, and a real training objective that maps a
// configuration to a trained candle model's validation loss.
#pragma once

#include <functional>
#include <memory>

#include "hpo/space.hpp"
#include "nn/dataset.hpp"
#include "nn/trainer.hpp"

namespace candle::hpo {

/// A single-fidelity objective (lower is better).
using Objective = std::function<double(const UnitConfig&)>;

// ---- synthetic landscapes ---------------------------------------------------

/// Separable quadratic bowl with optimum at a seeded random point.
/// Smooth, unimodal — every intelligent strategy should crush random here.
Objective make_sphere_objective(const SearchSpace& space, std::uint64_t seed);

/// Rastrigin-style multimodal surface on the unit cube: a global bowl with
/// a lattice of local minima.  Stress-tests exploitation vs exploration.
Objective make_rastrigin_objective(const SearchSpace& space,
                                   std::uint64_t seed);

/// Branin-like 2-effective-dimension objective embedded in d dims (the
/// remaining coordinates are inert), mimicking HPO's low effective
/// dimensionality.
Objective make_embedded_valley_objective(const SearchSpace& space,
                                         std::uint64_t seed);

// ---- real training objective ---------------------------------------------------

/// The CANDLE-style model search space used by E7 and the examples:
///   lr          log-uniform [1e-4, 1e-1]
///   units1      int [8, 128]
///   units2      int [4, 64]
///   dropout     float [0, 0.5]
///   batch       int [16, 128]
///   optimizer   {sgd, momentum, rmsprop, adam}
/// Cardinality comfortably exceeds the paper's "tens of thousands of model
/// configurations".
SearchSpace make_mlp_space();

struct TrainObjectiveOptions {
  Index epochs = 8;         // full-budget epochs
  Index max_train = 512;    // subsample caps to keep trials fast
  Index max_val = 256;
  std::uint64_t seed = 0;
  bool classification = true;  // softmax-xent vs mse
  Index classes = 2;
};

/// Build an objective that trains a 2-hidden-layer MLP described by a
/// config from make_mlp_space() on (train, val) and returns the best
/// validation loss.  `epochs_override` (>0) supports multi-fidelity (ASHA).
class TrainObjective {
 public:
  TrainObjective(const SearchSpace& space, Dataset train, Dataset val,
                 TrainObjectiveOptions options);

  /// Evaluate at the full budget.
  double operator()(const UnitConfig& config) const {
    return evaluate(config, options_.epochs);
  }

  /// Evaluate at a reduced epoch budget (for successive halving).
  double evaluate(const UnitConfig& config, Index epochs) const;

  /// Trials executed so far (for budget accounting).
  Index evaluations() const { return evaluations_; }
  /// Total training epochs consumed (the HPO cost unit).
  Index epochs_consumed() const { return epochs_consumed_; }

 private:
  const SearchSpace* space_;
  Dataset train_, val_;
  TrainObjectiveOptions options_;
  mutable Index evaluations_ = 0;
  mutable Index epochs_consumed_ = 0;
};

}  // namespace candle::hpo

#include "hpo/searchers.hpp"

#include <algorithm>
#include <cmath>
#include <limits>

namespace candle::hpo {

// ---- Searcher base -------------------------------------------------------------

void Searcher::observe(const UnitConfig& config, double objective) {
  CANDLE_CHECK(static_cast<Index>(config.size()) == space_->dims(),
               "observed config has wrong dimensionality");
  CANDLE_CHECK(std::isfinite(objective), "objective must be finite");
  history_.push_back({config, objective});
  if (best_index_ < 0 ||
      objective < history_[static_cast<std::size_t>(best_index_)].objective) {
    best_index_ = static_cast<Index>(history_.size()) - 1;
  }
}

const Observation& Searcher::best() const {
  CANDLE_CHECK(best_index_ >= 0, "no observations yet");
  return history_[static_cast<std::size_t>(best_index_)];
}

// ---- Grid ---------------------------------------------------------------------

GridSearcher::GridSearcher(const SearchSpace& space, Index budget)
    : Searcher(space) {
  CANDLE_CHECK(budget >= 1, "grid budget must be positive");
  const double d = static_cast<double>(space.dims());
  resolution_ = std::max<Index>(
      1, static_cast<Index>(std::ceil(std::pow(static_cast<double>(budget),
                                               1.0 / d))));
}

UnitConfig GridSearcher::suggest() {
  const Index d = space().dims();
  UnitConfig c(static_cast<std::size_t>(d));
  Index idx = cursor_++;
  for (Index i = 0; i < d; ++i) {
    const Index level = idx % resolution_;
    idx /= resolution_;
    // Cell centres so categorical bins are hit evenly.
    c[static_cast<std::size_t>(i)] =
        (static_cast<double>(level) + 0.5) / static_cast<double>(resolution_);
  }
  space().clamp(c);
  return c;
}

// ---- Random --------------------------------------------------------------------

RandomSearcher::RandomSearcher(const SearchSpace& space, std::uint64_t seed)
    : Searcher(space), rng_(seed, 0x4a2d) {}

UnitConfig RandomSearcher::suggest() { return space().sample(rng_); }

// ---- Latin hypercube -------------------------------------------------------------

LatinHypercubeSearcher::LatinHypercubeSearcher(const SearchSpace& space,
                                               Index block,
                                               std::uint64_t seed)
    : Searcher(space), block_(block), rng_(seed, 0x1b5) {
  CANDLE_CHECK(block >= 1, "LHS block must be positive");
}

void LatinHypercubeSearcher::refill() {
  const Index d = space().dims();
  // One random permutation of strata per dimension.
  std::vector<std::vector<Index>> perms(static_cast<std::size_t>(d));
  for (auto& perm : perms) {
    perm.resize(static_cast<std::size_t>(block_));
    for (Index i = 0; i < block_; ++i) perm[static_cast<std::size_t>(i)] = i;
    std::shuffle(perm.begin(), perm.end(), rng_);
  }
  for (Index s = 0; s < block_; ++s) {
    UnitConfig c(static_cast<std::size_t>(d));
    for (Index i = 0; i < d; ++i) {
      const double stratum = static_cast<double>(
          perms[static_cast<std::size_t>(i)][static_cast<std::size_t>(s)]);
      c[static_cast<std::size_t>(i)] =
          (stratum + rng_.next_double()) / static_cast<double>(block_);
    }
    space().clamp(c);
    pending_.push_back(std::move(c));
  }
}

UnitConfig LatinHypercubeSearcher::suggest() {
  if (pending_.empty()) refill();
  UnitConfig c = std::move(pending_.front());
  pending_.pop_front();
  return c;
}

// ---- Evolution -----------------------------------------------------------------

EvolutionSearcher::EvolutionSearcher(const SearchSpace& space,
                                     Index population, std::uint64_t seed,
                                     double mutation_sigma)
    : Searcher(space),
      population_size_(population),
      sigma_(mutation_sigma),
      rng_(seed, 0xe701) {
  CANDLE_CHECK(population >= 2, "evolution needs a population of >= 2");
}

UnitConfig EvolutionSearcher::suggest() {
  if (static_cast<Index>(population_.size()) < population_size_) {
    return space().sample(rng_);  // seed the population randomly
  }
  // Tournament of 2 among the population; mutate one coordinate of the
  // winner with Gaussian noise (wrap-free clamp keeps it in the cube).
  const auto pick = [&] {
    return population_[static_cast<std::size_t>(
        rng_.next_below(static_cast<std::uint32_t>(population_.size())))];
  };
  const Observation a = pick();
  const Observation b = pick();
  UnitConfig child = (a.objective <= b.objective ? a : b).config;
  const auto dim = static_cast<std::size_t>(
      rng_.next_below(static_cast<std::uint32_t>(space().dims())));
  child[dim] += sigma_ * rng_.normal();
  space().clamp(child);
  return child;
}

void EvolutionSearcher::observe(const UnitConfig& config, double objective) {
  Searcher::observe(config, objective);
  population_.push_back({config, objective});
  if (static_cast<Index>(population_.size()) > population_size_) {
    population_.pop_front();  // regularized evolution: oldest out
  }
}

// ---- Surrogate -----------------------------------------------------------------

SurrogateSearcher::SurrogateSearcher(const SearchSpace& space,
                                     std::uint64_t seed, Index candidate_pool,
                                     double kappa, Index warmup)
    : Searcher(space),
      rng_(seed, 0x5a6),
      pool_(candidate_pool),
      kappa_(kappa),
      warmup_(warmup) {
  CANDLE_CHECK(candidate_pool >= 1 && warmup >= 1, "invalid surrogate config");
}

void SurrogateSearcher::predict(const UnitConfig& x, double* mean,
                                double* sigma) const {
  // Nadaraya–Watson kernel regression over all observations + the distance
  // to the nearest observation as an uncertainty proxy.
  double wsum = 0.0, ysum = 0.0;
  double nearest = std::numeric_limits<double>::infinity();
  for (const Observation& o : history_) {
    double d2 = 0.0;
    for (std::size_t i = 0; i < x.size(); ++i) {
      const double d = x[i] - o.config[i];
      d2 += d * d;
    }
    nearest = std::min(nearest, d2);
    const double w = std::exp(-d2 / (2.0 * bandwidth_ * bandwidth_));
    wsum += w;
    ysum += w * o.objective;
  }
  if (wsum < 1e-12) {
    // Far from all evidence: fall back to the global mean, max uncertainty.
    double m = 0.0;
    for (const Observation& o : history_) m += o.objective;
    *mean = m / static_cast<double>(history_.size());
    *sigma = 1.0;
    return;
  }
  *mean = ysum / wsum;
  *sigma = std::sqrt(nearest);
}

UnitConfig SurrogateSearcher::suggest() {
  if (num_observed() < warmup_) return space().sample(rng_);
  // Objective scale for the LCB trade-off.
  double lo = std::numeric_limits<double>::infinity(), hi = -lo;
  for (const Observation& o : history_) {
    lo = std::min(lo, o.objective);
    hi = std::max(hi, o.objective);
  }
  const double scale = std::max(1e-12, hi - lo);

  UnitConfig best_c;
  double best_acq = std::numeric_limits<double>::infinity();
  for (Index i = 0; i < pool_; ++i) {
    UnitConfig c = space().sample(rng_);
    double mean = 0.0, sigma = 0.0;
    predict(c, &mean, &sigma);
    const double acq = (mean - lo) / scale - kappa_ * sigma;
    if (acq < best_acq) {
      best_acq = acq;
      best_c = std::move(c);
    }
  }
  return best_c;
}

// ---- Generative ----------------------------------------------------------------

GenerativeSearcher::GenerativeSearcher(const SearchSpace& space,
                                       std::uint64_t seed, Index latent_dim,
                                       double elite_fraction, Index warmup,
                                       Index retrain_every)
    : Searcher(space),
      rng_(seed, 0x6e4),
      latent_dim_(latent_dim),
      elite_fraction_(elite_fraction),
      warmup_(warmup),
      retrain_every_(retrain_every) {
  CANDLE_CHECK(latent_dim >= 1 && retrain_every >= 1 && warmup >= 2,
               "invalid generative searcher config");
  CANDLE_CHECK(elite_fraction > 0.0 && elite_fraction <= 1.0,
               "elite fraction must be in (0,1]");
  generator_.add(make_dense(16)).add(make_tanh());
  generator_.add(make_dense(space.dims())).add(make_sigmoid());
  generator_.build({latent_dim_}, seed ^ 0x93f1u);
}

void GenerativeSearcher::retrain() {
  // Elite set: best `elite_fraction` of all observations.
  std::vector<const Observation*> sorted;
  sorted.reserve(history_.size());
  for (const Observation& o : history_) sorted.push_back(&o);
  std::sort(sorted.begin(), sorted.end(),
            [](const Observation* a, const Observation* b) {
              return a->objective < b->objective;
            });
  const auto n_elite = std::max<std::size_t>(
      2, static_cast<std::size_t>(elite_fraction_ *
                                  static_cast<double>(sorted.size())));
  const Index d = space().dims();

  // IMLE round: draw a latent pool, match each elite to its nearest
  // generated sample, regress those latents onto the elites.
  const Index pool = static_cast<Index>(n_elite) * 4;
  Tensor z_pool = Tensor::randn({pool, latent_dim_}, rng_);
  const Tensor g_pool = generator_.predict(z_pool);

  Tensor z_train({static_cast<Index>(n_elite), latent_dim_});
  Tensor target({static_cast<Index>(n_elite), d});
  for (std::size_t e = 0; e < n_elite; ++e) {
    const UnitConfig& elite = sorted[e]->config;
    Index best_j = 0;
    double best_d2 = std::numeric_limits<double>::infinity();
    for (Index j = 0; j < pool; ++j) {
      double d2 = 0.0;
      for (Index k = 0; k < d; ++k) {
        const double diff =
            g_pool.at(j, k) - elite[static_cast<std::size_t>(k)];
        d2 += diff * diff;
      }
      if (d2 < best_d2) {
        best_d2 = d2;
        best_j = j;
      }
    }
    for (Index k = 0; k < latent_dim_; ++k) {
      z_train.at(static_cast<Index>(e), k) = z_pool.at(best_j, k);
    }
    for (Index k = 0; k < d; ++k) {
      target.at(static_cast<Index>(e), k) =
          static_cast<float>(elite[static_cast<std::size_t>(k)]);
    }
  }

  MeanSquaredError mse;
  Adam opt(0.02f);
  for (int step = 0; step < 120; ++step) {
    generator_.train_batch(z_train, target, mse, opt);
  }
  trained_ = true;
}

UnitConfig GenerativeSearcher::generate() {
  Tensor z = Tensor::randn({1, latent_dim_}, rng_);
  const Tensor g = generator_.predict(z);
  UnitConfig c(static_cast<std::size_t>(space().dims()));
  // Exploration noise decays with evidence.
  const double noise =
      0.25 / std::sqrt(1.0 + static_cast<double>(num_observed()) / 8.0);
  for (std::size_t i = 0; i < c.size(); ++i) {
    c[i] = static_cast<double>(g[static_cast<Index>(i)]) +
           noise * rng_.normal();
  }
  space().clamp(c);
  return c;
}

UnitConfig GenerativeSearcher::suggest() {
  if (num_observed() < warmup_) return space().sample(rng_);
  if (!trained_ || since_retrain_ >= retrain_every_) {
    retrain();
    since_retrain_ = 0;
  }
  ++since_retrain_;
  // Keep a random exploration floor (epsilon-greedy over the generator).
  if (rng_.next_float() < 0.2f) return space().sample(rng_);
  return generate();
}

// ---- Successive halving -----------------------------------------------------------

SuccessiveHalving::SuccessiveHalving(std::unique_ptr<Searcher> base,
                                     Index min_budget, Index max_budget,
                                     Index reduction)
    : base_(std::move(base)),
      min_budget_(min_budget),
      max_budget_(max_budget),
      reduction_(reduction) {
  CANDLE_CHECK(base_ != nullptr, "null base searcher");
  CANDLE_CHECK(min_budget >= 1 && max_budget >= min_budget && reduction >= 2,
               "invalid halving schedule");
  Index rungs = 1;
  for (Index b = min_budget; b < max_budget; b *= reduction) ++rungs;
  rungs_.resize(static_cast<std::size_t>(rungs));
}

SuccessiveHalving::Task SuccessiveHalving::suggest() {
  // ASHA promotion rule: promote from the deepest rung whose top
  // 1/reduction fraction contains a not-yet-promoted entry.  Promotion is
  // tracked per entry (not by count): entries arriving later can reshuffle
  // the top fraction, and only unpromoted members of it are eligible.
  for (Index r = static_cast<Index>(rungs_.size()) - 2; r >= 0; --r) {
    auto& rung = rungs_[static_cast<std::size_t>(r)];
    const auto promotable = static_cast<std::size_t>(
        static_cast<Index>(rung.size()) / reduction_);
    if (promotable == 0) continue;
    std::vector<std::size_t> order(rung.size());
    for (std::size_t i = 0; i < rung.size(); ++i) order[i] = i;
    std::sort(order.begin(), order.end(), [&](std::size_t a, std::size_t b) {
      return rung[a].objective < rung[b].objective;
    });
    for (std::size_t rank = 0; rank < promotable; ++rank) {
      RungEntry& entry = rung[order[rank]];
      if (entry.promoted) continue;
      entry.promoted = true;
      Task t;
      t.config = entry.config;
      t.rung = r + 1;
      t.budget = min_budget_;
      for (Index i = 0; i < t.rung; ++i) t.budget *= reduction_;
      t.budget = std::min(t.budget, max_budget_);
      return t;
    }
  }
  // Otherwise start a fresh configuration at the bottom rung.
  Task t;
  t.config = base_->suggest();
  t.rung = 0;
  t.budget = min_budget_;
  return t;
}

void SuccessiveHalving::observe(const Task& task, double objective) {
  CANDLE_CHECK(task.rung >= 0 &&
                   task.rung < static_cast<Index>(rungs_.size()),
               "task rung out of range");
  rungs_[static_cast<std::size_t>(task.rung)].push_back(
      {task.config, objective});
  ++observed_;
  base_->observe(task.config, objective);
  const bool full = task.budget >= max_budget_ ||
                    task.rung == static_cast<Index>(rungs_.size()) - 1;
  if (full && (!has_full_ || objective < best_full_.objective)) {
    best_full_ = {task.config, objective};
    has_full_ = true;
  }
  if (!has_any_ || objective < best_any_.objective) {
    best_any_ = {task.config, objective};
    has_any_ = true;
  }
}

Observation SuccessiveHalving::best() const {
  CANDLE_CHECK(has_any_, "no observations yet");
  return has_full_ ? best_full_ : best_any_;
}

// ---- Hyperband -----------------------------------------------------------------

Hyperband::Hyperband(const SearchSpace& space, std::uint64_t seed,
                     Index max_budget, Index reduction) {
  CANDLE_CHECK(max_budget >= 1 && reduction >= 2, "invalid hyperband config");
  // Bracket s uses min budget max/eta^s; s from the most aggressive
  // (several rungs) down to full-fidelity-only.
  Index min_budget = std::max<Index>(1, max_budget);
  std::vector<Index> mins;
  for (Index b = max_budget; b >= 1; b /= reduction) {
    mins.push_back(b);
    if (b == 1) break;
  }
  std::uint64_t salt = 0;
  for (auto it = mins.rbegin(); it != mins.rend(); ++it) {
    brackets_.push_back(std::make_unique<SuccessiveHalving>(
        std::make_unique<RandomSearcher>(space, seed ^ (0x9e37u + salt++)),
        *it, max_budget, reduction));
  }
  (void)min_budget;
  CANDLE_CHECK(!brackets_.empty(), "hyperband built no brackets");
}

Hyperband::Task Hyperband::suggest() {
  Task t;
  t.bracket = cursor_;
  t.inner = brackets_[static_cast<std::size_t>(cursor_)]->suggest();
  cursor_ = (cursor_ + 1) % static_cast<Index>(brackets_.size());
  return t;
}

void Hyperband::observe(const Task& task, double objective) {
  CANDLE_CHECK(task.bracket >= 0 &&
                   task.bracket < static_cast<Index>(brackets_.size()),
               "bracket index out of range");
  brackets_[static_cast<std::size_t>(task.bracket)]->observe(task.inner,
                                                             objective);
}

Observation Hyperband::best() const {
  bool found = false;
  Observation best_obs;
  for (const auto& bracket : brackets_) {
    if (bracket->num_observed() == 0) continue;
    const Observation o = bracket->best();
    if (!found || o.objective < best_obs.objective) {
      best_obs = o;
      found = true;
    }
  }
  CANDLE_CHECK(found, "no observations yet");
  return best_obs;
}

Index Hyperband::num_observed() const {
  Index n = 0;
  for (const auto& bracket : brackets_) n += bracket->num_observed();
  return n;
}

// ---- factory -------------------------------------------------------------------

std::unique_ptr<Searcher> make_searcher(const std::string& name,
                                        const SearchSpace& space,
                                        std::uint64_t seed, Index budget) {
  if (name == "grid") return std::make_unique<GridSearcher>(space, budget);
  if (name == "random") return std::make_unique<RandomSearcher>(space, seed);
  if (name == "lhs") {
    return std::make_unique<LatinHypercubeSearcher>(
        space, std::max<Index>(8, budget / 4), seed);
  }
  if (name == "evolution") {
    return std::make_unique<EvolutionSearcher>(
        space, std::max<Index>(8, budget / 8), seed);
  }
  if (name == "surrogate") return std::make_unique<SurrogateSearcher>(space, seed);
  if (name == "generative") return std::make_unique<GenerativeSearcher>(space, seed);
  throw Error("unknown searcher: " + name);
}

}  // namespace candle::hpo

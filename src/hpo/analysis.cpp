#include "hpo/analysis.hpp"

#include <algorithm>
#include <cmath>
#include <sstream>

namespace candle::hpo {

std::vector<ParameterImportance> parameter_importance(
    const SearchSpace& space, const std::vector<Observation>& history,
    Index bins) {
  CANDLE_CHECK(bins >= 2, "need at least two bins");
  CANDLE_CHECK(history.size() >= 4, "need at least four observations");

  // Global moments.
  double mean = 0.0;
  for (const Observation& o : history) mean += o.objective;
  mean /= static_cast<double>(history.size());
  double var = 0.0;
  for (const Observation& o : history) {
    const double d = o.objective - mean;
    var += d * d;
  }
  var /= static_cast<double>(history.size());

  std::vector<ParameterImportance> out;
  for (Index p = 0; p < space.dims(); ++p) {
    ParameterImportance imp;
    imp.name = space.param(p).name;
    if (var <= 1e-18) {
      out.push_back(imp);
      continue;
    }
    std::vector<double> bin_sum(static_cast<std::size_t>(bins), 0.0);
    std::vector<Index> bin_n(static_cast<std::size_t>(bins), 0);
    for (const Observation& o : history) {
      CANDLE_CHECK(static_cast<Index>(o.config.size()) == space.dims(),
                   "history config dimensionality mismatch");
      auto b = static_cast<std::size_t>(o.config[static_cast<std::size_t>(p)] *
                                        static_cast<double>(bins));
      b = std::min(b, static_cast<std::size_t>(bins - 1));
      bin_sum[b] += o.objective;
      ++bin_n[b];
    }
    // Weighted between-bin variance of conditional means.
    double between = 0.0;
    Index used = 0;
    double best_mean = 1e300;
    std::size_t best_bin = 0;
    for (std::size_t b = 0; b < bin_sum.size(); ++b) {
      if (bin_n[b] < 2) continue;
      const double bm = bin_sum[b] / static_cast<double>(bin_n[b]);
      between += static_cast<double>(bin_n[b]) * (bm - mean) * (bm - mean);
      used += bin_n[b];
      if (bm < best_mean) {
        best_mean = bm;
        best_bin = b;
      }
    }
    if (used > 0) {
      between /= static_cast<double>(used);
      imp.importance = std::max(0.0, between / var);
      imp.best_bin_center = (static_cast<double>(best_bin) + 0.5) /
                            static_cast<double>(bins);
    }
    out.push_back(imp);
  }
  std::sort(out.begin(), out.end(),
            [](const ParameterImportance& a, const ParameterImportance& b) {
              return a.importance > b.importance;
            });
  return out;
}

std::string importance_report(const std::vector<ParameterImportance>& imp) {
  std::ostringstream os;
  for (std::size_t i = 0; i < imp.size(); ++i) {
    if (i > 0) os << "  ";
    os << imp[i].name << ": "
       << static_cast<int>(std::lround(100.0 * imp[i].importance)) << '%';
  }
  return os.str();
}

}  // namespace candle::hpo

// Hyperparameter search space over mixed parameter types.
//
// Internally every configuration is a point in the unit hypercube [0,1)^d —
// one coordinate per parameter — which makes all search strategies
// (random, LHS, evolution, surrogates, neural generators) operate in a
// common geometry.  Decoding maps a coordinate to the parameter's native
// value: categorical bins, integer ranges, linear or log-scaled floats.
#pragma once

#include <string>
#include <vector>

#include "runtime/error.hpp"
#include "runtime/rng.hpp"

namespace candle::hpo {

using Index = std::int64_t;

/// A configuration: one coordinate per parameter, each in [0, 1).
using UnitConfig = std::vector<double>;

enum class ParamKind { Categorical, Int, Float, LogFloat };

struct Param {
  std::string name;
  ParamKind kind = ParamKind::Float;
  std::vector<std::string> categories;  // Categorical only
  double lo = 0.0;                      // numeric kinds
  double hi = 1.0;
};

class SearchSpace {
 public:
  SearchSpace& add_categorical(std::string name,
                               std::vector<std::string> values);
  SearchSpace& add_int(std::string name, Index lo, Index hi);  // inclusive
  SearchSpace& add_float(std::string name, double lo, double hi);
  /// Log-uniform: decode(u) = lo * (hi/lo)^u.  Requires 0 < lo < hi.
  SearchSpace& add_log_float(std::string name, double lo, double hi);

  Index dims() const { return static_cast<Index>(params_.size()); }
  const Param& param(Index i) const;
  Index index_of(const std::string& name) const;

  /// Uniform random configuration.
  UnitConfig sample(Pcg32& rng) const;

  /// Clamp every coordinate into [0, 1).
  void clamp(UnitConfig& config) const;

  // ---- decoding ---------------------------------------------------------------

  double decode_float(const UnitConfig& config, const std::string& name) const;
  Index decode_int(const UnitConfig& config, const std::string& name) const;
  const std::string& decode_categorical(const UnitConfig& config,
                                        const std::string& name) const;

  /// Human-readable "lr=3.2e-3, units=64, opt=adam" rendering.
  std::string describe(const UnitConfig& config) const;

  /// Number of distinct decoded configurations (product of categorical /
  /// integer cardinalities; continuous dims count as `continuous_levels`).
  /// Used to report the size of the searched space.
  double cardinality(Index continuous_levels = 100) const;

 private:
  const Param& named(const std::string& name) const;
  double coordinate(const UnitConfig& config, const Param& p) const;

  std::vector<Param> params_;
};

}  // namespace candle::hpo

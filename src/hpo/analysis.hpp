// Post-hoc analysis of search history: which hyperparameters mattered?
//
// A campaign of tens of thousands of configurations (claim C8) is also a
// dataset; fANOVA-style variance decomposition over it tells the scientist
// which knobs drive the objective.  This implements the binned first-order
// decomposition: importance(param) = Var_bins(mean objective | bin) /
// Var(objective), with equal-mass bins over each unit coordinate.
#pragma once

#include <string>
#include <vector>

#include "hpo/searchers.hpp"

namespace candle::hpo {

struct ParameterImportance {
  std::string name;
  double importance = 0.0;  // fraction of variance explained (>= 0)
  double best_bin_center = 0.0;  // unit-coordinate centre of the best bin
};

/// First-order importance of every parameter from observed (config,
/// objective) pairs.  `bins` equal-width bins per coordinate; bins with
/// fewer than 2 observations are ignored.  Results sum to <= 1 only for
/// purely additive objectives; interactions inflate the residual.
std::vector<ParameterImportance> parameter_importance(
    const SearchSpace& space, const std::vector<Observation>& history,
    Index bins = 8);

/// Render an importance report ("lr: 62%  units1: 21% ...").
std::string importance_report(const std::vector<ParameterImportance>& imp);

}  // namespace candle::hpo

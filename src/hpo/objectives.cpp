#include "hpo/objectives.hpp"

#include <algorithm>
#include <cmath>

#include "nn/metrics.hpp"

namespace candle::hpo {

Objective make_sphere_objective(const SearchSpace& space,
                                std::uint64_t seed) {
  Pcg32 rng(seed, 0x5b1e);
  UnitConfig opt = space.sample(rng);
  return [opt](const UnitConfig& x) {
    CANDLE_CHECK(x.size() == opt.size(), "objective dimensionality mismatch");
    double s = 0.0;
    for (std::size_t i = 0; i < x.size(); ++i) {
      const double d = x[i] - opt[i];
      s += d * d;
    }
    return s;
  };
}

Objective make_rastrigin_objective(const SearchSpace& space,
                                   std::uint64_t seed) {
  Pcg32 rng(seed, 0x7a57);
  UnitConfig opt = space.sample(rng);
  return [opt](const UnitConfig& x) {
    CANDLE_CHECK(x.size() == opt.size(), "objective dimensionality mismatch");
    // Scaled Rastrigin around `opt`: ripples of period 0.2 on the cube.
    double s = 0.0;
    const double two_pi = 6.283185307179586;
    for (std::size_t i = 0; i < x.size(); ++i) {
      const double d = 3.0 * (x[i] - opt[i]);
      s += d * d + 1.0 - std::cos(two_pi * 5.0 * d) ;
    }
    return s;
  };
}

Objective make_embedded_valley_objective(const SearchSpace& space,
                                         std::uint64_t seed) {
  Pcg32 rng(seed, 0xeb3d);
  CANDLE_CHECK(space.dims() >= 2, "valley objective needs >= 2 dims");
  const auto i0 = static_cast<std::size_t>(
      rng.next_below(static_cast<std::uint32_t>(space.dims())));
  auto i1 = static_cast<std::size_t>(
      rng.next_below(static_cast<std::uint32_t>(space.dims())));
  if (i1 == i0) i1 = (i0 + 1) % static_cast<std::size_t>(space.dims());
  const double a = rng.next_double(), b = rng.next_double();
  return [i0, i1, a, b](const UnitConfig& x) {
    // Curved valley: minimum along x[i1] = (x[i0]-a)^2 + b (clipped).
    const double u = x[i0] - a;
    const double valley = std::clamp(u * u + b, 0.0, 1.0);
    const double across = x[i1] - valley;
    return 10.0 * across * across + 0.5 * u * u;
  };
}

SearchSpace make_mlp_space() {
  SearchSpace s;
  s.add_log_float("lr", 1e-4, 1e-1);
  s.add_int("units1", 8, 128);
  s.add_int("units2", 4, 64);
  s.add_float("dropout", 0.0, 0.5);
  s.add_int("batch", 16, 128);
  s.add_categorical("optimizer", {"sgd", "momentum", "rmsprop", "adam"});
  return s;
}

TrainObjective::TrainObjective(const SearchSpace& space, Dataset train,
                               Dataset val, TrainObjectiveOptions options)
    : space_(&space), options_(options) {
  CANDLE_CHECK(train.size() >= 1 && val.size() >= 1,
               "objective needs non-empty datasets");
  train_ = train.size() > options.max_train
               ? slice(train, 0, options.max_train)
               : std::move(train);
  val_ = val.size() > options.max_val ? slice(val, 0, options.max_val)
                                      : std::move(val);
}

double TrainObjective::evaluate(const UnitConfig& config,
                                Index epochs) const {
  CANDLE_CHECK(epochs >= 1, "objective needs at least one epoch");
  const SearchSpace& s = *space_;
  const auto lr = static_cast<float>(s.decode_float(config, "lr"));
  const Index units1 = s.decode_int(config, "units1");
  const Index units2 = s.decode_int(config, "units2");
  const auto dropout = static_cast<float>(s.decode_float(config, "dropout"));
  const Index batch = s.decode_int(config, "batch");
  const std::string& opt_name = s.decode_categorical(config, "optimizer");

  Model m;
  m.add(make_dense(units1)).add(make_relu());
  if (dropout > 0.0f) m.add(make_dropout(dropout));
  m.add(make_dense(units2)).add(make_relu());
  m.add(make_dense(options_.classification ? options_.classes : 1));
  Shape in = train_.sample_shape();
  m.build(in, options_.seed ^ 0xabcdu);

  std::unique_ptr<Loss> loss;
  if (options_.classification) {
    loss = make_softmax_cross_entropy();
  } else {
    loss = make_mse();
  }
  auto opt = make_optimizer(opt_name, lr);

  FitOptions fo;
  fo.epochs = epochs;
  fo.batch_size = std::min<Index>(batch, train_.size());
  fo.seed = options_.seed ^ 0x77u;
  const FitHistory h = fit(m, train_, &val_, *loss, *opt, fo);
  ++evaluations_;
  epochs_consumed_ += epochs;
  const float best = h.best_val_loss();
  // Divergent configs (NaN/inf losses) rank behind everything finite.
  return std::isfinite(best) ? static_cast<double>(best) : 1e9;
}

}  // namespace candle::hpo

#include "hpo/pbt.hpp"

#include <algorithm>
#include <cmath>

namespace candle::hpo {

PbtResult population_based_training(const std::function<Model()>& factory,
                                    const Dataset& train, const Dataset& val,
                                    const Loss& loss,
                                    const PbtOptions& options,
                                    Model* out_model) {
  CANDLE_CHECK(options.population >= 2, "PBT needs a population of >= 2");
  CANDLE_CHECK(options.rounds >= 1 && options.epochs_per_round >= 1,
               "invalid PBT schedule");
  CANDLE_CHECK(options.exploit_fraction > 0.0 &&
                   options.exploit_fraction < 0.5,
               "exploit fraction must be in (0, 0.5)");
  CANDLE_CHECK(val.size() >= 1, "PBT needs a validation set");
  Pcg32 rng(options.seed, 0x9b7);

  struct Slot {
    Model model;
    std::unique_ptr<Optimizer> opt;
    PbtMember member;
  };
  std::vector<Slot> population;
  std::vector<float> weights_buf;
  for (Index i = 0; i < options.population; ++i) {
    Slot slot{factory(), nullptr, {}};
    CANDLE_CHECK(slot.model.built(), "factory must return built models");
    slot.member.id = i;
    // Log-uniform initial learning rates.
    slot.member.lr = static_cast<float>(
        1e-4 * std::pow(1e-1 / 1e-4, rng.next_double()));
    slot.opt = make_adam(slot.member.lr);
    population.push_back(std::move(slot));
  }
  weights_buf.resize(
      static_cast<std::size_t>(population[0].model.num_params()));

  PbtResult result;
  for (Index round = 0; round < options.rounds; ++round) {
    // Train every member for the round.
    for (Slot& slot : population) {
      FitOptions fo;
      fo.epochs = options.epochs_per_round;
      fo.batch_size = options.batch_size;
      fo.seed = options.seed ^ (0x51eeull * (slot.member.id + 1)) ^
                static_cast<std::uint64_t>(round);
      slot.opt->set_learning_rate(slot.member.lr);
      const FitHistory h =
          fit(slot.model, train, &val, loss, *slot.opt, fo);
      slot.member.val_loss = h.final_val_loss();
    }
    // Rank by validation loss.
    std::vector<Index> order(population.size());
    for (std::size_t i = 0; i < order.size(); ++i) {
      order[i] = static_cast<Index>(i);
    }
    std::sort(order.begin(), order.end(), [&](Index a, Index b) {
      return population[static_cast<std::size_t>(a)].member.val_loss <
             population[static_cast<std::size_t>(b)].member.val_loss;
    });
    result.best_loss_per_round.push_back(
        population[static_cast<std::size_t>(order[0])].member.val_loss);

    // Exploit + explore: bottom fraction copies a random top member.
    const auto cut = std::max<std::size_t>(
        1, static_cast<std::size_t>(options.exploit_fraction *
                                    static_cast<double>(order.size())));
    if (round + 1 < options.rounds) {
      for (std::size_t b = order.size() - cut; b < order.size(); ++b) {
        Slot& loser = population[static_cast<std::size_t>(order[b])];
        const auto winner_rank =
            static_cast<std::size_t>(rng.next_below(static_cast<std::uint32_t>(cut)));
        Slot& winner =
            population[static_cast<std::size_t>(order[winner_rank])];
        winner.model.copy_weights_to(weights_buf);
        loser.model.set_weights_from(weights_buf);
        // Fresh optimizer state for the copied weights.
        loser.opt = make_adam(winner.member.lr);
        // Explore: perturb the copied learning rate up or down.
        const float factor = rng.next_float() < 0.5f
                                 ? options.perturb_factor
                                 : 1.0f / options.perturb_factor;
        loser.member.lr = std::clamp(winner.member.lr * factor,
                                     options.lr_min, options.lr_max);
        ++loser.member.exploits;
        ++result.total_exploits;
      }
    }
  }

  // Final ranking.
  std::sort(population.begin(), population.end(),
            [](const Slot& a, const Slot& b) {
              return a.member.val_loss < b.member.val_loss;
            });
  for (const Slot& slot : population) {
    result.final_population.push_back(slot.member);
  }
  if (out_model != nullptr) {
    *out_model = factory();
    population.front().model.copy_weights_to(weights_buf);
    out_model->set_weights_from(weights_buf);
  }
  return result;
}

}  // namespace candle::hpo

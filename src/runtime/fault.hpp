// Deterministic fault injection for the executable runtime.
//
// The hpcsim resilience model (Young/Daly) predicts what failures *cost*; this
// module makes failures *happen* inside the real threaded runtime so the
// recovery machinery (timeout-detecting collectives, checkpoint/restart,
// elastic shrink) is exercised for real.  A FaultSchedule is fixed up front —
// either hand-built or drawn from a seeded generator — and every event fires
// exactly once, so a run that replays work after restoring a checkpoint does
// not re-trigger the fault that killed it (matching a real machine, where the
// node that died stays dead and the relaunched job proceeds).
//
// All injector state is mutex-guarded: replica threads poll concurrently.
#pragma once

#include <cstdint>
#include <mutex>
#include <optional>
#include <string>
#include <vector>

#include "runtime/error.hpp"
#include "runtime/timer.hpp"

namespace candle::runtime {

using Index = std::int64_t;

/// The fault taxonomy the resilient runtime must survive (DESIGN.md
/// "Failure model & recovery" and "Serving failure model").  The first four
/// kinds target training replicas; the serving kinds target inference
/// workers, where `step` is the per-worker batch ordinal and `rank` the
/// stable worker id (a replacement worker gets a fresh id — the worker that
/// died stays dead, exactly like a crashed training rank).
enum class FaultKind {
  ReplicaCrash,        // a replica dies mid-step (announced or silent)
  Straggler,           // a replica stalls for delay_s but stays alive
  CheckpointWriteFail, // the checkpoint write at this step fails mid-flight
  GradientCorruption,  // transient bit corruption of a gradient buffer
  WorkerCrash,         // serving: a worker dies mid-batch, in-flight batch
                       // abandoned for the supervisor to recover
  WorkerHang,          // serving: a worker stalls mid-batch for delay_s but
                       // eventually finishes (hedging races it)
  BatchCorruption,     // serving: inference output NaN-poisoned in flight
};

const char* fault_kind_name(FaultKind kind);

/// One scheduled fault.  `step` is the global committed-step index at which
/// the event fires (per-worker batch ordinal for the serving kinds); `rank`
/// targets a replica or serving worker (ignored for checkpoint-write
/// failures, which hit the shared writer).
struct FaultEvent {
  FaultKind kind = FaultKind::ReplicaCrash;
  Index step = 0;
  Index rank = 0;
  double delay_s = 0.0;     // Straggler / WorkerHang: stall duration
  Index corrupt_count = 1;  // GradientCorruption / BatchCorruption: entries
                            // poisoned
  bool announce = true;     // ReplicaCrash: announce death vs die silently
                            // (silent death exercises timeout detection)
};

/// Builder-style container for a deterministic fault schedule.
struct FaultSchedule {
  std::vector<FaultEvent> events;

  FaultSchedule& crash(Index step, Index rank, bool announce = true);
  FaultSchedule& straggle(Index step, Index rank, double delay_s);
  FaultSchedule& fail_checkpoint(Index step);
  FaultSchedule& corrupt(Index step, Index rank, Index entries = 1);

  // Serving-side events (step = the worker's own batch ordinal, 0-based).
  FaultSchedule& kill_worker(Index batch, Index worker);
  FaultSchedule& hang_worker(Index batch, Index worker, double delay_s);
  FaultSchedule& corrupt_batch(Index batch, Index worker, Index entries = 1);
};

/// Seeded random schedule: `crashes` replica crashes, `stragglers` stalls and
/// `corruptions` gradient corruptions at uniform (step, rank) positions in
/// [1, steps) x [0, ranks).  Deterministic in `seed`; at most one event per
/// (step, rank) cell so recoveries never overlap within a step.
FaultSchedule random_fault_schedule(std::uint64_t seed, Index steps,
                                    Index ranks, Index crashes,
                                    Index stragglers = 0,
                                    Index corruptions = 0,
                                    double straggler_delay_s = 0.0);

/// Seeded heavy-tailed straggler schedule: `stragglers` stalls at uniform
/// unique (step, rank) cells in [1, steps) x [0, ranks) with delays drawn
/// from a Pareto(alpha, min_delay_s) tail — the MLPerf-HPC-style node
/// performance-variability model where a few ranks stall for many multiples
/// of the step time.  `max_delay_s` > 0 truncates the tail (keeps injected
/// real sleeps and suspicion timeouts bounded).  Deterministic in `seed`.
FaultSchedule pareto_straggler_schedule(std::uint64_t seed, Index steps,
                                        Index ranks, Index stragglers,
                                        double alpha, double min_delay_s,
                                        double max_delay_s = 0.0);

/// Seeded serving chaos schedule: `kills` worker crashes, `hangs` mid-batch
/// stalls of `hang_delay_s`, and `corruptions` NaN-poisoned batches at
/// unique (batch ordinal, worker) cells in [0, batches) x [0, workers).
/// Deterministic in `seed` — the replay contract the chaos suite pins.
FaultSchedule serving_chaos_schedule(std::uint64_t seed, Index batches,
                                     Index workers, Index kills, Index hangs,
                                     Index corruptions, double hang_delay_s);

/// One line of the structured fault/recovery event log.
struct FaultRecord {
  double t_s = 0.0;        // seconds since injector construction
  Index step = 0;
  Index rank = -1;         // -1 when not rank-specific
  FaultKind kind = FaultKind::ReplicaCrash;
  std::string phase;       // "injected" | "detected" | "recovered" |
                           // "skipped" (event consumed but inapplicable,
                           // e.g. corrupting a rank with no gradient)
  std::string detail;
};

/// Thread-safe one-shot dispenser for a FaultSchedule plus the structured
/// event log that recovery code appends to.
class FaultInjector {
 public:
  explicit FaultInjector(FaultSchedule schedule);

  /// If an event of `kind` is scheduled for (step, rank), consume and return
  /// it (one-shot); otherwise nullopt.  Thread-safe.
  std::optional<FaultEvent> poll(FaultKind kind, Index step, Index rank);

  /// Convenience: consume a CheckpointWriteFail scheduled at `step`.
  bool checkpoint_should_fail(Index step);

  /// Events not yet fired.
  Index remaining() const;

  /// Append a structured record ("injected"/"detected"/"recovered"/
  /// "skipped").
  void record(Index step, Index rank, FaultKind kind, std::string phase,
              std::string detail);

  /// Snapshot of the log so far.
  std::vector<FaultRecord> log() const;

 private:
  mutable std::mutex mu_;
  std::vector<FaultEvent> pending_;
  std::vector<FaultRecord> log_;
  Stopwatch clock_;
};

/// Thrown by collectives when one or more ranks are dead (announced via
/// ShmCommunicator::mark_failed or suspected by barrier timeout).  Carries
/// the failed ranks so the recovery layer can shrink around them; an empty
/// list means the barrier timed out without being able to attribute blame
/// (anonymous arrivals).
class RankFailure : public Error {
 public:
  RankFailure(std::vector<Index> failed, const std::string& what)
      : Error(what), failed_(std::move(failed)) {}

  const std::vector<Index>& failed_ranks() const { return failed_; }

 private:
  std::vector<Index> failed_;
};

}  // namespace candle::runtime

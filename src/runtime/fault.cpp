#include "runtime/fault.hpp"

#include <algorithm>
#include <cmath>
#include <utility>

#include "runtime/rng.hpp"

namespace candle::runtime {

const char* fault_kind_name(FaultKind kind) {
  switch (kind) {
    case FaultKind::ReplicaCrash:        return "replica-crash";
    case FaultKind::Straggler:           return "straggler";
    case FaultKind::CheckpointWriteFail: return "checkpoint-write-fail";
    case FaultKind::GradientCorruption:  return "gradient-corruption";
  }
  return "unknown";
}

FaultSchedule& FaultSchedule::crash(Index step, Index rank, bool announce) {
  events.push_back({FaultKind::ReplicaCrash, step, rank, 0.0, 0, announce});
  return *this;
}

FaultSchedule& FaultSchedule::straggle(Index step, Index rank,
                                       double delay_s) {
  events.push_back({FaultKind::Straggler, step, rank, delay_s, 0, true});
  return *this;
}

FaultSchedule& FaultSchedule::fail_checkpoint(Index step) {
  events.push_back(
      {FaultKind::CheckpointWriteFail, step, /*rank=*/-1, 0.0, 0, true});
  return *this;
}

FaultSchedule& FaultSchedule::corrupt(Index step, Index rank, Index entries) {
  events.push_back(
      {FaultKind::GradientCorruption, step, rank, 0.0, entries, true});
  return *this;
}

namespace {

/// Draws unique (step, rank) cells in [1, steps) x [0, ranks); steps start
/// at 1 so step 0 always completes and the run has an initial committed
/// state to measure recovery against.
class CellDrawer {
 public:
  CellDrawer(Pcg32& rng, Index steps, Index ranks)
      : rng_(rng), steps_(steps), ranks_(ranks) {}

  std::pair<Index, Index> draw() {
    for (;;) {
      const Index step =
          1 + static_cast<Index>(
                  rng_.next_below(static_cast<std::uint32_t>(steps_ - 1)));
      const Index rank = static_cast<Index>(
          rng_.next_below(static_cast<std::uint32_t>(ranks_)));
      const auto cell = std::make_pair(step, rank);
      if (std::find(used_.begin(), used_.end(), cell) == used_.end()) {
        used_.push_back(cell);
        return cell;
      }
    }
  }

 private:
  Pcg32& rng_;
  Index steps_;
  Index ranks_;
  std::vector<std::pair<Index, Index>> used_;
};

}  // namespace

FaultSchedule random_fault_schedule(std::uint64_t seed, Index steps,
                                    Index ranks, Index crashes,
                                    Index stragglers, Index corruptions,
                                    double straggler_delay_s) {
  CANDLE_CHECK(steps >= 2 && ranks >= 1, "schedule needs steps and ranks");
  CANDLE_CHECK(crashes >= 0 && stragglers >= 0 && corruptions >= 0,
               "negative event count");
  const Index total = crashes + stragglers + corruptions;
  CANDLE_CHECK(total <= (steps - 1) * ranks,
               "more faults than (step, rank) cells");
  Pcg32 rng(seed, 0xfa17);
  FaultSchedule schedule;
  CellDrawer cells(rng, steps, ranks);
  auto draw_cell = [&] { return cells.draw(); };
  for (Index i = 0; i < crashes; ++i) {
    const auto [step, rank] = draw_cell();
    schedule.crash(step, rank, /*announce=*/true);
  }
  for (Index i = 0; i < stragglers; ++i) {
    const auto [step, rank] = draw_cell();
    schedule.straggle(step, rank, straggler_delay_s);
  }
  for (Index i = 0; i < corruptions; ++i) {
    const auto [step, rank] = draw_cell();
    schedule.corrupt(step, rank);
  }
  return schedule;
}

FaultSchedule pareto_straggler_schedule(std::uint64_t seed, Index steps,
                                        Index ranks, Index stragglers,
                                        double alpha, double min_delay_s,
                                        double max_delay_s) {
  CANDLE_CHECK(steps >= 2 && ranks >= 1, "schedule needs steps and ranks");
  CANDLE_CHECK(stragglers >= 0 && stragglers <= (steps - 1) * ranks,
               "straggler count out of range");
  CANDLE_CHECK(alpha > 1.0 && min_delay_s > 0.0,
               "Pareto tail needs alpha > 1 and a positive scale");
  CANDLE_CHECK(max_delay_s == 0.0 || max_delay_s >= min_delay_s,
               "max_delay_s must be zero (unclamped) or >= min_delay_s");
  Pcg32 rng(seed, 0x5712);
  FaultSchedule schedule;
  CellDrawer cells(rng, steps, ranks);
  for (Index i = 0; i < stragglers; ++i) {
    const auto [step, rank] = cells.draw();
    // Inverse-CDF Pareto draw: d = m * u^(-1/alpha), u in (0, 1].
    double u = rng.next_double();
    if (u < 1e-12) u = 1e-12;
    double delay = min_delay_s * std::pow(u, -1.0 / alpha);
    if (max_delay_s > 0.0) delay = std::min(delay, max_delay_s);
    schedule.straggle(step, rank, delay);
  }
  return schedule;
}

FaultInjector::FaultInjector(FaultSchedule schedule)
    : pending_(std::move(schedule.events)) {}

std::optional<FaultEvent> FaultInjector::poll(FaultKind kind, Index step,
                                              Index rank) {
  std::lock_guard<std::mutex> lock(mu_);
  for (std::size_t i = 0; i < pending_.size(); ++i) {
    const FaultEvent& e = pending_[i];
    if (e.kind == kind && e.step == step && e.rank == rank) {
      FaultEvent hit = e;
      pending_.erase(pending_.begin() + static_cast<std::ptrdiff_t>(i));
      return hit;
    }
  }
  return std::nullopt;
}

bool FaultInjector::checkpoint_should_fail(Index step) {
  return poll(FaultKind::CheckpointWriteFail, step, /*rank=*/-1).has_value();
}

Index FaultInjector::remaining() const {
  std::lock_guard<std::mutex> lock(mu_);
  return static_cast<Index>(pending_.size());
}

void FaultInjector::record(Index step, Index rank, FaultKind kind,
                           std::string phase, std::string detail) {
  std::lock_guard<std::mutex> lock(mu_);
  log_.push_back({clock_.seconds(), step, rank, kind, std::move(phase),
                  std::move(detail)});
}

std::vector<FaultRecord> FaultInjector::log() const {
  std::lock_guard<std::mutex> lock(mu_);
  return log_;
}

}  // namespace candle::runtime

#include "runtime/fault.hpp"

#include <algorithm>
#include <cmath>
#include <utility>

#include "runtime/rng.hpp"

namespace candle::runtime {

const char* fault_kind_name(FaultKind kind) {
  switch (kind) {
    case FaultKind::ReplicaCrash:        return "replica-crash";
    case FaultKind::Straggler:           return "straggler";
    case FaultKind::CheckpointWriteFail: return "checkpoint-write-fail";
    case FaultKind::GradientCorruption:  return "gradient-corruption";
    case FaultKind::WorkerCrash:         return "worker-crash";
    case FaultKind::WorkerHang:          return "worker-hang";
    case FaultKind::BatchCorruption:     return "batch-corruption";
  }
  return "unknown";
}

FaultSchedule& FaultSchedule::crash(Index step, Index rank, bool announce) {
  events.push_back({FaultKind::ReplicaCrash, step, rank, 0.0, 0, announce});
  return *this;
}

FaultSchedule& FaultSchedule::straggle(Index step, Index rank,
                                       double delay_s) {
  events.push_back({FaultKind::Straggler, step, rank, delay_s, 0, true});
  return *this;
}

FaultSchedule& FaultSchedule::fail_checkpoint(Index step) {
  events.push_back(
      {FaultKind::CheckpointWriteFail, step, /*rank=*/-1, 0.0, 0, true});
  return *this;
}

FaultSchedule& FaultSchedule::corrupt(Index step, Index rank, Index entries) {
  events.push_back(
      {FaultKind::GradientCorruption, step, rank, 0.0, entries, true});
  return *this;
}

FaultSchedule& FaultSchedule::kill_worker(Index batch, Index worker) {
  events.push_back({FaultKind::WorkerCrash, batch, worker, 0.0, 0, true});
  return *this;
}

FaultSchedule& FaultSchedule::hang_worker(Index batch, Index worker,
                                          double delay_s) {
  events.push_back({FaultKind::WorkerHang, batch, worker, delay_s, 0, true});
  return *this;
}

FaultSchedule& FaultSchedule::corrupt_batch(Index batch, Index worker,
                                            Index entries) {
  events.push_back(
      {FaultKind::BatchCorruption, batch, worker, 0.0, entries, true});
  return *this;
}

namespace {

/// Draws unique (step, rank) cells in [min_step, steps) x [0, ranks).
/// Training schedules start at step 1 so step 0 always completes and the
/// run has an initial committed state to measure recovery against; serving
/// schedules start at 0 (a worker's very first batch is fair game).
class CellDrawer {
 public:
  CellDrawer(Pcg32& rng, Index steps, Index ranks, Index min_step = 1)
      : rng_(rng), min_step_(min_step), steps_(steps), ranks_(ranks) {}

  std::pair<Index, Index> draw() {
    for (;;) {
      const Index step =
          min_step_ +
          static_cast<Index>(rng_.next_below(
              static_cast<std::uint32_t>(steps_ - min_step_)));
      const Index rank = static_cast<Index>(
          rng_.next_below(static_cast<std::uint32_t>(ranks_)));
      const auto cell = std::make_pair(step, rank);
      if (std::find(used_.begin(), used_.end(), cell) == used_.end()) {
        used_.push_back(cell);
        return cell;
      }
    }
  }

 private:
  Pcg32& rng_;
  Index min_step_;
  Index steps_;
  Index ranks_;
  std::vector<std::pair<Index, Index>> used_;
};

}  // namespace

FaultSchedule random_fault_schedule(std::uint64_t seed, Index steps,
                                    Index ranks, Index crashes,
                                    Index stragglers, Index corruptions,
                                    double straggler_delay_s) {
  CANDLE_CHECK(steps >= 2 && ranks >= 1, "schedule needs steps and ranks");
  CANDLE_CHECK(crashes >= 0 && stragglers >= 0 && corruptions >= 0,
               "negative event count");
  const Index total = crashes + stragglers + corruptions;
  CANDLE_CHECK(total <= (steps - 1) * ranks,
               "more faults than (step, rank) cells");
  Pcg32 rng(seed, 0xfa17);
  FaultSchedule schedule;
  CellDrawer cells(rng, steps, ranks);
  auto draw_cell = [&] { return cells.draw(); };
  for (Index i = 0; i < crashes; ++i) {
    const auto [step, rank] = draw_cell();
    schedule.crash(step, rank, /*announce=*/true);
  }
  for (Index i = 0; i < stragglers; ++i) {
    const auto [step, rank] = draw_cell();
    schedule.straggle(step, rank, straggler_delay_s);
  }
  for (Index i = 0; i < corruptions; ++i) {
    const auto [step, rank] = draw_cell();
    schedule.corrupt(step, rank);
  }
  return schedule;
}

FaultSchedule pareto_straggler_schedule(std::uint64_t seed, Index steps,
                                        Index ranks, Index stragglers,
                                        double alpha, double min_delay_s,
                                        double max_delay_s) {
  CANDLE_CHECK(steps >= 2 && ranks >= 1, "schedule needs steps and ranks");
  CANDLE_CHECK(stragglers >= 0 && stragglers <= (steps - 1) * ranks,
               "straggler count out of range");
  CANDLE_CHECK(alpha > 1.0 && min_delay_s > 0.0,
               "Pareto tail needs alpha > 1 and a positive scale");
  CANDLE_CHECK(max_delay_s == 0.0 || max_delay_s >= min_delay_s,
               "max_delay_s must be zero (unclamped) or >= min_delay_s");
  Pcg32 rng(seed, 0x5712);
  FaultSchedule schedule;
  CellDrawer cells(rng, steps, ranks);
  for (Index i = 0; i < stragglers; ++i) {
    const auto [step, rank] = cells.draw();
    // Inverse-CDF Pareto draw: d = m * u^(-1/alpha), u in (0, 1].
    double u = rng.next_double();
    if (u < 1e-12) u = 1e-12;
    double delay = min_delay_s * std::pow(u, -1.0 / alpha);
    if (max_delay_s > 0.0) delay = std::min(delay, max_delay_s);
    schedule.straggle(step, rank, delay);
  }
  return schedule;
}

FaultSchedule serving_chaos_schedule(std::uint64_t seed, Index batches,
                                     Index workers, Index kills, Index hangs,
                                     Index corruptions, double hang_delay_s) {
  CANDLE_CHECK(batches >= 1 && workers >= 1,
               "schedule needs batches and workers");
  CANDLE_CHECK(kills >= 0 && hangs >= 0 && corruptions >= 0,
               "negative event count");
  CANDLE_CHECK(hangs == 0 || hang_delay_s > 0.0,
               "hangs need a positive delay");
  CANDLE_CHECK(kills + hangs + corruptions <= batches * workers,
               "more faults than (batch, worker) cells");
  Pcg32 rng(seed, 0xc4a05);
  FaultSchedule schedule;
  CellDrawer cells(rng, batches, workers, /*min_step=*/0);
  for (Index i = 0; i < kills; ++i) {
    const auto [batch, worker] = cells.draw();
    schedule.kill_worker(batch, worker);
  }
  for (Index i = 0; i < hangs; ++i) {
    const auto [batch, worker] = cells.draw();
    schedule.hang_worker(batch, worker, hang_delay_s);
  }
  for (Index i = 0; i < corruptions; ++i) {
    const auto [batch, worker] = cells.draw();
    schedule.corrupt_batch(batch, worker);
  }
  return schedule;
}

FaultInjector::FaultInjector(FaultSchedule schedule)
    : pending_(std::move(schedule.events)) {}

std::optional<FaultEvent> FaultInjector::poll(FaultKind kind, Index step,
                                              Index rank) {
  std::lock_guard<std::mutex> lock(mu_);
  for (std::size_t i = 0; i < pending_.size(); ++i) {
    const FaultEvent& e = pending_[i];
    if (e.kind == kind && e.step == step && e.rank == rank) {
      FaultEvent hit = e;
      pending_.erase(pending_.begin() + static_cast<std::ptrdiff_t>(i));
      return hit;
    }
  }
  return std::nullopt;
}

bool FaultInjector::checkpoint_should_fail(Index step) {
  return poll(FaultKind::CheckpointWriteFail, step, /*rank=*/-1).has_value();
}

Index FaultInjector::remaining() const {
  std::lock_guard<std::mutex> lock(mu_);
  return static_cast<Index>(pending_.size());
}

void FaultInjector::record(Index step, Index rank, FaultKind kind,
                           std::string phase, std::string detail) {
  std::lock_guard<std::mutex> lock(mu_);
  log_.push_back({clock_.seconds(), step, rank, kind, std::move(phase),
                  std::move(detail)});
}

std::vector<FaultRecord> FaultInjector::log() const {
  std::lock_guard<std::mutex> lock(mu_);
  return log_;
}

}  // namespace candle::runtime

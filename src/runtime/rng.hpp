// Deterministic, splittable random number generation.
//
// All stochastic components in candle-hpc draw from Pcg32, a small
// counter-based PCG-XSH-RR generator.  Determinism contract: given the same
// (seed, stream) pair the sequence is identical on every platform and is
// independent of thread scheduling, because parallel code derives one
// stream per logical unit of work (worker, replica, sample) rather than
// sharing a generator.
#pragma once

#include <cstdint>

namespace candle {

/// PCG-XSH-RR 64/32 generator (O'Neill 2014).  16 bytes of state, passes
/// statistical test batteries far beyond what experiment seeding needs, and
/// supports 2^63 independent streams via the `stream` constructor argument.
class Pcg32 {
 public:
  /// Construct from a seed and a stream id.  Distinct stream ids yield
  /// statistically independent sequences for the same seed.
  explicit Pcg32(std::uint64_t seed = 0x853c49e6748fea9bULL,
                 std::uint64_t stream = 0xda3e39cb94b95bdbULL) {
    state_ = 0U;
    inc_ = (stream << 1u) | 1u;
    next_u32();
    state_ += seed;
    next_u32();
  }

  /// Next raw 32-bit draw.
  std::uint32_t next_u32() {
    const std::uint64_t old = state_;
    state_ = old * 6364136223846793005ULL + inc_;
    const auto xorshifted =
        static_cast<std::uint32_t>(((old >> 18u) ^ old) >> 27u);
    const auto rot = static_cast<std::uint32_t>(old >> 59u);
    return (xorshifted >> rot) | (xorshifted << ((32u - rot) & 31u));
  }

  /// Uniform in [0, bound) without modulo bias.
  std::uint32_t next_below(std::uint32_t bound) {
    if (bound <= 1) return 0;
    const std::uint32_t threshold = (0u - bound) % bound;
    for (;;) {
      const std::uint32_t r = next_u32();
      if (r >= threshold) return r % bound;
    }
  }

  /// Uniform double in [0, 1).
  double next_double() {
    return static_cast<double>(next_u32()) * (1.0 / 4294967296.0);
  }

  /// Uniform float in [0, 1).
  float next_float() {
    return static_cast<float>(next_u32() >> 8) * (1.0f / 16777216.0f);
  }

  /// Uniform double in [lo, hi).
  double uniform(double lo, double hi) { return lo + (hi - lo) * next_double(); }

  /// Standard normal via Box–Muller (one value per call; second discarded to
  /// keep the stream position a pure function of the call count).
  double normal() {
    // Rejection-free polar form would cache state; Box–Muller trig form keeps
    // the generator stateless beyond the PCG counter.
    double u1 = next_double();
    const double u2 = next_double();
    if (u1 < 1e-300) u1 = 1e-300;
    const double two_pi = 6.283185307179586476925286766559;
    return __builtin_sqrt(-2.0 * __builtin_log(u1)) *
           __builtin_cos(two_pi * u2);
  }

  /// Normal with mean/stddev.
  double normal(double mean, double stddev) { return mean + stddev * normal(); }

  /// Derive an independent child generator; `salt` distinguishes siblings.
  /// Used to hand one stream to each worker/replica/sample deterministically.
  Pcg32 split(std::uint64_t salt) const {
    // Mix current state with the salt through splitmix64 so children of the
    // same parent with different salts are decorrelated.
    std::uint64_t z = state_ + 0x9e3779b97f4a7c15ULL * (salt + 1);
    z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
    z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
    z ^= z >> 31;
    return Pcg32(z, inc_ ^ (salt * 0x632be59bd9b4e019ULL + 0xb5ad4eceda1ce2a9ULL));
  }

  // UniformRandomBitGenerator interface so <algorithm> shuffles work.
  using result_type = std::uint32_t;
  static constexpr result_type min() { return 0; }
  static constexpr result_type max() { return 0xffffffffu; }
  result_type operator()() { return next_u32(); }

 private:
  std::uint64_t state_;
  std::uint64_t inc_;
};

}  // namespace candle

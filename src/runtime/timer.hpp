// Wall-clock timing utilities used by benchmarks and the calibration pass.
#pragma once

#include <chrono>

namespace candle {

/// Monotonic stopwatch.  Starts on construction; `seconds()` reports elapsed
/// time; `reset()` restarts.
class Stopwatch {
 public:
  Stopwatch() : start_(clock::now()) {}

  void reset() { start_ = clock::now(); }

  /// Elapsed seconds since construction or last reset.
  double seconds() const {
    return std::chrono::duration<double>(clock::now() - start_).count();
  }

  double milliseconds() const { return seconds() * 1e3; }
  double microseconds() const { return seconds() * 1e6; }

 private:
  using clock = std::chrono::steady_clock;
  clock::time_point start_;
};

}  // namespace candle

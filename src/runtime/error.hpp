// Error handling primitives shared by every candle-hpc subsystem.
//
// Contract violations at public API boundaries throw candle::Error with a
// formatted message; internal invariants use CANDLE_CHECK, which also throws
// (so unit tests can assert on misuse) but is phrased as an invariant
// failure.  No error codes, no out-params — per the C++ Core Guidelines
// material this project follows.
#pragma once

#include <sstream>
#include <stdexcept>
#include <string>

namespace candle {

/// Exception type thrown on any contract or invariant violation.
class Error : public std::runtime_error {
 public:
  explicit Error(const std::string& what) : std::runtime_error(what) {}
};

namespace detail {

[[noreturn]] inline void throw_check_failure(const char* expr, const char* file,
                                             int line, const std::string& msg) {
  std::ostringstream os;
  os << "CANDLE_CHECK failed: (" << expr << ") at " << file << ":" << line;
  if (!msg.empty()) os << " — " << msg;
  throw Error(os.str());
}

/// Optional-message adapter so CANDLE_CHECK(cond) and
/// CANDLE_CHECK(cond, any-string-expression) both compile.
inline std::string check_msg() { return {}; }
inline std::string check_msg(std::string msg) { return msg; }

}  // namespace detail

}  // namespace candle

/// Assert `cond`; on failure throw candle::Error quoting the expression.
/// Usage: CANDLE_CHECK(a.rows() == b.rows(), "gemm shape mismatch");
#define CANDLE_CHECK(cond, ...)                                             \
  do {                                                                      \
    if (!(cond)) {                                                          \
      ::candle::detail::throw_check_failure(                                \
          #cond, __FILE__, __LINE__,                                        \
          ::candle::detail::check_msg(__VA_ARGS__));                        \
    }                                                                       \
  } while (false)

/// Unconditional failure for unreachable branches.
#define CANDLE_FAIL(msg)                                                     \
  ::candle::detail::throw_check_failure("unreachable", __FILE__, __LINE__,   \
                                        ::std::string(msg))

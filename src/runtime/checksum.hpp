// CRC32 (IEEE 802.3, reflected polynomial 0xEDB88320) used to verify
// checkpoint payload integrity.  A truncated or bit-flipped checkpoint must
// fail loudly at load time instead of silently seeding training with garbage
// weights; at campaign scale (thousands of checkpoint writes racing node
// failures) partially written files are an expected event, not a corner case.
#pragma once

#include <array>
#include <cstddef>
#include <cstdint>

namespace candle::runtime {

namespace detail {

constexpr std::array<std::uint32_t, 256> make_crc32_table() {
  std::array<std::uint32_t, 256> table{};
  for (std::uint32_t i = 0; i < 256; ++i) {
    std::uint32_t c = i;
    for (int k = 0; k < 8; ++k) {
      c = (c & 1u) ? (0xEDB88320u ^ (c >> 1)) : (c >> 1);
    }
    table[i] = c;
  }
  return table;
}

inline constexpr std::array<std::uint32_t, 256> kCrc32Table =
    make_crc32_table();

}  // namespace detail

/// Update a running CRC32 with `size` bytes; seed with crc = 0 and chain
/// calls to checksum a payload in pieces.
inline std::uint32_t crc32_update(std::uint32_t crc, const void* data,
                                  std::size_t size) {
  const auto* bytes = static_cast<const unsigned char*>(data);
  crc ^= 0xFFFFFFFFu;
  for (std::size_t i = 0; i < size; ++i) {
    crc = detail::kCrc32Table[(crc ^ bytes[i]) & 0xFFu] ^ (crc >> 8);
  }
  return crc ^ 0xFFFFFFFFu;
}

/// One-shot CRC32 of a buffer.
inline std::uint32_t crc32(const void* data, std::size_t size) {
  return crc32_update(0u, data, size);
}

}  // namespace candle::runtime

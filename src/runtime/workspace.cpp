#include "runtime/workspace.hpp"

#include <algorithm>
#include <mutex>

namespace candle {

namespace {

constexpr std::size_t kMinBlockBytes = 1 << 20;  // 1 MiB floor per block

std::size_t round_up(std::size_t bytes, std::size_t align) {
  return (bytes + align - 1) / align * align;
}

// Registry of live arenas plus the accumulated counters of destroyed ones,
// so workspace_stats() is monotone in grow/alloc counts.
struct Registry {
  std::mutex mu;
  std::vector<const WorkspaceArena*> arenas;
  std::uint64_t retired_grow = 0;
  std::uint64_t retired_alloc = 0;
};

Registry& registry() {
  static Registry* r = new Registry();  // leaked: outlives thread-local dtors
  return *r;
}

}  // namespace

WorkspaceArena::WorkspaceArena() {
  Registry& r = registry();
  std::lock_guard<std::mutex> lock(r.mu);
  r.arenas.push_back(this);
}

WorkspaceArena::~WorkspaceArena() {
  Registry& r = registry();
  std::lock_guard<std::mutex> lock(r.mu);
  r.retired_grow += grow_count();
  r.retired_alloc += alloc_count();
  r.arenas.erase(std::find(r.arenas.begin(), r.arenas.end(), this));
}

WorkspaceArena::Block WorkspaceArena::make_block(std::size_t bytes) {
  Block b;
  b.capacity = std::max(bytes, std::max(kMinBlockBytes,
                                        2 * static_cast<std::size_t>(
                                                bytes_reserved())));
  b.data.reset(static_cast<std::byte*>(
      ::operator new(b.capacity, std::align_val_t(kWorkspaceAlign))));
  grow_count_.fetch_add(1, std::memory_order_relaxed);
  bytes_reserved_.fetch_add(b.capacity, std::memory_order_relaxed);
  return b;
}

void* WorkspaceArena::alloc_bytes(std::size_t bytes) {
  alloc_count_.fetch_add(1, std::memory_order_relaxed);
  bytes = round_up(std::max<std::size_t>(bytes, 1), kWorkspaceAlign);
  // Find the first block from the cursor onward with room; later blocks are
  // empty (rollback zeroes their `used`).
  while (cur_block_ < blocks_.size() &&
         blocks_[cur_block_].capacity - cur_used_ < bytes) {
    blocks_[cur_block_].used = cur_used_;
    ++cur_block_;
    cur_used_ = cur_block_ < blocks_.size() ? blocks_[cur_block_].used : 0;
  }
  if (cur_block_ == blocks_.size()) {
    blocks_.push_back(make_block(bytes));
    cur_used_ = 0;
  }
  Block& b = blocks_[cur_block_];
  void* p = b.data.get() + cur_used_;
  cur_used_ += bytes;
  b.used = cur_used_;
  return p;
}

void WorkspaceArena::reserve(std::size_t bytes) {
  for (const Block& b : blocks_) {
    if (b.capacity - b.used >= bytes) return;
  }
  blocks_.push_back(make_block(bytes));
}

void WorkspaceArena::rollback(std::size_t block, std::size_t used) {
  for (std::size_t i = block + 1; i <= cur_block_ && i < blocks_.size(); ++i) {
    blocks_[i].used = 0;
  }
  cur_block_ = block;
  cur_used_ = used;
  if (cur_block_ < blocks_.size()) blocks_[cur_block_].used = used;
}

WorkspaceArena& WorkspaceArena::local() {
  thread_local WorkspaceArena arena;
  return arena;
}

WorkspaceStats workspace_stats() {
  Registry& r = registry();
  std::lock_guard<std::mutex> lock(r.mu);
  WorkspaceStats s;
  s.grow_count = r.retired_grow;
  s.alloc_count = r.retired_alloc;
  for (const WorkspaceArena* a : r.arenas) {
    s.grow_count += a->grow_count();
    s.alloc_count += a->alloc_count();
    s.bytes_reserved += a->bytes_reserved();
  }
  return s;
}

}  // namespace candle

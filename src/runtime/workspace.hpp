// Workspace arenas: aligned, grow-only, thread-local scratch memory for the
// compute kernels.
//
// The kernel path (core/kernels) packs GEMM operands into cache-friendly
// panels on every call.  Allocating those panels from the heap would put a
// malloc/free pair on the hottest path in the library; instead every thread
// owns a WorkspaceArena — a bump allocator over a small list of 64-byte
// aligned blocks that only ever grows.  Steady-state training reaches its
// high-water mark within the first few steps and performs *zero* heap
// allocations afterwards (asserted by tests/test_workspace.cpp via the
// grow-count instrumentation below).
//
// Lifetime rules:
//  * WorkspaceArena::Scope marks the bump pointer on entry and rolls it back
//    on exit.  Pointers from alloc() are valid until their enclosing Scope
//    dies; nothing is ever freed to the OS mid-scope, so pointers never move.
//  * Arenas are thread-local (WorkspaceArena::local()).  A kernel running
//    under parallel_for allocs from the *worker's* arena inside the loop
//    body; the dispatching thread packs shared panels from its own arena,
//    which workers may read (the scope outlives the parallel region).
//  * Blocks are retained across scopes ("grow-only"): capacity is monotone,
//    so warm kernels never touch the heap again.
#pragma once

#include <atomic>
#include <cstddef>
#include <cstdint>
#include <memory>
#include <new>
#include <vector>

#include "runtime/error.hpp"

namespace candle {

/// Alignment of every workspace allocation and of Tensor storage: one cache
/// line, which is also sufficient for 512-bit SIMD loads.
inline constexpr std::size_t kWorkspaceAlign = 64;

/// Minimal std::allocator replacement handing out `Align`-aligned storage.
/// Used by Tensor so kernel operands start on cache-line boundaries.
template <typename T, std::size_t Align = kWorkspaceAlign>
struct AlignedAllocator {
  using value_type = T;

  AlignedAllocator() noexcept = default;
  template <typename U>
  AlignedAllocator(const AlignedAllocator<U, Align>&) noexcept {}

  T* allocate(std::size_t n) {
    return static_cast<T*>(
        ::operator new(n * sizeof(T), std::align_val_t(Align)));
  }
  void deallocate(T* p, std::size_t n) noexcept {
    ::operator delete(p, n * sizeof(T), std::align_val_t(Align));
  }

  template <typename U>
  struct rebind {
    using other = AlignedAllocator<U, Align>;
  };

  friend bool operator==(const AlignedAllocator&, const AlignedAllocator&) {
    return true;
  }
};

/// Cache-line-aligned float vector: the storage type behind Tensor.
using AlignedVector = std::vector<float, AlignedAllocator<float>>;

/// Aggregate view over every live (and retired) arena in the process.
struct WorkspaceStats {
  std::uint64_t grow_count = 0;   ///< heap block allocations, ever
  std::uint64_t alloc_count = 0;  ///< arena alloc() calls, ever
  std::uint64_t bytes_reserved = 0;  ///< current total block capacity
};

/// Grow-only bump allocator over 64-byte aligned heap blocks.
class WorkspaceArena {
 public:
  /// RAII mark/rollback of the bump pointer.  Scopes nest.
  class Scope {
   public:
    explicit Scope(WorkspaceArena& arena)
        : arena_(arena), block_(arena.cur_block_), used_(arena.cur_used_) {
      ++arena_.scope_depth_;
    }
    ~Scope() {
      --arena_.scope_depth_;
      arena_.rollback(block_, used_);
    }
    Scope(const Scope&) = delete;
    Scope& operator=(const Scope&) = delete;

   private:
    WorkspaceArena& arena_;
    std::size_t block_;
    std::size_t used_;
  };

  WorkspaceArena();
  ~WorkspaceArena();
  WorkspaceArena(const WorkspaceArena&) = delete;
  WorkspaceArena& operator=(const WorkspaceArena&) = delete;

  /// Bump-allocate `bytes` (64-byte aligned).  Valid until the enclosing
  /// Scope exits.  Grows the arena (one heap allocation) only when the
  /// request does not fit in the retained blocks.
  void* alloc_bytes(std::size_t bytes);

  /// Typed convenience wrapper: `count` elements of T.
  template <typename T>
  T* alloc(std::size_t count) {
    return static_cast<T*>(alloc_bytes(count * sizeof(T)));
  }

  /// Ensure at least `bytes` of contiguous capacity without allocating it
  /// piecemeal later (optional warm-up hook).
  void reserve(std::size_t bytes);

  /// Number of heap block allocations this arena ever made.  Flat across
  /// calls == the kernel path is allocation-free.
  std::uint64_t grow_count() const {
    return grow_count_.load(std::memory_order_relaxed);
  }
  /// Number of alloc() calls this arena ever served.
  std::uint64_t alloc_count() const {
    return alloc_count_.load(std::memory_order_relaxed);
  }
  /// Total capacity currently held (bytes).
  std::uint64_t bytes_reserved() const {
    return bytes_reserved_.load(std::memory_order_relaxed);
  }
  int scope_depth() const { return scope_depth_; }

  /// The calling thread's arena (created on first use, lives until thread
  /// exit; pool workers persist for the process lifetime).
  static WorkspaceArena& local();

 private:
  struct AlignedDelete {
    void operator()(std::byte* p) const noexcept {
      ::operator delete(p, std::align_val_t(kWorkspaceAlign));
    }
  };
  struct Block {
    std::unique_ptr<std::byte, AlignedDelete> data;
    std::size_t capacity = 0;  // bytes
    std::size_t used = 0;      // bytes bumped in this block
  };

  void rollback(std::size_t block, std::size_t used);
  Block make_block(std::size_t bytes);

  std::vector<Block> blocks_;
  std::size_t cur_block_ = 0;  // blocks_[cur_block_] receives the next bump
  std::size_t cur_used_ = 0;   // mirror of blocks_[cur_block_].used

  // Stats are relaxed atomics so workspace_stats() may read them from other
  // threads without racing the owning thread's bumps.
  std::atomic<std::uint64_t> grow_count_{0};
  std::atomic<std::uint64_t> alloc_count_{0};
  std::atomic<std::uint64_t> bytes_reserved_{0};
  int scope_depth_ = 0;
};

/// Sum of the counters of every arena in the process (live arenas plus
/// totals captured from destroyed ones).  The zero-allocation test snapshots
/// grow_count before/after a batch of kernel calls.
WorkspaceStats workspace_stats();

}  // namespace candle

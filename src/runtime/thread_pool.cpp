#include "runtime/thread_pool.hpp"

#include <algorithm>

#include "runtime/error.hpp"

namespace candle {

namespace {
// Set while the current thread is executing a parallel_for body, so nested
// loops collapse to serial execution instead of re-entering the pool.
thread_local bool tls_inside_parallel_region = false;
}  // namespace

ThreadPool::ThreadPool(unsigned threads) {
  unsigned n = threads;
  if (n == 0) {
    const unsigned hw = std::thread::hardware_concurrency();
    n = hw > 0 ? hw - 1 : 0;  // caller thread is the extra lane
  }
  workers_.reserve(n);
  for (unsigned i = 0; i < n; ++i) {
    workers_.emplace_back([this, i] { worker_main(i + 1); });
  }
}

ThreadPool::~ThreadPool() {
  {
    std::lock_guard<std::mutex> lock(mu_);
    stop_ = true;
  }
  cv_start_.notify_all();
  for (auto& w : workers_) w.join();
}

bool ThreadPool::on_worker_thread() const {
  const auto id = std::this_thread::get_id();
  return std::any_of(workers_.begin(), workers_.end(),
                     [id](const std::thread& t) { return t.get_id() == id; });
}

void ThreadPool::worker_main(unsigned index) {
  std::uint64_t seen_generation = 0;
  for (;;) {
    const std::function<void(unsigned)>* job = nullptr;
    {
      std::unique_lock<std::mutex> lock(mu_);
      cv_start_.wait(lock, [&] { return stop_ || generation_ != seen_generation; });
      if (stop_) return;
      seen_generation = generation_;
      job = job_;
    }
    std::exception_ptr err;
    try {
      (*job)(index);
    } catch (...) {
      err = std::current_exception();
    }
    {
      std::lock_guard<std::mutex> lock(mu_);
      if (err && !first_error_) first_error_ = err;
      if (--outstanding_ == 0) cv_done_.notify_all();
    }
  }
}

void ThreadPool::run_on_all(const std::function<void(unsigned)>& body) {
  if (workers_.empty()) {
    body(0);
    return;
  }
  std::lock_guard<std::mutex> dispatch_lock(dispatch_mu_);
  run_locked(body);
}

bool ThreadPool::try_run_on_all(const std::function<void(unsigned)>& body) {
  if (workers_.empty()) {
    body(0);
    return true;
  }
  std::unique_lock<std::mutex> dispatch_lock(dispatch_mu_, std::try_to_lock);
  if (!dispatch_lock.owns_lock()) return false;
  run_locked(body);
  return true;
}

void ThreadPool::run_locked(const std::function<void(unsigned)>& body) {
  {
    std::lock_guard<std::mutex> lock(mu_);
    CANDLE_CHECK(job_ == nullptr, "ThreadPool::run_on_all is not reentrant");
    job_ = &body;
    outstanding_ = static_cast<unsigned>(workers_.size());
    first_error_ = nullptr;
    ++generation_;
  }
  cv_start_.notify_all();

  std::exception_ptr caller_err;
  try {
    body(0);
  } catch (...) {
    caller_err = std::current_exception();
  }

  std::unique_lock<std::mutex> lock(mu_);
  cv_done_.wait(lock, [&] { return outstanding_ == 0; });
  job_ = nullptr;
  std::exception_ptr err = caller_err ? caller_err : first_error_;
  first_error_ = nullptr;
  lock.unlock();
  if (err) std::rethrow_exception(err);
}

ThreadPool& global_pool() {
  static ThreadPool pool;
  return pool;
}

unsigned parallel_lanes() { return global_pool().size() + 1; }

void parallel_for(std::int64_t begin, std::int64_t end, std::int64_t grain,
                  const std::function<void(std::int64_t, std::int64_t)>& body) {
  if (begin >= end) return;
  if (grain < 1) grain = 1;
  const std::int64_t n = end - begin;

  ThreadPool& pool = global_pool();
  const bool serial = tls_inside_parallel_region || pool.size() == 0 ||
                      n <= grain;
  if (serial) {
    body(begin, end);
    return;
  }

  // The job lambda captures a single pointer so the std::function fits its
  // small-buffer slot: dispatching a parallel loop performs no heap
  // allocation (the GEMM steady-state path must be allocation-free).
  struct Ctx {
    std::atomic<std::int64_t> cursor;
    std::int64_t end, grain;
    const std::function<void(std::int64_t, std::int64_t)>* body;
  } ctx{{begin}, end, grain, &body};
  const bool dispatched = pool.try_run_on_all([&ctx](unsigned /*worker*/) {
    tls_inside_parallel_region = true;
    for (;;) {
      const std::int64_t lo =
          ctx.cursor.fetch_add(ctx.grain, std::memory_order_relaxed);
      if (lo >= ctx.end) break;
      const std::int64_t hi = std::min(ctx.end, lo + ctx.grain);
      (*ctx.body)(lo, hi);
    }
    tls_inside_parallel_region = false;
  });
  if (!dispatched) body(begin, end);  // pool busy: another thread owns it
}

}  // namespace candle

// Persistent worker-thread pool and the parallel_for loop used by every
// compute kernel in candle-hpc.
//
// Design notes (see DESIGN.md "runtime"):
//  * One process-wide pool (global_pool()) sized to hardware concurrency;
//    kernels never spawn ad-hoc threads.
//  * parallel_for distributes [begin, end) in `grain`-sized chunks through an
//    atomic cursor, so load imbalance self-schedules.
//  * Nested parallelism is flattened: a parallel_for issued from inside a
//    pool worker runs serially on that worker.  This lets the data-parallel
//    trainer (`src/parallel`) run replicas on pool workers whose GEMMs
//    degrade gracefully to serial instead of deadlocking or oversubscribing.
//  * Exceptions thrown by loop bodies are captured and rethrown on the
//    calling thread (first one wins).
#pragma once

#include <atomic>
#include <condition_variable>
#include <cstdint>
#include <exception>
#include <functional>
#include <mutex>
#include <thread>
#include <vector>

namespace candle {

/// Fixed-size pool of worker threads executing fork/join style jobs.
class ThreadPool {
 public:
  /// Create a pool with `threads` workers (0 = hardware concurrency).
  explicit ThreadPool(unsigned threads = 0);
  ~ThreadPool();

  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  /// Number of worker threads (not counting the caller, which participates).
  unsigned size() const { return static_cast<unsigned>(workers_.size()); }

  /// Run `body(worker_index)` once on every worker plus the calling thread
  /// (caller gets index 0, workers 1..size()).  Blocks until all return.
  /// The first exception thrown by any body is rethrown here.
  void run_on_all(const std::function<void(unsigned)>& body);

  /// As run_on_all, but if another thread currently owns the pool, returns
  /// false without running anything.  parallel_for uses this to degrade to
  /// serial execution under contention instead of blocking or throwing.
  bool try_run_on_all(const std::function<void(unsigned)>& body);

  /// True when the current thread is one of this pool's workers.
  bool on_worker_thread() const;

 private:
  void worker_main(unsigned index);
  void run_locked(const std::function<void(unsigned)>& body);

  std::vector<std::thread> workers_;
  std::mutex dispatch_mu_;  // serializes concurrent run_on_all callers
  mutable std::mutex mu_;
  std::condition_variable cv_start_;
  std::condition_variable cv_done_;
  const std::function<void(unsigned)>* job_ = nullptr;
  std::uint64_t generation_ = 0;
  unsigned outstanding_ = 0;
  bool stop_ = false;
  std::exception_ptr first_error_;
};

/// The process-wide pool.  Constructed on first use.
ThreadPool& global_pool();

/// Total logical lanes = workers + caller.  Used to size chunking.
unsigned parallel_lanes();

/// Parallel loop over [begin, end).  `body(lo, hi)` is invoked on
/// half-open subranges whose length is at most max(grain, 1).  Runs serially
/// when the range is small, the pool has no workers, or the call is nested
/// inside another parallel_for.
void parallel_for(std::int64_t begin, std::int64_t end, std::int64_t grain,
                  const std::function<void(std::int64_t, std::int64_t)>& body);

/// Convenience overload with an automatically chosen grain.
inline void parallel_for(
    std::int64_t begin, std::int64_t end,
    const std::function<void(std::int64_t, std::int64_t)>& body) {
  const std::int64_t n = end - begin;
  const std::int64_t lanes = static_cast<std::int64_t>(parallel_lanes());
  const std::int64_t grain = n > 0 ? (n + 4 * lanes - 1) / (4 * lanes) : 1;
  parallel_for(begin, end, grain, body);
}

/// Grain for a loop whose iterations each cost `flops_per_item` flops: large
/// enough that one steal amortizes dispatch overhead (>= min_flops_per_chunk
/// of work per chunk), small enough for ~4 chunks per lane when the work
/// allows it.  GEMM uses this so small-m/large-n shapes stop degenerating to
/// one cheap row per steal, and so tiny loops fall back to serial (the
/// 3-argument parallel_for runs serially when n <= grain).
inline std::int64_t grain_for_flops(std::int64_t n, double flops_per_item,
                                    double min_flops_per_chunk = 262144.0) {
  if (n <= 0) return 1;
  const std::int64_t lanes = static_cast<std::int64_t>(parallel_lanes());
  const std::int64_t balance = (n + 4 * lanes - 1) / (4 * lanes);
  std::int64_t floor_items = 1;
  if (flops_per_item > 0.0 && flops_per_item < min_flops_per_chunk) {
    floor_items =
        static_cast<std::int64_t>(min_flops_per_chunk / flops_per_item) + 1;
  }
  return std::max(balance, floor_items);
}

}  // namespace candle

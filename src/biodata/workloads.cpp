#include "biodata/workloads.hpp"

#include <algorithm>
#include <cmath>
#include <vector>

namespace candle::biodata {

Dataset make_drug_response(const DrugResponseConfig& cfg) {
  CANDLE_CHECK(cfg.samples >= 1 && cfg.genes >= 1 && cfg.pathways >= 1 &&
                   cfg.drug_descriptors >= cfg.pathways,
               "invalid DrugResponseConfig");
  Pcg32 rng(cfg.seed, 0xd506);

  // Sparse-ish loading matrix: each gene loads on a couple of pathways.
  Tensor loadings({cfg.genes, cfg.pathways});
  for (Index g = 0; g < cfg.genes; ++g) {
    for (Index p = 0; p < cfg.pathways; ++p) {
      const bool active = rng.next_float() < 0.3f;
      loadings.at(g, p) =
          active ? static_cast<float>(rng.normal(0.0, 1.0)) : 0.0f;
    }
  }
  // Pathway-level response weights (cell-intrinsic sensitivity).
  Tensor w_cell = Tensor::randn({cfg.pathways}, rng);
  // Drug mechanism mixing: descriptors are a noisy linear readout of the
  // drug's pathway-targeting vector.
  Tensor descriptor_map = Tensor::randn({cfg.pathways, cfg.drug_descriptors},
                                        rng, 0.0f, 0.8f);

  Dataset d{Tensor({cfg.samples, cfg.features()}), Tensor({cfg.samples, 1})};
  std::vector<float> z(static_cast<std::size_t>(cfg.pathways));
  std::vector<float> mech(static_cast<std::size_t>(cfg.pathways));
  for (Index i = 0; i < cfg.samples; ++i) {
    float* row = d.x.data() + i * cfg.features();
    // Latent pathway activity of this "cell line".
    for (auto& v : z) v = static_cast<float>(rng.normal());
    // Drug mechanism (which pathways the compound hits).
    for (auto& v : mech) v = static_cast<float>(rng.normal(0.0, 1.0));

    // Observed expression: mixture of pathway activities + measurement noise.
    for (Index g = 0; g < cfg.genes; ++g) {
      float e = 0.0f;
      for (Index p = 0; p < cfg.pathways; ++p) {
        e += loadings.at(g, p) * z[static_cast<std::size_t>(p)];
      }
      row[g] = e + 0.2f * static_cast<float>(rng.normal());
    }
    // Observed drug descriptors.
    for (Index k = 0; k < cfg.drug_descriptors; ++k) {
      float v = 0.0f;
      for (Index p = 0; p < cfg.pathways; ++p) {
        v += descriptor_map.at(p, k) * mech[static_cast<std::size_t>(p)];
      }
      row[cfg.genes + k] = v + 0.2f * static_cast<float>(rng.normal());
    }

    // Response: cell-intrinsic term + pathway x mechanism interaction,
    // squashed so the target stays bounded (like a normalized log-IC50).
    float intrinsic = 0.0f, interaction = 0.0f;
    for (Index p = 0; p < cfg.pathways; ++p) {
      const auto pu = static_cast<std::size_t>(p);
      intrinsic += w_cell[p] * z[pu];
      interaction += z[pu] * mech[pu];
    }
    const float y = std::tanh(0.5f * intrinsic) + std::tanh(0.8f * interaction);
    d.y.at(i, 0) = y + cfg.noise * static_cast<float>(rng.normal());
  }
  return d;
}

namespace {

// Class signature layout for the tumor workload: deterministic, evenly
// spread module start positions per class.
std::vector<Index> module_starts(const TumorTypeConfig& cfg, Index cls,
                                 Pcg32& layout_rng) {
  std::vector<Index> starts;
  const Index usable = cfg.profile_length - cfg.module_width;
  CANDLE_CHECK(usable >= 1, "module wider than profile");
  for (Index m = 0; m < cfg.modules_per_class; ++m) {
    // Hash-like placement keyed by (class, module) through the shared rng
    // stream: deterministic given the config seed.
    (void)cls;
    starts.push_back(
        static_cast<Index>(layout_rng.next_below(static_cast<std::uint32_t>(usable))));
  }
  return starts;
}

}  // namespace

Dataset make_tumor_type(const TumorTypeConfig& cfg) {
  CANDLE_CHECK(cfg.samples >= cfg.classes && cfg.classes >= 2 &&
                   cfg.profile_length >= cfg.module_width,
               "invalid TumorTypeConfig");
  Pcg32 rng(cfg.seed, 0x707);
  Pcg32 layout_rng = rng.split(1);

  // Per-class module positions and per-module amplitude patterns.
  std::vector<std::vector<Index>> starts;
  std::vector<Tensor> patterns;  // (modules, width) per class
  for (Index c = 0; c < cfg.classes; ++c) {
    starts.push_back(module_starts(cfg, c, layout_rng));
    patterns.push_back(
        Tensor::randn({cfg.modules_per_class, cfg.module_width}, layout_rng));
  }

  Dataset d{Tensor({cfg.samples, 1, cfg.profile_length}),
            Tensor({cfg.samples})};
  for (Index i = 0; i < cfg.samples; ++i) {
    const Index cls = i % cfg.classes;  // balanced
    d.y[i] = static_cast<float>(cls);
    float* row = d.x.data() + i * cfg.profile_length;
    for (Index g = 0; g < cfg.profile_length; ++g) {
      row[g] = cfg.noise * static_cast<float>(rng.normal());
    }
    const auto cu = static_cast<std::size_t>(cls);
    for (Index m = 0; m < cfg.modules_per_class; ++m) {
      Index s0 = starts[cu][static_cast<std::size_t>(m)];
      if (cfg.position_jitter > 0) {
        const Index span = 2 * cfg.position_jitter + 1;
        s0 += static_cast<Index>(
                  rng.next_below(static_cast<std::uint32_t>(span))) -
              cfg.position_jitter;
        s0 = std::clamp<Index>(s0, 0, cfg.profile_length - cfg.module_width);
      }
      for (Index t = 0; t < cfg.module_width; ++t) {
        row[s0 + t] += cfg.signal * patterns[cu].at(m, t);
      }
    }
  }
  return d;
}

Dataset make_tumor_type_flat(const TumorTypeConfig& cfg) {
  Dataset d = make_tumor_type(cfg);
  d.x.reshape({cfg.samples, cfg.profile_length});
  return d;
}

bool amr_ground_truth(const AmrConfig& cfg, std::span<const float> row) {
  CANDLE_CHECK(static_cast<Index>(row.size()) == cfg.kmers,
               "AMR row width mismatch");
  for (Index m = 0; m < cfg.mechanisms; ++m) {
    bool all_present = true;
    for (Index k = 0; k < cfg.kmers_per_mechanism; ++k) {
      if (row[static_cast<std::size_t>(m * cfg.kmers_per_mechanism + k)] <
          0.5f) {
        all_present = false;
        break;
      }
    }
    if (all_present) return true;
  }
  return false;
}

Dataset make_amr(const AmrConfig& cfg) {
  CANDLE_CHECK(cfg.mechanisms * cfg.kmers_per_mechanism <= cfg.kmers,
               "mechanism k-mers exceed feature count");
  CANDLE_CHECK(cfg.background_rate > 0.0f && cfg.background_rate < 1.0f,
               "background rate must be in (0,1)");
  CANDLE_CHECK(cfg.mechanism_prevalence > 0.0f &&
                   cfg.mechanism_prevalence < 1.0f,
               "mechanism prevalence must be in (0,1)");
  CANDLE_CHECK(cfg.spurious_rate >= 0.0f && cfg.spurious_rate < 1.0f,
               "spurious rate must be in [0,1)");
  Pcg32 rng(cfg.seed, 0xa312);

  Dataset d{Tensor({cfg.samples, cfg.kmers}), Tensor({cfg.samples, 1})};
  const Index mech_cols = cfg.mechanisms * cfg.kmers_per_mechanism;
  for (Index i = 0; i < cfg.samples; ++i) {
    float* row = d.x.data() + i * cfg.kmers;
    // Mechanism gene blocks: all-or-(rarely)-spurious.
    for (Index m = 0; m < cfg.mechanisms; ++m) {
      const bool carries = rng.next_float() < cfg.mechanism_prevalence;
      for (Index k = 0; k < cfg.kmers_per_mechanism; ++k) {
        const bool present =
            carries || rng.next_float() < cfg.spurious_rate;
        row[m * cfg.kmers_per_mechanism + k] = present ? 1.0f : 0.0f;
      }
    }
    // Uninformative background k-mers.
    for (Index k = mech_cols; k < cfg.kmers; ++k) {
      row[k] = rng.next_float() < cfg.background_rate ? 1.0f : 0.0f;
    }
    bool resistant =
        amr_ground_truth(cfg, {row, static_cast<std::size_t>(cfg.kmers)});
    if (rng.next_float() < cfg.label_noise) resistant = !resistant;
    d.y.at(i, 0) = resistant ? 1.0f : 0.0f;
  }
  return d;
}

Dataset make_compound_screen(const CompoundScreenConfig& cfg) {
  CANDLE_CHECK(cfg.descriptors >= 5, "CompoundScreen needs >= 5 descriptors");
  CANDLE_CHECK(cfg.active_fraction > 0.0f && cfg.active_fraction < 1.0f,
               "active fraction must be in (0,1)");
  Pcg32 rng(cfg.seed, 0xc09d);

  // First pass: draw descriptors, compute the Friedman #1 surface.
  Dataset d{Tensor({cfg.samples, cfg.descriptors}), Tensor({cfg.samples, 1})};
  std::vector<float> score(static_cast<std::size_t>(cfg.samples));
  for (Index i = 0; i < cfg.samples; ++i) {
    float* row = d.x.data() + i * cfg.descriptors;
    for (Index k = 0; k < cfg.descriptors; ++k) row[k] = rng.next_float();
    const float s =
        10.0f * std::sin(3.14159265f * row[0] * row[1]) +
        20.0f * (row[2] - 0.5f) * (row[2] - 0.5f) + 10.0f * row[3] +
        5.0f * row[4];
    score[static_cast<std::size_t>(i)] = s;
  }
  // Threshold at the (1 - active_fraction) quantile for the target rate.
  std::vector<float> sorted = score;
  std::sort(sorted.begin(), sorted.end());
  const auto cut_idx = static_cast<std::size_t>(
      std::clamp<double>((1.0 - static_cast<double>(cfg.active_fraction)) *
                             static_cast<double>(cfg.samples),
                         0.0, static_cast<double>(cfg.samples - 1)));
  const float threshold = sorted[cut_idx];
  for (Index i = 0; i < cfg.samples; ++i) {
    bool active = score[static_cast<std::size_t>(i)] > threshold;
    if (rng.next_float() < cfg.label_noise) active = !active;
    d.y.at(i, 0) = active ? 1.0f : 0.0f;
  }
  return d;
}

Dataset make_histology(const HistologyConfig& cfg) {
  CANDLE_CHECK(cfg.samples >= cfg.classes && cfg.classes >= 2 &&
                   cfg.image_size >= 8,
               "invalid HistologyConfig");
  Pcg32 rng(cfg.seed, 0x415);
  Pcg32 layout = rng.split(1);

  // Class constellations: blob centres in [0.2, 0.8] of the patch.
  std::vector<std::vector<std::pair<float, float>>> constellations;
  for (Index c = 0; c < cfg.classes; ++c) {
    std::vector<std::pair<float, float>> blobs;
    for (Index b = 0; b < cfg.blobs_per_class; ++b) {
      blobs.emplace_back(0.2f + 0.6f * layout.next_float(),
                         0.2f + 0.6f * layout.next_float());
    }
    constellations.push_back(std::move(blobs));
  }

  const Index hw = cfg.image_size;
  Dataset d{Tensor({cfg.samples, 1, hw, hw}), Tensor({cfg.samples})};
  const float two_sigma2 = 2.0f * cfg.blob_sigma * cfg.blob_sigma;
  for (Index i = 0; i < cfg.samples; ++i) {
    const Index cls = i % cfg.classes;
    d.y[i] = static_cast<float>(cls);
    float* img = d.x.data() + i * hw * hw;
    for (Index px = 0; px < hw * hw; ++px) {
      img[px] = cfg.noise * static_cast<float>(rng.normal());
    }
    for (const auto& [cx, cy] : constellations[static_cast<std::size_t>(cls)]) {
      // Per-sample positional jitter of each blob (tissue heterogeneity).
      const float jx = cx * static_cast<float>(hw) +
                       2.0f * static_cast<float>(rng.normal());
      const float jy = cy * static_cast<float>(hw) +
                       2.0f * static_cast<float>(rng.normal());
      for (Index y = 0; y < hw; ++y) {
        for (Index x = 0; x < hw; ++x) {
          const float dx = static_cast<float>(x) - jx;
          const float dy = static_cast<float>(y) - jy;
          img[y * hw + x] +=
              cfg.signal * std::exp(-(dx * dx + dy * dy) / two_sigma2);
        }
      }
    }
  }
  return d;
}

WorkloadInfo drug_response_info(const DrugResponseConfig& cfg) {
  return {"drug_response", "regression",
          cfg.features() * static_cast<Index>(sizeof(float))};
}
WorkloadInfo tumor_type_info(const TumorTypeConfig& cfg) {
  return {"tumor_type", "classification",
          cfg.profile_length * static_cast<Index>(sizeof(float))};
}
WorkloadInfo amr_info(const AmrConfig& cfg) {
  return {"amr_resistance", "binary",
          cfg.kmers * static_cast<Index>(sizeof(float))};
}
WorkloadInfo compound_screen_info(const CompoundScreenConfig& cfg) {
  return {"compound_screen", "binary",
          cfg.descriptors * static_cast<Index>(sizeof(float))};
}

}  // namespace candle::biodata

#include "biodata/pilots.hpp"

#include <algorithm>
#include <cmath>
#include <functional>

namespace candle::biodata {

// ---- autoencoder ----------------------------------------------------------------

Dataset make_expression_autoencoder(const AutoencoderConfig& cfg) {
  CANDLE_CHECK(cfg.samples >= 1 && cfg.genes >= cfg.pathways &&
                   cfg.pathways >= 1,
               "invalid AutoencoderConfig");
  Pcg32 rng(cfg.seed, 0xae01);
  Tensor loadings = Tensor::randn({cfg.genes, cfg.pathways}, rng);
  Dataset d{Tensor({cfg.samples, cfg.genes}), Tensor({cfg.samples, cfg.genes})};
  std::vector<float> z(static_cast<std::size_t>(cfg.pathways));
  for (Index i = 0; i < cfg.samples; ++i) {
    for (auto& v : z) v = static_cast<float>(rng.normal());
    float* row = d.x.data() + i * cfg.genes;
    for (Index g = 0; g < cfg.genes; ++g) {
      float e = 0.0f;
      for (Index p = 0; p < cfg.pathways; ++p) {
        e += loadings.at(g, p) * z[static_cast<std::size_t>(p)];
      }
      row[g] = e + cfg.noise * static_cast<float>(rng.normal());
    }
  }
  d.y.copy_from(d.x);
  return d;
}

// ---- treatment outcomes -----------------------------------------------------------

namespace {

// Deterministic per-config coefficient draws.
struct TreatmentModel {
  std::vector<float> base_w;    // baseline risk weights
  std::vector<float> effect_w;  // treatment-interaction weights
  float base_b = 0.0f;
  float effect_b = 0.0f;

  explicit TreatmentModel(const TreatmentConfig& cfg) {
    Pcg32 rng(cfg.seed, 0x7d0c);
    base_w.resize(static_cast<std::size_t>(cfg.covariates));
    effect_w.resize(static_cast<std::size_t>(cfg.covariates));
    for (auto& w : base_w) w = static_cast<float>(rng.normal(0.0, 0.8));
    for (auto& w : effect_w) w = static_cast<float>(rng.normal(0.0, 1.0));
    base_b = static_cast<float>(rng.normal(-0.5, 0.2));
    effect_b = static_cast<float>(rng.normal(0.0, 0.3));
  }
};

double sigmoid(double z) { return 1.0 / (1.0 + std::exp(-z)); }

}  // namespace

double treatment_outcome_probability(const TreatmentConfig& cfg,
                                     std::span<const float> covariates,
                                     bool treated) {
  CANDLE_CHECK(static_cast<Index>(covariates.size()) == cfg.covariates,
               "covariate count mismatch");
  const TreatmentModel model(cfg);
  double logit = model.base_b;
  double effect = model.effect_b;
  for (std::size_t j = 0; j < covariates.size(); ++j) {
    logit += model.base_w[j] * covariates[j];
    effect += model.effect_w[j] * covariates[j];
  }
  // Treatment shifts the logit by a covariate-dependent amount: it lowers
  // risk where `effect` is negative and raises it where positive.
  if (treated) logit += effect;
  return sigmoid(logit);
}

Dataset make_treatment_outcome(const TreatmentConfig& cfg) {
  CANDLE_CHECK(cfg.samples >= 1 && cfg.covariates >= 1,
               "invalid TreatmentConfig");
  CANDLE_CHECK(cfg.treated_fraction > 0.0f && cfg.treated_fraction < 1.0f,
               "treated fraction must be in (0,1)");
  Pcg32 rng(cfg.seed, 0x7d0d);
  Dataset d{Tensor({cfg.samples, cfg.covariates + 1}),
            Tensor({cfg.samples, 1})};
  std::vector<float> cov(static_cast<std::size_t>(cfg.covariates));
  for (Index i = 0; i < cfg.samples; ++i) {
    for (auto& v : cov) v = static_cast<float>(rng.normal());
    const bool treated = rng.next_float() < cfg.treated_fraction;
    float* row = d.x.data() + i * (cfg.covariates + 1);
    std::copy(cov.begin(), cov.end(), row);
    row[cfg.covariates] = treated ? 1.0f : 0.0f;
    const double p = treatment_outcome_probability(cfg, cov, treated);
    // Logit noise: jitter the probability through its logit.
    const double noisy = sigmoid(std::log(p / (1.0 - p)) +
                                 cfg.outcome_noise * rng.normal());
    d.y.at(i, 0) = rng.next_double() < noisy ? 1.0f : 0.0f;
  }
  return d;
}

double policy_value(const TreatmentConfig& cfg,
                    const std::function<bool(std::span<const float>)>& policy,
                    Index n_eval, std::uint64_t seed) {
  CANDLE_CHECK(n_eval >= 1, "need at least one evaluation patient");
  Pcg32 rng(seed, 0x7d0e);
  std::vector<float> cov(static_cast<std::size_t>(cfg.covariates));
  double total = 0.0;
  for (Index i = 0; i < n_eval; ++i) {
    for (auto& v : cov) v = static_cast<float>(rng.normal());
    const bool treat = policy(cov);
    total += treatment_outcome_probability(cfg, cov, treat);
  }
  return total / static_cast<double>(n_eval);
}

// ---- MD frames ---------------------------------------------------------------------

namespace {

struct MdSurface {
  Tensor centers;              // (wells, dims)
  std::vector<float> depths;   // basin depths (negative at minimum)
  std::vector<float> widths;   // basin widths

  explicit MdSurface(const MdConfig& cfg) {
    Pcg32 rng(cfg.seed, 0x3d5);
    centers = Tensor::randn({cfg.wells, cfg.dims}, rng, 0.0f, 2.0f);
    depths.resize(static_cast<std::size_t>(cfg.wells));
    widths.resize(static_cast<std::size_t>(cfg.wells));
    for (Index w = 0; w < cfg.wells; ++w) {
      // Well 0 is the global minimum by construction.
      depths[static_cast<std::size_t>(w)] =
          w == 0 ? -4.0f : -1.0f - 2.0f * rng.next_float();
      widths[static_cast<std::size_t>(w)] = 0.8f + 0.8f * rng.next_float();
    }
  }
};

}  // namespace

double md_potential(const MdConfig& cfg, std::span<const float> x) {
  CANDLE_CHECK(static_cast<Index>(x.size()) == cfg.dims,
               "configuration dimensionality mismatch");
  const MdSurface surface(cfg);
  // Sum of Gaussian wells + a weak harmonic confinement + ripples.
  double energy = 0.0;
  double r2_origin = 0.0;
  for (float v : x) r2_origin += static_cast<double>(v) * v;
  energy += 0.05 * r2_origin;
  for (Index w = 0; w < cfg.wells; ++w) {
    double r2 = 0.0;
    for (Index k = 0; k < cfg.dims; ++k) {
      const double d = x[static_cast<std::size_t>(k)] - surface.centers.at(w, k);
      r2 += d * d;
    }
    const double width = surface.widths[static_cast<std::size_t>(w)];
    energy += surface.depths[static_cast<std::size_t>(w)] *
              std::exp(-r2 / (2.0 * width * width));
  }
  // Short-wavelength ruggedness (what makes a surrogate useful).
  double ripple = 0.0;
  for (std::size_t k = 0; k < x.size(); ++k) {
    ripple += std::sin(3.0 * x[k] + static_cast<double>(k));
  }
  energy += 0.1 * ripple;
  return energy;
}

std::vector<float> md_global_minimum(const MdConfig& cfg) {
  const MdSurface surface(cfg);
  std::vector<float> x(static_cast<std::size_t>(cfg.dims));
  for (Index k = 0; k < cfg.dims; ++k) {
    x[static_cast<std::size_t>(k)] = surface.centers.at(0, k);
  }
  return x;
}

Dataset make_md_frames(const MdConfig& cfg) {
  CANDLE_CHECK(cfg.samples >= 1 && cfg.dims >= 1 && cfg.wells >= 1,
               "invalid MdConfig");
  CANDLE_CHECK(cfg.temperature > 0.0f, "temperature must be positive");
  Pcg32 rng(cfg.seed, 0x3d6);
  const MdSurface surface(cfg);
  Dataset d{Tensor({cfg.samples, cfg.dims}), Tensor({cfg.samples, 1})};
  std::vector<float> x(static_cast<std::size_t>(cfg.dims));
  for (Index i = 0; i < cfg.samples; ++i) {
    // Sample around a random well (short MD bursts near metastable states).
    const auto w = static_cast<Index>(
        rng.next_below(static_cast<std::uint32_t>(cfg.wells)));
    for (Index k = 0; k < cfg.dims; ++k) {
      x[static_cast<std::size_t>(k)] = static_cast<float>(
          surface.centers.at(w, k) + cfg.temperature * rng.normal());
    }
    float* row = d.x.data() + i * cfg.dims;
    std::copy(x.begin(), x.end(), row);
    d.y.at(i, 0) = static_cast<float>(md_potential(cfg, x));
  }
  return d;
}

}  // namespace candle::biodata

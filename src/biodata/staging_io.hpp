// Executable dataset staging: write datasets to node-local storage in a
// simple binary format and stream mini-batches back.  This is the
// measured counterpart of the hpcsim staging model (E6): the analytic
// model prices PFS vs NVRAM; this module lets the host actually exercise
// the generate -> stage -> stream path and measure its own rates.
//
// Format (little-endian): magic u32, x-rank u32, x-dims i64[], y-rank u32,
// y-dims i64[], x data f32[], y data f32[].
#pragma once

#include <span>
#include <string>

#include "nn/dataset.hpp"

namespace candle::biodata {

/// Write a dataset; returns bytes written.  Throws on I/O failure.
std::size_t stage_dataset(const Dataset& data, const std::string& path);

/// Read a staged dataset back (exact round trip).
Dataset load_staged_dataset(const std::string& path);

/// Stream a staged dataset from disk in row batches without materializing
/// the whole file: each next() reads the next `batch` rows (wrapping).
class StagedReader {
 public:
  StagedReader(const std::string& path, Index batch);
  ~StagedReader();
  StagedReader(const StagedReader&) = delete;
  StagedReader& operator=(const StagedReader&) = delete;

  Index rows() const { return rows_; }
  Shape sample_shape() const;
  Shape y_sample_shape() const;
  Index x_row_elems() const { return x_row_elems_; }
  Index y_row_elems() const { return y_row_elems_; }

  /// Next `batch` rows (fewer at the tail, then wraps to the start).
  Dataset next();

  /// Random-access read of one row into caller buffers (sized
  /// x_row_elems()/y_row_elems()).  Leaves the next() cursor untouched, so
  /// sequential streaming and random sampling can interleave on one reader.
  void read_row(Index row, std::span<float> x, std::span<float> y);

 private:
  void seek_to_row(Index row);

  std::string path_;
  Index batch_;
  Index rows_ = 0;
  Shape x_shape_, y_shape_;
  Index x_row_elems_ = 0, y_row_elems_ = 0;
  std::streamoff x_data_off_ = 0, y_data_off_ = 0;
  Index cursor_ = 0;
  void* file_ = nullptr;  // std::ifstream, type-erased to keep header light
};

/// Measured staging rates for a generated dataset: returns (write GB/s,
/// read GB/s) through `path`.
std::pair<double, double> measure_staging_rates(const Dataset& data,
                                                const std::string& path);

}  // namespace candle::biodata

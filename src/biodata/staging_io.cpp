#include "biodata/staging_io.hpp"

#include <cstdint>
#include <fstream>

#include "runtime/timer.hpp"

namespace candle::biodata {

namespace {

constexpr std::uint32_t kMagic = 0xCA9D57A6u;

template <typename T>
void write_pod(std::ofstream& os, const T& v) {
  os.write(reinterpret_cast<const char*>(&v), sizeof(T));
}

template <typename T>
T read_pod(std::ifstream& is) {
  T v{};
  is.read(reinterpret_cast<char*>(&v), sizeof(T));
  CANDLE_CHECK(static_cast<bool>(is), "staged dataset truncated");
  return v;
}

void write_shape(std::ofstream& os, const Shape& s) {
  write_pod(os, static_cast<std::uint32_t>(s.size()));
  for (Index d : s) write_pod(os, static_cast<std::int64_t>(d));
}

Shape read_shape(std::ifstream& is) {
  const auto rank = read_pod<std::uint32_t>(is);
  CANDLE_CHECK(rank <= 8, "implausible staged tensor rank");
  Shape s;
  for (std::uint32_t i = 0; i < rank; ++i) {
    s.push_back(read_pod<std::int64_t>(is));
  }
  return s;
}

}  // namespace

std::size_t stage_dataset(const Dataset& data, const std::string& path) {
  CANDLE_CHECK(data.size() >= 1, "cannot stage an empty dataset");
  std::ofstream os(path, std::ios::binary | std::ios::trunc);
  CANDLE_CHECK(os.is_open(), "cannot open staging file: " + path);
  write_pod(os, kMagic);
  write_shape(os, data.x.shape());
  write_shape(os, data.y.shape());
  os.write(reinterpret_cast<const char*>(data.x.data()),
           static_cast<std::streamsize>(data.x.numel() * sizeof(float)));
  os.write(reinterpret_cast<const char*>(data.y.data()),
           static_cast<std::streamsize>(data.y.numel() * sizeof(float)));
  CANDLE_CHECK(static_cast<bool>(os), "staging write failed: " + path);
  return sizeof(kMagic) + static_cast<std::size_t>(os.tellp());
}

Dataset load_staged_dataset(const std::string& path) {
  std::ifstream is(path, std::ios::binary);
  CANDLE_CHECK(is.is_open(), "cannot open staged dataset: " + path);
  CANDLE_CHECK(read_pod<std::uint32_t>(is) == kMagic,
               "not a staged dataset: " + path);
  const Shape xs = read_shape(is);
  const Shape ys = read_shape(is);
  Dataset d{Tensor(xs), Tensor(ys)};
  is.read(reinterpret_cast<char*>(d.x.data()),
          static_cast<std::streamsize>(d.x.numel() * sizeof(float)));
  is.read(reinterpret_cast<char*>(d.y.data()),
          static_cast<std::streamsize>(d.y.numel() * sizeof(float)));
  CANDLE_CHECK(static_cast<bool>(is), "staged dataset truncated: " + path);
  return d;
}

StagedReader::StagedReader(const std::string& path, Index batch)
    : path_(path), batch_(batch) {
  CANDLE_CHECK(batch >= 1, "batch must be positive");
  auto* is = new std::ifstream(path, std::ios::binary);
  file_ = is;
  CANDLE_CHECK(is->is_open(), "cannot open staged dataset: " + path);
  CANDLE_CHECK(read_pod<std::uint32_t>(*is) == kMagic,
               "not a staged dataset: " + path);
  x_shape_ = read_shape(*is);
  y_shape_ = read_shape(*is);
  CANDLE_CHECK(!x_shape_.empty() && !y_shape_.empty() &&
                   x_shape_[0] == y_shape_[0],
               "staged dataset row counts disagree");
  rows_ = x_shape_[0];
  x_row_elems_ = shape_numel(x_shape_) / rows_;
  y_row_elems_ = shape_numel(y_shape_) / rows_;
  x_data_off_ = is->tellg();
  y_data_off_ = x_data_off_ + static_cast<std::streamoff>(
                                  shape_numel(x_shape_) * sizeof(float));
}

StagedReader::~StagedReader() {
  delete static_cast<std::ifstream*>(file_);
}

Shape StagedReader::sample_shape() const {
  Shape s = x_shape_;
  s.erase(s.begin());
  return s;
}

Shape StagedReader::y_sample_shape() const {
  Shape s = y_shape_;
  s.erase(s.begin());
  return s;
}

void StagedReader::read_row(Index row, std::span<float> x,
                            std::span<float> y) {
  CANDLE_CHECK(row >= 0 && row < rows_, "staged row out of range");
  CANDLE_CHECK(static_cast<Index>(x.size()) == x_row_elems_ &&
                   static_cast<Index>(y.size()) == y_row_elems_,
               "read_row buffer size mismatch");
  auto& is = *static_cast<std::ifstream*>(file_);
  is.seekg(x_data_off_ + static_cast<std::streamoff>(row * x_row_elems_ *
                                                     sizeof(float)));
  is.read(reinterpret_cast<char*>(x.data()),
          static_cast<std::streamsize>(x_row_elems_ * sizeof(float)));
  is.seekg(y_data_off_ + static_cast<std::streamoff>(row * y_row_elems_ *
                                                     sizeof(float)));
  is.read(reinterpret_cast<char*>(y.data()),
          static_cast<std::streamsize>(y_row_elems_ * sizeof(float)));
  CANDLE_CHECK(static_cast<bool>(is), "staged row read failed");
}

Dataset StagedReader::next() {
  auto& is = *static_cast<std::ifstream*>(file_);
  if (cursor_ >= rows_) cursor_ = 0;
  const Index lo = cursor_;
  const Index hi = std::min(rows_, lo + batch_);
  const Index n = hi - lo;
  cursor_ = hi;

  Shape xs = x_shape_;
  xs[0] = n;
  Shape ys = y_shape_;
  ys[0] = n;
  Dataset d{Tensor(xs), Tensor(ys)};
  is.seekg(x_data_off_ + static_cast<std::streamoff>(lo * x_row_elems_ *
                                                     sizeof(float)));
  is.read(reinterpret_cast<char*>(d.x.data()),
          static_cast<std::streamsize>(n * x_row_elems_ * sizeof(float)));
  is.seekg(y_data_off_ + static_cast<std::streamoff>(lo * y_row_elems_ *
                                                     sizeof(float)));
  is.read(reinterpret_cast<char*>(d.y.data()),
          static_cast<std::streamsize>(n * y_row_elems_ * sizeof(float)));
  CANDLE_CHECK(static_cast<bool>(is), "staged batch read failed");
  return d;
}

std::pair<double, double> measure_staging_rates(const Dataset& data,
                                                const std::string& path) {
  Stopwatch w;
  const std::size_t bytes = stage_dataset(data, path);
  const double write_gbs = static_cast<double>(bytes) / w.seconds() / 1e9;
  Stopwatch r;
  const Dataset back = load_staged_dataset(path);
  const double read_gbs = static_cast<double>(bytes) / r.seconds() / 1e9;
  CANDLE_CHECK(back.size() == data.size(), "staging round-trip lost rows");
  return {write_gbs, read_gbs};
}

}  // namespace candle::biodata

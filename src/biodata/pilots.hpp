// Additional pilot workloads matching the paper's application inventory:
//
//   * ExpressionAutoencoder (P1B1-style): unsupervised compression of gene
//     expression.  Expression is a linear mixture of `pathways` latent
//     factors, so an autoencoder with bottleneck >= pathways reconstructs
//     well and one with bottleneck < pathways cannot — a planted,
//     verifiable structure.
//   * TreatmentOutcome ("interpret millions of medical records to identify
//     optimal treatment strategies"): synthetic patient covariates with a
//     heterogeneous treatment effect; models predict outcome risk given
//     (covariates, treatment), and a learned policy is scored against the
//     generative ground truth.
//   * MdFrames (Pilot2-style, "supervise large-scale multi-resolution
//     molecular dynamics simulations"): configurations sampled from a
//     rugged synthetic potential-energy surface with their energies; a
//     surrogate regressor learns the surface and can steer sampling.
#pragma once

#include <functional>
#include <span>
#include <vector>

#include "nn/dataset.hpp"

namespace candle::biodata {

// ---- P1B1-style expression autoencoder -----------------------------------------

struct AutoencoderConfig {
  Index samples = 2000;
  Index genes = 96;
  Index pathways = 6;   // true latent dimensionality
  float noise = 0.15f;  // measurement noise on expression
  std::uint64_t seed = 11;
};

/// x: (samples, genes); y: identical copy of x (reconstruction target).
Dataset make_expression_autoencoder(const AutoencoderConfig& cfg);

// ---- medical-records treatment outcomes ------------------------------------------

struct TreatmentConfig {
  Index samples = 4000;
  Index covariates = 12;  // age, labs, comorbidities, ...
  /// Fraction of patients who received the treatment in the records.
  float treated_fraction = 0.5f;
  float outcome_noise = 0.5f;  // logit noise
  std::uint64_t seed = 12;
};

/// x: (samples, covariates + 1) — the last column is the treatment flag
/// {0,1}; y: (samples, 1) adverse-outcome indicator {0,1}.
Dataset make_treatment_outcome(const TreatmentConfig& cfg);

/// Ground-truth adverse-outcome probability for covariates `x` (length
/// cfg.covariates) under `treated`.  The treatment helps some covariate
/// profiles and harms others (heterogeneous effect), so the optimal policy
/// is covariate-dependent.
double treatment_outcome_probability(const TreatmentConfig& cfg,
                                     std::span<const float> covariates,
                                     bool treated);

/// Expected adverse-outcome rate of a policy (maps covariates -> treat?)
/// over `n_eval` fresh patients drawn from the generative model.
double policy_value(const TreatmentConfig& cfg,
                    const std::function<bool(std::span<const float>)>& policy,
                    Index n_eval, std::uint64_t seed);

// ---- Pilot2-style MD surrogate ------------------------------------------------------

struct MdConfig {
  Index samples = 3000;
  Index dims = 10;      // collective-variable dimensionality
  Index wells = 4;      // metastable basins of the potential
  float temperature = 0.8f;  // sampling spread around basins
  std::uint64_t seed = 13;
};

/// x: (samples, dims) configurations; y: (samples, 1) potential energy.
Dataset make_md_frames(const MdConfig& cfg);

/// The underlying potential energy at configuration `x` (length cfg.dims).
double md_potential(const MdConfig& cfg, std::span<const float> x);

/// Location of the deepest basin (the global minimum the surrogate-guided
/// search should find).
std::vector<float> md_global_minimum(const MdConfig& cfg);

}  // namespace candle::biodata

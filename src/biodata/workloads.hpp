// Synthetic biomedical workload generators standing in for the paper's
// cancer / infectious-disease datasets (see DESIGN.md substitution table).
//
// Each generator plants a *learnable* structure chosen so the systems
// experiments behave like the real workloads:
//   * DrugResponse (Pilot1-like): gene expression is a linear mixture of
//     latent pathway activities; response is a nonlinear interaction
//     between pathway state and drug mechanism.  An MLP regressor fits it;
//     a linear model cannot.
//   * TumorType (NT3-like): 1-D expression profiles with class signatures
//     painted on *contiguous* gene modules, so 1-D convolutions exploit
//     locality that a same-budget MLP wastes parameters rediscovering.
//   * AmrResistance: binary k-mer presence vectors; resistance is a boolean
//     combination of planted mechanism motifs plus label noise — mirroring
//     known/unknown antibiotic-resistance mechanisms.
//   * CompoundScreen: continuous molecular descriptors; activity is a
//     sparse nonlinear function (Friedman-style) thresholded to a highly
//     imbalanced binary label, as in virtual screening.
//
// Determinism: generation is a pure function of the config (incl. seed).
#pragma once

#include <string>

#include "nn/dataset.hpp"

namespace candle::biodata {

// ---- Pilot1-like drug response ------------------------------------------------

struct DrugResponseConfig {
  Index samples = 2000;
  Index genes = 64;             // expression features
  Index pathways = 8;           // latent signalling pathways
  Index drug_descriptors = 16;  // per-sample drug feature block
  float noise = 0.1f;           // observation noise on the response
  std::uint64_t seed = 1;

  Index features() const { return genes + drug_descriptors; }
};

/// x: (samples, genes + drug_descriptors); y: (samples, 1) response in
/// roughly [-2, 2] (a normalized -log(IC50) analogue).
Dataset make_drug_response(const DrugResponseConfig& cfg);

// ---- NT3-like tumor type classification ----------------------------------------

struct TumorTypeConfig {
  Index samples = 1500;
  Index profile_length = 256;  // genes along the "chromosome" axis
  Index classes = 4;
  Index modules_per_class = 3;  // contiguous signature modules
  Index module_width = 12;
  /// Per-sample uniform shift of each module's position in
  /// [-position_jitter, +position_jitter] — models copy-number /
  /// rearrangement variability.  Nonzero jitter is what makes translation-
  /// invariant (convolutional) models structurally superior to MLPs here.
  Index position_jitter = 0;
  float signal = 1.5f;  // signature amplitude over N(0,1) background
  float noise = 1.0f;
  std::uint64_t seed = 2;
};

/// x: (samples, 1, profile_length) for Conv1D models; y: (samples) class
/// indices as floats.  Classes are balanced round-robin.
Dataset make_tumor_type(const TumorTypeConfig& cfg);

/// Same data flattened to (samples, profile_length) for MLP baselines.
Dataset make_tumor_type_flat(const TumorTypeConfig& cfg);

// ---- antimicrobial resistance ---------------------------------------------------

struct AmrConfig {
  Index samples = 2000;
  Index kmers = 128;              // binary presence features
  Index mechanisms = 3;           // independent resistance mechanisms
  Index kmers_per_mechanism = 4;  // motif size (gene-block k-mers)
  float mechanism_prevalence = 0.15f;  // P(a genome carries mechanism m)
  float spurious_rate = 0.05f;    // P(motif k-mer present w/o the gene)
  float background_rate = 0.3f;   // P(non-motif k-mer present)
  float label_noise = 0.05f;      // flip probability (phenotyping error)
  std::uint64_t seed = 3;
};

/// x: (samples, kmers) in {0,1}; y: (samples, 1) in {0,1}.
///
/// Generative story (mirrors how resistance genes appear in assemblies):
/// each genome carries mechanism m with probability `mechanism_prevalence`;
/// carrying it sets ALL of that mechanism's k-mer columns to 1 (the gene's
/// k-mers co-occur as a block); otherwise those columns appear only at the
/// low `spurious_rate`.  A sample is resistant iff any mechanism's block is
/// fully present; phenotype labels are then flipped with `label_noise`.
/// Mechanisms occupy the first mechanisms*kmers_per_mechanism columns.
Dataset make_amr(const AmrConfig& cfg);

/// Ground-truth resistance for one feature row (pre-noise); exposed so
/// tests and the screening example can audit model behaviour.
bool amr_ground_truth(const AmrConfig& cfg, std::span<const float> row);

// ---- compound activity screening -------------------------------------------------

struct CompoundScreenConfig {
  Index samples = 4000;
  Index descriptors = 32;
  float active_fraction = 0.1f;  // approximate positive rate
  float label_noise = 0.02f;
  std::uint64_t seed = 4;
};

/// x: (samples, descriptors) continuous; y: (samples, 1) in {0,1}, with
/// roughly `active_fraction` positives.  Activity depends nonlinearly on
/// the first five descriptors only (Friedman #1 surface).
Dataset make_compound_screen(const CompoundScreenConfig& cfg);

// ---- histology-like imaging -------------------------------------------------------

struct HistologyConfig {
  Index samples = 800;
  Index image_size = 28;  // H = W
  Index classes = 3;
  Index blobs_per_class = 3;  // class-specific texture blobs
  float blob_sigma = 2.0f;    // blob radius (pixels)
  float signal = 2.0f;
  float noise = 1.0f;
  std::uint64_t seed = 5;
};

/// x: (samples, 1, size, size) grayscale "tissue patches"; y: (samples)
/// class indices.  Each class paints a characteristic constellation of
/// Gaussian blobs whose positions jitter per sample — the tumor-imaging
/// diagnosis modality the paper cites ("automated systems are routinely
/// outperforming human expertise"), in miniature for Conv2D models.
Dataset make_histology(const HistologyConfig& cfg);

// ---- catalogue -------------------------------------------------------------------

/// Metadata used by benchmark tables.
struct WorkloadInfo {
  std::string name;
  std::string task;  // "regression" | "classification" | "binary"
  Index feature_bytes_per_sample;
};

WorkloadInfo drug_response_info(const DrugResponseConfig& cfg);
WorkloadInfo tumor_type_info(const TumorTypeConfig& cfg);
WorkloadInfo amr_info(const AmrConfig& cfg);
WorkloadInfo compound_screen_info(const CompoundScreenConfig& cfg);

}  // namespace candle::biodata

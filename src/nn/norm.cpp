#include "nn/norm.hpp"

#include <cmath>

namespace candle {

// ---- BatchNorm -----------------------------------------------------------------

Shape BatchNorm::build(const Shape& input, Pcg32& /*rng*/) {
  CANDLE_CHECK(input.size() == 1,
               "BatchNorm expects flat input, got " + shape_to_string(input));
  features_ = input[0];
  gamma_ = Tensor::ones({features_});
  beta_ = Tensor::zeros({features_});
  dgamma_ = Tensor::zeros({features_});
  dbeta_ = Tensor::zeros({features_});
  running_mean_ = Tensor::zeros({features_});
  running_var_ = Tensor::ones({features_});
  return input;
}

Tensor BatchNorm::infer(const Tensor& x) const {
  CANDLE_CHECK(x.ndim() == 2 && x.dim(1) == features_,
               "BatchNorm forward shape mismatch");
  const Index b = x.dim(0);
  Tensor y(x.shape());
  for (Index i = 0; i < b; ++i) {
    const float* xr = x.data() + i * features_;
    float* yr = y.data() + i * features_;
    for (Index f = 0; f < features_; ++f) {
      const float inv =
          1.0f / std::sqrt(running_var_[f] + eps_);
      yr[f] = gamma_[f] * (xr[f] - running_mean_[f]) * inv + beta_[f];
    }
  }
  return y;
}

Tensor BatchNorm::forward(const Tensor& x, bool training) {
  if (!training) {
    Tensor y = infer(x);
    xhat_cache_ = Tensor();  // invalidate training cache
    return y;
  }

  CANDLE_CHECK(x.ndim() == 2 && x.dim(1) == features_,
               "BatchNorm forward shape mismatch");
  const Index b = x.dim(0);
  Tensor y(x.shape());
  CANDLE_CHECK(b >= 2, "BatchNorm training needs batch >= 2");
  xhat_cache_ = Tensor(x.shape());
  inv_std_cache_.assign(static_cast<std::size_t>(features_), 0.0f);
  for (Index f = 0; f < features_; ++f) {
    double mean = 0.0;
    for (Index i = 0; i < b; ++i) mean += x.at(i, f);
    mean /= static_cast<double>(b);
    double var = 0.0;
    for (Index i = 0; i < b; ++i) {
      const double d = x.at(i, f) - mean;
      var += d * d;
    }
    var /= static_cast<double>(b);
    const float inv = 1.0f / std::sqrt(static_cast<float>(var) + eps_);
    inv_std_cache_[static_cast<std::size_t>(f)] = inv;
    for (Index i = 0; i < b; ++i) {
      const float xh = (x.at(i, f) - static_cast<float>(mean)) * inv;
      xhat_cache_.at(i, f) = xh;
      y.at(i, f) = gamma_[f] * xh + beta_[f];
    }
    running_mean_[f] = momentum_ * running_mean_[f] +
                       (1.0f - momentum_) * static_cast<float>(mean);
    running_var_[f] = momentum_ * running_var_[f] +
                      (1.0f - momentum_) * static_cast<float>(var);
  }
  return y;
}

Tensor BatchNorm::backward(const Tensor& dy) {
  CANDLE_CHECK(xhat_cache_.numel() > 1,
               "BatchNorm backward requires a training forward");
  CANDLE_CHECK(dy.same_shape(xhat_cache_), "BatchNorm backward shape mismatch");
  const Index b = dy.dim(0);
  const float inv_b = 1.0f / static_cast<float>(b);
  Tensor dx(dy.shape());
  dgamma_.fill(0.0f);
  dbeta_.fill(0.0f);
  for (Index f = 0; f < features_; ++f) {
    float sum_dy = 0.0f, sum_dy_xhat = 0.0f;
    for (Index i = 0; i < b; ++i) {
      sum_dy += dy.at(i, f);
      sum_dy_xhat += dy.at(i, f) * xhat_cache_.at(i, f);
    }
    dgamma_[f] = sum_dy_xhat;
    dbeta_[f] = sum_dy;
    const float g_inv =
        gamma_[f] * inv_std_cache_[static_cast<std::size_t>(f)];
    for (Index i = 0; i < b; ++i) {
      // Standard fused batchnorm gradient.
      dx.at(i, f) = g_inv * (dy.at(i, f) - inv_b * sum_dy -
                             inv_b * xhat_cache_.at(i, f) * sum_dy_xhat);
    }
  }
  return dx;
}

// ---- LayerNorm -----------------------------------------------------------------

Shape LayerNorm::build(const Shape& input, Pcg32& /*rng*/) {
  CANDLE_CHECK(input.size() == 1,
               "LayerNorm expects flat input, got " + shape_to_string(input));
  features_ = input[0];
  gamma_ = Tensor::ones({features_});
  beta_ = Tensor::zeros({features_});
  dgamma_ = Tensor::zeros({features_});
  dbeta_ = Tensor::zeros({features_});
  return input;
}

Tensor LayerNorm::forward(const Tensor& x, bool /*training*/) {
  CANDLE_CHECK(x.ndim() == 2 && x.dim(1) == features_,
               "LayerNorm forward shape mismatch");
  const Index b = x.dim(0);
  Tensor y(x.shape());
  xhat_cache_ = Tensor(x.shape());
  inv_std_cache_.assign(static_cast<std::size_t>(b), 0.0f);
  const float inv_f = 1.0f / static_cast<float>(features_);
  for (Index i = 0; i < b; ++i) {
    const float* xr = x.data() + i * features_;
    double mean = 0.0;
    for (Index f = 0; f < features_; ++f) mean += xr[f];
    mean *= inv_f;
    double var = 0.0;
    for (Index f = 0; f < features_; ++f) {
      const double d = xr[f] - mean;
      var += d * d;
    }
    var *= inv_f;
    const float inv = 1.0f / std::sqrt(static_cast<float>(var) + eps_);
    inv_std_cache_[static_cast<std::size_t>(i)] = inv;
    for (Index f = 0; f < features_; ++f) {
      const float xh = (xr[f] - static_cast<float>(mean)) * inv;
      xhat_cache_.at(i, f) = xh;
      y.at(i, f) = gamma_[f] * xh + beta_[f];
    }
  }
  return y;
}

Tensor LayerNorm::infer(const Tensor& x) const {
  CANDLE_CHECK(x.ndim() == 2 && x.dim(1) == features_,
               "LayerNorm forward shape mismatch");
  const Index b = x.dim(0);
  Tensor y(x.shape());
  const float inv_f = 1.0f / static_cast<float>(features_);
  for (Index i = 0; i < b; ++i) {
    const float* xr = x.data() + i * features_;
    double mean = 0.0;
    for (Index f = 0; f < features_; ++f) mean += xr[f];
    mean *= inv_f;
    double var = 0.0;
    for (Index f = 0; f < features_; ++f) {
      const double d = xr[f] - mean;
      var += d * d;
    }
    var *= inv_f;
    const float inv = 1.0f / std::sqrt(static_cast<float>(var) + eps_);
    for (Index f = 0; f < features_; ++f) {
      const float xh = (xr[f] - static_cast<float>(mean)) * inv;
      y.at(i, f) = gamma_[f] * xh + beta_[f];
    }
  }
  return y;
}

Tensor LayerNorm::backward(const Tensor& dy) {
  CANDLE_CHECK(dy.same_shape(xhat_cache_), "LayerNorm backward shape mismatch");
  const Index b = dy.dim(0);
  const float inv_f = 1.0f / static_cast<float>(features_);
  Tensor dx(dy.shape());
  dgamma_.fill(0.0f);
  dbeta_.fill(0.0f);
  for (Index i = 0; i < b; ++i) {
    float sum_g = 0.0f, sum_g_xhat = 0.0f;
    for (Index f = 0; f < features_; ++f) {
      const float g = dy.at(i, f) * gamma_[f];
      sum_g += g;
      sum_g_xhat += g * xhat_cache_.at(i, f);
      dgamma_[f] += dy.at(i, f) * xhat_cache_.at(i, f);
      dbeta_[f] += dy.at(i, f);
    }
    const float inv = inv_std_cache_[static_cast<std::size_t>(i)];
    for (Index f = 0; f < features_; ++f) {
      const float g = dy.at(i, f) * gamma_[f];
      dx.at(i, f) = inv * (g - inv_f * sum_g -
                           inv_f * xhat_cache_.at(i, f) * sum_g_xhat);
    }
  }
  return dx;
}

std::unique_ptr<Layer> make_batchnorm(float momentum, float eps) {
  return std::make_unique<BatchNorm>(momentum, eps);
}
std::unique_ptr<Layer> make_layernorm(float eps) {
  return std::make_unique<LayerNorm>(eps);
}

}  // namespace candle

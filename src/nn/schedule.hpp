// Learning-rate schedules (the CANDLE training scripts all decayed their
// learning rates; warmup became standard for the large-batch training that
// data parallelism forces — Goyal et al.'s linear-warmup recipe is the
// canonical fix for the strong-scaling batch growth in claim C3).
#pragma once

#include <functional>
#include <memory>
#include <string>

#include "core/tensor.hpp"

namespace candle {

/// Maps (epoch, base_lr) -> lr for that epoch.  Epochs are 0-based.
class LrSchedule {
 public:
  virtual ~LrSchedule() = default;
  virtual std::string name() const = 0;
  virtual float lr(Index epoch, float base_lr) const = 0;
};

/// lr = base.
class ConstantLr : public LrSchedule {
 public:
  std::string name() const override { return "constant"; }
  float lr(Index /*epoch*/, float base_lr) const override { return base_lr; }
};

/// lr = base * factor^(epoch / step) (integer division).
class StepDecay : public LrSchedule {
 public:
  StepDecay(Index step, float factor);
  std::string name() const override { return "step"; }
  float lr(Index epoch, float base_lr) const override;

 private:
  Index step_;
  float factor_;
};

/// lr = base * decay^epoch.
class ExponentialDecay : public LrSchedule {
 public:
  explicit ExponentialDecay(float decay);
  std::string name() const override { return "exponential"; }
  float lr(Index epoch, float base_lr) const override;

 private:
  float decay_;
};

/// Linear warmup over `warmup` epochs to base, then cosine decay to
/// `floor * base` at `total` epochs.
class WarmupCosine : public LrSchedule {
 public:
  WarmupCosine(Index warmup, Index total, float floor = 0.0f);
  std::string name() const override { return "warmup-cosine"; }
  float lr(Index epoch, float base_lr) const override;

 private:
  Index warmup_, total_;
  float floor_;
};

std::unique_ptr<LrSchedule> make_constant_lr();
std::unique_ptr<LrSchedule> make_step_decay(Index step, float factor);
std::unique_ptr<LrSchedule> make_exponential_decay(float decay);
std::unique_ptr<LrSchedule> make_warmup_cosine(Index warmup, Index total,
                                               float floor = 0.0f);

}  // namespace candle

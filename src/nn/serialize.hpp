// Training-state checkpointing: save/load a built model's parameters — and
// optionally the full optimizer state — to a small binary format.  HPC
// training campaigns checkpoint constantly (node-hours are preemptible, HPO
// promotes configurations across rungs, and at 4096-node scale the job MTBF
// is hours), so the writer is crash-safe and the reader is paranoid:
//
//   * writes go to `<path>.tmp` and are atomically renamed into place, so a
//     writer killed mid-checkpoint never clobbers the previous good file;
//   * the payload carries a trailing CRC32 that is verified before any byte
//     is trusted, so truncation or bit-rot fails loudly instead of silently
//     seeding training with garbage weights.
//
// Format v2 (little-endian), CRC32 over everything before the crc field:
//   magic     u32   0xCA9D1E02
//   step      u64   committed optimizer steps at save time
//   has_opt   u8    1 if an optimizer section follows the parameters
//   count     u64   number of parameter tensors
//   per tensor: rank u32, dims i64[rank], data f32[numel]
//   if has_opt:
//     name_len u32, name bytes          (optimizer kind, e.g. "adam")
//     tcount   u64, tensors as above    (moment buffers)
//     ccount   u64, counters i64[ccount]
//   crc       u32
//
// Format v3 (magic 0xCA9D1E03) appends a data-stream cursor section after
// the optimizer section, still inside the CRC:
//   cursor_epoch u64, cursor_step u64, stream_seed u64
// The cursor records the ingest stream position of the NEXT batch (see
// data/sample_list.hpp), which is what lets a restarted run resume the
// sample stream bit-identically with an O(1) seek instead of replaying
// every prior epoch.  Plain save_checkpoint keeps writing v2; only the
// cursor-carrying overload emits v3.  The loader accepts v1, v2, and v3.
//
// Format v1 (magic 0xCA9D1E01: count + tensors, no step/CRC/optimizer) is
// still readable for weights-only loads.
#pragma once

#include <string>

#include "nn/model.hpp"

namespace candle {

/// Metadata recovered from a checkpoint file.
struct CheckpointMeta {
  std::uint32_t version = 2;    // 1 = legacy weights-only, 2/3 = current
  Index step = 0;               // committed steps recorded at save time
  bool has_optimizer = false;   // file carries optimizer state

  // v3 stream-cursor section (zero/false for v1/v2 files).
  bool has_cursor = false;      // file carries an ingest stream cursor
  Index cursor_epoch = 0;       // epoch of the next batch at save time
  Index cursor_step = 0;        // step within cursor_epoch of the next batch
  std::uint64_t stream_seed = 0;  // seed of the permutation stream
};

/// Write all parameters of a built model (v2, no optimizer section).
/// Atomic: the destination is replaced only after a complete, checksummed
/// file exists.  Throws on I/O failure.
void save_weights(const Model& model, const std::string& path);

/// Load parameters into a built model whose architecture matches the file
/// (same tensor count and shapes).  Accepts v1 and v2 files; any optimizer
/// section is ignored.  Throws on mismatch, corruption, or I/O failure.
void load_weights(Model& model, const std::string& path);

/// Write a full training-state checkpoint: model parameters plus the
/// optimizer's exported state and the committed step count.  Pass a null
/// optimizer for a weights-only v2 file.
void save_checkpoint(const Model& model, const Optimizer* optimizer,
                     Index step, const std::string& path);

/// Write a v3 checkpoint that additionally records the ingest stream
/// position: the (epoch, step) cursor of the NEXT batch plus the seed of
/// the permutation stream it indexes into.  Restoring and seeking the
/// ingest reader to this cursor resumes training on the exact sample
/// sequence the interrupted run would have consumed.
void save_checkpoint(const Model& model, const Optimizer* optimizer,
                     Index step, Index cursor_epoch, Index cursor_step,
                     std::uint64_t stream_seed, const std::string& path);

/// Restore a training-state checkpoint.  Parameters load into `model`; if
/// the file has an optimizer section and `optimizer` is non-null, its state
/// is imported (the optimizer kind must match).  Returns the file metadata
/// (step count, version, whether optimizer state was present).
CheckpointMeta load_checkpoint(Model& model, Optimizer* optimizer,
                               const std::string& path);

}  // namespace candle

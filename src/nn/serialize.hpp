// Weight checkpointing: save/load a built model's parameters to a small
// binary format.  HPC training campaigns checkpoint constantly (node-hours
// are preemptible and HPO promotes configurations across rungs); this is
// the minimal faithful mechanism.
//
// Format (little-endian):
//   magic   u32   0xCA9D1E01
//   count   u64   number of parameter tensors
//   per tensor: rank u32, dims i64[rank], data f32[numel]
#pragma once

#include <string>

#include "nn/model.hpp"

namespace candle {

/// Write all parameters of a built model.  Throws on I/O failure.
void save_weights(const Model& model, const std::string& path);

/// Load parameters into a built model whose architecture matches the file
/// (same tensor count and shapes).  Throws on mismatch or I/O failure.
void load_weights(Model& model, const std::string& path);

}  // namespace candle

#include "nn/model.hpp"

#include <algorithm>

#include "nn/batching.hpp"

namespace candle {

Model& Model::add(std::unique_ptr<Layer> layer) {
  CANDLE_CHECK(!built_, "cannot add layers after build()");
  CANDLE_CHECK(layer != nullptr, "null layer");
  layers_.push_back(std::move(layer));
  return *this;
}

void Model::build(Shape input_shape, std::uint64_t seed) {
  CANDLE_CHECK(!built_, "model already built");
  CANDLE_CHECK(!layers_.empty(), "model has no layers");
  input_shape_ = input_shape;
  Pcg32 rng(seed, 0xb111d);
  Shape shape = std::move(input_shape);
  std::uint64_t salt = 0;
  for (auto& layer : layers_) {
    // Each layer draws from its own split stream so inserting a layer does
    // not perturb the initialization of the layers after it.
    Pcg32 layer_rng = rng.split(salt++);
    shape = layer->build(shape, layer_rng);
  }
  output_shape_ = std::move(shape);
  built_ = true;
}

Tensor Model::forward(const Tensor& x, bool training) {
  CANDLE_CHECK(built_, "call build() before forward()");
  Tensor h = x;
  for (auto& layer : layers_) h = layer->forward(h, training);
  return h;
}

Tensor Model::infer(const Tensor& x) const {
  CANDLE_CHECK(built_, "call build() before infer()");
  Tensor h = x;
  for (const auto& layer : layers_) h = layer->infer(h);
  return h;
}

Tensor Model::backward(const Tensor& dy) { return backward(dy, nullptr); }

Tensor Model::backward(const Tensor& dy, const GradReadyHook& on_grad_ready) {
  CANDLE_CHECK(built_, "call build() before backward()");
  Tensor d = dy;
  for (Index i = num_layers() - 1; i >= 0; --i) {
    d = layers_[static_cast<std::size_t>(i)]->backward(d);
    if (on_grad_ready) on_grad_ready(i);
  }
  return d;
}

float Model::train_batch(const Tensor& x, const Tensor& y, const Loss& loss,
                         Optimizer& opt, float loss_scale) {
  CANDLE_CHECK(loss_scale > 0.0f, "loss scale must be positive");
  const Tensor pred = forward(x, /*training=*/true);
  const float value = loss.value(pred, y);
  Tensor dy = loss.grad(pred, y);
  if (loss_scale != 1.0f) dy.scale(loss_scale);
  backward(dy);
  if (loss_scale != 1.0f) scale_grads(1.0f / loss_scale);
  const auto ps = params();
  const auto gs = grads();
  opt.step(ps, gs);
  return value;
}

float Model::evaluate(const Tensor& x, const Tensor& y, const Loss& loss,
                      Index batch_size) {
  CANDLE_CHECK(batch_size >= 1, "batch size must be positive");
  const Index n = x.dim(0);
  double acc = 0.0;
  // Evaluate in slices so activation memory stays bounded.
  for (Index lo = 0; lo < n; lo += batch_size) {
    const Index hi = std::min(n, lo + batch_size);
    const Index rows = hi - lo;
    Shape xs = x.shape();
    xs[0] = rows;
    const Index xstride = x.numel() / n;
    Tensor xb(xs, std::vector<float>(x.data() + lo * xstride,
                                     x.data() + hi * xstride));
    Shape ys = y.shape();
    ys[0] = rows;
    const Index ystride = y.numel() / n;
    Tensor yb(ys, std::vector<float>(y.data() + lo * ystride,
                                     y.data() + hi * ystride));
    acc += static_cast<double>(loss.value(forward(xb, false), yb)) *
           static_cast<double>(rows);
  }
  return static_cast<float>(acc / static_cast<double>(n));
}

Tensor Model::predict(const Tensor& x, Index batch_size) const {
  CANDLE_CHECK(built_, "call build() before predict()");
  CANDLE_CHECK(batch_size >= 1, "batch size must be positive");
  const Index n = x.dim(0);
  Shape out_shape = output_shape_;
  out_shape.insert(out_shape.begin(), n);
  Tensor out(out_shape);
  if (n == 0) return out;
  const Index ostride = out.numel() / n;
  BatchAssembler assembler(input_shape_, std::min(batch_size, n));
  for (Index lo = 0; lo < n; lo += batch_size) {
    const Index hi = std::min(n, lo + batch_size);
    const Tensor yb = infer(assembler.batch_from(x, lo, hi));
    std::copy(yb.data(), yb.data() + yb.numel(), out.data() + lo * ostride);
  }
  return out;
}

std::vector<Tensor*> Model::params() {
  std::vector<Tensor*> out;
  for (auto& layer : layers_) {
    for (Tensor* p : layer->params()) out.push_back(p);
  }
  return out;
}

std::vector<Tensor*> Model::grads() {
  std::vector<Tensor*> out;
  for (auto& layer : layers_) {
    for (Tensor* g : layer->grads()) out.push_back(g);
  }
  return out;
}

Index Model::num_params() const {
  Index n = 0;
  for (const auto& layer : layers_) {
    for (Tensor* p : const_cast<Layer&>(*layer).params()) n += p->numel();
  }
  return n;
}

std::vector<Model::GradExtent> Model::grad_extents() const {
  std::vector<GradExtent> out;
  out.reserve(layers_.size());
  Index off = 0;
  for (const auto& layer : layers_) {
    GradExtent e;
    e.offset = off;
    for (Tensor* g : const_cast<Layer&>(*layer).grads()) e.numel += g->numel();
    off += e.numel;
    out.push_back(e);
  }
  return out;
}

void Model::copy_layer_grads_to(Index layer, std::span<float> out) const {
  CANDLE_CHECK(layer >= 0 && layer < num_layers(), "layer index out of range");
  Index off = 0;
  for (Tensor* g :
       const_cast<Layer&>(*layers_[static_cast<std::size_t>(layer)]).grads()) {
    CANDLE_CHECK(off + g->numel() <= static_cast<Index>(out.size()),
                 "layer grad buffer too small");
    std::copy(g->data(), g->data() + g->numel(), out.data() + off);
    off += g->numel();
  }
  CANDLE_CHECK(off == static_cast<Index>(out.size()),
               "layer grad buffer size mismatch");
}

void Model::copy_grads_to(std::span<float> out) const {
  Index off = 0;
  for (const auto& layer : layers_) {
    for (Tensor* g : const_cast<Layer&>(*layer).grads()) {
      CANDLE_CHECK(off + g->numel() <= static_cast<Index>(out.size()),
                   "grad buffer too small");
      std::copy(g->data(), g->data() + g->numel(), out.data() + off);
      off += g->numel();
    }
  }
  CANDLE_CHECK(off == static_cast<Index>(out.size()),
               "grad buffer size mismatch");
}

void Model::set_grads_from(std::span<const float> in) {
  Index off = 0;
  for (auto& layer : layers_) {
    for (Tensor* g : layer->grads()) {
      CANDLE_CHECK(off + g->numel() <= static_cast<Index>(in.size()),
                   "grad buffer too small");
      std::copy(in.data() + off, in.data() + off + g->numel(), g->data());
      off += g->numel();
    }
  }
  CANDLE_CHECK(off == static_cast<Index>(in.size()),
               "grad buffer size mismatch");
}

void Model::scale_grads(float factor) {
  for (auto& layer : layers_) {
    for (Tensor* g : layer->grads()) g->scale(factor);
  }
}

void Model::copy_weights_to(std::span<float> out) const {
  Index off = 0;
  for (const auto& layer : layers_) {
    for (Tensor* p : const_cast<Layer&>(*layer).params()) {
      CANDLE_CHECK(off + p->numel() <= static_cast<Index>(out.size()),
                   "weight buffer too small");
      std::copy(p->data(), p->data() + p->numel(), out.data() + off);
      off += p->numel();
    }
  }
  CANDLE_CHECK(off == static_cast<Index>(out.size()),
               "weight buffer size mismatch");
}

void Model::set_weights_from(std::span<const float> in) {
  Index off = 0;
  for (auto& layer : layers_) {
    for (Tensor* p : layer->params()) {
      CANDLE_CHECK(off + p->numel() <= static_cast<Index>(in.size()),
                   "weight buffer too small");
      std::copy(in.data() + off, in.data() + off + p->numel(), p->data());
      off += p->numel();
    }
  }
  CANDLE_CHECK(off == static_cast<Index>(in.size()),
               "weight buffer size mismatch");
}

double Model::flops_per_sample() const {
  double f = 0.0;
  for (const auto& layer : layers_) f += layer->flops_per_sample();
  return f;
}

void Model::set_compute_precision(Precision p) {
  precision_ = p;
  for (auto& layer : layers_) layer->set_precision(p);
}

std::string Model::summary() const {
  std::string s;
  for (std::size_t i = 0; i < layers_.size(); ++i) {
    if (i > 0) s += " -> ";
    s += layers_[i]->name();
  }
  return s;
}

}  // namespace candle

// Reusable batch-tensor assembly for the inference paths.
//
// Model::predict and the serving-side dynamic batcher (src/serve/batcher)
// both need the same operation — copy a set of per-sample rows into one
// contiguous (rows, sample...) tensor — and both need it allocation-free at
// steady state: predict slices a dataset into fixed-size batches with one
// ragged tail, and the batcher coalesces whatever requests are queued when
// the batch window closes.  BatchAssembler owns a single buffer sized for
// the largest batch and cycles full and tail batches through it via
// Tensor::resize_dim0, so after the first batch no heap allocation happens
// on the assembly path.  Routing both callers through this one helper is
// also what makes the dynamic batcher's coalesced batches bit-identical to
// serial predict slices.
#pragma once

#include <span>
#include <vector>

#include "core/tensor.hpp"

namespace candle {

class BatchAssembler {
 public:
  /// `sample_shape` is the per-sample shape (no batch dimension); the buffer
  /// is allocated once for `max_rows` rows.
  BatchAssembler(Shape sample_shape, Index max_rows);

  Index max_rows() const { return max_rows_; }
  Index sample_numel() const { return sample_numel_; }

  /// Start a batch of `rows` rows (1 <= rows <= max_rows()) and return the
  /// buffer shaped (rows, sample...).  Row contents are stale until written
  /// through set_row() or gather().
  Tensor& begin(Index rows);

  /// Copy one flattened sample into row `row` of the current batch.
  void set_row(Index row, std::span<const float> sample);

  /// Assemble rows [lo, hi) of dataset tensor `x` (leading dim = samples,
  /// trailing dims matching the sample shape) into the buffer and return it.
  const Tensor& batch_from(const Tensor& x, Index lo, Index hi);

  const Tensor& batch() const { return batch_; }

 private:
  Shape sample_shape_;
  Index max_rows_;
  Index sample_numel_;
  Tensor batch_;
};

/// Fixed-capacity slot matrix for continuous batching (DESIGN.md
/// "Continuous batching"): rows are *admitted* into the lowest free slot
/// and *evicted* individually, instead of closing whole batches.  The
/// serving engine's continuous scheduler admits queued requests into free
/// slots at every iteration and evicts finished rows without stopping the
/// batch — which is what keeps workers running near-full batches at high
/// load and single-row batches with no fill-wait at low load.
///
/// Storage is slot-stable: a row's bytes live at slot * sample_numel of the
/// slot matrix from admit to evict, untouched by other slots' churn.
/// Compute kernels want contiguous batches, so gather() compacts the
/// occupied slots (ascending slot order) into a second preallocated buffer
/// cycled via Tensor::resize_dim0; gather(subset) compacts an arbitrary
/// slot subset (the row-scope NaN-recompute path).  Both tensors are
/// allocated once in the constructor, so the steady-state
/// admit/gather/evict cycle performs no heap allocation — the continuous
/// analogue of BatchAssembler's buffer reuse.  Row independence of the
/// forward GEMMs (each output row is a dot-product family over its own
/// input row) is what makes any gather order bit-identical to serial
/// predict.
///
/// Not thread-safe: one assembler per engine worker, like BatchAssembler.
class RowSlotAssembler {
 public:
  /// `sample_shape` is the per-sample shape (no batch dimension); both the
  /// slot matrix (capacity rows) and the gather buffer are allocated here.
  RowSlotAssembler(Shape sample_shape, Index capacity);

  Index capacity() const { return capacity_; }
  Index occupied() const { return occupied_count_; }
  Index free_slots() const { return capacity_ - occupied_count_; }
  Index sample_numel() const { return sample_numel_; }
  bool slot_occupied(Index slot) const;

  /// Copy one flattened sample into the lowest free slot and return its
  /// slot id.  Lowest-free placement is deterministic, which keeps chaos
  /// replays and bit-identity checks reproducible.  Throws when full.
  Index admit(std::span<const float> sample);

  /// Free one occupied slot (its bytes stay until overwritten by a later
  /// admit; the slot id is immediately reusable).
  void evict(Index slot);

  /// Compact every occupied slot (ascending slot order) into the gather
  /// buffer, shaped (occupied, sample...).  At least one slot must be
  /// occupied.  gathered_slots()[i] is the slot backing gathered row i.
  const Tensor& gather();

  /// Compact an explicit subset of occupied slots, in the order given.
  const Tensor& gather(std::span<const Index> slots);

  /// Slot ids backing the rows of the most recent gather, in row order.
  std::span<const Index> gathered_slots() const {
    return {gathered_.data(), gathered_.size()};
  }

 private:
  Shape sample_shape_;
  Index capacity_;
  Index sample_numel_;
  Index occupied_count_ = 0;
  Index lowest_free_ = 0;  // search hint: no free slot below this index
  Tensor slots_;           // (capacity, sample...), slot-stable storage
  Tensor batch_;           // (occupied, sample...), cycled via resize_dim0
  std::vector<char> occupied_;
  std::vector<Index> gathered_;
};

}  // namespace candle

// Reusable batch-tensor assembly for the inference paths.
//
// Model::predict and the serving-side dynamic batcher (src/serve/batcher)
// both need the same operation — copy a set of per-sample rows into one
// contiguous (rows, sample...) tensor — and both need it allocation-free at
// steady state: predict slices a dataset into fixed-size batches with one
// ragged tail, and the batcher coalesces whatever requests are queued when
// the batch window closes.  BatchAssembler owns a single buffer sized for
// the largest batch and cycles full and tail batches through it via
// Tensor::resize_dim0, so after the first batch no heap allocation happens
// on the assembly path.  Routing both callers through this one helper is
// also what makes the dynamic batcher's coalesced batches bit-identical to
// serial predict slices.
#pragma once

#include <span>

#include "core/tensor.hpp"

namespace candle {

class BatchAssembler {
 public:
  /// `sample_shape` is the per-sample shape (no batch dimension); the buffer
  /// is allocated once for `max_rows` rows.
  BatchAssembler(Shape sample_shape, Index max_rows);

  Index max_rows() const { return max_rows_; }
  Index sample_numel() const { return sample_numel_; }

  /// Start a batch of `rows` rows (1 <= rows <= max_rows()) and return the
  /// buffer shaped (rows, sample...).  Row contents are stale until written
  /// through set_row() or gather().
  Tensor& begin(Index rows);

  /// Copy one flattened sample into row `row` of the current batch.
  void set_row(Index row, std::span<const float> sample);

  /// Assemble rows [lo, hi) of dataset tensor `x` (leading dim = samples,
  /// trailing dims matching the sample shape) into the buffer and return it.
  const Tensor& batch_from(const Tensor& x, Index lo, Index hi);

  const Tensor& batch() const { return batch_; }

 private:
  Shape sample_shape_;
  Index max_rows_;
  Index sample_numel_;
  Tensor batch_;
};

}  // namespace candle

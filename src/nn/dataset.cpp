#include "nn/dataset.hpp"

#include <algorithm>
#include <cmath>
#include <numeric>

namespace candle {

namespace {

void gather_rows_into(const Tensor& t, std::span<const Index> idx,
                      Tensor& out) {
  CANDLE_CHECK(t.ndim() >= 1, "gather needs at least rank 1");
  const Index n = t.dim(0);
  const Index stride = n > 0 ? t.numel() / n : 0;
  CANDLE_CHECK(out.ndim() == t.ndim() &&
                   out.dim(0) == static_cast<Index>(idx.size()) &&
                   out.numel() == static_cast<Index>(idx.size()) * stride,
               "gather_into destination shape mismatch");
  for (std::size_t i = 0; i < idx.size(); ++i) {
    const Index r = idx[i];
    CANDLE_CHECK(r >= 0 && r < n, "gather row index out of range");
    std::copy(t.data() + r * stride, t.data() + (r + 1) * stride,
              out.data() + static_cast<Index>(i) * stride);
  }
}

Tensor gather_rows(const Tensor& t, std::span<const Index> idx) {
  CANDLE_CHECK(t.ndim() >= 1, "gather needs at least rank 1");
  Shape s = t.shape();
  s[0] = static_cast<Index>(idx.size());
  Tensor out(s);
  gather_rows_into(t, idx, out);
  return out;
}

}  // namespace

Dataset slice(const Dataset& d, Index lo, Index hi) {
  CANDLE_CHECK(lo >= 0 && lo <= hi && hi <= d.size(), "bad slice range");
  std::vector<Index> idx(static_cast<std::size_t>(hi - lo));
  std::iota(idx.begin(), idx.end(), lo);
  return gather(d, idx);
}

Dataset gather(const Dataset& d, std::span<const Index> idx) {
  return {gather_rows(d.x, idx), gather_rows(d.y, idx)};
}

void gather_into(const Dataset& d, std::span<const Index> idx, Dataset& out) {
  gather_rows_into(d.x, idx, out.x);
  gather_rows_into(d.y, idx, out.y);
}

std::pair<Dataset, Dataset> split(const Dataset& d, double first_fraction,
                                  std::uint64_t seed) {
  CANDLE_CHECK(first_fraction >= 0.0 && first_fraction <= 1.0,
               "split fraction must be in [0,1]");
  std::vector<Index> order(static_cast<std::size_t>(d.size()));
  std::iota(order.begin(), order.end(), 0);
  Pcg32 rng(seed, 0x5911f);
  std::shuffle(order.begin(), order.end(), rng);
  const auto cut = static_cast<std::size_t>(
      std::llround(first_fraction * static_cast<double>(d.size())));
  const std::span<const Index> first(order.data(), cut);
  const std::span<const Index> second(order.data() + cut,
                                      order.size() - cut);
  return {gather(d, first), gather(d, second)};
}

BatchIterator::BatchIterator(const Dataset& data, Index batch_size,
                             bool shuffle, std::uint64_t seed)
    : data_(&data),
      batch_size_(batch_size),
      shuffle_(shuffle),
      rng_(seed, 0xba7c4) {
  CANDLE_CHECK(batch_size >= 1, "batch size must be positive");
  CANDLE_CHECK(data.size() >= 1, "cannot iterate an empty dataset");
  order_.resize(static_cast<std::size_t>(data.size()));
  std::iota(order_.begin(), order_.end(), 0);
  if (shuffle_) reshuffle();
}

Index BatchIterator::batches_per_epoch() const {
  return (data_->size() + batch_size_ - 1) / batch_size_;
}

void BatchIterator::reshuffle() { std::shuffle(order_.begin(), order_.end(), rng_); }

std::span<const Index> BatchIterator::next_indices() {
  if (cursor_ >= data_->size()) {
    cursor_ = 0;
    ++epoch_;
    if (shuffle_) reshuffle();
  }
  const Index hi = std::min<Index>(cursor_ + batch_size_, data_->size());
  const std::span<const Index> idx(order_.data() + cursor_,
                                   static_cast<std::size_t>(hi - cursor_));
  cursor_ = hi;
  return idx;
}

Dataset BatchIterator::next() { return gather(*data_, next_indices()); }

Standardizer Standardizer::fit(const Tensor& x) {
  CANDLE_CHECK(x.ndim() == 2, "Standardizer expects (samples, features)");
  const Index n = x.dim(0), f = x.dim(1);
  CANDLE_CHECK(n >= 1, "cannot fit on an empty tensor");
  Standardizer s;
  s.mean.assign(static_cast<std::size_t>(f), 0.0f);
  s.stddev.assign(static_cast<std::size_t>(f), 0.0f);
  std::vector<double> mean(static_cast<std::size_t>(f), 0.0);
  std::vector<double> sq(static_cast<std::size_t>(f), 0.0);
  for (Index i = 0; i < n; ++i) {
    const float* row = x.data() + i * f;
    for (Index j = 0; j < f; ++j) {
      mean[static_cast<std::size_t>(j)] += row[j];
      sq[static_cast<std::size_t>(j)] += static_cast<double>(row[j]) * row[j];
    }
  }
  for (Index j = 0; j < f; ++j) {
    const double m = mean[static_cast<std::size_t>(j)] / n;
    const double var = std::max(0.0, sq[static_cast<std::size_t>(j)] / n - m * m);
    s.mean[static_cast<std::size_t>(j)] = static_cast<float>(m);
    // Guard constant features: unit scale leaves them centred at zero.
    s.stddev[static_cast<std::size_t>(j)] =
        var > 1e-12 ? static_cast<float>(std::sqrt(var)) : 1.0f;
  }
  return s;
}

void Standardizer::apply(Tensor& x) const {
  CANDLE_CHECK(x.ndim() == 2, "Standardizer expects (samples, features)");
  const Index n = x.dim(0), f = x.dim(1);
  CANDLE_CHECK(static_cast<std::size_t>(f) == mean.size(),
               "Standardizer feature count mismatch");
  for (Index i = 0; i < n; ++i) {
    float* row = x.data() + i * f;
    for (Index j = 0; j < f; ++j) {
      const auto ju = static_cast<std::size_t>(j);
      row[j] = (row[j] - mean[ju]) / stddev[ju];
    }
  }
}

}  // namespace candle

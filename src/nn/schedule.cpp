#include "nn/schedule.hpp"

#include <cmath>

#include "runtime/error.hpp"

namespace candle {

StepDecay::StepDecay(Index step, float factor) : step_(step), factor_(factor) {
  CANDLE_CHECK(step >= 1, "step decay interval must be >= 1");
  CANDLE_CHECK(factor > 0.0f && factor <= 1.0f,
               "step decay factor must be in (0,1]");
}

float StepDecay::lr(Index epoch, float base_lr) const {
  CANDLE_CHECK(epoch >= 0, "negative epoch");
  return base_lr * std::pow(factor_, static_cast<float>(epoch / step_));
}

ExponentialDecay::ExponentialDecay(float decay) : decay_(decay) {
  CANDLE_CHECK(decay > 0.0f && decay <= 1.0f,
               "exponential decay must be in (0,1]");
}

float ExponentialDecay::lr(Index epoch, float base_lr) const {
  CANDLE_CHECK(epoch >= 0, "negative epoch");
  return base_lr * std::pow(decay_, static_cast<float>(epoch));
}

WarmupCosine::WarmupCosine(Index warmup, Index total, float floor)
    : warmup_(warmup), total_(total), floor_(floor) {
  CANDLE_CHECK(warmup >= 0 && total > warmup,
               "warmup-cosine needs total > warmup >= 0");
  CANDLE_CHECK(floor >= 0.0f && floor <= 1.0f, "floor must be in [0,1]");
}

float WarmupCosine::lr(Index epoch, float base_lr) const {
  CANDLE_CHECK(epoch >= 0, "negative epoch");
  if (epoch < warmup_) {
    return base_lr * static_cast<float>(epoch + 1) /
           static_cast<float>(warmup_);
  }
  const auto progress =
      static_cast<float>(epoch - warmup_) /
      static_cast<float>(std::max<Index>(1, total_ - warmup_));
  const float clipped = std::min(1.0f, progress);
  const float cosine = 0.5f * (1.0f + std::cos(3.14159265f * clipped));
  return base_lr * (floor_ + (1.0f - floor_) * cosine);
}

std::unique_ptr<LrSchedule> make_constant_lr() {
  return std::make_unique<ConstantLr>();
}
std::unique_ptr<LrSchedule> make_step_decay(Index step, float factor) {
  return std::make_unique<StepDecay>(step, factor);
}
std::unique_ptr<LrSchedule> make_exponential_decay(float decay) {
  return std::make_unique<ExponentialDecay>(decay);
}
std::unique_ptr<LrSchedule> make_warmup_cosine(Index warmup, Index total,
                                               float floor) {
  return std::make_unique<WarmupCosine>(warmup, total, floor);
}

}  // namespace candle

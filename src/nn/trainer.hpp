// Single-process training loop with mixed-precision policy support —
// the serial baseline every parallel configuration is validated against.
#pragma once

#include <functional>
#include <string>
#include <vector>

#include "nn/dataset.hpp"
#include "nn/model.hpp"
#include "nn/schedule.hpp"

namespace candle {

/// Mixed-precision training policy (claim C1):
///   * `compute`  — format used inside layer GEMMs (activations/weights are
///     rounded through it; accumulation stays fp32/int32).
///   * `weight_storage` / `stochastic_weight_rounding` — format weights are
///     rounded to after each optimizer update (master copy emulation).
///   * `loss_scale` — constant loss scaling to keep fp16 gradients from
///     underflowing.
struct PrecisionPolicy {
  Precision compute = Precision::FP32;
  Precision weight_storage = Precision::FP32;
  bool stochastic_weight_rounding = false;
  float loss_scale = 1.0f;

  /// The standard policy for a given compute format: fp16 gets loss scaling
  /// + fp32 master weights; int8 trains with fp32 master weights too.
  static PrecisionPolicy standard(Precision compute);
};

struct FitOptions {
  Index epochs = 10;
  Index batch_size = 32;
  bool shuffle = true;
  std::uint64_t seed = 0;
  PrecisionPolicy precision;
  /// Optional learning-rate schedule applied per epoch on top of the
  /// optimizer's base learning rate (restored after fit()).
  const LrSchedule* lr_schedule = nullptr;
  /// Stop when val loss fails to improve by `min_delta` for `patience`
  /// consecutive epochs (0 disables; requires a validation set).
  Index early_stop_patience = 0;
  float early_stop_min_delta = 0.0f;
  /// Called after each epoch with (epoch, train_loss, val_loss); return
  /// false to stop early (used by ASHA-style truncation).
  std::function<bool(Index, float, float)> on_epoch;
};

struct FitHistory {
  std::vector<float> train_loss;  // mean batch loss per epoch
  std::vector<float> val_loss;    // evaluated per epoch (NaN if no val set)
  double seconds = 0.0;           // wall-clock training time
  double samples_per_second = 0.0;

  float final_train_loss() const {
    return train_loss.empty() ? 0.0f : train_loss.back();
  }
  float final_val_loss() const {
    return val_loss.empty() ? 0.0f : val_loss.back();
  }
  float best_val_loss() const;
};

/// Train `model` on `train`, optionally evaluating on `val` each epoch.
/// The model must already be built; its compute precision is set from the
/// policy for the duration of the call.
FitHistory fit(Model& model, const Dataset& train, const Dataset* val,
               const Loss& loss, Optimizer& opt, const FitOptions& options);

}  // namespace candle

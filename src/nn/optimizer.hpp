// First-order optimizers.  An optimizer owns per-parameter state vectors,
// keyed by position in the (params, grads) lists, which must stay stable
// across steps (they do: Model::params() order is the layer order).
//
// Reduced-precision weight updates (claim C1 ablation): `update_precision`
// optionally rounds each updated parameter through a format after the step,
// either round-to-nearest or stochastically (stochastic rounding is the
// standard fix for fp16 weight stagnation).
#pragma once

#include <memory>
#include <span>
#include <string>
#include <vector>

#include "core/formats.hpp"
#include "core/tensor.hpp"

namespace candle {

/// Weight-storage rounding policy applied after each optimizer step.
struct UpdatePrecision {
  Precision format = Precision::FP32;
  bool stochastic = false;
  std::uint64_t seed = 0x5eedULL;
};

/// Snapshot of an optimizer's internal state for checkpointing: the moment
/// buffers (with shapes, so a freshly constructed optimizer can restore
/// before its lazy allocation has run) plus integer counters (Adam's
/// per-slot step counts).  Produced by export_state / consumed by
/// import_state; serialized inside checkpoint format v2 (nn/serialize).
struct OptimizerSnapshot {
  std::string name;                     // optimizer kind, checked on import
  std::vector<Tensor> tensors;          // subclass-defined order
  std::vector<std::int64_t> counters;   // subclass-defined meaning
};

class Optimizer {
 public:
  virtual ~Optimizer() = default;
  virtual std::string name() const = 0;

  /// Snapshot internal state (moment buffers, step counters).  Restoring the
  /// snapshot into a freshly constructed optimizer of the same kind and then
  /// continuing training is bit-identical to never having stopped.
  virtual OptimizerSnapshot export_state() const;
  /// Restore a snapshot; throws on kind mismatch or malformed payload.
  virtual void import_state(const OptimizerSnapshot& snapshot);

  /// Apply one update: params[i] -= f(grads[i]).  Lists must be parallel and
  /// identical (same tensors, same shapes) on every call.
  void step(std::span<Tensor* const> params, std::span<Tensor* const> grads);

  float learning_rate() const { return lr_; }
  void set_learning_rate(float lr) { lr_ = lr; }

  /// L2 weight decay: grads[i] += decay * params[i] before the update
  /// (coupled form, as Keras-1 regularizers behaved).
  void set_weight_decay(float decay);
  float weight_decay() const { return weight_decay_; }

  /// Clip the *global* gradient norm to `max_norm` before the update
  /// (0 disables).  Applied after weight decay.
  void set_gradient_clip(float max_norm);
  float gradient_clip() const { return clip_norm_; }

  void set_update_precision(UpdatePrecision up) {
    update_precision_ = up;
    round_rng_ = Pcg32(up.seed, 0x0f7);
  }

 protected:
  explicit Optimizer(float lr) : lr_(lr) {}

  /// Subclass hook: update a single parameter from its gradient.
  virtual void update(std::size_t slot, Tensor& param, const Tensor& grad) = 0;

  float lr_;

 private:
  void round_params(std::span<Tensor* const> params);
  void apply_weight_decay(std::span<Tensor* const> params,
                          std::span<Tensor* const> grads) const;
  void clip_gradients(std::span<Tensor* const> grads) const;

  UpdatePrecision update_precision_;
  Pcg32 round_rng_{0x5eedULL, 0x0f7};
  float weight_decay_ = 0.0f;
  float clip_norm_ = 0.0f;
};

/// Plain stochastic gradient descent: w -= lr * g.
class Sgd : public Optimizer {
 public:
  explicit Sgd(float lr) : Optimizer(lr) {}
  std::string name() const override { return "sgd"; }

 protected:
  void update(std::size_t slot, Tensor& param, const Tensor& grad) override;
};

/// SGD with classical momentum: v = mu*v + g; w -= lr*v.
class Momentum : public Optimizer {
 public:
  Momentum(float lr, float mu = 0.9f) : Optimizer(lr), mu_(mu) {}
  std::string name() const override { return "momentum"; }
  OptimizerSnapshot export_state() const override;
  void import_state(const OptimizerSnapshot& snapshot) override;

 protected:
  void update(std::size_t slot, Tensor& param, const Tensor& grad) override;

 private:
  float mu_;
  std::vector<Tensor> velocity_;
};

/// RMSProp: s = rho*s + (1-rho)*g^2; w -= lr * g / (sqrt(s) + eps).
class RmsProp : public Optimizer {
 public:
  RmsProp(float lr, float rho = 0.9f, float eps = 1e-7f)
      : Optimizer(lr), rho_(rho), eps_(eps) {}
  std::string name() const override { return "rmsprop"; }
  OptimizerSnapshot export_state() const override;
  void import_state(const OptimizerSnapshot& snapshot) override;

 protected:
  void update(std::size_t slot, Tensor& param, const Tensor& grad) override;

 private:
  float rho_, eps_;
  std::vector<Tensor> sq_;
};

/// Adam (Kingma & Ba 2015) with bias correction.
class Adam : public Optimizer {
 public:
  Adam(float lr = 1e-3f, float beta1 = 0.9f, float beta2 = 0.999f,
       float eps = 1e-8f)
      : Optimizer(lr), beta1_(beta1), beta2_(beta2), eps_(eps) {}
  std::string name() const override { return "adam"; }
  OptimizerSnapshot export_state() const override;
  void import_state(const OptimizerSnapshot& snapshot) override;

 protected:
  void update(std::size_t slot, Tensor& param, const Tensor& grad) override;

 private:
  float beta1_, beta2_, eps_;
  std::vector<Tensor> m_, v_;
  std::vector<long> t_;
};

std::unique_ptr<Optimizer> make_sgd(float lr);
std::unique_ptr<Optimizer> make_momentum(float lr, float mu = 0.9f);
std::unique_ptr<Optimizer> make_rmsprop(float lr, float rho = 0.9f);
std::unique_ptr<Optimizer> make_adam(float lr = 1e-3f);

/// Construct an optimizer by name ("sgd" | "momentum" | "rmsprop" | "adam")
/// — used by the hyperparameter-search space.
std::unique_ptr<Optimizer> make_optimizer(const std::string& name, float lr);

}  // namespace candle

#include "nn/serialize.hpp"

#include <cstdint>
#include <fstream>

namespace candle {

namespace {

constexpr std::uint32_t kMagic = 0xCA9D1E01u;

template <typename T>
void write_pod(std::ofstream& os, const T& value) {
  os.write(reinterpret_cast<const char*>(&value), sizeof(T));
}

template <typename T>
T read_pod(std::ifstream& is) {
  T value{};
  is.read(reinterpret_cast<char*>(&value), sizeof(T));
  CANDLE_CHECK(static_cast<bool>(is), "checkpoint truncated");
  return value;
}

}  // namespace

void save_weights(const Model& model, const std::string& path) {
  CANDLE_CHECK(model.built(), "cannot save an unbuilt model");
  std::ofstream os(path, std::ios::binary | std::ios::trunc);
  CANDLE_CHECK(os.is_open(), "cannot open checkpoint for writing: " + path);

  auto params = const_cast<Model&>(model).params();
  write_pod(os, kMagic);
  write_pod(os, static_cast<std::uint64_t>(params.size()));
  for (const Tensor* p : params) {
    write_pod(os, static_cast<std::uint32_t>(p->ndim()));
    for (Index d = 0; d < p->ndim(); ++d) {
      write_pod(os, static_cast<std::int64_t>(p->dim(d)));
    }
    os.write(reinterpret_cast<const char*>(p->data()),
             static_cast<std::streamsize>(p->numel() * sizeof(float)));
  }
  CANDLE_CHECK(static_cast<bool>(os), "checkpoint write failed: " + path);
}

void load_weights(Model& model, const std::string& path) {
  CANDLE_CHECK(model.built(), "cannot load into an unbuilt model");
  std::ifstream is(path, std::ios::binary);
  CANDLE_CHECK(is.is_open(), "cannot open checkpoint: " + path);

  CANDLE_CHECK(read_pod<std::uint32_t>(is) == kMagic,
               "not a candle checkpoint: " + path);
  const auto count = read_pod<std::uint64_t>(is);
  auto params = model.params();
  CANDLE_CHECK(count == params.size(),
               "checkpoint has " + std::to_string(count) +
                   " tensors; model expects " +
                   std::to_string(params.size()));
  for (Tensor* p : params) {
    const auto rank = read_pod<std::uint32_t>(is);
    CANDLE_CHECK(rank == static_cast<std::uint32_t>(p->ndim()),
                 "checkpoint tensor rank mismatch");
    for (Index d = 0; d < p->ndim(); ++d) {
      const auto dim = read_pod<std::int64_t>(is);
      CANDLE_CHECK(dim == p->dim(d), "checkpoint tensor shape mismatch");
    }
    is.read(reinterpret_cast<char*>(p->data()),
            static_cast<std::streamsize>(p->numel() * sizeof(float)));
    CANDLE_CHECK(static_cast<bool>(is), "checkpoint truncated: " + path);
  }
}

}  // namespace candle

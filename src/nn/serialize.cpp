#include "nn/serialize.hpp"

#include <cstdint>
#include <cstring>
#include <filesystem>
#include <fstream>
#include <string>
#include <vector>

#include "runtime/checksum.hpp"

namespace candle {

namespace {

constexpr std::uint32_t kMagicV1 = 0xCA9D1E01u;
constexpr std::uint32_t kMagicV2 = 0xCA9D1E02u;
constexpr std::uint32_t kMagicV3 = 0xCA9D1E03u;

// ---- in-memory archive ------------------------------------------------------
// The whole payload is staged in memory so the CRC is computed over exactly
// the bytes written, and the file appears on disk only complete.

class Writer {
 public:
  template <typename T>
  void pod(const T& value) {
    const auto* bytes = reinterpret_cast<const char*>(&value);
    buf_.insert(buf_.end(), bytes, bytes + sizeof(T));
  }

  void bytes(const void* data, std::size_t size) {
    const auto* p = static_cast<const char*>(data);
    buf_.insert(buf_.end(), p, p + size);
  }

  void tensor(const Tensor& t) {
    pod(static_cast<std::uint32_t>(t.ndim()));
    for (Index d = 0; d < t.ndim(); ++d) {
      pod(static_cast<std::int64_t>(t.dim(d)));
    }
    bytes(t.data(), static_cast<std::size_t>(t.numel()) * sizeof(float));
  }

  const std::vector<char>& data() const { return buf_; }

  void append_crc() {
    const std::uint32_t crc = runtime::crc32(buf_.data(), buf_.size());
    pod(crc);
  }

 private:
  std::vector<char> buf_;
};

class Reader {
 public:
  Reader(const std::vector<char>& buf, const std::string& path)
      : buf_(buf), path_(path) {}

  template <typename T>
  T pod() {
    T value{};
    CANDLE_CHECK(pos_ + sizeof(T) <= buf_.size(),
                 "checkpoint truncated: " + path_);
    std::memcpy(&value, buf_.data() + pos_, sizeof(T));
    pos_ += sizeof(T);
    return value;
  }

  void bytes(void* out, std::size_t size) {
    CANDLE_CHECK(pos_ + size <= buf_.size(),
                 "checkpoint truncated: " + path_);
    std::memcpy(out, buf_.data() + pos_, size);
    pos_ += size;
  }

  /// Read a tensor into `dst`, insisting its shape matches the file.
  void tensor_into(Tensor& dst, const char* what) {
    const auto rank = pod<std::uint32_t>();
    CANDLE_CHECK(rank == static_cast<std::uint32_t>(dst.ndim()),
                 std::string(what) + " rank mismatch: " + path_);
    for (Index d = 0; d < dst.ndim(); ++d) {
      const auto dim = pod<std::int64_t>();
      CANDLE_CHECK(dim == dst.dim(d),
                   std::string(what) + " shape mismatch: " + path_);
    }
    bytes(dst.data(), static_cast<std::size_t>(dst.numel()) * sizeof(float));
  }

  /// Read a tensor whose shape comes from the file.
  Tensor tensor() {
    const auto rank = pod<std::uint32_t>();
    CANDLE_CHECK(rank <= 8, "implausible tensor rank in " + path_);
    Shape shape;
    for (std::uint32_t d = 0; d < rank; ++d) {
      const auto dim = pod<std::int64_t>();
      CANDLE_CHECK(dim >= 0, "negative tensor dim in " + path_);
      shape.push_back(dim);
    }
    Tensor t(shape);
    bytes(t.data(), static_cast<std::size_t>(t.numel()) * sizeof(float));
    return t;
  }

  std::size_t pos() const { return pos_; }

 private:
  const std::vector<char>& buf_;
  const std::string& path_;
  std::size_t pos_ = 0;
};

std::vector<char> read_file(const std::string& path) {
  std::ifstream is(path, std::ios::binary | std::ios::ate);
  CANDLE_CHECK(is.is_open(), "cannot open checkpoint: " + path);
  const std::streamsize size = is.tellg();
  is.seekg(0);
  std::vector<char> buf(static_cast<std::size_t>(size));
  is.read(buf.data(), size);
  CANDLE_CHECK(static_cast<bool>(is), "checkpoint read failed: " + path);
  return buf;
}

void write_file_atomic(const std::vector<char>& buf,
                       const std::string& path) {
  const std::string tmp = path + ".tmp";
  {
    std::ofstream os(tmp, std::ios::binary | std::ios::trunc);
    CANDLE_CHECK(os.is_open(), "cannot open checkpoint for writing: " + tmp);
    os.write(buf.data(), static_cast<std::streamsize>(buf.size()));
    os.flush();
    CANDLE_CHECK(static_cast<bool>(os), "checkpoint write failed: " + tmp);
  }
  // Complete file exists under the temp name; renaming is atomic on POSIX,
  // so `path` always refers to a complete previous or complete new file.
  std::error_code ec;
  std::filesystem::rename(tmp, path, ec);
  CANDLE_CHECK(!ec, "checkpoint rename failed: " + tmp + " -> " + path +
                        " (" + ec.message() + ")");
}

void write_params(Writer& w, const Model& model) {
  auto params = const_cast<Model&>(model).params();
  w.pod(static_cast<std::uint64_t>(params.size()));
  for (const Tensor* p : params) w.tensor(*p);
}

void read_params(Reader& r, Model& model) {
  const auto count = r.pod<std::uint64_t>();
  auto params = model.params();
  CANDLE_CHECK(count == params.size(),
               "checkpoint has " + std::to_string(count) +
                   " tensors; model expects " +
                   std::to_string(params.size()));
  for (Tensor* p : params) r.tensor_into(*p, "checkpoint tensor");
}

CheckpointMeta load_any(Model& model, Optimizer* optimizer,
                        const std::string& path) {
  CANDLE_CHECK(model.built(), "cannot load into an unbuilt model");
  const std::vector<char> buf = read_file(path);
  Reader header(buf, path);
  const auto magic = header.pod<std::uint32_t>();

  CheckpointMeta meta;
  if (magic == kMagicV1) {
    // Legacy weights-only file: no CRC, no step, no optimizer section.
    meta.version = 1;
    read_params(header, model);
    return meta;
  }
  CANDLE_CHECK(magic == kMagicV2 || magic == kMagicV3,
               "not a candle checkpoint: " + path);
  meta.version = magic == kMagicV3 ? 3 : 2;

  // Verify the trailing CRC before trusting any field beyond the magic.
  CANDLE_CHECK(buf.size() > sizeof(std::uint32_t) * 2,
               "checkpoint truncated: " + path);
  const std::size_t payload = buf.size() - sizeof(std::uint32_t);
  std::uint32_t stored = 0;
  std::memcpy(&stored, buf.data() + payload, sizeof(stored));
  const std::uint32_t actual = runtime::crc32(buf.data(), payload);
  CANDLE_CHECK(stored == actual,
               "checkpoint CRC mismatch (corrupt or truncated): " + path);

  meta.step = static_cast<Index>(header.pod<std::uint64_t>());
  const auto has_opt = header.pod<std::uint8_t>();
  read_params(header, model);
  if (has_opt != 0) {
    meta.has_optimizer = true;
    OptimizerSnapshot snapshot;
    const auto name_len = header.pod<std::uint32_t>();
    CANDLE_CHECK(name_len <= 64, "implausible optimizer name in " + path);
    snapshot.name.resize(name_len);
    header.bytes(snapshot.name.data(), name_len);
    const auto tcount = header.pod<std::uint64_t>();
    for (std::uint64_t i = 0; i < tcount; ++i) {
      snapshot.tensors.push_back(header.tensor());
    }
    const auto ccount = header.pod<std::uint64_t>();
    for (std::uint64_t i = 0; i < ccount; ++i) {
      snapshot.counters.push_back(header.pod<std::int64_t>());
    }
    if (optimizer != nullptr) optimizer->import_state(snapshot);
  }
  if (meta.version >= 3) {
    meta.has_cursor = true;
    meta.cursor_epoch = static_cast<Index>(header.pod<std::uint64_t>());
    meta.cursor_step = static_cast<Index>(header.pod<std::uint64_t>());
    meta.stream_seed = header.pod<std::uint64_t>();
  }
  CANDLE_CHECK(header.pos() == payload,
               "checkpoint has trailing bytes: " + path);
  return meta;
}

}  // namespace

void save_weights(const Model& model, const std::string& path) {
  save_checkpoint(model, /*optimizer=*/nullptr, /*step=*/0, path);
}

void load_weights(Model& model, const std::string& path) {
  load_any(model, /*optimizer=*/nullptr, path);
}

namespace {

void save_checkpoint_impl(const Model& model, const Optimizer* optimizer,
                          Index step, const Index* cursor_epoch,
                          const Index* cursor_step,
                          const std::uint64_t* stream_seed,
                          const std::string& path) {
  CANDLE_CHECK(model.built(), "cannot save an unbuilt model");
  CANDLE_CHECK(step >= 0, "negative step count");
  const bool with_cursor = cursor_epoch != nullptr;
  Writer w;
  w.pod(with_cursor ? kMagicV3 : kMagicV2);
  w.pod(static_cast<std::uint64_t>(step));
  w.pod(static_cast<std::uint8_t>(optimizer != nullptr ? 1 : 0));
  write_params(w, model);
  if (optimizer != nullptr) {
    const OptimizerSnapshot snapshot = optimizer->export_state();
    w.pod(static_cast<std::uint32_t>(snapshot.name.size()));
    w.bytes(snapshot.name.data(), snapshot.name.size());
    w.pod(static_cast<std::uint64_t>(snapshot.tensors.size()));
    for (const Tensor& t : snapshot.tensors) w.tensor(t);
    w.pod(static_cast<std::uint64_t>(snapshot.counters.size()));
    for (std::int64_t c : snapshot.counters) w.pod(c);
  }
  if (with_cursor) {
    w.pod(static_cast<std::uint64_t>(*cursor_epoch));
    w.pod(static_cast<std::uint64_t>(*cursor_step));
    w.pod(*stream_seed);
  }
  w.append_crc();
  write_file_atomic(w.data(), path);
}

}  // namespace

void save_checkpoint(const Model& model, const Optimizer* optimizer,
                     Index step, const std::string& path) {
  save_checkpoint_impl(model, optimizer, step, nullptr, nullptr, nullptr,
                       path);
}

void save_checkpoint(const Model& model, const Optimizer* optimizer,
                     Index step, Index cursor_epoch, Index cursor_step,
                     std::uint64_t stream_seed, const std::string& path) {
  CANDLE_CHECK(cursor_epoch >= 0 && cursor_step >= 0,
               "negative stream cursor");
  save_checkpoint_impl(model, optimizer, step, &cursor_epoch, &cursor_step,
                       &stream_seed, path);
}

CheckpointMeta load_checkpoint(Model& model, Optimizer* optimizer,
                               const std::string& path) {
  return load_any(model, optimizer, path);
}

}  // namespace candle

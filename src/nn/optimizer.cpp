#include "nn/optimizer.hpp"

#include <cmath>

#include "runtime/error.hpp"

namespace candle {

void Optimizer::step(std::span<Tensor* const> params,
                     std::span<Tensor* const> grads) {
  CANDLE_CHECK(params.size() == grads.size(),
               "optimizer params/grads list size mismatch");
  for (std::size_t i = 0; i < params.size(); ++i) {
    CANDLE_CHECK(params[i] != nullptr && grads[i] != nullptr,
                 "null tensor passed to optimizer");
    CANDLE_CHECK(params[i]->same_shape(*grads[i]),
                 "param/grad shape mismatch at slot " + std::to_string(i));
  }
  if (weight_decay_ > 0.0f) apply_weight_decay(params, grads);
  if (clip_norm_ > 0.0f) clip_gradients(grads);
  for (std::size_t i = 0; i < params.size(); ++i) {
    update(i, *params[i], *grads[i]);
  }
  round_params(params);
}

OptimizerSnapshot Optimizer::export_state() const {
  return {name(), {}, {}};
}

void Optimizer::import_state(const OptimizerSnapshot& snapshot) {
  CANDLE_CHECK(snapshot.name == name(),
               "optimizer snapshot is for '" + snapshot.name +
                   "', not '" + name() + "'");
  CANDLE_CHECK(snapshot.tensors.empty() && snapshot.counters.empty(),
               "stateless optimizer given a stateful snapshot");
}

OptimizerSnapshot Momentum::export_state() const {
  return {name(), velocity_, {}};
}

void Momentum::import_state(const OptimizerSnapshot& snapshot) {
  CANDLE_CHECK(snapshot.name == name(),
               "optimizer snapshot is for '" + snapshot.name +
                   "', not '" + name() + "'");
  CANDLE_CHECK(snapshot.counters.empty(), "momentum snapshot has counters");
  velocity_ = snapshot.tensors;
}

OptimizerSnapshot RmsProp::export_state() const { return {name(), sq_, {}}; }

void RmsProp::import_state(const OptimizerSnapshot& snapshot) {
  CANDLE_CHECK(snapshot.name == name(),
               "optimizer snapshot is for '" + snapshot.name +
                   "', not '" + name() + "'");
  CANDLE_CHECK(snapshot.counters.empty(), "rmsprop snapshot has counters");
  sq_ = snapshot.tensors;
}

OptimizerSnapshot Adam::export_state() const {
  // First and second moments interleave as [m0, v0, m1, v1, ...] so the
  // tensor count alone determines the slot count; counters carry t_.
  OptimizerSnapshot s{name(), {}, {}};
  for (std::size_t i = 0; i < m_.size(); ++i) {
    s.tensors.push_back(m_[i]);
    s.tensors.push_back(v_[i]);
  }
  s.counters.assign(t_.begin(), t_.end());
  return s;
}

void Adam::import_state(const OptimizerSnapshot& snapshot) {
  CANDLE_CHECK(snapshot.name == name(),
               "optimizer snapshot is for '" + snapshot.name +
                   "', not '" + name() + "'");
  CANDLE_CHECK(snapshot.tensors.size() % 2 == 0 &&
                   snapshot.counters.size() * 2 == snapshot.tensors.size(),
               "malformed adam snapshot");
  const std::size_t slots = snapshot.counters.size();
  m_.clear();
  v_.clear();
  for (std::size_t i = 0; i < slots; ++i) {
    m_.push_back(snapshot.tensors[2 * i]);
    v_.push_back(snapshot.tensors[2 * i + 1]);
  }
  t_.assign(snapshot.counters.begin(), snapshot.counters.end());
}

void Optimizer::set_weight_decay(float decay) {
  CANDLE_CHECK(decay >= 0.0f, "weight decay must be non-negative");
  weight_decay_ = decay;
}

void Optimizer::set_gradient_clip(float max_norm) {
  CANDLE_CHECK(max_norm >= 0.0f, "clip norm must be non-negative");
  clip_norm_ = max_norm;
}

void Optimizer::apply_weight_decay(std::span<Tensor* const> params,
                                   std::span<Tensor* const> grads) const {
  for (std::size_t i = 0; i < params.size(); ++i) {
    grads[i]->axpy(weight_decay_, *params[i]);
  }
}

void Optimizer::clip_gradients(std::span<Tensor* const> grads) const {
  double sq = 0.0;
  for (Tensor* g : grads) {
    const double n = g->l2_norm();
    sq += n * n;
  }
  const double norm = std::sqrt(sq);
  if (norm > static_cast<double>(clip_norm_) && norm > 0.0) {
    const auto scale = static_cast<float>(clip_norm_ / norm);
    for (Tensor* g : grads) g->scale(scale);
  }
}

void Optimizer::round_params(std::span<Tensor* const> params) {
  const Precision fmt = update_precision_.format;
  if (fmt == Precision::FP32 || fmt == Precision::FP64) return;
  for (Tensor* p : params) {
    if (!update_precision_.stochastic) {
      round_through(fmt, p->flat());
      continue;
    }
    for (float& v : p->flat()) {
      v = fmt == Precision::FP16 ? round_fp16_stochastic(v, round_rng_)
                                 : round_bf16_stochastic(v, round_rng_);
    }
  }
}

void Sgd::update(std::size_t /*slot*/, Tensor& param, const Tensor& grad) {
  param.axpy(-lr_, grad);
}

void Momentum::update(std::size_t slot, Tensor& param, const Tensor& grad) {
  if (velocity_.size() <= slot) velocity_.resize(slot + 1);
  Tensor& v = velocity_[slot];
  if (!v.same_shape(param)) v = Tensor::zeros(param.shape());
  v.scale(mu_).axpy(1.0f, grad);
  param.axpy(-lr_, v);
}

void RmsProp::update(std::size_t slot, Tensor& param, const Tensor& grad) {
  if (sq_.size() <= slot) sq_.resize(slot + 1);
  Tensor& s = sq_[slot];
  if (!s.same_shape(param)) s = Tensor::zeros(param.shape());
  float* sp = s.data();
  float* wp = param.data();
  const float* gp = grad.data();
  for (Index i = 0; i < param.numel(); ++i) {
    sp[i] = rho_ * sp[i] + (1.0f - rho_) * gp[i] * gp[i];
    wp[i] -= lr_ * gp[i] / (std::sqrt(sp[i]) + eps_);
  }
}

void Adam::update(std::size_t slot, Tensor& param, const Tensor& grad) {
  if (m_.size() <= slot) {
    m_.resize(slot + 1);
    v_.resize(slot + 1);
    t_.resize(slot + 1, 0);
  }
  Tensor& m = m_[slot];
  Tensor& v = v_[slot];
  if (!m.same_shape(param)) {
    m = Tensor::zeros(param.shape());
    v = Tensor::zeros(param.shape());
  }
  const long t = ++t_[slot];
  const float bc1 = 1.0f - std::pow(beta1_, static_cast<float>(t));
  const float bc2 = 1.0f - std::pow(beta2_, static_cast<float>(t));
  float* mp = m.data();
  float* vp = v.data();
  float* wp = param.data();
  const float* gp = grad.data();
  for (Index i = 0; i < param.numel(); ++i) {
    mp[i] = beta1_ * mp[i] + (1.0f - beta1_) * gp[i];
    vp[i] = beta2_ * vp[i] + (1.0f - beta2_) * gp[i] * gp[i];
    const float mhat = mp[i] / bc1;
    const float vhat = vp[i] / bc2;
    wp[i] -= lr_ * mhat / (std::sqrt(vhat) + eps_);
  }
}

std::unique_ptr<Optimizer> make_sgd(float lr) {
  return std::make_unique<Sgd>(lr);
}
std::unique_ptr<Optimizer> make_momentum(float lr, float mu) {
  return std::make_unique<Momentum>(lr, mu);
}
std::unique_ptr<Optimizer> make_rmsprop(float lr, float rho) {
  return std::make_unique<RmsProp>(lr, rho);
}
std::unique_ptr<Optimizer> make_adam(float lr) {
  return std::make_unique<Adam>(lr);
}

std::unique_ptr<Optimizer> make_optimizer(const std::string& name, float lr) {
  if (name == "sgd") return make_sgd(lr);
  if (name == "momentum") return make_momentum(lr);
  if (name == "rmsprop") return make_rmsprop(lr);
  if (name == "adam") return make_adam(lr);
  throw Error("unknown optimizer: " + name);
}

}  // namespace candle

// Residual block: y = x + F(x), where F is a sub-stack of layers whose
// output shape equals its input shape.  Residual topologies are what made
// very deep networks trainable, and they change the communication pattern
// of model parallelism (skip connections cross stage boundaries) — one of
// the "future DNNs" wrinkles the paper anticipates.
#pragma once

#include "nn/layer.hpp"

namespace candle {

class Residual : public Layer {
 public:
  Residual() = default;

  /// Append a layer to the inner stack F.  Must be called before build.
  Residual& add(std::unique_ptr<Layer> layer);

  std::string name() const override;
  Shape build(const Shape& input, Pcg32& rng) override;
  Tensor forward(const Tensor& x, bool training) override;
  Tensor infer(const Tensor& x) const override;
  Tensor backward(const Tensor& dy) override;
  std::vector<Tensor*> params() override;
  std::vector<Tensor*> grads() override;
  double flops_per_sample() const override;
  void set_precision(Precision p) override;

 private:
  std::vector<std::unique_ptr<Layer>> inner_;
  bool built_ = false;
};

/// Convenience: residual block of [dense(width) -> relu -> dense(width)]
/// (the classic two-layer MLP block; `width` must equal the input width).
std::unique_ptr<Layer> make_residual_mlp_block(Index width);

}  // namespace candle

// Evaluation metrics for the biomedical workloads: classification accuracy,
// regression R^2, and ROC AUC (the standard report for drug-response and
// AMR-prediction models).
#pragma once

#include "core/tensor.hpp"

namespace candle {

/// Fraction of rows whose argmax over logits equals the class index stored
/// (as float) in `labels`.  logits: (B, C); labels: (B).
double accuracy(const Tensor& logits, const Tensor& labels);

/// Coefficient of determination 1 - SS_res/SS_tot over all elements.
/// Returns -inf-ish negative values for models worse than the mean.
double r2_score(const Tensor& pred, const Tensor& target);

/// Area under the ROC curve via the rank statistic (ties get midranks).
/// scores: (B) or (B,1) real-valued; labels: same count of 0/1 values.
double roc_auc(const Tensor& scores, const Tensor& labels);

/// Pearson correlation over all elements.
double pearson_r(const Tensor& a, const Tensor& b);

}  // namespace candle

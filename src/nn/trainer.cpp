#include "nn/trainer.hpp"

#include <algorithm>
#include <cmath>
#include <limits>

#include "runtime/timer.hpp"

namespace candle {

PrecisionPolicy PrecisionPolicy::standard(Precision compute) {
  PrecisionPolicy p;
  p.compute = compute;
  switch (compute) {
    case Precision::FP64:
    case Precision::FP32:
      break;
    case Precision::BF16:
      // bf16's fp32-sized exponent needs no loss scaling; storage follows
      // the compute format with round-to-nearest.
      p.weight_storage = Precision::BF16;
      break;
    case Precision::FP16:
      p.loss_scale = 1024.0f;
      p.weight_storage = Precision::FP32;  // fp32 master weights
      break;
    case Precision::INT8:
      p.weight_storage = Precision::FP32;  // int8 compute, fp32 master
      break;
  }
  return p;
}

float FitHistory::best_val_loss() const {
  float best = std::numeric_limits<float>::infinity();
  for (float v : val_loss) {
    if (!std::isnan(v)) best = std::min(best, v);
  }
  return best;
}

FitHistory fit(Model& model, const Dataset& train, const Dataset* val,
               const Loss& loss, Optimizer& opt, const FitOptions& options) {
  CANDLE_CHECK(model.built(), "fit() requires a built model");
  CANDLE_CHECK(options.epochs >= 1, "epochs must be positive");

  const Precision saved = model.compute_precision();
  model.set_compute_precision(options.precision.compute);
  opt.set_update_precision(
      {options.precision.weight_storage,
       options.precision.stochastic_weight_rounding, options.seed ^ 0xf00d});

  FitHistory history;
  Stopwatch clock;
  BatchIterator batches(train, options.batch_size, options.shuffle,
                        options.seed);
  const Index per_epoch = batches.batches_per_epoch();

  const float base_lr = opt.learning_rate();
  float best_val = std::numeric_limits<float>::infinity();
  Index epochs_without_improvement = 0;

  for (Index epoch = 0; epoch < options.epochs; ++epoch) {
    if (options.lr_schedule != nullptr) {
      opt.set_learning_rate(options.lr_schedule->lr(epoch, base_lr));
    }
    double epoch_loss = 0.0;
    Index samples = 0;
    for (Index b = 0; b < per_epoch; ++b) {
      const Dataset batch = batches.next();
      const float l = model.train_batch(batch.x, batch.y, loss, opt,
                                        options.precision.loss_scale);
      epoch_loss += static_cast<double>(l) * static_cast<double>(batch.size());
      samples += batch.size();
    }
    history.train_loss.push_back(
        static_cast<float>(epoch_loss / static_cast<double>(samples)));
    float vloss = std::numeric_limits<float>::quiet_NaN();
    if (val != nullptr && val->size() > 0) {
      vloss = model.evaluate(val->x, val->y, loss);
    }
    history.val_loss.push_back(vloss);
    if (options.on_epoch &&
        !options.on_epoch(epoch, history.train_loss.back(), vloss)) {
      break;
    }
    if (options.early_stop_patience > 0 && !std::isnan(vloss)) {
      if (vloss < best_val - options.early_stop_min_delta) {
        best_val = vloss;
        epochs_without_improvement = 0;
      } else if (++epochs_without_improvement >=
                 options.early_stop_patience) {
        break;
      }
    }
  }
  opt.set_learning_rate(base_lr);

  history.seconds = clock.seconds();
  const double total_samples = static_cast<double>(train.size()) *
                               static_cast<double>(history.train_loss.size());
  history.samples_per_second =
      history.seconds > 0 ? total_samples / history.seconds : 0.0;
  model.set_compute_precision(saved);
  return history;
}

}  // namespace candle

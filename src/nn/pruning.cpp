#include "nn/pruning.hpp"

#include <algorithm>
#include <cmath>

namespace candle {

PruningMask::PruningMask(Model& model) {
  CANDLE_CHECK(model.built(), "PruningMask needs a built model");
  for (Tensor* p : model.params()) {
    keep_.emplace_back(static_cast<std::size_t>(p->numel()), 1);
    maskable_.push_back(p->ndim() >= 2);  // weight matrices only
  }
}

void PruningMask::prune_global_magnitude(Model& model, double target) {
  CANDLE_CHECK(target >= 0.0 && target < 1.0, "sparsity must be in [0,1)");
  const auto params = model.params();
  CANDLE_CHECK(params.size() == keep_.size(), "mask does not match model");

  // Gather all maskable magnitudes.
  std::vector<float> mags;
  for (std::size_t t = 0; t < params.size(); ++t) {
    if (!maskable_[t]) continue;
    for (Index i = 0; i < params[t]->numel(); ++i) {
      mags.push_back(std::abs((*params[t])[i]));
    }
  }
  CANDLE_CHECK(!mags.empty(), "model has no prunable weight matrices");
  const auto cut = static_cast<std::size_t>(
      std::llround(target * static_cast<double>(mags.size())));
  if (cut == 0) return;
  std::nth_element(mags.begin(), mags.begin() + (cut - 1), mags.end());
  const float threshold = mags[cut - 1];

  for (std::size_t t = 0; t < params.size(); ++t) {
    if (!maskable_[t]) continue;
    Tensor& w = *params[t];
    for (Index i = 0; i < w.numel(); ++i) {
      if (std::abs(w[i]) <= threshold) {
        w[i] = 0.0f;
        keep_[t][static_cast<std::size_t>(i)] = 0;
      }
    }
  }
}

void PruningMask::apply(Model& model) const {
  const auto params = model.params();
  CANDLE_CHECK(params.size() == keep_.size(), "mask does not match model");
  for (std::size_t t = 0; t < params.size(); ++t) {
    if (!maskable_[t]) continue;
    Tensor& w = *params[t];
    for (Index i = 0; i < w.numel(); ++i) {
      if (keep_[t][static_cast<std::size_t>(i)] == 0) w[i] = 0.0f;
    }
  }
}

double PruningMask::sparsity() const {
  double total = 0.0, pruned = 0.0;
  for (std::size_t t = 0; t < keep_.size(); ++t) {
    if (!maskable_[t]) continue;
    total += static_cast<double>(keep_[t].size());
    for (std::uint8_t k : keep_[t]) pruned += k == 0 ? 1.0 : 0.0;
  }
  return total > 0.0 ? pruned / total : 0.0;
}

void prune_and_finetune(Model& model, PruningMask& mask, double sparsity,
                        const Tensor& x, const Tensor& y, const Loss& loss,
                        Optimizer& opt, Index finetune_steps) {
  mask.prune_global_magnitude(model, sparsity);
  for (Index s = 0; s < finetune_steps; ++s) {
    model.train_batch(x, y, loss, opt);
    mask.apply(model);  // keep pruned entries at zero
  }
}

}  // namespace candle

#include "nn/loss.hpp"

#include <algorithm>
#include <cmath>

#include "runtime/error.hpp"

namespace candle {

// ---- MSE ---------------------------------------------------------------------

float MeanSquaredError::value(const Tensor& pred, const Tensor& target) const {
  CANDLE_CHECK(pred.same_shape(target), "MSE shape mismatch");
  double acc = 0.0;
  const float* p = pred.data();
  const float* t = target.data();
  for (Index i = 0; i < pred.numel(); ++i) {
    const double d = static_cast<double>(p[i]) - t[i];
    acc += d * d;
  }
  return static_cast<float>(acc / static_cast<double>(pred.numel()));
}

Tensor MeanSquaredError::grad(const Tensor& pred, const Tensor& target) const {
  CANDLE_CHECK(pred.same_shape(target), "MSE shape mismatch");
  Tensor g = pred;
  const float scale = 2.0f / static_cast<float>(pred.numel());
  const float* t = target.data();
  float* gp = g.data();
  for (Index i = 0; i < g.numel(); ++i) gp[i] = scale * (gp[i] - t[i]);
  return g;
}

// ---- Softmax cross entropy ----------------------------------------------------

Tensor SoftmaxCrossEntropy::softmax(const Tensor& logits) {
  CANDLE_CHECK(logits.ndim() == 2, "softmax expects (batch, classes)");
  Tensor p = logits;
  const Index b = p.dim(0), c = p.dim(1);
  for (Index i = 0; i < b; ++i) {
    float* row = p.data() + i * c;
    const float m = *std::max_element(row, row + c);
    float z = 0.0f;
    for (Index j = 0; j < c; ++j) {
      row[j] = std::exp(row[j] - m);
      z += row[j];
    }
    const float inv = 1.0f / z;
    for (Index j = 0; j < c; ++j) row[j] *= inv;
  }
  return p;
}

namespace {
Index class_index(const Tensor& target, Index i, Index classes) {
  const auto idx = static_cast<Index>(std::lround(target[i]));
  CANDLE_CHECK(idx >= 0 && idx < classes,
               "class index " + std::to_string(idx) + " out of range");
  return idx;
}
}  // namespace

float SoftmaxCrossEntropy::value(const Tensor& pred,
                                 const Tensor& target) const {
  CANDLE_CHECK(pred.ndim() == 2, "logits must be (batch, classes)");
  CANDLE_CHECK(target.numel() == pred.dim(0),
               "target must hold one class index per sample");
  const Index b = pred.dim(0), c = pred.dim(1);
  double acc = 0.0;
  for (Index i = 0; i < b; ++i) {
    const float* row = pred.data() + i * c;
    const float m = *std::max_element(row, row + c);
    double z = 0.0;
    for (Index j = 0; j < c; ++j) z += std::exp(static_cast<double>(row[j] - m));
    const Index y = class_index(target, i, c);
    acc += std::log(z) - static_cast<double>(row[y] - m);
  }
  return static_cast<float>(acc / static_cast<double>(b));
}

Tensor SoftmaxCrossEntropy::grad(const Tensor& pred,
                                 const Tensor& target) const {
  CANDLE_CHECK(pred.ndim() == 2, "logits must be (batch, classes)");
  CANDLE_CHECK(target.numel() == pred.dim(0),
               "target must hold one class index per sample");
  Tensor g = softmax(pred);
  const Index b = pred.dim(0), c = pred.dim(1);
  const float inv_b = 1.0f / static_cast<float>(b);
  for (Index i = 0; i < b; ++i) {
    float* row = g.data() + i * c;
    row[class_index(target, i, c)] -= 1.0f;
    for (Index j = 0; j < c; ++j) row[j] *= inv_b;
  }
  return g;
}

// ---- Binary cross entropy ------------------------------------------------------

float BinaryCrossEntropy::value(const Tensor& pred,
                                const Tensor& target) const {
  CANDLE_CHECK(pred.numel() == target.numel(), "BCE shape mismatch");
  double acc = 0.0;
  const float* z = pred.data();
  const float* y = target.data();
  for (Index i = 0; i < pred.numel(); ++i) {
    // log(1 + e^-|z|) + max(z,0) - z*y  (numerically stable logits form)
    const double zi = z[i];
    acc += std::log1p(std::exp(-std::abs(zi))) + std::max(zi, 0.0) - zi * y[i];
  }
  return static_cast<float>(acc / static_cast<double>(pred.numel()));
}

Tensor BinaryCrossEntropy::grad(const Tensor& pred,
                                const Tensor& target) const {
  CANDLE_CHECK(pred.numel() == target.numel(), "BCE shape mismatch");
  Tensor g = pred;
  const float* y = target.data();
  float* gp = g.data();
  const float inv_n = 1.0f / static_cast<float>(pred.numel());
  for (Index i = 0; i < g.numel(); ++i) {
    const float sig = 1.0f / (1.0f + std::exp(-gp[i]));
    gp[i] = (sig - y[i]) * inv_n;
  }
  return g;
}

std::unique_ptr<Loss> make_mse() { return std::make_unique<MeanSquaredError>(); }
std::unique_ptr<Loss> make_softmax_cross_entropy() {
  return std::make_unique<SoftmaxCrossEntropy>();
}
std::unique_ptr<Loss> make_binary_cross_entropy() {
  return std::make_unique<BinaryCrossEntropy>();
}

}  // namespace candle

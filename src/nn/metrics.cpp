#include "nn/metrics.hpp"

#include <algorithm>
#include <cmath>
#include <numeric>
#include <vector>

#include "runtime/error.hpp"

namespace candle {

double accuracy(const Tensor& logits, const Tensor& labels) {
  CANDLE_CHECK(logits.ndim() == 2, "accuracy expects (batch, classes)");
  const Index b = logits.dim(0), c = logits.dim(1);
  CANDLE_CHECK(labels.numel() == b, "one label per sample required");
  Index correct = 0;
  for (Index i = 0; i < b; ++i) {
    const float* row = logits.data() + i * c;
    const Index pred =
        static_cast<Index>(std::max_element(row, row + c) - row);
    if (pred == static_cast<Index>(std::lround(labels[i]))) ++correct;
  }
  return static_cast<double>(correct) / static_cast<double>(b);
}

double r2_score(const Tensor& pred, const Tensor& target) {
  CANDLE_CHECK(pred.numel() == target.numel(), "r2 size mismatch");
  const Index n = pred.numel();
  CANDLE_CHECK(n >= 2, "r2 needs at least two points");
  double mean = 0.0;
  for (Index i = 0; i < n; ++i) mean += target[i];
  mean /= static_cast<double>(n);
  double ss_res = 0.0, ss_tot = 0.0;
  for (Index i = 0; i < n; ++i) {
    const double r = static_cast<double>(target[i]) - pred[i];
    const double t = static_cast<double>(target[i]) - mean;
    ss_res += r * r;
    ss_tot += t * t;
  }
  if (ss_tot <= 0.0) return ss_res <= 0.0 ? 1.0 : 0.0;
  return 1.0 - ss_res / ss_tot;
}

double roc_auc(const Tensor& scores, const Tensor& labels) {
  const Index n = scores.numel();
  CANDLE_CHECK(labels.numel() == n, "auc size mismatch");
  std::vector<Index> order(static_cast<std::size_t>(n));
  std::iota(order.begin(), order.end(), 0);
  std::sort(order.begin(), order.end(),
            [&](Index a, Index b) { return scores[a] < scores[b]; });
  // Midrank assignment for tied scores, then the Mann–Whitney identity:
  // AUC = (sum of positive ranks - n_pos(n_pos+1)/2) / (n_pos * n_neg).
  std::vector<double> rank(static_cast<std::size_t>(n));
  Index i = 0;
  while (i < n) {
    Index j = i;
    while (j + 1 < n && scores[order[j + 1]] == scores[order[i]]) ++j;
    const double mid = 0.5 * static_cast<double>(i + j) + 1.0;
    for (Index t = i; t <= j; ++t) rank[static_cast<std::size_t>(order[t])] = mid;
    i = j + 1;
  }
  double pos_rank_sum = 0.0;
  Index n_pos = 0;
  for (Index s = 0; s < n; ++s) {
    if (labels[s] > 0.5f) {
      pos_rank_sum += rank[static_cast<std::size_t>(s)];
      ++n_pos;
    }
  }
  const Index n_neg = n - n_pos;
  CANDLE_CHECK(n_pos > 0 && n_neg > 0,
               "auc needs both positive and negative samples");
  return (pos_rank_sum -
          0.5 * static_cast<double>(n_pos) * static_cast<double>(n_pos + 1)) /
         (static_cast<double>(n_pos) * static_cast<double>(n_neg));
}

double pearson_r(const Tensor& a, const Tensor& b) {
  CANDLE_CHECK(a.numel() == b.numel(), "pearson size mismatch");
  const Index n = a.numel();
  CANDLE_CHECK(n >= 2, "pearson needs at least two points");
  double ma = 0, mb = 0;
  for (Index i = 0; i < n; ++i) {
    ma += a[i];
    mb += b[i];
  }
  ma /= static_cast<double>(n);
  mb /= static_cast<double>(n);
  double cov = 0, va = 0, vb = 0;
  for (Index i = 0; i < n; ++i) {
    const double da = a[i] - ma, db = b[i] - mb;
    cov += da * db;
    va += da * da;
    vb += db * db;
  }
  if (va <= 0.0 || vb <= 0.0) return 0.0;
  return cov / std::sqrt(va * vb);
}

}  // namespace candle

// Loss functions.  Each provides the scalar batch-mean loss and the gradient
// of that mean with respect to the network output (logits/predictions).
#pragma once

#include <memory>
#include <string>

#include "core/tensor.hpp"

namespace candle {

/// Base class: value() and grad() must be called with the same pair.
class Loss {
 public:
  virtual ~Loss() = default;
  virtual std::string name() const = 0;

  /// Mean loss over the batch.
  virtual float value(const Tensor& pred, const Tensor& target) const = 0;

  /// d(mean loss)/d(pred), same shape as pred.
  virtual Tensor grad(const Tensor& pred, const Tensor& target) const = 0;
};

/// Mean squared error over all prediction elements.
/// pred: (B, D); target: (B, D).
class MeanSquaredError : public Loss {
 public:
  std::string name() const override { return "mse"; }
  float value(const Tensor& pred, const Tensor& target) const override;
  Tensor grad(const Tensor& pred, const Tensor& target) const override;
};

/// Softmax + categorical cross-entropy on logits.
/// pred: (B, C) logits; target: (B) class indices stored as floats.
/// Fusing softmax with the loss gives the numerically stable gradient
/// (softmax - onehot)/B.
class SoftmaxCrossEntropy : public Loss {
 public:
  std::string name() const override { return "softmax_xent"; }
  float value(const Tensor& pred, const Tensor& target) const override;
  Tensor grad(const Tensor& pred, const Tensor& target) const override;

  /// Row-wise softmax of logits (utility shared with metrics/tests).
  static Tensor softmax(const Tensor& logits);
};

/// Sigmoid + binary cross-entropy on logits.
/// pred: (B, 1) or (B) logits; target: same shape with 0/1 labels.
class BinaryCrossEntropy : public Loss {
 public:
  std::string name() const override { return "bce"; }
  float value(const Tensor& pred, const Tensor& target) const override;
  Tensor grad(const Tensor& pred, const Tensor& target) const override;
};

std::unique_ptr<Loss> make_mse();
std::unique_ptr<Loss> make_softmax_cross_entropy();
std::unique_ptr<Loss> make_binary_cross_entropy();

}  // namespace candle

// Normalization layers (BatchNorm was standard equipment in the CANDLE
// benchmark networks; LayerNorm is its batch-size-independent successor —
// relevant to the strong-scaling story, where shrinking per-replica batches
// degrade BatchNorm statistics).
#pragma once

#include "nn/layer.hpp"

namespace candle {

/// Batch normalization over the feature axis of (B, F) inputs.
///   train: y = gamma * (x - mu_B) / sqrt(var_B + eps) + beta,
///          running stats updated with `momentum`;
///   infer: y uses the running statistics.
class BatchNorm : public Layer {
 public:
  explicit BatchNorm(float momentum = 0.9f, float eps = 1e-5f)
      : momentum_(momentum), eps_(eps) {
    CANDLE_CHECK(momentum >= 0.0f && momentum < 1.0f,
                 "batchnorm momentum must be in [0,1)");
    CANDLE_CHECK(eps > 0.0f, "batchnorm eps must be positive");
  }

  std::string name() const override { return "batchnorm"; }
  Shape build(const Shape& input, Pcg32& rng) override;
  Tensor forward(const Tensor& x, bool training) override;
  Tensor infer(const Tensor& x) const override;
  Tensor backward(const Tensor& dy) override;
  std::vector<Tensor*> params() override { return {&gamma_, &beta_}; }
  std::vector<Tensor*> grads() override { return {&dgamma_, &dbeta_}; }

  const Tensor& running_mean() const { return running_mean_; }
  const Tensor& running_var() const { return running_var_; }

 private:
  float momentum_, eps_;
  Index features_ = 0;
  Tensor gamma_, beta_, dgamma_, dbeta_;
  Tensor running_mean_, running_var_;
  // Backward caches (training forward only).
  Tensor xhat_cache_;
  std::vector<float> inv_std_cache_;
};

/// Layer normalization over the feature axis of (B, F) inputs: statistics
/// are per-sample, so behaviour is independent of the (per-replica) batch.
class LayerNorm : public Layer {
 public:
  explicit LayerNorm(float eps = 1e-5f) : eps_(eps) {
    CANDLE_CHECK(eps > 0.0f, "layernorm eps must be positive");
  }

  std::string name() const override { return "layernorm"; }
  Shape build(const Shape& input, Pcg32& rng) override;
  Tensor forward(const Tensor& x, bool training) override;
  Tensor infer(const Tensor& x) const override;
  Tensor backward(const Tensor& dy) override;
  std::vector<Tensor*> params() override { return {&gamma_, &beta_}; }
  std::vector<Tensor*> grads() override { return {&dgamma_, &dbeta_}; }

 private:
  float eps_;
  Index features_ = 0;
  Tensor gamma_, beta_, dgamma_, dbeta_;
  Tensor xhat_cache_;
  std::vector<float> inv_std_cache_;
};

std::unique_ptr<Layer> make_batchnorm(float momentum = 0.9f,
                                      float eps = 1e-5f);
std::unique_ptr<Layer> make_layernorm(float eps = 1e-5f);

}  // namespace candle

#include "nn/layer.hpp"

#include <algorithm>
#include <cmath>

#include "runtime/workspace.hpp"

namespace candle {

namespace {

/// Glorot/Xavier uniform initialization: U[-s, s], s = sqrt(6/(fan_in+fan_out)).
Tensor glorot_uniform(Shape shape, Index fan_in, Index fan_out, Pcg32& rng) {
  const float s = std::sqrt(6.0f / static_cast<float>(fan_in + fan_out));
  return Tensor::uniform(std::move(shape), rng, -s, s);
}

Index batch_of(const Tensor& x) {
  CANDLE_CHECK(x.ndim() >= 2, "layer inputs need a batch dimension");
  return x.dim(0);
}

}  // namespace

// ---- Dense -------------------------------------------------------------------

Shape Dense::build(const Shape& input, Pcg32& rng) {
  CANDLE_CHECK(input.size() == 1,
               "Dense expects flat input, got " + shape_to_string(input));
  in_ = input[0];
  w_ = glorot_uniform({in_, units_}, in_, units_, rng);
  b_ = Tensor::zeros({units_});
  dw_ = Tensor::zeros({in_, units_});
  db_ = Tensor::zeros({units_});
  return {units_};
}

Tensor Dense::forward(const Tensor& x, bool /*training*/) {
  Tensor y = infer(x);
  x_cache_ = x;
  return y;
}

Tensor Dense::infer(const Tensor& x) const {
  CANDLE_CHECK(x.ndim() == 2 && x.dim(1) == in_,
               "Dense forward shape mismatch: " + shape_to_string(x.shape()));
  const Index batch = x.dim(0);
  Tensor y({batch, units_});
  // Per-unit bias rides the GEMM's C-write as a fused Column epilogue.
  const Epilogue ep{b_.data(), Epilogue::BiasAxis::Column,
                    Epilogue::Act::None};
  matmul_into(y, x, Op::None, w_, Op::None, 1.0f, 0.0f, precision_, ep);
  return y;
}

Tensor Dense::backward(const Tensor& dy) {
  const Index batch = batch_of(dy);
  CANDLE_CHECK(dy.dim(1) == units_ && x_cache_.dim(0) == batch,
               "Dense backward shape mismatch");
  // dW = x^T dy ; db = column sums of dy ; dx = dy W^T.
  matmul_into(dw_, x_cache_, Op::Transpose, dy, Op::None, 1.0f, 0.0f,
              precision_);
  db_.fill(0.0f);
  for (Index i = 0; i < batch; ++i) {
    const float* dyrow = dy.data() + i * units_;
    for (Index j = 0; j < units_; ++j) db_[j] += dyrow[j];
  }
  Tensor dx({batch, in_});
  matmul_into(dx, dy, Op::None, w_, Op::Transpose, 1.0f, 0.0f, precision_);
  return dx;
}

// ---- Activations ---------------------------------------------------------------

namespace {
constexpr float kLeakySlope = 0.01f;
constexpr float kEluAlpha = 1.0f;
}  // namespace

std::string activation_name(Activation a) {
  switch (a) {
    case Activation::ReLU: return "relu";
    case Activation::Sigmoid: return "sigmoid";
    case Activation::Tanh: return "tanh";
    case Activation::Identity: return "identity";
    case Activation::LeakyReLU: return "leaky_relu";
    case Activation::Elu: return "elu";
    case Activation::Softplus: return "softplus";
  }
  CANDLE_FAIL("unknown Activation");
}

Shape ActivationLayer::build(const Shape& input, Pcg32& /*rng*/) {
  return input;
}

Tensor ActivationLayer::forward(const Tensor& x, bool /*training*/) {
  Tensor y = infer(x);
  y_cache_ = y;
  return y;
}

Tensor ActivationLayer::infer(const Tensor& x) const {
  Tensor y = x;
  switch (fn_) {
    case Activation::ReLU:
      for (float& v : y.flat()) v = v > 0.0f ? v : 0.0f;
      break;
    case Activation::Sigmoid:
      for (float& v : y.flat()) v = 1.0f / (1.0f + std::exp(-v));
      break;
    case Activation::Tanh:
      for (float& v : y.flat()) v = std::tanh(v);
      break;
    case Activation::Identity:
      break;
    case Activation::LeakyReLU:
      for (float& v : y.flat()) v = v > 0.0f ? v : kLeakySlope * v;
      break;
    case Activation::Elu:
      for (float& v : y.flat()) {
        v = v > 0.0f ? v : kEluAlpha * (std::exp(v) - 1.0f);
      }
      break;
    case Activation::Softplus:
      // log(1 + e^x), overflow-safe form.
      for (float& v : y.flat()) {
        v = std::max(v, 0.0f) + std::log1p(std::exp(-std::abs(v)));
      }
      break;
  }
  return y;
}

Tensor ActivationLayer::backward(const Tensor& dy) {
  CANDLE_CHECK(dy.same_shape(y_cache_), "activation backward shape mismatch");
  Tensor dx = dy;
  const float* y = y_cache_.data();
  float* d = dx.data();
  const Index n = dx.numel();
  switch (fn_) {
    case Activation::ReLU:
      for (Index i = 0; i < n; ++i) d[i] = y[i] > 0.0f ? d[i] : 0.0f;
      break;
    case Activation::Sigmoid:
      for (Index i = 0; i < n; ++i) d[i] *= y[i] * (1.0f - y[i]);
      break;
    case Activation::Tanh:
      for (Index i = 0; i < n; ++i) d[i] *= 1.0f - y[i] * y[i];
      break;
    case Activation::Identity:
      break;
    case Activation::LeakyReLU:
      for (Index i = 0; i < n; ++i) d[i] *= y[i] > 0.0f ? 1.0f : kLeakySlope;
      break;
    case Activation::Elu:
      // d/dx = 1 for x>0; alpha*e^x = y + alpha for x<=0.
      for (Index i = 0; i < n; ++i) {
        d[i] *= y[i] > 0.0f ? 1.0f : y[i] + kEluAlpha;
      }
      break;
    case Activation::Softplus:
      // d/dx = sigmoid(x) = 1 - e^{-y}.
      for (Index i = 0; i < n; ++i) d[i] *= 1.0f - std::exp(-y[i]);
      break;
  }
  return dx;
}

// ---- Dropout -------------------------------------------------------------------

Shape Dropout::build(const Shape& input, Pcg32& rng) {
  rng_ = rng.split(0x9d0u);  // private stream: masks independent of init draws
  return input;
}

Tensor Dropout::forward(const Tensor& x, bool training) {
  if (!training || rate_ == 0.0f) {
    mask_ = Tensor();  // marks inference pass for backward
    return x;
  }
  mask_ = Tensor(x.shape());
  Tensor y = x;
  const float keep = 1.0f - rate_;
  const float inv_keep = 1.0f / keep;
  float* m = mask_.data();
  float* v = y.data();
  for (Index i = 0; i < y.numel(); ++i) {
    const bool kept = rng_.next_float() < keep;
    m[i] = kept ? inv_keep : 0.0f;
    v[i] *= m[i];
  }
  return y;
}

Tensor Dropout::infer(const Tensor& x) const { return x; }

Tensor Dropout::backward(const Tensor& dy) {
  if (mask_.numel() <= 1) return dy;  // inference pass
  CANDLE_CHECK(dy.same_shape(mask_), "dropout backward shape mismatch");
  Tensor dx = dy;
  const float* m = mask_.data();
  float* d = dx.data();
  for (Index i = 0; i < dx.numel(); ++i) d[i] *= m[i];
  return dx;
}

// ---- Flatten -------------------------------------------------------------------

Shape Flatten::build(const Shape& input, Pcg32& /*rng*/) {
  in_shape_ = input;
  return {shape_numel(input)};
}

Tensor Flatten::forward(const Tensor& x, bool /*training*/) {
  return infer(x);
}

Tensor Flatten::infer(const Tensor& x) const {
  Tensor y = x;
  y.reshape({x.dim(0), -1});
  return y;
}

Tensor Flatten::backward(const Tensor& dy) {
  Tensor dx = dy;
  Shape s = in_shape_;
  s.insert(s.begin(), dy.dim(0));
  dx.reshape(std::move(s));
  return dx;
}

// ---- Conv1D -------------------------------------------------------------------

Shape Conv1D::build(const Shape& input, Pcg32& rng) {
  CANDLE_CHECK(input.size() == 2,
               "Conv1D expects (channels, length), got " +
                   shape_to_string(input));
  channels_ = input[0];
  length_ = input[1];
  lout_ = conv_out_length(length_, kernel_, stride_);
  const Index fan_in = channels_ * kernel_;
  w_ = glorot_uniform({filters_, fan_in}, fan_in, filters_, rng);
  b_ = Tensor::zeros({filters_});
  dw_ = Tensor::zeros({filters_, fan_in});
  db_ = Tensor::zeros({filters_});
  return {filters_, lout_};
}

double Conv1D::flops_per_sample() const {
  return 2.0 * static_cast<double>(filters_) *
         static_cast<double>(channels_ * kernel_) *
         static_cast<double>(lout_);
}

Tensor Conv1D::forward(const Tensor& x, bool /*training*/) {
  Tensor y = infer(x);
  x_cache_ = x;
  return y;
}

Tensor Conv1D::infer(const Tensor& x) const {
  CANDLE_CHECK(x.ndim() == 3 && x.dim(1) == channels_ && x.dim(2) == length_,
               "Conv1D forward shape mismatch: " + shape_to_string(x.shape()));
  const Index batch = x.dim(0);
  Tensor y({batch, filters_, lout_});
  // The unfold streams straight into the GEMM's packed-B panels and the
  // per-filter bias is fused into the C-write — no im2col matrix, no
  // separate bias sweep.
  for (Index s = 0; s < batch; ++s) {
    conv1d_forward_gemm(precision_, x.data() + s * channels_ * length_,
                        channels_, length_, kernel_, stride_, w_.data(),
                        filters_, b_.data(), y.data() + s * filters_ * lout_);
  }
  return y;
}

Tensor Conv1D::backward(const Tensor& dy) {
  const Index batch = batch_of(dy);
  CANDLE_CHECK(dy.ndim() == 3 && dy.dim(1) == filters_ && dy.dim(2) == lout_,
               "Conv1D backward shape mismatch");
  const Index fan_in = channels_ * kernel_;
  dw_.fill(0.0f);
  db_.fill(0.0f);
  Tensor dx({batch, channels_, length_});
  WorkspaceArena& arena = WorkspaceArena::local();
  WorkspaceArena::Scope scope(arena);
  float* cols = arena.alloc<float>(static_cast<std::size_t>(fan_in * lout_));
  float* dcols = arena.alloc<float>(static_cast<std::size_t>(fan_in * lout_));
  for (Index s = 0; s < batch; ++s) {
    const float* dys = dy.data() + s * filters_ * lout_;
    // db
    for (Index f = 0; f < filters_; ++f) {
      for (Index j = 0; j < lout_; ++j) db_[f] += dys[f * lout_ + j];
    }
    // dW += dy_s @ cols^T
    im2col_1d(x_cache_.data() + s * channels_ * length_, channels_, length_,
              kernel_, stride_, cols);
    gemm_emulated(precision_, Op::None, Op::Transpose, filters_, fan_in,
                  lout_, 1.0f, dys, lout_, cols, lout_, 1.0f,
                  dw_.data(), fan_in);
    // dcols = W^T @ dy_s ; then scatter back.
    gemm_emulated(precision_, Op::Transpose, Op::None, fan_in, lout_,
                  filters_, 1.0f, w_.data(), fan_in, dys, lout_, 0.0f,
                  dcols, lout_);
    col2im_1d(dcols, channels_, length_, kernel_, stride_,
              dx.data() + s * channels_ * length_);
  }
  return dx;
}

// ---- Conv2D -------------------------------------------------------------------

Shape Conv2D::build(const Shape& input, Pcg32& rng) {
  CANDLE_CHECK(input.size() == 3,
               "Conv2D expects (channels, height, width), got " +
                   shape_to_string(input));
  channels_ = input[0];
  height_ = input[1];
  width_ = input[2];
  hout_ = conv_out_length(height_, kernel_, stride_);
  wout_ = conv_out_length(width_, kernel_, stride_);
  const Index fan_in = channels_ * kernel_ * kernel_;
  w_ = glorot_uniform({filters_, fan_in}, fan_in, filters_, rng);
  b_ = Tensor::zeros({filters_});
  dw_ = Tensor::zeros({filters_, fan_in});
  db_ = Tensor::zeros({filters_});
  return {filters_, hout_, wout_};
}

double Conv2D::flops_per_sample() const {
  return 2.0 * static_cast<double>(filters_) *
         static_cast<double>(channels_ * kernel_ * kernel_) *
         static_cast<double>(hout_ * wout_);
}

Tensor Conv2D::forward(const Tensor& x, bool /*training*/) {
  Tensor y = infer(x);
  x_cache_ = x;
  return y;
}

Tensor Conv2D::infer(const Tensor& x) const {
  CANDLE_CHECK(x.ndim() == 4 && x.dim(1) == channels_ &&
                   x.dim(2) == height_ && x.dim(3) == width_,
               "Conv2D forward shape mismatch: " + shape_to_string(x.shape()));
  const Index batch = x.dim(0);
  const Index ncols = hout_ * wout_;
  Tensor y({batch, filters_, hout_, wout_});
  // Fused unfold-into-pack + per-filter bias epilogue (see Conv1D::forward).
  for (Index s = 0; s < batch; ++s) {
    conv2d_forward_gemm(precision_, x.data() + s * channels_ * height_ * width_,
                        channels_, height_, width_, kernel_, stride_,
                        w_.data(), filters_, b_.data(),
                        y.data() + s * filters_ * ncols);
  }
  return y;
}

Tensor Conv2D::backward(const Tensor& dy) {
  const Index batch = batch_of(dy);
  CANDLE_CHECK(dy.ndim() == 4 && dy.dim(1) == filters_ &&
                   dy.dim(2) == hout_ && dy.dim(3) == wout_,
               "Conv2D backward shape mismatch");
  const Index fan_in = channels_ * kernel_ * kernel_;
  const Index ncols = hout_ * wout_;
  dw_.fill(0.0f);
  db_.fill(0.0f);
  Tensor dx({batch, channels_, height_, width_});
  WorkspaceArena& arena = WorkspaceArena::local();
  WorkspaceArena::Scope scope(arena);
  float* cols = arena.alloc<float>(static_cast<std::size_t>(fan_in * ncols));
  float* dcols = arena.alloc<float>(static_cast<std::size_t>(fan_in * ncols));
  for (Index s = 0; s < batch; ++s) {
    const float* dys = dy.data() + s * filters_ * ncols;
    for (Index f = 0; f < filters_; ++f) {
      for (Index j = 0; j < ncols; ++j) db_[f] += dys[f * ncols + j];
    }
    im2col_2d(x_cache_.data() + s * channels_ * height_ * width_, channels_,
              height_, width_, kernel_, stride_, cols);
    gemm_emulated(precision_, Op::None, Op::Transpose, filters_, fan_in,
                  ncols, 1.0f, dys, ncols, cols, ncols, 1.0f,
                  dw_.data(), fan_in);
    gemm_emulated(precision_, Op::Transpose, Op::None, fan_in, ncols,
                  filters_, 1.0f, w_.data(), fan_in, dys, ncols, 0.0f,
                  dcols, ncols);
    col2im_2d(dcols, channels_, height_, width_, kernel_, stride_,
              dx.data() + s * channels_ * height_ * width_);
  }
  return dx;
}

// ---- MaxPool1D -----------------------------------------------------------------

Shape MaxPool1D::build(const Shape& input, Pcg32& /*rng*/) {
  CANDLE_CHECK(input.size() == 2,
               "MaxPool1D expects (channels, length), got " +
                   shape_to_string(input));
  channels_ = input[0];
  length_ = input[1];
  CANDLE_CHECK(length_ >= window_, "pool window exceeds input length");
  lout_ = length_ / window_;
  return {channels_, lout_};
}

Tensor MaxPool1D::forward(const Tensor& x, bool /*training*/) {
  CANDLE_CHECK(x.ndim() == 3 && x.dim(1) == channels_ && x.dim(2) == length_,
               "MaxPool1D forward shape mismatch");
  batch_ = x.dim(0);
  Tensor y({batch_, channels_, lout_});
  argmax_.assign(static_cast<std::size_t>(batch_ * channels_ * lout_), 0);
  for (Index s = 0; s < batch_; ++s) {
    for (Index c = 0; c < channels_; ++c) {
      const float* xc = x.data() + (s * channels_ + c) * length_;
      float* yc = y.data() + (s * channels_ + c) * lout_;
      Index* am = argmax_.data() + (s * channels_ + c) * lout_;
      for (Index j = 0; j < lout_; ++j) {
        const Index base = j * window_;
        Index best = base;
        float bv = xc[base];
        for (Index t = 1; t < window_; ++t) {
          if (xc[base + t] > bv) {
            bv = xc[base + t];
            best = base + t;
          }
        }
        yc[j] = bv;
        am[j] = best;
      }
    }
  }
  return y;
}

Tensor MaxPool1D::infer(const Tensor& x) const {
  CANDLE_CHECK(x.ndim() == 3 && x.dim(1) == channels_ && x.dim(2) == length_,
               "MaxPool1D forward shape mismatch");
  const Index batch = x.dim(0);
  Tensor y({batch, channels_, lout_});
  for (Index s = 0; s < batch; ++s) {
    for (Index c = 0; c < channels_; ++c) {
      const float* xc = x.data() + (s * channels_ + c) * length_;
      float* yc = y.data() + (s * channels_ + c) * lout_;
      for (Index j = 0; j < lout_; ++j) {
        const Index base = j * window_;
        float bv = xc[base];
        for (Index t = 1; t < window_; ++t) bv = std::max(bv, xc[base + t]);
        yc[j] = bv;
      }
    }
  }
  return y;
}

Tensor MaxPool1D::backward(const Tensor& dy) {
  CANDLE_CHECK(dy.ndim() == 3 && dy.dim(0) == batch_ &&
                   dy.dim(1) == channels_ && dy.dim(2) == lout_,
               "MaxPool1D backward shape mismatch");
  Tensor dx({batch_, channels_, length_});
  for (Index s = 0; s < batch_; ++s) {
    for (Index c = 0; c < channels_; ++c) {
      const float* dyc = dy.data() + (s * channels_ + c) * lout_;
      float* dxc = dx.data() + (s * channels_ + c) * length_;
      const Index* am = argmax_.data() + (s * channels_ + c) * lout_;
      for (Index j = 0; j < lout_; ++j) dxc[am[j]] += dyc[j];
    }
  }
  return dx;
}

// ---- factories -----------------------------------------------------------------

std::unique_ptr<Layer> make_dense(Index units) {
  return std::make_unique<Dense>(units);
}
std::unique_ptr<Layer> make_activation(Activation fn) {
  return std::make_unique<ActivationLayer>(fn);
}
std::unique_ptr<Layer> make_relu() {
  return std::make_unique<ActivationLayer>(Activation::ReLU);
}
std::unique_ptr<Layer> make_sigmoid() {
  return std::make_unique<ActivationLayer>(Activation::Sigmoid);
}
std::unique_ptr<Layer> make_tanh() {
  return std::make_unique<ActivationLayer>(Activation::Tanh);
}
std::unique_ptr<Layer> make_leaky_relu() {
  return std::make_unique<ActivationLayer>(Activation::LeakyReLU);
}
std::unique_ptr<Layer> make_elu() {
  return std::make_unique<ActivationLayer>(Activation::Elu);
}
std::unique_ptr<Layer> make_softplus() {
  return std::make_unique<ActivationLayer>(Activation::Softplus);
}
std::unique_ptr<Layer> make_dropout(float rate) {
  return std::make_unique<Dropout>(rate);
}
std::unique_ptr<Layer> make_flatten() { return std::make_unique<Flatten>(); }
std::unique_ptr<Layer> make_conv1d(Index filters, Index kernel, Index stride) {
  return std::make_unique<Conv1D>(filters, kernel, stride);
}
std::unique_ptr<Layer> make_conv2d(Index filters, Index kernel, Index stride) {
  return std::make_unique<Conv2D>(filters, kernel, stride);
}
std::unique_ptr<Layer> make_maxpool1d(Index window) {
  return std::make_unique<MaxPool1D>(window);
}

}  // namespace candle

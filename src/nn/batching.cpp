#include "nn/batching.hpp"

#include <algorithm>

namespace candle {

namespace {

Shape batched_shape(const Shape& sample_shape, Index rows) {
  Shape s = sample_shape;
  s.insert(s.begin(), rows);
  return s;
}

}  // namespace

BatchAssembler::BatchAssembler(Shape sample_shape, Index max_rows)
    : sample_shape_(std::move(sample_shape)),
      max_rows_(max_rows),
      sample_numel_(shape_numel(sample_shape_)),
      batch_(batched_shape(sample_shape_, max_rows)) {
  CANDLE_CHECK(max_rows_ >= 1, "BatchAssembler needs at least one row");
  CANDLE_CHECK(sample_numel_ >= 1, "BatchAssembler sample shape is empty");
}

Tensor& BatchAssembler::begin(Index rows) {
  CANDLE_CHECK(rows >= 1 && rows <= max_rows_,
               "batch rows must be in [1, max_rows]");
  batch_.resize_dim0(rows);
  return batch_;
}

void BatchAssembler::set_row(Index row, std::span<const float> sample) {
  CANDLE_CHECK(row >= 0 && row < batch_.dim(0), "batch row out of range");
  CANDLE_CHECK(static_cast<Index>(sample.size()) == sample_numel_,
               "sample size does not match the assembler's sample shape");
  std::copy(sample.begin(), sample.end(),
            batch_.data() + row * sample_numel_);
}

const Tensor& BatchAssembler::batch_from(const Tensor& x, Index lo, Index hi) {
  CANDLE_CHECK(x.ndim() >= 1 && lo >= 0 && lo < hi && hi <= x.dim(0),
               "batch_from range out of bounds");
  CANDLE_CHECK(x.dim(0) > 0 && x.numel() % x.dim(0) == 0 &&
                   x.numel() / x.dim(0) == sample_numel_,
               "dataset sample shape does not match the assembler");
  begin(hi - lo);
  std::copy(x.data() + lo * sample_numel_, x.data() + hi * sample_numel_,
            batch_.data());
  return batch_;
}

RowSlotAssembler::RowSlotAssembler(Shape sample_shape, Index capacity)
    : sample_shape_(std::move(sample_shape)),
      capacity_(capacity),
      sample_numel_(shape_numel(sample_shape_)),
      slots_(batched_shape(sample_shape_, capacity)),
      batch_(batched_shape(sample_shape_, capacity)),
      occupied_(static_cast<std::size_t>(capacity), 0) {
  CANDLE_CHECK(capacity_ >= 1, "RowSlotAssembler needs at least one slot");
  CANDLE_CHECK(sample_numel_ >= 1, "RowSlotAssembler sample shape is empty");
  gathered_.reserve(static_cast<std::size_t>(capacity_));
}

bool RowSlotAssembler::slot_occupied(Index slot) const {
  CANDLE_CHECK(slot >= 0 && slot < capacity_, "slot id out of range");
  return occupied_[static_cast<std::size_t>(slot)] != 0;
}

Index RowSlotAssembler::admit(std::span<const float> sample) {
  CANDLE_CHECK(occupied_count_ < capacity_, "RowSlotAssembler is full");
  CANDLE_CHECK(static_cast<Index>(sample.size()) == sample_numel_,
               "sample size does not match the assembler's sample shape");
  while (occupied_[static_cast<std::size_t>(lowest_free_)] != 0) {
    ++lowest_free_;
  }
  const Index slot = lowest_free_;
  occupied_[static_cast<std::size_t>(slot)] = 1;
  ++occupied_count_;
  ++lowest_free_;
  std::copy(sample.begin(), sample.end(),
            slots_.data() + slot * sample_numel_);
  return slot;
}

void RowSlotAssembler::evict(Index slot) {
  CANDLE_CHECK(slot_occupied(slot), "evicting an empty slot");
  occupied_[static_cast<std::size_t>(slot)] = 0;
  --occupied_count_;
  lowest_free_ = std::min(lowest_free_, slot);
}

const Tensor& RowSlotAssembler::gather() {
  CANDLE_CHECK(occupied_count_ >= 1, "gather() with no occupied slots");
  gathered_.clear();
  for (Index s = 0; s < capacity_ &&
                    static_cast<Index>(gathered_.size()) < occupied_count_;
       ++s) {
    if (occupied_[static_cast<std::size_t>(s)] != 0) gathered_.push_back(s);
  }
  return gather({gathered_.data(), gathered_.size()});
}

const Tensor& RowSlotAssembler::gather(std::span<const Index> slots) {
  CANDLE_CHECK(!slots.empty(), "gather() of an empty slot subset");
  const Index rows = static_cast<Index>(slots.size());
  CANDLE_CHECK(rows <= capacity_, "gather subset larger than capacity");
  batch_.resize_dim0(rows);
  for (Index i = 0; i < rows; ++i) {
    const Index s = slots[static_cast<std::size_t>(i)];
    CANDLE_CHECK(slot_occupied(s), "gathering an empty slot");
    std::copy(slots_.data() + s * sample_numel_,
              slots_.data() + (s + 1) * sample_numel_,
              batch_.data() + i * sample_numel_);
  }
  // Re-record which slots back the gathered rows (gather() pre-fills the
  // same vector it then passes here; copying via the span keeps both entry
  // points consistent without aliasing trouble).
  if (gathered_.data() != slots.data()) {
    gathered_.assign(slots.begin(), slots.end());
  }
  return batch_;
}

}  // namespace candle

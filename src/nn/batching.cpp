#include "nn/batching.hpp"

#include <algorithm>

namespace candle {

namespace {

Shape batched_shape(const Shape& sample_shape, Index rows) {
  Shape s = sample_shape;
  s.insert(s.begin(), rows);
  return s;
}

}  // namespace

BatchAssembler::BatchAssembler(Shape sample_shape, Index max_rows)
    : sample_shape_(std::move(sample_shape)),
      max_rows_(max_rows),
      sample_numel_(shape_numel(sample_shape_)),
      batch_(batched_shape(sample_shape_, max_rows)) {
  CANDLE_CHECK(max_rows_ >= 1, "BatchAssembler needs at least one row");
  CANDLE_CHECK(sample_numel_ >= 1, "BatchAssembler sample shape is empty");
}

Tensor& BatchAssembler::begin(Index rows) {
  CANDLE_CHECK(rows >= 1 && rows <= max_rows_,
               "batch rows must be in [1, max_rows]");
  batch_.resize_dim0(rows);
  return batch_;
}

void BatchAssembler::set_row(Index row, std::span<const float> sample) {
  CANDLE_CHECK(row >= 0 && row < batch_.dim(0), "batch row out of range");
  CANDLE_CHECK(static_cast<Index>(sample.size()) == sample_numel_,
               "sample size does not match the assembler's sample shape");
  std::copy(sample.begin(), sample.end(),
            batch_.data() + row * sample_numel_);
}

const Tensor& BatchAssembler::batch_from(const Tensor& x, Index lo, Index hi) {
  CANDLE_CHECK(x.ndim() >= 1 && lo >= 0 && lo < hi && hi <= x.dim(0),
               "batch_from range out of bounds");
  CANDLE_CHECK(x.dim(0) > 0 && x.numel() % x.dim(0) == 0 &&
                   x.numel() / x.dim(0) == sample_numel_,
               "dataset sample shape does not match the assembler");
  begin(hi - lo);
  std::copy(x.data() + lo * sample_numel_, x.data() + hi * sample_numel_,
            batch_.data());
  return batch_;
}

}  // namespace candle

// Sequential model graph: an ordered list of layers trained by backprop.
// This mirrors the Keras-1 Sequential API that the 2017 CANDLE benchmarks
// were written against.
//
// The flat-gradient accessors (grad_size / copy_grads_to / set_grads_from /
// copy_weights_to / set_weights_from) exist for the distributed runtime:
// data-parallel replicas all-reduce one contiguous gradient vector, exactly
// as an MPI_Allreduce over a fused gradient buffer would.
#pragma once

#include <functional>
#include <memory>
#include <span>
#include <string>
#include <vector>

#include "nn/layer.hpp"
#include "nn/loss.hpp"
#include "nn/optimizer.hpp"

namespace candle {

class Model {
 public:
  Model() = default;
  Model(Model&&) = default;
  Model& operator=(Model&&) = default;

  /// Append a layer.  Must be called before build().
  Model& add(std::unique_ptr<Layer> layer);

  /// Allocate all parameters for a per-sample input shape; deterministic in
  /// `seed` (two models built with the same layers + seed are identical).
  void build(Shape input_shape, std::uint64_t seed);
  bool built() const { return built_; }

  Index num_layers() const { return static_cast<Index>(layers_.size()); }
  Layer& layer(Index i) { return *layers_.at(static_cast<std::size_t>(i)); }
  const Shape& input_shape() const { return input_shape_; }
  const Shape& output_shape() const { return output_shape_; }

  /// Forward pass over a batch (first dim = batch size).
  Tensor forward(const Tensor& x, bool training = false);

  /// Const inference-mode forward pass: bit-identical to
  /// forward(x, /*training=*/false) but mutates no layer state, so any
  /// number of threads may call infer() on the *same* model concurrently.
  /// The serving engine (src/serve) runs its worker replicas through this
  /// path — they share one immutable weight set instead of copying it.
  Tensor infer(const Tensor& x) const;

  /// Backward pass: dLoss/dOutput in, dLoss/dInput out; fills layer grads.
  Tensor backward(const Tensor& dy);

  /// Invoked during the hooked backward as each layer's parameter gradients
  /// become final.  Layers are reported in reverse order (deepest first),
  /// including parameter-less ones — this is the stream a DDP-style bucketed
  /// all-reduce consumes to overlap communication with the remaining
  /// backward compute.
  using GradReadyHook = std::function<void(Index layer)>;

  /// Backward pass that reports per-layer gradient readiness.  Numerically
  /// identical to the monolithic backward(); the hook only observes.
  Tensor backward(const Tensor& dy, const GradReadyHook& on_grad_ready);

  /// One optimizer step on a batch; returns the batch loss.  `loss_scale`
  /// multiplies the loss gradient before backprop and divides the parameter
  /// gradients before the update (mixed-precision loss scaling).
  float train_batch(const Tensor& x, const Tensor& y, const Loss& loss,
                    Optimizer& opt, float loss_scale = 1.0f);

  /// Mean loss over a dataset, evaluated in inference mode.
  float evaluate(const Tensor& x, const Tensor& y, const Loss& loss,
                 Index batch_size = 256);

  /// Inference-mode predictions for a batch tensor.  Slices the dataset
  /// through a reusable BatchAssembler (full batches and the ragged tail
  /// cycle through one buffer — no per-slice heap allocation) and runs the
  /// const infer() path; results are bit-identical for every batch_size.
  Tensor predict(const Tensor& x, Index batch_size = 256) const;

  // ---- parameters ------------------------------------------------------------

  std::vector<Tensor*> params();
  std::vector<Tensor*> grads();
  Index num_params() const;

  /// Total elements across all gradient tensors.
  Index grad_size() const { return num_params(); }

  /// Extent of one layer's gradients inside the flat gradient vector
  /// (forward-layer order, matching copy_grads_to): layer i's grads occupy
  /// [offset, offset + numel).  Parameter-less layers have numel == 0.
  struct GradExtent {
    Index offset = 0;
    Index numel = 0;
  };

  /// Per-layer flat-gradient extents, one entry per layer.
  std::vector<GradExtent> grad_extents() const;

  /// Serialize one layer's gradients into `out` (size must equal the
  /// layer's extent numel).  Used by the bucketed all-reduce to stream
  /// gradients out as backward produces them.
  void copy_layer_grads_to(Index layer, std::span<float> out) const;

  /// Serialize gradients into `out` (size must equal grad_size()).
  void copy_grads_to(std::span<float> out) const;
  /// Overwrite gradients from a flat buffer.
  void set_grads_from(std::span<const float> in);
  /// Scale all gradients in place.
  void scale_grads(float factor);
  /// Serialize / overwrite weights (for replica synchronization).
  void copy_weights_to(std::span<float> out) const;
  void set_weights_from(std::span<const float> in);

  // ---- architecture metadata (consumed by hpcsim) ------------------------------

  /// Forward multiply-accumulate FLOPs per sample, summed over layers.
  double flops_per_sample() const;

  /// Set the numeric format for every layer's heavy math.
  void set_compute_precision(Precision p);
  Precision compute_precision() const { return precision_; }

  /// One-line per-layer summary ("dense(64) -> relu -> dense(1)").
  std::string summary() const;

 private:
  std::vector<std::unique_ptr<Layer>> layers_;
  Shape input_shape_, output_shape_;
  bool built_ = false;
  Precision precision_ = Precision::FP32;
};

}  // namespace candle

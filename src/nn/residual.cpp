#include "nn/residual.hpp"

namespace candle {

Residual& Residual::add(std::unique_ptr<Layer> layer) {
  CANDLE_CHECK(!built_, "cannot add layers to a built Residual block");
  CANDLE_CHECK(layer != nullptr, "null layer");
  inner_.push_back(std::move(layer));
  return *this;
}

std::string Residual::name() const {
  std::string s = "residual(";
  for (std::size_t i = 0; i < inner_.size(); ++i) {
    if (i > 0) s += " -> ";
    s += inner_[i]->name();
  }
  return s + ")";
}

Shape Residual::build(const Shape& input, Pcg32& rng) {
  CANDLE_CHECK(!built_, "Residual already built");
  CANDLE_CHECK(!inner_.empty(), "Residual block has no inner layers");
  Shape shape = input;
  std::uint64_t salt = 0;
  for (auto& layer : inner_) {
    Pcg32 layer_rng = rng.split(salt++);
    shape = layer->build(shape, layer_rng);
  }
  CANDLE_CHECK(shape == input,
               "residual inner stack must preserve shape: " +
                   shape_to_string(input) + " -> " + shape_to_string(shape));
  built_ = true;
  return input;
}

Tensor Residual::forward(const Tensor& x, bool training) {
  CANDLE_CHECK(built_, "build() the Residual block first");
  Tensor h = x;
  for (auto& layer : inner_) h = layer->forward(h, training);
  h.axpy(1.0f, x);  // y = F(x) + x
  return h;
}

Tensor Residual::infer(const Tensor& x) const {
  CANDLE_CHECK(built_, "build() the Residual block first");
  Tensor h = x;
  for (const auto& layer : inner_) h = layer->infer(h);
  h.axpy(1.0f, x);  // y = F(x) + x
  return h;
}

Tensor Residual::backward(const Tensor& dy) {
  CANDLE_CHECK(built_, "build() the Residual block first");
  Tensor d = dy;
  for (auto it = inner_.rbegin(); it != inner_.rend(); ++it) {
    d = (*it)->backward(d);
  }
  d.axpy(1.0f, dy);  // dx = dF + identity path
  return d;
}

std::vector<Tensor*> Residual::params() {
  std::vector<Tensor*> out;
  for (auto& layer : inner_) {
    for (Tensor* p : layer->params()) out.push_back(p);
  }
  return out;
}

std::vector<Tensor*> Residual::grads() {
  std::vector<Tensor*> out;
  for (auto& layer : inner_) {
    for (Tensor* g : layer->grads()) out.push_back(g);
  }
  return out;
}

double Residual::flops_per_sample() const {
  double f = 0.0;
  for (const auto& layer : inner_) f += layer->flops_per_sample();
  return f;
}

void Residual::set_precision(Precision p) {
  Layer::set_precision(p);
  for (auto& layer : inner_) layer->set_precision(p);
}

std::unique_ptr<Layer> make_residual_mlp_block(Index width) {
  auto block = std::make_unique<Residual>();
  block->add(make_dense(width)).add(make_relu()).add(make_dense(width));
  return block;
}

}  // namespace candle

// Dataset container + batching utilities shared by trainers, workload
// generators, and the HPO campaign driver.
#pragma once

#include <span>
#include <utility>
#include <vector>

#include "core/tensor.hpp"
#include "runtime/rng.hpp"

namespace candle {

/// A supervised dataset: features `x` (first dim = samples) and targets `y`
/// (first dim = samples; rank depends on the task).
struct Dataset {
  Tensor x;
  Tensor y;

  Index size() const { return x.ndim() > 0 ? x.dim(0) : 0; }

  /// Per-sample feature shape (x shape without the leading dim).
  Shape sample_shape() const {
    Shape s = x.shape();
    CANDLE_CHECK(!s.empty(), "dataset has no samples");
    s.erase(s.begin());
    return s;
  }
};

/// Rows [lo, hi) of a dataset (copies).
Dataset slice(const Dataset& d, Index lo, Index hi);

/// Rows selected by `idx`, in order (copies).
Dataset gather(const Dataset& d, std::span<const Index> idx);

/// Gather rows selected by `idx` into `out`'s existing tensors, which must
/// already have shape {idx.size(), sample dims...}.  No allocation: this is
/// the steady-state batch-assembly primitive (persistent shard buffers are
/// refilled in place every step instead of slice() allocating fresh ones).
void gather_into(const Dataset& d, std::span<const Index> idx, Dataset& out);

/// Deterministic shuffled split into (first, second) with `first_fraction`
/// of the rows in the first part.
std::pair<Dataset, Dataset> split(const Dataset& d, double first_fraction,
                                  std::uint64_t seed);

/// Iterate a dataset in mini-batches, optionally reshuffling every epoch.
class BatchIterator {
 public:
  BatchIterator(const Dataset& data, Index batch_size, bool shuffle,
                std::uint64_t seed);

  /// Number of batches per epoch (last batch may be short).
  Index batches_per_epoch() const;

  /// Next mini-batch; wraps to a new epoch (reshuffling if enabled) when the
  /// current one is exhausted.
  Dataset next();

  /// Advance exactly like next() but return the batch's row indices instead
  /// of materializing a Dataset copy.  The view is valid until the next
  /// next()/next_indices() call.  Callers gather the rows themselves (e.g.
  /// gather_into persistent buffers), which keeps the legacy batch stream
  /// bit-identical while removing the per-step allocations.
  std::span<const Index> next_indices();

  /// Which epoch the *next* batch belongs to (starts at 0).
  Index epoch() const { return epoch_; }

 private:
  void reshuffle();

  const Dataset* data_;
  Index batch_size_;
  bool shuffle_;
  Pcg32 rng_;
  std::vector<Index> order_;
  Index cursor_ = 0;
  Index epoch_ = 0;
};

/// Per-feature standardization parameters fit on a training set.
struct Standardizer {
  std::vector<float> mean;
  std::vector<float> stddev;

  /// Fit on the rows of a rank-2 feature tensor.
  static Standardizer fit(const Tensor& x);
  /// Apply in place ((x - mean)/stddev per column).
  void apply(Tensor& x) const;
};

}  // namespace candle

// Neural-network layers (Keras-1-era feature set, matching the dense +
// convolutional networks the paper says dominate current DNN workloads).
//
// Contract: a layer is built once for a fixed per-sample input shape, then
// alternates forward/backward.  `forward` consumes a batch tensor whose
// first dimension is the batch; `backward` consumes dLoss/dOutput for the
// same batch and returns dLoss/dInput, accumulating parameter gradients
// into the tensors exposed by `grads()` (overwritten each backward).
//
// Reduced-precision training (claim C1) threads through `set_precision`:
// Dense/Conv layers run their GEMMs through gemm_emulated at that format.
#pragma once

#include <memory>
#include <string>
#include <vector>

#include "core/formats.hpp"
#include "core/kernels.hpp"
#include "core/tensor.hpp"
#include "runtime/rng.hpp"

namespace candle {

/// Base class for all layers.
class Layer {
 public:
  virtual ~Layer() = default;

  /// Human-readable layer type, e.g. "dense(64)".
  virtual std::string name() const = 0;

  /// Allocate parameters for the given per-sample input shape (no batch
  /// dimension) and return the per-sample output shape.  Called exactly once.
  virtual Shape build(const Shape& input, Pcg32& rng) = 0;

  /// Compute the batch output.  `training` enables dropout etc.
  virtual Tensor forward(const Tensor& x, bool training) = 0;

  /// Const inference pass: bit-identical to `forward(x, /*training=*/false)`
  /// but touches no mutable state — no activation caches, no RNG draws — so
  /// any number of threads may run infer() on the *same* layer concurrently.
  /// This is the path the serving engine (src/serve) drives: worker threads
  /// share one immutable model instead of copying weights per replica.
  /// backward() still requires a prior forward(), never an infer().
  virtual Tensor infer(const Tensor& x) const = 0;

  /// Back-propagate: given dLoss/dOutput, fill parameter grads and return
  /// dLoss/dInput.  Must be called after a forward on the same batch.
  virtual Tensor backward(const Tensor& dy) = 0;

  /// Trainable parameter tensors (empty for stateless layers).
  virtual std::vector<Tensor*> params() { return {}; }

  /// Gradient tensors, parallel to params().
  virtual std::vector<Tensor*> grads() { return {}; }

  /// Multiply-accumulate count per sample for one forward pass; the machine
  /// model prices a training step at ~3x this (fwd + two backward GEMMs).
  virtual double flops_per_sample() const { return 0.0; }

  /// Set the numeric format used for this layer's heavy math.  Container
  /// layers (e.g. Residual) override to propagate to their children.
  virtual void set_precision(Precision p) { precision_ = p; }
  Precision precision() const { return precision_; }

 protected:
  Precision precision_ = Precision::FP32;
};

/// Fully connected layer: y = x W + b with W of shape (in, out).
class Dense : public Layer {
 public:
  explicit Dense(Index units) : units_(units) {
    CANDLE_CHECK(units >= 1, "Dense needs at least one unit");
  }

  std::string name() const override {
    return "dense(" + std::to_string(units_) + ")";
  }
  Shape build(const Shape& input, Pcg32& rng) override;
  Tensor forward(const Tensor& x, bool training) override;
  Tensor infer(const Tensor& x) const override;
  Tensor backward(const Tensor& dy) override;
  std::vector<Tensor*> params() override { return {&w_, &b_}; }
  std::vector<Tensor*> grads() override { return {&dw_, &db_}; }
  double flops_per_sample() const override {
    return 2.0 * static_cast<double>(in_) * static_cast<double>(units_);
  }

  const Tensor& weights() const { return w_; }
  const Tensor& bias() const { return b_; }

 private:
  Index units_;
  Index in_ = 0;
  Tensor w_, b_, dw_, db_;
  Tensor x_cache_;
};

/// Elementwise activations.
enum class Activation { ReLU, Sigmoid, Tanh, Identity, LeakyReLU, Elu, Softplus };

std::string activation_name(Activation a);

/// Activation layer; caches its output (all three functions have
/// output-expressible derivatives).
class ActivationLayer : public Layer {
 public:
  explicit ActivationLayer(Activation fn) : fn_(fn) {}

  std::string name() const override { return activation_name(fn_); }
  Shape build(const Shape& input, Pcg32& rng) override;
  Tensor forward(const Tensor& x, bool training) override;
  Tensor infer(const Tensor& x) const override;
  Tensor backward(const Tensor& dy) override;

 private:
  Activation fn_;
  Tensor y_cache_;
};

/// Inverted dropout: at training time zero each element with probability
/// `rate` and scale survivors by 1/(1-rate); identity at inference.
class Dropout : public Layer {
 public:
  explicit Dropout(float rate) : rate_(rate) {
    CANDLE_CHECK(rate >= 0.0f && rate < 1.0f, "dropout rate must be in [0,1)");
  }

  std::string name() const override { return "dropout"; }
  Shape build(const Shape& input, Pcg32& rng) override;
  Tensor forward(const Tensor& x, bool training) override;
  Tensor infer(const Tensor& x) const override;
  Tensor backward(const Tensor& dy) override;

 private:
  float rate_;
  Pcg32 rng_{0};
  Tensor mask_;
};

/// Collapse all non-batch dimensions: (B, d1, ..., dk) -> (B, d1*...*dk).
class Flatten : public Layer {
 public:
  std::string name() const override { return "flatten"; }
  Shape build(const Shape& input, Pcg32& rng) override;
  Tensor forward(const Tensor& x, bool training) override;
  Tensor infer(const Tensor& x) const override;
  Tensor backward(const Tensor& dy) override;

 private:
  Shape in_shape_;
};

/// 1-D convolution over (B, C, L) inputs, valid padding.
class Conv1D : public Layer {
 public:
  Conv1D(Index filters, Index kernel, Index stride = 1)
      : filters_(filters), kernel_(kernel), stride_(stride) {
    CANDLE_CHECK(filters >= 1 && kernel >= 1 && stride >= 1,
                 "invalid Conv1D geometry");
  }

  std::string name() const override {
    return "conv1d(" + std::to_string(filters_) + "x" +
           std::to_string(kernel_) + ")";
  }
  Shape build(const Shape& input, Pcg32& rng) override;
  Tensor forward(const Tensor& x, bool training) override;
  Tensor infer(const Tensor& x) const override;
  Tensor backward(const Tensor& dy) override;
  std::vector<Tensor*> params() override { return {&w_, &b_}; }
  std::vector<Tensor*> grads() override { return {&dw_, &db_}; }
  double flops_per_sample() const override;

 private:
  Index filters_, kernel_, stride_;
  Index channels_ = 0, length_ = 0, lout_ = 0;
  Tensor w_, b_, dw_, db_;  // w: (filters, channels*kernel)
  Tensor x_cache_;
};

/// 2-D convolution over (B, C, H, W) inputs with a square kernel, valid
/// padding; implemented as im2col + GEMM.
class Conv2D : public Layer {
 public:
  Conv2D(Index filters, Index kernel, Index stride = 1)
      : filters_(filters), kernel_(kernel), stride_(stride) {
    CANDLE_CHECK(filters >= 1 && kernel >= 1 && stride >= 1,
                 "invalid Conv2D geometry");
  }

  std::string name() const override {
    return "conv2d(" + std::to_string(filters_) + "x" +
           std::to_string(kernel_) + "x" + std::to_string(kernel_) + ")";
  }
  Shape build(const Shape& input, Pcg32& rng) override;
  Tensor forward(const Tensor& x, bool training) override;
  Tensor infer(const Tensor& x) const override;
  Tensor backward(const Tensor& dy) override;
  std::vector<Tensor*> params() override { return {&w_, &b_}; }
  std::vector<Tensor*> grads() override { return {&dw_, &db_}; }
  double flops_per_sample() const override;

 private:
  Index filters_, kernel_, stride_;
  Index channels_ = 0, height_ = 0, width_ = 0, hout_ = 0, wout_ = 0;
  Tensor w_, b_, dw_, db_;  // w: (filters, channels*kernel*kernel)
  Tensor x_cache_;
};

/// 1-D max pooling over (B, C, L) with window == stride (non-overlapping).
class MaxPool1D : public Layer {
 public:
  explicit MaxPool1D(Index window) : window_(window) {
    CANDLE_CHECK(window >= 1, "invalid pool window");
  }

  std::string name() const override {
    return "maxpool1d(" + std::to_string(window_) + ")";
  }
  Shape build(const Shape& input, Pcg32& rng) override;
  Tensor forward(const Tensor& x, bool training) override;
  Tensor infer(const Tensor& x) const override;
  Tensor backward(const Tensor& dy) override;

 private:
  Index window_;
  Index channels_ = 0, length_ = 0, lout_ = 0;
  std::vector<Index> argmax_;
  Index batch_ = 0;
};

// ---- convenience factories ---------------------------------------------------

std::unique_ptr<Layer> make_dense(Index units);
std::unique_ptr<Layer> make_activation(Activation fn);
std::unique_ptr<Layer> make_relu();
std::unique_ptr<Layer> make_sigmoid();
std::unique_ptr<Layer> make_tanh();
std::unique_ptr<Layer> make_leaky_relu();
std::unique_ptr<Layer> make_elu();
std::unique_ptr<Layer> make_softplus();
std::unique_ptr<Layer> make_dropout(float rate);
std::unique_ptr<Layer> make_flatten();
std::unique_ptr<Layer> make_conv1d(Index filters, Index kernel,
                                   Index stride = 1);
std::unique_ptr<Layer> make_conv2d(Index filters, Index kernel,
                                   Index stride = 1);
std::unique_ptr<Layer> make_maxpool1d(Index window);

}  // namespace candle

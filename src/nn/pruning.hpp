// Magnitude pruning: sparsify a trained network's weights and measure the
// accuracy/FLOP trade-off — the concrete reading of the paper's "future
// DNNs may rely less on dense ... patterns" remark, and the 2017-era
// pruning literature (Han et al.) the remark gestures at.
//
// Pruning here is mask-based: pruned entries are zeroed and a mask records
// them so fine-tuning steps can re-zero after each optimizer update.
#pragma once

#include <vector>

#include "nn/model.hpp"

namespace candle {

/// A pruning mask over a model's parameter tensors (1 = kept, 0 = pruned).
class PruningMask {
 public:
  /// Build the all-ones mask for a built model.
  explicit PruningMask(Model& model);

  /// Zero the smallest-magnitude `sparsity` fraction of the *weight matrix*
  /// entries globally (bias vectors — rank-1 params — are never pruned),
  /// and record them in the mask.
  void prune_global_magnitude(Model& model, double sparsity);

  /// Re-apply the mask (call after optimizer steps during fine-tuning).
  void apply(Model& model) const;

  /// Fraction of maskable (rank>=2) parameters currently pruned.
  double sparsity() const;

  /// Dense multiply-accumulate count saved per forward pass, as a fraction
  /// (equal to sparsity() for the fully-connected layers pruned here).
  double flop_savings() const { return sparsity(); }

 private:
  std::vector<std::vector<std::uint8_t>> keep_;  // parallel to params()
  std::vector<bool> maskable_;
};

/// Convenience: prune to `sparsity`, fine-tune for `finetune_steps` batches
/// of (x, y) with the given loss/optimizer, re-masking after each step.
void prune_and_finetune(Model& model, PruningMask& mask, double sparsity,
                        const Tensor& x, const Tensor& y, const Loss& loss,
                        Optimizer& opt, Index finetune_steps);

}  // namespace candle

// Software emulation of the reduced-precision numeric formats the paper
// argues future HPC architectures must accelerate ("they rarely require
// 64-bit or even 32 bits of precision").
//
// Formats:
//   * float16  — IEEE 754 binary16 (1s/5e/10m), round-to-nearest-even with
//     gradual underflow and Inf/NaN handling.
//   * bfloat16 — truncated binary32 (1s/8e/7m), round-to-nearest-even.
//   * int8     — symmetric linear quantization with a per-tensor scale.
//
// Emulation strategy (DESIGN.md ✦): operands are rounded *through* the
// format before a kernel and the accumulation stays in fp32/int32 — matching
// how real mixed-precision units (fp16/bf16 MACs with fp32 accumulators,
// int8 MACs with int32 accumulators) behave.  Stochastic rounding variants
// are provided for the optimizer-update experiments.
#pragma once

#include <cstdint>
#include <span>
#include <string>
#include <vector>

#include "runtime/rng.hpp"

namespace candle {

/// The numeric formats swept by experiment E1 and priced by hpcsim.
enum class Precision { FP64, FP32, BF16, FP16, INT8 };

/// Short lowercase name ("fp32", "bf16", ...).
std::string precision_name(Precision p);

/// Bits of storage per element.
int precision_bits(Precision p);

/// All formats in descending-width order, for sweeps.
std::span<const Precision> all_precisions();

// ---- binary16 ---------------------------------------------------------------

/// Convert fp32 -> IEEE binary16 bits, round-to-nearest-even.
std::uint16_t float_to_half_bits(float f);

/// Convert IEEE binary16 bits -> fp32 (exact).
float half_bits_to_float(std::uint16_t h);

/// Round fp32 through binary16 (value-preserving only if representable).
inline float round_fp16(float f) {
  return half_bits_to_float(float_to_half_bits(f));
}

/// Stochastically round fp32 to binary16: rounds up with probability equal
/// to the fractional position between the two neighbouring representables.
/// Unbiased: E[round_fp16_stochastic(x)] == x for finite in-range x.
float round_fp16_stochastic(float f, Pcg32& rng);

// ---- bfloat16 ---------------------------------------------------------------

/// Convert fp32 -> bfloat16 bits, round-to-nearest-even.
std::uint16_t float_to_bf16_bits(float f);

/// Convert bfloat16 bits -> fp32 (exact: left-shift by 16).
float bf16_bits_to_float(std::uint16_t b);

/// Round fp32 through bfloat16.
inline float round_bf16(float f) {
  return bf16_bits_to_float(float_to_bf16_bits(f));
}

/// Stochastic rounding to bfloat16 (unbiased).
float round_bf16_stochastic(float f, Pcg32& rng);

// ---- int8 symmetric quantization --------------------------------------------

/// A tensor quantized to int8 with one symmetric scale:
///   real_value ≈ scale * q,  q ∈ [-127, 127].
struct QuantizedTensor {
  std::vector<std::int8_t> values;
  float scale = 1.0f;

  /// Dequantize element i.
  float dequant(std::size_t i) const {
    return scale * static_cast<float>(values[i]);
  }
};

/// Quantize with scale = max|x| / 127 (0 maps to scale 1 to avoid div-by-0).
QuantizedTensor quantize_int8(std::span<const float> x);

/// Dequantize a whole tensor into `out` (sizes must match).
void dequantize_int8(const QuantizedTensor& q, std::span<float> out);

// ---- bulk rounding ----------------------------------------------------------

/// Round every element of `x` in place through `p`.  FP64 and FP32 are
/// identity at the storage level (see DESIGN.md: fp64 numerics are modeled
/// as fp32-storage numerics with a different machine-model rate, since fp32
/// is this library's master format and fp64-vs-fp32 training accuracy is
/// indistinguishable for these workloads).  INT8 rounds through a symmetric
/// per-call scale (quantize + dequantize).
void round_through(Precision p, std::span<float> x);

/// Out-of-place variant: returns a rounded copy of `x`.
std::vector<float> rounded_copy(Precision p, std::span<const float> x);

/// Largest relative spacing (machine epsilon equivalent) of a format, used
/// by tests to bound rounding error: fp16 -> 2^-11, bf16 -> 2^-8.
float precision_epsilon(Precision p);

}  // namespace candle

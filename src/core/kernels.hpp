// Dense linear-algebra kernels: the "high compute density ... matrix-matrix
// and matrix-vector operations" of the paper's claim C2.
//
// Three GEMM tiers exist on purpose (ablated by bench_kernels):
//   gemm_naive    — textbook ijk dot products; the correctness reference.
//   gemm_serial   — cache-blocked ikj with K tiling; single thread.
//   gemm          — gemm_serial parallelized over row panels via the
//                   runtime thread pool.  The production kernel.
//
// Precision-emulating entry points realize claim C1: operands are rounded
// through a reduced format and accumulation stays wide (fp32 for fp16/bf16,
// int32 for int8), matching real mixed-precision hardware.
#pragma once

#include "core/formats.hpp"
#include "core/tensor.hpp"

namespace candle {

/// Whether a GEMM operand is used as stored or transposed.
enum class Op { None, Transpose };

/// C[M,N] = alpha * op(A) * op(B) + beta * C, row-major with leading
/// dimensions lda/ldb/ldc.  op(A) is M x K, op(B) is K x N.
void gemm(Op op_a, Op op_b, Index m, Index n, Index k, float alpha,
          const float* a, Index lda, const float* b, Index ldb, float beta,
          float* c, Index ldc);

/// Single-threaded blocked kernel (same contract as gemm).
void gemm_serial(Op op_a, Op op_b, Index m, Index n, Index k, float alpha,
                 const float* a, Index lda, const float* b, Index ldb,
                 float beta, float* c, Index ldc);

/// Reference kernel (same contract as gemm); O(MNK) scalar dot products.
void gemm_naive(Op op_a, Op op_b, Index m, Index n, Index k, float alpha,
                const float* a, Index lda, const float* b, Index ldb,
                float beta, float* c, Index ldc);

/// y[M] = alpha * op(A) * x + beta * y.  op(A) is M x N against x[N].
void gemv(Op op_a, Index m, Index n, float alpha, const float* a, Index lda,
          const float* x, float beta, float* y);

/// C = op(A) * op(B) with both operands first rounded through `prec`.
/// FP64/FP32 dispatch straight to gemm; BF16/FP16 round operand copies and
/// accumulate in fp32; INT8 runs true int8xint8->int32 arithmetic with
/// symmetric per-tensor scales.  beta scales the existing C as usual.
void gemm_emulated(Precision prec, Op op_a, Op op_b, Index m, Index n,
                   Index k, float alpha, const float* a, Index lda,
                   const float* b, Index ldb, float beta, float* c, Index ldc);

/// True int8 GEMM: quantize A and B symmetrically, multiply-accumulate in
/// int32, dequantize into C (C = scaleA*scaleB * (qA*qB), overwrites C).
/// A is M x K and B is K x N, untransposed, contiguous (lda = K, ldb = N).
void gemm_int8(Index m, Index n, Index k, const float* a, const float* b,
               float* c);

// ---- tensor-level wrappers --------------------------------------------------

/// C = alpha * op(A) * op(B) + beta * C for rank-2 tensors.  C must already
/// have the result shape.
void matmul_into(Tensor& c, const Tensor& a, Op op_a, const Tensor& b,
                 Op op_b, float alpha = 1.0f, float beta = 0.0f,
                 Precision prec = Precision::FP32);

/// Returns A @ B for rank-2 tensors.
Tensor matmul(const Tensor& a, const Tensor& b);

// ---- convolution support ----------------------------------------------------

/// Unfold a (C, L) signal into im2col columns for a 1-D convolution with
/// `kernel` taps and `stride`.  Output is (C*kernel) x L_out, column j
/// holding the receptive field of output position j.  `out` must have
/// C*kernel*L_out elements.
void im2col_1d(const float* x, Index channels, Index length, Index kernel,
               Index stride, float* out);

/// Scatter-add the transpose of im2col_1d: accumulate columns back into the
/// (C, L) signal gradient.  `dx` must be zeroed by the caller if it should
/// not accumulate on existing contents.
void col2im_1d(const float* cols, Index channels, Index length, Index kernel,
               Index stride, float* dx);

/// Number of output positions of a 1-D convolution (valid padding).
inline Index conv_out_length(Index length, Index kernel, Index stride) {
  CANDLE_CHECK(kernel >= 1 && stride >= 1 && length >= kernel,
               "invalid conv geometry");
  return (length - kernel) / stride + 1;
}

/// 2-D im2col for (C, H, W) with a square kernel and stride, valid padding.
/// Output is (C*kh*kw) x (H_out*W_out).
void im2col_2d(const float* x, Index channels, Index height, Index width,
               Index kernel, Index stride, float* out);

/// Transpose-scatter of im2col_2d (accumulates into dx).
void col2im_2d(const float* cols, Index channels, Index height, Index width,
               Index kernel, Index stride, float* dx);

}  // namespace candle

// Dense linear-algebra kernels: the "high compute density ... matrix-matrix
// and matrix-vector operations" of the paper's claim C2.
//
// Three GEMM tiers exist on purpose (ablated by bench_kernels):
//   gemm_naive    — textbook ijk dot products; the correctness reference.
//   gemm_serial   — the packed micro-kernel GEMM pinned to one thread.
//   gemm          — the packed micro-kernel GEMM parallelized over row
//                   panels via the runtime thread pool.  The production
//                   kernel.
//
// The production tiers share one BLIS-style engine: operands are packed into
// MC/KC/NC cache blocks held in thread-local workspace arenas
// (runtime/workspace — zero heap allocations at steady state), and an
// MRxNR register-blocked micro-kernel does all flops.  The micro-kernel
// shape is chosen at configure time (see DESIGN.md "kernels"): a portable
// `#pragma omp simd` kernel sized for the host vector width, or a scalar
// fallback with -DCANDLE_GEMM_KERNEL=scalar.
//
// Epilogues (bias add and/or an activation) can be fused into the
// micro-kernel's C-write, so a Dense/Conv forward pass performs no separate
// elementwise sweep over its activations.  Fused results are bit-identical
// to running the unfused GEMM followed by the same elementwise pass.
//
// Precision-emulating entry points realize claim C1: operands are rounded
// through a reduced format *during packing* (no extra operand copies) and
// accumulation stays wide (fp32 for fp16/bf16, int32 for int8), matching
// real mixed-precision hardware.
#pragma once

#include "core/formats.hpp"
#include "core/tensor.hpp"

namespace candle {

/// Whether a GEMM operand is used as stored or transposed.
enum class Op { None, Transpose };

/// Elementwise tail fused into the GEMM's final C-write:
///   C[i,j] = act(C[i,j] + bias[j or i])
/// Bias may index columns (Dense: one bias per output unit) or rows (Conv:
/// one bias per filter, C laid out filters x positions).  The scalar
/// formulas match nn::ActivationLayer exactly, so fusing is a pure data-
/// movement optimization: results are bit-identical to the unfused pass.
struct Epilogue {
  enum class Act { None, ReLU, Sigmoid, Tanh };
  enum class BiasAxis { Column, Row };

  const float* bias = nullptr;  ///< nullptr = no bias term
  BiasAxis bias_axis = BiasAxis::Column;
  Act act = Act::None;

  bool empty() const { return bias == nullptr && act == Act::None; }
};

/// C[M,N] = alpha * op(A) * op(B) + beta * C, row-major with leading
/// dimensions lda/ldb/ldc.  op(A) is M x K, op(B) is K x N.
void gemm(Op op_a, Op op_b, Index m, Index n, Index k, float alpha,
          const float* a, Index lda, const float* b, Index ldb, float beta,
          float* c, Index ldc);

/// gemm with a fused epilogue applied in the micro-kernel's C-write.
void gemm_fused(Op op_a, Op op_b, Index m, Index n, Index k, float alpha,
                const float* a, Index lda, const float* b, Index ldb,
                float beta, float* c, Index ldc, const Epilogue& epilogue);

/// Single-threaded packed kernel (same contract as gemm).
void gemm_serial(Op op_a, Op op_b, Index m, Index n, Index k, float alpha,
                 const float* a, Index lda, const float* b, Index ldb,
                 float beta, float* c, Index ldc);

/// Reference kernel (same contract as gemm); O(MNK) scalar dot products.
void gemm_naive(Op op_a, Op op_b, Index m, Index n, Index k, float alpha,
                const float* a, Index lda, const float* b, Index ldb,
                float beta, float* c, Index ldc);

/// y[M] = alpha * op(A) * x + beta * y.  op(A) is M x N against x[N].
/// Parallelized over output rows with a flop-derived grain; beta == 0
/// overwrites y (BLAS convention: pre-existing NaN/Inf in y is discarded).
void gemv(Op op_a, Index m, Index n, float alpha, const float* a, Index lda,
          const float* x, float beta, float* y);

/// C = op(A) * op(B) with both operands rounded through `prec` while they
/// are packed (FP64/FP32 dispatch straight to gemm; BF16/FP16 round at pack
/// time and accumulate in fp32; INT8 quantizes the operand views into
/// workspace int8 buffers and runs true int8xint8->int32 arithmetic with
/// symmetric per-tensor scales, folding alpha/beta into the dequantizing
/// C-write).  beta scales the existing C as usual; `epilogue` is fused into
/// the final write for every precision.
void gemm_emulated(Precision prec, Op op_a, Op op_b, Index m, Index n,
                   Index k, float alpha, const float* a, Index lda,
                   const float* b, Index ldb, float beta, float* c, Index ldc,
                   const Epilogue& epilogue = {});

/// True int8 GEMM: quantize A and B symmetrically, multiply-accumulate in
/// int32, dequantize into C (C = scaleA*scaleB * (qA*qB), overwrites C).
/// A is M x K and B is K x N, untransposed, contiguous (lda = K, ldb = N).
void gemm_int8(Index m, Index n, Index k, const float* a, const float* b,
               float* c);

// ---- tensor-level wrappers --------------------------------------------------

/// C = alpha * op(A) * op(B) + beta * C for rank-2 tensors, with an optional
/// fused epilogue.  C must already have the result shape.
void matmul_into(Tensor& c, const Tensor& a, Op op_a, const Tensor& b,
                 Op op_b, float alpha = 1.0f, float beta = 0.0f,
                 Precision prec = Precision::FP32,
                 const Epilogue& epilogue = {});

/// Returns A @ B for rank-2 tensors.
Tensor matmul(const Tensor& a, const Tensor& b);

// ---- convolution support ----------------------------------------------------

/// Forward 1-D convolution as GEMM without materializing the im2col matrix:
/// y(filters x L_out) = W(filters x C*kernel) @ im2col(x) + bias, where the
/// unfold writes directly into the packed-B workspace panels of the GEMM
/// and the per-filter bias is fused into the C-write.  `bias` may be null.
/// INT8 precision falls back to an arena-staged explicit im2col.
void conv1d_forward_gemm(Precision prec, const float* x, Index channels,
                         Index length, Index kernel, Index stride,
                         const float* w, Index filters, const float* bias,
                         float* y);

/// Forward 2-D convolution as GEMM (same fused-unfold scheme):
/// y(filters x H_out*W_out) = W(filters x C*k*k) @ im2col(x) + bias.
void conv2d_forward_gemm(Precision prec, const float* x, Index channels,
                         Index height, Index width, Index kernel,
                         Index stride, const float* w, Index filters,
                         const float* bias, float* y);

/// Unfold a (C, L) signal into im2col columns for a 1-D convolution with
/// `kernel` taps and `stride`.  Output is (C*kernel) x L_out, column j
/// holding the receptive field of output position j.  `out` must have
/// C*kernel*L_out elements.
void im2col_1d(const float* x, Index channels, Index length, Index kernel,
               Index stride, float* out);

/// Scatter-add the transpose of im2col_1d: accumulate columns back into the
/// (C, L) signal gradient.  `dx` must be zeroed by the caller if it should
/// not accumulate on existing contents.
void col2im_1d(const float* cols, Index channels, Index length, Index kernel,
               Index stride, float* dx);

/// Number of output positions of a 1-D convolution (valid padding).
inline Index conv_out_length(Index length, Index kernel, Index stride) {
  CANDLE_CHECK(kernel >= 1 && stride >= 1 && length >= kernel,
               "invalid conv geometry");
  return (length - kernel) / stride + 1;
}

/// 2-D im2col for (C, H, W) with a square kernel and stride, valid padding.
/// Output is (C*kh*kw) x (H_out*W_out).
void im2col_2d(const float* x, Index channels, Index height, Index width,
               Index kernel, Index stride, float* out);

/// Transpose-scatter of im2col_2d (accumulates into dx).
void col2im_2d(const float* cols, Index channels, Index height, Index width,
               Index kernel, Index stride, float* dx);

}  // namespace candle

#include "core/formats.hpp"

#include <algorithm>
#include <array>
#include <bit>
#include <cmath>
#include <cstring>

#include "runtime/error.hpp"

namespace candle {

std::string precision_name(Precision p) {
  switch (p) {
    case Precision::FP64: return "fp64";
    case Precision::FP32: return "fp32";
    case Precision::BF16: return "bf16";
    case Precision::FP16: return "fp16";
    case Precision::INT8: return "int8";
  }
  CANDLE_FAIL("unknown Precision");
}

int precision_bits(Precision p) {
  switch (p) {
    case Precision::FP64: return 64;
    case Precision::FP32: return 32;
    case Precision::BF16: return 16;
    case Precision::FP16: return 16;
    case Precision::INT8: return 8;
  }
  CANDLE_FAIL("unknown Precision");
}

std::span<const Precision> all_precisions() {
  static constexpr std::array<Precision, 5> kAll = {
      Precision::FP64, Precision::FP32, Precision::BF16, Precision::FP16,
      Precision::INT8};
  return kAll;
}

// ---- binary16 ---------------------------------------------------------------

std::uint16_t float_to_half_bits(float f) {
  const std::uint32_t bits = std::bit_cast<std::uint32_t>(f);
  const std::uint32_t sign = (bits >> 16) & 0x8000u;
  const std::uint32_t abs = bits & 0x7fffffffu;

  if (abs >= 0x7f800000u) {
    // Inf / NaN.  Preserve NaN-ness with a quiet mantissa bit.
    const std::uint32_t mantissa = abs > 0x7f800000u ? 0x0200u : 0u;
    return static_cast<std::uint16_t>(sign | 0x7c00u | mantissa);
  }
  if (abs >= 0x477ff000u) {
    // Rounds to a magnitude >= 65520 -> overflow to infinity.
    return static_cast<std::uint16_t>(sign | 0x7c00u);
  }
  if (abs < 0x33000001u) {
    // Rounds to a magnitude below half the smallest subnormal -> zero.
    return static_cast<std::uint16_t>(sign);
  }

  std::uint32_t exp = abs >> 23;            // biased fp32 exponent
  std::uint32_t mant = abs & 0x007fffffu;   // fp32 mantissa
  std::uint32_t half;
  if (exp >= 113) {
    // Normal half range: rebias 127 -> 15, keep top 10 mantissa bits.
    half = ((exp - 112) << 10) | (mant >> 13);
    // Round to nearest even on the 13 dropped bits.
    const std::uint32_t rest = mant & 0x1fffu;
    if (rest > 0x1000u || (rest == 0x1000u && (half & 1u))) ++half;
  } else {
    // Subnormal half: the result is round(m * 2^(e-126)) ulps of 2^-24,
    // i.e. the 24-bit significand shifted right by (126 - e) with RNE.
    mant |= 0x00800000u;
    const std::uint32_t shift = 126 - exp;  // 14..23 given the range guards
    const std::uint32_t q = mant >> shift;
    const std::uint32_t rest = mant & ((1u << shift) - 1);
    const std::uint32_t halfway = 1u << (shift - 1);
    half = q;
    if (rest > halfway || (rest == halfway && (half & 1u))) ++half;
  }
  return static_cast<std::uint16_t>(sign | half);
}

float half_bits_to_float(std::uint16_t h) {
  const std::uint32_t sign = (static_cast<std::uint32_t>(h) & 0x8000u) << 16;
  const std::uint32_t exp = (h >> 10) & 0x1fu;
  const std::uint32_t mant = h & 0x3ffu;

  std::uint32_t bits;
  if (exp == 0) {
    if (mant == 0) {
      bits = sign;  // signed zero
    } else {
      // Subnormal: normalize.
      int e = -1;
      std::uint32_t m = mant;
      do {
        ++e;
        m <<= 1;
      } while ((m & 0x400u) == 0);
      bits = sign | ((127 - 15 - e) << 23) | ((m & 0x3ffu) << 13);
    }
  } else if (exp == 0x1f) {
    bits = sign | 0x7f800000u | (mant << 13);  // Inf / NaN
  } else {
    bits = sign | ((exp + 127 - 15) << 23) | (mant << 13);
  }
  return std::bit_cast<float>(bits);
}

float round_fp16_stochastic(float f, Pcg32& rng) {
  if (!std::isfinite(f)) return round_fp16(f);
  const float down = round_fp16(f);
  if (down == f) return f;
  // Find the two neighbouring representables bracketing f.
  float lo = down, hi = down;
  if (down < f) {
    hi = half_bits_to_float(
        static_cast<std::uint16_t>(float_to_half_bits(down) +
                                   (down >= 0 ? 1 : -1)));
    if (hi < lo) std::swap(lo, hi);
  } else {
    lo = half_bits_to_float(
        static_cast<std::uint16_t>(float_to_half_bits(down) -
                                   (down >= 0 ? 1 : -1)));
    if (hi < lo) std::swap(lo, hi);
  }
  if (!(lo <= f && f <= hi) || hi == lo) return down;  // clamp edge cases
  const float p_up = (f - lo) / (hi - lo);
  return rng.next_float() < p_up ? hi : lo;
}

// ---- bfloat16 ---------------------------------------------------------------

std::uint16_t float_to_bf16_bits(float f) {
  std::uint32_t bits = std::bit_cast<std::uint32_t>(f);
  if ((bits & 0x7fffffffu) > 0x7f800000u) {
    // NaN: keep quiet bit so truncation cannot produce Inf.
    return static_cast<std::uint16_t>((bits >> 16) | 0x0040u);
  }
  // Round to nearest even on the low 16 bits.
  const std::uint32_t rest = bits & 0xffffu;
  const std::uint32_t halfway = 0x8000u;
  std::uint32_t upper = bits >> 16;
  if (rest > halfway || (rest == halfway && (upper & 1u))) ++upper;
  return static_cast<std::uint16_t>(upper);
}

float bf16_bits_to_float(std::uint16_t b) {
  return std::bit_cast<float>(static_cast<std::uint32_t>(b) << 16);
}

float round_bf16_stochastic(float f, Pcg32& rng) {
  if (!std::isfinite(f)) return round_bf16(f);
  const std::uint32_t bits = std::bit_cast<std::uint32_t>(f);
  const std::uint32_t rest = bits & 0xffffu;
  if (rest == 0) return f;
  const std::uint32_t down = bits & 0xffff0000u;
  const std::uint32_t up = down + 0x10000u;
  const float p_up = static_cast<float>(rest) / 65536.0f;
  const std::uint32_t chosen = rng.next_float() < p_up ? up : down;
  const float out = std::bit_cast<float>(chosen);
  return std::isfinite(out) ? out : std::bit_cast<float>(down);
}

// ---- int8 -------------------------------------------------------------------

QuantizedTensor quantize_int8(std::span<const float> x) {
  float amax = 0.0f;
  for (float v : x) amax = std::max(amax, std::abs(v));
  QuantizedTensor q;
  q.scale = amax > 0.0f ? amax / 127.0f : 1.0f;
  q.values.resize(x.size());
  const float inv = 1.0f / q.scale;
  for (std::size_t i = 0; i < x.size(); ++i) {
    const float scaled = x[i] * inv;
    const float clamped = std::clamp(scaled, -127.0f, 127.0f);
    q.values[i] = static_cast<std::int8_t>(std::lrintf(clamped));
  }
  return q;
}

void dequantize_int8(const QuantizedTensor& q, std::span<float> out) {
  CANDLE_CHECK(q.values.size() == out.size(), "dequantize size mismatch");
  for (std::size_t i = 0; i < out.size(); ++i) out[i] = q.dequant(i);
}

// ---- bulk -------------------------------------------------------------------

void round_through(Precision p, std::span<float> x) {
  switch (p) {
    case Precision::FP64:
    case Precision::FP32:
      return;  // identity at fp32 storage (see header)
    case Precision::BF16:
      for (float& v : x) v = round_bf16(v);
      return;
    case Precision::FP16:
      for (float& v : x) v = round_fp16(v);
      return;
    case Precision::INT8: {
      const QuantizedTensor q = quantize_int8(x);
      dequantize_int8(q, x);
      return;
    }
  }
  CANDLE_FAIL("unknown Precision");
}

std::vector<float> rounded_copy(Precision p, std::span<const float> x) {
  std::vector<float> out(x.begin(), x.end());
  round_through(p, out);
  return out;
}

float precision_epsilon(Precision p) {
  switch (p) {
    case Precision::FP64: return 1.1920929e-7f;  // fp32 storage in practice
    case Precision::FP32: return 1.1920929e-7f;  // 2^-23
    case Precision::BF16: return 3.90625e-3f;    // 2^-8
    case Precision::FP16: return 4.8828125e-4f;  // 2^-11
    case Precision::INT8: return 1.0f / 127.0f;  // relative to per-tensor max
  }
  CANDLE_FAIL("unknown Precision");
}

}  // namespace candle

#include "core/kernels.hpp"

#include <algorithm>
#include <cstring>
#include <vector>

#include "runtime/thread_pool.hpp"

namespace candle {

namespace {

// Pack op(X) (rows x cols view) into a fresh contiguous row-major buffer.
// GEMM fast paths only handle the untransposed layout; transposed operands
// are packed first.  Packing is O(rows*cols) against O(M*N*K) compute, so
// the copy never dominates.
std::vector<float> pack(Op op, Index rows, Index cols, const float* x,
                        Index ldx) {
  std::vector<float> out(static_cast<std::size_t>(rows * cols));
  if (op == Op::None) {
    for (Index i = 0; i < rows; ++i) {
      std::memcpy(out.data() + i * cols, x + i * ldx,
                  static_cast<std::size_t>(cols) * sizeof(float));
    }
  } else {
    // Stored as cols x rows; gather columns.
    for (Index i = 0; i < rows; ++i) {
      float* dst = out.data() + i * cols;
      for (Index j = 0; j < cols; ++j) dst[j] = x[j * ldx + i];
    }
  }
  return out;
}

constexpr Index kKBlock = 256;  // K tile sized for L1-resident A fragments

// Core blocked kernel over contiguous untransposed panels:
// C[i0:i1, :] += alpha * A[i0:i1, :] * B, with A M x K (ld k) and B K x N
// (ld n).  beta has already been applied to C.
void gemm_panel_nn(Index i0, Index i1, Index n, Index k, float alpha,
                   const float* a, const float* b, float* c, Index ldc) {
  for (Index kk = 0; kk < k; kk += kKBlock) {
    const Index kend = std::min(k, kk + kKBlock);
    for (Index i = i0; i < i1; ++i) {
      const float* arow = a + i * k;
      float* crow = c + i * ldc;
      for (Index p = kk; p < kend; ++p) {
        const float aval = alpha * arow[p];
        if (aval == 0.0f) continue;
        const float* brow = b + p * n;
        // Contiguous axpy over the C row: auto-vectorizes under -O3.
        for (Index j = 0; j < n; ++j) crow[j] += aval * brow[j];
      }
    }
  }
}

void scale_c(Index m, Index n, float beta, float* c, Index ldc) {
  if (beta == 1.0f) return;
  for (Index i = 0; i < m; ++i) {
    float* crow = c + i * ldc;
    if (beta == 0.0f) {
      std::memset(crow, 0, static_cast<std::size_t>(n) * sizeof(float));
    } else {
      for (Index j = 0; j < n; ++j) crow[j] *= beta;
    }
  }
}

}  // namespace

void gemm_naive(Op op_a, Op op_b, Index m, Index n, Index k, float alpha,
                const float* a, Index lda, const float* b, Index ldb,
                float beta, float* c, Index ldc) {
  CANDLE_CHECK(m >= 0 && n >= 0 && k >= 0, "negative gemm dimension");
  for (Index i = 0; i < m; ++i) {
    for (Index j = 0; j < n; ++j) {
      float acc = 0.0f;
      for (Index p = 0; p < k; ++p) {
        const float av = op_a == Op::None ? a[i * lda + p] : a[p * lda + i];
        const float bv = op_b == Op::None ? b[p * ldb + j] : b[j * ldb + p];
        acc += av * bv;
      }
      c[i * ldc + j] = alpha * acc + beta * c[i * ldc + j];
    }
  }
}

void gemm_serial(Op op_a, Op op_b, Index m, Index n, Index k, float alpha,
                 const float* a, Index lda, const float* b, Index ldb,
                 float beta, float* c, Index ldc) {
  CANDLE_CHECK(m >= 0 && n >= 0 && k >= 0, "negative gemm dimension");
  if (m == 0 || n == 0) return;
  const std::vector<float> ap =
      op_a == Op::None && lda == k
          ? std::vector<float>()
          : pack(op_a, m, k, a, lda);
  const std::vector<float> bp =
      op_b == Op::None && ldb == n
          ? std::vector<float>()
          : pack(op_b, k, n, b, ldb);
  const float* aa = ap.empty() ? a : ap.data();
  const float* bb = bp.empty() ? b : bp.data();
  scale_c(m, n, beta, c, ldc);
  if (k == 0) return;
  gemm_panel_nn(0, m, n, k, alpha, aa, bb, c, ldc);
}

void gemm(Op op_a, Op op_b, Index m, Index n, Index k, float alpha,
          const float* a, Index lda, const float* b, Index ldb, float beta,
          float* c, Index ldc) {
  CANDLE_CHECK(m >= 0 && n >= 0 && k >= 0, "negative gemm dimension");
  if (m == 0 || n == 0) return;
  // Below ~1 MFLOP the fork/join overhead beats the speedup.
  if (m * n * k < (1 << 18)) {
    gemm_serial(op_a, op_b, m, n, k, alpha, a, lda, b, ldb, beta, c, ldc);
    return;
  }
  const std::vector<float> ap =
      op_a == Op::None && lda == k ? std::vector<float>()
                                   : pack(op_a, m, k, a, lda);
  const std::vector<float> bp =
      op_b == Op::None && ldb == n ? std::vector<float>()
                                   : pack(op_b, k, n, b, ldb);
  const float* aa = ap.empty() ? a : ap.data();
  const float* bb = bp.empty() ? b : bp.data();
  scale_c(m, n, beta, c, ldc);
  if (k == 0) return;
  parallel_for(0, m, [&](Index i0, Index i1) {
    gemm_panel_nn(i0, i1, n, k, alpha, aa, bb, c, ldc);
  });
}

void gemv(Op op_a, Index m, Index n, float alpha, const float* a, Index lda,
          const float* x, float beta, float* y) {
  CANDLE_CHECK(m >= 0 && n >= 0, "negative gemv dimension");
  if (op_a == Op::None) {
    // y[i] = alpha * dot(A[i,:], x) + beta*y[i]
    for (Index i = 0; i < m; ++i) {
      const float* arow = a + i * lda;
      float acc = 0.0f;
      for (Index j = 0; j < n; ++j) acc += arow[j] * x[j];
      y[i] = alpha * acc + beta * y[i];
    }
  } else {
    // A stored n x m; y[i] = alpha * dot(A[:,i], x).  Stream A row-wise.
    for (Index i = 0; i < m; ++i) y[i] *= beta == 0.0f ? 0.0f : beta;
    for (Index j = 0; j < n; ++j) {
      const float xv = alpha * x[j];
      if (xv == 0.0f) continue;
      const float* arow = a + j * lda;
      for (Index i = 0; i < m; ++i) y[i] += xv * arow[i];
    }
  }
}

void gemm_int8(Index m, Index n, Index k, const float* a, const float* b,
               float* c) {
  CANDLE_CHECK(m >= 0 && n >= 0 && k >= 0, "negative gemm dimension");
  const QuantizedTensor qa =
      quantize_int8({a, static_cast<std::size_t>(m * k)});
  const QuantizedTensor qb =
      quantize_int8({b, static_cast<std::size_t>(k * n)});
  const float scale = qa.scale * qb.scale;
  const std::int8_t* pa = qa.values.data();
  const std::int8_t* pb = qb.values.data();
  parallel_for(0, m, [&](Index i0, Index i1) {
    std::vector<std::int32_t> acc(static_cast<std::size_t>(n));
    for (Index i = i0; i < i1; ++i) {
      std::fill(acc.begin(), acc.end(), 0);
      const std::int8_t* arow = pa + i * k;
      for (Index p = 0; p < k; ++p) {
        const std::int32_t av = arow[p];
        if (av == 0) continue;
        const std::int8_t* brow = pb + p * n;
        for (Index j = 0; j < n; ++j) acc[static_cast<std::size_t>(j)] += av * brow[j];
      }
      float* crow = c + i * n;
      for (Index j = 0; j < n; ++j) {
        crow[j] = scale * static_cast<float>(acc[static_cast<std::size_t>(j)]);
      }
    }
  });
}

void gemm_emulated(Precision prec, Op op_a, Op op_b, Index m, Index n,
                   Index k, float alpha, const float* a, Index lda,
                   const float* b, Index ldb, float beta, float* c,
                   Index ldc) {
  if (prec == Precision::FP32 || prec == Precision::FP64) {
    gemm(op_a, op_b, m, n, k, alpha, a, lda, b, ldb, beta, c, ldc);
    return;
  }
  // Pack to contiguous untransposed layout, then round through the format.
  std::vector<float> ap = pack(op_a, m, k, a, lda);
  std::vector<float> bp = pack(op_b, k, n, b, ldb);
  if (prec == Precision::INT8) {
    std::vector<float> prod(static_cast<std::size_t>(m * n));
    gemm_int8(m, n, k, ap.data(), bp.data(), prod.data());
    for (Index i = 0; i < m; ++i) {
      float* crow = c + i * ldc;
      const float* prow = prod.data() + i * n;
      for (Index j = 0; j < n; ++j) {
        crow[j] = alpha * prow[j] + beta * crow[j];
      }
    }
    return;
  }
  round_through(prec, ap);
  round_through(prec, bp);
  gemm(Op::None, Op::None, m, n, k, alpha, ap.data(), k, bp.data(), n, beta,
       c, ldc);
}

void matmul_into(Tensor& c, const Tensor& a, Op op_a, const Tensor& b,
                 Op op_b, float alpha, float beta, Precision prec) {
  CANDLE_CHECK(a.ndim() == 2 && b.ndim() == 2 && c.ndim() == 2,
               "matmul_into requires rank-2 tensors");
  const Index m = op_a == Op::None ? a.dim(0) : a.dim(1);
  const Index k = op_a == Op::None ? a.dim(1) : a.dim(0);
  const Index kb = op_b == Op::None ? b.dim(0) : b.dim(1);
  const Index n = op_b == Op::None ? b.dim(1) : b.dim(0);
  CANDLE_CHECK(k == kb, "matmul inner dimension mismatch: " +
                            shape_to_string(a.shape()) + " x " +
                            shape_to_string(b.shape()));
  CANDLE_CHECK(c.dim(0) == m && c.dim(1) == n,
               "matmul output shape mismatch");
  gemm_emulated(prec, op_a, op_b, m, n, k, alpha, a.data(), a.dim(1),
                b.data(), b.dim(1), beta, c.data(), n);
}

Tensor matmul(const Tensor& a, const Tensor& b) {
  CANDLE_CHECK(a.ndim() == 2 && b.ndim() == 2, "matmul requires rank-2");
  Tensor c({a.dim(0), b.dim(1)});
  matmul_into(c, a, Op::None, b, Op::None);
  return c;
}

void im2col_1d(const float* x, Index channels, Index length, Index kernel,
               Index stride, float* out) {
  const Index lout = conv_out_length(length, kernel, stride);
  // out is (channels*kernel) x lout, row (c*kernel + t), column j.
  for (Index ch = 0; ch < channels; ++ch) {
    const float* xc = x + ch * length;
    for (Index t = 0; t < kernel; ++t) {
      float* orow = out + (ch * kernel + t) * lout;
      for (Index j = 0; j < lout; ++j) orow[j] = xc[j * stride + t];
    }
  }
}

void col2im_1d(const float* cols, Index channels, Index length, Index kernel,
               Index stride, float* dx) {
  const Index lout = conv_out_length(length, kernel, stride);
  for (Index ch = 0; ch < channels; ++ch) {
    float* xc = dx + ch * length;
    for (Index t = 0; t < kernel; ++t) {
      const float* crow = cols + (ch * kernel + t) * lout;
      for (Index j = 0; j < lout; ++j) xc[j * stride + t] += crow[j];
    }
  }
}

void im2col_2d(const float* x, Index channels, Index height, Index width,
               Index kernel, Index stride, float* out) {
  const Index hout = conv_out_length(height, kernel, stride);
  const Index wout = conv_out_length(width, kernel, stride);
  const Index cols = hout * wout;
  for (Index ch = 0; ch < channels; ++ch) {
    const float* xc = x + ch * height * width;
    for (Index ky = 0; ky < kernel; ++ky) {
      for (Index kx = 0; kx < kernel; ++kx) {
        float* orow = out + ((ch * kernel + ky) * kernel + kx) * cols;
        for (Index oy = 0; oy < hout; ++oy) {
          const float* src = xc + (oy * stride + ky) * width + kx;
          float* dst = orow + oy * wout;
          for (Index ox = 0; ox < wout; ++ox) dst[ox] = src[ox * stride];
        }
      }
    }
  }
}

void col2im_2d(const float* cols, Index channels, Index height, Index width,
               Index kernel, Index stride, float* dx) {
  const Index hout = conv_out_length(height, kernel, stride);
  const Index wout = conv_out_length(width, kernel, stride);
  const Index ncols = hout * wout;
  for (Index ch = 0; ch < channels; ++ch) {
    float* xc = dx + ch * height * width;
    for (Index ky = 0; ky < kernel; ++ky) {
      for (Index kx = 0; kx < kernel; ++kx) {
        const float* crow = cols + ((ch * kernel + ky) * kernel + kx) * ncols;
        for (Index oy = 0; oy < hout; ++oy) {
          float* dst = xc + (oy * stride + ky) * width + kx;
          const float* src = crow + oy * wout;
          for (Index ox = 0; ox < wout; ++ox) dst[ox * stride] += src[ox];
        }
      }
    }
  }
}

}  // namespace candle

#include "core/kernels.hpp"

#include <algorithm>
#include <cmath>
#include <cstring>

#include "runtime/thread_pool.hpp"
#include "runtime/workspace.hpp"

namespace candle {

namespace {

// ---- configure-time micro-kernel selection ----------------------------------
//
// CANDLE_GEMM_FORCE_SCALAR (set by -DCANDLE_GEMM_KERNEL=scalar at configure
// time, or automatically when the compiler lacks -fopenmp-simd) compiles the
// same engine with a tiny register tile and no SIMD pragma: a portable
// fallback that stays bit-deterministic but leans entirely on -O3.
#if defined(CANDLE_GEMM_FORCE_SCALAR)
#define CANDLE_SIMD
constexpr int kMR = 4, kNR = 4;
#else
#define CANDLE_SIMD _Pragma("omp simd")
#if defined(__AVX512F__)
// 8x32 tile: 16 zmm accumulators + 2 B vectors, broadcast-FMA per A element.
constexpr int kMR = 8, kNR = 32;
#elif defined(__AVX__)
// 8x16 tile: 16 ymm accumulators (full register file on AVX2).
constexpr int kMR = 8, kNR = 16;
#else
// 128-bit SIMD or plain SSE2: 8 xmm accumulators.
constexpr int kMR = 4, kNR = 8;
#endif
#endif

// Cache blocking (sized for ~32-48K L1 / ~1-2M L2 per core; see DESIGN.md):
//   kKC: A micro-panels (kMR x kKC = 8 KB) and one B micro-panel
//        (kKC x kNR = 32 KB) stay L1/L2 resident through the k loop.
//   kMC: the packed A block (kMC x kKC x 4 B = 128 KB) sits in L2.
//   kNC: the packed B panel (kKC x kNC x 4 B = 4 MB) sits in L3.
constexpr Index kMC = 128;
constexpr Index kKC = 256;
constexpr Index kNC = 4096;
static_assert(kMC % kMR == 0, "kMC must be a multiple of the register tile");

Index round_up(Index v, Index to) { return (v + to - 1) / to * to; }

// ---- pack-time operand transforms -------------------------------------------
// Precision emulation rounds operands *while packing*, so reduced-precision
// GEMM performs no extra full-operand copy passes.

struct RoundNone {
  float operator()(float v) const { return v; }
};
struct RoundFp16 {
  float operator()(float v) const { return round_fp16(v); }
};
struct RoundBf16 {
  float operator()(float v) const { return round_bf16(v); }
};

// op-resolved view of a stored matrix: logical (rows x cols) of op(X).
struct MatView {
  const float* p;
  Index ld;
  bool trans;  // stored cols x rows

  float at(Index r, Index c) const {
    return trans ? p[c * ld + r] : p[r * ld + c];
  }
};

// ---- B-panel sources --------------------------------------------------------
// pack_b is generic over where the K x N operand comes from; each source
// fills one packed row segment (logical row p, columns [j0, j0+nr)).  The
// im2col sources let convolution unfold its input directly into the packed
// panel, skipping the materialized column matrix entirely.

struct MatSrcB {
  MatView v;

  template <typename Round>
  void fill_row(Index p, Index j0, Index nr, Round rnd, float* dst) const {
    if (!v.trans) {
      const float* src = v.p + p * v.ld + j0;
      CANDLE_SIMD
      for (Index j = 0; j < nr; ++j) dst[j] = rnd(src[j]);
    } else {
      const float* src = v.p + j0 * v.ld + p;
      for (Index j = 0; j < nr; ++j) dst[j] = rnd(src[j * v.ld]);
    }
  }
};

struct Im2col1dSrcB {
  const float* x;
  Index length, kernel, stride;

  template <typename Round>
  void fill_row(Index p, Index j0, Index nr, Round rnd, float* dst) const {
    const Index ch = p / kernel;
    const Index t = p % kernel;
    const float* src = x + ch * length + t + j0 * stride;
    if (stride == 1) {
      CANDLE_SIMD
      for (Index j = 0; j < nr; ++j) dst[j] = rnd(src[j]);
    } else {
      for (Index j = 0; j < nr; ++j) dst[j] = rnd(src[j * stride]);
    }
  }
};

struct Im2col2dSrcB {
  const float* x;
  Index height, width, kernel, stride, wout;

  template <typename Round>
  void fill_row(Index p, Index j0, Index nr, Round rnd, float* dst) const {
    const Index kk = kernel * kernel;
    const Index ch = p / kk;
    const Index rem = p % kk;
    const Index ky = rem / kernel;
    const Index kx = rem % kernel;
    const float* base = x + ch * height * width + ky * width + kx;
    Index oy = j0 / wout;
    Index ox = j0 % wout;
    for (Index j = 0; j < nr; ++j) {
      dst[j] = rnd(base[oy * stride * width + ox * stride]);
      if (++ox == wout) {
        ox = 0;
        ++oy;
      }
    }
  }
};

// ---- packing ----------------------------------------------------------------

// Pack rows [r0, r0+mc) x k [p0, p0+kc) of op(A) into kMR-row strips laid
// out strip-major: dst[strip][p][i].  alpha is folded in here (after the
// precision rounding), so the micro-kernel itself is pure FMA.  Strip tails
// beyond mc are zero-filled and contribute nothing.
template <typename Round>
void pack_a(const MatView& a, Index r0, Index mc, Index p0, Index kc,
            float alpha, Round rnd, float* dst) {
  for (Index ir = 0; ir < mc; ir += kMR) {
    const Index mr = std::min<Index>(kMR, mc - ir);
    float* d = dst + ir * kc;
    if (!a.trans) {
      for (Index i = 0; i < mr; ++i) {
        const float* src = a.p + (r0 + ir + i) * a.ld + p0;
        for (Index p = 0; p < kc; ++p) d[p * kMR + i] = alpha * rnd(src[p]);
      }
    } else {
      for (Index i = 0; i < mr; ++i) {
        const float* src = a.p + p0 * a.ld + (r0 + ir + i);
        for (Index p = 0; p < kc; ++p) {
          d[p * kMR + i] = alpha * rnd(src[p * a.ld]);
        }
      }
    }
    for (Index i = mr; i < kMR; ++i) {
      for (Index p = 0; p < kc; ++p) d[p * kMR + i] = 0.0f;
    }
  }
}

// Pack k [p0, p0+kc) x columns [j0, j0+nc) of the B source into kNR-column
// strips laid out strip-major: dst[strip][p][j].  Strip tails are zeroed.
template <typename Src, typename Round>
void pack_b(const Src& src, Index p0, Index kc, Index j0, Index nc, Round rnd,
            float* dst) {
  for (Index jr = 0; jr < nc; jr += kNR) {
    const Index nr = std::min<Index>(kNR, nc - jr);
    float* d = dst + jr * kc;
    for (Index p = 0; p < kc; ++p) {
      float* dp = d + p * kNR;
      src.fill_row(p0 + p, j0 + jr, nr, rnd, dp);
      for (Index j = nr; j < kNR; ++j) dp[j] = 0.0f;
    }
  }
}

// ---- micro-kernel -----------------------------------------------------------

// The register-blocked core: acc[MR][NR] += sum_p ap[p][:] (x) bp[p][:].
// ap already carries alpha.  With CANDLE_SIMD this compiles to a
// broadcast-FMA sequence that keeps the whole accumulator tile in vector
// registers for the entire k loop.
inline void micro_compute(Index kc, const float* ap, const float* bp,
                          float (&acc)[kMR][kNR]) {
  for (int i = 0; i < kMR; ++i) {
    CANDLE_SIMD
    for (int j = 0; j < kNR; ++j) acc[i][j] = 0.0f;
  }
  for (Index p = 0; p < kc; ++p) {
    const float* b = bp + p * kNR;
    const float* a = ap + p * kMR;
    for (int i = 0; i < kMR; ++i) {
      const float av = a[i];
      CANDLE_SIMD
      for (int j = 0; j < kNR; ++j) acc[i][j] += av * b[j];
    }
  }
}

// Scalar epilogue formulas — kept identical to nn::ActivationLayer::forward
// so fused results are bit-identical to an unfused elementwise pass.
inline float epilogue_apply(float v, const Epilogue& ep, Index row,
                            Index col) {
  if (ep.bias != nullptr) {
    v += ep.bias[ep.bias_axis == Epilogue::BiasAxis::Column ? col : row];
  }
  switch (ep.act) {
    case Epilogue::Act::None:
      break;
    case Epilogue::Act::ReLU:
      v = v > 0.0f ? v : 0.0f;
      break;
    case Epilogue::Act::Sigmoid:
      v = 1.0f / (1.0f + std::exp(-v));
      break;
    case Epilogue::Act::Tanh:
      v = std::tanh(v);
      break;
  }
  return v;
}

// C-write of a full register tile.  `first` applies beta (beta == 0 never
// reads C, so garbage/NaN in the output buffer is overwritten); `last`
// applies the fused epilogue after the final k-block accumulates.
void micro_store(const float (&acc)[kMR][kNR], float* c, Index ldc,
                 float beta, bool first, bool last, const Epilogue& ep,
                 Index row0, Index col0) {
  const bool fuse = last && !ep.empty();
  for (int i = 0; i < kMR; ++i) {
    float* crow = c + i * ldc;
    float vals[kNR];
    if (first) {
      if (beta == 0.0f) {
        CANDLE_SIMD
        for (int j = 0; j < kNR; ++j) vals[j] = acc[i][j];
      } else {
        CANDLE_SIMD
        for (int j = 0; j < kNR; ++j) vals[j] = acc[i][j] + beta * crow[j];
      }
    } else {
      CANDLE_SIMD
      for (int j = 0; j < kNR; ++j) vals[j] = acc[i][j] + crow[j];
    }
    if (fuse) {
      // Same scalar op order as epilogue_apply (bias, then activation), with
      // the branches hoisted out of the lane loop so the tile stays SIMD.
      if (ep.bias != nullptr) {
        if (ep.bias_axis == Epilogue::BiasAxis::Column) {
          const float* bj = ep.bias + col0;
          CANDLE_SIMD
          for (int j = 0; j < kNR; ++j) vals[j] += bj[j];
        } else {
          const float bv = ep.bias[row0 + i];
          CANDLE_SIMD
          for (int j = 0; j < kNR; ++j) vals[j] += bv;
        }
      }
      switch (ep.act) {
        case Epilogue::Act::None:
          break;
        case Epilogue::Act::ReLU:
          CANDLE_SIMD
          for (int j = 0; j < kNR; ++j) {
            vals[j] = vals[j] > 0.0f ? vals[j] : 0.0f;
          }
          break;
        case Epilogue::Act::Sigmoid:
          for (int j = 0; j < kNR; ++j) {
            vals[j] = 1.0f / (1.0f + std::exp(-vals[j]));
          }
          break;
        case Epilogue::Act::Tanh:
          for (int j = 0; j < kNR; ++j) vals[j] = std::tanh(vals[j]);
          break;
      }
    }
    CANDLE_SIMD
    for (int j = 0; j < kNR; ++j) crow[j] = vals[j];
  }
}

// C-write of a partial tile at the m/n edges (same scalar op sequence as the
// full-tile store, so edge elements remain bit-identical to it).
void micro_store_edge(const float (&acc)[kMR][kNR], Index mr, Index nr,
                      float* c, Index ldc, float beta, bool first, bool last,
                      const Epilogue& ep, Index row0, Index col0) {
  const bool fuse = last && !ep.empty();
  for (Index i = 0; i < mr; ++i) {
    float* crow = c + i * ldc;
    for (Index j = 0; j < nr; ++j) {
      float v = acc[i][j];
      if (first) {
        if (beta != 0.0f) v += beta * crow[j];
      } else {
        v += crow[j];
      }
      if (fuse) v = epilogue_apply(v, ep, row0 + i, col0 + j);
      crow[j] = v;
    }
  }
}

// ---- blocked driver ---------------------------------------------------------

// Per-(jc, pc) state shared by the strip workers.  parallel_for bodies
// capture a single pointer to this so dispatch stays allocation-free.
struct PanelCtx {
  const MatView* a;
  const float* bpack;
  float* c;
  Index m, ldc;
  Index pc, kc, jc, nc;
  float alpha, beta;
  bool first, last;
  const Epilogue* ep;
};

// Process micro-panel strips [s0, s1): pack the corresponding A rows into
// this thread's arena (kMC rows at a time, preserving L2 blocking even when
// a chunk is larger) and run the micro-kernel across the B panel.
template <typename Round>
void compute_strips(const PanelCtx& ctx, Round rnd, Index s0, Index s1) {
  WorkspaceArena& arena = WorkspaceArena::local();
  WorkspaceArena::Scope scope(arena);
  float* apack =
      arena.alloc<float>(static_cast<std::size_t>(kMC * ctx.kc));
  const Index strips_per_mc = kMC / kMR;
  for (Index sb = s0; sb < s1; sb += strips_per_mc) {
    const Index sb_end = std::min(s1, sb + strips_per_mc);
    const Index r0 = sb * kMR;
    const Index mc = std::min(sb_end * kMR, ctx.m) - r0;
    pack_a(*ctx.a, r0, mc, ctx.pc, ctx.kc, ctx.alpha, rnd, apack);
    for (Index jr = 0; jr < ctx.nc; jr += kNR) {
      const Index nr = std::min<Index>(kNR, ctx.nc - jr);
      const float* bp = ctx.bpack + jr * ctx.kc;
      for (Index s = sb; s < sb_end; ++s) {
        const Index ir = (s - sb) * kMR;
        const Index mr = std::min<Index>(kMR, ctx.m - (r0 + ir));
        float acc[kMR][kNR];
        micro_compute(ctx.kc, apack + ir * ctx.kc, bp, acc);
        float* ct = ctx.c + (r0 + ir) * ctx.ldc + ctx.jc + jr;
        if (mr == kMR && nr == kNR) {
          micro_store(acc, ct, ctx.ldc, ctx.beta, ctx.first, ctx.last,
                      *ctx.ep, r0 + ir, ctx.jc + jr);
        } else {
          micro_store_edge(acc, mr, nr, ct, ctx.ldc, ctx.beta, ctx.first,
                           ctx.last, *ctx.ep, r0 + ir, ctx.jc + jr);
        }
      }
    }
  }
}

// beta-scale + epilogue over all of C: the k == 0 / alpha == 0 degenerate
// path (the epilogue still runs — C = act(beta*C + bias)).
void scale_epilogue_c(Index m, Index n, float beta, float* c, Index ldc,
                      const Epilogue& ep) {
  for (Index i = 0; i < m; ++i) {
    float* crow = c + i * ldc;
    for (Index j = 0; j < n; ++j) {
      float v = beta == 0.0f ? 0.0f : beta * crow[j];
      v = epilogue_apply(v, ep, i, j);
      crow[j] = v;
    }
  }
}

// The BLIS-style engine: pack B per (jc, pc) panel on the calling thread,
// then fan the micro-panel strips out over the pool (or run them inline for
// the serial tier).  The grain is flop-derived so cheap strips coalesce
// instead of degenerating to one strip per steal.
template <typename SrcB, typename Round>
void gemm_packed(const MatView& a, const SrcB& bsrc, Index m, Index n,
                 Index k, float alpha, float beta, float* c, Index ldc,
                 const Epilogue& ep, Round rnd, bool threads) {
  WorkspaceArena& arena = WorkspaceArena::local();
  WorkspaceArena::Scope scope(arena);
  const Index nstrips = (m + kMR - 1) / kMR;
  const Index nc_max = std::min<Index>(kNC, round_up(n, kNR));
  const Index kc_max = std::min<Index>(kKC, k);
  float* bpack =
      arena.alloc<float>(static_cast<std::size_t>(kc_max * nc_max));
  for (Index jc = 0; jc < n; jc += kNC) {
    const Index nc = std::min<Index>(kNC, n - jc);
    for (Index pc = 0; pc < k; pc += kKC) {
      const Index kc = std::min<Index>(kKC, k - pc);
      pack_b(bsrc, pc, kc, jc, nc, rnd, bpack);
      PanelCtx ctx{&a,    bpack, c,  m,       ldc,  pc,
                   kc,    jc,    nc, alpha,   beta, pc == 0,
                   pc + kc >= k, &ep};
      if (threads) {
        const double flops_per_strip =
            2.0 * static_cast<double>(kMR) * static_cast<double>(kc) *
            static_cast<double>(nc);
        parallel_for(0, nstrips, grain_for_flops(nstrips, flops_per_strip),
                     [&ctx](Index s0, Index s1) {
                       compute_strips(ctx, Round{}, s0, s1);
                     });
      } else {
        compute_strips(ctx, rnd, 0, nstrips);
      }
    }
  }
}

// Dispatch helper shared by the fp32 and emulated entry points.
template <typename SrcB>
void gemm_packed_rounded(Precision prec, const MatView& a, const SrcB& bsrc,
                         Index m, Index n, Index k, float alpha, float beta,
                         float* c, Index ldc, const Epilogue& ep,
                         bool threads) {
  switch (prec) {
    case Precision::FP16:
      gemm_packed(a, bsrc, m, n, k, alpha, beta, c, ldc, ep, RoundFp16{},
                  threads);
      break;
    case Precision::BF16:
      gemm_packed(a, bsrc, m, n, k, alpha, beta, c, ldc, ep, RoundBf16{},
                  threads);
      break;
    default:
      gemm_packed(a, bsrc, m, n, k, alpha, beta, c, ldc, ep, RoundNone{},
                  threads);
      break;
  }
}

// ---- int8 engine ------------------------------------------------------------

// Quantize the logical (rows x cols) view of op(X) into contiguous
// row-major int8 in `dst` (same scale rule as formats.hpp quantize_int8).
float quantize_view(const MatView& v, Index rows, Index cols,
                    std::int8_t* dst) {
  float amax = 0.0f;
  for (Index r = 0; r < rows; ++r) {
    for (Index j = 0; j < cols; ++j) {
      amax = std::max(amax, std::abs(v.at(r, j)));
    }
  }
  const float scale = amax > 0.0f ? amax / 127.0f : 1.0f;
  const float inv = 1.0f / scale;
  for (Index r = 0; r < rows; ++r) {
    std::int8_t* drow = dst + r * cols;
    if (!v.trans) {
      const float* src = v.p + r * v.ld;
      for (Index j = 0; j < cols; ++j) {
        drow[j] = static_cast<std::int8_t>(
            std::lrintf(std::clamp(src[j] * inv, -127.0f, 127.0f)));
      }
    } else {
      for (Index j = 0; j < cols; ++j) {
        drow[j] = static_cast<std::int8_t>(
            std::lrintf(std::clamp(v.p[j * v.ld + r] * inv, -127.0f,
                                   127.0f)));
      }
    }
  }
  return scale;
}

struct Int8Ctx {
  const std::int8_t* qa;  // m x k
  const std::int8_t* qb;  // k x n
  float* c;
  Index n, k, ldc;
  float alpha_scale;  // alpha * scaleA * scaleB, folded into the dequant
  float beta;
  const Epilogue* ep;
};

// int32-accumulating row-panel kernel; alpha/beta and the epilogue are
// folded into the single dequantizing C-write (no float product temporary).
void gemm_int8_panel(const Int8Ctx& ctx, Index i0, Index i1) {
  WorkspaceArena& arena = WorkspaceArena::local();
  WorkspaceArena::Scope scope(arena);
  std::int32_t* acc =
      arena.alloc<std::int32_t>(static_cast<std::size_t>(ctx.n));
  for (Index i = i0; i < i1; ++i) {
    std::fill(acc, acc + ctx.n, 0);
    const std::int8_t* arow = ctx.qa + i * ctx.k;
    for (Index p = 0; p < ctx.k; ++p) {
      const std::int32_t av = arow[p];
      if (av == 0) continue;
      const std::int8_t* brow = ctx.qb + p * ctx.n;
      CANDLE_SIMD
      for (Index j = 0; j < ctx.n; ++j) acc[j] += av * brow[j];
    }
    float* crow = ctx.c + i * ctx.ldc;
    for (Index j = 0; j < ctx.n; ++j) {
      float v = ctx.alpha_scale * static_cast<float>(acc[j]);
      if (ctx.beta != 0.0f) v += ctx.beta * crow[j];
      v = epilogue_apply(v, *ctx.ep, i, j);
      crow[j] = v;
    }
  }
}

void gemm_int8_quantized(Index m, Index n, Index k, float alpha_scale,
                         const std::int8_t* qa, const std::int8_t* qb,
                         float beta, float* c, Index ldc,
                         const Epilogue& ep) {
  Int8Ctx ctx{qa, qb, c, n, k, ldc, alpha_scale, beta, &ep};
  parallel_for(0, m, grain_for_flops(m, 2.0 * static_cast<double>(n) * k),
               [&ctx](Index i0, Index i1) { gemm_int8_panel(ctx, i0, i1); });
}

void gemm_emulated_int8(Op op_a, Op op_b, Index m, Index n, Index k,
                        float alpha, const float* a, Index lda,
                        const float* b, Index ldb, float beta, float* c,
                        Index ldc, const Epilogue& ep) {
  WorkspaceArena& arena = WorkspaceArena::local();
  WorkspaceArena::Scope scope(arena);
  std::int8_t* qa = arena.alloc<std::int8_t>(static_cast<std::size_t>(m * k));
  std::int8_t* qb = arena.alloc<std::int8_t>(static_cast<std::size_t>(k * n));
  const float sa =
      quantize_view({a, lda, op_a == Op::Transpose}, m, k, qa);
  const float sb =
      quantize_view({b, ldb, op_b == Op::Transpose}, k, n, qb);
  gemm_int8_quantized(m, n, k, alpha * sa * sb, qa, qb, beta, c, ldc, ep);
}

void check_gemm_dims(Index m, Index n, Index k) {
  CANDLE_CHECK(m >= 0 && n >= 0 && k >= 0, "negative gemm dimension");
}

}  // namespace

// ---- public GEMM tiers ------------------------------------------------------

void gemm_naive(Op op_a, Op op_b, Index m, Index n, Index k, float alpha,
                const float* a, Index lda, const float* b, Index ldb,
                float beta, float* c, Index ldc) {
  check_gemm_dims(m, n, k);
  for (Index i = 0; i < m; ++i) {
    for (Index j = 0; j < n; ++j) {
      float acc = 0.0f;
      for (Index p = 0; p < k; ++p) {
        const float av = op_a == Op::None ? a[i * lda + p] : a[p * lda + i];
        const float bv = op_b == Op::None ? b[p * ldb + j] : b[j * ldb + p];
        acc += av * bv;
      }
      c[i * ldc + j] = alpha * acc + beta * c[i * ldc + j];
    }
  }
}

void gemm_fused(Op op_a, Op op_b, Index m, Index n, Index k, float alpha,
                const float* a, Index lda, const float* b, Index ldb,
                float beta, float* c, Index ldc, const Epilogue& ep) {
  check_gemm_dims(m, n, k);
  if (m == 0 || n == 0) return;
  if (k == 0 || alpha == 0.0f) {
    scale_epilogue_c(m, n, beta, c, ldc, ep);
    return;
  }
  const MatView av{a, lda, op_a == Op::Transpose};
  const MatSrcB bv{{b, ldb, op_b == Op::Transpose}};
  gemm_packed(av, bv, m, n, k, alpha, beta, c, ldc, ep, RoundNone{},
              /*threads=*/true);
}

void gemm(Op op_a, Op op_b, Index m, Index n, Index k, float alpha,
          const float* a, Index lda, const float* b, Index ldb, float beta,
          float* c, Index ldc) {
  gemm_fused(op_a, op_b, m, n, k, alpha, a, lda, b, ldb, beta, c, ldc, {});
}

void gemm_serial(Op op_a, Op op_b, Index m, Index n, Index k, float alpha,
                 const float* a, Index lda, const float* b, Index ldb,
                 float beta, float* c, Index ldc) {
  check_gemm_dims(m, n, k);
  if (m == 0 || n == 0) return;
  if (k == 0 || alpha == 0.0f) {
    scale_epilogue_c(m, n, beta, c, ldc, {});
    return;
  }
  const MatView av{a, lda, op_a == Op::Transpose};
  const MatSrcB bv{{b, ldb, op_b == Op::Transpose}};
  const Epilogue ep;
  gemm_packed(av, bv, m, n, k, alpha, beta, c, ldc, ep, RoundNone{},
              /*threads=*/false);
}

// ---- GEMV -------------------------------------------------------------------

namespace {

struct GemvCtx {
  const float* a;
  const float* x;
  float* y;
  Index n, lda;
  float alpha, beta;
};

void gemv_rows(const GemvCtx& ctx, Index i0, Index i1) {
  for (Index i = i0; i < i1; ++i) {
    const float* arow = ctx.a + i * ctx.lda;
    float acc = 0.0f;
    for (Index j = 0; j < ctx.n; ++j) acc += arow[j] * ctx.x[j];
    // beta == 0 is an explicit overwrite (NaN/Inf in y must not survive).
    ctx.y[i] = ctx.beta == 0.0f ? ctx.alpha * acc
                                : ctx.alpha * acc + ctx.beta * ctx.y[i];
  }
}

void gemv_cols(const GemvCtx& ctx, Index i0, Index i1) {
  // A stored n x m; this chunk owns output slots [i0, i1) and streams the
  // corresponding segment of every stored row.
  for (Index i = i0; i < i1; ++i) {
    ctx.y[i] = ctx.beta == 0.0f ? 0.0f : ctx.beta * ctx.y[i];
  }
  const Index w = i1 - i0;
  for (Index j = 0; j < ctx.n; ++j) {
    const float xv = ctx.alpha * ctx.x[j];
    const float* arow = ctx.a + j * ctx.lda + i0;
    float* yseg = ctx.y + i0;
    CANDLE_SIMD
    for (Index t = 0; t < w; ++t) yseg[t] += xv * arow[t];
  }
}

}  // namespace

void gemv(Op op_a, Index m, Index n, float alpha, const float* a, Index lda,
          const float* x, float beta, float* y) {
  CANDLE_CHECK(m >= 0 && n >= 0, "negative gemv dimension");
  if (m == 0) return;
  GemvCtx ctx{a, x, y, n, lda, alpha, beta};
  const std::int64_t grain = grain_for_flops(m, 2.0 * static_cast<double>(n));
  if (op_a == Op::None) {
    parallel_for(0, m, grain,
                 [&ctx](Index i0, Index i1) { gemv_rows(ctx, i0, i1); });
  } else {
    parallel_for(0, m, grain,
                 [&ctx](Index i0, Index i1) { gemv_cols(ctx, i0, i1); });
  }
}

// ---- int8 + emulated entry points -------------------------------------------

void gemm_int8(Index m, Index n, Index k, const float* a, const float* b,
               float* c) {
  check_gemm_dims(m, n, k);
  if (m == 0 || n == 0) return;
  gemm_emulated_int8(Op::None, Op::None, m, n, k, 1.0f, a, k, b, n, 0.0f, c,
                     n, {});
}

void gemm_emulated(Precision prec, Op op_a, Op op_b, Index m, Index n,
                   Index k, float alpha, const float* a, Index lda,
                   const float* b, Index ldb, float beta, float* c,
                   Index ldc, const Epilogue& ep) {
  if (prec == Precision::FP32 || prec == Precision::FP64) {
    gemm_fused(op_a, op_b, m, n, k, alpha, a, lda, b, ldb, beta, c, ldc, ep);
    return;
  }
  check_gemm_dims(m, n, k);
  if (m == 0 || n == 0) return;
  if (k == 0 || alpha == 0.0f) {
    scale_epilogue_c(m, n, beta, c, ldc, ep);
    return;
  }
  if (prec == Precision::INT8) {
    gemm_emulated_int8(op_a, op_b, m, n, k, alpha, a, lda, b, ldb, beta, c,
                       ldc, ep);
    return;
  }
  const MatView av{a, lda, op_a == Op::Transpose};
  const MatSrcB bv{{b, ldb, op_b == Op::Transpose}};
  gemm_packed_rounded(prec, av, bv, m, n, k, alpha, beta, c, ldc, ep,
                      /*threads=*/true);
}

// ---- tensor-level wrappers --------------------------------------------------

void matmul_into(Tensor& c, const Tensor& a, Op op_a, const Tensor& b,
                 Op op_b, float alpha, float beta, Precision prec,
                 const Epilogue& ep) {
  CANDLE_CHECK(a.ndim() == 2 && b.ndim() == 2 && c.ndim() == 2,
               "matmul_into requires rank-2 tensors");
  const Index m = op_a == Op::None ? a.dim(0) : a.dim(1);
  const Index k = op_a == Op::None ? a.dim(1) : a.dim(0);
  const Index kb = op_b == Op::None ? b.dim(0) : b.dim(1);
  const Index n = op_b == Op::None ? b.dim(1) : b.dim(0);
  CANDLE_CHECK(k == kb, "matmul inner dimension mismatch: " +
                            shape_to_string(a.shape()) + " x " +
                            shape_to_string(b.shape()));
  CANDLE_CHECK(c.dim(0) == m && c.dim(1) == n,
               "matmul output shape mismatch");
  gemm_emulated(prec, op_a, op_b, m, n, k, alpha, a.data(), a.dim(1),
                b.data(), b.dim(1), beta, c.data(), n, ep);
}

Tensor matmul(const Tensor& a, const Tensor& b) {
  CANDLE_CHECK(a.ndim() == 2 && b.ndim() == 2, "matmul requires rank-2");
  Tensor c({a.dim(0), b.dim(1)});
  matmul_into(c, a, Op::None, b, Op::None);
  return c;
}

// ---- convolution ------------------------------------------------------------

void conv1d_forward_gemm(Precision prec, const float* x, Index channels,
                         Index length, Index kernel, Index stride,
                         const float* w, Index filters, const float* bias,
                         float* y) {
  const Index lout = conv_out_length(length, kernel, stride);
  const Index fan_in = channels * kernel;
  const Epilogue ep{bias, Epilogue::BiasAxis::Row, Epilogue::Act::None};
  if (prec == Precision::INT8) {
    // int8 quantizes whole operands up front; stage the unfold in the arena.
    WorkspaceArena& arena = WorkspaceArena::local();
    WorkspaceArena::Scope scope(arena);
    float* cols =
        arena.alloc<float>(static_cast<std::size_t>(fan_in * lout));
    im2col_1d(x, channels, length, kernel, stride, cols);
    gemm_emulated(prec, Op::None, Op::None, filters, lout, fan_in, 1.0f, w,
                  fan_in, cols, lout, 0.0f, y, lout, ep);
    return;
  }
  const MatView av{w, fan_in, false};
  const Im2col1dSrcB bv{x, length, kernel, stride};
  gemm_packed_rounded(prec, av, bv, filters, lout, fan_in, 1.0f, 0.0f, y,
                      lout, ep, /*threads=*/true);
}

void conv2d_forward_gemm(Precision prec, const float* x, Index channels,
                         Index height, Index width, Index kernel,
                         Index stride, const float* w, Index filters,
                         const float* bias, float* y) {
  const Index hout = conv_out_length(height, kernel, stride);
  const Index wout = conv_out_length(width, kernel, stride);
  const Index ncols = hout * wout;
  const Index fan_in = channels * kernel * kernel;
  const Epilogue ep{bias, Epilogue::BiasAxis::Row, Epilogue::Act::None};
  if (prec == Precision::INT8) {
    WorkspaceArena& arena = WorkspaceArena::local();
    WorkspaceArena::Scope scope(arena);
    float* cols =
        arena.alloc<float>(static_cast<std::size_t>(fan_in * ncols));
    im2col_2d(x, channels, height, width, kernel, stride, cols);
    gemm_emulated(prec, Op::None, Op::None, filters, ncols, fan_in, 1.0f, w,
                  fan_in, cols, ncols, 0.0f, y, ncols, ep);
    return;
  }
  const MatView av{w, fan_in, false};
  const Im2col2dSrcB bv{x, height, width, kernel, stride, wout};
  gemm_packed_rounded(prec, av, bv, filters, ncols, fan_in, 1.0f, 0.0f, y,
                      ncols, ep, /*threads=*/true);
}

void im2col_1d(const float* x, Index channels, Index length, Index kernel,
               Index stride, float* out) {
  const Index lout = conv_out_length(length, kernel, stride);
  // out is (channels*kernel) x lout, row (c*kernel + t), column j.
  for (Index ch = 0; ch < channels; ++ch) {
    const float* xc = x + ch * length;
    for (Index t = 0; t < kernel; ++t) {
      float* orow = out + (ch * kernel + t) * lout;
      for (Index j = 0; j < lout; ++j) orow[j] = xc[j * stride + t];
    }
  }
}

void col2im_1d(const float* cols, Index channels, Index length, Index kernel,
               Index stride, float* dx) {
  const Index lout = conv_out_length(length, kernel, stride);
  for (Index ch = 0; ch < channels; ++ch) {
    float* xc = dx + ch * length;
    for (Index t = 0; t < kernel; ++t) {
      const float* crow = cols + (ch * kernel + t) * lout;
      for (Index j = 0; j < lout; ++j) xc[j * stride + t] += crow[j];
    }
  }
}

void im2col_2d(const float* x, Index channels, Index height, Index width,
               Index kernel, Index stride, float* out) {
  const Index hout = conv_out_length(height, kernel, stride);
  const Index wout = conv_out_length(width, kernel, stride);
  const Index cols = hout * wout;
  for (Index ch = 0; ch < channels; ++ch) {
    const float* xc = x + ch * height * width;
    for (Index ky = 0; ky < kernel; ++ky) {
      for (Index kx = 0; kx < kernel; ++kx) {
        float* orow = out + ((ch * kernel + ky) * kernel + kx) * cols;
        for (Index oy = 0; oy < hout; ++oy) {
          const float* src = xc + (oy * stride + ky) * width + kx;
          float* dst = orow + oy * wout;
          for (Index ox = 0; ox < wout; ++ox) dst[ox] = src[ox * stride];
        }
      }
    }
  }
}

void col2im_2d(const float* cols, Index channels, Index height, Index width,
               Index kernel, Index stride, float* dx) {
  const Index hout = conv_out_length(height, kernel, stride);
  const Index wout = conv_out_length(width, kernel, stride);
  const Index ncols = hout * wout;
  for (Index ch = 0; ch < channels; ++ch) {
    float* xc = dx + ch * height * width;
    for (Index ky = 0; ky < kernel; ++ky) {
      for (Index kx = 0; kx < kernel; ++kx) {
        const float* crow = cols + ((ch * kernel + ky) * kernel + kx) * ncols;
        for (Index oy = 0; oy < hout; ++oy) {
          float* dst = xc + (oy * stride + ky) * width + kx;
          const float* src = crow + oy * wout;
          for (Index ox = 0; ox < wout; ++ox) dst[ox * stride] += src[ox];
        }
      }
    }
  }
}

}  // namespace candle

#include "core/tensor.hpp"

#include <algorithm>
#include <cmath>
#include <sstream>

namespace candle {

std::string shape_to_string(const Shape& shape) {
  std::ostringstream os;
  os << '[';
  for (std::size_t i = 0; i < shape.size(); ++i) {
    if (i > 0) os << ", ";
    os << shape[i];
  }
  os << ']';
  return os.str();
}

Tensor::Tensor(Shape shape, std::vector<float> values)
    : shape_(std::move(shape)), data_(values.begin(), values.end()) {
  CANDLE_CHECK(static_cast<Index>(data_.size()) == shape_numel(shape_),
               "value count does not match shape " + shape_to_string(shape_));
}

Tensor Tensor::randn(Shape shape, Pcg32& rng, float mean, float stddev) {
  Tensor t(std::move(shape));
  for (float& v : t.data_) {
    v = static_cast<float>(rng.normal(mean, stddev));
  }
  return t;
}

Tensor Tensor::uniform(Shape shape, Pcg32& rng, float lo, float hi) {
  Tensor t(std::move(shape));
  for (float& v : t.data_) {
    v = lo + (hi - lo) * rng.next_float();
  }
  return t;
}

Tensor Tensor::of(std::initializer_list<float> values) {
  return Tensor({static_cast<Index>(values.size())},
                std::vector<float>(values));
}

Index Tensor::dim(Index i) const {
  const Index n = ndim();
  if (i < 0) i += n;
  CANDLE_CHECK(i >= 0 && i < n, "dim index out of range for shape " +
                                    shape_to_string(shape_));
  return shape_[static_cast<std::size_t>(i)];
}

Tensor& Tensor::reshape(Shape shape) {
  Index known = 1;
  Index infer_at = -1;
  for (std::size_t i = 0; i < shape.size(); ++i) {
    if (shape[i] == -1) {
      CANDLE_CHECK(infer_at < 0, "at most one -1 dimension in reshape");
      infer_at = static_cast<Index>(i);
    } else {
      CANDLE_CHECK(shape[i] >= 0, "invalid reshape dimension");
      known *= shape[i];
    }
  }
  if (infer_at >= 0) {
    CANDLE_CHECK(known > 0 && numel() % known == 0,
                 "cannot infer -1 dimension in reshape to " +
                     shape_to_string(shape));
    shape[static_cast<std::size_t>(infer_at)] = numel() / known;
  }
  CANDLE_CHECK(shape_numel(shape) == numel(),
               "reshape " + shape_to_string(shape_) + " -> " +
                   shape_to_string(shape) + " changes element count");
  shape_ = std::move(shape);
  return *this;
}

Tensor Tensor::reshaped(Shape shape) const {
  Tensor t = *this;
  t.reshape(std::move(shape));
  return t;
}

Tensor& Tensor::resize_dim0(Index rows) {
  CANDLE_CHECK(ndim() >= 1, "resize_dim0 requires at least one dimension");
  CANDLE_CHECK(rows >= 0, "resize_dim0 row count must be non-negative");
  Index stride = 1;
  for (std::size_t d = 1; d < shape_.size(); ++d) stride *= shape_[d];
  shape_[0] = rows;
  data_.resize(static_cast<std::size_t>(rows * stride), 0.0f);
  return *this;
}

std::span<float> Tensor::row(Index r) {
  CANDLE_CHECK(ndim() == 2, "row() requires a rank-2 tensor");
  CANDLE_CHECK(r >= 0 && r < dim(0), "row index out of range");
  const Index cols = dim(1);
  return {data_.data() + static_cast<std::size_t>(r * cols),
          static_cast<std::size_t>(cols)};
}

std::span<const float> Tensor::row(Index r) const {
  CANDLE_CHECK(ndim() == 2, "row() requires a rank-2 tensor");
  CANDLE_CHECK(r >= 0 && r < dim(0), "row index out of range");
  const Index cols = dim(1);
  return {data_.data() + static_cast<std::size_t>(r * cols),
          static_cast<std::size_t>(cols)};
}

std::span<float> Tensor::dim0_slice(Index r) {
  CANDLE_CHECK(ndim() >= 1, "dim0_slice() requires rank >= 1");
  CANDLE_CHECK(r >= 0 && r < dim(0), "dim0_slice index out of range");
  const Index stride = numel() / dim(0);
  return {data_.data() + static_cast<std::size_t>(r * stride),
          static_cast<std::size_t>(stride)};
}

std::span<const float> Tensor::dim0_slice(Index r) const {
  CANDLE_CHECK(ndim() >= 1, "dim0_slice() requires rank >= 1");
  CANDLE_CHECK(r >= 0 && r < dim(0), "dim0_slice index out of range");
  const Index stride = numel() / dim(0);
  return {data_.data() + static_cast<std::size_t>(r * stride),
          static_cast<std::size_t>(stride)};
}

Tensor& Tensor::fill(float value) {
  std::fill(data_.begin(), data_.end(), value);
  return *this;
}

Tensor& Tensor::scale(float factor) {
  for (float& v : data_) v *= factor;
  return *this;
}

Tensor& Tensor::axpy(float alpha, const Tensor& other) {
  CANDLE_CHECK(same_shape(other), "axpy shape mismatch: " +
                                      shape_to_string(shape_) + " vs " +
                                      shape_to_string(other.shape_));
  const float* src = other.data();
  for (std::size_t i = 0; i < data_.size(); ++i) data_[i] += alpha * src[i];
  return *this;
}

Tensor& Tensor::copy_from(const Tensor& other) {
  CANDLE_CHECK(same_shape(other), "copy_from shape mismatch");
  std::copy(other.data_.begin(), other.data_.end(), data_.begin());
  return *this;
}

float Tensor::sum() const {
  // Pairwise-ish: accumulate in double to keep reductions stable for the
  // large activation tensors the benchmarks produce.
  double acc = 0.0;
  for (float v : data_) acc += static_cast<double>(v);
  return static_cast<float>(acc);
}

float Tensor::min() const {
  CANDLE_CHECK(!data_.empty(), "min() of empty tensor");
  return *std::min_element(data_.begin(), data_.end());
}

float Tensor::max() const {
  CANDLE_CHECK(!data_.empty(), "max() of empty tensor");
  return *std::max_element(data_.begin(), data_.end());
}

float Tensor::l2_norm() const {
  double acc = 0.0;
  for (float v : data_) acc += static_cast<double>(v) * static_cast<double>(v);
  return static_cast<float>(std::sqrt(acc));
}

Index Tensor::argmax() const {
  CANDLE_CHECK(!data_.empty(), "argmax() of empty tensor");
  return static_cast<Index>(
      std::max_element(data_.begin(), data_.end()) - data_.begin());
}

std::size_t Tensor::offset_of(std::initializer_list<Index> ix) const {
  CANDLE_CHECK(static_cast<Index>(ix.size()) == ndim(),
               "index rank mismatch for shape " + shape_to_string(shape_));
  std::size_t off = 0;
  std::size_t d = 0;
  for (Index i : ix) {
    CANDLE_CHECK(i >= 0 && i < shape_[d], "index out of range in dim " +
                                              std::to_string(d));
    off = off * static_cast<std::size_t>(shape_[d]) +
          static_cast<std::size_t>(i);
    ++d;
  }
  return off;
}

float max_abs_diff(const Tensor& a, const Tensor& b) {
  CANDLE_CHECK(a.same_shape(b), "max_abs_diff shape mismatch");
  float m = 0.0f;
  const float* pa = a.data();
  const float* pb = b.data();
  for (Index i = 0; i < a.numel(); ++i) {
    m = std::max(m, std::abs(pa[i] - pb[i]));
  }
  return m;
}

}  // namespace candle

// Dense row-major tensor of float32 — the storage type for all model
// parameters, activations, and datasets in candle-hpc.
//
// Scope: this is deliberately a *storage* class (shape + contiguous buffer +
// element access + cheap reshapes).  Compute lives in core/kernels.hpp and
// the nn layers; numeric-format emulation lives in core/formats.hpp.  The
// paper's workloads (2017-era CANDLE nets) need rank 1–4 tensors:
// (features), (batch, features), (batch, channels, length) and
// (batch, channels, height, width).
#pragma once

#include <cstdint>
#include <initializer_list>
#include <numeric>
#include <span>
#include <string>
#include <vector>

#include "runtime/error.hpp"
#include "runtime/rng.hpp"
#include "runtime/workspace.hpp"

namespace candle {

using Index = std::int64_t;
using Shape = std::vector<Index>;

/// Number of elements described by a shape (1 for the empty shape).
inline Index shape_numel(const Shape& shape) {
  Index n = 1;
  for (Index d : shape) {
    CANDLE_CHECK(d >= 0, "negative dimension in shape");
    n *= d;
  }
  return n;
}

/// Human-readable "[a, b, c]" rendering for error messages.
std::string shape_to_string(const Shape& shape);

/// Contiguous row-major float tensor with value semantics.
class Tensor {
 public:
  /// Empty rank-0 tensor with a single element (scalar zero).
  Tensor() : shape_{}, data_(1, 0.0f) {}

  /// Zero-initialized tensor of the given shape.
  explicit Tensor(Shape shape)
      : shape_(std::move(shape)),
        data_(static_cast<std::size_t>(shape_numel(shape_)), 0.0f) {}

  /// Tensor of the given shape filled with `value`.
  Tensor(Shape shape, float value)
      : shape_(std::move(shape)),
        data_(static_cast<std::size_t>(shape_numel(shape_)), value) {}

  /// Tensor copying explicit contents (must match the shape's numel).
  Tensor(Shape shape, std::vector<float> values);

  // ---- factories -----------------------------------------------------------

  static Tensor zeros(Shape shape) { return Tensor(std::move(shape)); }
  static Tensor ones(Shape shape) { return Tensor(std::move(shape), 1.0f); }
  static Tensor full(Shape shape, float value) {
    return Tensor(std::move(shape), value);
  }
  /// I.i.d. N(mean, stddev^2) entries drawn from `rng`.
  static Tensor randn(Shape shape, Pcg32& rng, float mean = 0.0f,
                      float stddev = 1.0f);
  /// I.i.d. U[lo, hi) entries drawn from `rng`.
  static Tensor uniform(Shape shape, Pcg32& rng, float lo = 0.0f,
                        float hi = 1.0f);
  /// 1-D tensor from a braced list: Tensor::of({1, 2, 3}).
  static Tensor of(std::initializer_list<float> values);

  // ---- shape ---------------------------------------------------------------

  const Shape& shape() const { return shape_; }
  Index ndim() const { return static_cast<Index>(shape_.size()); }
  Index numel() const { return static_cast<Index>(data_.size()); }
  /// Size of dimension `i`; negative `i` counts from the end.
  Index dim(Index i) const;

  /// Reinterpret as `shape` (same numel).  One dimension may be -1 and is
  /// inferred.  O(1) aside from the shape copy.
  Tensor& reshape(Shape shape);
  /// Reshaped copy.
  Tensor reshaped(Shape shape) const;

  /// Resize the leading (batch) dimension to `rows`, keeping the trailing
  /// dimensions and reusing the existing storage capacity: shrinking never
  /// releases memory and growing back up to a previously reached size never
  /// reallocates.  New rows (if any) are zero-initialized.  This is what
  /// lets the batch-assembly path (nn/batching) cycle full and tail batches
  /// through one buffer with zero steady-state heap traffic.
  Tensor& resize_dim0(Index rows);

  // ---- element access ------------------------------------------------------

  float* data() { return data_.data(); }
  const float* data() const { return data_.data(); }
  std::span<float> flat() { return {data_.data(), data_.size()}; }
  std::span<const float> flat() const { return {data_.data(), data_.size()}; }

  float& operator[](Index i) { return data_[static_cast<std::size_t>(i)]; }
  float operator[](Index i) const { return data_[static_cast<std::size_t>(i)]; }

  /// Bounds-checked multidimensional access, e.g. t.at(n, c, h, w).
  template <typename... Ix>
  float& at(Ix... ix) {
    return data_[offset_of({static_cast<Index>(ix)...})];
  }
  template <typename... Ix>
  float at(Ix... ix) const {
    return data_[offset_of({static_cast<Index>(ix)...})];
  }

  /// Row `r` of a rank-2 tensor as a span (length = dim(1)).
  std::span<float> row(Index r);
  std::span<const float> row(Index r) const;

  /// Slice `r` along the leading dimension of a rank >= 1 tensor as a flat
  /// span (length = numel / dim(0)).  The rank-agnostic sibling of row():
  /// what the slot-matrix assembly path (nn/batching) uses to address one
  /// sample of a (rows, sample...) buffer without caring about the sample
  /// rank.
  std::span<float> dim0_slice(Index r);
  std::span<const float> dim0_slice(Index r) const;

  // ---- simple in-place ops used throughout ---------------------------------

  Tensor& fill(float value);
  Tensor& scale(float factor);
  /// this += alpha * other (elementwise, shapes must match).
  Tensor& axpy(float alpha, const Tensor& other);
  /// this = other (shapes must match; keeps capacity).
  Tensor& copy_from(const Tensor& other);

  // ---- reductions ----------------------------------------------------------

  float sum() const;
  float mean() const { return numel() > 0 ? sum() / static_cast<float>(numel()) : 0.0f; }
  float min() const;
  float max() const;
  /// sqrt(sum of squares).
  float l2_norm() const;
  /// Index of the maximum element (first on ties).
  Index argmax() const;

  bool same_shape(const Tensor& other) const { return shape_ == other.shape_; }

 private:
  std::size_t offset_of(std::initializer_list<Index> ix) const;

  Shape shape_;
  // Cache-line-aligned storage so GEMM operands start on 64-byte boundaries
  // (the packed kernels issue aligned SIMD loads against pack buffers and
  // stream C rows; alignment keeps split-line traffic off the hot path).
  AlignedVector data_;
};

/// Max elementwise absolute difference; tensors must have equal shapes.
float max_abs_diff(const Tensor& a, const Tensor& b);

}  // namespace candle

# Empty dependencies file for bench_e1_precision.
# This may be replaced when dependencies are built.

file(REMOVE_RECURSE
  "CMakeFiles/bench_e1_precision.dir/bench_e1_precision.cpp.o"
  "CMakeFiles/bench_e1_precision.dir/bench_e1_precision.cpp.o.d"
  "bench_e1_precision"
  "bench_e1_precision.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_e1_precision.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

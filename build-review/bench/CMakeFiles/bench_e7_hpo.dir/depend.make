# Empty dependencies file for bench_e7_hpo.
# This may be replaced when dependencies are built.

file(REMOVE_RECURSE
  "CMakeFiles/bench_e7_hpo.dir/bench_e7_hpo.cpp.o"
  "CMakeFiles/bench_e7_hpo.dir/bench_e7_hpo.cpp.o.d"
  "bench_e7_hpo"
  "bench_e7_hpo.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_e7_hpo.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

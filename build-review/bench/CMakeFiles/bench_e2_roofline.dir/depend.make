# Empty dependencies file for bench_e2_roofline.
# This may be replaced when dependencies are built.

file(REMOVE_RECURSE
  "CMakeFiles/bench_e2_roofline.dir/bench_e2_roofline.cpp.o"
  "CMakeFiles/bench_e2_roofline.dir/bench_e2_roofline.cpp.o.d"
  "bench_e2_roofline"
  "bench_e2_roofline.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_e2_roofline.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

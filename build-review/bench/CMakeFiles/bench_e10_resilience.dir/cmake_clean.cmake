file(REMOVE_RECURSE
  "CMakeFiles/bench_e10_resilience.dir/bench_e10_resilience.cpp.o"
  "CMakeFiles/bench_e10_resilience.dir/bench_e10_resilience.cpp.o.d"
  "bench_e10_resilience"
  "bench_e10_resilience.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_e10_resilience.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

# Empty dependencies file for bench_e9_future.
# This may be replaced when dependencies are built.

file(REMOVE_RECURSE
  "CMakeFiles/bench_e9_future.dir/bench_e9_future.cpp.o"
  "CMakeFiles/bench_e9_future.dir/bench_e9_future.cpp.o.d"
  "bench_e9_future"
  "bench_e9_future.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_e9_future.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

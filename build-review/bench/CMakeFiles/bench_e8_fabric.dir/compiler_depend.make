# Empty compiler generated dependencies file for bench_e8_fabric.
# This may be replaced when dependencies are built.

file(REMOVE_RECURSE
  "CMakeFiles/bench_e8_fabric.dir/bench_e8_fabric.cpp.o"
  "CMakeFiles/bench_e8_fabric.dir/bench_e8_fabric.cpp.o.d"
  "bench_e8_fabric"
  "bench_e8_fabric.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_e8_fabric.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

file(REMOVE_RECURSE
  "CMakeFiles/bench_e5_datamotion.dir/bench_e5_datamotion.cpp.o"
  "CMakeFiles/bench_e5_datamotion.dir/bench_e5_datamotion.cpp.o.d"
  "bench_e5_datamotion"
  "bench_e5_datamotion.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_e5_datamotion.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()


# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/bench/bench_e5_datamotion.cpp" "bench/CMakeFiles/bench_e5_datamotion.dir/bench_e5_datamotion.cpp.o" "gcc" "bench/CMakeFiles/bench_e5_datamotion.dir/bench_e5_datamotion.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build-review/src/CMakeFiles/candle_parallel.dir/DependInfo.cmake"
  "/root/repo/build-review/src/CMakeFiles/candle_biodata.dir/DependInfo.cmake"
  "/root/repo/build-review/src/CMakeFiles/candle_sched.dir/DependInfo.cmake"
  "/root/repo/build-review/src/CMakeFiles/candle_hpcsim.dir/DependInfo.cmake"
  "/root/repo/build-review/src/CMakeFiles/candle_hpo.dir/DependInfo.cmake"
  "/root/repo/build-review/src/CMakeFiles/candle_nn.dir/DependInfo.cmake"
  "/root/repo/build-review/src/CMakeFiles/candle_core.dir/DependInfo.cmake"
  "/root/repo/build-review/src/CMakeFiles/candle_runtime.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")

# Empty dependencies file for bench_e5_datamotion.
# This may be replaced when dependencies are built.

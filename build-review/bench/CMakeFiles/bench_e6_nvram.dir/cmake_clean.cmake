file(REMOVE_RECURSE
  "CMakeFiles/bench_e6_nvram.dir/bench_e6_nvram.cpp.o"
  "CMakeFiles/bench_e6_nvram.dir/bench_e6_nvram.cpp.o.d"
  "bench_e6_nvram"
  "bench_e6_nvram.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_e6_nvram.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

# Empty dependencies file for bench_e6_nvram.
# This may be replaced when dependencies are built.

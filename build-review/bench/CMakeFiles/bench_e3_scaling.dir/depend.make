# Empty dependencies file for bench_e3_scaling.
# This may be replaced when dependencies are built.

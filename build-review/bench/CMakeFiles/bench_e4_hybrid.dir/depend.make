# Empty dependencies file for bench_e4_hybrid.
# This may be replaced when dependencies are built.

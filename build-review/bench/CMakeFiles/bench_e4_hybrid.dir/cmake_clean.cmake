file(REMOVE_RECURSE
  "CMakeFiles/bench_e4_hybrid.dir/bench_e4_hybrid.cpp.o"
  "CMakeFiles/bench_e4_hybrid.dir/bench_e4_hybrid.cpp.o.d"
  "bench_e4_hybrid"
  "bench_e4_hybrid.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_e4_hybrid.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

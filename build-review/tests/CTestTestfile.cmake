# CMake generated Testfile for 
# Source directory: /root/repo/tests
# Build directory: /root/repo/build-review/tests
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
include("/root/repo/build-review/tests/test_runtime[1]_include.cmake")
include("/root/repo/build-review/tests/test_workspace[1]_include.cmake")
include("/root/repo/build-review/tests/test_tensor[1]_include.cmake")
include("/root/repo/build-review/tests/test_formats[1]_include.cmake")
include("/root/repo/build-review/tests/test_kernels[1]_include.cmake")
include("/root/repo/build-review/tests/test_layers[1]_include.cmake")
include("/root/repo/build-review/tests/test_losses_optim[1]_include.cmake")
include("/root/repo/build-review/tests/test_model[1]_include.cmake")
include("/root/repo/build-review/tests/test_dataset[1]_include.cmake")
include("/root/repo/build-review/tests/test_biodata[1]_include.cmake")
include("/root/repo/build-review/tests/test_hpcsim[1]_include.cmake")
include("/root/repo/build-review/tests/test_parallel[1]_include.cmake")
include("/root/repo/build-review/tests/test_hpo[1]_include.cmake")
include("/root/repo/build-review/tests/test_sched[1]_include.cmake")
include("/root/repo/build-review/tests/test_nn_extensions[1]_include.cmake")
include("/root/repo/build-review/tests/test_pilots[1]_include.cmake")
include("/root/repo/build-review/tests/test_extensions2[1]_include.cmake")
include("/root/repo/build-review/tests/test_analysis_histology[1]_include.cmake")
include("/root/repo/build-review/tests/test_tensor_parallel[1]_include.cmake")
include("/root/repo/build-review/tests/test_properties[1]_include.cmake")
include("/root/repo/build-review/tests/test_pbt_staging[1]_include.cmake")
include("/root/repo/build-review/tests/test_residual_pipeline[1]_include.cmake")
include("/root/repo/build-review/tests/test_resilience[1]_include.cmake")
include("/root/repo/build-review/tests/test_straggler[1]_include.cmake")
include("/root/repo/build-review/tests/test_overlap[1]_include.cmake")

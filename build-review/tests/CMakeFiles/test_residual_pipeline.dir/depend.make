# Empty dependencies file for test_residual_pipeline.
# This may be replaced when dependencies are built.

file(REMOVE_RECURSE
  "CMakeFiles/test_residual_pipeline.dir/test_residual_pipeline.cpp.o"
  "CMakeFiles/test_residual_pipeline.dir/test_residual_pipeline.cpp.o.d"
  "test_residual_pipeline"
  "test_residual_pipeline.pdb"
  "test_residual_pipeline[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_residual_pipeline.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

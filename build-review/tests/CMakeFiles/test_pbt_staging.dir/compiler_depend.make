# Empty compiler generated dependencies file for test_pbt_staging.
# This may be replaced when dependencies are built.

file(REMOVE_RECURSE
  "CMakeFiles/test_pbt_staging.dir/test_pbt_staging.cpp.o"
  "CMakeFiles/test_pbt_staging.dir/test_pbt_staging.cpp.o.d"
  "test_pbt_staging"
  "test_pbt_staging.pdb"
  "test_pbt_staging[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_pbt_staging.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

file(REMOVE_RECURSE
  "CMakeFiles/test_nn_extensions.dir/test_nn_extensions.cpp.o"
  "CMakeFiles/test_nn_extensions.dir/test_nn_extensions.cpp.o.d"
  "test_nn_extensions"
  "test_nn_extensions.pdb"
  "test_nn_extensions[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_nn_extensions.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

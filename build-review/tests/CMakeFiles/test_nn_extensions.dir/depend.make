# Empty dependencies file for test_nn_extensions.
# This may be replaced when dependencies are built.

# Empty dependencies file for test_pilots.
# This may be replaced when dependencies are built.

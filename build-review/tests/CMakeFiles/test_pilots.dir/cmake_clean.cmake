file(REMOVE_RECURSE
  "CMakeFiles/test_pilots.dir/test_pilots.cpp.o"
  "CMakeFiles/test_pilots.dir/test_pilots.cpp.o.d"
  "test_pilots"
  "test_pilots.pdb"
  "test_pilots[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_pilots.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

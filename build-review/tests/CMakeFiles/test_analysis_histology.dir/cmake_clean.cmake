file(REMOVE_RECURSE
  "CMakeFiles/test_analysis_histology.dir/test_analysis_histology.cpp.o"
  "CMakeFiles/test_analysis_histology.dir/test_analysis_histology.cpp.o.d"
  "test_analysis_histology"
  "test_analysis_histology.pdb"
  "test_analysis_histology[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_analysis_histology.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

# Empty dependencies file for test_analysis_histology.
# This may be replaced when dependencies are built.

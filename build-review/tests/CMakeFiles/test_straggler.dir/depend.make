# Empty dependencies file for test_straggler.
# This may be replaced when dependencies are built.

file(REMOVE_RECURSE
  "CMakeFiles/test_straggler.dir/test_straggler.cpp.o"
  "CMakeFiles/test_straggler.dir/test_straggler.cpp.o.d"
  "test_straggler"
  "test_straggler.pdb"
  "test_straggler[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_straggler.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

file(REMOVE_RECURSE
  "CMakeFiles/test_biodata.dir/test_biodata.cpp.o"
  "CMakeFiles/test_biodata.dir/test_biodata.cpp.o.d"
  "test_biodata"
  "test_biodata.pdb"
  "test_biodata[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_biodata.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

# Empty dependencies file for test_biodata.
# This may be replaced when dependencies are built.

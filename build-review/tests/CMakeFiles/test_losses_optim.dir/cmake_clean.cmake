file(REMOVE_RECURSE
  "CMakeFiles/test_losses_optim.dir/test_losses_optim.cpp.o"
  "CMakeFiles/test_losses_optim.dir/test_losses_optim.cpp.o.d"
  "test_losses_optim"
  "test_losses_optim.pdb"
  "test_losses_optim[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_losses_optim.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

# Empty dependencies file for test_losses_optim.
# This may be replaced when dependencies are built.

file(REMOVE_RECURSE
  "CMakeFiles/test_tensor_parallel.dir/test_tensor_parallel.cpp.o"
  "CMakeFiles/test_tensor_parallel.dir/test_tensor_parallel.cpp.o.d"
  "test_tensor_parallel"
  "test_tensor_parallel.pdb"
  "test_tensor_parallel[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_tensor_parallel.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

# Empty compiler generated dependencies file for test_tensor_parallel.
# This may be replaced when dependencies are built.

# Empty dependencies file for test_hpo.
# This may be replaced when dependencies are built.

file(REMOVE_RECURSE
  "CMakeFiles/test_hpo.dir/test_hpo.cpp.o"
  "CMakeFiles/test_hpo.dir/test_hpo.cpp.o.d"
  "test_hpo"
  "test_hpo.pdb"
  "test_hpo[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_hpo.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

file(REMOVE_RECURSE
  "CMakeFiles/test_hpcsim.dir/test_hpcsim.cpp.o"
  "CMakeFiles/test_hpcsim.dir/test_hpcsim.cpp.o.d"
  "test_hpcsim"
  "test_hpcsim.pdb"
  "test_hpcsim[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_hpcsim.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

# Empty compiler generated dependencies file for test_hpcsim.
# This may be replaced when dependencies are built.

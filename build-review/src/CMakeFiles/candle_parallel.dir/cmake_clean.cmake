file(REMOVE_RECURSE
  "CMakeFiles/candle_parallel.dir/parallel/bucketing.cpp.o"
  "CMakeFiles/candle_parallel.dir/parallel/bucketing.cpp.o.d"
  "CMakeFiles/candle_parallel.dir/parallel/collectives.cpp.o"
  "CMakeFiles/candle_parallel.dir/parallel/collectives.cpp.o.d"
  "CMakeFiles/candle_parallel.dir/parallel/compression.cpp.o"
  "CMakeFiles/candle_parallel.dir/parallel/compression.cpp.o.d"
  "CMakeFiles/candle_parallel.dir/parallel/data_parallel.cpp.o"
  "CMakeFiles/candle_parallel.dir/parallel/data_parallel.cpp.o.d"
  "CMakeFiles/candle_parallel.dir/parallel/model_parallel.cpp.o"
  "CMakeFiles/candle_parallel.dir/parallel/model_parallel.cpp.o.d"
  "CMakeFiles/candle_parallel.dir/parallel/param_server.cpp.o"
  "CMakeFiles/candle_parallel.dir/parallel/param_server.cpp.o.d"
  "CMakeFiles/candle_parallel.dir/parallel/pipeline_exec.cpp.o"
  "CMakeFiles/candle_parallel.dir/parallel/pipeline_exec.cpp.o.d"
  "CMakeFiles/candle_parallel.dir/parallel/resilient.cpp.o"
  "CMakeFiles/candle_parallel.dir/parallel/resilient.cpp.o.d"
  "CMakeFiles/candle_parallel.dir/parallel/tensor_parallel.cpp.o"
  "CMakeFiles/candle_parallel.dir/parallel/tensor_parallel.cpp.o.d"
  "CMakeFiles/candle_parallel.dir/parallel/workload.cpp.o"
  "CMakeFiles/candle_parallel.dir/parallel/workload.cpp.o.d"
  "libcandle_parallel.a"
  "libcandle_parallel.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/candle_parallel.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

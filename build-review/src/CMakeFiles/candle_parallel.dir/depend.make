# Empty dependencies file for candle_parallel.
# This may be replaced when dependencies are built.

file(REMOVE_RECURSE
  "libcandle_parallel.a"
)

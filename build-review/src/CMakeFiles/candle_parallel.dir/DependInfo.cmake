
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/parallel/bucketing.cpp" "src/CMakeFiles/candle_parallel.dir/parallel/bucketing.cpp.o" "gcc" "src/CMakeFiles/candle_parallel.dir/parallel/bucketing.cpp.o.d"
  "/root/repo/src/parallel/collectives.cpp" "src/CMakeFiles/candle_parallel.dir/parallel/collectives.cpp.o" "gcc" "src/CMakeFiles/candle_parallel.dir/parallel/collectives.cpp.o.d"
  "/root/repo/src/parallel/compression.cpp" "src/CMakeFiles/candle_parallel.dir/parallel/compression.cpp.o" "gcc" "src/CMakeFiles/candle_parallel.dir/parallel/compression.cpp.o.d"
  "/root/repo/src/parallel/data_parallel.cpp" "src/CMakeFiles/candle_parallel.dir/parallel/data_parallel.cpp.o" "gcc" "src/CMakeFiles/candle_parallel.dir/parallel/data_parallel.cpp.o.d"
  "/root/repo/src/parallel/model_parallel.cpp" "src/CMakeFiles/candle_parallel.dir/parallel/model_parallel.cpp.o" "gcc" "src/CMakeFiles/candle_parallel.dir/parallel/model_parallel.cpp.o.d"
  "/root/repo/src/parallel/param_server.cpp" "src/CMakeFiles/candle_parallel.dir/parallel/param_server.cpp.o" "gcc" "src/CMakeFiles/candle_parallel.dir/parallel/param_server.cpp.o.d"
  "/root/repo/src/parallel/pipeline_exec.cpp" "src/CMakeFiles/candle_parallel.dir/parallel/pipeline_exec.cpp.o" "gcc" "src/CMakeFiles/candle_parallel.dir/parallel/pipeline_exec.cpp.o.d"
  "/root/repo/src/parallel/resilient.cpp" "src/CMakeFiles/candle_parallel.dir/parallel/resilient.cpp.o" "gcc" "src/CMakeFiles/candle_parallel.dir/parallel/resilient.cpp.o.d"
  "/root/repo/src/parallel/tensor_parallel.cpp" "src/CMakeFiles/candle_parallel.dir/parallel/tensor_parallel.cpp.o" "gcc" "src/CMakeFiles/candle_parallel.dir/parallel/tensor_parallel.cpp.o.d"
  "/root/repo/src/parallel/workload.cpp" "src/CMakeFiles/candle_parallel.dir/parallel/workload.cpp.o" "gcc" "src/CMakeFiles/candle_parallel.dir/parallel/workload.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build-review/src/CMakeFiles/candle_nn.dir/DependInfo.cmake"
  "/root/repo/build-review/src/CMakeFiles/candle_biodata.dir/DependInfo.cmake"
  "/root/repo/build-review/src/CMakeFiles/candle_hpcsim.dir/DependInfo.cmake"
  "/root/repo/build-review/src/CMakeFiles/candle_core.dir/DependInfo.cmake"
  "/root/repo/build-review/src/CMakeFiles/candle_runtime.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")

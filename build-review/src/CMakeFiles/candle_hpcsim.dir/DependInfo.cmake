
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/hpcsim/calibrate.cpp" "src/CMakeFiles/candle_hpcsim.dir/hpcsim/calibrate.cpp.o" "gcc" "src/CMakeFiles/candle_hpcsim.dir/hpcsim/calibrate.cpp.o.d"
  "/root/repo/src/hpcsim/fabric.cpp" "src/CMakeFiles/candle_hpcsim.dir/hpcsim/fabric.cpp.o" "gcc" "src/CMakeFiles/candle_hpcsim.dir/hpcsim/fabric.cpp.o.d"
  "/root/repo/src/hpcsim/machine.cpp" "src/CMakeFiles/candle_hpcsim.dir/hpcsim/machine.cpp.o" "gcc" "src/CMakeFiles/candle_hpcsim.dir/hpcsim/machine.cpp.o.d"
  "/root/repo/src/hpcsim/perfmodel.cpp" "src/CMakeFiles/candle_hpcsim.dir/hpcsim/perfmodel.cpp.o" "gcc" "src/CMakeFiles/candle_hpcsim.dir/hpcsim/perfmodel.cpp.o.d"
  "/root/repo/src/hpcsim/resilience.cpp" "src/CMakeFiles/candle_hpcsim.dir/hpcsim/resilience.cpp.o" "gcc" "src/CMakeFiles/candle_hpcsim.dir/hpcsim/resilience.cpp.o.d"
  "/root/repo/src/hpcsim/staging.cpp" "src/CMakeFiles/candle_hpcsim.dir/hpcsim/staging.cpp.o" "gcc" "src/CMakeFiles/candle_hpcsim.dir/hpcsim/staging.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build-review/src/CMakeFiles/candle_core.dir/DependInfo.cmake"
  "/root/repo/build-review/src/CMakeFiles/candle_runtime.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")

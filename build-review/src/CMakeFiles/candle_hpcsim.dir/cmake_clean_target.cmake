file(REMOVE_RECURSE
  "libcandle_hpcsim.a"
)

# Empty dependencies file for candle_hpcsim.
# This may be replaced when dependencies are built.

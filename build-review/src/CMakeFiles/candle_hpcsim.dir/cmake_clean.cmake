file(REMOVE_RECURSE
  "CMakeFiles/candle_hpcsim.dir/hpcsim/calibrate.cpp.o"
  "CMakeFiles/candle_hpcsim.dir/hpcsim/calibrate.cpp.o.d"
  "CMakeFiles/candle_hpcsim.dir/hpcsim/fabric.cpp.o"
  "CMakeFiles/candle_hpcsim.dir/hpcsim/fabric.cpp.o.d"
  "CMakeFiles/candle_hpcsim.dir/hpcsim/machine.cpp.o"
  "CMakeFiles/candle_hpcsim.dir/hpcsim/machine.cpp.o.d"
  "CMakeFiles/candle_hpcsim.dir/hpcsim/perfmodel.cpp.o"
  "CMakeFiles/candle_hpcsim.dir/hpcsim/perfmodel.cpp.o.d"
  "CMakeFiles/candle_hpcsim.dir/hpcsim/resilience.cpp.o"
  "CMakeFiles/candle_hpcsim.dir/hpcsim/resilience.cpp.o.d"
  "CMakeFiles/candle_hpcsim.dir/hpcsim/staging.cpp.o"
  "CMakeFiles/candle_hpcsim.dir/hpcsim/staging.cpp.o.d"
  "libcandle_hpcsim.a"
  "libcandle_hpcsim.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/candle_hpcsim.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

# Empty dependencies file for candle_runtime.
# This may be replaced when dependencies are built.

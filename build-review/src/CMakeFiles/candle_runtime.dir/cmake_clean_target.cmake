file(REMOVE_RECURSE
  "libcandle_runtime.a"
)

file(REMOVE_RECURSE
  "CMakeFiles/candle_runtime.dir/runtime/fault.cpp.o"
  "CMakeFiles/candle_runtime.dir/runtime/fault.cpp.o.d"
  "CMakeFiles/candle_runtime.dir/runtime/thread_pool.cpp.o"
  "CMakeFiles/candle_runtime.dir/runtime/thread_pool.cpp.o.d"
  "CMakeFiles/candle_runtime.dir/runtime/workspace.cpp.o"
  "CMakeFiles/candle_runtime.dir/runtime/workspace.cpp.o.d"
  "libcandle_runtime.a"
  "libcandle_runtime.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/candle_runtime.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

file(REMOVE_RECURSE
  "libcandle_hpo.a"
)

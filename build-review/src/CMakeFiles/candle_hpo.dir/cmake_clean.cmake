file(REMOVE_RECURSE
  "CMakeFiles/candle_hpo.dir/hpo/analysis.cpp.o"
  "CMakeFiles/candle_hpo.dir/hpo/analysis.cpp.o.d"
  "CMakeFiles/candle_hpo.dir/hpo/objectives.cpp.o"
  "CMakeFiles/candle_hpo.dir/hpo/objectives.cpp.o.d"
  "CMakeFiles/candle_hpo.dir/hpo/pbt.cpp.o"
  "CMakeFiles/candle_hpo.dir/hpo/pbt.cpp.o.d"
  "CMakeFiles/candle_hpo.dir/hpo/searchers.cpp.o"
  "CMakeFiles/candle_hpo.dir/hpo/searchers.cpp.o.d"
  "CMakeFiles/candle_hpo.dir/hpo/space.cpp.o"
  "CMakeFiles/candle_hpo.dir/hpo/space.cpp.o.d"
  "libcandle_hpo.a"
  "libcandle_hpo.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/candle_hpo.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

# Empty dependencies file for candle_hpo.
# This may be replaced when dependencies are built.

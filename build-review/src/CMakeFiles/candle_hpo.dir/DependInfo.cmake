
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/hpo/analysis.cpp" "src/CMakeFiles/candle_hpo.dir/hpo/analysis.cpp.o" "gcc" "src/CMakeFiles/candle_hpo.dir/hpo/analysis.cpp.o.d"
  "/root/repo/src/hpo/objectives.cpp" "src/CMakeFiles/candle_hpo.dir/hpo/objectives.cpp.o" "gcc" "src/CMakeFiles/candle_hpo.dir/hpo/objectives.cpp.o.d"
  "/root/repo/src/hpo/pbt.cpp" "src/CMakeFiles/candle_hpo.dir/hpo/pbt.cpp.o" "gcc" "src/CMakeFiles/candle_hpo.dir/hpo/pbt.cpp.o.d"
  "/root/repo/src/hpo/searchers.cpp" "src/CMakeFiles/candle_hpo.dir/hpo/searchers.cpp.o" "gcc" "src/CMakeFiles/candle_hpo.dir/hpo/searchers.cpp.o.d"
  "/root/repo/src/hpo/space.cpp" "src/CMakeFiles/candle_hpo.dir/hpo/space.cpp.o" "gcc" "src/CMakeFiles/candle_hpo.dir/hpo/space.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build-review/src/CMakeFiles/candle_nn.dir/DependInfo.cmake"
  "/root/repo/build-review/src/CMakeFiles/candle_core.dir/DependInfo.cmake"
  "/root/repo/build-review/src/CMakeFiles/candle_runtime.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")

file(REMOVE_RECURSE
  "libcandle_core.a"
)

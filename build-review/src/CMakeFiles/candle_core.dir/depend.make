# Empty dependencies file for candle_core.
# This may be replaced when dependencies are built.

file(REMOVE_RECURSE
  "CMakeFiles/candle_core.dir/core/formats.cpp.o"
  "CMakeFiles/candle_core.dir/core/formats.cpp.o.d"
  "CMakeFiles/candle_core.dir/core/kernels.cpp.o"
  "CMakeFiles/candle_core.dir/core/kernels.cpp.o.d"
  "CMakeFiles/candle_core.dir/core/tensor.cpp.o"
  "CMakeFiles/candle_core.dir/core/tensor.cpp.o.d"
  "libcandle_core.a"
  "libcandle_core.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/candle_core.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()


# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/core/formats.cpp" "src/CMakeFiles/candle_core.dir/core/formats.cpp.o" "gcc" "src/CMakeFiles/candle_core.dir/core/formats.cpp.o.d"
  "/root/repo/src/core/kernels.cpp" "src/CMakeFiles/candle_core.dir/core/kernels.cpp.o" "gcc" "src/CMakeFiles/candle_core.dir/core/kernels.cpp.o.d"
  "/root/repo/src/core/tensor.cpp" "src/CMakeFiles/candle_core.dir/core/tensor.cpp.o" "gcc" "src/CMakeFiles/candle_core.dir/core/tensor.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build-review/src/CMakeFiles/candle_runtime.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")

file(REMOVE_RECURSE
  "libcandle_sched.a"
)

# Empty dependencies file for candle_sched.
# This may be replaced when dependencies are built.

file(REMOVE_RECURSE
  "CMakeFiles/candle_sched.dir/sched/campaign.cpp.o"
  "CMakeFiles/candle_sched.dir/sched/campaign.cpp.o.d"
  "CMakeFiles/candle_sched.dir/sched/cluster.cpp.o"
  "CMakeFiles/candle_sched.dir/sched/cluster.cpp.o.d"
  "CMakeFiles/candle_sched.dir/sched/traces.cpp.o"
  "CMakeFiles/candle_sched.dir/sched/traces.cpp.o.d"
  "libcandle_sched.a"
  "libcandle_sched.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/candle_sched.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

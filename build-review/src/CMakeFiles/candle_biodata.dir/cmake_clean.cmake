file(REMOVE_RECURSE
  "CMakeFiles/candle_biodata.dir/biodata/pilots.cpp.o"
  "CMakeFiles/candle_biodata.dir/biodata/pilots.cpp.o.d"
  "CMakeFiles/candle_biodata.dir/biodata/staging_io.cpp.o"
  "CMakeFiles/candle_biodata.dir/biodata/staging_io.cpp.o.d"
  "CMakeFiles/candle_biodata.dir/biodata/workloads.cpp.o"
  "CMakeFiles/candle_biodata.dir/biodata/workloads.cpp.o.d"
  "libcandle_biodata.a"
  "libcandle_biodata.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/candle_biodata.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

# Empty dependencies file for candle_biodata.
# This may be replaced when dependencies are built.

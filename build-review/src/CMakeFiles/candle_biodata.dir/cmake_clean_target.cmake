file(REMOVE_RECURSE
  "libcandle_biodata.a"
)

file(REMOVE_RECURSE
  "libcandle_nn.a"
)


# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/nn/dataset.cpp" "src/CMakeFiles/candle_nn.dir/nn/dataset.cpp.o" "gcc" "src/CMakeFiles/candle_nn.dir/nn/dataset.cpp.o.d"
  "/root/repo/src/nn/layer.cpp" "src/CMakeFiles/candle_nn.dir/nn/layer.cpp.o" "gcc" "src/CMakeFiles/candle_nn.dir/nn/layer.cpp.o.d"
  "/root/repo/src/nn/loss.cpp" "src/CMakeFiles/candle_nn.dir/nn/loss.cpp.o" "gcc" "src/CMakeFiles/candle_nn.dir/nn/loss.cpp.o.d"
  "/root/repo/src/nn/metrics.cpp" "src/CMakeFiles/candle_nn.dir/nn/metrics.cpp.o" "gcc" "src/CMakeFiles/candle_nn.dir/nn/metrics.cpp.o.d"
  "/root/repo/src/nn/model.cpp" "src/CMakeFiles/candle_nn.dir/nn/model.cpp.o" "gcc" "src/CMakeFiles/candle_nn.dir/nn/model.cpp.o.d"
  "/root/repo/src/nn/norm.cpp" "src/CMakeFiles/candle_nn.dir/nn/norm.cpp.o" "gcc" "src/CMakeFiles/candle_nn.dir/nn/norm.cpp.o.d"
  "/root/repo/src/nn/optimizer.cpp" "src/CMakeFiles/candle_nn.dir/nn/optimizer.cpp.o" "gcc" "src/CMakeFiles/candle_nn.dir/nn/optimizer.cpp.o.d"
  "/root/repo/src/nn/pruning.cpp" "src/CMakeFiles/candle_nn.dir/nn/pruning.cpp.o" "gcc" "src/CMakeFiles/candle_nn.dir/nn/pruning.cpp.o.d"
  "/root/repo/src/nn/residual.cpp" "src/CMakeFiles/candle_nn.dir/nn/residual.cpp.o" "gcc" "src/CMakeFiles/candle_nn.dir/nn/residual.cpp.o.d"
  "/root/repo/src/nn/schedule.cpp" "src/CMakeFiles/candle_nn.dir/nn/schedule.cpp.o" "gcc" "src/CMakeFiles/candle_nn.dir/nn/schedule.cpp.o.d"
  "/root/repo/src/nn/serialize.cpp" "src/CMakeFiles/candle_nn.dir/nn/serialize.cpp.o" "gcc" "src/CMakeFiles/candle_nn.dir/nn/serialize.cpp.o.d"
  "/root/repo/src/nn/trainer.cpp" "src/CMakeFiles/candle_nn.dir/nn/trainer.cpp.o" "gcc" "src/CMakeFiles/candle_nn.dir/nn/trainer.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build-review/src/CMakeFiles/candle_core.dir/DependInfo.cmake"
  "/root/repo/build-review/src/CMakeFiles/candle_runtime.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")

# Empty dependencies file for candle_nn.
# This may be replaced when dependencies are built.

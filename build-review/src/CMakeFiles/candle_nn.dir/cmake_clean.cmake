file(REMOVE_RECURSE
  "CMakeFiles/candle_nn.dir/nn/dataset.cpp.o"
  "CMakeFiles/candle_nn.dir/nn/dataset.cpp.o.d"
  "CMakeFiles/candle_nn.dir/nn/layer.cpp.o"
  "CMakeFiles/candle_nn.dir/nn/layer.cpp.o.d"
  "CMakeFiles/candle_nn.dir/nn/loss.cpp.o"
  "CMakeFiles/candle_nn.dir/nn/loss.cpp.o.d"
  "CMakeFiles/candle_nn.dir/nn/metrics.cpp.o"
  "CMakeFiles/candle_nn.dir/nn/metrics.cpp.o.d"
  "CMakeFiles/candle_nn.dir/nn/model.cpp.o"
  "CMakeFiles/candle_nn.dir/nn/model.cpp.o.d"
  "CMakeFiles/candle_nn.dir/nn/norm.cpp.o"
  "CMakeFiles/candle_nn.dir/nn/norm.cpp.o.d"
  "CMakeFiles/candle_nn.dir/nn/optimizer.cpp.o"
  "CMakeFiles/candle_nn.dir/nn/optimizer.cpp.o.d"
  "CMakeFiles/candle_nn.dir/nn/pruning.cpp.o"
  "CMakeFiles/candle_nn.dir/nn/pruning.cpp.o.d"
  "CMakeFiles/candle_nn.dir/nn/residual.cpp.o"
  "CMakeFiles/candle_nn.dir/nn/residual.cpp.o.d"
  "CMakeFiles/candle_nn.dir/nn/schedule.cpp.o"
  "CMakeFiles/candle_nn.dir/nn/schedule.cpp.o.d"
  "CMakeFiles/candle_nn.dir/nn/serialize.cpp.o"
  "CMakeFiles/candle_nn.dir/nn/serialize.cpp.o.d"
  "CMakeFiles/candle_nn.dir/nn/trainer.cpp.o"
  "CMakeFiles/candle_nn.dir/nn/trainer.cpp.o.d"
  "libcandle_nn.a"
  "libcandle_nn.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/candle_nn.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

file(REMOVE_RECURSE
  "CMakeFiles/candle_cli.dir/candle_cli.cpp.o"
  "CMakeFiles/candle_cli.dir/candle_cli.cpp.o.d"
  "candle_cli"
  "candle_cli.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/candle_cli.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

# Empty compiler generated dependencies file for candle_cli.
# This may be replaced when dependencies are built.

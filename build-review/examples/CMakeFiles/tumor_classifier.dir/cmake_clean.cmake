file(REMOVE_RECURSE
  "CMakeFiles/tumor_classifier.dir/tumor_classifier.cpp.o"
  "CMakeFiles/tumor_classifier.dir/tumor_classifier.cpp.o.d"
  "tumor_classifier"
  "tumor_classifier.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/tumor_classifier.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

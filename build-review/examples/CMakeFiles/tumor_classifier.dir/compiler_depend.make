# Empty compiler generated dependencies file for tumor_classifier.
# This may be replaced when dependencies are built.

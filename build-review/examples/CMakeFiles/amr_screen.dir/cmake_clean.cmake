file(REMOVE_RECURSE
  "CMakeFiles/amr_screen.dir/amr_screen.cpp.o"
  "CMakeFiles/amr_screen.dir/amr_screen.cpp.o.d"
  "amr_screen"
  "amr_screen.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/amr_screen.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

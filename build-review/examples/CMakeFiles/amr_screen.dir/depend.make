# Empty dependencies file for amr_screen.
# This may be replaced when dependencies are built.

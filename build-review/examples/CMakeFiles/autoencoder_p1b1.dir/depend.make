# Empty dependencies file for autoencoder_p1b1.
# This may be replaced when dependencies are built.

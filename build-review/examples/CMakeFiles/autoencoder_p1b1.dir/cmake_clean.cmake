file(REMOVE_RECURSE
  "CMakeFiles/autoencoder_p1b1.dir/autoencoder_p1b1.cpp.o"
  "CMakeFiles/autoencoder_p1b1.dir/autoencoder_p1b1.cpp.o.d"
  "autoencoder_p1b1"
  "autoencoder_p1b1.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/autoencoder_p1b1.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

# Empty compiler generated dependencies file for md_surrogate.
# This may be replaced when dependencies are built.

file(REMOVE_RECURSE
  "CMakeFiles/md_surrogate.dir/md_surrogate.cpp.o"
  "CMakeFiles/md_surrogate.dir/md_surrogate.cpp.o.d"
  "md_surrogate"
  "md_surrogate.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/md_surrogate.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

# Empty dependencies file for drug_response_hpo.
# This may be replaced when dependencies are built.

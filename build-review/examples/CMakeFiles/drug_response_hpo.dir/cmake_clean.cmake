file(REMOVE_RECURSE
  "CMakeFiles/drug_response_hpo.dir/drug_response_hpo.cpp.o"
  "CMakeFiles/drug_response_hpo.dir/drug_response_hpo.cpp.o.d"
  "drug_response_hpo"
  "drug_response_hpo.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/drug_response_hpo.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

# Empty compiler generated dependencies file for drug_response_hpo.
# This may be replaced when dependencies are built.

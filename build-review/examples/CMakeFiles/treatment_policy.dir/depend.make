# Empty dependencies file for treatment_policy.
# This may be replaced when dependencies are built.

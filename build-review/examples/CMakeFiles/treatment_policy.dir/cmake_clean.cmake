file(REMOVE_RECURSE
  "CMakeFiles/treatment_policy.dir/treatment_policy.cpp.o"
  "CMakeFiles/treatment_policy.dir/treatment_policy.cpp.o.d"
  "treatment_policy"
  "treatment_policy.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/treatment_policy.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

// Tumor-type classification (NT3-style): a 1-D convolutional network over
// expression profiles versus a parameter-matched MLP — demonstrating why
// "dense fully connected networks and convolutional networks" dominate the
// paper's workloads, and why locality-aware models win on profile data.
//
//   $ ./tumor_classifier
#include <cstdio>

#include "biodata/workloads.hpp"
#include "nn/metrics.hpp"
#include "nn/model.hpp"
#include "nn/trainer.hpp"

using namespace candle;

namespace {

double train_and_score(Model& model, const Dataset& train,
                       const Dataset& test, Index epochs) {
  SoftmaxCrossEntropy xent;
  Adam opt(1e-3f);
  FitOptions fo;
  fo.epochs = epochs;
  fo.batch_size = 32;
  fo.seed = 99;
  fit(model, train, nullptr, xent, opt, fo);
  return accuracy(model.predict(test.x), test.y);
}

}  // namespace

int main() {
  biodata::TumorTypeConfig cfg;
  cfg.samples = 1200;
  cfg.classes = 4;
  cfg.profile_length = 256;
  cfg.signal = 1.2f;
  cfg.position_jitter = 24;  // modules shift per sample: locality matters
  cfg.seed = 3;

  // Conv pipeline consumes (1, L) profiles; MLP consumes flat vectors.
  Dataset conv_data = biodata::make_tumor_type(cfg);
  Dataset flat_data = biodata::make_tumor_type_flat(cfg);
  auto [conv_train, conv_test] = split(conv_data, 0.8, 11);
  auto [flat_train, flat_test] = split(flat_data, 0.8, 11);

  // Conv1D model: local gene modules are exactly what convolutions see.
  Model conv;
  conv.add(make_conv1d(16, 9, 2)).add(make_relu()).add(make_maxpool1d(2));
  conv.add(make_conv1d(32, 5, 1)).add(make_relu()).add(make_maxpool1d(2));
  conv.add(make_flatten());
  conv.add(make_dense(64)).add(make_relu()).add(make_dropout(0.2f));
  conv.add(make_dense(cfg.classes));
  conv.build({1, cfg.profile_length}, 21);

  // MLP baseline with a similar parameter budget.
  Model mlp;
  mlp.add(make_dense(96)).add(make_relu()).add(make_dropout(0.2f));
  mlp.add(make_dense(48)).add(make_relu());
  mlp.add(make_dense(cfg.classes));
  mlp.build({cfg.profile_length}, 21);

  std::printf("conv net: %s (%lld params)\n", conv.summary().c_str(),
              static_cast<long long>(conv.num_params()));
  std::printf("mlp     : %s (%lld params)\n", mlp.summary().c_str(),
              static_cast<long long>(mlp.num_params()));

  const double conv_acc = train_and_score(conv, conv_train, conv_test, 15);
  const double mlp_acc = train_and_score(mlp, flat_train, flat_test, 15);

  std::printf("\ntest accuracy (4 classes, chance = 0.25)\n");
  std::printf("  conv1d pipeline : %.3f\n", conv_acc);
  std::printf("  mlp baseline    : %.3f\n", mlp_acc);
  std::printf("  conv advantage  : %+.3f\n", conv_acc - mlp_acc);
  return 0;
}

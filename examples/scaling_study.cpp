// Scaling study: run *real* data-parallel training on virtual nodes
// (gradients genuinely all-reduced), then project the same model to
// leadership scale with the machine model — strong vs weak scaling, the
// paper's claim that "DNNs in general do not have good strong scaling
// behavior".
//
//   $ ./scaling_study
#include <cstdio>

#include "biodata/workloads.hpp"
#include "nn/metrics.hpp"
#include "parallel/data_parallel.hpp"
#include "parallel/workload.hpp"

using namespace candle;

namespace {

Model make_model(Index features) {
  Model m;
  m.add(make_dense(256)).add(make_relu());
  m.add(make_dense(128)).add(make_relu());
  m.add(make_dense(1));
  m.build({features}, 4242);
  return m;
}

}  // namespace

int main() {
  biodata::DrugResponseConfig cfg;
  cfg.samples = 1024;
  cfg.seed = 9;
  Dataset data = biodata::make_drug_response(cfg);

  // --- Part 1: executable data parallelism (virtual nodes = threads).
  std::printf("real data-parallel training (virtual nodes, real ring "
              "all-reduce)\n");
  std::printf("%8s %12s %14s\n", "replicas", "final loss", "modeled comm/step");
  const auto fabric = hpcsim::fat_tree_fabric();
  for (Index replicas : {1, 2, 4, 8}) {
    parallel::DataParallelOptions opts;
    opts.replicas = replicas;
    opts.batch_per_replica = 64 / replicas;  // fixed global batch = 64
    opts.epochs = 5;
    opts.seed = 10;
    parallel::DataParallelResult res = parallel::train_data_parallel(
        [&] { return make_model(cfg.features()); },
        [] { return make_adam(1e-3f); }, data, MeanSquaredError(), opts);
    parallel::annotate_with_fabric(res, fabric, hpcsim::AllReduceAlgo::Ring,
                                   replicas);
    std::printf("%8lld %12.4f %12.2f us\n", static_cast<long long>(replicas),
                static_cast<double>(res.epoch_loss.back()),
                res.modeled_comm_seconds_per_step * 1e6);
  }

  // --- Part 2: projection to leadership scale on the machine model.
  // The in-process model is deliberately tiny (this is a demo); projecting
  // it as-is would be all-communication.  Scale the measured workload up to
  // the size of a real CANDLE network (P1B3-class: ~50M parameters,
  // ~2 GFLOP/sample) while keeping its measured shape ratios.
  Model probe = make_model(cfg.features());
  auto workload = parallel::workload_from_model(probe, "pilot1-mlp");
  const double param_scale = 5e7 / workload.parameters;
  workload.name = "pilot1-candle-scale";
  workload.parameters = 5e7;
  workload.flops_per_sample *= param_scale;
  workload.activation_bytes_per_sample *= param_scale / 100.0;  // act << params for MLPs
  const auto node = hpcsim::summit_node();
  std::printf("\nprojected strong scaling at CANDLE scale "
              "(50M params, global batch 4096, %s + %s)\n",
              node.name.c_str(), topology_name(fabric.topology).c_str());
  std::printf("%8s %12s %12s %12s\n", "nodes", "step(ms)", "efficiency",
              "comm frac");
  const std::vector<hpcsim::Index> counts = {1, 16, 64, 256, 1024, 4096};
  for (const auto& pt :
       hpcsim::strong_scaling(node, fabric, workload, 4096, counts)) {
    std::printf("%8lld %12.3f %12.3f %12.3f\n",
                static_cast<long long>(pt.nodes), pt.step_s * 1e3,
                pt.efficiency, pt.comm_fraction);
  }
  // Weak scaling: the per-node batch is the lever that amortizes the
  // (batch-independent) gradient all-reduce.
  for (const Index per_node_batch : {64, 1024}) {
    std::printf("\nprojected weak scaling (batch %lld per node)\n",
                static_cast<long long>(per_node_batch));
    std::printf("%8s %12s %12s\n", "nodes", "step(ms)", "efficiency");
    for (const auto& pt : hpcsim::weak_scaling(node, fabric, workload,
                                               per_node_batch, counts)) {
      std::printf("%8lld %12.3f %12.3f\n", static_cast<long long>(pt.nodes),
                  pt.step_s * 1e3, pt.efficiency);
    }
  }
  return 0;
}

// Hyperparameter-search campaign on the drug-response workload: random
// search versus the generative-NN-managed search the paper calls out,
// both run asynchronously over simulated cluster slots.
//
//   $ ./drug_response_hpo
//
// Every trial really trains a model (the objective is measured); trial
// durations for the campaign clock come from a simple epoch-cost model so
// the "cluster time" axis is meaningful.
#include <cstdio>

#include "biodata/workloads.hpp"
#include "hpo/objectives.hpp"
#include "hpo/searchers.hpp"
#include "sched/campaign.hpp"

using namespace candle;

int main() {
  // Dataset: a fast-to-train slice of the Pilot1-style generator.
  biodata::DrugResponseConfig cfg;
  cfg.samples = 900;
  cfg.seed = 5;
  Dataset data = biodata::make_drug_response(cfg);
  auto [train, val] = split(data, 0.8, 6);
  Standardizer scaler = Standardizer::fit(train.x);
  scaler.apply(train.x);
  scaler.apply(val.x);

  const hpo::SearchSpace space = hpo::make_mlp_space();
  std::printf("search space: %.0f+ distinct configurations\n",
              space.cardinality(10));

  hpo::TrainObjectiveOptions obj_opts;
  obj_opts.epochs = 6;
  obj_opts.classification = false;  // regression -> MSE objective
  obj_opts.max_train = 384;
  obj_opts.max_val = 192;

  // Trial duration model: epochs x per-epoch cost that grows with width.
  const sched::DurationModel duration = [&](const hpo::UnitConfig& c,
                                            Index epochs) {
    const double width = space.decode_float(c, "units1") +
                         space.decode_float(c, "units2");
    return static_cast<double>(epochs) * (5.0 + width / 16.0);
  };

  sched::CampaignOptions copts;
  copts.slots = 8;        // search parallelism: 8 concurrent trials
  copts.max_trials = 48;
  copts.epochs = obj_opts.epochs;

  std::printf("%-12s %10s %12s %12s\n", "strategy", "trials",
              "best val MSE", "cluster time");
  for (const char* strategy : {"random", "generative", "surrogate"}) {
    auto searcher = hpo::make_searcher(strategy, space, /*seed=*/11,
                                       copts.max_trials);
    hpo::TrainObjective objective(space, train, val, obj_opts);
    const sched::CampaignResult result = sched::run_campaign(
        *searcher, [&](const hpo::UnitConfig& c) { return objective(c); },
        duration, copts);
    std::printf("%-12s %10lld %12.4f %11.0fs\n", strategy,
                static_cast<long long>(result.trials),
                result.best_objective, result.makespan_s);
    std::printf("    best config: %s\n",
                space.describe(result.best_config).c_str());
  }
  return 0;
}

// ML-supervised molecular dynamics (Pilot2-style): train a neural surrogate
// of a rugged potential-energy surface from simulation frames, then use it
// to steer exploration toward low-energy states — the paper's "deep
// learning ... used to supervise large-scale multi-resolution molecular
// dynamics simulations".
//
//   $ ./md_surrogate
#include <algorithm>
#include <cstdio>
#include <vector>

#include "biodata/pilots.hpp"
#include "nn/metrics.hpp"
#include "nn/model.hpp"
#include "nn/trainer.hpp"

using namespace candle;

namespace {

// One steering trial from `start`: at each step propose `kCandidates`
// perturbations; with a scorer, move to the candidate the surrogate likes
// best (if it improves on the current prediction); without one, move to a
// random candidate (the unguided baseline).  Returns the best TRUE energy
// visited — the quantity the real MD campaign cares about.
constexpr int kCandidates = 8;

double steer(const biodata::MdConfig& cfg, std::vector<float> x,
             const std::function<double(std::span<const float>)>* scorer,
             Index steps, Pcg32& rng) {
  double best_true = biodata::md_potential(cfg, x);
  std::vector<float> cand(x.size());
  std::vector<float> best_cand(x.size());
  for (Index s = 0; s < steps; ++s) {
    if (scorer == nullptr) {
      for (std::size_t k = 0; k < x.size(); ++k) {
        x[k] += 0.4f * static_cast<float>(rng.normal());
      }
      best_true = std::min(best_true, biodata::md_potential(cfg, x));
      continue;
    }
    double best_score = (*scorer)(x);
    bool moved = false;
    for (int c = 0; c < kCandidates; ++c) {
      for (std::size_t k = 0; k < x.size(); ++k) {
        cand[k] = x[k] + 0.4f * static_cast<float>(rng.normal());
      }
      const double score = (*scorer)(cand);
      if (score < best_score) {
        best_score = score;
        best_cand = cand;
        moved = true;
      }
    }
    if (moved) {
      x = best_cand;
      best_true = std::min(best_true, biodata::md_potential(cfg, x));
    }
  }
  return best_true;
}

}  // namespace

int main() {
  biodata::MdConfig cfg;
  cfg.samples = 3000;
  cfg.dims = 6;
  cfg.seed = 99;

  // 1. Collect "simulation frames" and train the surrogate.
  Dataset frames = biodata::make_md_frames(cfg);
  auto [train, test] = split(frames, 0.85, 1);
  Model surrogate;
  surrogate.add(make_dense(96)).add(make_tanh());
  surrogate.add(make_dense(48)).add(make_tanh());
  surrogate.add(make_dense(1));
  surrogate.build({cfg.dims}, 2);
  MeanSquaredError mse;
  Adam opt(2e-3f);
  FitOptions fo;
  fo.epochs = 40;
  fo.batch_size = 64;
  fo.seed = 3;
  fit(surrogate, train, &test, mse, opt, fo);
  std::printf("surrogate: test R^2 %.3f over %lld frames\n",
              r2_score(surrogate.predict(test.x), test.y),
              static_cast<long long>(test.size()));

  // 2. Steering comparison: surrogate-guided vs unguided random walks.
  const std::function<double(std::span<const float>)> surrogate_score =
      [&](std::span<const float> x) {
        Tensor t({1, cfg.dims});
        std::copy(x.begin(), x.end(), t.data());
        return static_cast<double>(surrogate.forward(t)[0]);
      };

  const double e_global =
      biodata::md_potential(cfg, biodata::md_global_minimum(cfg));
  Pcg32 rng(7);
  double guided = 0.0, unguided = 0.0;
  const int trials = 12;
  const Index steps = 400;
  for (int t = 0; t < trials; ++t) {
    // Start from an existing simulation frame — exactly how the ML
    // supervisor would pick restart points in a real campaign.
    const Index row = static_cast<Index>(
        rng.next_below(static_cast<std::uint32_t>(train.size())));
    std::vector<float> start(static_cast<std::size_t>(cfg.dims));
    for (Index k = 0; k < cfg.dims; ++k) {
      start[static_cast<std::size_t>(k)] = train.x.at(row, k);
    }
    Pcg32 r1 = rng.split(2 * t);
    Pcg32 r2 = rng.split(2 * t + 1);
    guided += steer(cfg, start, &surrogate_score, steps, r1);
    unguided += steer(cfg, start, nullptr, steps, r2);
  }
  guided /= trials;
  unguided /= trials;

  std::printf("\nlow-energy search from simulation-frame starts "
              "(%d trials x %lld steps)\n",
              trials, static_cast<long long>(steps));
  std::printf("  global minimum energy   : %.3f\n", e_global);
  std::printf("  surrogate-guided search : %.3f (mean best energy)\n",
              guided);
  std::printf("  unguided random walk    : %.3f\n", unguided);
  std::printf("  surrogate advantage     : %.3f\n", unguided - guided);
  return 0;
}

// Antimicrobial-resistance screening: train a classifier on k-mer presence
// profiles, report AUC, and audit which k-mers the model relies on —
// recovering the planted resistance mechanisms ("to identify novel
// antibiotic resistance mechanisms that might be present").
//
//   $ ./amr_screen
#include <algorithm>
#include <cstdio>
#include <numeric>
#include <vector>

#include "biodata/workloads.hpp"
#include "nn/metrics.hpp"
#include "nn/model.hpp"
#include "nn/trainer.hpp"

using namespace candle;

int main() {
  biodata::AmrConfig cfg;
  cfg.samples = 3000;
  cfg.seed = 77;
  Dataset data = biodata::make_amr(cfg);
  auto [train, test] = split(data, 0.8, 78);

  Model model;
  model.add(make_dense(64)).add(make_relu());
  model.add(make_dense(32)).add(make_relu());
  model.add(make_dense(1));
  model.build({cfg.kmers}, 79);

  BinaryCrossEntropy bce;
  Adam opt(3e-3f);
  FitOptions fo;
  fo.epochs = 25;
  fo.batch_size = 64;
  fo.seed = 80;
  const FitHistory h = fit(model, train, &test, bce, opt, fo);

  const Tensor scores = model.predict(test.x);
  std::printf("AMR resistance screen\n");
  std::printf("  test AUC        : %.3f\n", roc_auc(scores, test.y));
  std::printf("  test loss (BCE) : %.4f\n",
              static_cast<double>(h.final_val_loss()));

  // Mechanism discovery: occlusion importance — zero one k-mer column at a
  // time and measure the drop in mean predicted resistance score.
  const Index probe_n = std::min<Index>(512, test.size());
  Dataset probe = slice(test, 0, probe_n);
  const double base_mean =
      static_cast<double>(model.predict(probe.x).mean());
  std::vector<std::pair<double, Index>> importance;
  for (Index k = 0; k < cfg.kmers; ++k) {
    Tensor occluded = probe.x;
    for (Index i = 0; i < probe_n; ++i) occluded.at(i, k) = 0.0f;
    const double drop =
        base_mean - static_cast<double>(model.predict(occluded).mean());
    importance.emplace_back(drop, k);
  }
  std::sort(importance.rbegin(), importance.rend());

  const Index mech_cols = cfg.mechanisms * cfg.kmers_per_mechanism;
  std::printf("\n  top-%lld k-mers by occlusion importance "
              "(planted mechanisms occupy columns 0..%lld):\n",
              static_cast<long long>(mech_cols),
              static_cast<long long>(mech_cols - 1));
  Index recovered = 0;
  for (Index r = 0; r < mech_cols; ++r) {
    const auto [drop, k] = importance[static_cast<std::size_t>(r)];
    const bool planted = k < mech_cols;
    recovered += planted;
    std::printf("    k-mer %3lld  importance %+.4f  %s\n",
                static_cast<long long>(k), drop,
                planted ? "<- planted mechanism k-mer" : "");
  }
  std::printf("  recovered %lld/%lld mechanism k-mers in the top set\n",
              static_cast<long long>(recovered),
              static_cast<long long>(mech_cols));
  return 0;
}

// Quickstart: train a drug-response regression model (Pilot1-style) with
// the candle-hpc public API, evaluate it, and retrain at reduced precision.
//
//   $ ./quickstart
//
// Walks through the core workflow: generate a workload, split/standardize,
// define a model, fit, evaluate, then repeat under a bf16 mixed-precision
// policy to see the paper's central claim on your own machine.
#include <cstdio>

#include "biodata/workloads.hpp"
#include "nn/metrics.hpp"
#include "nn/model.hpp"
#include "nn/trainer.hpp"

using namespace candle;

int main() {
  // 1. A synthetic drug-response dataset: gene expression + drug
  //    descriptors -> response (see biodata/workloads.hpp for the planted
  //    generative model).
  biodata::DrugResponseConfig cfg;
  cfg.samples = 2000;
  cfg.seed = 2017;
  Dataset data = biodata::make_drug_response(cfg);
  auto [train, test] = split(data, 0.8, /*seed=*/1);

  // 2. Standardize features with training-set statistics.
  Standardizer scaler = Standardizer::fit(train.x);
  scaler.apply(train.x);
  scaler.apply(test.x);

  // 3. A small MLP regressor.
  Model model;
  model.add(make_dense(64)).add(make_relu());
  model.add(make_dense(32)).add(make_relu());
  model.add(make_dense(1));
  model.build({cfg.features()}, /*seed=*/42);
  std::printf("model: %s  (%lld parameters)\n", model.summary().c_str(),
              static_cast<long long>(model.num_params()));

  // 4. Train.
  MeanSquaredError mse;
  Adam opt(1e-3f);
  FitOptions fit_opts;
  fit_opts.epochs = 25;
  fit_opts.batch_size = 64;
  fit_opts.seed = 7;
  const FitHistory history = fit(model, train, &test, mse, opt, fit_opts);

  // 5. Evaluate.
  const Tensor pred = model.predict(test.x);
  std::printf("fp32:  train loss %.4f | test loss %.4f | R^2 %.3f | "
              "%.0f samples/s\n",
              static_cast<double>(history.final_train_loss()),
              static_cast<double>(history.final_val_loss()),
              r2_score(pred, test.y), history.samples_per_second);

  // 6. Same model family trained under a bf16 mixed-precision policy —
  //    the paper's claim C1 ("rarely require 64-bit or even 32-bit").
  Model model16;
  model16.add(make_dense(64)).add(make_relu());
  model16.add(make_dense(32)).add(make_relu());
  model16.add(make_dense(1));
  model16.build({cfg.features()}, /*seed=*/42);
  Adam opt16(1e-3f);
  fit_opts.precision = PrecisionPolicy::standard(Precision::BF16);
  const FitHistory h16 = fit(model16, train, &test, mse, opt16, fit_opts);
  std::printf("bf16:  train loss %.4f | test loss %.4f | R^2 %.3f\n",
              static_cast<double>(h16.final_train_loss()),
              static_cast<double>(h16.final_val_loss()),
              r2_score(model16.predict(test.x), test.y));
  std::printf("reduced-precision accuracy gap: %.4f (should be small)\n",
              static_cast<double>(h16.final_val_loss() -
                                  history.final_val_loss()));
  return 0;
}

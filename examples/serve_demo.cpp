// Serving quickstart: train a small classifier, then stand it up behind the
// dynamic-batching engine and drive it with seeded open-loop traffic —
// steady load first, then a flood that the admission controller sheds
// instead of queueing into unbounded latency.
//
//   $ ./serve_demo
#include <chrono>
#include <cstdio>
#include <future>
#include <thread>
#include <vector>

#include "nn/model.hpp"
#include "nn/trainer.hpp"
#include "runtime/rng.hpp"
#include "serve/engine.hpp"

using namespace candle;

namespace {

Dataset blobs(Index n, Index features, std::uint64_t seed) {
  Pcg32 rng(seed);
  Dataset d{Tensor({n, features}), Tensor({n})};
  for (Index i = 0; i < n; ++i) {
    const float cls = static_cast<float>(i % 2);
    d.y[i] = cls;
    for (Index j = 0; j < features; ++j) {
      d.x.at(i, j) = static_cast<float>(rng.normal(cls * 2.0 - 1.0, 0.8));
    }
  }
  return d;
}

void report(const char* label, const serve::EngineStats& s) {
  std::printf("%s\n", label);
  std::printf("  submitted %llu | completed %llu | shed %llu "
              "(queue %llu, deadline %llu, shutdown %llu)\n",
              static_cast<unsigned long long>(s.submitted),
              static_cast<unsigned long long>(s.completed),
              static_cast<unsigned long long>(s.shed_total()),
              static_cast<unsigned long long>(s.shed_queue_full),
              static_cast<unsigned long long>(s.shed_deadline),
              static_cast<unsigned long long>(s.shed_shutdown));
  std::printf("  latency p50 %.2f ms | p95 %.2f ms | p99 %.2f ms | "
              "mean batch %.1f rows\n",
              s.latency.quantile(0.50) * 1e3, s.latency.quantile(0.95) * 1e3,
              s.latency.quantile(0.99) * 1e3, s.mean_batch_rows());
}

}  // namespace

int main() {
  const Index features = 16;
  Dataset train = blobs(2000, features, 1);

  Model model;
  model.add(make_dense(32)).add(make_relu()).add(make_dense(1));
  model.build({features}, 2);

  BinaryCrossEntropy bce;
  Adam opt(3e-3f);
  FitOptions fo;
  fo.epochs = 5;
  fo.batch_size = 64;
  fo.seed = 3;
  fit(model, train, nullptr, bce, opt, fo);
  std::printf("trained: %s\n\n", model.summary().c_str());

  // Stand the trained model up: 2 workers pull coalesced batches and run
  // the const inference path against the single shared copy of the weights.
  serve::EngineOptions eopt;
  eopt.workers = 2;
  eopt.batch.max_batch = 16;
  eopt.batch.max_wait_s = 1e-3;
  eopt.batch.queue_capacity = 64;
  serve::Engine engine(model, eopt);

  // Steady phase: a seeded Poisson arrival trace replayed open-loop at a
  // rate the two workers absorb comfortably; every request carries a 20 ms
  // latency budget.
  Dataset fresh = blobs(1000, features, 9);
  const Index rows = fresh.x.dim(0);
  const serve::ArrivalTrace trace = serve::poisson_trace(4000.0, 0.25, 11);
  std::vector<std::future<serve::Response>> futures;
  const auto start = std::chrono::steady_clock::now();
  for (std::size_t i = 0; i < trace.at_s.size(); ++i) {
    const auto due =
        start + std::chrono::duration_cast<std::chrono::steady_clock::duration>(
                    std::chrono::duration<double>(trace.at_s[i]));
    if (due > std::chrono::steady_clock::now()) {
      std::this_thread::sleep_until(due);
    }
    const Index row = static_cast<Index>(i) % rows;
    serve::Request req;
    req.id = static_cast<std::uint64_t>(row);
    req.input.assign(fresh.x.data() + row * features,
                     fresh.x.data() + (row + 1) * features);
    req.deadline_s = 20e-3;
    futures.push_back(engine.submit(std::move(req)));
  }
  Index agree = 0;
  std::uint64_t served = 0;
  for (auto& f : futures) {
    const serve::Response r = f.get();
    if (r.outcome != serve::Outcome::Completed) continue;
    ++served;
    const Index row = static_cast<Index>(r.id);
    const bool predicted_pos = r.output[0] > 0.0f;
    if (predicted_pos == (fresh.y[row] > 0.5f)) ++agree;
  }
  report("steady load (Poisson @ 4000 req/s, 20 ms SLO):", engine.stats());
  std::printf("  label agreement on served requests: %.1f%%\n\n",
              served > 0 ? 100.0 * static_cast<double>(agree) /
                               static_cast<double>(served)
                         : 0.0);

  // Flood phase: 10000 back-to-back submissions.  The bounded queue sheds
  // the excess on arrival — clients get an immediate rejection they can
  // retry elsewhere, and the latency of what IS served stays bounded.
  const serve::EngineStats before = engine.stats();
  std::vector<std::future<serve::Response>> flood;
  flood.reserve(10000);
  for (int i = 0; i < 10000; ++i) {
    const Index row = static_cast<Index>(i) % rows;
    serve::Request req;
    req.id = static_cast<std::uint64_t>(row);
    req.input.assign(fresh.x.data() + row * features,
                     fresh.x.data() + (row + 1) * features);
    req.deadline_s = 5e-3;
    flood.push_back(engine.submit(std::move(req)));
  }
  for (auto& f : flood) f.get();
  const serve::EngineStats after = engine.stats();
  std::printf("flood (10000 back-to-back, 5 ms SLO): served %llu, shed %llu\n\n",
              static_cast<unsigned long long>(after.completed -
                                              before.completed),
              static_cast<unsigned long long>(after.shed_total() -
                                              before.shed_total()));

  engine.drain();
  const serve::EngineStats s = engine.stats();
  std::printf("after drain: every request accounted for exactly once: %s\n",
              s.submitted == s.completed + s.shed_total() ? "yes" : "NO");
  return 0;
}

// Medical-records treatment policy: learn an outcome model from synthetic
// observational records and derive a per-patient treatment policy — the
// paper's "interpret millions of medical records to identify optimal
// treatment strategies", at demonstration scale.
//
//   $ ./treatment_policy
#include <cstdio>

#include "biodata/pilots.hpp"
#include "nn/metrics.hpp"
#include "nn/model.hpp"
#include "nn/trainer.hpp"

using namespace candle;

int main() {
  biodata::TreatmentConfig cfg;
  cfg.samples = 8000;
  cfg.seed = 2025;
  Dataset records = biodata::make_treatment_outcome(cfg);
  auto [train, test] = split(records, 0.85, 1);

  // Outcome model: P(adverse outcome | covariates, treatment).
  Model model;
  model.add(make_dense(48)).add(make_relu()).add(make_dropout(0.1f));
  model.add(make_dense(24)).add(make_relu());
  model.add(make_dense(1));
  model.build({cfg.covariates + 1}, 2);

  BinaryCrossEntropy bce;
  Adam opt(2e-3f);
  opt.set_weight_decay(1e-4f);
  FitOptions fo;
  fo.epochs = 40;
  fo.batch_size = 64;
  fo.seed = 3;
  fo.early_stop_patience = 5;
  const FitHistory h = fit(model, train, &test, bce, opt, fo);
  std::printf("outcome model: %lld records, stopped after %zu epochs, "
              "test AUC %.3f\n",
              static_cast<long long>(train.size()), h.train_loss.size(),
              roc_auc(model.predict(test.x), test.y));

  // Policy: treat exactly the patients the model predicts benefit.
  const auto learned_policy = [&](std::span<const float> cov) {
    Tensor x({1, cfg.covariates + 1});
    for (Index j = 0; j < cfg.covariates; ++j) {
      x.at(0, j) = cov[static_cast<std::size_t>(j)];
    }
    x.at(0, cfg.covariates) = 0.0f;
    const float untreated = model.forward(x)[0];
    x.at(0, cfg.covariates) = 1.0f;
    const float treated = model.forward(x)[0];
    return treated < untreated;
  };

  const Index n_eval = 2000;
  const double v_learned = policy_value(cfg, learned_policy, n_eval, 7);
  const double v_all = policy_value(
      cfg, [](std::span<const float>) { return true; }, n_eval, 7);
  const double v_none = policy_value(
      cfg, [](std::span<const float>) { return false; }, n_eval, 7);
  // Oracle: the generative model's own best per-patient choice.
  const double v_oracle = policy_value(
      cfg,
      [&](std::span<const float> cov) {
        return biodata::treatment_outcome_probability(cfg, cov, true) <
               biodata::treatment_outcome_probability(cfg, cov, false);
      },
      n_eval, 7);

  std::printf("\nexpected adverse-outcome rate by policy "
              "(%lld simulated patients)\n",
              static_cast<long long>(n_eval));
  std::printf("  treat everyone : %.4f\n", v_all);
  std::printf("  treat no one   : %.4f\n", v_none);
  std::printf("  learned policy : %.4f\n", v_learned);
  std::printf("  oracle policy  : %.4f\n", v_oracle);
  std::printf("\nlearned policy recovers %.0f%% of the oracle's improvement "
              "over the better blanket policy\n",
              100.0 * (std::min(v_all, v_none) - v_learned) /
                  (std::min(v_all, v_none) - v_oracle));
  return 0;
}

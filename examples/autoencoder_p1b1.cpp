// P1B1-style gene-expression autoencoder: compress expression profiles
// through a bottleneck and find the intrinsic dimensionality — the CANDLE
// Pilot1 benchmark 1 workflow on the synthetic generator.
//
//   $ ./autoencoder_p1b1
#include <cstdio>

#include "biodata/pilots.hpp"
#include "nn/model.hpp"
#include "nn/trainer.hpp"

using namespace candle;

namespace {

float train_autoencoder(const Dataset& train, const Dataset& test,
                        Index genes, Index bottleneck) {
  Model m;
  m.add(make_dense(48)).add(make_tanh());
  m.add(make_dense(bottleneck)).add(make_tanh());  // the bottleneck
  m.add(make_dense(48)).add(make_tanh());
  m.add(make_dense(genes));
  m.build({genes}, 7);
  MeanSquaredError mse;
  Adam opt(2e-3f);
  FitOptions fo;
  fo.epochs = 30;
  fo.batch_size = 32;
  fo.seed = 8;
  fit(m, train, nullptr, mse, opt, fo);
  return m.evaluate(test.x, test.y, mse);
}

}  // namespace

int main() {
  biodata::AutoencoderConfig cfg;
  cfg.samples = 1600;
  cfg.genes = 96;
  cfg.pathways = 6;  // the planted intrinsic dimensionality
  cfg.seed = 2024;
  Dataset data = biodata::make_expression_autoencoder(cfg);
  auto [train, test] = split(data, 0.8, 1);

  std::printf("gene-expression autoencoder: %lld genes, true latent "
              "dimensionality %lld, noise floor (var) %.4f\n\n",
              static_cast<long long>(cfg.genes),
              static_cast<long long>(cfg.pathways),
              static_cast<double>(cfg.noise * cfg.noise));
  std::printf("%12s %20s\n", "bottleneck", "test reconstruction MSE");
  for (Index bottleneck : {1, 2, 4, 6, 8, 12}) {
    const float mse = train_autoencoder(train, test, cfg.genes, bottleneck);
    std::printf("%12lld %20.4f%s\n", static_cast<long long>(bottleneck),
                static_cast<double>(mse),
                bottleneck == cfg.pathways ? "   <- true latent dim" : "");
  }
  std::printf("\nexpected shape: reconstruction error drops steeply until "
              "the bottleneck reaches the planted pathway count, then "
              "flattens at the noise floor — the autoencoder has found the "
              "data's intrinsic dimensionality\n");
  return 0;
}

// candle_cli — command-line front end for the library's main workflows.
//
//   candle_cli train --workload drug|tumor|amr|screen [--precision fp32|bf16|fp16|int8]
//                    [--epochs N] [--batch N] [--lr F] [--seed N]
//   candle_cli hpo   --strategy random|lhs|evolution|surrogate|generative
//                    [--trials N] [--slots N] [--seed N]
//   candle_cli scale [--nodes N] [--batch N] [--node titan|summit|future]
//                    [--fabric fat-tree|torus|dragonfly]
//   candle_cli calibrate
//
// Exit code 0 on success; errors print to stderr with a non-zero exit.
#include <cstdio>
#include <cstring>
#include <map>
#include <string>

#include "biodata/workloads.hpp"
#include "hpcsim/calibrate.hpp"
#include "hpcsim/perfmodel.hpp"
#include "hpo/analysis.hpp"
#include "hpo/objectives.hpp"
#include "hpo/searchers.hpp"
#include "nn/metrics.hpp"
#include "nn/model.hpp"
#include "nn/trainer.hpp"
#include "sched/campaign.hpp"

using namespace candle;

namespace {

using Flags = std::map<std::string, std::string>;

Flags parse_flags(int argc, char** argv, int first) {
  Flags flags;
  for (int i = first; i < argc; ++i) {
    std::string key = argv[i];
    if (key.rfind("--", 0) != 0) {
      throw Error("expected --flag, got '" + key + "'");
    }
    key = key.substr(2);
    if (i + 1 >= argc) throw Error("flag --" + key + " needs a value");
    flags[key] = argv[++i];
  }
  return flags;
}

std::string flag(const Flags& flags, const std::string& key,
                 const std::string& fallback) {
  const auto it = flags.find(key);
  return it == flags.end() ? fallback : it->second;
}

Precision parse_precision(const std::string& name) {
  for (Precision p : all_precisions()) {
    if (precision_name(p) == name) return p;
  }
  throw Error("unknown precision: " + name);
}

struct TrainSetup {
  Dataset data;
  Model model;
  std::unique_ptr<Loss> loss;
  std::string metric_name;
  std::function<double(Model&, const Dataset&)> metric;
};

TrainSetup make_setup(const std::string& workload, std::uint64_t seed) {
  TrainSetup s;
  if (workload == "drug") {
    biodata::DrugResponseConfig cfg;
    cfg.samples = 2000;
    cfg.seed = seed;
    s.data = biodata::make_drug_response(cfg);
    s.model.add(make_dense(64)).add(make_relu()).add(make_dense(1));
    s.loss = make_mse();
    s.metric_name = "R^2";
    s.metric = [](Model& m, const Dataset& d) {
      return r2_score(m.predict(d.x), d.y);
    };
  } else if (workload == "tumor") {
    biodata::TumorTypeConfig cfg;
    cfg.samples = 1200;
    cfg.seed = seed;
    s.data = biodata::make_tumor_type(cfg);
    s.model.add(make_conv1d(8, 7, 2)).add(make_relu()).add(make_maxpool1d(2));
    s.model.add(make_flatten()).add(make_dense(32)).add(make_relu());
    s.model.add(make_dense(cfg.classes));
    s.loss = make_softmax_cross_entropy();
    s.metric_name = "accuracy";
    s.metric = [](Model& m, const Dataset& d) {
      return accuracy(m.predict(d.x), d.y);
    };
  } else if (workload == "amr") {
    biodata::AmrConfig cfg;
    cfg.samples = 2000;
    cfg.seed = seed;
    s.data = biodata::make_amr(cfg);
    s.model.add(make_dense(64)).add(make_relu()).add(make_dense(1));
    s.loss = make_binary_cross_entropy();
    s.metric_name = "AUC";
    s.metric = [](Model& m, const Dataset& d) {
      return roc_auc(m.predict(d.x), d.y);
    };
  } else if (workload == "screen") {
    biodata::CompoundScreenConfig cfg;
    cfg.samples = 3000;
    cfg.seed = seed;
    s.data = biodata::make_compound_screen(cfg);
    s.model.add(make_dense(32)).add(make_relu()).add(make_dense(1));
    s.loss = make_binary_cross_entropy();
    s.metric_name = "AUC";
    s.metric = [](Model& m, const Dataset& d) {
      return roc_auc(m.predict(d.x), d.y);
    };
  } else {
    throw Error("unknown workload: " + workload +
                " (expected drug|tumor|amr|screen)");
  }
  return s;
}

int cmd_train(const Flags& flags) {
  const auto seed =
      static_cast<std::uint64_t>(std::stoull(flag(flags, "seed", "1")));
  TrainSetup s = make_setup(flag(flags, "workload", "drug"), seed);
  auto [train, test] = split(s.data, 0.8, seed ^ 1);
  s.model.build(train.sample_shape(), seed ^ 2);

  Adam opt(std::stof(flag(flags, "lr", "0.001")));
  FitOptions fo;
  fo.epochs = std::stoll(flag(flags, "epochs", "15"));
  fo.batch_size = std::stoll(flag(flags, "batch", "64"));
  fo.seed = seed ^ 3;
  fo.precision =
      PrecisionPolicy::standard(parse_precision(flag(flags, "precision",
                                                     "fp32")));
  const FitHistory h = fit(s.model, train, &test, *s.loss, opt, fo);
  std::printf("%s: train loss %.4f | test loss %.4f | %s %.3f | "
              "%.0f samples/s\n",
              s.model.summary().c_str(),
              static_cast<double>(h.final_train_loss()),
              static_cast<double>(h.final_val_loss()),
              s.metric_name.c_str(), s.metric(s.model, test),
              h.samples_per_second);
  return 0;
}

int cmd_hpo(const Flags& flags) {
  const auto seed =
      static_cast<std::uint64_t>(std::stoull(flag(flags, "seed", "1")));
  const Index trials = std::stoll(flag(flags, "trials", "32"));
  const std::string strategy = flag(flags, "strategy", "generative");

  biodata::DrugResponseConfig cfg;
  cfg.samples = 900;
  cfg.seed = seed;
  Dataset data = biodata::make_drug_response(cfg);
  auto [train, val] = split(data, 0.8, seed ^ 1);
  Standardizer scaler = Standardizer::fit(train.x);
  scaler.apply(train.x);
  scaler.apply(val.x);

  const hpo::SearchSpace space = hpo::make_mlp_space();
  hpo::TrainObjectiveOptions topts;
  topts.epochs = 6;
  topts.classification = false;
  hpo::TrainObjective objective(space, train, val, topts);
  auto searcher = hpo::make_searcher(strategy, space, seed ^ 2, trials);

  sched::CampaignOptions copts;
  copts.slots = std::stoll(flag(flags, "slots", "8"));
  copts.max_trials = trials;
  const sched::CampaignResult result = sched::run_campaign(
      *searcher, [&](const hpo::UnitConfig& c) { return objective(c); },
      [](const hpo::UnitConfig&, Index epochs) {
        return 10.0 * static_cast<double>(epochs);
      },
      copts);
  std::printf("%s: %lld trials, best val MSE %.4f at %s\n", strategy.c_str(),
              static_cast<long long>(result.trials), result.best_objective,
              space.describe(result.best_config).c_str());
  const auto importance =
      hpo::parameter_importance(space, searcher->history());
  std::printf("parameter importance: %s\n",
              hpo::importance_report(importance).c_str());
  return 0;
}

int cmd_scale(const Flags& flags) {
  const std::string node_name = flag(flags, "node", "summit");
  hpcsim::NodeSpec node;
  if (node_name == "titan") {
    node = hpcsim::titan_node();
  } else if (node_name == "summit") {
    node = hpcsim::summit_node();
  } else if (node_name == "future") {
    node = hpcsim::future_node();
  } else {
    throw Error("unknown node preset: " + node_name);
  }
  const std::string fabric_name = flag(flags, "fabric", "fat-tree");
  hpcsim::Fabric fabric;
  if (fabric_name == "fat-tree") {
    fabric = hpcsim::fat_tree_fabric();
  } else if (fabric_name == "torus") {
    fabric = hpcsim::torus_fabric();
  } else if (fabric_name == "dragonfly") {
    fabric = hpcsim::dragonfly_fabric();
  } else {
    throw Error("unknown fabric preset: " + fabric_name);
  }

  hpcsim::TrainingWorkload w;
  w.name = "candle-scale";
  w.flops_per_sample = 2e9;
  w.parameters = 5e7;
  w.bytes_per_sample = 6e4;
  w.activation_bytes_per_sample = 4e5;
  const Index max_nodes = std::stoll(flag(flags, "nodes", "4096"));
  const Index batch = std::stoll(flag(flags, "batch", "4096"));
  std::vector<hpcsim::Index> counts;
  for (Index n = 1; n <= max_nodes; n *= 4) counts.push_back(n);

  std::printf("strong scaling of %s on %s + %s (global batch %lld)\n",
              w.name.c_str(), node.name.c_str(), fabric_name.c_str(),
              static_cast<long long>(batch));
  std::printf("%8s %12s %12s %14s\n", "nodes", "step(ms)", "efficiency",
              "comm fraction");
  for (const auto& pt :
       hpcsim::strong_scaling(node, fabric, w, batch, counts)) {
    std::printf("%8lld %12.2f %12.3f %14.3f\n",
                static_cast<long long>(pt.nodes), pt.step_s * 1e3,
                pt.efficiency, pt.comm_fraction);
  }
  const auto best = hpcsim::best_hybrid_plan(node, fabric, w, max_nodes, batch);
  std::printf("best hybrid plan at %lld nodes: data=%lld x model=%lld\n",
              static_cast<long long>(max_nodes),
              static_cast<long long>(best.data_replicas),
              static_cast<long long>(best.model_shards));
  return 0;
}

int cmd_calibrate(const Flags&) {
  const auto cal = hpcsim::calibrate_host();
  std::printf("host calibration (%.2f s):\n", cal.seconds_spent);
  std::printf("  GEMM   %.2f GFLOP/s\n", cal.gemm_gflops);
  std::printf("  GEMV   %.2f GFLOP/s\n", cal.gemv_gflops);
  std::printf("  stream %.2f GB/s\n", cal.stream_gbs);
  const auto node = hpcsim::calibrated_host_node(cal);
  std::printf("  fp32 ridge intensity: %.1f flops/byte\n",
              hpcsim::ridge_intensity(node, Precision::FP32));
  return 0;
}

int usage() {
  std::fprintf(stderr,
               "usage: candle_cli <train|hpo|scale|calibrate> [--flag value]...\n");
  return 2;
}

}  // namespace

int main(int argc, char** argv) {
  if (argc < 2) return usage();
  try {
    const Flags flags = parse_flags(argc, argv, 2);
    const std::string cmd = argv[1];
    if (cmd == "train") return cmd_train(flags);
    if (cmd == "hpo") return cmd_hpo(flags);
    if (cmd == "scale") return cmd_scale(flags);
    if (cmd == "calibrate") return cmd_calibrate(flags);
    return usage();
  } catch (const std::exception& e) {
    std::fprintf(stderr, "error: %s\n", e.what());
    return 1;
  }
}

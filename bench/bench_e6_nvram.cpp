// Experiment E6 — claim C7: "require large quantities of training data to
// be made available or generated at each node, thus providing
// opportunities for NVRAM".
//
// Tables: per-epoch and campaign ingest time for PFS-every-epoch vs
// NVRAM-cached vs generate-on-node across dataset sizes, node counts and
// epoch counts; the crossover where NVRAM wins; and ingest energy.  Also a
// MEASURED generate-on-node rate from the biodata generators.
#include <benchmark/benchmark.h>

#include <cstdio>

#include <filesystem>

#include "biodata/staging_io.hpp"
#include "biodata/workloads.hpp"
#include "hpcsim/staging.hpp"
#include "runtime/timer.hpp"

namespace {

using namespace candle;
using hpcsim::StagingConfig;
using hpcsim::StagingStrategy;

void print_tables() {
  std::printf("=== E6: NVRAM data staging (claim C7) ===\n\n");

  StagingConfig base;
  base.dataset_gb = 512.0;
  base.nodes = 128;
  base.epochs = 10;

  std::printf("(a) per-epoch ingest (512 GB over 128 nodes)\n");
  std::printf("%-18s %14s %14s\n", "strategy", "epoch 0 (s)", "epoch 1+ (s)");
  for (StagingStrategy s :
       {StagingStrategy::PfsEveryEpoch, StagingStrategy::NvramCached,
        StagingStrategy::GenerateOnNode}) {
    std::printf("%-18s %14.1f %14.1f\n",
                hpcsim::staging_strategy_name(s).c_str(),
                hpcsim::epoch_ingest_time_s(s, base, 0),
                hpcsim::epoch_ingest_time_s(s, base, 1));
  }

  std::printf("\n(b) campaign ingest time (s) vs epochs\n");
  std::printf("%8s %16s %16s %18s %12s\n", "epochs", "pfs", "nvram",
              "generate", "winner");
  for (hpcsim::Index epochs : {1, 2, 5, 10, 50, 200}) {
    StagingConfig cfg = base;
    cfg.epochs = epochs;
    const double pfs =
        hpcsim::campaign_ingest_time_s(StagingStrategy::PfsEveryEpoch, cfg);
    const double nvram =
        hpcsim::campaign_ingest_time_s(StagingStrategy::NvramCached, cfg);
    const double gen =
        hpcsim::campaign_ingest_time_s(StagingStrategy::GenerateOnNode, cfg);
    std::printf("%8lld %16.1f %16.1f %18.1f %12s\n",
                static_cast<long long>(epochs), pfs, nvram, gen,
                hpcsim::staging_strategy_name(
                    hpcsim::best_staging_strategy(cfg))
                    .c_str());
  }

  std::printf("\n(c) scaling the job out (10 epochs, 512 GB): PFS is shared, "
              "NVRAM is per-node\n");
  std::printf("%8s %16s %16s\n", "nodes", "pfs (s)", "nvram (s)");
  for (hpcsim::Index nodes : {16, 64, 256, 1024, 4096}) {
    StagingConfig cfg = base;
    cfg.nodes = nodes;
    std::printf("%8lld %16.1f %16.1f\n", static_cast<long long>(nodes),
                hpcsim::campaign_ingest_time_s(
                    StagingStrategy::PfsEveryEpoch, cfg),
                hpcsim::campaign_ingest_time_s(StagingStrategy::NvramCached,
                                               cfg));
  }

  std::printf("\n(d) ingest energy over the campaign (summit node tiers)\n");
  const auto node = hpcsim::summit_node();
  std::printf("%-18s %14s\n", "strategy", "energy (kJ)");
  for (StagingStrategy s :
       {StagingStrategy::PfsEveryEpoch, StagingStrategy::NvramCached,
        StagingStrategy::GenerateOnNode}) {
    std::printf("%-18s %14.1f\n", hpcsim::staging_strategy_name(s).c_str(),
                hpcsim::campaign_ingest_energy_j(s, base, node) / 1e3);
  }

  // (e) Measured on-node generation rate: the synthetic generators ARE the
  // "data generated at each node" path.
  biodata::DrugResponseConfig gen_cfg;
  gen_cfg.samples = 4000;
  Stopwatch sw;
  const Dataset d = biodata::make_drug_response(gen_cfg);
  const double secs = sw.seconds();
  const double gb = static_cast<double>(d.x.numel() + d.y.numel()) * 4e-9;
  std::printf("\n(e) measured generate-on-node rate (drug-response "
              "generator): %.3f GB in %.2f s = %.3f GB/s per core\n",
              gb, secs, gb / secs);
  // (f) Measured staging round trip through node-local storage: the
  // executable counterpart of the NVRAM-cached path.
  {
    biodata::DrugResponseConfig big;
    big.samples = 20000;
    const Dataset staged = biodata::make_drug_response(big);
    const std::string path = "/tmp/candle_e6_stage.bin";
    const auto [write_gbs, read_gbs] =
        biodata::measure_staging_rates(staged, path);
    std::printf("\n(f) measured node-local staging (%lld samples, %.0f MB): "
                "write %.2f GB/s, re-read %.2f GB/s\n",
                static_cast<long long>(staged.size()),
                static_cast<double>(staged.x.numel() + staged.y.numel()) *
                    4e-6,
                write_gbs, read_gbs);
    std::filesystem::remove(path);
  }

  std::printf("\nexpected shape: PFS cost repeats every epoch and worsens "
              "with node count (shared bandwidth); NVRAM pays once and "
              "amortizes; generation wins when synthesis is cheaper than "
              "the wire — the NVRAM opportunity of claim C7\n\n");
}

// Timed: workload generation throughput (the generate-at-node path).
void BM_GenerateDrugResponse(benchmark::State& state) {
  biodata::DrugResponseConfig cfg;
  cfg.samples = state.range(0);
  for (auto _ : state) {
    const Dataset d = biodata::make_drug_response(cfg);
    benchmark::DoNotOptimize(d.x.data());
  }
  state.counters["samples/s"] = benchmark::Counter(
      static_cast<double>(cfg.samples) *
          static_cast<double>(state.iterations()),
      benchmark::Counter::kIsRate);
}

void BM_GenerateAmr(benchmark::State& state) {
  biodata::AmrConfig cfg;
  cfg.samples = state.range(0);
  for (auto _ : state) {
    const Dataset d = biodata::make_amr(cfg);
    benchmark::DoNotOptimize(d.x.data());
  }
  state.counters["samples/s"] = benchmark::Counter(
      static_cast<double>(cfg.samples) *
          static_cast<double>(state.iterations()),
      benchmark::Counter::kIsRate);
}

BENCHMARK(BM_GenerateDrugResponse)->Arg(1000)->Unit(benchmark::kMillisecond);
BENCHMARK(BM_GenerateAmr)->Arg(1000)->Unit(benchmark::kMillisecond);

}  // namespace

int main(int argc, char** argv) {
  print_tables();
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  return 0;
}

// Experiment E12 — serving under chaos: the supervised engine (src/serve)
// driven open-loop while a seeded fault schedule kills, hangs, and poisons
// its workers, pinned against the hpcsim degraded-capacity model.
//
// Tables:
//   (a) calibration: measured full-batch service time at deployment
//       concurrency and the healthy capacity it implies;
//   (b) MEASURED kill sweep: k of N workers killed permanently (restart
//       budget zeroed), saturated load, delivered goodput as a fraction of
//       the healthy run vs hpcsim::estimate_degraded_serving's
//       capacity_ratio — the pin the acceptance gate checks (~10%);
//   (c) hang sweep: injected multi-ms stalls with hedged execution on vs
//       off — hedging races the stragglers, so the completed-request tail
//       tracks the hedge timeout instead of the much larger hang-declare
//       timeout, at equal goodput;
//   (d) seeded chaos mix (crashes + hangs + corruption together): the
//       engine must keep the exact accounting invariant
//       submitted == completed + shed + failed while degrading gracefully.
//
// `--json=PATH` (default BENCH_e12.ci.json) emits the machine-readable
// report; the report is a generated artifact — CI emits and uploads it per
// commit (`--smoke` shrinks durations for that job); it is not checked in.
#include <algorithm>
#include <chrono>
#include <cmath>
#include <cstdio>
#include <fstream>
#include <future>
#include <string>
#include <thread>
#include <vector>

#include "bench/args.hpp"
#include "hpcsim/machine.hpp"
#include "hpcsim/perfmodel.hpp"
#include "hpcsim/resilience.hpp"
#include "nn/model.hpp"
#include "runtime/fault.hpp"
#include "runtime/rng.hpp"
#include "serve/supervisor.hpp"

namespace {

using namespace candle;
using Clock = std::chrono::steady_clock;

constexpr Index kWorkers = 4;
constexpr Index kMaxBatch = 16;
constexpr Index kInputF = 512;

// Large enough that inference dominates the request path (sub-ms service):
// with a trivial model the engine is submit-bound — the producer and the
// batcher lock saturate before the workers do — and the kill sweep would
// measure scheduler noise instead of capacity.
Model serving_model(std::uint64_t seed) {
  Model m;
  m.add(make_dense(1024)).add(make_relu());
  m.add(make_dense(512)).add(make_relu());
  m.add(make_dense(64));
  m.build({kInputF}, seed);
  return m;
}

std::vector<float> sample_input(std::uint64_t seed) {
  Pcg32 rng(seed);
  std::vector<float> v(static_cast<std::size_t>(kInputF));
  for (auto& x : v) x = static_cast<float>(rng.normal());
  return v;
}

/// Median full-batch infer() wall time at deployment concurrency (same
/// calibrate-then-project idiom as bench_e11).
double measure_batch_service_s(const Model& m, int reps) {
  Tensor batch({kMaxBatch, kInputF});
  Pcg32 rng(7);
  for (Index i = 0; i < batch.numel(); ++i) {
    batch[i] = static_cast<float>(rng.normal());
  }
  std::vector<std::vector<double>> per_thread(
      static_cast<std::size_t>(kWorkers));
  std::vector<std::thread> threads;
  for (Index w = 0; w < kWorkers; ++w) {
    threads.emplace_back([&, w] {
      for (int r = 0; r < reps + 1; ++r) {  // first rep warms pools/arenas
        const auto t0 = Clock::now();
        const Tensor y = m.infer(batch);
        const auto t1 = Clock::now();
        if (r > 0) {
          per_thread[static_cast<std::size_t>(w)].push_back(
              std::chrono::duration<double>(t1 - t0).count());
        }
      }
    });
  }
  for (auto& t : threads) t.join();
  std::vector<double> times;
  for (const auto& v : per_thread) times.insert(times.end(), v.begin(), v.end());
  std::sort(times.begin(), times.end());
  return times[times.size() / 2];
}

struct ChaosRow {
  std::string label;
  double goodput_rps = 0.0;
  double p50_ms = 0.0;
  double p99_ms = 0.0;
  double p999_ms = 0.0;
  double shed_fraction = 0.0;
  serve::EngineStats stats;
};

/// Replay a saturated open-loop Poisson trace against a fresh supervised
/// engine under `schedule` (moved into a per-run injector).
ChaosRow replay(const Model& m, const std::vector<float>& input,
                double duration_s, double offered_rps,
                runtime::FaultSchedule schedule,
                const serve::SupervisorPolicy& supervise) {
  runtime::FaultInjector injector(std::move(schedule));
  serve::SupervisedOptions opt;
  opt.workers = kWorkers;
  opt.batch.max_batch = kMaxBatch;
  opt.batch.max_wait_s = 1e-3;
  opt.batch.queue_capacity = 256;
  opt.supervise = supervise;
  serve::SupervisedEngine engine(m, opt, &injector);

  const serve::ArrivalTrace trace =
      serve::poisson_trace(offered_rps, duration_s, 4242);
  std::vector<std::future<serve::Response>> futures;
  futures.reserve(trace.at_s.size());
  const auto start = Clock::now();
  for (std::size_t i = 0; i < trace.at_s.size(); ++i) {
    const auto due =
        start + std::chrono::duration_cast<Clock::duration>(
                    std::chrono::duration<double>(trace.at_s[i]));
    if (due > Clock::now()) std::this_thread::sleep_until(due);
    serve::Request req;
    req.id = i;
    req.input = input;
    req.deadline_s = 0.1;  // generous SLO: sheds come from capacity loss
    futures.push_back(engine.submit(std::move(req)));
  }
  engine.drain();
  for (auto& f : futures) f.get();  // every future must resolve

  ChaosRow row;
  row.stats = engine.stats();
  row.goodput_rps = static_cast<double>(row.stats.completed) / duration_s;
  row.p50_ms = row.stats.latency.quantile(0.50) * 1e3;
  row.p99_ms = row.stats.latency.quantile(0.99) * 1e3;
  row.p999_ms = row.stats.latency.quantile(0.999) * 1e3;
  row.shed_fraction =
      row.stats.submitted > 0
          ? static_cast<double>(row.stats.shed_total() + row.stats.failed) /
                static_cast<double>(row.stats.submitted)
          : 0.0;
  if (row.stats.accounting_gap() != 0) {
    std::fprintf(stderr,
                 "ACCOUNTING VIOLATION: gap=%lld (submitted=%llu completed=%llu"
                 " shed=%llu failed=%llu)\n",
                 static_cast<long long>(row.stats.accounting_gap()),
                 static_cast<unsigned long long>(row.stats.submitted),
                 static_cast<unsigned long long>(row.stats.completed),
                 static_cast<unsigned long long>(row.stats.shed_total()),
                 static_cast<unsigned long long>(row.stats.failed));
    std::exit(1);
  }
  return row;
}

int run(double duration_s, const std::string& json_path) {
  std::printf("=== E12: serving under chaos (supervised engine vs model) ===\n\n");

  const Model m = serving_model(17);
  const std::vector<float> input = sample_input(3);

  const double service_s = measure_batch_service_s(m, 15);
  const double healthy_capacity_rps =
      static_cast<double>(kWorkers) * static_cast<double>(kMaxBatch) /
      service_s;
  const double offered_rps = 1.5 * healthy_capacity_rps;  // saturate the pool

  std::printf("(a) calibration\n");
  std::printf("    batch service (b=%d, median): %8.3f ms\n",
              static_cast<int>(kMaxBatch), service_s * 1e3);
  std::printf("    healthy capacity (%d workers): %8.1f req/s\n",
              static_cast<int>(kWorkers), healthy_capacity_rps);
  std::printf("    offered load: %.1f req/s (1.5x, saturated)\n\n", offered_rps);

  // hpcsim model for the kill sweep: kills are permanent (failed_workers),
  // survivors healthy.
  hpcsim::ServingPlan plan;
  plan.workers = kWorkers;
  plan.max_batch = kMaxBatch;
  plan.measured_batch_service_s = service_s;
  hpcsim::TrainingWorkload workload;  // unused: measured override active
  hpcsim::ServingFaultModel faults;
  faults.worker_mtbf_s = 1e9;  // no background crash process in this sweep
  faults.hang_prob = 0.0;
  const hpcsim::NodeSpec node = hpcsim::summit_node();

  // ---- (b) kill sweep -------------------------------------------------------
  // Honesty note (same spirit as bench_e3's 1-core note): worker slots are
  // threads, so on a host with fewer cores than workers the survivors of a
  // kill inherit the dead workers' CPU share and measured goodput cannot
  // drop (N-k)/N-proportionally — the slot model's premise (worker-private
  // execution resources) only physically exists when cores >= workers.
  // The ~10% pin therefore runs in two parts: the degraded-capacity closed
  // form is always pinned against the seeded Monte-Carlo chaos simulation
  // (the executable ground truth, same idiom as bench_e10's runtime pin),
  // and the measured ratio is additionally gated when the host has enough
  // cores for slots to be real.
  const unsigned cores = std::max(1u, std::thread::hardware_concurrency());
  const bool slots_real = cores >= static_cast<unsigned>(kWorkers);
  std::printf("(b) MEASURED kill sweep: k of %d workers killed, no restarts "
              "(%.2fs per point, %u cores%s)\n",
              static_cast<int>(kWorkers), duration_s, cores,
              slots_real ? "" : " — thread-workers timeshare, measured "
                                "ratio informational");
  std::printf("%4s %10s %10s %9s %9s %10s %10s\n", "k", "goodput",
              "shed+fail", "p50 ms", "p99 ms", "meas.ratio", "model");
  serve::SupervisorPolicy no_restart;
  no_restart.max_restarts = 0;
  std::vector<ChaosRow> kill_rows;
  std::vector<double> measured_ratio, modeled_ratio;
  double measured_pin_err = 0.0;
  for (Index k = 0; k < kWorkers; ++k) {
    runtime::FaultSchedule schedule;
    for (Index w = 0; w < k; ++w) schedule.kill_worker(/*batch=*/0, w);
    ChaosRow row = replay(m, input, duration_s, offered_rps,
                          std::move(schedule), no_restart);
    row.label = "kill" + std::to_string(k);
    const double ratio =
        kill_rows.empty() ? 1.0
                          : row.goodput_rps / kill_rows.front().goodput_rps;
    const double model =
        hpcsim::estimate_degraded_serving(node, workload, plan, offered_rps,
                                          faults, k)
            .capacity_ratio;
    measured_pin_err = std::max(measured_pin_err, std::abs(ratio - model));
    std::printf("%4d %10.1f %9.1f%% %9.2f %9.2f %10.3f %10.3f\n",
                static_cast<int>(k), row.goodput_rps,
                row.shed_fraction * 100.0, row.p50_ms, row.p99_ms, ratio,
                model);
    measured_ratio.push_back(ratio);
    modeled_ratio.push_back(model);
    kill_rows.push_back(std::move(row));
  }
  if (slots_real) {
    std::printf("    pin: measured vs modeled capacity ratio, max err = "
                "%.1f%% (gate: ~10%%)\n",
                measured_pin_err * 100.0);
  } else {
    std::printf("    measured-ratio gate skipped: %u cores < %d workers "
                "(max dev %.1f%%, informational)\n",
                cores, static_cast<int>(kWorkers), measured_pin_err * 100.0);
  }

  // Closed form vs executable ground truth: a chaotic fault process
  // (background crashes with MTTR, exponential stalls, hedging) simulated
  // by the seeded Monte-Carlo renewal model, per k dead workers.  This pin
  // always gates, host cores notwithstanding.
  hpcsim::ServingFaultModel chaos_faults;
  chaos_faults.workers = kWorkers;
  chaos_faults.batch_service_s = service_s;
  chaos_faults.worker_mtbf_s = 5.0;
  chaos_faults.worker_mttr_s = 0.5;
  chaos_faults.hang_prob = 0.05;
  chaos_faults.hang_mean_s = 0.08;
  chaos_faults.hedging = true;
  double sim_pin_err = 0.0;
  std::vector<double> analytic_bps, simulated_bps;
  for (Index k = 0; k < kWorkers; ++k) {
    const double analytic =
        hpcsim::degraded_serving_capacity_bps(chaos_faults, k);
    const double sim = hpcsim::simulate_serving_capacity_bps(
        chaos_faults, k, /*duration_s=*/30.0, /*trials=*/40, /*seed=*/11 + k);
    sim_pin_err = std::max(sim_pin_err, std::abs(sim / analytic - 1.0));
    analytic_bps.push_back(analytic);
    simulated_bps.push_back(sim);
  }
  std::printf("    pin: degraded-capacity closed form vs seeded chaos "
              "simulation (crashes+stalls+hedging), max err = %.1f%% "
              "(gate: ~10%%)\n\n",
              sim_pin_err * 100.0);

  // ---- (c) hang sweep: hedging on vs off ------------------------------------
  // 30 ms stalls sit below the 50 ms hang-declare floor, so escalation stays
  // quiet and the sweep isolates hedging.  Load is HALF the measured healthy
  // goodput — at saturation queueing delay swamps the stalls and the sweep
  // would show nothing; at comfortable load the tail is stall-driven and
  // hedging visibly caps it near the hedge timeout.
  const double hang_offered_rps = 0.5 * kill_rows.front().goodput_rps;
  std::printf("(c) injected stalls (30 ms) at 0.5x measured capacity, hedged "
              "execution on vs off\n");
  std::printf("%10s %10s %9s %9s %10s %8s %8s %9s\n", "mode", "goodput",
              "p50 ms", "p99 ms", "p99.9 ms", "hedges", "retired", "restarts");
  // Staggered ordinals: workers advance through batch ordinals at similar
  // rates, so spacing the stall points keeps at most ~one worker down at a
  // time — a healthy sibling must exist for the hedged duplicate to race,
  // otherwise the sweep measures a full-pool outage, not hedging.
  auto hang_schedule = [] {
    runtime::FaultSchedule s;
    for (Index w = 0; w < kWorkers; ++w) {
      s.hang_worker(/*batch=*/5 + 10 * w, w, /*delay_s=*/0.03);
      s.hang_worker(/*batch=*/50 + 10 * w, w, /*delay_s=*/0.03);
    }
    return s;
  };
  std::vector<ChaosRow> hang_rows;
  for (const bool hedging : {true, false}) {
    serve::SupervisorPolicy policy;
    policy.hedging = hedging;
    ChaosRow row = replay(m, input, duration_s, hang_offered_rps,
                          hang_schedule(), policy);
    row.label = hedging ? "hedged" : "unhedged";
    std::printf("%10s %10.1f %9.2f %9.2f %10.2f %8llu %8llu %9llu\n",
                row.label.c_str(), row.goodput_rps, row.p50_ms, row.p99_ms,
                row.p999_ms,
                static_cast<unsigned long long>(row.stats.hedges_launched),
                static_cast<unsigned long long>(row.stats.worker_hangs),
                static_cast<unsigned long long>(row.stats.worker_restarts));
    hang_rows.push_back(std::move(row));
  }

  // ---- (d) seeded chaos mix -------------------------------------------------
  std::printf("\n(d) seeded chaos mix: crashes + hangs + corruption together\n");
  ChaosRow chaos = replay(
      m, input, duration_s, offered_rps,
      runtime::serving_chaos_schedule(/*seed=*/2026, /*batches=*/24, kWorkers,
                                      /*kills=*/2, /*hangs=*/3,
                                      /*corruptions=*/3,
                                      /*hang_delay_s=*/0.03),
      serve::SupervisorPolicy{});
  chaos.label = "chaos";
  std::printf("    goodput %.1f req/s (%.2fx healthy), shed+fail %.1f%%, "
              "p99 %.2f ms\n",
              chaos.goodput_rps, chaos.goodput_rps / healthy_capacity_rps,
              chaos.shed_fraction * 100.0, chaos.p99_ms);
  std::printf("    crashes %llu, hangs retired %llu, restarts %llu, hedges "
              "%llu, corruption retries %llu, brownout entries %llu\n",
              static_cast<unsigned long long>(chaos.stats.worker_crashes),
              static_cast<unsigned long long>(chaos.stats.worker_hangs),
              static_cast<unsigned long long>(chaos.stats.worker_restarts),
              static_cast<unsigned long long>(chaos.stats.hedges_launched),
              static_cast<unsigned long long>(chaos.stats.corruption_retries),
              static_cast<unsigned long long>(chaos.stats.brownout_entries));
  std::printf("    accounting: submitted %llu == completed %llu + shed %llu "
              "+ failed %llu (exact)\n",
              static_cast<unsigned long long>(chaos.stats.submitted),
              static_cast<unsigned long long>(chaos.stats.completed),
              static_cast<unsigned long long>(chaos.stats.shed_total()),
              static_cast<unsigned long long>(chaos.stats.failed));

  // ---- JSON report ----------------------------------------------------------
  auto emit_row = [](std::ofstream& json, const ChaosRow& r) {
    json << "    {\"label\": \"" << r.label
         << "\", \"goodput_rps\": " << r.goodput_rps
         << ", \"p50_ms\": " << r.p50_ms << ", \"p99_ms\": " << r.p99_ms
         << ", \"p999_ms\": " << r.p999_ms
         << ", \"shed_fraction\": " << r.shed_fraction
         << ", \"completed\": " << r.stats.completed
         << ", \"failed\": " << r.stats.failed
         << ", \"worker_crashes\": " << r.stats.worker_crashes
         << ", \"worker_hangs\": " << r.stats.worker_hangs
         << ", \"worker_restarts\": " << r.stats.worker_restarts
         << ", \"hedges_launched\": " << r.stats.hedges_launched
         << ", \"corruption_retries\": " << r.stats.corruption_retries
         << ", \"brownout_entries\": " << r.stats.brownout_entries
         << ", \"accounting_gap\": " << r.stats.accounting_gap() << "}";
  };
  std::ofstream json(json_path);
  json << "{\n  \"experiment\": \"e12_chaos\",\n"
       << "  \"calibration\": {\"batch_service_s\": " << service_s
       << ", \"healthy_capacity_rps\": " << healthy_capacity_rps
       << ", \"workers\": " << kWorkers << ", \"max_batch\": " << kMaxBatch
       << ", \"offered_rps\": " << offered_rps << "},\n"
       << "  \"kill_pin\": {\"host_cores\": " << cores
       << ", \"measured_gate_active\": " << (slots_real ? "true" : "false")
       << ", \"measured_max_abs_ratio_err\": " << measured_pin_err
       << ", \"sim_max_rel_err\": " << sim_pin_err
       << ", \"measured_ratio\": [";
  for (std::size_t i = 0; i < measured_ratio.size(); ++i) {
    json << (i ? ", " : "") << measured_ratio[i];
  }
  json << "], \"modeled_ratio\": [";
  for (std::size_t i = 0; i < modeled_ratio.size(); ++i) {
    json << (i ? ", " : "") << modeled_ratio[i];
  }
  json << "], \"chaos_analytic_bps\": [";
  for (std::size_t i = 0; i < analytic_bps.size(); ++i) {
    json << (i ? ", " : "") << analytic_bps[i];
  }
  json << "], \"chaos_simulated_bps\": [";
  for (std::size_t i = 0; i < simulated_bps.size(); ++i) {
    json << (i ? ", " : "") << simulated_bps[i];
  }
  json << "]},\n  \"rows\": [\n";
  bool first = true;
  for (const auto* rows : {&kill_rows, &hang_rows}) {
    for (const ChaosRow& r : *rows) {
      if (!first) json << ",\n";
      first = false;
      emit_row(json, r);
    }
  }
  json << ",\n";
  emit_row(json, chaos);
  json << "\n  ]\n}\n";
  std::printf("\nwrote %s\n", json_path.c_str());
  return 0;
}

}  // namespace

int main(int argc, char** argv) {
  candle::bench::Args args;
  args.flag("smoke").option("json", "BENCH_e12.ci.json");
  if (!args.parse(argc, argv)) {
    std::fprintf(stderr, "bench_e12_chaos: %s\n", args.error().c_str());
    return 2;
  }
  const double duration_s = args.has("smoke") ? 0.4 : 1.5;
  return run(duration_s, args.get("json"));
}

// Experiment E2 — claim C2: "high compute density to support matrix-matrix
// and matrix-vector operations".
//
// Produces the roofline table: for each layer of the two reference models,
// arithmetic intensity and whether it is compute- or memory-bound per node
// generation and memory tier (HBM vs DDR), plus MEASURED GFLOP/s of this
// library's kernels at GEMM vs GEMV shapes — the gap that motivates dense
// compute units.
#include <benchmark/benchmark.h>

#include <cstdio>
#include <vector>

#include "core/kernels.hpp"
#include "hpcsim/perfmodel.hpp"
#include "runtime/timer.hpp"

namespace {

using namespace candle;

struct LayerShape {
  const char* name;
  Index m, n, k;  // GEMM dims for a batch-64 forward pass
};

// Layer GEMMs of the Pilot1 MLP (batch 64) and the NT3 conv lowered via
// im2col (per-sample cols x filters).
const std::vector<LayerShape> kShapes = {
    {"pilot1.dense1 (64x80 -> 64)", 64, 64, 80},
    {"pilot1.dense2 (64x64 -> 32)", 64, 32, 64},
    {"pilot1.dense3 (64x32 -> 1)", 64, 1, 32},
    {"nt3.conv1 im2col (8f x 7k)", 8, 61, 7},
    {"nt3.dense (32)", 64, 32, 232},
    {"gemv.classifier (1xK)", 1, 1, 4096},
    // CANDLE-scale hidden layer at a production batch: the compute-bound
    // regime the dense units exist for.
    {"candle.dense (4096x2048x2048)", 4096, 2048, 2048},
};

double measured_gflops(Index m, Index n, Index k) {
  Tensor a({m, k}), b({k, n}), c({m, n});
  Pcg32 rng(1);
  for (float& v : a.flat()) v = static_cast<float>(rng.normal());
  for (float& v : b.flat()) v = static_cast<float>(rng.normal());
  // Time enough repetitions for a stable estimate.
  const double flops = 2.0 * static_cast<double>(m) * n * k;
  Index reps = static_cast<Index>(std::max(1.0, 2e8 / flops));
  Stopwatch sw;
  for (Index r = 0; r < reps; ++r) {
    gemm(Op::None, Op::None, m, n, k, 1.0f, a.data(), k, b.data(), n, 0.0f,
         c.data(), n);
  }
  const double secs = sw.seconds();
  return flops * static_cast<double>(reps) / secs / 1e9;
}

void print_tables() {
  std::printf("=== E2: compute density / roofline "
              "(claim C2: matrix-matrix and matrix-vector ops) ===\n\n");

  std::printf("workload kernels: arithmetic intensity and measured rate\n");
  std::printf("%-30s %8s %10s %12s\n", "kernel", "AI(f/B)", "meas GF/s",
              "bound@summit");
  const auto summit = hpcsim::summit_node();
  for (const LayerShape& s : kShapes) {
    const double flops = 2.0 * static_cast<double>(s.m) * s.n * s.k;
    const double bytes =
        4.0 * (static_cast<double>(s.m) * s.k + static_cast<double>(s.k) * s.n +
               static_cast<double>(s.m) * s.n);
    const double ai = flops / bytes;
    const auto est = hpcsim::roofline(summit, flops, bytes, Precision::FP32);
    std::printf("%-30s %8.2f %10.2f %12s\n", s.name, ai,
                measured_gflops(s.m, s.n, s.k),
                est.memory_bound ? "memory" : "compute");
  }

  std::printf("\nridge intensity (flops/byte needed to reach peak) per node "
              "generation, nearest tier vs DDR\n");
  std::printf("%-12s %10s %10s %10s %10s\n", "node", "fp32@near",
              "fp16@near", "fp32@DDR", "fp16@DDR");
  for (const auto& node : hpcsim::all_node_presets()) {
    std::printf("%-12s %10.1f %10.1f %10.1f %10.1f\n", node.name.c_str(),
                hpcsim::ridge_intensity(node, Precision::FP32, 0),
                hpcsim::ridge_intensity(node, Precision::FP16, 0),
                hpcsim::ridge_intensity(node, Precision::FP32, 1),
                hpcsim::ridge_intensity(node, Precision::FP16, 1));
  }

  std::printf("\nbatch sweep: modeled achieved fraction of peak for the "
              "pilot1 dense1 GEMM (the strong-scaling mechanism)\n");
  std::printf("%8s %12s\n", "batch", "peak frac");
  for (Index batch : {1, 4, 16, 64, 256, 1024}) {
    std::printf("%8lld %12.3f\n", static_cast<long long>(batch),
                hpcsim::gemm_efficiency(batch));
  }
  std::printf("\nexpected shape: GEMMs sit near/above the ridge (compute "
              "bound), GEMV far below (memory bound); narrower formats and "
              "farther tiers push the ridge up — the architectural case for "
              "dense units fed by HBM\n\n");
}

// Timed: GEMM vs GEMV at equal data footprint.
void BM_GemmShape(benchmark::State& state) {
  const Index n = 512;
  Tensor a({n, n}), b({n, n}), c({n, n});
  for (auto _ : state) {
    gemm(Op::None, Op::None, n, n, n, 1.0f, a.data(), n, b.data(), n, 0.0f,
         c.data(), n);
    benchmark::DoNotOptimize(c.data());
  }
  state.counters["FLOPS"] = benchmark::Counter(
      2.0 * n * n * n * static_cast<double>(state.iterations()),
      benchmark::Counter::kIsRate, benchmark::Counter::OneK::kIs1000);
}

void BM_GemvShape(benchmark::State& state) {
  const Index n = 512;
  Tensor a({n, n}), x({n}), y({n});
  for (auto _ : state) {
    // n GEMVs touch the same bytes as one n^3 GEMM but at intensity ~2.
    for (Index r = 0; r < n; ++r) {
      gemv(Op::None, n, n, 1.0f, a.data(), n, x.data(), 0.0f, y.data());
    }
    benchmark::DoNotOptimize(y.data());
  }
  state.counters["FLOPS"] = benchmark::Counter(
      2.0 * n * n * n * static_cast<double>(state.iterations()),
      benchmark::Counter::kIsRate, benchmark::Counter::OneK::kIs1000);
}

BENCHMARK(BM_GemmShape)->Unit(benchmark::kMillisecond);
BENCHMARK(BM_GemvShape)->Unit(benchmark::kMillisecond);

}  // namespace

int main(int argc, char** argv) {
  print_tables();
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  return 0;
}

// Experiment E4 — claim C4: "to fully exploit large-scale parallelism they
// rely on a combination of model, data and search parallelism".
//
// Fixes a 4096-node machine and compares decompositions:
//   (a) (data x model) factorizations of one training job — samples/s and
//       utilization per plan, plus the best hybrid found by plan search;
//   (b) adding SEARCH parallelism: splitting the machine across concurrent
//       HPO trials — configurations/hour of the whole campaign, showing
//       the three-way combination beats any single axis.
#include <benchmark/benchmark.h>

#include <cmath>
#include <cstdio>

#include "hpcsim/perfmodel.hpp"
#include "hpo/objectives.hpp"
#include "hpo/searchers.hpp"
#include "sched/campaign.hpp"

namespace {

using namespace candle;

hpcsim::TrainingWorkload candle_scale_workload() {
  hpcsim::TrainingWorkload w;
  w.name = "candle-scale";
  w.flops_per_sample = 2e9;
  w.parameters = 5e7;
  w.bytes_per_sample = 6e4;
  w.activation_bytes_per_sample = 4e5;
  return w;
}

void print_tables() {
  std::printf("=== E4: model x data x search parallelism "
              "(claim C4) ===\n\n");
  const auto node = hpcsim::summit_node();
  const auto fabric = hpcsim::fat_tree_fabric();
  const auto w = candle_scale_workload();
  const hpcsim::Index nodes = 4096;
  const hpcsim::Index global_batch = 4096;

  std::printf("(a) one training job on %lld nodes, global batch %lld\n",
              static_cast<long long>(nodes),
              static_cast<long long>(global_batch));
  std::printf("%8s %8s %12s %14s %12s\n", "data", "model", "samples/s",
              "flops util", "step(ms)");
  for (hpcsim::Index shards = 1; shards <= 64; shards *= 4) {
    hpcsim::ParallelPlan plan;
    plan.model_shards = shards;
    plan.data_replicas = nodes / shards;
    plan.batch_per_replica =
        std::max<hpcsim::Index>(1, global_batch / plan.data_replicas);
    const auto est = hpcsim::estimate_step(node, fabric, w, plan);
    std::printf("%8lld %8lld %12.0f %14.4f %12.2f\n",
                static_cast<long long>(plan.data_replicas),
                static_cast<long long>(shards), est.samples_per_s,
                est.flops_utilization, est.step_s * 1e3);
  }
  const auto best =
      hpcsim::best_hybrid_plan(node, fabric, w, nodes, global_batch);
  const auto best_est = hpcsim::estimate_step(node, fabric, w, best);
  std::printf("best plan found: data=%lld x model=%lld -> %.0f samples/s\n\n",
              static_cast<long long>(best.data_replicas),
              static_cast<long long>(best.model_shards),
              best_est.samples_per_s);

  // (b) Search parallelism on top: split the machine into K concurrent
  // trials, each running its best (data x model) plan on nodes/K nodes.
  // A trial = 30 epochs x 50k samples; campaign = 256 configurations.
  std::printf("(b) HPO campaign of 256 configurations, 50k samples x 30 "
              "epochs per trial\n");
  std::printf("%14s %14s %16s %18s\n", "trials in par", "nodes/trial",
              "trial time (s)", "campaign (hours)");
  const double samples_per_trial = 50000.0 * 30.0;
  double best_hours = 1e300;
  hpcsim::Index best_k = 1;
  for (hpcsim::Index k : {1, 4, 16, 64, 256}) {
    const hpcsim::Index trial_nodes = nodes / k;
    const auto plan = hpcsim::best_hybrid_plan(node, fabric, w, trial_nodes,
                                               global_batch);
    const auto est = hpcsim::estimate_step(node, fabric, w, plan);
    const double trial_s = samples_per_trial / est.samples_per_s;
    const double waves = std::ceil(256.0 / static_cast<double>(k));
    const double campaign_h = waves * trial_s / 3600.0;
    if (campaign_h < best_hours) {
      best_hours = campaign_h;
      best_k = k;
    }
    std::printf("%14lld %14lld %16.1f %18.2f\n", static_cast<long long>(k),
                static_cast<long long>(trial_nodes), trial_s, campaign_h);
  }
  std::printf("best campaign: %lld concurrent trials (%.2f h)\n",
              static_cast<long long>(best_k), best_hours);
  std::printf("\nexpected shape: pure data parallelism starves at 4096 "
              "nodes; model sharding recovers some utilization; pushing the "
              "spare scale into *search* parallelism is what actually fills "
              "the machine — the paper's three-way combination\n\n");
}

// Timed: the hybrid plan search itself (an optimizer the runtime would run
// per job submission).
void BM_BestHybridPlan(benchmark::State& state) {
  const auto node = hpcsim::summit_node();
  const auto fabric = hpcsim::fat_tree_fabric();
  const auto w = candle_scale_workload();
  for (auto _ : state) {
    benchmark::DoNotOptimize(
        hpcsim::best_hybrid_plan(node, fabric, w, 4096, 4096));
  }
}

BENCHMARK(BM_BestHybridPlan)->Unit(benchmark::kMicrosecond);

}  // namespace

int main(int argc, char** argv) {
  print_tables();
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  return 0;
}

// MLPerf-HPC-style benchmark suite: every experiment family adapted onto
// the bench::Registry interface and run by one driver under a common metric
// discipline — N seeded repeats, run-to-run variance, model-pin ratios
// against the hpcsim estimators, honesty flags on core-starved hosts, and
// one consolidated BENCH_suite.ci.json artifact the CI regression gate
// (--baseline=PATH) compares across commits.
//
// Registered benchmarks (see DESIGN.md "Benchmark suite"):
//   tta_blob_classifier    time-to-accuracy of the serial trainer (primary
//                          MLPerf-HPC metric: wall seconds to target quality)
//   kernels_gemm           parallel GEMM throughput (machine calibration)
//   scaling_strong_anchor  measured single-node step anchoring the modeled
//                          strong/weak sweeps (bench_e3's loop, unified)
//   serving_capacity       dynamic-batching goodput at saturation, pinned
//                          against estimate_serving (bench_e11's loop)
//   serving_continuous     continuous batching vs coalescing: low-load p99
//                          (gated >=30% below coalescing on capable hosts)
//                          and saturated goodput pinned against
//                          estimate_serving_continuous
//   ingest_prefetch        prefetch-pipeline step time vs the drain law
//                          (bench_e13's loop)
//   resilience_overhead    resilient trainer's modeled overhead factor vs
//                          the Young/Daly closed form (bench_e10's loop)
//   chaos_capacity_model   simulated degraded serving capacity vs the
//                          renewal closed form (bench_e12's modeled loop)
//
// Flags (see bench::suite_main): --smoke --seeds=N --seed=S --filter=SUBSTR
// --json=PATH --baseline=PATH --selfcheck.  Exit codes: 0 ok, 1 regression
// or self-check failure, 2 usage error.
#include <algorithm>
#include <chrono>
#include <cstdio>
#include <filesystem>
#include <future>
#include <iostream>
#include <limits>
#include <string>
#include <thread>
#include <vector>

#include "bench/registry.hpp"
#include "bench/suite.hpp"
#include "biodata/workloads.hpp"
#include "core/kernels.hpp"
#include "hpcsim/machine.hpp"
#include "hpcsim/perfmodel.hpp"
#include "hpcsim/resilience.hpp"
#include "nn/loss.hpp"
#include "nn/metrics.hpp"
#include "nn/model.hpp"
#include "nn/trainer.hpp"
#include "parallel/data_parallel.hpp"
#include "parallel/resilient.hpp"
#include "parallel/workload.hpp"
#include "runtime/fault.hpp"
#include "runtime/rng.hpp"
#include "runtime/timer.hpp"
#include "serve/engine.hpp"

namespace {

using namespace candle;

unsigned host_cores() {
  return std::max(1u, std::thread::hardware_concurrency());
}

Dataset blob_dataset(Index n, Index features, std::uint64_t seed) {
  Pcg32 rng(seed);
  Dataset d{Tensor({n, features}), Tensor({n})};
  for (Index i = 0; i < n; ++i) {
    const float cls = static_cast<float>(i % 2);
    d.y[i] = cls;
    for (Index j = 0; j < features; ++j) {
      d.x.at(i, j) = static_cast<float>(rng.normal(cls * 2.0 - 1.0, 0.9));
    }
  }
  return d;
}

// ---- tta_blob_classifier ----------------------------------------------------
// The MLPerf-HPC primary metric: wall-clock seconds of training until the
// model first reaches the target quality on a held-out set.  The task is
// fixed across repeats; the seed drives the weight init and the shuffle
// stream, so the repeats measure genuine run-to-run TTA variance.

Dataset tta_dataset(Index n, Index features, std::uint64_t seed) {
  // Weak separation on purpose (±0.4 means, unit noise): the target quality
  // sits near the Bayes rate, so reaching it takes several epochs and the
  // metric measures training progress rather than a single pass.
  Pcg32 rng(seed);
  Dataset d{Tensor({n, features}), Tensor({n})};
  for (Index i = 0; i < n; ++i) {
    const float cls = static_cast<float>(i % 2);
    d.y[i] = cls;
    for (Index j = 0; j < features; ++j) {
      d.x.at(i, j) = static_cast<float>(rng.normal(cls * 0.8 - 0.4, 1.0));
    }
  }
  return d;
}

bench::RunResult run_tta(const bench::RunContext& ctx) {
  constexpr Index kFeatures = 16;
  constexpr double kTargetAccuracy = 0.92;
  const Dataset train = tta_dataset(512, kFeatures, 1201);
  const Dataset test = tta_dataset(256, kFeatures, 1202);

  Model m;
  m.add(make_dense(32)).add(make_relu()).add(make_dense(2));
  m.build({kFeatures}, ctx.seed * 2 + 1);
  SoftmaxCrossEntropy xent;
  Adam opt(2e-3f);

  bench::RunResult r;
  double tta_s = 0.0;
  double last_acc = 0.0;
  bool reached = false;
  Index epochs_used = 0;
  Stopwatch sw;
  FitOptions fo;
  fo.epochs = ctx.smoke ? 15 : 50;
  fo.batch_size = 32;
  fo.seed = ctx.seed;
  fo.on_epoch = [&](Index epoch, float, float) {
    last_acc = accuracy(m.predict(test.x), test.y);
    epochs_used = epoch + 1;
    if (last_acc >= kTargetAccuracy) {
      tta_s = sw.seconds();
      reached = true;
      return false;
    }
    return true;
  };
  fit(m, train, nullptr, xent, opt, fo);
  if (!reached) tta_s = sw.seconds();  // budget exhausted: full wall charged

  r.metric = tta_s;
  r.aux["reached_target"] = reached ? 1.0 : 0.0;
  r.aux["final_accuracy"] = last_acc;
  r.aux["epochs_to_target"] = static_cast<double>(epochs_used);
  if (!reached) {
    r.perf_gate_active = false;
    r.honesty_note = "target accuracy not reached within the epoch budget";
  }
  return r;
}

// ---- kernels_gemm -----------------------------------------------------------
// Parallel GEMM throughput at a fixed square shape: the machine-calibration
// number every roofline projection in the suite ultimately rests on.

bench::RunResult run_kernels_gemm(const bench::RunContext& ctx) {
  const Index n = ctx.smoke ? 192 : 384;
  Tensor a({n, n}), b({n, n}), c({n, n});
  Pcg32 rng(ctx.seed);
  for (float& v : a.flat()) v = static_cast<float>(rng.normal());
  for (float& v : b.flat()) v = static_cast<float>(rng.normal());
  const auto once = [&] {
    gemm(Op::None, Op::None, n, n, n, 1.0f, a.data(), n, b.data(), n, 0.0f,
         c.data(), n);
  };
  once();  // warm-up (thread pool + workspace arenas)
  int iters = 1;
  double best = 1e30;
  for (;;) {
    Stopwatch sw;
    for (int i = 0; i < iters; ++i) once();
    const double t = sw.seconds();
    if (t >= 0.01 || iters >= (1 << 20)) {
      best = t / iters;
      for (int rep = 0; rep < 2; ++rep) {
        Stopwatch sw2;
        for (int i = 0; i < iters; ++i) once();
        best = std::min(best, sw2.seconds() / iters);
      }
      break;
    }
    iters *= 2;
  }
  bench::RunResult r;
  r.metric = 2.0 * static_cast<double>(n) * n * n / best * 1e-9;
  r.aux["n"] = static_cast<double>(n);
  return r;
}

// ---- scaling_strong_anchor --------------------------------------------------
// The MLPerf-HPC scaling discipline: one measured single-node data-parallel
// step anchors the hpcsim strong/weak sweeps, so the multi-node numbers are
// projections of a real wall-clock measurement rather than free-floating
// model output.  The metric is the anchored strong-scaling throughput at
// the sweep's top node count.

bench::RunResult run_scaling_anchor(const bench::RunContext& ctx) {
  biodata::DrugResponseConfig cfg;
  cfg.samples = 256;
  cfg.seed = 301;
  const Dataset data = biodata::make_drug_response(cfg);
  const auto factory = [&] {
    Model m;
    m.add(make_dense(64)).add(make_relu());
    m.add(make_dense(32)).add(make_relu());
    m.add(make_dense(1));
    m.build({cfg.features()}, 3131);
    return m;
  };

  parallel::DataParallelOptions opts;
  opts.replicas = 1;
  opts.batch_per_replica = 32;
  opts.epochs = ctx.smoke ? 1 : 2;
  opts.seed = ctx.seed;
  Model trained;
  const parallel::DataParallelResult res = parallel::train_data_parallel(
      factory, [] { return make_sgd(0.05f); }, data, MeanSquaredError(), opts,
      &trained);
  const double measured_step_s =
      res.measured_seconds / static_cast<double>(std::max<Index>(1, res.steps));

  const hpcsim::TrainingWorkload w =
      parallel::workload_from_model(trained, "suite-anchor");
  const auto node = hpcsim::summit_node();
  const auto fabric = hpcsim::fat_tree_fabric();
  const std::vector<hpcsim::Index> counts = {1, 2, 4, 8, 16, 32};
  const hpcsim::AnchoredScaling strong = hpcsim::anchored_strong_scaling(
      node, fabric, w, /*global_batch=*/32, counts, measured_step_s);
  const hpcsim::AnchoredScaling weak = hpcsim::anchored_weak_scaling(
      node, fabric, w, /*batch_per_replica=*/32, counts, measured_step_s);

  bench::RunResult r;
  r.metric = strong.points.back().samples_per_s;
  r.aux["measured_step_s"] = measured_step_s;
  r.aux["anchor_ratio"] = strong.anchor_ratio;
  r.aux["strong_efficiency_top"] = strong.points.back().efficiency;
  r.aux["strong_comm_fraction_top"] = strong.points.back().comm_fraction;
  r.aux["weak_efficiency_top"] = weak.points.back().efficiency;
  return r;
}

// ---- serving_capacity -------------------------------------------------------
// bench_e11's calibrate-then-saturate loop: measure the full-batch service
// time at deployment concurrency, derive the modeled capacity, then drive
// the real engine past saturation and report delivered goodput.  The pin is
// goodput / modeled capacity (~1 when estimate_serving holds).

bench::RunResult run_serving_capacity(const bench::RunContext& ctx) {
  constexpr Index kInputF = 256;
  constexpr Index kWorkers = 2;
  Model m;
  m.add(make_dense(512)).add(make_relu());
  m.add(make_dense(256)).add(make_relu());
  m.add(make_dense(32));
  m.build({kInputF}, 17);

  serve::BatchPolicy policy;
  policy.max_batch = 16;
  policy.max_wait_s = 1e-3;
  policy.queue_capacity = 128;

  // Median full-batch infer() at deployment concurrency (the idiom shared
  // with bench_e11/e12: contention is part of the service time).
  using Clock = std::chrono::steady_clock;
  const int reps = ctx.smoke ? 3 : 5;
  Tensor batch({policy.max_batch, kInputF});
  Pcg32 brng(7);
  for (float& v : batch.flat()) v = static_cast<float>(brng.normal());
  std::vector<std::vector<double>> per_thread(kWorkers);
  std::vector<std::thread> threads;
  for (Index w = 0; w < kWorkers; ++w) {
    threads.emplace_back([&, w] {
      for (int rep = 0; rep < reps + 1; ++rep) {  // first rep warms arenas
        const auto t0 = Clock::now();
        const Tensor y = m.infer(batch);
        const auto t1 = Clock::now();
        if (rep > 0) {
          per_thread[static_cast<std::size_t>(w)].push_back(
              std::chrono::duration<double>(t1 - t0).count());
        }
      }
    });
  }
  for (auto& t : threads) t.join();
  std::vector<double> times;
  for (const auto& v : per_thread) times.insert(times.end(), v.begin(), v.end());
  std::sort(times.begin(), times.end());
  const double service_s = times[times.size() / 2];

  hpcsim::ServingPlan plan;
  plan.workers = kWorkers;
  plan.max_batch = policy.max_batch;
  plan.batch_timeout_s = policy.max_wait_s;
  plan.queue_capacity = policy.queue_capacity;
  plan.measured_batch_service_s = service_s;
  const hpcsim::TrainingWorkload unused_workload;
  const double capacity_rps =
      hpcsim::estimate_serving(hpcsim::summit_node(), unused_workload, plan,
                               0.0)
          .capacity_rps;

  // Saturated open-loop replay: offered 1.3x capacity, seeded arrivals.
  const double duration_s = ctx.smoke ? 0.15 : 0.35;
  const serve::ArrivalTrace trace =
      serve::poisson_trace(1.3 * capacity_rps, duration_s, ctx.seed);
  std::vector<float> input(static_cast<std::size_t>(kInputF));
  Pcg32 irng(3);
  for (float& v : input) v = static_cast<float>(irng.normal());

  serve::EngineOptions eopt;
  eopt.workers = kWorkers;
  eopt.batch = policy;
  serve::Engine engine(m, eopt);
  std::vector<std::future<serve::Response>> futures;
  futures.reserve(trace.at_s.size());
  const auto start = Clock::now();
  for (std::size_t i = 0; i < trace.at_s.size(); ++i) {
    const auto due = start + std::chrono::duration_cast<Clock::duration>(
                                 std::chrono::duration<double>(trace.at_s[i]));
    if (due > Clock::now()) std::this_thread::sleep_until(due);
    serve::Request req;
    req.id = i;
    req.input = input;
    req.deadline_s = 50e-3;
    futures.push_back(engine.submit(std::move(req)));
  }
  engine.drain();
  const serve::EngineStats s = engine.stats();

  bench::RunResult r;
  r.metric = static_cast<double>(s.completed) / trace.duration_s;
  r.model_pin_ratio = capacity_rps > 0.0 ? r.metric / capacity_rps : 0.0;
  r.aux["batch_service_s"] = service_s;
  r.aux["modeled_capacity_rps"] = capacity_rps;
  r.aux["offered_rps"] = trace.offered_rps();
  r.aux["p99_ms"] = s.latency.quantile(0.99) * 1e3;
  if (host_cores() < kWorkers + 1) {
    r.perf_gate_active = false;
    r.honesty_note = "host has fewer cores than engine workers + producer";
  }
  return r;
}

// ---- serving_continuous -----------------------------------------------------
// The tentpole comparison: the same deployment scheduled continuously
// (per-iteration row admit/evict) vs coalescing.  At low load (0.2x
// capacity) continuous batching has no fill window to sit out, so its p99
// must come in at least 30% below coalescing — a hard CANDLE_CHECK gate on
// hosts with enough cores, honesty-flagged where contention would make the
// comparison dishonest.  At saturation the two schedulers share capacity;
// the pin is continuous goodput / estimate_serving_continuous capacity.

bench::RunResult run_serving_continuous(const bench::RunContext& ctx) {
  constexpr Index kInputF = 256;
  constexpr Index kWorkers = 2;
  // Wider than serving_capacity's model on purpose: a ~0.5ms batch service
  // keeps the p99 comparison far above clock / scheduler noise, so the 30%
  // gate measures the scheduler, not the timer.
  Model m;
  m.add(make_dense(1024)).add(make_relu());
  m.add(make_dense(512)).add(make_relu());
  m.add(make_dense(32));
  m.build({kInputF}, 17);

  serve::BatchPolicy policy;
  policy.max_batch = 16;
  policy.max_wait_s = 2e-3;  // the fill window coalescing pays at low load
  policy.queue_capacity = 128;

  // Median full-batch infer() at deployment concurrency, shared idiom with
  // serving_capacity: contention is part of the service time.
  using Clock = std::chrono::steady_clock;
  const int reps = ctx.smoke ? 3 : 5;
  Tensor batch({policy.max_batch, kInputF});
  Pcg32 brng(7);
  for (float& v : batch.flat()) v = static_cast<float>(brng.normal());
  std::vector<std::vector<double>> per_thread(kWorkers);
  std::vector<std::thread> threads;
  for (Index w = 0; w < kWorkers; ++w) {
    threads.emplace_back([&, w] {
      for (int rep = 0; rep < reps + 1; ++rep) {  // first rep warms arenas
        const auto t0 = Clock::now();
        const Tensor y = m.infer(batch);
        const auto t1 = Clock::now();
        if (rep > 0) {
          per_thread[static_cast<std::size_t>(w)].push_back(
              std::chrono::duration<double>(t1 - t0).count());
        }
      }
    });
  }
  for (auto& t : threads) t.join();
  std::vector<double> times;
  for (const auto& v : per_thread) times.insert(times.end(), v.begin(), v.end());
  std::sort(times.begin(), times.end());
  const double service_s = times[times.size() / 2];

  hpcsim::ServingPlan plan;
  plan.workers = kWorkers;
  plan.max_batch = policy.max_batch;
  plan.batch_timeout_s = policy.max_wait_s;
  plan.queue_capacity = policy.queue_capacity;
  plan.measured_batch_service_s = service_s;
  const hpcsim::TrainingWorkload unused_workload;
  const auto node = hpcsim::summit_node();
  const double capacity_rps =
      hpcsim::estimate_serving_continuous(node, unused_workload, plan, 0.0)
          .capacity_rps;

  // --- low-load p99: identical seeded trace at 0.2x capacity through both
  // schedulers, unbounded deadlines (latency is the observable, not shed).
  const double low_rps = 0.2 * capacity_rps;
  const double low_duration_s = ctx.smoke ? 0.15 : 0.3;
  const serve::ArrivalTrace low_trace =
      serve::poisson_trace(low_rps, low_duration_s, ctx.seed);
  std::vector<float> input(static_cast<std::size_t>(kInputF));
  Pcg32 irng(3);
  for (float& v : input) v = static_cast<float>(irng.normal());

  const auto replay = [&](const serve::ArrivalTrace& trace, bool continuous,
                          double deadline_s) {
    serve::EngineOptions eopt;
    eopt.workers = kWorkers;
    eopt.batch = policy;
    eopt.batch.continuous = continuous;
    eopt.calibration_probe = true;
    serve::Engine engine(m, eopt);
    std::vector<std::future<serve::Response>> futures;
    futures.reserve(trace.at_s.size());
    const auto start = Clock::now();
    for (std::size_t i = 0; i < trace.at_s.size(); ++i) {
      const auto due =
          start + std::chrono::duration_cast<Clock::duration>(
                      std::chrono::duration<double>(trace.at_s[i]));
      if (due > Clock::now()) std::this_thread::sleep_until(due);
      serve::Request req;
      req.id = i;
      req.input = input;
      req.deadline_s = deadline_s;
      futures.push_back(engine.submit(std::move(req)));
    }
    engine.drain();
    return engine.stats();
  };
  const double kNoDeadline = std::numeric_limits<double>::infinity();
  const serve::EngineStats coal = replay(low_trace, false, kNoDeadline);
  const serve::EngineStats cont = replay(low_trace, true, kNoDeadline);
  const double p99_coal_ms = coal.latency.quantile(0.99) * 1e3;
  const double p99_cont_ms = cont.latency.quantile(0.99) * 1e3;

  // --- saturation: continuous goodput at 1.3x capacity with tight
  // deadlines, the same protocol serving_capacity runs for coalescing.
  const double sat_duration_s = ctx.smoke ? 0.15 : 0.3;
  const serve::ArrivalTrace sat_trace =
      serve::poisson_trace(1.3 * capacity_rps, sat_duration_s, ctx.seed + 1);
  const serve::EngineStats sat = replay(sat_trace, true, 50e-3);
  const double goodput_rps =
      static_cast<double>(sat.completed) / sat_trace.duration_s;

  bench::RunResult r;
  r.metric = p99_cont_ms;
  r.model_pin_ratio = capacity_rps > 0.0 ? goodput_rps / capacity_rps : 0.0;
  r.aux["p99_coalescing_ms"] = p99_coal_ms;
  r.aux["p99_continuous_ms"] = p99_cont_ms;
  r.aux["p99_ratio"] = p99_coal_ms > 0.0 ? p99_cont_ms / p99_coal_ms : 0.0;
  r.aux["batch_service_s"] = service_s;
  r.aux["modeled_capacity_rps"] = capacity_rps;
  r.aux["low_offered_rps"] = low_trace.offered_rps();
  r.aux["saturated_goodput_rps"] = goodput_rps;
  r.aux["mean_iteration_rows"] = sat.mean_batch_rows();
  if (host_cores() < kWorkers + 1) {
    r.perf_gate_active = false;
    r.honesty_note = "host has fewer cores than engine workers + producer";
  } else {
    // The acceptance gate: at 0.2x capacity, cutting the fill window must
    // show up as >=30% lower tail latency, with wide margin expected (the
    // coalescing tail sits out most of max_wait_s; continuous admits on the
    // next free slot).
    CANDLE_CHECK(p99_cont_ms <= 0.70 * p99_coal_ms,
                 "continuous p99 not >=30% below coalescing at low load");
  }
  return r;
}

// ---- ingest_prefetch --------------------------------------------------------
// bench_e13's loop: synchronous batch assembly calibrates the drain law,
// the depth-2 prefetch run is the metric, and the pin is the drain-law
// projection over the measured step.

bench::RunResult run_ingest_prefetch(const bench::RunContext& ctx) {
  constexpr Index kFeatures = 64;
  constexpr Index kReplicas = 2;
  constexpr Index kBatchPerReplica = 16;
  constexpr Index kSamples = 128;  // global batch 32 -> 4 steps/epoch
  constexpr double kFetchCostS = 100e-6;
  const Dataset d = blob_dataset(kSamples, kFeatures, 90);
  const Index epochs = ctx.smoke ? 2 : 3;
  const Index steps = epochs * (kSamples / (kReplicas * kBatchPerReplica));
  SoftmaxCrossEntropy xent;

  const auto run_config = [&](Index depth, Index threads) {
    parallel::DataParallelOptions o;
    o.replicas = kReplicas;
    o.epochs = epochs;
    o.batch_per_replica = kBatchPerReplica;
    o.seed = ctx.seed;
    o.ingest.enabled = true;
    o.ingest.prefetch_depth = depth;
    o.ingest.fetch_threads = threads;
    o.ingest.synthetic_fetch_cost_s = kFetchCostS;
    o.ingest.store_byte_budget = 1;  // defeat the cache: generation-bound
    return parallel::train_data_parallel(
        [] {
          Model m;
          m.add(make_dense(128)).add(make_relu()).add(make_dense(2));
          m.build({kFeatures}, 92);
          return m;
        },
        [] { return make_adam(5e-3f); }, d, xent, o);
  };

  const parallel::DataParallelResult sync = run_config(1, 0);
  const parallel::DataParallelResult pre = run_config(2, 1);
  const double sync_step_s =
      sync.measured_seconds / static_cast<double>(sync.steps);
  const double pre_step_s =
      pre.measured_seconds / static_cast<double>(pre.steps);
  const double assemble_s = sync.measured_ingest_busy_s;
  const double compute_s = std::max(1e-9, sync_step_s - assemble_s);
  const double modeled_step_s =
      compute_s +
      hpcsim::ingest_exposed_s_per_step(assemble_s, compute_s, 2, steps);

  bench::RunResult r;
  r.metric = pre_step_s;
  r.model_pin_ratio = modeled_step_s / pre_step_s;
  r.aux["sync_step_s"] = sync_step_s;
  r.aux["assemble_s_per_step"] = assemble_s;
  r.aux["step_cut_fraction"] = 1.0 - pre_step_s / sync_step_s;
  r.aux["overlap_fraction"] = pre.measured_ingest_overlap_fraction;
  if (host_cores() < static_cast<unsigned>(kReplicas + 2)) {
    r.perf_gate_active = false;
    r.honesty_note =
        "host has fewer cores than replicas + producer + fetcher";
  }
  return r;
}

// ---- resilience_overhead ----------------------------------------------------
// bench_e10's measured loop at suite scale: the resilient trainer under a
// seeded crash schedule, modeled-accounting overhead factor against the
// Young/Daly prediction for the same failure intensity.  Deterministic per
// seed (the accounting runs at nominal costs), so the variance across the
// seeded repeats is the schedule-to-schedule spread, not timer noise.

bench::RunResult run_resilience_overhead(const bench::RunContext& ctx) {
  const Dataset d = blob_dataset(256, 6, 91);
  const Index epochs = ctx.smoke ? 13 : 25;
  const Index steps = epochs * 4;  // 256 / (4 * 16) = 4 steps/epoch
  const Index crashes = ctx.smoke ? 4 : 8;

  parallel::ResilientOptions o;
  o.train.replicas = 4;
  o.train.batch_per_replica = 16;
  o.train.epochs = epochs;
  o.train.seed = 92;
  o.checkpoint_every_steps = 10;
  o.checkpoint_path =
      "/tmp/candle_bench_suite_resilience_" + std::to_string(ctx.seed) + ".bin";
  o.step_seconds = 1.0;
  o.resilience.nodes = 3600;  // job MTBF in seconds == node MTBF in hours
  o.resilience.checkpoint_state_gb = 100.0;
  o.resilience.checkpoint_bandwidth_gbs = 50.0;
  o.resilience.restart_overhead_s = 3.0;
  o.resilience.node_mtbf_hours =
      1.2 * static_cast<double>(steps) / static_cast<double>(crashes);
  o.max_recoveries = 2 * crashes + 8;
  o.faults = runtime::random_fault_schedule(ctx.seed, steps, 4, crashes);

  const parallel::ResilientResult res = parallel::train_resilient(
      [] {
        Model m;
        m.add(make_dense(12)).add(make_relu()).add(make_dense(2));
        m.build({6}, 93);
        return m;
      },
      [] { return make_adam(5e-3f); }, d, SoftmaxCrossEntropy(), o);
  std::filesystem::remove(o.checkpoint_path);
  std::filesystem::remove(o.checkpoint_path + ".tmp");

  bench::RunResult r;
  r.metric = res.overhead_factor();
  r.model_pin_ratio = res.analytic_overhead_factor > 0.0
                          ? res.overhead_factor() / res.analytic_overhead_factor
                          : 0.0;
  r.aux["crashes"] = static_cast<double>(res.crashes);
  r.aux["restarts"] = static_cast<double>(res.restarts);
  r.aux["planned_steps"] = static_cast<double>(res.planned_steps);
  return r;
}

// ---- chaos_capacity_model ---------------------------------------------------
// bench_e12's modeled loop: the seeded renewal simulation of a degraded
// serving pool (one worker dead, crashes + hangs + hedging on the
// survivors) against the closed-form delivered capacity.  Pure simulation:
// host-independent, deterministic per seed, always gate-active.

bench::RunResult run_chaos_capacity(const bench::RunContext& ctx) {
  hpcsim::ServingFaultModel m;
  m.workers = 4;
  m.worker_mtbf_s = 50.0;
  m.worker_mttr_s = 0.5;
  m.batch_service_s = 1e-3;
  m.hang_prob = 0.05;
  m.hang_mean_s = 0.02;
  m.hedging = true;
  const hpcsim::Index failed = 1;
  const double duration_s = ctx.smoke ? 2.0 : 5.0;
  const hpcsim::Index trials = ctx.smoke ? 30 : 100;

  const double simulated = hpcsim::simulate_serving_capacity_bps(
      m, failed, duration_s, trials, ctx.seed);
  const double analytic = hpcsim::degraded_serving_capacity_bps(m, failed);

  bench::RunResult r;
  r.metric = simulated;
  r.model_pin_ratio = analytic > 0.0 ? simulated / analytic : 0.0;
  r.aux["analytic_capacity_bps"] = analytic;
  r.aux["availability"] = hpcsim::serving_availability(m);
  r.aux["efficiency"] = hpcsim::serving_efficiency(m);
  return r;
}

bench::Registry build_registry() {
  bench::Registry reg;
  reg.add(bench::make_benchmark(
      {"tta_blob_classifier", "time_to_accuracy", "s",
       bench::Direction::LowerIsBetter},
      run_tta));
  reg.add(bench::make_benchmark(
      {"kernels_gemm", "gemm_throughput", "GFLOP/s",
       bench::Direction::HigherIsBetter},
      run_kernels_gemm));
  reg.add(bench::make_benchmark(
      {"scaling_strong_anchor", "anchored_samples_per_s_top", "samples/s",
       bench::Direction::HigherIsBetter},
      run_scaling_anchor));
  reg.add(bench::make_benchmark(
      {"serving_capacity", "saturated_goodput", "req/s",
       bench::Direction::HigherIsBetter},
      run_serving_capacity));
  reg.add(bench::make_benchmark(
      {"serving_continuous", "low_load_p99", "ms",
       bench::Direction::LowerIsBetter},
      run_serving_continuous));
  reg.add(bench::make_benchmark(
      {"ingest_prefetch", "prefetch_step_time", "s",
       bench::Direction::LowerIsBetter},
      run_ingest_prefetch));
  reg.add(bench::make_benchmark(
      {"resilience_overhead", "overhead_factor", "x",
       bench::Direction::LowerIsBetter},
      run_resilience_overhead));
  reg.add(bench::make_benchmark(
      {"chaos_capacity_model", "degraded_capacity", "batches/s",
       bench::Direction::HigherIsBetter},
      run_chaos_capacity));
  return reg;
}

}  // namespace

int main(int argc, char** argv) {
  bench::Registry registry = build_registry();
  return bench::suite_main(registry, argc, argv, std::cout, std::cerr);
}

// Experiment E1 — claim C1: "they rarely require 64-bit or even 32 bits of
// precision".
//
// Reproduces the claim in two halves:
//   (a) MEASURED: train the Pilot1-style regression MLP and an NT3-lite
//       conv classifier at each numeric format and report the final task
//       metric — quality must hold at bf16/fp16 (and mostly at int8).
//   (b) MODELED: per-step throughput and energy of a CANDLE-scale training
//       at each format on the three node generations — the architectural
//       payoff for the quality being retained.
//
// Table columns mirror what an evaluation section would print; the timed
// google-benchmark section covers the measured training-throughput part.
#include <benchmark/benchmark.h>

#include <cstdio>

#include "biodata/workloads.hpp"
#include "hpcsim/perfmodel.hpp"
#include "nn/metrics.hpp"
#include "nn/model.hpp"
#include "nn/trainer.hpp"
#include "runtime/timer.hpp"

namespace {

using namespace candle;

struct MeasuredRow {
  Precision prec;
  double metric;        // R^2 (pilot1) or accuracy (nt3)
  double train_loss;
  double samples_per_s;
};

Model pilot1_model(Index features) {
  Model m;
  m.add(make_dense(64)).add(make_relu());
  m.add(make_dense(32)).add(make_relu());
  m.add(make_dense(1));
  m.build({features}, 1717);
  return m;
}

Model nt3_model(Index length, Index classes) {
  Model m;
  m.add(make_conv1d(8, 7, 2)).add(make_relu()).add(make_maxpool1d(2));
  m.add(make_flatten());
  m.add(make_dense(32)).add(make_relu());
  m.add(make_dense(classes));
  m.build({1, length}, 1718);
  return m;
}

MeasuredRow run_pilot1(Precision prec) {
  biodata::DrugResponseConfig cfg;
  cfg.samples = 1200;
  cfg.seed = 101;
  Dataset data = biodata::make_drug_response(cfg);
  auto [train, test] = split(data, 0.8, 102);
  Standardizer scaler = Standardizer::fit(train.x);
  scaler.apply(train.x);
  scaler.apply(test.x);
  Model m = pilot1_model(cfg.features());
  MeanSquaredError mse;
  Adam opt(1e-3f);
  FitOptions fo;
  fo.epochs = 15;
  fo.batch_size = 64;
  fo.seed = 103;
  fo.precision = PrecisionPolicy::standard(prec);
  const FitHistory h = fit(m, train, &test, mse, opt, fo);
  return {prec, r2_score(m.predict(test.x), test.y),
          static_cast<double>(h.final_train_loss()), h.samples_per_second};
}

MeasuredRow run_nt3(Precision prec) {
  biodata::TumorTypeConfig cfg;
  cfg.samples = 600;
  cfg.classes = 3;
  cfg.profile_length = 128;
  cfg.signal = 1.0f;
  cfg.position_jitter = 12;  // unsaturated task: format effects visible
  cfg.seed = 111;
  Dataset data = biodata::make_tumor_type(cfg);
  auto [train, test] = split(data, 0.8, 112);
  Model m = nt3_model(cfg.profile_length, cfg.classes);
  SoftmaxCrossEntropy xent;
  Adam opt(1e-3f);
  FitOptions fo;
  fo.epochs = 10;
  fo.batch_size = 32;
  fo.seed = 113;
  fo.precision = PrecisionPolicy::standard(prec);
  const FitHistory h = fit(m, train, &test, xent, opt, fo);
  return {prec, accuracy(m.predict(test.x), test.y),
          static_cast<double>(h.final_train_loss()), h.samples_per_second};
}

void print_tables() {
  std::printf("=== E1: reduced-precision training "
              "(claim C1: rarely require 64 or even 32 bits) ===\n\n");

  std::printf("measured task quality per numeric format (storage-rounded "
              "compute, fp32 accumulate)\n");
  std::printf("%-6s | %-18s %-12s | %-18s %-12s\n", "format",
              "pilot1 test R^2", "samples/s", "nt3 test accuracy",
              "samples/s");
  for (Precision p : all_precisions()) {
    const MeasuredRow p1 = run_pilot1(p);
    const MeasuredRow n3 = run_nt3(p);
    std::printf("%-6s | %-18.3f %-12.0f | %-18.3f %-12.0f\n",
                precision_name(p).c_str(), p1.metric, p1.samples_per_s,
                n3.metric, n3.samples_per_s);
  }
  std::printf("(fp64 rows use fp32 storage numerics — indistinguishable for "
              "these workloads — and differ only in the machine model)\n\n");

  // Modeled throughput/energy at CANDLE scale per node generation.
  hpcsim::TrainingWorkload w;
  w.name = "candle-scale";
  w.flops_per_sample = 2e9;
  w.parameters = 5e7;
  w.bytes_per_sample = 6e4;
  w.activation_bytes_per_sample = 4e5;
  std::printf("modeled single-node step at batch 256 "
              "(samples/s and J/step)\n");
  std::printf("%-6s", "format");
  for (const auto& node : hpcsim::all_node_presets()) {
    std::printf(" | %-22s", node.name.c_str());
  }
  std::printf("\n");
  for (Precision p : all_precisions()) {
    std::printf("%-6s", precision_name(p).c_str());
    for (const auto& node : hpcsim::all_node_presets()) {
      hpcsim::ParallelPlan plan;
      plan.batch_per_replica = 256;
      plan.precision = p;
      const auto est =
          hpcsim::estimate_step(node, hpcsim::fat_tree_fabric(), w, plan);
      std::printf(" | %9.0f sm/s %5.1f J", est.samples_per_s, est.energy_j);
    }
    std::printf("\n");
  }
  std::printf("\nexpected shape: quality flat through bf16/fp16 (small int8 "
              "drop); modeled throughput rises with narrower formats only "
              "on nodes with reduced-precision units (summit fp16, future "
              "all)\n\n");
}

// Timed benchmark: one fp32 vs bf16 vs int8 training epoch (measured).
void BM_TrainEpoch(benchmark::State& state) {
  const auto prec = static_cast<Precision>(state.range(0));
  biodata::DrugResponseConfig cfg;
  cfg.samples = 512;
  cfg.seed = 131;
  Dataset data = biodata::make_drug_response(cfg);
  Model m = pilot1_model(cfg.features());
  m.set_compute_precision(prec);
  MeanSquaredError mse;
  Adam opt(1e-3f);
  BatchIterator batches(data, 64, true, 132);
  for (auto _ : state) {
    for (Index b = 0; b < batches.batches_per_epoch(); ++b) {
      const Dataset batch = batches.next();
      benchmark::DoNotOptimize(m.train_batch(batch.x, batch.y, mse, opt));
    }
  }
  state.SetLabel(precision_name(prec));
  state.counters["samples/s"] = benchmark::Counter(
      static_cast<double>(data.size()) *
          static_cast<double>(state.iterations()),
      benchmark::Counter::kIsRate);
}

BENCHMARK(BM_TrainEpoch)
    ->Arg(static_cast<int>(Precision::FP32))
    ->Arg(static_cast<int>(Precision::BF16))
    ->Arg(static_cast<int>(Precision::INT8))
    ->Unit(benchmark::kMillisecond);

}  // namespace

int main(int argc, char** argv) {
  print_tables();
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  return 0;
}
